// The paper's primary contribution: LSTM-based unsupervised anomaly
// detection on syslog template sequences (§4.2).
//
// Training uses only "normal" logs. The detector learns to predict the
// next template from the k previous (template, Δt) tuples; at scoring
// time the anomaly score of a log is the negative log-likelihood the
// model assigns to it. Includes the paper's iterative minority-pattern
// over-sampling loop (rare-but-normal patterns are over-sampled between
// training rounds until the training false-positive rate stops improving).
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>

#include "core/detector.h"
#include "ml/sequence_model.h"

namespace nfv::core {

/// How the next-template prediction is turned into an anomaly score.
enum class LstmScoreMode : std::uint8_t {
  /// −log p(observed template) — the paper's thresholded log-likelihood.
  kLogLikelihood,
  /// Rank of the observed template in the predicted distribution —
  /// DeepLog's top-k rule (anomalous if the observed template is not
  /// among the k most likely continuations). Thresholding the rank at k
  /// reproduces DeepLog exactly; sweeping it yields a PRC.
  kTargetRank,
};

struct LstmDetectorConfig {
  std::size_t window = 10;
  std::size_t embed_dim = 16;
  std::size_t hidden = 32;
  std::size_t layers = 2;       // paper: 2 LSTM layers + 1 dense
  std::size_t batch_size = 64;
  std::size_t initial_epochs = 4;
  std::size_t update_epochs = 2;
  std::size_t adapt_epochs = 4;
  float initial_lr = 3e-3f;
  float update_lr = 1e-3f;
  float adapt_lr = 3e-3f;
  /// Cap on training windows per fit/update (uniform subsample beyond it).
  std::size_t max_train_windows = 4000;
  /// Minority over-sampling (§4.2): on/off, max refinement rounds, the
  /// training-score quantile treated as "misclassified as anomaly", and
  /// the replication factor for those windows.
  bool oversample = true;
  std::size_t oversample_rounds = 2;
  double oversample_quantile = 0.03;
  std::size_t oversample_factor = 4;
  /// Layers frozen during transfer adaptation (embedding is frozen too
  /// whenever this is > 0).
  std::size_t adapt_frozen_layers = 1;
  /// Fused inference batch size for the batched scoring engine: scoring
  /// windows (across all streams of a score_streams call) are packed into
  /// forward batches of at most this many rows. Scores are bit-identical
  /// for any value ≥ 1; larger batches amortize GEMM dispatch.
  std::size_t score_batch = 1024;
  /// Keep one Adam instance alive across fit/update/adapt rounds instead
  /// of constructing a fresh optimizer inside every train_epochs call.
  /// With it on, moment estimates accumulated during the initial fit carry
  /// into the monthly incremental updates (surviving grow_vocab reshapes —
  /// new rows start with zero moments), so the update steps are already
  /// warm instead of re-estimating curvature from scratch. Off by default
  /// to preserve the seed training trajectory exactly.
  bool persistent_optimizer = false;
  std::uint64_t seed = 1234;
  /// Score assigned to events involving templates unseen at training time
  /// (in kTargetRank mode the unknown score is the vocabulary size).
  double unknown_score = 27.6;  // ≈ −log(1e-12)
  LstmScoreMode score_mode = LstmScoreMode::kLogLikelihood;
  /// Quantized steady-state scoring: after every fit/update/adapt the
  /// model is re-calibrated to per-channel int8 (ml::SequenceModel::
  /// quantize) and all scoring — score/score_streams, the batched
  /// planner, async-ingest flushes — runs the packed int8 kernels.
  /// Training always stays fp32; the correctness contract is the
  /// rank-agreement gate (see README "Quantized scoring").
  bool quantize = false;
};

class LstmDetector final : public AnomalyDetector {
 public:
  explicit LstmDetector(const LstmDetectorConfig& config = {});

  /// Copying is the teacher → student step of transfer adaptation; the
  /// persistent optimizer's moment state is per-instance and does not
  /// follow the copy (the student's next train_epochs starts it fresh).
  LstmDetector(const LstmDetector& other);

  /// Heap-allocated teacher → student copy: the clone the online-retrain
  /// trainer fine-tunes and installs while the original keeps scoring.
  /// Weights, config (including quantize mode) and RNG state follow; the
  /// persistent optimizer does not (same contract as the copy ctor).
  std::unique_ptr<LstmDetector> clone_as_teacher() const {
    return std::make_unique<LstmDetector>(*this);
  }
  LstmDetector& operator=(const LstmDetector& other);
  LstmDetector(LstmDetector&&) = default;
  LstmDetector& operator=(LstmDetector&&) = default;

  void fit(std::span<const LogView> streams, std::size_t vocab) override;
  void update(std::span<const LogView> streams, std::size_t vocab) override;
  void adapt(std::span<const LogView> streams, std::size_t vocab) override;
  std::vector<ScoredEvent> score(LogView logs,
                                 std::size_t vocab) const override;

  /// Cross-stream batched scoring: windows from ALL streams are flattened
  /// into one slot-addressed queue and scored in fused forward batches of
  /// config().score_batch rows (see core/batch_planner.h). Bit-identical
  /// to per-stream score() for any batch size and thread count.
  std::vector<std::vector<ScoredEvent>> score_streams(
      std::span<const LogView> streams, std::size_t vocab) const override;

  /// Adjust the fused inference batch size (e.g. from the CLI's
  /// --score-batch flag); scores do not depend on it.
  void set_score_batch(std::size_t score_batch);

  /// Toggle quantized scoring on an already-trained detector (e.g. after
  /// load, or to build the quantized shadow for swap_detector): on = (re)
  /// calibrate the int8 sidecar from the current fp32 weights, off = drop
  /// it. Also updates config().quantize so later retraining keeps the
  /// chosen mode.
  void set_quantized(bool on);

  /// Resident model memory (fp32 weights + int8 sidecar), zeros before fit.
  ModelMemoryStats model_memory() const override;

  bool trained() const override { return model_.has_value(); }
  DetectorKind kind() const override { return DetectorKind::kLstm; }
  EventGranularity granularity() const override {
    return EventGranularity::kPerLog;
  }

  const LstmDetectorConfig& config() const { return config_; }
  const ml::SequenceModel& model() const { return *model_; }

  /// Anomaly scores of a set of windows (per score_mode); exposed for the
  /// over-sampling loop and threshold calibration.
  std::vector<double> score_examples(
      std::span<const ml::SeqExample> examples) const;

  /// Persist / restore the trained model (config + weights).
  void save(std::ostream& os) const;
  static LstmDetector load(std::istream& is);

 private:
  /// Score windows already known to be inside the model's vocabulary;
  /// shared by score_streams / score_examples.
  void score_known_windows(
      std::span<const std::vector<const ml::SeqExample*>> streams,
      std::vector<std::vector<double>>& scores) const;

  void train_epochs(std::span<const ml::SeqExample> examples,
                    std::size_t epochs, float lr);
  std::vector<ml::SeqExample> prepare_examples(
      std::span<const LogView> streams) const;
  void oversample_refine(std::vector<ml::SeqExample> examples);

  LstmDetectorConfig config_;
  std::optional<ml::SequenceModel> model_;
  /// Lives across train_epochs calls when persistent_optimizer is on;
  /// train_epochs rebinds it to the model's current parameters each round
  /// (safe across model moves and grow_vocab — see ml::Adam::rebind).
  std::unique_ptr<ml::Adam> optimizer_;
  mutable nfv::util::Rng rng_;
};

}  // namespace nfv::core
