// Hidden-Markov-model baseline detector (classical sequential approach of
// the paper's related work, e.g. BlueGene/L failure prediction [19] and
// online failure prediction with hidden semi-Markov models [29]).
//
// Scores each log by the average negative log-likelihood of the window of
// the k preceding template ids plus the log itself under an HMM trained on
// normal windows — per-log granularity, directly comparable to the LSTM.
#pragma once

#include "core/detector.h"
#include "ml/hmm.h"

namespace nfv::core {

struct HmmDetectorConfig {
  std::size_t window = 10;
  ml::HmmConfig hmm;
  /// Cap on training windows (uniform subsample beyond it).
  std::size_t max_train_windows = 3000;
  /// The HMM has no incremental mode: update()/adapt() refit on a sliding
  /// buffer of the most recent windows.
  std::size_t refit_buffer_windows = 3000;
  std::uint64_t seed = 777;
};

class HmmDetector final : public AnomalyDetector {
 public:
  explicit HmmDetector(const HmmDetectorConfig& config = {});

  void fit(std::span<const LogView> streams, std::size_t vocab) override;
  void update(std::span<const LogView> streams, std::size_t vocab) override;
  void adapt(std::span<const LogView> streams, std::size_t vocab) override;
  std::vector<ScoredEvent> score(LogView logs,
                                 std::size_t vocab) const override;
  bool trained() const override { return model_.trained(); }
  DetectorKind kind() const override { return DetectorKind::kHmm; }
  EventGranularity granularity() const override {
    return EventGranularity::kPerLog;
  }

 private:
  std::vector<std::vector<std::int32_t>> make_windows(
      std::span<const LogView> streams) const;
  void refit();

  HmmDetectorConfig config_;
  std::size_t vocab_ = 0;
  std::vector<std::vector<std::int32_t>> buffer_;
  ml::Hmm model_;
  mutable nfv::util::Rng rng_;
};

}  // namespace nfv::core
