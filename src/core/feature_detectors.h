// Feature-based baseline detectors of §5.2: Autoencoder on TF-IDF document
// features, One-Class SVM, and a PCA residual-energy extension baseline.
//
// All three share the same document pipeline: the log stream is chopped
// into half-overlapping windows of `doc_size` consecutive logs, each
// turned into an L2-normalized TF-IDF vector over the template vocabulary.
// Scores are emitted at each document's last-log time.
#pragma once

#include <optional>

#include "core/detector.h"
#include "ml/autoencoder.h"
#include "ml/ocsvm.h"
#include "ml/pca.h"

namespace nfv::core {

struct FeatureDetectorConfig {
  std::size_t doc_size = 20;
  /// Cap on training documents (uniform subsample beyond it).
  std::size_t max_train_docs = 4000;
  std::uint64_t seed = 4321;
};

struct AutoencoderDetectorConfig : FeatureDetectorConfig {
  std::vector<std::size_t> encoder = {64, 16};
  std::size_t batch_size = 32;
  std::size_t initial_epochs = 12;
  std::size_t update_epochs = 4;
  std::size_t adapt_epochs = 8;
  float initial_lr = 2e-3f;
  float update_lr = 1e-3f;
  /// Decoder-side layers left trainable during transfer adaptation.
  std::size_t adapt_trainable_layers = 2;
};

/// Autoencoder baseline: anomaly score = TF-IDF reconstruction error.
class AutoencoderDetector final : public AnomalyDetector {
 public:
  explicit AutoencoderDetector(const AutoencoderDetectorConfig& config = {});

  void fit(std::span<const LogView> streams, std::size_t vocab) override;
  void update(std::span<const LogView> streams, std::size_t vocab) override;
  void adapt(std::span<const LogView> streams, std::size_t vocab) override;
  std::vector<ScoredEvent> score(LogView logs,
                                 std::size_t vocab) const override;
  bool trained() const override { return model_.has_value(); }
  DetectorKind kind() const override { return DetectorKind::kAutoencoder; }
  EventGranularity granularity() const override {
    return EventGranularity::kPerDocument;
  }

 private:
  void train_docs(std::span<const logproc::Document> docs,
                  std::size_t epochs, float lr);

  AutoencoderDetectorConfig config_;
  std::size_t feature_vocab_ = 0;  // fixed at fit(); features are padded to it
  logproc::TfidfFeaturizer featurizer_;
  std::optional<ml::Autoencoder> model_;
  mutable nfv::util::Rng rng_;
};

struct OcSvmDetectorConfig : FeatureDetectorConfig {
  ml::OcSvmConfig svm;
  /// The SVM has no incremental mode: update()/adapt() refit on a sliding
  /// buffer of the most recent documents of at most this size.
  std::size_t refit_buffer_docs = 3000;
};

/// One-Class SVM baseline (shallow learning with explicit features).
class OcSvmDetector final : public AnomalyDetector {
 public:
  explicit OcSvmDetector(const OcSvmDetectorConfig& config = {});

  void fit(std::span<const LogView> streams, std::size_t vocab) override;
  void update(std::span<const LogView> streams, std::size_t vocab) override;
  void adapt(std::span<const LogView> streams, std::size_t vocab) override;
  std::vector<ScoredEvent> score(LogView logs,
                                 std::size_t vocab) const override;
  bool trained() const override { return model_.trained(); }
  DetectorKind kind() const override { return DetectorKind::kOcSvm; }
  EventGranularity granularity() const override {
    return EventGranularity::kPerDocument;
  }

 private:
  void refit();

  OcSvmDetectorConfig config_;
  std::size_t feature_vocab_ = 0;
  logproc::TfidfFeaturizer featurizer_;
  std::vector<logproc::Document> buffer_;
  ml::OcSvm model_;
  mutable nfv::util::Rng rng_;
};

struct PcaDetectorConfig : FeatureDetectorConfig {
  ml::PcaConfig pca;
  std::size_t refit_buffer_docs = 3000;
};

/// PCA residual-energy baseline (Xu et al., SOSP '09 — extension).
class PcaDetector final : public AnomalyDetector {
 public:
  explicit PcaDetector(const PcaDetectorConfig& config = {});

  void fit(std::span<const LogView> streams, std::size_t vocab) override;
  void update(std::span<const LogView> streams, std::size_t vocab) override;
  void adapt(std::span<const LogView> streams, std::size_t vocab) override;
  std::vector<ScoredEvent> score(LogView logs,
                                 std::size_t vocab) const override;
  bool trained() const override { return model_.trained(); }
  DetectorKind kind() const override { return DetectorKind::kPca; }
  EventGranularity granularity() const override {
    return EventGranularity::kPerDocument;
  }

 private:
  void refit();

  PcaDetectorConfig config_;
  std::size_t feature_vocab_ = 0;
  logproc::TfidfFeaturizer featurizer_;
  std::vector<logproc::Document> buffer_;
  ml::Pca model_;
  mutable nfv::util::Rng rng_;
};

/// Factory over DetectorKind with library defaults.
std::unique_ptr<AnomalyDetector> make_detector(DetectorKind kind,
                                               std::uint64_t seed);

}  // namespace nfv::core
