// Evaluation metrics (§5): precision / recall / F-measure, the
// precision-recall curve obtained by sweeping the detection threshold,
// false alarms per day, and the per-ticket-type detection rates at fixed
// time offsets that make up Fig. 8.
#pragma once

#include <array>
#include <vector>

#include "core/mapper.h"
#include "simnet/types.h"

namespace nfv::core {

struct PrfMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
  std::size_t true_anomalies = 0;   // mapped to a ticket period
  std::size_t false_alarms = 0;
  std::size_t tickets_total = 0;    // recall denominator
  std::size_t tickets_detected = 0;
};

/// Compute precision/recall/F from a mapping result.
/// Precision: fraction of detected anomaly clusters mapped to any ticket
/// period. Recall: fraction of *non-maintenance* tickets with at least one
/// mapped anomaly (maintenance is pre-scheduled and excluded, §3.2).
PrfMetrics compute_prf(const MappingResult& mapping);

struct PrcPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
  double false_alarms_per_day = 0.0;
};

/// One vPE's scored stream with its tickets — the unit the sweep maps.
struct VpeScoredStream {
  std::int32_t vpe = -1;
  std::vector<ScoredEvent> events;
  std::vector<simnet::Ticket> tickets;
};

/// Sweep `num_thresholds` score quantiles, cluster + map at each, and
/// return the PRC. `days` is the evaluated wall-clock span (for the
/// false-alarm rate).
std::vector<PrcPoint> precision_recall_curve(
    std::span<const VpeScoredStream> streams, const MappingConfig& config,
    double days, std::size_t num_thresholds = 25);

/// Area under the PR curve (trapezoid over recall).
double auc_pr(std::span<const PrcPoint> curve);

/// The sweep point with maximal F-measure (the paper's operating point).
PrcPoint best_f_point(std::span<const PrcPoint> curve);

/// Fig. 8: per-category detection rates at time offsets relative to ticket
/// report. Offsets: ≥15 min before, ≥5 min before, before (0), within
/// +5 min, within +15 min (cumulative).
struct DetectionRateRow {
  simnet::TicketCategory category = simnet::TicketCategory::kCircuit;
  std::size_t ticket_count = 0;
  // {-15 min, -5 min, 0, +5 min, +15 min}
  std::array<double, 5> rate{};
};

std::vector<DetectionRateRow> detection_rates_by_category(
    std::span<const TicketDetection> detections);

/// Overall detection rate across all (non-maintenance) tickets at the same
/// offsets.
DetectionRateRow overall_detection_rate(
    std::span<const TicketDetection> detections);

}  // namespace nfv::core
