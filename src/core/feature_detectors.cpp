#include "core/feature_detectors.h"

#include <algorithm>

#include "core/hmm_detector.h"
#include "core/lstm_detector.h"
#include "ml/optimizer.h"
#include "util/check.h"

namespace nfv::core {

using logproc::Document;
using nfv::util::Rng;

namespace {

/// Headroom added to the feature width so templates discovered after the
/// initial fit still land inside the (fixed) model input once the
/// featurizer's document frequencies are refreshed.
constexpr std::size_t kVocabHeadroom = 64;

std::vector<Document> make_docs(std::span<const LogView> streams,
                                std::size_t doc_size, std::size_t cap) {
  std::vector<Document> docs;
  for (const LogView& logs : streams) {
    std::vector<Document> part = logproc::build_documents(logs, doc_size);
    docs.insert(docs.end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  if (docs.size() > cap) {
    std::vector<Document> kept;
    kept.reserve(cap);
    const double stride =
        static_cast<double>(docs.size()) / static_cast<double>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      kept.push_back(std::move(docs[static_cast<std::size_t>(i * stride)]));
    }
    docs = std::move(kept);
  }
  return docs;
}

}  // namespace

// ---------------------------------------------------------------- AE ----

AutoencoderDetector::AutoencoderDetector(
    const AutoencoderDetectorConfig& config)
    : config_(config), rng_(config.seed) {}

void AutoencoderDetector::train_docs(std::span<const Document> docs,
                                     std::size_t epochs, float lr) {
  if (docs.empty()) return;
  ml::Adam optimizer(lr);
  optimizer.bind(model_->params());
  std::vector<std::size_t> order(docs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    rng_.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(start + config_.batch_size, order.size());
      ml::Matrix batch(end - start, feature_vocab_);
      for (std::size_t i = start; i < end; ++i) {
        const std::vector<float> row = featurizer_.transform(docs[order[i]]);
        std::copy(row.begin(), row.end(), batch.row(i - start));
      }
      model_->train_batch(batch, optimizer);
    }
  }
}

void AutoencoderDetector::fit(std::span<const LogView> streams,
                              std::size_t vocab) {
  NFV_CHECK(vocab > 0, "fit requires a vocabulary");
  feature_vocab_ = vocab + kVocabHeadroom;
  const std::vector<Document> docs =
      make_docs(streams, config_.doc_size, config_.max_train_docs);
  featurizer_.fit(docs, feature_vocab_);
  ml::AutoencoderConfig ae_config;
  ae_config.input_dim = feature_vocab_;
  ae_config.encoder = config_.encoder;
  Rng init_rng = rng_.fork(1);
  model_.emplace(ae_config, init_rng);
  train_docs(docs, config_.initial_epochs, config_.initial_lr);
}

void AutoencoderDetector::update(std::span<const LogView> streams,
                                 std::size_t vocab) {
  NFV_CHECK(trained(), "update before fit");
  (void)vocab;
  const std::vector<Document> docs =
      make_docs(streams, config_.doc_size, config_.max_train_docs);
  if (docs.empty()) return;
  featurizer_.fit(docs, feature_vocab_);  // refresh document frequencies
  train_docs(docs, config_.update_epochs, config_.update_lr);
}

void AutoencoderDetector::adapt(std::span<const LogView> streams,
                                std::size_t vocab) {
  NFV_CHECK(trained(), "adapt before fit");
  (void)vocab;
  const std::vector<Document> docs =
      make_docs(streams, config_.doc_size, config_.max_train_docs);
  if (docs.empty()) return;
  featurizer_.fit(docs, feature_vocab_);
  model_->freeze_lower_layers(config_.adapt_trainable_layers);
  train_docs(docs, config_.adapt_epochs, config_.initial_lr);
  model_->freeze_lower_layers(model_->params().size());  // unfreeze all
}

std::vector<ScoredEvent> AutoencoderDetector::score(
    LogView logs, std::size_t vocab) const {
  NFV_CHECK(trained(), "score before fit");
  (void)vocab;
  std::vector<ScoredEvent> out;
  const std::vector<Document> docs =
      logproc::build_documents(logs, config_.doc_size);
  if (docs.empty()) return out;
  const ml::Matrix features = featurizer_.transform_batch(docs);
  const std::vector<double> errors = model_->reconstruction_error(features);
  out.reserve(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    out.push_back({docs[i].time, errors[i]});
  }
  return out;
}

// -------------------------------------------------------------- OCSVM ----

OcSvmDetector::OcSvmDetector(const OcSvmDetectorConfig& config)
    : config_(config), model_(config.svm), rng_(config.seed) {}

void OcSvmDetector::refit() {
  if (buffer_.empty()) return;
  if (buffer_.size() > config_.refit_buffer_docs) {
    buffer_.erase(buffer_.begin(),
                  buffer_.end() - static_cast<std::ptrdiff_t>(
                                      config_.refit_buffer_docs));
  }
  featurizer_.fit(buffer_, feature_vocab_);
  const ml::Matrix features = featurizer_.transform_batch(buffer_);
  model_ = ml::OcSvm(config_.svm);
  model_.fit(features);
}

void OcSvmDetector::fit(std::span<const LogView> streams,
                        std::size_t vocab) {
  NFV_CHECK(vocab > 0, "fit requires a vocabulary");
  feature_vocab_ = vocab + kVocabHeadroom;
  buffer_ = make_docs(streams, config_.doc_size, config_.max_train_docs);
  refit();
}

void OcSvmDetector::update(std::span<const LogView> streams,
                           std::size_t vocab) {
  NFV_CHECK(trained(), "update before fit");
  (void)vocab;
  std::vector<Document> docs =
      make_docs(streams, config_.doc_size, config_.max_train_docs);
  for (Document& doc : docs) buffer_.push_back(std::move(doc));
  refit();
}

void OcSvmDetector::adapt(std::span<const LogView> streams,
                          std::size_t vocab) {
  NFV_CHECK(trained(), "adapt before fit");
  (void)vocab;
  // No incremental path for an SVM: adaptation = refit dominated by the
  // fresh post-update documents.
  buffer_ = make_docs(streams, config_.doc_size, config_.max_train_docs);
  refit();
}

std::vector<ScoredEvent> OcSvmDetector::score(
    LogView logs, std::size_t vocab) const {
  NFV_CHECK(trained(), "score before fit");
  (void)vocab;
  std::vector<ScoredEvent> out;
  const std::vector<Document> docs =
      logproc::build_documents(logs, config_.doc_size);
  if (docs.empty()) return out;
  const ml::Matrix features = featurizer_.transform_batch(docs);
  const std::vector<double> scores = model_.anomaly_scores(features);
  out.reserve(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    out.push_back({docs[i].time, scores[i]});
  }
  return out;
}

// ---------------------------------------------------------------- PCA ----

PcaDetector::PcaDetector(const PcaDetectorConfig& config)
    : config_(config), model_(config.pca), rng_(config.seed) {}

void PcaDetector::refit() {
  if (buffer_.size() < 2) return;
  if (buffer_.size() > config_.refit_buffer_docs) {
    buffer_.erase(buffer_.begin(),
                  buffer_.end() - static_cast<std::ptrdiff_t>(
                                      config_.refit_buffer_docs));
  }
  featurizer_.fit(buffer_, feature_vocab_);
  const ml::Matrix features = featurizer_.transform_batch(buffer_);
  model_ = ml::Pca(config_.pca);
  Rng fit_rng = rng_.fork(buffer_.size());
  model_.fit(features, fit_rng);
}

void PcaDetector::fit(std::span<const LogView> streams,
                      std::size_t vocab) {
  NFV_CHECK(vocab > 0, "fit requires a vocabulary");
  feature_vocab_ = vocab + kVocabHeadroom;
  buffer_ = make_docs(streams, config_.doc_size, config_.max_train_docs);
  refit();
}

void PcaDetector::update(std::span<const LogView> streams,
                         std::size_t vocab) {
  NFV_CHECK(trained(), "update before fit");
  (void)vocab;
  std::vector<Document> docs =
      make_docs(streams, config_.doc_size, config_.max_train_docs);
  for (Document& doc : docs) buffer_.push_back(std::move(doc));
  refit();
}

void PcaDetector::adapt(std::span<const LogView> streams,
                        std::size_t vocab) {
  NFV_CHECK(trained(), "adapt before fit");
  (void)vocab;
  buffer_ = make_docs(streams, config_.doc_size, config_.max_train_docs);
  refit();
}

std::vector<ScoredEvent> PcaDetector::score(
    LogView logs, std::size_t vocab) const {
  NFV_CHECK(trained(), "score before fit");
  (void)vocab;
  std::vector<ScoredEvent> out;
  const std::vector<Document> docs =
      logproc::build_documents(logs, config_.doc_size);
  if (docs.empty()) return out;
  const ml::Matrix features = featurizer_.transform_batch(docs);
  out.reserve(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    out.push_back({docs[i].time, model_.residual_energy(features.row_span(i))});
  }
  return out;
}

// ------------------------------------------------------------- factory ----

const char* to_string(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kLstm:
      return "LSTM";
    case DetectorKind::kAutoencoder:
      return "Autoencoder";
    case DetectorKind::kOcSvm:
      return "OC-SVM";
    case DetectorKind::kPca:
      return "PCA";
    case DetectorKind::kHmm:
      return "HMM";
  }
  return "Unknown";
}

std::unique_ptr<AnomalyDetector> make_detector(DetectorKind kind,
                                               std::uint64_t seed) {
  switch (kind) {
    case DetectorKind::kLstm: {
      LstmDetectorConfig config;
      config.seed = seed;
      return std::make_unique<LstmDetector>(config);
    }
    case DetectorKind::kAutoencoder: {
      AutoencoderDetectorConfig config;
      config.seed = seed;
      return std::make_unique<AutoencoderDetector>(config);
    }
    case DetectorKind::kOcSvm: {
      OcSvmDetectorConfig config;
      config.seed = seed;
      return std::make_unique<OcSvmDetector>(config);
    }
    case DetectorKind::kPca: {
      PcaDetectorConfig config;
      config.seed = seed;
      return std::make_unique<PcaDetector>(config);
    }
    case DetectorKind::kHmm: {
      HmmDetectorConfig config;
      config.seed = seed;
      return std::make_unique<HmmDetector>(config);
    }
  }
  NFV_CHECK(false, "unknown detector kind");
  return nullptr;
}

}  // namespace nfv::core
