#include "core/mapper.h"

#include <algorithm>

#include "util/check.h"

namespace nfv::core {

using nfv::util::Duration;
using nfv::util::SimTime;

std::vector<SimTime> cluster_anomalies(std::span<const ScoredEvent> events,
                                       double threshold,
                                       const MappingConfig& config) {
  // Collect over-threshold times (events arrive time-sorted per stream;
  // sort defensively since callers may concatenate streams).
  std::vector<SimTime> hits;
  for (const ScoredEvent& event : events) {
    if (event.score >= threshold) hits.push_back(event.time);
  }
  std::sort(hits.begin(), hits.end());

  std::vector<SimTime> clusters;
  std::size_t run_start = 0;
  for (std::size_t i = 1; i <= hits.size(); ++i) {
    const bool run_ends =
        i == hits.size() || hits[i] - hits[i - 1] > config.cluster_span;
    if (!run_ends) continue;
    const std::size_t run_length = i - run_start;
    if (run_length >= config.min_cluster_size) {
      clusters.push_back(hits[run_start]);
    }
    run_start = i;
  }
  return clusters;
}

MappingResult map_anomalies(std::span<const SimTime> anomalies,
                            std::span<const simnet::Ticket> tickets,
                            std::int32_t vpe, const MappingConfig& config) {
  MappingResult result;
  result.tickets.reserve(tickets.size());
  for (const simnet::Ticket& ticket : tickets) {
    NFV_CHECK(ticket.vpe == vpe, "map_anomalies: ticket for wrong vPE");
    TicketDetection detection;
    detection.ticket_id = ticket.ticket_id;
    detection.vpe = ticket.vpe;
    detection.category = ticket.category;
    detection.report = ticket.report;
    result.tickets.push_back(detection);
  }

  result.anomalies.reserve(anomalies.size());
  for (const SimTime t : anomalies) {
    MappedAnomaly mapped;
    mapped.time = t;
    mapped.vpe = vpe;

    // Find the best ticket whose predictive or infected period contains t.
    // Infected-period membership wins over predictive membership of a later
    // ticket (the anomaly is part of an ongoing trouble, not a new omen);
    // among predictive matches the nearest report time wins.
    const simnet::Ticket* best_infected = nullptr;
    const simnet::Ticket* best_predictive = nullptr;
    std::size_t best_infected_idx = 0;
    std::size_t best_predictive_idx = 0;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const simnet::Ticket& ticket = tickets[i];
      if (t >= ticket.report && t <= ticket.repair_finish) {
        if (!best_infected || ticket.report > best_infected->report) {
          best_infected = &ticket;
          best_infected_idx = i;
        }
      } else if (t >= ticket.report - config.predictive_period &&
                 t < ticket.report) {
        if (!best_predictive ||
            ticket.report - t < best_predictive->report - t) {
          best_predictive = &ticket;
          best_predictive_idx = i;
        }
      }
    }

    if (best_infected) {
      mapped.outcome = AnomalyOutcome::kError;
      mapped.ticket_id = best_infected->ticket_id;
      ++result.errors;
      TicketDetection& detection = result.tickets[best_infected_idx];
      const Duration delay = t - best_infected->report;
      // Track the earliest infected-period anomaly for this ticket.
      if (!detection.detected_after || delay < detection.first_error_delay) {
        detection.first_error_delay = delay;
      }
      detection.detected = true;
      detection.detected_after = true;
      ++detection.anomaly_count;
    } else if (best_predictive) {
      mapped.outcome = AnomalyOutcome::kEarlyWarning;
      mapped.ticket_id = best_predictive->ticket_id;
      mapped.lead = best_predictive->report - t;
      ++result.early_warnings;
      TicketDetection& detection = result.tickets[best_predictive_idx];
      detection.detected = true;
      detection.detected_before = true;
      detection.best_lead = std::max(detection.best_lead, mapped.lead);
      ++detection.anomaly_count;
    } else {
      mapped.outcome = AnomalyOutcome::kFalseAlarm;
      ++result.false_alarms;
    }
    result.anomalies.push_back(mapped);
  }
  return result;
}

MappingResult merge_mappings(std::span<const MappingResult> parts) {
  MappingResult merged;
  for (const MappingResult& part : parts) {
    merged.anomalies.insert(merged.anomalies.end(), part.anomalies.begin(),
                            part.anomalies.end());
    merged.tickets.insert(merged.tickets.end(), part.tickets.begin(),
                          part.tickets.end());
    merged.early_warnings += part.early_warnings;
    merged.errors += part.errors;
    merged.false_alarms += part.false_alarms;
  }
  return merged;
}

}  // namespace nfv::core
