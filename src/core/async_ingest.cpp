#include "core/async_ingest.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/check.h"

namespace nfv::core {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

template <typename Queue>
struct AsyncIngest::IngestQueueImpl final : AsyncIngest::IngestQueue {
  explicit IngestQueueImpl(std::size_t capacity) : queue(capacity) {}
  bool try_push(Item&& item) override { return queue.try_push(std::move(item)); }
  bool push(Item&& item) override { return queue.push(std::move(item)); }
  bool try_pop(Item& out) override { return queue.try_pop(out); }
  void close() override { queue.close(); }
  Queue queue;
};

AsyncIngest::AsyncIngest(const AnomalyDetector* detector,
                         AsyncIngestConfig config)
    : detector_(detector),
      config_(config),
      warning_queue_(config.warning_capacity) {
  NFV_CHECK(detector != nullptr, "AsyncIngest requires a detector");
  NFV_CHECK(config_.flush_batch >= 1, "flush_batch must be >= 1");
  NFV_CHECK(config_.queue_capacity >= 1, "queue_capacity must be >= 1");
}

AsyncIngest::~AsyncIngest() {
  if (started_) stop();
}

std::size_t AsyncIngest::add_shard(std::int32_t vpe,
                                   StreamMonitorConfig config) {
  NFV_CHECK(!started_, "add_shard after start()");
  auto shard = std::make_unique<Shard>();
  shard->vpe = vpe;
  shard->tree = std::make_unique<logproc::SignatureTree>();
  Shard* raw = shard.get();
  shard->monitor = std::make_unique<StreamMonitor>(
      vpe, detector_.load(std::memory_order_relaxed), shard->tree.get(),
      config, [this, raw](const StreamWarning& warning) {
        publish_warning(raw->worker, warning);
      });
  shards_.push_back(std::move(shard));
  return shards_.size() - 1;
}

void AsyncIngest::start() {
  NFV_CHECK(!started_, "start() called twice");
  NFV_CHECK(!shards_.empty(), "start() with no shards registered");
  worker_count_ = std::min(
      nfv::util::ThreadPool::resolve_threads(config_.workers),
      shards_.size());
  workers_.reserve(worker_count_);
  for (std::size_t w = 0; w < worker_count_; ++w) {
    auto worker = std::make_unique<Worker>();
    if (config_.single_producer) {
      worker->queue = std::make_unique<
          IngestQueueImpl<nfv::util::SpscQueue<Item>>>(config_.queue_capacity);
    } else {
      worker->queue = std::make_unique<
          IngestQueueImpl<nfv::util::MpscQueue<Item>>>(config_.queue_capacity);
    }
    workers_.push_back(std::move(worker));
  }
  // Static per-vPE sharding: a vPE's lines always flow through the same
  // worker, which is what keeps per-vPE processing order — and with it
  // the deterministic warning stream — independent of the worker count.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::size_t w = s % worker_count_;
    shards_[s]->worker = w;
    workers_[w]->shard_ids.push_back(s);
  }
  started_ = true;
  threads_.start(worker_count_, [this](std::size_t w) { worker_loop(w); });
}

void AsyncIngest::push_item(std::size_t shard, Item item) {
  NFV_CHECK(started_ && !stopped_, "submit outside start()..stop()");
  NFV_CHECK(shard < shards_.size(), "unknown shard " << shard);
  lines_submitted_.fetch_add(1, std::memory_order_relaxed);
  const bool pushed =
      workers_[shards_[shard]->worker]->queue->push(std::move(item));
  NFV_CHECK(pushed, "submit raced with stop()");
}

bool AsyncIngest::try_push_item(std::size_t shard, Item&& item) {
  NFV_CHECK(started_ && !stopped_, "submit outside start()..stop()");
  NFV_CHECK(shard < shards_.size(), "unknown shard " << shard);
  if (!workers_[shards_[shard]->worker]->queue->try_push(std::move(item))) {
    rejected_submits_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  lines_submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void AsyncIngest::submit(std::size_t shard, nfv::util::SimTime time,
                         std::string line) {
  Item item;
  item.shard = static_cast<std::uint32_t>(shard);
  item.raw = true;
  item.log.time = time;
  item.line = std::move(line);
  push_item(shard, std::move(item));
}

bool AsyncIngest::try_submit(std::size_t shard, nfv::util::SimTime time,
                             std::string line) {
  Item item;
  item.shard = static_cast<std::uint32_t>(shard);
  item.raw = true;
  item.log.time = time;
  item.line = std::move(line);
  return try_push_item(shard, std::move(item));
}

void AsyncIngest::submit_parsed(std::size_t shard,
                                const logproc::ParsedLog& log) {
  Item item;
  item.shard = static_cast<std::uint32_t>(shard);
  item.log = log;
  push_item(shard, std::move(item));
}

bool AsyncIngest::try_submit_parsed(std::size_t shard,
                                    const logproc::ParsedLog& log) {
  Item item;
  item.shard = static_cast<std::uint32_t>(shard);
  item.log = log;
  return try_push_item(shard, std::move(item));
}

void AsyncIngest::publish_warning(std::size_t worker,
                                  const StreamWarning& warning) {
  warnings_published_.fetch_add(1, std::memory_order_relaxed);
  Worker& w = *workers_[worker];
  std::lock_guard<std::mutex> lock(w.overflow_mu);
  // Once a warning spilled, later ones from this worker must spill too
  // until the caller drains the buffer — pushing them to the (re-emptied)
  // queue would reorder them ahead of the spilled ones.
  if (w.overflowing || !warning_queue_.try_push(warning)) {
    w.overflow.push_back(warning);
    w.overflowing = true;
  }
}

std::size_t AsyncIngest::drain_warnings(std::vector<StreamWarning>& out) {
  std::size_t count = pending_warnings_.size();
  out.insert(out.end(), pending_warnings_.begin(), pending_warnings_.end());
  pending_warnings_.clear();
  StreamWarning warning;
  while (warning_queue_.try_pop(warning)) {
    out.push_back(warning);
    ++count;
  }
  // Queue drained first, then spillovers: everything in a worker's
  // overflow buffer was published after everything it managed to queue.
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->overflow_mu);
    count += worker->overflow.size();
    out.insert(out.end(), worker->overflow.begin(), worker->overflow.end());
    worker->overflow.clear();
    worker->overflowing = false;
  }
  return count;
}

void AsyncIngest::drain_queue_into_pending() {
  StreamWarning warning;
  while (warning_queue_.try_pop(warning)) {
    pending_warnings_.push_back(warning);
  }
}

void AsyncIngest::quiesce() {
  epoch_requested_.fetch_add(1, std::memory_order_release);
  std::unique_lock<std::mutex> lock(barrier_mu_);
  while (parked_ < worker_count_) {
    parked_cv_.wait_for(lock, std::chrono::microseconds(200));
    // Keep the warning queue moving so workers flushing their final
    // micro-batches can't wedge on a full queue + full spill pattern.
    lock.unlock();
    drain_queue_into_pending();
    lock.lock();
  }
}

void AsyncIngest::release() {
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    epoch_released_ = epoch_requested_.load(std::memory_order_acquire);
    parked_ = 0;
  }
  released_cv_.notify_all();
}

void AsyncIngest::flush() {
  NFV_CHECK(started_, "flush() before start()");
  if (stopped_) return;
  quiesce();  // workers only park with empty queues and flushed batches
  release();
}

void AsyncIngest::swap_detector(const AnomalyDetector* detector) {
  NFV_CHECK(detector != nullptr, "detector must not be null");
  NFV_CHECK(started_, "swap_detector() before start()");
  NFV_CHECK(!stopped_, "swap_detector() after stop()");
  quiesce();
  // Workers are parked between micro-batches: nothing is staged and no
  // score() call is in flight, so mutating the detector pointers here
  // honours the read-only-detector contract. Each worker re-reads
  // detector_ and refreshes its group when it resumes.
  detector_.store(detector, std::memory_order_release);
  for (auto& shard : shards_) shard->monitor->set_detector(detector);
  release();
}

void AsyncIngest::stop() {
  if (!started_ || stopped_) return;
  closed_.store(true, std::memory_order_release);
  // Close queues first so any producer stuck in a blocking submit fails
  // fast instead of waiting on workers that are about to exit (workers
  // still drain every already-queued item before returning).
  for (auto& worker : workers_) worker->queue->close();
  // Unpark any worker sitting at a barrier from a concurrent quiesce —
  // by contract there is none (single control thread), but be safe.
  release();
  threads_.join();
  stopped_ = true;
  drain_queue_into_pending();
}

const logproc::SignatureTree& AsyncIngest::tree(std::size_t shard) const {
  NFV_CHECK(shard < shards_.size(), "unknown shard " << shard);
  return *shards_[shard]->tree;
}

logproc::SignatureTree& AsyncIngest::mutable_tree(std::size_t shard) {
  NFV_CHECK(shard < shards_.size(), "unknown shard " << shard);
  return *shards_[shard]->tree;
}

AsyncIngestStats AsyncIngest::stats() const {
  AsyncIngestStats stats;
  stats.lines_submitted = lines_submitted_.load(std::memory_order_relaxed);
  stats.lines_scored = lines_scored_.load(std::memory_order_relaxed);
  stats.flushes = flushes_.load(std::memory_order_relaxed);
  stats.warnings_published =
      warnings_published_.load(std::memory_order_relaxed);
  stats.rejected_submits = rejected_submits_.load(std::memory_order_relaxed);
  return stats;
}

void AsyncIngest::worker_loop(std::size_t index) {
  Worker& worker = *workers_[index];

  // Per-worker micro-batching group over this worker's shards only.
  const AnomalyDetector* detector = detector_.load(std::memory_order_acquire);
  StreamMonitorGroup group(detector);
  std::vector<std::size_t> local_of_shard(shards_.size(), 0);
  for (const std::size_t s : worker.shard_ids) {
    local_of_shard[s] = group.add(shards_[s]->monitor.get());
  }

  std::size_t staged = 0;
  Clock::time_point batch_start{};
  std::uint64_t seen_epoch = 0;
  unsigned idle_round = 0;

  const auto flush_group = [&] {
    if (staged == 0) return;
    group.flush();
    flushes_.fetch_add(1, std::memory_order_relaxed);
    lines_scored_.fetch_add(staged, std::memory_order_relaxed);
    staged = 0;
  };

  for (;;) {
    Item item;
    if (worker.queue->try_pop(item)) {
      idle_round = 0;
      if (staged == 0) batch_start = Clock::now();
      const std::size_t local = local_of_shard[item.shard];
      if (item.raw) {
        group.ingest(local, item.log.time, item.line);
      } else {
        group.ingest_parsed(local, item.log);
      }
      ++staged;
      if (staged >= config_.flush_batch) flush_group();
      continue;
    }

    // Queue momentarily empty: flush a ripe micro-batch (deadline 0 =
    // flush immediately for minimum latency; batching then only engages
    // under backlog).
    if (staged > 0 &&
        (config_.flush_deadline.count() <= 0 ||
         Clock::now() - batch_start >= config_.flush_deadline)) {
      flush_group();
      continue;
    }

    // Epoch barrier: park with everything flushed, wait for release,
    // then refresh the detector (it may have been swapped while parked).
    const std::uint64_t requested =
        epoch_requested_.load(std::memory_order_acquire);
    if (requested != seen_epoch) {
      flush_group();
      seen_epoch = requested;
      {
        std::unique_lock<std::mutex> lock(barrier_mu_);
        ++parked_;
        parked_cv_.notify_all();
        released_cv_.wait(lock, [&] {
          return epoch_released_ >= seen_epoch ||
                 closed_.load(std::memory_order_acquire);
        });
      }
      const AnomalyDetector* current =
          detector_.load(std::memory_order_acquire);
      if (current != detector) {
        detector = current;
        group.set_detector(detector);
      }
      continue;
    }

    if (closed_.load(std::memory_order_acquire)) {
      // Drain-and-exit: one final sweep in case items raced the close.
      while (worker.queue->try_pop(item)) {
        if (staged == 0) batch_start = Clock::now();
        const std::size_t local = local_of_shard[item.shard];
        if (item.raw) {
          group.ingest(local, item.log.time, item.line);
        } else {
          group.ingest_parsed(local, item.log);
        }
        ++staged;
        if (staged >= config_.flush_batch) flush_group();
      }
      flush_group();
      return;
    }

    nfv::util::queue_detail::backoff(idle_round);
  }
}

std::vector<StreamWarning> merge_warnings_by_vpe(
    std::vector<StreamWarning> warnings) {
  std::stable_sort(warnings.begin(), warnings.end(),
                   [](const StreamWarning& a, const StreamWarning& b) {
                     return a.vpe < b.vpe;
                   });
  return warnings;
}

}  // namespace nfv::core
