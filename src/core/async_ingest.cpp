#include "core/async_ingest.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>
#include <utility>

#include "core/lstm_detector.h"
#include "util/check.h"

namespace nfv::core {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

}  // namespace

template <typename Queue>
struct AsyncIngest::IngestQueueImpl final : AsyncIngest::IngestQueue {
  explicit IngestQueueImpl(std::size_t capacity) : queue(capacity) {}
  bool try_push(Item&& item) override { return queue.try_push(std::move(item)); }
  bool push(Item&& item) override { return queue.push(std::move(item)); }
  bool try_pop(Item& out) override { return queue.try_pop(out); }
  void close() override { queue.close(); }
  std::size_t depth() const override { return queue.depth(); }
  std::size_t capacity() const override { return queue.capacity(); }
  std::uint64_t stall_count() const override { return queue.stall_count(); }
  Queue queue;
};

AsyncIngest::AsyncIngest(const AnomalyDetector* detector,
                         AsyncIngestConfig config)
    : detector_(detector),
      config_(config),
      warning_queue_(config.warning_capacity) {
  NFV_CHECK(detector != nullptr, "AsyncIngest requires a detector");
  NFV_CHECK(config_.flush_batch >= 1, "flush_batch must be >= 1");
  NFV_CHECK(config_.queue_capacity >= 1, "queue_capacity must be >= 1");
  if (config_.share_token_arena) {
    token_arena_ = std::make_unique<nfv::util::SharedInterner>();
    if (config_.share_template_forest) {
      template_forest_ =
          std::make_unique<logproc::SharedSignatureForest>(token_arena_.get());
    }
  }
  model_mem_ = detector->model_memory();
}

AsyncIngest::~AsyncIngest() {
  if (started_) stop();
}

std::size_t AsyncIngest::add_shard(std::int32_t vpe,
                                   StreamMonitorConfig config) {
  NFV_CHECK(!started_, "add_shard after start()");
  auto shard = std::make_unique<Shard>();
  shard->vpe = vpe;
  shard->index = shards_.size();
  shard->tree = std::make_unique<logproc::SignatureTree>(
      logproc::SignatureTreeConfig{}, token_arena_.get(),
      template_forest_.get());
  Shard* raw = shard.get();
  shard->monitor = std::make_unique<StreamMonitor>(
      vpe, detector_.load(std::memory_order_relaxed), shard->tree.get(),
      config, [this, raw](const StreamWarning& warning) {
        publish_warning(raw->worker, warning);
      });
  shards_.push_back(std::move(shard));
  return shards_.size() - 1;
}

void AsyncIngest::start() {
  NFV_CHECK(!started_, "start() called twice");
  NFV_CHECK(!shards_.empty(), "start() with no shards registered");
  worker_count_ = std::min(
      nfv::util::ThreadPool::resolve_threads(config_.workers),
      shards_.size());
  workers_.reserve(worker_count_);
  for (std::size_t w = 0; w < worker_count_; ++w) {
    auto worker = std::make_unique<Worker>();
    if (config_.single_producer) {
      worker->queue = std::make_unique<
          IngestQueueImpl<nfv::util::SpscQueue<Item>>>(config_.queue_capacity);
    } else {
      worker->queue = std::make_unique<
          IngestQueueImpl<nfv::util::MpscQueue<Item>>>(config_.queue_capacity);
    }
    workers_.push_back(std::move(worker));
  }
  // Static per-vPE sharding: a vPE's lines always flow through the same
  // worker, which is what keeps per-vPE processing order — and with it
  // the deterministic warning stream — independent of the worker count.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::size_t w = s % worker_count_;
    shards_[s]->worker = w;
    workers_[w]->shard_ids.push_back(s);
  }
  if (config_.online_retrain) {
    const auto* lstm = dynamic_cast<const LstmDetector*>(
        detector_.load(std::memory_order_relaxed));
    NFV_CHECK(lstm != nullptr && lstm->trained(),
              "online_retrain requires a trained LstmDetector");
    NFV_CHECK(config_.retrain_samples >= 1, "retrain_samples must be >= 1");
    // The trainer's private lineage: it fine-tunes THIS copy each round
    // and installs copies of it, so its teacher can never be freed out
    // from under it by a swap.
    lineage_ = lstm->clone_as_teacher();
    tap_queue_ = std::make_unique<nfv::util::MpscQueue<TapSample>>(
        config_.retrain_tap_capacity);
  }
  started_ = true;
  threads_.start(worker_count_, [this](std::size_t w) { worker_loop(w); });
  if (config_.online_retrain) {
    trainer_ = std::thread([this] { trainer_loop(); });
  }
}

void AsyncIngest::push_item(std::size_t shard, Item item) {
  NFV_CHECK(started_ && !stopped_, "submit outside start()..stop()");
  NFV_CHECK(shard < shards_.size(), "unknown shard " << shard);
  if (config_.instrument) item.enqueue_ns = now_ns();
  lines_submitted_.fetch_add(1, std::memory_order_relaxed);
  const bool pushed =
      workers_[shards_[shard]->worker]->queue->push(std::move(item));
  NFV_CHECK(pushed, "submit raced with stop()");
}

bool AsyncIngest::try_push_item(std::size_t shard, Item&& item) {
  NFV_CHECK(started_ && !stopped_, "submit outside start()..stop()");
  NFV_CHECK(shard < shards_.size(), "unknown shard " << shard);
  if (config_.instrument) item.enqueue_ns = now_ns();
  if (!workers_[shards_[shard]->worker]->queue->try_push(std::move(item))) {
    rejected_submits_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  lines_submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void AsyncIngest::submit(std::size_t shard, nfv::util::SimTime time,
                         std::string line) {
  Item item;
  item.shard = static_cast<std::uint32_t>(shard);
  item.raw = true;
  item.log.time = time;
  item.line = std::move(line);
  push_item(shard, std::move(item));
}

bool AsyncIngest::try_submit(std::size_t shard, nfv::util::SimTime time,
                             std::string line) {
  Item item;
  item.shard = static_cast<std::uint32_t>(shard);
  item.raw = true;
  item.log.time = time;
  item.line = std::move(line);
  return try_push_item(shard, std::move(item));
}

void AsyncIngest::submit_parsed(std::size_t shard,
                                const logproc::ParsedLog& log) {
  Item item;
  item.shard = static_cast<std::uint32_t>(shard);
  item.log = log;
  push_item(shard, std::move(item));
}

bool AsyncIngest::try_submit_parsed(std::size_t shard,
                                    const logproc::ParsedLog& log) {
  Item item;
  item.shard = static_cast<std::uint32_t>(shard);
  item.log = log;
  return try_push_item(shard, std::move(item));
}

void AsyncIngest::publish_warning(std::size_t worker,
                                  const StreamWarning& warning) {
  warnings_published_.fetch_add(1, std::memory_order_relaxed);
  Worker& w = *workers_[worker];
  std::lock_guard<std::mutex> lock(w.overflow_mu);
  // Once a warning spilled, later ones from this worker must spill too
  // until the caller drains the buffer — pushing them to the (re-emptied)
  // queue would reorder them ahead of the spilled ones.
  if (w.overflowing || !warning_queue_.try_push(warning)) {
    w.overflow.push_back(warning);
    w.overflowing = true;
  }
}

std::size_t AsyncIngest::drain_warnings(std::vector<StreamWarning>& out) {
  std::size_t count = pending_warnings_.size();
  out.insert(out.end(), pending_warnings_.begin(), pending_warnings_.end());
  pending_warnings_.clear();
  StreamWarning warning;
  while (warning_queue_.try_pop(warning)) {
    out.push_back(warning);
    ++count;
  }
  // Queue drained first, then spillovers: everything in a worker's
  // overflow buffer was published after everything it managed to queue.
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->overflow_mu);
    count += worker->overflow.size();
    out.insert(out.end(), worker->overflow.begin(), worker->overflow.end());
    worker->overflow.clear();
    worker->overflowing = false;
  }
  return count;
}

void AsyncIngest::drain_queue_into_pending() {
  StreamWarning warning;
  while (warning_queue_.try_pop(warning)) {
    pending_warnings_.push_back(warning);
  }
}

void AsyncIngest::quiesce(bool drain_pending) {
  epoch_requested_.fetch_add(1, std::memory_order_release);
  std::unique_lock<std::mutex> lock(barrier_mu_);
  while (parked_ < worker_count_) {
    parked_cv_.wait_for(lock, std::chrono::microseconds(200));
    if (!drain_pending) continue;  // trainer: pending_warnings_ is the
                                   // caller thread's — never touch it
    // Keep the warning queue moving so workers flushing their final
    // micro-batches can't wedge on a full queue + full spill pattern.
    lock.unlock();
    drain_queue_into_pending();
    lock.lock();
  }
}

void AsyncIngest::release() {
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    epoch_released_ = epoch_requested_.load(std::memory_order_acquire);
    parked_ = 0;
  }
  released_cv_.notify_all();
}

void AsyncIngest::flush() {
  NFV_CHECK(started_, "flush() before start()");
  if (stopped_) return;
  std::lock_guard<std::mutex> control(control_mu_);
  quiesce();  // workers only park with empty queues and flushed batches
  // Every worker has passed a barrier since any generation was retired,
  // so nothing can still reference them.
  retired_.clear();
  release();
}

std::uint64_t AsyncIngest::install_detector(
    const AnomalyDetector* detector,
    std::unique_ptr<const AnomalyDetector> owned, bool drain_pending) {
  NFV_CHECK(detector != nullptr, "detector must not be null");
  NFV_CHECK(started_, "swap_detector() before start()");
  NFV_CHECK(!stopped_, "swap_detector() after stop()");
  // Footprint read BEFORE the install: the model is still exclusively the
  // caller's/trainer's, so no reader can race this.
  const ModelMemoryStats mem = detector->model_memory();
  quiesce(drain_pending);
  const std::uint64_t scored_at_barrier =
      lines_scored_.load(std::memory_order_relaxed);
  // Generations retired at an EARLIER barrier are now provably
  // unreferenced: every worker has parked (and re-read detector_ on its
  // last wake) since they were replaced.
  retired_.clear();
  // Workers are parked between micro-batches: nothing is staged and no
  // score() call is in flight, so mutating the detector pointers here
  // honours the read-only-detector contract. Each worker re-reads
  // detector_ and refreshes its group when it resumes.
  detector_.store(detector, std::memory_order_release);
  for (auto& shard : shards_) shard->monitor->set_detector(detector);
  if (owned_current_) retired_.push_back(std::move(owned_current_));
  owned_current_ = std::move(owned);
  {
    std::lock_guard<std::mutex> lock(model_mem_mu_);
    model_mem_ = mem;
  }
  release();
  return scored_at_barrier;
}

void AsyncIngest::swap_detector(const AnomalyDetector* detector) {
  std::lock_guard<std::mutex> control(control_mu_);
  install_detector(detector, nullptr, /*drain_pending=*/true);
}

void AsyncIngest::swap_detector_owned(
    std::unique_ptr<const AnomalyDetector> detector) {
  std::lock_guard<std::mutex> control(control_mu_);
  // Read the raw pointer before handing off ownership: function-argument
  // evaluation order is unspecified, so detector.get() inline with
  // std::move(detector) may read the moved-from pointer.
  const AnomalyDetector* raw = detector.get();
  install_detector(raw, std::move(detector), /*drain_pending=*/true);
}

void AsyncIngest::stop() {
  if (!started_ || stopped_) return;
  // Retire the trainer first, while the workers are still alive: it may
  // be mid-quiesce for an install, and that barrier needs live workers
  // to complete. A round in flight finishes (install included) before
  // the join returns.
  if (trainer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(trainer_mu_);
      trainer_stop_ = true;
    }
    trainer_cv_.notify_all();
    trainer_.join();
  }
  std::lock_guard<std::mutex> control(control_mu_);
  closed_.store(true, std::memory_order_release);
  // Close queues first so any producer stuck in a blocking submit fails
  // fast instead of waiting on workers that are about to exit (workers
  // still drain every already-queued item before returning).
  for (auto& worker : workers_) worker->queue->close();
  // Unpark any worker sitting at a barrier from a concurrent quiesce —
  // by contract there is none (single control thread), but be safe.
  release();
  threads_.join();
  stopped_ = true;
  drain_queue_into_pending();
  // Owned generations (current and retired) stay alive until destruction:
  // installed_detector() remains dereferenceable after stop().
}

const logproc::SignatureTree& AsyncIngest::tree(std::size_t shard) const {
  NFV_CHECK(shard < shards_.size(), "unknown shard " << shard);
  return *shards_[shard]->tree;
}

logproc::SignatureTree& AsyncIngest::mutable_tree(std::size_t shard) {
  NFV_CHECK(shard < shards_.size(), "unknown shard " << shard);
  return *shards_[shard]->tree;
}

AsyncIngestStats AsyncIngest::stats() const {
  AsyncIngestStats stats;
  stats.lines_submitted = lines_submitted_.load(std::memory_order_relaxed);
  stats.lines_scored = lines_scored_.load(std::memory_order_relaxed);
  stats.flushes = flushes_.load(std::memory_order_relaxed);
  stats.warnings_published =
      warnings_published_.load(std::memory_order_relaxed);
  stats.rejected_submits = rejected_submits_.load(std::memory_order_relaxed);
  return stats;
}

void AsyncIngest::enqueue_command(std::size_t shard, ShardCommand::Kind kind) {
  NFV_CHECK(started_ && !stopped_, "control command outside start()..stop()");
  NFV_CHECK(shard < shards_.size(), "unknown shard " << shard);
  Worker& worker = *workers_[shards_[shard]->worker];
  // Raise the gauge BEFORE the push: a worker that pops the command can
  // only ever observe pending >= 1, so wait_commands() never reports done
  // while a command is still in flight.
  worker.commands_pending.fetch_add(1, std::memory_order_release);
  ShardCommand cmd;
  cmd.kind = kind;
  cmd.shard = static_cast<std::uint32_t>(shard);
  const bool pushed = worker.commands.push(cmd);
  NFV_CHECK(pushed, "command mailbox closed");  // never closed in practice
}

void AsyncIngest::pause_shard(std::size_t shard) {
  enqueue_command(shard, ShardCommand::Kind::kPause);
}

void AsyncIngest::resume_shard(std::size_t shard) {
  enqueue_command(shard, ShardCommand::Kind::kResume);
}

void AsyncIngest::wait_commands() {
  NFV_CHECK(started_, "wait_commands() before start()");
  unsigned round = 0;
  for (;;) {
    bool pending = false;
    for (const auto& worker : workers_) {
      if (worker->commands_pending.load(std::memory_order_acquire) != 0) {
        pending = true;
        break;
      }
    }
    if (!pending) return;
    nfv::util::queue_detail::backoff(round);
  }
}

bool AsyncIngest::shard_paused(std::size_t shard) const {
  NFV_CHECK(shard < shards_.size(), "unknown shard " << shard);
  return shards_[shard]->pub_paused.load(std::memory_order_acquire);
}

RuntimeStatsSnapshot AsyncIngest::snapshot() const {
  RuntimeStatsSnapshot snap;
  const AsyncIngestStats totals = stats();
  snap.totals.lines_submitted = totals.lines_submitted;
  snap.totals.lines_scored = totals.lines_scored;
  snap.totals.flushes = totals.flushes;
  snap.totals.warnings_published = totals.warnings_published;
  snap.totals.rejected_submits = totals.rejected_submits;

  // Model memory of the detector currently scoring every shard (shared;
  // a swap makes later snapshots report the new model's footprint). Read
  // from the swap-time cache, never through detector_: a straggler
  // snapshot must not dereference a generation a concurrent
  // swap_detector_owned / trainer install is about to retire and free.
  ModelMemoryStats model_mem;
  {
    std::lock_guard<std::mutex> lock(model_mem_mu_);
    model_mem = model_mem_;
  }

  snap.shards.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    snap.shards[s].shard = s;
    snap.shards[s].vpe = shards_[s]->vpe;
    snap.shards[s].worker = shards_[s]->worker;
    snap.shards[s].model_bytes_fp32 = model_mem.weight_bytes_fp32;
    snap.shards[s].model_bytes_quantized = model_mem.weight_bytes_quantized;
    snap.shards[s].model_quantized = model_mem.quantized;
  }

  const auto read_shard_slots = [&](std::size_t s) {
    ShardStatsSnapshot& sh = snap.shards[s];
    const Shard& shard = *shards_[s];
    sh.paused = shard.pub_paused.load(std::memory_order_relaxed);
    sh.lines = shard.pub_lines.load(std::memory_order_relaxed);
    sh.warnings = shard.pub_warnings.load(std::memory_order_relaxed);
    sh.held = shard.pub_held.load(std::memory_order_relaxed);
    sh.tree_bytes = shard.pub_tree_bytes.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      sh.latency.buckets[i] =
          shard.pub_latency[i].load(std::memory_order_relaxed);
    }
  };

  snap.workers.resize(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const Worker& worker = *workers_[w];
    WorkerStatsSnapshot& ws = snap.workers[w];
    ws.worker = w;
    // Seqlock read of this worker's published cut (its slot + its shards'
    // slots): retry while a publish is in progress or completed between
    // our two fence-separated seq reads. After stop() the final publish
    // happened-before the join, so this converges on the first pass.
    unsigned round = 0;
    for (;;) {
      const std::uint64_t s1 = worker.stat_seq.load(std::memory_order_acquire);
      if ((s1 & 1) == 0) {
        ws.epoch = worker.stat_epoch.load(std::memory_order_relaxed);
        ws.lines = worker.stat_lines.load(std::memory_order_relaxed);
        ws.flushes = worker.stat_flushes.load(std::memory_order_relaxed);
        for (const std::size_t s : worker.shard_ids) read_shard_slots(s);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (worker.stat_seq.load(std::memory_order_relaxed) == s1) break;
      }
      nfv::util::queue_detail::backoff(round);
    }
    ws.queue.depth = worker.queue->depth();
    ws.queue.capacity = worker.queue->capacity();
    ws.queue.stalls = worker.queue->stall_count();
  }
  if (workers_.empty()) {
    // Before start(): no writers exist, the slots are all zero — except
    // tree bytes, which can be read directly (no worker owns the tree
    // yet) so pre-seeded templates show up in the memory cut.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      read_shard_slots(s);
      snap.shards[s].tree_bytes = shards_[s]->tree->memory_bytes();
    }
  }

  snap.warning_queue.depth = warning_queue_.depth();
  snap.warning_queue.capacity = warning_queue_.capacity();
  snap.warning_queue.stalls = warning_queue_.stall_count();

  // Fleet memory cut: the arena and forest are read directly (their byte
  // counters are atomics) and counted ONCE fleet-wide, per-shard tree
  // bytes come from the seqlock-published slots above — so the aggregate
  // is consistent with the per-shard rows and shared structures are
  // never re-summed per shard.
  FleetMemoryStats& mem = snap.memory;
  mem.shards = shards_.size();
  mem.shared_arena = token_arena_ != nullptr;
  if (token_arena_ != nullptr) {
    mem.arena_bytes = token_arena_->bytes();
    mem.arena_tokens = token_arena_->size();
  }
  mem.shared_forest = template_forest_ != nullptr;
  if (template_forest_ != nullptr) {
    mem.forest_bytes = template_forest_->bytes();
    mem.forest_templates = template_forest_->size();
  }
  for (const ShardStatsSnapshot& sh : snap.shards) {
    mem.tree_bytes_total += sh.tree_bytes;
    mem.tree_bytes_max = std::max(mem.tree_bytes_max, sh.tree_bytes);
  }
  mem.finalize_bytes_per_vpe();  // zero-shard snapshots report 0, not NaN

  RetrainStats& rt = snap.retrain;
  rt.enabled = config_.online_retrain;
  rt.samples_seen = samples_seen_.load(std::memory_order_relaxed);
  rt.samples_dropped = samples_dropped_.load(std::memory_order_relaxed);
  rt.buffered_events = retrain_buffered_.load(std::memory_order_relaxed);
  rt.rounds = retrain_rounds_.load(std::memory_order_relaxed);
  rt.adapt_rounds = adapt_rounds_.load(std::memory_order_relaxed);
  rt.swaps = retrain_swaps_.load(std::memory_order_relaxed);
  rt.last_swap_lines_scored = last_swap_lines_.load(std::memory_order_relaxed);
  rt.train_seconds =
      static_cast<double>(train_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return snap;
}

void AsyncIngest::worker_loop(std::size_t index) {
  Worker& worker = *workers_[index];
  const bool instrument = config_.instrument;
  // Staggered flush deadline: a deterministic per-worker phase offset
  // (worker w waits deadline * (1 + w/workers)) decorrelates the
  // workers' deadline flushes — without it every worker's micro-batch
  // ripens in lockstep and the aligned flush bursts drive the p99/p999
  // queue-residency cliff at high shard counts under one core. The
  // deadline never affects scores or warnings, so neither does this.
  const std::chrono::microseconds flush_deadline =
      config_.stagger_flush && worker_count_ > 1 &&
              config_.flush_deadline.count() > 0
          ? config_.flush_deadline +
                (config_.flush_deadline *
                 static_cast<std::int64_t>(index)) /
                    static_cast<std::int64_t>(worker_count_)
          : config_.flush_deadline;

  // Per-worker micro-batching group over this worker's shards only.
  const AnomalyDetector* detector = detector_.load(std::memory_order_acquire);
  StreamMonitorGroup group(detector);
  if (tap_queue_) {
    // Online-retrain sample tap: every staged entry, at flush, into the
    // bounded trainer ring. A full ring drops the sample (counted) —
    // sampling pressure must never stall the scoring path.
    group.set_sample_tap([this, &worker](std::size_t local,
                                         nfv::util::SimTime time,
                                         std::int32_t template_id) {
      TapSample sample;
      sample.shard = static_cast<std::uint32_t>(worker.shard_ids[local]);
      sample.template_id = template_id;
      sample.time_seconds = time.seconds;
      samples_seen_.fetch_add(1, std::memory_order_relaxed);
      if (!tap_queue_->try_push(std::move(sample))) {
        samples_dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::size_t> local_of_shard(shards_.size(), 0);
  // Worker-local control/observability state per owned shard, indexed by
  // the group's local id (plain memory: no atomics on the hot path).
  struct LocalShard {
    Shard* shard = nullptr;
    LatencyHistogram latency;
    std::vector<Item> hold;  // parked lines of a paused shard, in order
    bool paused = false;
    bool latency_dirty = false;
  };
  std::vector<LocalShard> locals(worker.shard_ids.size());
  for (std::size_t i = 0; i < worker.shard_ids.size(); ++i) {
    const std::size_t s = worker.shard_ids[i];
    const std::size_t local = group.add(shards_[s]->monitor.get());
    NFV_CHECK(local == i, "group local ids must follow registration order");
    local_of_shard[s] = local;
    locals[i].shard = shards_[s].get();
  }

  std::size_t staged = 0;
  // (local id, submit stamp) of each staged line; latencies are recorded
  // against one clock read taken right after the batch is scored.
  std::vector<std::pair<std::size_t, std::uint64_t>> staged_meta;
  std::uint64_t lines_local = 0;
  std::uint64_t flushes_local = 0;
  std::uint64_t epoch_local = 0;
  bool holds_dirty = false;  // held-lines gauge changed since last publish
  // Copying every dirty 48-bucket histogram into its shared slots is the
  // one publish step whose cost scales with shard count (≈6 cache lines of
  // stores per shard), and doing it every flush is what blows the <=2%
  // instrumentation budget. Counters and gauges still publish per flush;
  // histograms ride along only every kLatencyPublishEvery flushes — and
  // always at quiescent points (barrier, commands, idle, exit), so a
  // flush()-then-snapshot() reader still sees exact bucket counts.
  constexpr std::uint64_t kLatencyPublishEvery = 16;
  std::uint64_t flushes_since_latency_pub = 0;
  bool latency_lagging = false;  // skipped dirty histograms at last publish
  Clock::time_point batch_start{};
  std::uint64_t seen_epoch = 0;
  unsigned idle_round = 0;

  // Seqlock publish of this worker's cut: counters and gauges always,
  // histograms only when forced or on the amortized cadence (and then only
  // for shards that recorded since their last copy). A lagging histogram
  // only ever under-counts, so the snapshot invariant
  // latency.total() <= lines survives the deferral.
  const auto publish_stats = [&](bool force_latency) {
    const bool publish_latency =
        force_latency || ++flushes_since_latency_pub >= kLatencyPublishEvery;
    const std::uint64_t seq = worker.stat_seq.load(std::memory_order_relaxed);
    worker.stat_seq.store(seq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    ++epoch_local;
    worker.stat_epoch.store(epoch_local, std::memory_order_relaxed);
    worker.stat_lines.store(lines_local, std::memory_order_relaxed);
    worker.stat_flushes.store(flushes_local, std::memory_order_relaxed);
    for (LocalShard& ls : locals) {
      ls.shard->pub_paused.store(ls.paused, std::memory_order_relaxed);
      ls.shard->pub_lines.store(ls.shard->monitor->lines_ingested(),
                                std::memory_order_relaxed);
      ls.shard->pub_warnings.store(ls.shard->monitor->warnings_raised(),
                                   std::memory_order_relaxed);
      ls.shard->pub_held.store(ls.hold.size(), std::memory_order_relaxed);
      ls.shard->pub_tree_bytes.store(ls.shard->tree->memory_bytes(),
                                     std::memory_order_relaxed);
      if (ls.latency_dirty && publish_latency) {
        const auto& buckets = ls.latency.buckets();
        for (std::size_t i = 0; i < buckets.size(); ++i) {
          ls.shard->pub_latency[i].store(buckets[i],
                                         std::memory_order_relaxed);
        }
        ls.latency_dirty = false;
      }
    }
    worker.stat_seq.store(seq + 2, std::memory_order_release);
    holds_dirty = false;
    if (publish_latency) {
      flushes_since_latency_pub = 0;
      latency_lagging = false;
    } else {
      for (const LocalShard& ls : locals) {
        if (ls.latency_dirty) {
          latency_lagging = true;
          break;
        }
      }
    }
  };

  const auto flush_group = [&] {
    if (staged == 0) return;
    group.flush();
    flushes_.fetch_add(1, std::memory_order_relaxed);
    lines_scored_.fetch_add(staged, std::memory_order_relaxed);
    ++flushes_local;
    if (instrument) {
      const std::uint64_t scored = now_ns();
      for (const auto& [local, submitted] : staged_meta) {
        locals[local].latency.record(scored > submitted ? scored - submitted
                                                        : 0);
        locals[local].latency_dirty = true;
      }
    }
    staged_meta.clear();
    staged = 0;
    publish_stats(false);
  };

  const auto process_item = [&](Item&& item) {
    if (staged == 0) batch_start = Clock::now();
    const std::size_t local = local_of_shard[item.shard];
    if (instrument) staged_meta.emplace_back(local, item.enqueue_ns);
    ++lines_local;
    if (item.raw) {
      group.ingest(local, item.log.time, item.line);
    } else {
      group.ingest_parsed(local, item.log);
    }
    ++staged;
    if (staged >= config_.flush_batch) flush_group();
  };

  // Drain the command mailbox at a micro-batch boundary. The staged batch
  // is flushed first so a pause/resume never splits one, and the pending
  // gauge only drops AFTER each command's effect (including hold-buffer
  // replay) is complete — that is what wait_commands() certifies.
  const auto apply_commands = [&] {
    flush_group();
    ShardCommand cmd;
    while (worker.commands.try_pop(cmd)) {
      LocalShard& ls = locals[local_of_shard[cmd.shard]];
      if (cmd.kind == ShardCommand::Kind::kPause) {
        ls.paused = true;
      } else if (ls.paused) {
        ls.paused = false;
        // Replay held lines in submission order: the shard's stream is
        // exactly what an unpaused run would have processed by now.
        std::vector<Item> hold = std::move(ls.hold);
        ls.hold.clear();
        for (Item& held : hold) process_item(std::move(held));
      }
      worker.commands_pending.fetch_sub(1, std::memory_order_release);
    }
    publish_stats(true);
  };

  for (;;) {
    if (worker.commands_pending.load(std::memory_order_acquire) != 0) {
      apply_commands();
      continue;
    }

    Item item;
    if (worker.queue->try_pop(item)) {
      idle_round = 0;
      LocalShard& ls = locals[local_of_shard[item.shard]];
      if (ls.paused) {
        ls.hold.push_back(std::move(item));
        holds_dirty = true;
        continue;
      }
      process_item(std::move(item));
      continue;
    }

    // Queue momentarily empty: flush a ripe micro-batch (deadline 0 =
    // flush immediately for minimum latency; batching then only engages
    // under backlog).
    if (staged > 0 &&
        (flush_deadline.count() <= 0 ||
         Clock::now() - batch_start >= flush_deadline)) {
      flush_group();
      continue;
    }

    // Epoch barrier: park with everything flushed and stats published,
    // wait for release, then refresh the detector (it may have been
    // swapped while parked). Held lines of paused shards stay held —
    // flush()'s guarantee covers lines that have reached a monitor.
    const std::uint64_t requested =
        epoch_requested_.load(std::memory_order_acquire);
    if (requested != seen_epoch) {
      flush_group();
      publish_stats(true);
      seen_epoch = requested;
      {
        std::unique_lock<std::mutex> lock(barrier_mu_);
        ++parked_;
        parked_cv_.notify_all();
        released_cv_.wait(lock, [&] {
          return epoch_released_ >= seen_epoch ||
                 closed_.load(std::memory_order_acquire);
        });
      }
      const AnomalyDetector* current =
          detector_.load(std::memory_order_acquire);
      if (current != detector) {
        detector = current;
        group.set_detector(detector);
      }
      continue;
    }

    if (closed_.load(std::memory_order_acquire)) {
      // Drain-and-exit: apply any last commands, force-resume every
      // paused shard (replaying its hold in order), then one final queue
      // sweep in case items raced the close — no submitted line is lost.
      apply_commands();
      for (LocalShard& ls : locals) {
        if (ls.paused || !ls.hold.empty()) {
          ls.paused = false;
          std::vector<Item> hold = std::move(ls.hold);
          ls.hold.clear();
          for (Item& held : hold) process_item(std::move(held));
        }
      }
      while (worker.queue->try_pop(item)) process_item(std::move(item));
      flush_group();
      publish_stats(true);
      return;
    }

    if (holds_dirty || latency_lagging) {
      // Idle with parked lines or deferred histogram buckets accumulated
      // since the last boundary: let snapshot readers catch up.
      publish_stats(true);
      continue;
    }

    nfv::util::queue_detail::backoff(idle_round);
  }
}

void AsyncIngest::request_retrain() {
  NFV_CHECK(config_.online_retrain, "request_retrain without online_retrain");
  NFV_CHECK(started_ && !stopped_, "request_retrain outside start()..stop()");
  {
    std::lock_guard<std::mutex> lock(trainer_mu_);
    ++retrain_requests_;
  }
  trainer_cv_.notify_all();
}

void AsyncIngest::wait_retrain_rounds(std::uint64_t rounds) {
  NFV_CHECK(config_.online_retrain,
            "wait_retrain_rounds without online_retrain");
  NFV_CHECK(started_, "wait_retrain_rounds before start()");
  std::unique_lock<std::mutex> lock(trainer_mu_);
  rounds_cv_.wait(lock, [&] {
    return retrain_rounds_.load(std::memory_order_acquire) >= rounds;
  });
}

void AsyncIngest::trainer_loop() {
  // Like the shard workers, the trainer pins ml kernels to their serial
  // paths: one background thread fine-tuning serially must not contend
  // with the caller for the global fork-join pool.
  nfv::util::ThreadPool::ScopedRegion serial_region;

  // Per-shard recency windows: the newest retrain_samples events of each
  // shard's tapped template-id stream, oldest evicted first. Bounded
  // memory, and the corpus tracks the live distribution.
  std::vector<std::deque<TapSample>> buffers(shards_.size());
  std::uint64_t buffered = 0;
  std::uint64_t serviced_requests = 0;
  std::uint64_t last_trigger_lines = 0;

  for (;;) {
    TapSample sample;
    while (tap_queue_->try_pop(sample)) {
      std::deque<TapSample>& buffer = buffers[sample.shard];
      buffer.push_back(sample);
      if (buffer.size() > config_.retrain_samples) {
        buffer.pop_front();
      } else {
        ++buffered;
      }
    }
    retrain_buffered_.store(buffered, std::memory_order_relaxed);

    bool run_round = false;
    {
      std::unique_lock<std::mutex> lock(trainer_mu_);
      if (trainer_stop_) return;
      if (retrain_requests_ > serviced_requests) {
        ++serviced_requests;
        run_round = true;
      } else if (config_.retrain_interval_lines > 0) {
        const std::uint64_t scored =
            lines_scored_.load(std::memory_order_relaxed);
        if (scored - last_trigger_lines >= config_.retrain_interval_lines) {
          last_trigger_lines = scored;
          run_round = true;
        }
      }
      if (!run_round) {
        trainer_cv_.wait_for(lock, std::chrono::milliseconds(1));
        continue;
      }
    }

    // --- One retrain round -------------------------------------------
    // Materialize the sampled corpus as per-shard streams; every shard's
    // events are already in submission order (FIFO tap, FIFO ring).
    const std::size_t installed_vocab = lineage_->model().config().vocab;
    std::vector<std::vector<logproc::ParsedLog>> streams;
    std::int32_t max_id = -1;
    std::uint64_t total = 0;
    std::uint64_t novel = 0;
    for (const std::deque<TapSample>& buffer : buffers) {
      if (buffer.empty()) continue;
      std::vector<logproc::ParsedLog>& stream = streams.emplace_back();
      stream.reserve(buffer.size());
      for (const TapSample& s : buffer) {
        stream.push_back({nfv::util::SimTime{s.time_seconds}, s.template_id});
        max_id = std::max(max_id, s.template_id);
        ++total;
        if (s.template_id >= 0 &&
            static_cast<std::size_t>(s.template_id) >= installed_vocab) {
          ++novel;
        }
      }
    }

    bool installed = false;
    if (total > 0) {
      const std::size_t vocab = std::max(
          installed_vocab, static_cast<std::size_t>(max_id) + 1);
      const double novel_fraction =
          static_cast<double>(novel) / static_cast<double>(total);
      const bool take_adapt_path =
          novel_fraction >= config_.adapt_novel_fraction;
      std::vector<LogView> views(streams.begin(), streams.end());
      const std::uint64_t t0 = now_ns();
      bool trained_ok = true;
      try {
        // The monthly-style warm path vs the post-update transfer path
        // (freeze lower layers, fine-tune the top). Both grow the vocab
        // to cover newly mined templates and re-quantize when the
        // lineage's config says so.
        if (take_adapt_path) {
          lineage_->adapt(views, vocab);
        } else {
          lineage_->update(views, vocab);
        }
      } catch (const std::exception&) {
        // A corrupt slice must not kill the trainer or the install the
        // NEXT round makes; detection continues on the current model.
        trained_ok = false;
      }
      train_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
      if (trained_ok) {
        if (take_adapt_path) {
          adapt_rounds_.fetch_add(1, std::memory_order_relaxed);
        }
        std::unique_ptr<LstmDetector> shadow = lineage_->clone_as_teacher();
        const AnomalyDetector* raw = shadow.get();
        std::lock_guard<std::mutex> control(control_mu_);
        if (!stopped_) {
          const std::uint64_t swap_epoch =
              install_detector(raw, std::move(shadow),
                               /*drain_pending=*/false);
          last_swap_lines_.store(swap_epoch, std::memory_order_relaxed);
          retrain_swaps_.fetch_add(1, std::memory_order_relaxed);
          installed = true;
        }
      }
    }
    (void)installed;
    {
      std::lock_guard<std::mutex> lock(trainer_mu_);
      retrain_rounds_.fetch_add(1, std::memory_order_release);
    }
    rounds_cv_.notify_all();
  }
}

std::vector<StreamWarning> merge_warnings_by_vpe(
    std::vector<StreamWarning> warnings) {
  std::stable_sort(warnings.begin(), warnings.end(),
                   [](const StreamWarning& a, const StreamWarning& b) {
                     return a.vpe < b.vpe;
                   });
  return warnings;
}

}  // namespace nfv::core
