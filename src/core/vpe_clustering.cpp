#include "core/vpe_clustering.h"

#include "util/check.h"

namespace nfv::core {

VpeClustering cluster_vpes(const ParsedFleet& parsed,
                           nfv::util::SimTime begin, nfv::util::SimTime end,
                           const VpeClusteringOptions& options,
                           nfv::util::Rng& rng) {
  const std::size_t n = parsed.logs_by_vpe.size();
  NFV_CHECK(n > 0, "cluster_vpes on an empty fleet");
  const std::size_t vocab = parsed.vocab();

  ml::Matrix distributions(n, vocab);
  for (std::size_t v = 0; v < n; ++v) {
    const std::vector<logproc::ParsedLog> window =
        logproc::slice_time(parsed.logs_by_vpe[v], begin, end);
    const std::vector<double> dist =
        logproc::template_distribution(window, vocab);
    for (std::size_t t = 0; t < vocab; ++t) {
      distributions.at(v, t) = static_cast<float>(dist[t]);
    }
  }

  VpeClustering clustering;
  if (options.method == GroupingMethod::kSom) {
    ml::Som som(options.som);
    som.fit(distributions, rng);
    const std::vector<std::size_t> bmus = som.assign(distributions);
    // Compact the used units into dense group ids.
    std::vector<int> unit_to_group(som.units(), -1);
    int next_group = 0;
    clustering.group_of_vpe.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      int& group = unit_to_group[bmus[v]];
      if (group < 0) group = next_group++;
      clustering.group_of_vpe[v] = group;
    }
    clustering.num_groups = static_cast<std::size_t>(next_group);
    clustering.selected_k = clustering.num_groups;
    return clustering;
  }
  if (options.fixed_k > 0) {
    ml::KMeansConfig config;
    config.k = std::min(options.fixed_k, n);
    const ml::KMeansResult result = ml::kmeans(distributions, config, rng);
    clustering.num_groups = config.k;
    clustering.selected_k = config.k;
    clustering.group_of_vpe.assign(result.labels.begin(),
                                   result.labels.end());
  } else {
    const std::size_t k_max = std::min(options.k_max, n);
    const std::size_t k_min = std::min(options.k_min, k_max);
    const ml::KSelection selection =
        ml::select_k_by_modularity(distributions, k_min, k_max, rng);
    clustering.num_groups = selection.best_k;
    clustering.selected_k = selection.best_k;
    clustering.modularity_by_k = selection.modularity_by_k;
    clustering.group_of_vpe.assign(selection.result.labels.begin(),
                                   selection.result.labels.end());
  }
  return clustering;
}

VpeClustering single_group(std::size_t num_vpes) {
  VpeClustering clustering;
  clustering.group_of_vpe.assign(num_vpes, 0);
  clustering.num_groups = 1;
  clustering.selected_k = 1;
  return clustering;
}

}  // namespace nfv::core
