// Observability primitives for the async ingest runtime.
//
// The paper's deployment story (§1.3) assumes an operator can watch the
// predictor while it runs. This module is the measurement substrate in
// the NFVMonitor idiom: fixed-bucket latency histograms a worker can
// update with zero allocation and no atomics on the hot path, plain
// snapshot structs the control plane fills at epoch boundaries, and a
// JSON dump of the whole picture.
//
// Histogram semantics
// -------------------
// Power-of-two buckets over nanoseconds: bucket 0 holds exactly the
// value 0 and bucket i (i >= 1) holds [2^(i-1), 2^i); the top bucket
// absorbs everything above its floor. Recording is one bit-scan plus one
// increment into a fixed array — no allocation, ever. Quantiles are
// computed at snapshot time from the merged bucket counts with linear
// interpolation inside the bucket, so a reported pXX is always within
// one bucket width of the exact order statistic (pinned by
// tests/core/runtime_stats_test.cpp against a scalar reference).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace nfv::core {

/// Single-writer latency histogram (see file comment for the bucket
/// layout). Not thread-safe: each shard worker owns its histograms and
/// publishes copies at micro-batch boundaries.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void record(std::uint64_t nanos) { ++buckets_[bucket_index(nanos)]; }
  void clear() { buckets_.fill(0); }

  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  static std::size_t bucket_index(std::uint64_t nanos) {
    const std::size_t w = static_cast<std::size_t>(std::bit_width(nanos));
    return w < kBuckets ? w : kBuckets - 1;
  }
  /// Inclusive lower bound of bucket i.
  static std::uint64_t bucket_floor(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  /// Exclusive upper bound of bucket i (the top bucket is open-ended and
  /// reports its nominal boundary).
  static std::uint64_t bucket_ceil(std::size_t i) {
    return i == 0 ? 1 : std::uint64_t{1} << i;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Plain (copyable, non-atomic) histogram state as captured by a stats
/// snapshot; supports cross-shard merging and quantile extraction.
struct HistogramSnapshot {
  std::array<std::uint64_t, LatencyHistogram::kBuckets> buckets{};

  std::uint64_t total() const;
  void merge(const HistogramSnapshot& other);

  /// Interpolated quantile in nanoseconds, q in [0,1]; 0 when empty.
  /// Matches nfv::util::quantile's rank convention (linear interpolation
  /// at rank q*(n-1)) up to the bucket resolution.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }
};

/// Gauge + counters for one bounded ring.
struct QueueStatsSnapshot {
  std::uint64_t depth = 0;     // sampled; clamped to [0, capacity]
  std::uint64_t capacity = 0;
  std::uint64_t stalls = 0;    // full-ring push attempts (backpressure)
};

/// One shard worker's cut, consistent at its last micro-batch boundary.
struct WorkerStatsSnapshot {
  std::size_t worker = 0;
  std::uint64_t epoch = 0;    // published micro-batch boundaries
  std::uint64_t lines = 0;    // lines ingested across this worker's shards
  std::uint64_t flushes = 0;  // micro-batches scored
  QueueStatsSnapshot queue;   // this worker's input ring
};

/// One vPE shard's cut, consistent with its owning worker's epoch.
struct ShardStatsSnapshot {
  std::size_t shard = 0;
  std::int32_t vpe = -1;
  std::size_t worker = 0;
  bool paused = false;
  std::uint64_t lines = 0;     // lines ingested (incl. window warm-up)
  std::uint64_t warnings = 0;  // warning signatures raised
  std::uint64_t held = 0;      // lines parked in the pause hold buffer
  // Resident bytes of this shard's PER-VPE mining state (private interner
  // tier + signatures + leaf table + scratch; the shared token arena is
  // reported once, fleet-wide, in FleetMemoryStats).
  std::uint64_t tree_bytes = 0;
  HistogramSnapshot latency;   // ingest -> scored/warning-published (ns)
  // Resident model memory of the detector scoring this shard (bytes/vPE
  // for the fleet-soak read; every shard of one AsyncIngest shares the
  // detector, so these repeat the runtime-wide figures).
  std::uint64_t model_bytes_fp32 = 0;
  std::uint64_t model_bytes_quantized = 0;  // 0 = fp32-only scoring
  bool model_quantized = false;
};

/// Global totals (live counters) as already exposed by AsyncIngest.
struct RuntimeTotals {
  std::uint64_t lines_submitted = 0;
  std::uint64_t lines_scored = 0;
  std::uint64_t flushes = 0;
  std::uint64_t warnings_published = 0;
  std::uint64_t rejected_submits = 0;
};

/// Fleet-level memory aggregates over the template-mining side of the
/// runtime: the shared token arena and shared template forest (each
/// counted ONCE, however many vPEs resolve against them — never
/// re-summed per shard) plus the sum/max of per-shard tree bytes (whose
/// memory_bytes() deliberately exclude the shared structures).
/// bytes_per_vpe is the soak bench's headline figure:
/// (arena + forest + sum of tree bytes) / shards — model weights are
/// reported separately in the per-shard ModelMemoryStats block (also
/// shared fleet-wide, so adding them here would double-count per vPE).
struct FleetMemoryStats {
  bool shared_arena = false;       // share_token_arena was on
  std::uint64_t arena_bytes = 0;   // 0 when shared_arena is false
  std::uint64_t arena_tokens = 0;
  bool shared_forest = false;       // share_template_forest was effective
  std::uint64_t forest_bytes = 0;   // 0 when shared_forest is false
  std::uint64_t forest_templates = 0;
  std::uint64_t tree_bytes_total = 0;  // sum over shards
  std::uint64_t tree_bytes_max = 0;    // worst shard
  std::uint64_t shards = 0;
  double bytes_per_vpe = 0.0;

  /// Recompute bytes_per_vpe from the aggregate fields. Zero shards (a
  /// never-started or empty runtime) reports 0.0 — never NaN/inf, so the
  /// JSON dump of an empty snapshot always round-trips through the
  /// parser.
  void finalize_bytes_per_vpe();
};

/// Online continual-learning counters (the trainer thread's cut). All
/// zeros — and enabled=false — when the runtime was built without
/// online_retrain.
struct RetrainStats {
  bool enabled = false;
  /// Template-id events offered to the trainer's tap at micro-batch
  /// flush; dropped = the slice lost to a full tap ring (lossy by
  /// design — sampling pressure must never stall the scoring path).
  std::uint64_t samples_seen = 0;
  std::uint64_t samples_dropped = 0;
  /// Events currently buffered in the per-shard recency windows.
  std::uint64_t buffered_events = 0;
  /// Completed retrain rounds (warm update() path + adapt() path) and
  /// how many of them took the update-shift adapt path.
  std::uint64_t rounds = 0;
  std::uint64_t adapt_rounds = 0;
  /// Shadow models installed through the epoch barrier, and the global
  /// lines_scored count at the moment of the last install (the swap
  /// epoch: every line at or beyond it is scored by the new model).
  std::uint64_t swaps = 0;
  std::uint64_t last_swap_lines_scored = 0;
  /// Wall-clock seconds spent fine-tuning shadow models (training only —
  /// scoring never waits on this).
  double train_seconds = 0.0;
};

/// Everything the control plane reports in one epoch-consistent read:
/// per-worker cuts are each consistent at that worker's latest published
/// micro-batch boundary (seqlock-verified), queue gauges are sampled.
struct RuntimeStatsSnapshot {
  RuntimeTotals totals;
  std::vector<WorkerStatsSnapshot> workers;
  std::vector<ShardStatsSnapshot> shards;
  QueueStatsSnapshot warning_queue;
  FleetMemoryStats memory;
  RetrainStats retrain;

  /// Fleet-wide latency view: all shards' histograms merged.
  HistogramSnapshot merged_latency() const;
};

/// JSON document for the runtime `dump stats` command (schema in the
/// README's "Runtime observability" section). Latency quantiles are
/// reported in microseconds; buckets are emitted sparsely.
std::string to_json(const RuntimeStatsSnapshot& snapshot);

}  // namespace nfv::core
