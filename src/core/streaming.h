// Runtime streaming monitor.
//
// The paper envisions "a runtime predictive analysis system running in
// parallel with existing reactive monitoring systems to provide network
// operators timely warnings" (§1). StreamMonitor is that front-end: it
// consumes one raw syslog line at a time per vPE, mines/matches the
// template online, maintains the k-log history window, scores with the
// current detector, applies the ≥N-anomalies-within-T warning-signature
// rule, and emits warnings with bounded latency — no batch reprocessing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string_view>
#include <vector>

#include "core/detector.h"
#include "core/mapper.h"
#include "logproc/signature_tree.h"
#include "ml/sequence_model.h"

namespace nfv::core {

/// A warning signature raised by the streaming monitor.
struct StreamWarning {
  std::int32_t vpe = -1;
  nfv::util::SimTime time;          // time of the cluster's first anomaly
  std::size_t anomaly_count = 0;    // anomalies in the cluster so far
  double peak_score = 0.0;
  std::int32_t trigger_template = -1;  // template id of the first anomaly
};

struct StreamMonitorConfig {
  /// Detection threshold on the anomaly score.
  double threshold = 10.0;
  /// Warning rule: at least this many over-threshold events...
  std::size_t min_cluster_size = 2;
  /// ...within this span (paper: anomalies <1 min apart; rule uses 2 min).
  nfv::util::Duration cluster_span = nfv::util::Duration::of_minutes(2);
  /// History window length; must match the detector's window.
  std::size_t window = 10;
};

/// Per-vPE online monitor over a shared detector. The detector is not
/// owned and may be swapped (e.g. after a monthly update) via
/// set_detector(); the history window survives the swap.
///
/// Concurrency contract: one StreamMonitor is single-threaded, but many
/// monitors may score against the SAME detector from different threads
/// concurrently — AnomalyDetector::score() is const and must be free of
/// hidden mutation (no lazy caches, no RNG draws). What must NOT overlap
/// with scoring is mutating the detector (fit/update/adapt) or calling
/// set_detector(): swap models between ingest batches, exactly like the
/// monthly-update cadence of the batch pipeline. The signature tree is
/// mutated by ingest() (online template mining) and therefore must be
/// per-monitor, or ingestion must go through ingest_parsed(). Per-monitor
/// trees MAY all be attached to one fleet-wide util::SharedInterner:
/// monitors on different threads then read the arena lock-free while any
/// of them admits new tokens (see the contract in util/interner.h);
/// nothing else about the per-monitor tree contract changes. Enforced by
/// tests/core/streaming_concurrency_test.cpp under TSan.
class StreamMonitor {
 public:
  using WarningCallback = std::function<void(const StreamWarning&)>;

  StreamMonitor(std::int32_t vpe, const AnomalyDetector* detector,
                logproc::SignatureTree* tree, StreamMonitorConfig config,
                WarningCallback on_warning);

  /// Feed one raw syslog line. Returns the anomaly score assigned to this
  /// line (0 while the history window is still filling).
  ///
  /// Ordering contract: a monitor expects per-vPE timestamps to be
  /// non-decreasing (syslog emission order). A line whose timestamp
  /// regresses below the latest anomaly already tracked is still scored,
  /// but for cluster purposes its time is clamped to that latest time —
  /// a clock blip can therefore neither spuriously split an active
  /// anomaly run (by making the *next* in-order gap look larger than it
  /// was) nor rewind a cluster's first-anomaly time.
  double ingest(nfv::util::SimTime time, std::string_view raw_line);

  /// Feed an already-parsed event (template id + time). Same ordering
  /// contract as ingest().
  double ingest_parsed(const logproc::ParsedLog& log);

  /// Deferred ingestion for micro-batched scoring (StreamMonitorGroup):
  /// appends the event to the history and, if a full scoring window is
  /// available, copies it into `window` and returns true. The caller must
  /// later hand the externally computed score back via apply_score(), in
  /// staging order — the combination is exactly ingest_parsed() with the
  /// scoring hoisted out.
  bool stage_parsed(const logproc::ParsedLog& log,
                    std::vector<logproc::ParsedLog>& window);

  /// Apply an externally computed anomaly score for a staged window:
  /// drives the same threshold / warning-cluster tracking as immediate
  /// ingestion.
  void apply_score(nfv::util::SimTime time, std::int32_t template_id,
                   double score);

  /// Online template mining for this monitor's stream (used by the group
  /// front-end before staging).
  logproc::SignatureTree& tree() { return *tree_; }

  /// Swap in a newer model (monthly update / post-update adaptation).
  void set_detector(const AnomalyDetector* detector);
  void set_threshold(double threshold);

  std::int32_t vpe() const { return vpe_; }
  std::size_t warnings_raised() const { return warnings_raised_; }
  /// Events accepted by this monitor (immediate AND staged ingestion,
  /// including window warm-up lines) — the per-shard line counter the
  /// runtime stats snapshots publish.
  std::size_t lines_ingested() const { return lines_ingested_; }
  /// Anomalies in the current (possibly still-growing) cluster run.
  std::size_t run_length() const { return run_count_; }
  const StreamMonitorConfig& config() const { return config_; }

 private:
  void track_cluster(nfv::util::SimTime time, double score,
                     std::int32_t template_id);

  std::int32_t vpe_;
  const AnomalyDetector* detector_;
  logproc::SignatureTree* tree_;
  StreamMonitorConfig config_;
  WarningCallback on_warning_;

  std::deque<logproc::ParsedLog> history_;  // last `window`+1 events
  std::vector<logproc::ParsedLog> scratch_window_;  // ingest_parsed scratch
  // Current anomaly run (cluster candidate). Deliberately O(1): a
  // sustained anomaly storm grows the run for as long as it lasts, and
  // the emitted warning only needs the run's first time, size, peak and
  // trigger — never the full list of member times.
  nfv::util::SimTime run_first_;
  nfv::util::SimTime run_last_;
  std::size_t run_count_ = 0;
  double run_peak_ = 0.0;
  std::int32_t run_trigger_ = -1;
  bool run_reported_ = false;
  std::size_t warnings_raised_ = 0;
  std::size_t lines_ingested_ = 0;
};

/// Micro-batching front-end over a set of per-vPE monitor shards that
/// share one detector. Ingested lines are staged (template mining and
/// history tracking happen immediately; scoring is deferred); flush()
/// then scores ALL staged windows across ALL shards in one fused
/// cross-stream batch (AnomalyDetector::score_streams → the batch planner
/// for the LSTM) and replays the per-monitor warning tracking in arrival
/// order. Scores and warnings are identical to immediate per-line
/// ingestion; only the GEMM granularity changes.
///
/// Concurrency: a group is single-threaded (it serializes its shards'
/// history/cluster mutations); many groups may share one read-only
/// detector across threads under the same contract as StreamMonitor.
class StreamMonitorGroup {
 public:
  explicit StreamMonitorGroup(const AnomalyDetector* detector);

  /// Register a monitor shard; returns its shard id. The monitor must
  /// out-live the group and use the same detector.
  std::size_t add(StreamMonitor* monitor);

  std::size_t shards() const { return monitors_.size(); }
  std::size_t pending() const { return entries_.size(); }

  /// Swap in a newer model for subsequent flushes (and nothing staged may
  /// be pending across the swap — callers quiesce exactly like the
  /// monthly-update cadence). Does not touch the shards' own detector
  /// pointers; a front-end that also uses immediate ingestion must swap
  /// those itself.
  void set_detector(const AnomalyDetector* detector);
  const AnomalyDetector* detector() const { return detector_; }

  /// Observer invoked once per staged entry at flush() time, in arrival
  /// order, with the GROUP-LOCAL shard id (the id add() returned), the
  /// entry's timestamp and its mined template id. This is the template-id
  /// stream the online-retrain trainer samples; the tap runs before
  /// scoring and must not touch the group, its monitors or the detector.
  using SampleTap = std::function<void(
      std::size_t shard, nfv::util::SimTime time, std::int32_t template_id)>;
  void set_sample_tap(SampleTap tap) { sample_tap_ = std::move(tap); }

  /// Stage one raw line for `shard` (template mined via the shard's tree).
  void ingest(std::size_t shard, nfv::util::SimTime time,
              std::string_view raw_line);

  /// Stage one already-parsed event for `shard`.
  void ingest_parsed(std::size_t shard, const logproc::ParsedLog& log);

  /// Score every staged window in one fused batch and drive the shards'
  /// warning tracking. Returns the per-line scores in arrival order
  /// (0 for lines whose history window was still filling).
  std::vector<double> flush();

 private:
  struct PendingEntry {
    std::size_t shard = 0;
    nfv::util::SimTime time;
    std::int32_t template_id = -1;
    // The shard's OWN template-dictionary size when this line was staged
    // — exactly what immediate ingestion would have passed to score().
    // Captured per entry because the tree may grow between staging and
    // flush, and shards' trees differ in size.
    std::size_t vocab = 0;
    // Index into windows_; npos when the history was still filling.
    std::size_t window = npos;
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  };

  const AnomalyDetector* detector_;
  SampleTap sample_tap_;
  std::vector<StreamMonitor*> monitors_;
  std::vector<PendingEntry> entries_;
  // Staged scoring windows. Slots are recycled across flushes: windows_
  // never shrinks and windows_used_ marks the live prefix, so steady-state
  // staging reassigns into a warm slot instead of allocating a fresh
  // window vector per ingested line.
  std::vector<std::vector<logproc::ParsedLog>> windows_;
  std::size_t windows_used_ = 0;
  // flush() scratch, hoisted so a steady-state flush cycle only allocates
  // the score vector it returns.
  std::vector<double> window_score_;
  std::vector<char> window_scored_;
  std::vector<std::size_t> vocabs_;  // distinct, first-appearance order
  std::vector<std::vector<std::size_t>> buckets_;
  std::vector<LogView> views_;
};

/// §5.3 "Operational findings": the four scenarios a detected condition
/// falls into once tickets are known.
enum class OperationalScenario : std::uint8_t {
  kPredictiveSignal,   // precedes the ticket by a useful margin
  kEarlyDetection,     // just ahead of / at ticket generation
  kPartOfTrigger,      // inside the infected period (the ticket's own storm)
  kCoincidental,       // unrelated to any ticket (candidate suppression rule)
};

const char* to_string(OperationalScenario scenario);

struct ScenarioThresholds {
  /// Minimum lead for a warning to count as genuinely predictive.
  nfv::util::Duration predictive_lead = nfv::util::Duration::of_minutes(15);
};

/// Classify a mapped anomaly into the four operational scenarios.
OperationalScenario classify_scenario(const MappedAnomaly& anomaly,
                                      const ScenarioThresholds& thresholds = {});

/// Histogram of scenarios over a mapping result (one count per scenario,
/// indexed by the enum's underlying value).
std::vector<std::size_t> scenario_histogram(
    const MappingResult& mapping, const ScenarioThresholds& thresholds = {});

}  // namespace nfv::core
