// Runtime streaming monitor.
//
// The paper envisions "a runtime predictive analysis system running in
// parallel with existing reactive monitoring systems to provide network
// operators timely warnings" (§1). StreamMonitor is that front-end: it
// consumes one raw syslog line at a time per vPE, mines/matches the
// template online, maintains the k-log history window, scores with the
// current detector, applies the ≥N-anomalies-within-T warning-signature
// rule, and emits warnings with bounded latency — no batch reprocessing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string_view>
#include <vector>

#include "core/detector.h"
#include "core/mapper.h"
#include "logproc/signature_tree.h"
#include "ml/sequence_model.h"

namespace nfv::core {

/// A warning signature raised by the streaming monitor.
struct StreamWarning {
  std::int32_t vpe = -1;
  nfv::util::SimTime time;          // time of the cluster's first anomaly
  std::size_t anomaly_count = 0;    // anomalies in the cluster so far
  double peak_score = 0.0;
  std::int32_t trigger_template = -1;  // template id of the first anomaly
};

struct StreamMonitorConfig {
  /// Detection threshold on the anomaly score.
  double threshold = 10.0;
  /// Warning rule: at least this many over-threshold events...
  std::size_t min_cluster_size = 2;
  /// ...within this span (paper: anomalies <1 min apart; rule uses 2 min).
  nfv::util::Duration cluster_span = nfv::util::Duration::of_minutes(2);
  /// History window length; must match the detector's window.
  std::size_t window = 10;
};

/// Per-vPE online monitor over a shared detector. The detector is not
/// owned and may be swapped (e.g. after a monthly update) via
/// set_detector(); the history window survives the swap.
///
/// Concurrency contract: one StreamMonitor is single-threaded, but many
/// monitors may score against the SAME detector from different threads
/// concurrently — AnomalyDetector::score() is const and must be free of
/// hidden mutation (no lazy caches, no RNG draws). What must NOT overlap
/// with scoring is mutating the detector (fit/update/adapt) or calling
/// set_detector(): swap models between ingest batches, exactly like the
/// monthly-update cadence of the batch pipeline. The signature tree is
/// mutated by ingest() (online template mining) and therefore must be
/// per-monitor, or ingestion must go through ingest_parsed(). Enforced by
/// tests/core/streaming_concurrency_test.cpp under TSan.
class StreamMonitor {
 public:
  using WarningCallback = std::function<void(const StreamWarning&)>;

  StreamMonitor(std::int32_t vpe, const AnomalyDetector* detector,
                logproc::SignatureTree* tree, StreamMonitorConfig config,
                WarningCallback on_warning);

  /// Feed one raw syslog line. Returns the anomaly score assigned to this
  /// line (0 while the history window is still filling).
  double ingest(nfv::util::SimTime time, std::string_view raw_line);

  /// Feed an already-parsed event (template id + time).
  double ingest_parsed(const logproc::ParsedLog& log);

  /// Swap in a newer model (monthly update / post-update adaptation).
  void set_detector(const AnomalyDetector* detector);
  void set_threshold(double threshold);

  std::int32_t vpe() const { return vpe_; }
  std::size_t warnings_raised() const { return warnings_raised_; }
  const StreamMonitorConfig& config() const { return config_; }

 private:
  void track_cluster(nfv::util::SimTime time, double score,
                     std::int32_t template_id);

  std::int32_t vpe_;
  const AnomalyDetector* detector_;
  logproc::SignatureTree* tree_;
  StreamMonitorConfig config_;
  WarningCallback on_warning_;

  std::deque<logproc::ParsedLog> history_;  // last `window`+1 events
  // Current anomaly run (cluster candidate).
  std::vector<nfv::util::SimTime> run_times_;
  double run_peak_ = 0.0;
  std::int32_t run_trigger_ = -1;
  bool run_reported_ = false;
  std::size_t warnings_raised_ = 0;
};

/// §5.3 "Operational findings": the four scenarios a detected condition
/// falls into once tickets are known.
enum class OperationalScenario : std::uint8_t {
  kPredictiveSignal,   // precedes the ticket by a useful margin
  kEarlyDetection,     // just ahead of / at ticket generation
  kPartOfTrigger,      // inside the infected period (the ticket's own storm)
  kCoincidental,       // unrelated to any ticket (candidate suppression rule)
};

const char* to_string(OperationalScenario scenario);

struct ScenarioThresholds {
  /// Minimum lead for a warning to count as genuinely predictive.
  nfv::util::Duration predictive_lead = nfv::util::Duration::of_minutes(15);
};

/// Classify a mapped anomaly into the four operational scenarios.
OperationalScenario classify_scenario(const MappedAnomaly& anomaly,
                                      const ScenarioThresholds& thresholds = {});

/// Histogram of scenarios over a mapping result (one count per scenario,
/// indexed by the enum's underlying value).
std::vector<std::size_t> scenario_histogram(
    const MappingResult& mapping, const ScenarioThresholds& thresholds = {});

}  // namespace nfv::core
