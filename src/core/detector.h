// Common interface for the anomaly detectors compared in §5 (LSTM,
// Autoencoder, One-Class SVM, plus a PCA extension baseline).
//
// Detectors are trained only on "normal" logs (ticket windows excluded),
// support monthly incremental updates and the fast transfer-learning
// adaptation after software updates, and score a log stream position by
// "how surprising is this event given recent history" — higher is more
// anomalous.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "logproc/dataset.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace nfv::core {

/// One scored position in a log stream.
struct ScoredEvent {
  nfv::util::SimTime time;
  double score = 0.0;  // higher = more anomalous
};

/// A view over one vPE's (time-sorted) parsed log stream. Training takes a
/// set of such views — one per vPE — so that sequence windows never splice
/// two different routers' streams together.
using LogView = std::span<const logproc::ParsedLog>;

enum class DetectorKind { kLstm, kAutoencoder, kOcSvm, kPca, kHmm };

const char* to_string(DetectorKind kind);

/// What one ScoredEvent covers. Per-log detectors (LSTM) score every
/// syslog line, so the ≥2-anomalies-within-minutes rule applies; per-
/// document detectors (TF-IDF baselines) already aggregate a window of
/// logs per event, so a single over-threshold document is a detection.
enum class EventGranularity { kPerLog, kPerDocument };

/// Resident model-memory footprint of a detector — the bytes/vPE axis of
/// the fleet-scale soak plan. `weight_bytes_fp32` counts the fp32
/// parameter values; `weight_bytes_quantized` the int8 scoring sidecar
/// (0 when the detector scores in fp32). Detectors without a
/// parameterized model report all-zero.
struct ModelMemoryStats {
  std::size_t weight_bytes_fp32 = 0;
  std::size_t weight_bytes_quantized = 0;
  bool quantized = false;
};

class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;

  /// Train from scratch on normal logs (one view per vPE). `vocab` is the
  /// current template-dictionary size (may exceed the largest id present).
  virtual void fit(std::span<const LogView> streams, std::size_t vocab) = 0;

  /// Monthly incremental (online) update with fresh normal logs.
  virtual void update(std::span<const LogView> streams,
                      std::size_t vocab) = 0;

  /// Fast post-update adaptation (§4.3): copy-the-teacher semantics are
  /// internal; callers simply provide ~1 week of fresh logs.
  virtual void adapt(std::span<const LogView> streams,
                     std::size_t vocab) = 0;

  /// Score one vPE's (test) log stream. Implementations may emit one event
  /// per log position (LSTM) or per document window (feature baselines).
  virtual std::vector<ScoredEvent> score(LogView logs,
                                         std::size_t vocab) const = 0;

  /// Score several streams at once — one result vector per input stream,
  /// in order. The default simply loops score(); detectors with a fused
  /// batched path (LSTM) override it to pack all streams' scoring windows
  /// into large forward batches. Results MUST be identical to calling
  /// score() per stream, and the call must remain const/thread-safe under
  /// the same contract as score().
  virtual std::vector<std::vector<ScoredEvent>> score_streams(
      std::span<const LogView> streams, std::size_t vocab) const {
    std::vector<std::vector<ScoredEvent>> out;
    out.reserve(streams.size());
    for (const LogView& logs : streams) out.push_back(score(logs, vocab));
    return out;
  }

  virtual bool trained() const = 0;
  virtual DetectorKind kind() const = 0;
  virtual EventGranularity granularity() const = 0;

  /// Model-memory footprint for observability (AsyncIngest::stats_json).
  /// Must be const/thread-safe under the same contract as score().
  virtual ModelMemoryStats model_memory() const { return {}; }
};

/// Mapping configuration adjusted to a detector's event granularity: per-
/// document events bypass the multi-anomaly cluster rule.
template <typename MappingConfigT>
MappingConfigT adapt_mapping_for(EventGranularity granularity,
                                 MappingConfigT config) {
  if (granularity == EventGranularity::kPerDocument) {
    config.min_cluster_size = 1;
  }
  return config;
}

}  // namespace nfv::core
