#include "core/streaming.h"

#include "util/check.h"

namespace nfv::core {

StreamMonitor::StreamMonitor(std::int32_t vpe,
                             const AnomalyDetector* detector,
                             logproc::SignatureTree* tree,
                             StreamMonitorConfig config,
                             WarningCallback on_warning)
    : vpe_(vpe),
      detector_(detector),
      tree_(tree),
      config_(config),
      on_warning_(std::move(on_warning)) {
  NFV_CHECK(detector != nullptr, "StreamMonitor requires a detector");
  NFV_CHECK(tree != nullptr, "StreamMonitor requires a signature tree");
  NFV_CHECK(config.window >= 1, "window must be >= 1");
}

void StreamMonitor::set_detector(const AnomalyDetector* detector) {
  NFV_CHECK(detector != nullptr, "detector must not be null");
  detector_ = detector;
}

void StreamMonitor::set_threshold(double threshold) {
  config_.threshold = threshold;
}

double StreamMonitor::ingest(nfv::util::SimTime time,
                             std::string_view raw_line) {
  logproc::ParsedLog log;
  log.time = time;
  log.template_id = tree_->learn(raw_line);  // online template mining
  return ingest_parsed(log);
}

double StreamMonitor::ingest_parsed(const logproc::ParsedLog& log) {
  history_.push_back(log);
  if (history_.size() > config_.window + 1) history_.pop_front();
  if (history_.size() < config_.window + 1) return 0.0;

  // One-window scoring: the detector sees exactly (k history + this log).
  std::vector<logproc::ParsedLog> window(history_.begin(), history_.end());
  const std::vector<ScoredEvent> events =
      detector_->score(window, tree_->size());
  if (events.empty()) return 0.0;  // document-based detectors need more
  const double score = events.back().score;
  if (score >= config_.threshold) {
    track_cluster(log.time, score, log.template_id);
  }
  return score;
}

void StreamMonitor::track_cluster(nfv::util::SimTime time, double score,
                                  std::int32_t template_id) {
  if (!run_times_.empty() &&
      time - run_times_.back() > config_.cluster_span) {
    run_times_.clear();
    run_peak_ = 0.0;
    run_trigger_ = -1;
    run_reported_ = false;
  }
  if (run_times_.empty()) run_trigger_ = template_id;
  run_times_.push_back(time);
  run_peak_ = std::max(run_peak_, score);
  if (!run_reported_ && run_times_.size() >= config_.min_cluster_size) {
    run_reported_ = true;
    ++warnings_raised_;
    if (on_warning_) {
      StreamWarning warning;
      warning.vpe = vpe_;
      warning.time = run_times_.front();
      warning.anomaly_count = run_times_.size();
      warning.peak_score = run_peak_;
      warning.trigger_template = run_trigger_;
      on_warning_(warning);
    }
  }
}

const char* to_string(OperationalScenario scenario) {
  switch (scenario) {
    case OperationalScenario::kPredictiveSignal:
      return "predictive-signal";
    case OperationalScenario::kEarlyDetection:
      return "early-detection";
    case OperationalScenario::kPartOfTrigger:
      return "part-of-trigger";
    case OperationalScenario::kCoincidental:
      return "coincidental";
  }
  return "unknown";
}

OperationalScenario classify_scenario(const MappedAnomaly& anomaly,
                                      const ScenarioThresholds& thresholds) {
  switch (anomaly.outcome) {
    case AnomalyOutcome::kError:
      return OperationalScenario::kPartOfTrigger;
    case AnomalyOutcome::kFalseAlarm:
      return OperationalScenario::kCoincidental;
    case AnomalyOutcome::kEarlyWarning:
      return anomaly.lead >= thresholds.predictive_lead
                 ? OperationalScenario::kPredictiveSignal
                 : OperationalScenario::kEarlyDetection;
  }
  return OperationalScenario::kCoincidental;
}

std::vector<std::size_t> scenario_histogram(
    const MappingResult& mapping, const ScenarioThresholds& thresholds) {
  std::vector<std::size_t> counts(4, 0);
  for (const MappedAnomaly& anomaly : mapping.anomalies) {
    counts[static_cast<std::size_t>(
        classify_scenario(anomaly, thresholds))] += 1;
  }
  return counts;
}

}  // namespace nfv::core
