#include "core/streaming.h"

#include <algorithm>

#include "util/check.h"

namespace nfv::core {

StreamMonitor::StreamMonitor(std::int32_t vpe,
                             const AnomalyDetector* detector,
                             logproc::SignatureTree* tree,
                             StreamMonitorConfig config,
                             WarningCallback on_warning)
    : vpe_(vpe),
      detector_(detector),
      tree_(tree),
      config_(config),
      on_warning_(std::move(on_warning)) {
  NFV_CHECK(detector != nullptr, "StreamMonitor requires a detector");
  NFV_CHECK(tree != nullptr, "StreamMonitor requires a signature tree");
  NFV_CHECK(config.window >= 1, "window must be >= 1");
}

void StreamMonitor::set_detector(const AnomalyDetector* detector) {
  NFV_CHECK(detector != nullptr, "detector must not be null");
  detector_ = detector;
}

void StreamMonitor::set_threshold(double threshold) {
  config_.threshold = threshold;
}

double StreamMonitor::ingest(nfv::util::SimTime time,
                             std::string_view raw_line) {
  logproc::ParsedLog log;
  log.time = time;
  log.template_id = tree_->learn(raw_line);  // online template mining
  return ingest_parsed(log);
}

double StreamMonitor::ingest_parsed(const logproc::ParsedLog& log) {
  // scratch_window_ is a member so steady-state per-line ingestion reuses
  // its capacity instead of allocating a fresh window vector every line.
  if (!stage_parsed(log, scratch_window_)) return 0.0;

  // One-window scoring: the detector sees exactly (k history + this log).
  const std::vector<ScoredEvent> events =
      detector_->score(scratch_window_, tree_->size());
  if (events.empty()) return 0.0;  // document-based detectors need more
  const double score = events.back().score;
  apply_score(log.time, log.template_id, score);
  return score;
}

bool StreamMonitor::stage_parsed(const logproc::ParsedLog& log,
                                 std::vector<logproc::ParsedLog>& window) {
  ++lines_ingested_;  // both ingestion paths funnel through here
  history_.push_back(log);
  if (history_.size() > config_.window + 1) history_.pop_front();
  if (history_.size() < config_.window + 1) return false;
  window.assign(history_.begin(), history_.end());
  return true;
}

void StreamMonitor::apply_score(nfv::util::SimTime time,
                                std::int32_t template_id, double score) {
  if (score >= config_.threshold) {
    track_cluster(time, score, template_id);
  }
}

void StreamMonitor::track_cluster(nfv::util::SimTime time, double score,
                                  std::int32_t template_id) {
  // Ordering contract (see ingest()): timestamps regressing below the
  // run's latest anomaly are clamped to it. Without the clamp a single
  // out-of-order line would become the gap reference for the NEXT
  // in-order anomaly, whose (in-order) timestamp could then look more
  // than cluster_span away — spuriously splitting a live cluster — and
  // with an unsigned Duration representation the negative gap itself
  // would underflow. SimTime/Duration are signed int64 seconds, so the
  // subtraction is well-defined; the clamp removes the semantic hazard.
  if (run_count_ > 0 && time < run_last_) time = run_last_;
  if (run_count_ > 0 && time - run_last_ > config_.cluster_span) {
    run_count_ = 0;
    run_peak_ = 0.0;
    run_trigger_ = -1;
    run_reported_ = false;
  }
  if (run_count_ == 0) {
    run_trigger_ = template_id;
    run_first_ = time;
  }
  run_last_ = time;
  ++run_count_;
  run_peak_ = std::max(run_peak_, score);
  if (!run_reported_ && run_count_ >= config_.min_cluster_size) {
    run_reported_ = true;
    ++warnings_raised_;
    if (on_warning_) {
      StreamWarning warning;
      warning.vpe = vpe_;
      warning.time = run_first_;
      warning.anomaly_count = run_count_;
      warning.peak_score = run_peak_;
      warning.trigger_template = run_trigger_;
      on_warning_(warning);
    }
  }
}

StreamMonitorGroup::StreamMonitorGroup(const AnomalyDetector* detector)
    : detector_(detector) {
  NFV_CHECK(detector != nullptr, "StreamMonitorGroup requires a detector");
}

std::size_t StreamMonitorGroup::add(StreamMonitor* monitor) {
  NFV_CHECK(monitor != nullptr, "cannot add a null monitor");
  monitors_.push_back(monitor);
  return monitors_.size() - 1;
}

void StreamMonitorGroup::set_detector(const AnomalyDetector* detector) {
  NFV_CHECK(detector != nullptr, "detector must not be null");
  NFV_CHECK(entries_.empty(),
            "detector swap with staged entries pending; flush() first");
  detector_ = detector;
}

void StreamMonitorGroup::ingest(std::size_t shard, nfv::util::SimTime time,
                                std::string_view raw_line) {
  NFV_CHECK(shard < monitors_.size(), "unknown shard " << shard);
  logproc::ParsedLog log;
  log.time = time;
  log.template_id = monitors_[shard]->tree().learn(raw_line);
  ingest_parsed(shard, log);
}

void StreamMonitorGroup::ingest_parsed(std::size_t shard,
                                       const logproc::ParsedLog& log) {
  NFV_CHECK(shard < monitors_.size(), "unknown shard " << shard);
  PendingEntry entry;
  entry.shard = shard;
  entry.time = log.time;
  entry.template_id = log.template_id;
  // Captured AFTER any online mining for this line, matching the
  // tree_->size() an immediate ingest_parsed() would score with.
  entry.vocab = monitors_[shard]->tree().size();
  if (windows_used_ == windows_.size()) windows_.emplace_back();
  if (monitors_[shard]->stage_parsed(log, windows_[windows_used_])) {
    entry.window = windows_used_;
    ++windows_used_;
  }
  entries_.push_back(entry);
}

std::vector<double> StreamMonitorGroup::flush() {
  std::vector<double> scores(entries_.size(), 0.0);
  if (entries_.empty()) return scores;

  // Micro-batch sample tap (online retrain): every staged entry — warm-up
  // lines included, they are part of the template sequence — in arrival
  // order, before any scoring so a tap can never perturb scores.
  if (sample_tap_) {
    for (const PendingEntry& entry : entries_) {
      sample_tap_(entry.shard, entry.time, entry.template_id);
    }
  }

  if (windows_used_ > 0) {
    // Fused cross-shard batches: every staged window becomes one
    // single-window stream, and score_streams packs them into large
    // forward batches via the batch planner. Windows are bucketed by the
    // vocabulary captured at stage time: immediate ingestion passes each
    // shard's OWN tree size at that moment, never the max across shards,
    // and the "scores are identical" contract above requires batching to
    // preserve that. In steady state the vocabulary is stable, so this is
    // one bucket — one fused batch — per flush.
    window_score_.assign(windows_used_, 0.0);
    window_scored_.assign(windows_used_, 0);
    vocabs_.clear();
    for (const PendingEntry& entry : entries_) {
      if (entry.window == PendingEntry::npos) continue;
      std::size_t b = 0;
      while (b < vocabs_.size() && vocabs_[b] != entry.vocab) ++b;
      if (b == vocabs_.size()) {
        vocabs_.push_back(entry.vocab);
        if (b == buckets_.size()) buckets_.emplace_back();
        buckets_[b].clear();
      }
      buckets_[b].push_back(entry.window);
    }
    for (std::size_t b = 0; b < vocabs_.size(); ++b) {
      views_.clear();
      views_.reserve(buckets_[b].size());
      for (std::size_t w : buckets_[b]) views_.emplace_back(windows_[w]);
      const std::vector<std::vector<ScoredEvent>> events_by_window =
          detector_->score_streams(views_, vocabs_[b]);
      for (std::size_t j = 0; j < buckets_[b].size(); ++j) {
        if (events_by_window[j].empty()) continue;  // document detectors
        window_score_[buckets_[b][j]] = events_by_window[j].back().score;
        window_scored_[buckets_[b][j]] = 1;
      }
    }

    // Replay in arrival order: identical threshold / cluster tracking to
    // immediate ingestion.
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const PendingEntry& entry = entries_[i];
      if (entry.window == PendingEntry::npos) continue;
      if (!window_scored_[entry.window]) continue;
      const double score = window_score_[entry.window];
      scores[i] = score;
      monitors_[entry.shard]->apply_score(entry.time, entry.template_id,
                                          score);
    }
  }
  entries_.clear();
  windows_used_ = 0;
  return scores;
}

const char* to_string(OperationalScenario scenario) {
  switch (scenario) {
    case OperationalScenario::kPredictiveSignal:
      return "predictive-signal";
    case OperationalScenario::kEarlyDetection:
      return "early-detection";
    case OperationalScenario::kPartOfTrigger:
      return "part-of-trigger";
    case OperationalScenario::kCoincidental:
      return "coincidental";
  }
  return "unknown";
}

OperationalScenario classify_scenario(const MappedAnomaly& anomaly,
                                      const ScenarioThresholds& thresholds) {
  switch (anomaly.outcome) {
    case AnomalyOutcome::kError:
      return OperationalScenario::kPartOfTrigger;
    case AnomalyOutcome::kFalseAlarm:
      return OperationalScenario::kCoincidental;
    case AnomalyOutcome::kEarlyWarning:
      return anomaly.lead >= thresholds.predictive_lead
                 ? OperationalScenario::kPredictiveSignal
                 : OperationalScenario::kEarlyDetection;
  }
  return OperationalScenario::kCoincidental;
}

std::vector<std::size_t> scenario_histogram(
    const MappingResult& mapping, const ScenarioThresholds& thresholds) {
  std::vector<std::size_t> counts(4, 0);
  for (const MappedAnomaly& anomaly : mapping.anomalies) {
    counts[static_cast<std::size_t>(
        classify_scenario(anomaly, thresholds))] += 1;
  }
  return counts;
}

}  // namespace nfv::core
