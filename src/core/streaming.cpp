#include "core/streaming.h"

#include <algorithm>

#include "util/check.h"

namespace nfv::core {

StreamMonitor::StreamMonitor(std::int32_t vpe,
                             const AnomalyDetector* detector,
                             logproc::SignatureTree* tree,
                             StreamMonitorConfig config,
                             WarningCallback on_warning)
    : vpe_(vpe),
      detector_(detector),
      tree_(tree),
      config_(config),
      on_warning_(std::move(on_warning)) {
  NFV_CHECK(detector != nullptr, "StreamMonitor requires a detector");
  NFV_CHECK(tree != nullptr, "StreamMonitor requires a signature tree");
  NFV_CHECK(config.window >= 1, "window must be >= 1");
}

void StreamMonitor::set_detector(const AnomalyDetector* detector) {
  NFV_CHECK(detector != nullptr, "detector must not be null");
  detector_ = detector;
}

void StreamMonitor::set_threshold(double threshold) {
  config_.threshold = threshold;
}

double StreamMonitor::ingest(nfv::util::SimTime time,
                             std::string_view raw_line) {
  logproc::ParsedLog log;
  log.time = time;
  log.template_id = tree_->learn(raw_line);  // online template mining
  return ingest_parsed(log);
}

double StreamMonitor::ingest_parsed(const logproc::ParsedLog& log) {
  std::vector<logproc::ParsedLog> window;
  if (!stage_parsed(log, window)) return 0.0;

  // One-window scoring: the detector sees exactly (k history + this log).
  const std::vector<ScoredEvent> events =
      detector_->score(window, tree_->size());
  if (events.empty()) return 0.0;  // document-based detectors need more
  const double score = events.back().score;
  apply_score(log.time, log.template_id, score);
  return score;
}

bool StreamMonitor::stage_parsed(const logproc::ParsedLog& log,
                                 std::vector<logproc::ParsedLog>& window) {
  history_.push_back(log);
  if (history_.size() > config_.window + 1) history_.pop_front();
  if (history_.size() < config_.window + 1) return false;
  window.assign(history_.begin(), history_.end());
  return true;
}

void StreamMonitor::apply_score(nfv::util::SimTime time,
                                std::int32_t template_id, double score) {
  if (score >= config_.threshold) {
    track_cluster(time, score, template_id);
  }
}

void StreamMonitor::track_cluster(nfv::util::SimTime time, double score,
                                  std::int32_t template_id) {
  if (!run_times_.empty() &&
      time - run_times_.back() > config_.cluster_span) {
    run_times_.clear();
    run_peak_ = 0.0;
    run_trigger_ = -1;
    run_reported_ = false;
  }
  if (run_times_.empty()) run_trigger_ = template_id;
  run_times_.push_back(time);
  run_peak_ = std::max(run_peak_, score);
  if (!run_reported_ && run_times_.size() >= config_.min_cluster_size) {
    run_reported_ = true;
    ++warnings_raised_;
    if (on_warning_) {
      StreamWarning warning;
      warning.vpe = vpe_;
      warning.time = run_times_.front();
      warning.anomaly_count = run_times_.size();
      warning.peak_score = run_peak_;
      warning.trigger_template = run_trigger_;
      on_warning_(warning);
    }
  }
}

StreamMonitorGroup::StreamMonitorGroup(const AnomalyDetector* detector)
    : detector_(detector) {
  NFV_CHECK(detector != nullptr, "StreamMonitorGroup requires a detector");
}

std::size_t StreamMonitorGroup::add(StreamMonitor* monitor) {
  NFV_CHECK(monitor != nullptr, "cannot add a null monitor");
  monitors_.push_back(monitor);
  return monitors_.size() - 1;
}

void StreamMonitorGroup::ingest(std::size_t shard, nfv::util::SimTime time,
                                std::string_view raw_line) {
  NFV_CHECK(shard < monitors_.size(), "unknown shard " << shard);
  logproc::ParsedLog log;
  log.time = time;
  log.template_id = monitors_[shard]->tree().learn(raw_line);
  ingest_parsed(shard, log);
}

void StreamMonitorGroup::ingest_parsed(std::size_t shard,
                                       const logproc::ParsedLog& log) {
  NFV_CHECK(shard < monitors_.size(), "unknown shard " << shard);
  PendingEntry entry;
  entry.shard = shard;
  entry.time = log.time;
  entry.template_id = log.template_id;
  std::vector<logproc::ParsedLog> window;
  if (monitors_[shard]->stage_parsed(log, window)) {
    entry.window = windows_.size();
    windows_.push_back(std::move(window));
  }
  entries_.push_back(entry);
}

std::vector<double> StreamMonitorGroup::flush() {
  std::vector<double> scores(entries_.size(), 0.0);
  if (entries_.empty()) return scores;

  if (!windows_.empty()) {
    // One fused cross-shard batch: every staged window becomes one
    // single-window stream, and score_streams packs them all into large
    // forward batches via the batch planner.
    std::vector<LogView> views(windows_.begin(), windows_.end());
    // Current template-dictionary size across the shards (the LSTM
    // detector ignores it; template ids beyond its training vocabulary
    // already score as maximally surprising).
    std::size_t vocab = 0;
    for (StreamMonitor* monitor : monitors_) {
      vocab = std::max(vocab, monitor->tree().size());
    }
    const std::vector<std::vector<ScoredEvent>> events_by_window =
        detector_->score_streams(views, vocab);

    // Replay in arrival order: identical threshold / cluster tracking to
    // immediate ingestion.
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const PendingEntry& entry = entries_[i];
      if (entry.window == PendingEntry::npos) continue;
      const std::vector<ScoredEvent>& events = events_by_window[entry.window];
      if (events.empty()) continue;  // document-based detectors need more
      const double score = events.back().score;
      scores[i] = score;
      monitors_[entry.shard]->apply_score(entry.time, entry.template_id,
                                          score);
    }
  }
  entries_.clear();
  windows_.clear();
  return scores;
}

const char* to_string(OperationalScenario scenario) {
  switch (scenario) {
    case OperationalScenario::kPredictiveSignal:
      return "predictive-signal";
    case OperationalScenario::kEarlyDetection:
      return "early-detection";
    case OperationalScenario::kPartOfTrigger:
      return "part-of-trigger";
    case OperationalScenario::kCoincidental:
      return "coincidental";
  }
  return "unknown";
}

OperationalScenario classify_scenario(const MappedAnomaly& anomaly,
                                      const ScenarioThresholds& thresholds) {
  switch (anomaly.outcome) {
    case AnomalyOutcome::kError:
      return OperationalScenario::kPartOfTrigger;
    case AnomalyOutcome::kFalseAlarm:
      return OperationalScenario::kCoincidental;
    case AnomalyOutcome::kEarlyWarning:
      return anomaly.lead >= thresholds.predictive_lead
                 ? OperationalScenario::kPredictiveSignal
                 : OperationalScenario::kEarlyDetection;
  }
  return OperationalScenario::kCoincidental;
}

std::vector<std::size_t> scenario_histogram(
    const MappingResult& mapping, const ScenarioThresholds& thresholds) {
  std::vector<std::size_t> counts(4, 0);
  for (const MappedAnomaly& anomaly : mapping.anomalies) {
    counts[static_cast<std::size_t>(
        classify_scenario(anomaly, thresholds))] += 1;
  }
  return counts;
}

}  // namespace nfv::core
