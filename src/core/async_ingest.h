// Asynchronous streaming ingest runtime.
//
// The paper's deployment vision is "a runtime predictive analysis system
// running in parallel with existing reactive monitoring systems" (§1).
// AsyncIngest is that runtime at production line rates: producer threads
// hand raw syslog lines (or pre-parsed events) to per-vPE monitor shards
// over bounded queues; shard workers stage lines into per-worker
// StreamMonitorGroup micro-batches and flush them through the fused
// batched scorer on a size-or-deadline trigger; warnings come back over a
// lock-free MPSC queue the caller drains.
//
// Topology and determinism
// ------------------------
//   producers --MPSC/SPSC--> worker[shard % workers] --> StreamMonitorGroup
//                                                          |  flush()
//   caller  <--- lock-free MPSC warning queue <------------+
//
// Every vPE shard is pinned to exactly one worker, and each worker drains
// its queue FIFO, so a vPE's lines are mined, staged, scored and
// cluster-tracked in submission order no matter how many workers run.
// Scores do not depend on micro-batch composition (StreamMonitorGroup
// captures each shard's vocabulary at stage time and the batched scorer
// is bit-identical to per-window scoring), so the per-vPE warning stream
// is byte-for-byte the one a serial StreamMonitor replay produces — for
// any worker count, flush_batch, or deadline. Only the interleaving of
// DIFFERENT vPEs' warnings in the drain is scheduling-dependent;
// merge_warnings_by_vpe() restores a canonical order.
//
// Backpressure: submit() blocks when the target worker's queue is full
// (end-to-end memory is bounded by workers × queue_capacity items);
// try_submit() instead returns false so the producer can shed load.
//
// Detector swap (monthly update / post-update adaptation) uses an epoch
// barrier: swap_detector() parks every worker between micro-batches
// (queues drained, groups flushed), installs the new model, and resumes —
// honoring the read-only-detector contract of src/core/streaming.h.
//
// Observability + control plane
// -----------------------------
// The runtime is not a black box (the NFVMonitor idiom): every worker
// keeps per-shard counters and an ingest-to-scored latency histogram in
// worker-local memory (zero allocation, no atomics on the hot path) and
// publishes them into seqlock-guarded slots at micro-batch boundaries —
// so snapshot() returns, at any moment and from any thread, a stats cut
// in which each worker's counters are mutually consistent at its latest
// completed micro-batch ("epoch-consistent"). Histogram buckets are the
// bulky part of a publish, so they ride along on an amortized cadence
// (every 16th flush) and may lag the counters by a few micro-batches
// mid-burst; every quiescent point (epoch barrier, command application,
// idle, stop()) forces them current, so flush()-then-snapshot() reads
// exact buckets and a live cut never over-counts (latency total <=
// lines). Queue-depth gauges and
// backpressure-stall counters come from the rings themselves. Latency is
// measured submit -> micro-batch scored; warnings are published inside
// that interval, so the histogram upper-bounds ingest-to-warning latency
// for every warning in the batch. Instrumentation never feeds back into
// scoring: warning streams stay byte-for-byte the serial replay.
//
// Runtime commands ride a thread-safe per-worker command queue and are
// applied by the owning worker at its next micro-batch boundary:
//   - pause_shard(): the shard's lines are parked, in order, in a hold
//     buffer (mined/scored only on resume — memory grows with the pause,
//     bounded only by producer backpressure);
//   - resume_shard(): the hold buffer replays in order, so the per-vPE
//     warning stream is unchanged by any pause/resume schedule;
//   - swap_detector() (epoch barrier, below) and snapshot()/stats_json()
//     ("dump stats") complete the command set.
// stop() implicitly resumes paused shards and replays their holds: no
// submitted line is ever lost.
//
// Threading rules: any number of threads may submit (see single_producer
// for the SPSC fast path), and any thread may call snapshot(),
// stats_json(), shard_paused(), stats() — including concurrently with
// stop(). One designated caller thread owns the rest of the control
// plane — start/flush/swap_detector/pause/resume/wait_commands/stop/
// drain_warnings — and must not submit concurrently with flush/swap/stop
// (workers quiesce by draining their queues, which never happens under a
// firehose).
//
// Online continual learning (config.online_retrain)
// -------------------------------------------------
// The paper's answer to temporal dynamics — monthly incremental training
// plus transfer learning after software updates (§1.3, Fig. 11) — runs
// INSIDE the runtime: each worker's StreamMonitorGroup taps the staged
// (shard, time, template-id) stream at micro-batch flush into a bounded
// MPSC ring (lossy by design: overflow increments a drop counter, never
// stalls a worker), and a background trainer thread keeps the most recent
// `retrain_samples` events per shard as its fine-tuning corpus. Every
// `retrain_interval_lines` scored lines (or on request_retrain()) it
// fine-tunes a private shadow copy of the installed LstmDetector —
// update() on the warm path, adapt() (freeze lower layers, fine-tune the
// top) when at least `adapt_novel_fraction` of the sampled events carry
// template ids the installed model has never seen, the update-shift
// signature — re-quantizes it when config().quantize is set, and installs
// a copy through the same epoch barrier as swap_detector(): detection
// never stops during retrain. Installed generations are owned by the
// runtime; a replaced generation moves to a retired list and is freed
// only at the NEXT epoch barrier, after every worker has provably stopped
// referencing it (snapshot() never dereferences the detector at all — it
// reads a cached ModelMemoryStats refreshed at swap time).
//
// Determinism contract with retrain: disabled, warning streams stay
// byte-for-byte the serial replay. Enabled, swap epochs partition each
// per-vPE stream, and every epoch is byte-identical to a serial replay
// that scores it with that epoch's model (pinned by the continual suite);
// WHERE the swaps land in the stream is scheduling-dependent, exactly
// like a caller-driven swap_detector(). Mixing caller-driven swap_detector
// calls with online_retrain is unsupported: the trainer's lineage would
// silently fork from whatever the caller installed.
//
// The trainer's install quiesces on the same barrier as flush(): under a
// saturating firehose that never lets a worker's queue drain, an install
// waits for the first natural gap. Producers pacing below queue capacity
// (the deployment regime) yield such gaps continuously.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "core/runtime_stats.h"
#include "core/streaming.h"
#include "logproc/signature_tree.h"
#include "util/interner.h"
#include "util/mpsc_queue.h"
#include "util/spsc_queue.h"
#include "util/thread_pool.h"

namespace nfv::core {

class LstmDetector;

struct AsyncIngestConfig {
  /// Shard workers; 0 resolves like the thread pool (NFVPRED_THREADS or
  /// hardware concurrency), then clamps to the shard count.
  std::size_t workers = 0;
  /// Bounded capacity of each worker's input queue (rounded up to a power
  /// of two). Full queue = backpressure.
  std::size_t queue_capacity = 4096;
  /// Flush a worker's staged micro-batch once it holds this many lines...
  std::size_t flush_batch = 64;
  /// ...or once this much wall-clock time passed since the batch's first
  /// line while the queue is idle (0 = flush whenever the queue is empty).
  /// Neither trigger affects scores or warnings, only latency/GEMM size.
  std::chrono::microseconds flush_deadline{2000};
  /// Stagger each worker's flush deadline by a deterministic phase offset
  /// (worker w waits flush_deadline * (1 + w/workers)), so at high shard
  /// counts the workers' deadline flushes decorrelate instead of firing
  /// in lockstep — the aligned bursts are what drove the p99/p999
  /// queue-residency cliff at 10k shards under one core. Deadlines never
  /// affect scores or warnings, so neither does the stagger.
  bool stagger_flush = true;
  /// Bounded capacity of the warning queue. Overflowing warnings spill
  /// losslessly (and still in per-vPE order) into per-worker buffers, so
  /// an undrained caller never blocks or crashes the workers.
  std::size_t warning_capacity = 4096;
  /// Promise that exactly one thread submits: per-worker routing then
  /// uses the cheaper wait-free SPSC ring instead of the MPSC ring.
  bool single_producer = false;
  /// Per-shard ingest-to-scored latency histograms (submit timestamps +
  /// one clock read per flushed batch). Counters, gauges and the command
  /// plane stay on regardless; bench_ingest_throughput gates the
  /// instrumented/uninstrumented gap at <= 2% lines/sec.
  bool instrument = true;
  /// All shards of this runtime share one read-mostly token arena
  /// (util::SharedInterner): the heavily overlapping fleet token set is
  /// stored once instead of per vPE, and shared-range token ids are
  /// identical across every shard's tree. Warning streams are unaffected
  /// (template mining depends on token text, never numeric ids — pinned
  /// by the miner-equivalence and async determinism tests). Disable for
  /// the fully-private pre-arena layout (the bytes/vPE baseline in
  /// bench_fleet_soak).
  bool share_token_arena = true;
  /// All shards additionally share one read-mostly template forest
  /// (logproc::SharedSignatureForest): templates whose token ids are all
  /// shared-arena ids are stored once fleet-wide as immutable nodes with
  /// fleet-stable node ids, and each shard tree keeps only a 16-byte
  /// entry (match count + node id) plus a copy-on-write private range
  /// for diverging templates. Warning streams are unaffected (pinned by
  /// miner_equivalence_test and the async determinism tests). Effective
  /// only when share_token_arena is also set — the forest's node
  /// sequences are only meaningful over a fleet-wide token id space.
  bool share_template_forest = true;
  /// Online continual learning: run the background trainer thread (see
  /// the file comment). Requires the detector passed to the constructor
  /// to be an LstmDetector (checked at start()).
  bool online_retrain = false;
  /// Fire a retrain round each time this many additional lines have been
  /// scored runtime-wide (0 disables the interval trigger; rounds then
  /// run only on request_retrain()).
  std::uint64_t retrain_interval_lines = 50000;
  /// Per-shard recency window: the trainer fine-tunes on at most this
  /// many of the most recently sampled events per shard, so the corpus
  /// tracks the live distribution and memory stays bounded.
  std::size_t retrain_samples = 2048;
  /// Capacity of the bounded flush-tap ring between workers and the
  /// trainer. Overflow is dropped and counted (RetrainStats), never
  /// blocking the scoring path.
  std::size_t retrain_tap_capacity = 16384;
  /// Take the transfer-learning adapt() path when at least this fraction
  /// of the sampled corpus carries template ids outside the installed
  /// model's vocabulary (a fleet software update); otherwise the warm
  /// incremental update() path runs.
  double adapt_novel_fraction = 0.05;
};

struct AsyncIngestStats {
  std::uint64_t lines_submitted = 0;
  std::uint64_t lines_scored = 0;  // lines that went through a flush
  std::uint64_t flushes = 0;
  std::uint64_t warnings_published = 0;
  std::uint64_t rejected_submits = 0;  // failed try_submit calls
};

class AsyncIngest {
 public:
  explicit AsyncIngest(const AnomalyDetector* detector,
                       AsyncIngestConfig config = {});
  ~AsyncIngest();

  AsyncIngest(const AsyncIngest&) = delete;
  AsyncIngest& operator=(const AsyncIngest&) = delete;

  /// Register a per-vPE shard (its own signature tree + StreamMonitor)
  /// before start(); returns the shard id used by submit().
  std::size_t add_shard(std::int32_t vpe, StreamMonitorConfig config);

  /// Launch the shard workers. add_shard() is frozen from here on.
  void start();
  bool started() const { return started_; }

  /// Route one raw syslog line to `shard` (template mined online by that
  /// shard's worker). Blocks while the worker's queue is full; the line
  /// is never dropped. Producer threads only.
  void submit(std::size_t shard, nfv::util::SimTime time, std::string line);
  /// Non-blocking variant: false (and counted in stats) when the worker's
  /// queue is full — the caller decides whether to retry, buffer or shed.
  bool try_submit(std::size_t shard, nfv::util::SimTime time,
                  std::string line);

  /// Pre-parsed variants of the above.
  void submit_parsed(std::size_t shard, const logproc::ParsedLog& log);
  bool try_submit_parsed(std::size_t shard, const logproc::ParsedLog& log);

  /// Move every published warning into `out` (appended); returns how many.
  /// Warnings from one vPE arrive in emission order; across vPEs the
  /// interleaving follows scheduling. Caller thread only.
  std::size_t drain_warnings(std::vector<StreamWarning>& out);

  /// Barrier: returns once every line submitted so far has been scored
  /// and every staged micro-batch flushed. Requires producers to be
  /// quiet for the duration of the call. Caller thread only.
  void flush();

  /// Epoch barrier + model swap: quiesces all workers between
  /// micro-batches (implies flush()), swaps the detector on every shard
  /// monitor and worker group, and resumes. The detector stays
  /// caller-owned and must outlive its installation by one further epoch
  /// barrier. Caller thread only; unsupported with online_retrain.
  void swap_detector(const AnomalyDetector* detector);

  /// Ownership-transfer variant of swap_detector(): the runtime keeps the
  /// model alive after replacement on a retired-generation list freed at
  /// the NEXT epoch barrier, so no straggler can ever read a destroyed
  /// model. This is the trainer's install path; it may also be called by
  /// the control-plane thread. Serialized against flush()/stop() and the
  /// trainer's own installs.
  void swap_detector_owned(std::unique_ptr<const AnomalyDetector> detector);

  /// The detector generation currently scoring every shard. With
  /// swap_detector_owned / online_retrain the pointer stays valid from
  /// the moment it is observed until one epoch barrier after a later
  /// swap replaces it (and at least until the runtime is destroyed when
  /// no further swap happens). Any thread.
  const AnomalyDetector* installed_detector() const {
    return detector_.load(std::memory_order_acquire);
  }

  /// Ask the trainer for an immediate retrain round, in addition to the
  /// interval trigger. online_retrain only; any thread.
  void request_retrain();
  /// Block until the trainer has completed at least `rounds` retrain
  /// rounds since start() (a round counts even when the sampled corpus
  /// was empty and nothing was installed — check RetrainStats::swaps).
  /// online_retrain only; control-plane thread only.
  void wait_retrain_rounds(std::uint64_t rounds);

  /// Final flush, worker shutdown, join. Idempotent; also run by the
  /// destructor. Pending warnings stay drainable afterwards.
  void stop();

  // --- Runtime control plane ---------------------------------------

  /// Ask the owning worker to pause `shard` at its next micro-batch
  /// boundary: subsequent lines for the shard are parked (in submission
  /// order) in a hold buffer instead of being mined/scored, and replay
  /// in order on resume — the per-vPE warning stream is identical to a
  /// never-paused run as long as the detector is unchanged; with a
  /// swap_detector() in between, held lines are scored by the NEW model
  /// (exactly a serial swap at the pause position). Any thread may
  /// enqueue; use wait_commands() to observe application. Caller must
  /// not race stop().
  void pause_shard(std::size_t shard);
  void resume_shard(std::size_t shard);
  /// Returns once every pause/resume command issued so far has been
  /// applied by its worker. Control-plane thread only (a worker parked
  /// inside a concurrent flush()/swap_detector() cannot apply commands).
  void wait_commands();
  /// Applied (not merely requested) pause state; any thread.
  bool shard_paused(std::size_t shard) const;

  /// Epoch-consistent stats snapshot, readable while workers run (and
  /// after stop()): per-worker/per-shard counters + latency histograms
  /// as of each worker's latest published micro-batch boundary, plus
  /// sampled queue gauges. Any thread; lock-free on the workers.
  RuntimeStatsSnapshot snapshot() const;
  /// The snapshot rendered as JSON ("dump stats" runtime command; schema
  /// in README "Runtime observability").
  std::string stats_json() const { return to_json(snapshot()); }

  std::size_t shards() const { return shards_.size(); }
  std::size_t workers() const { return worker_count_; }
  /// The shard's online-mined template dictionary. Do not call while
  /// workers may be ingesting raw lines for this shard (quiesce first).
  const logproc::SignatureTree& tree(std::size_t shard) const;
  /// Mutable access for pre-seeding templates (canonical id priming)
  /// before start() — or while quiesced, under the same rule as above.
  logproc::SignatureTree& mutable_tree(std::size_t shard);
  /// The fleet-wide token arena every shard tree resolves against, or
  /// nullptr when share_token_arena is off. Safe to read from any thread
  /// (lock-free reader contract in util/interner.h).
  const nfv::util::SharedInterner* token_arena() const {
    return token_arena_.get();
  }
  /// The fleet-wide template forest every shard tree delegates template
  /// storage to, or nullptr when share_template_forest (or the arena it
  /// requires) is off. Safe to read from any thread (lock-free reader
  /// contract in logproc/shared_forest.h).
  const logproc::SharedSignatureForest* template_forest() const {
    return template_forest_.get();
  }
  AsyncIngestStats stats() const;

 private:
  struct Item {
    std::uint32_t shard = 0;
    bool raw = false;
    logproc::ParsedLog log;  // time doubles as the raw line's timestamp
    std::string line;
    std::uint64_t enqueue_ns = 0;  // steady-clock submit stamp (instrument)
  };

  struct ShardCommand {
    enum class Kind : std::uint8_t { kPause, kResume };
    Kind kind = Kind::kPause;
    std::uint32_t shard = 0;
  };

  // Uniform facade over the two ring-buffer flavours so the worker loop
  // is written once (virtual dispatch is noise next to scoring work).
  struct IngestQueue {
    virtual ~IngestQueue() = default;
    virtual bool try_push(Item&& item) = 0;
    virtual bool push(Item&& item) = 0;
    virtual bool try_pop(Item& out) = 0;
    virtual void close() = 0;
    virtual std::size_t depth() const = 0;
    virtual std::size_t capacity() const = 0;
    virtual std::uint64_t stall_count() const = 0;
  };
  template <typename Queue>
  struct IngestQueueImpl;

  struct Shard {
    std::int32_t vpe = -1;
    std::size_t index = 0;
    std::size_t worker = 0;
    std::unique_ptr<logproc::SignatureTree> tree;
    std::unique_ptr<StreamMonitor> monitor;
    // Published stats slot: written (relaxed) by the owning worker under
    // its seqlock at micro-batch boundaries, read by snapshot().
    std::atomic<bool> pub_paused{false};
    std::atomic<std::uint64_t> pub_lines{0};
    std::atomic<std::uint64_t> pub_warnings{0};
    std::atomic<std::uint64_t> pub_held{0};
    std::atomic<std::uint64_t> pub_tree_bytes{0};
    std::array<std::atomic<std::uint64_t>, LatencyHistogram::kBuckets>
        pub_latency{};
  };

  struct Worker {
    std::unique_ptr<IngestQueue> queue;
    std::vector<std::size_t> shard_ids;
    // Lossless spillover for warnings that found the warning queue full;
    // a worker keeps spilling until the caller drains the buffer, so
    // per-vPE warning order survives overflow.
    std::mutex overflow_mu;
    std::vector<StreamWarning> overflow;
    bool overflowing = false;  // guarded by overflow_mu
    // Control-plane mailbox (any thread pushes, the worker applies at
    // micro-batch boundaries) + outstanding-command gauge.
    nfv::util::MpscQueue<ShardCommand> commands{64};
    std::atomic<std::uint64_t> commands_pending{0};
    // Seqlock over this worker's published stats (its own slot AND its
    // shards' slots): odd while a publish is in progress.
    alignas(64) std::atomic<std::uint64_t> stat_seq{0};
    std::atomic<std::uint64_t> stat_epoch{0};
    std::atomic<std::uint64_t> stat_lines{0};
    std::atomic<std::uint64_t> stat_flushes{0};
  };

  // One tapped template-id event, as queued from a worker's flush to the
  // trainer thread.
  struct TapSample {
    std::uint32_t shard = 0;
    std::int32_t template_id = -1;
    std::int64_t time_seconds = 0;
  };

  void worker_loop(std::size_t index);
  void trainer_loop();
  /// Epoch-barrier install shared by swap_detector{,_owned} and the
  /// trainer. Caller must hold control_mu_. Frees generations retired at
  /// an earlier barrier, installs `detector` (taking ownership when
  /// `owned` is non-null), refreshes the cached ModelMemoryStats, and
  /// returns the exact lines_scored count at the barrier (the swap
  /// epoch). `drain_pending` must be false off the control-plane thread.
  std::uint64_t install_detector(const AnomalyDetector* detector,
                                 std::unique_ptr<const AnomalyDetector> owned,
                                 bool drain_pending);
  void enqueue_command(std::size_t shard, ShardCommand::Kind kind);
  void publish_warning(std::size_t worker, const StreamWarning& warning);
  void push_item(std::size_t shard, Item item);
  bool try_push_item(std::size_t shard, Item&& item);
  void quiesce(bool drain_pending = true);
  void release();
  void drain_queue_into_pending();

  std::atomic<const AnomalyDetector*> detector_;
  AsyncIngestConfig config_;
  // Fleet-wide token arena (share_token_arena) and template forest
  // (share_template_forest); created before any shard tree and destroyed
  // after them (member order), satisfying the arena/forest-outlive-trees
  // contract. The forest is declared after the arena it references, so
  // it is destroyed first.
  std::unique_ptr<nfv::util::SharedInterner> token_arena_;
  std::unique_ptr<logproc::SharedSignatureForest> template_forest_;
  std::size_t worker_count_ = 0;
  bool started_ = false;
  bool stopped_ = false;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
  nfv::util::ServiceThreads threads_;

  nfv::util::MpscQueue<StreamWarning> warning_queue_;
  std::vector<StreamWarning> pending_warnings_;  // caller thread only

  // Epoch barrier (quiesce/release) + shutdown flag.
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> epoch_requested_{0};
  std::mutex barrier_mu_;
  std::condition_variable parked_cv_;    // worker -> caller
  std::condition_variable released_cv_;  // caller -> worker
  std::uint64_t epoch_released_ = 0;     // guarded by barrier_mu_
  std::size_t parked_ = 0;               // guarded by barrier_mu_

  // Stats.
  std::atomic<std::uint64_t> lines_submitted_{0};
  std::atomic<std::uint64_t> lines_scored_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> warnings_published_{0};
  std::atomic<std::uint64_t> rejected_submits_{0};

  // Control-plane serialization: flush / swap_detector{,_owned} / stop on
  // the caller thread vs the trainer's installs all contend for the one
  // epoch barrier; this mutex makes them take it one at a time.
  std::mutex control_mu_;
  // Detector generations the runtime owns (trainer installs and
  // swap_detector_owned). owned_current_ is the installed generation;
  // replaced generations park in retired_ until the next epoch barrier
  // proves no worker can still reference them. Guarded by control_mu_.
  std::unique_ptr<const AnomalyDetector> owned_current_;
  std::vector<std::unique_ptr<const AnomalyDetector>> retired_;
  // Cached footprint of the installed detector, refreshed at construction
  // and at every install — snapshot() reads this instead of dereferencing
  // detector_, so a concurrent swap can never expose it to a dying model.
  mutable std::mutex model_mem_mu_;
  ModelMemoryStats model_mem_;  // guarded by model_mem_mu_

  // Online-retrain trainer (online_retrain only; null/empty otherwise).
  std::unique_ptr<nfv::util::MpscQueue<TapSample>> tap_queue_;
  std::unique_ptr<LstmDetector> lineage_;  // trainer thread only
  std::thread trainer_;
  std::mutex trainer_mu_;
  std::condition_variable trainer_cv_;  // request/stop -> trainer
  std::condition_variable rounds_cv_;   // trainer -> wait_retrain_rounds
  bool trainer_stop_ = false;           // guarded by trainer_mu_
  std::uint64_t retrain_requests_ = 0;  // guarded by trainer_mu_
  std::atomic<std::uint64_t> samples_seen_{0};
  std::atomic<std::uint64_t> samples_dropped_{0};
  std::atomic<std::uint64_t> retrain_buffered_{0};
  std::atomic<std::uint64_t> retrain_rounds_{0};
  std::atomic<std::uint64_t> adapt_rounds_{0};
  std::atomic<std::uint64_t> retrain_swaps_{0};
  std::atomic<std::uint64_t> last_swap_lines_{0};
  std::atomic<std::uint64_t> train_ns_{0};
};

/// Canonical deterministic order for a drained warning batch: stable
/// partition by vPE (per-vPE emission order untouched). Concatenating the
/// per-vPE serial warning streams in ascending vPE order yields exactly
/// this — the "per-vPE merge" the determinism tests compare against.
std::vector<StreamWarning> merge_warnings_by_vpe(
    std::vector<StreamWarning> warnings);

}  // namespace nfv::core
