// Asynchronous streaming ingest runtime.
//
// The paper's deployment vision is "a runtime predictive analysis system
// running in parallel with existing reactive monitoring systems" (§1).
// AsyncIngest is that runtime at production line rates: producer threads
// hand raw syslog lines (or pre-parsed events) to per-vPE monitor shards
// over bounded queues; shard workers stage lines into per-worker
// StreamMonitorGroup micro-batches and flush them through the fused
// batched scorer on a size-or-deadline trigger; warnings come back over a
// lock-free MPSC queue the caller drains.
//
// Topology and determinism
// ------------------------
//   producers --MPSC/SPSC--> worker[shard % workers] --> StreamMonitorGroup
//                                                          |  flush()
//   caller  <--- lock-free MPSC warning queue <------------+
//
// Every vPE shard is pinned to exactly one worker, and each worker drains
// its queue FIFO, so a vPE's lines are mined, staged, scored and
// cluster-tracked in submission order no matter how many workers run.
// Scores do not depend on micro-batch composition (StreamMonitorGroup
// captures each shard's vocabulary at stage time and the batched scorer
// is bit-identical to per-window scoring), so the per-vPE warning stream
// is byte-for-byte the one a serial StreamMonitor replay produces — for
// any worker count, flush_batch, or deadline. Only the interleaving of
// DIFFERENT vPEs' warnings in the drain is scheduling-dependent;
// merge_warnings_by_vpe() restores a canonical order.
//
// Backpressure: submit() blocks when the target worker's queue is full
// (end-to-end memory is bounded by workers × queue_capacity items);
// try_submit() instead returns false so the producer can shed load.
//
// Detector swap (monthly update / post-update adaptation) uses an epoch
// barrier: swap_detector() parks every worker between micro-batches
// (queues drained, groups flushed), installs the new model, and resumes —
// honoring the read-only-detector contract of src/core/streaming.h.
//
// Threading rules: any number of threads may submit (see single_producer
// for the SPSC fast path), but one designated caller thread owns the
// control plane — start/flush/swap_detector/stop/drain_warnings — and
// must not submit concurrently with flush/swap/stop (workers quiesce by
// draining their queues, which never happens under a firehose).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/streaming.h"
#include "logproc/signature_tree.h"
#include "util/mpsc_queue.h"
#include "util/spsc_queue.h"
#include "util/thread_pool.h"

namespace nfv::core {

struct AsyncIngestConfig {
  /// Shard workers; 0 resolves like the thread pool (NFVPRED_THREADS or
  /// hardware concurrency), then clamps to the shard count.
  std::size_t workers = 0;
  /// Bounded capacity of each worker's input queue (rounded up to a power
  /// of two). Full queue = backpressure.
  std::size_t queue_capacity = 4096;
  /// Flush a worker's staged micro-batch once it holds this many lines...
  std::size_t flush_batch = 64;
  /// ...or once this much wall-clock time passed since the batch's first
  /// line while the queue is idle (0 = flush whenever the queue is empty).
  /// Neither trigger affects scores or warnings, only latency/GEMM size.
  std::chrono::microseconds flush_deadline{2000};
  /// Bounded capacity of the warning queue. Overflowing warnings spill
  /// losslessly (and still in per-vPE order) into per-worker buffers, so
  /// an undrained caller never blocks or crashes the workers.
  std::size_t warning_capacity = 4096;
  /// Promise that exactly one thread submits: per-worker routing then
  /// uses the cheaper wait-free SPSC ring instead of the MPSC ring.
  bool single_producer = false;
};

struct AsyncIngestStats {
  std::uint64_t lines_submitted = 0;
  std::uint64_t lines_scored = 0;  // lines that went through a flush
  std::uint64_t flushes = 0;
  std::uint64_t warnings_published = 0;
  std::uint64_t rejected_submits = 0;  // failed try_submit calls
};

class AsyncIngest {
 public:
  explicit AsyncIngest(const AnomalyDetector* detector,
                       AsyncIngestConfig config = {});
  ~AsyncIngest();

  AsyncIngest(const AsyncIngest&) = delete;
  AsyncIngest& operator=(const AsyncIngest&) = delete;

  /// Register a per-vPE shard (its own signature tree + StreamMonitor)
  /// before start(); returns the shard id used by submit().
  std::size_t add_shard(std::int32_t vpe, StreamMonitorConfig config);

  /// Launch the shard workers. add_shard() is frozen from here on.
  void start();
  bool started() const { return started_; }

  /// Route one raw syslog line to `shard` (template mined online by that
  /// shard's worker). Blocks while the worker's queue is full; the line
  /// is never dropped. Producer threads only.
  void submit(std::size_t shard, nfv::util::SimTime time, std::string line);
  /// Non-blocking variant: false (and counted in stats) when the worker's
  /// queue is full — the caller decides whether to retry, buffer or shed.
  bool try_submit(std::size_t shard, nfv::util::SimTime time,
                  std::string line);

  /// Pre-parsed variants of the above.
  void submit_parsed(std::size_t shard, const logproc::ParsedLog& log);
  bool try_submit_parsed(std::size_t shard, const logproc::ParsedLog& log);

  /// Move every published warning into `out` (appended); returns how many.
  /// Warnings from one vPE arrive in emission order; across vPEs the
  /// interleaving follows scheduling. Caller thread only.
  std::size_t drain_warnings(std::vector<StreamWarning>& out);

  /// Barrier: returns once every line submitted so far has been scored
  /// and every staged micro-batch flushed. Requires producers to be
  /// quiet for the duration of the call. Caller thread only.
  void flush();

  /// Epoch barrier + model swap: quiesces all workers between
  /// micro-batches (implies flush()), swaps the detector on every shard
  /// monitor and worker group, and resumes. Caller thread only.
  void swap_detector(const AnomalyDetector* detector);

  /// Final flush, worker shutdown, join. Idempotent; also run by the
  /// destructor. Pending warnings stay drainable afterwards.
  void stop();

  std::size_t shards() const { return shards_.size(); }
  std::size_t workers() const { return worker_count_; }
  /// The shard's online-mined template dictionary. Do not call while
  /// workers may be ingesting raw lines for this shard (quiesce first).
  const logproc::SignatureTree& tree(std::size_t shard) const;
  /// Mutable access for pre-seeding templates (canonical id priming)
  /// before start() — or while quiesced, under the same rule as above.
  logproc::SignatureTree& mutable_tree(std::size_t shard);
  AsyncIngestStats stats() const;

 private:
  struct Item {
    std::uint32_t shard = 0;
    bool raw = false;
    logproc::ParsedLog log;  // time doubles as the raw line's timestamp
    std::string line;
  };

  // Uniform facade over the two ring-buffer flavours so the worker loop
  // is written once (virtual dispatch is noise next to scoring work).
  struct IngestQueue {
    virtual ~IngestQueue() = default;
    virtual bool try_push(Item&& item) = 0;
    virtual bool push(Item&& item) = 0;
    virtual bool try_pop(Item& out) = 0;
    virtual void close() = 0;
  };
  template <typename Queue>
  struct IngestQueueImpl;

  struct Shard {
    std::int32_t vpe = -1;
    std::size_t worker = 0;
    std::unique_ptr<logproc::SignatureTree> tree;
    std::unique_ptr<StreamMonitor> monitor;
  };

  struct Worker {
    std::unique_ptr<IngestQueue> queue;
    std::vector<std::size_t> shard_ids;
    // Lossless spillover for warnings that found the warning queue full;
    // a worker keeps spilling until the caller drains the buffer, so
    // per-vPE warning order survives overflow.
    std::mutex overflow_mu;
    std::vector<StreamWarning> overflow;
    bool overflowing = false;  // guarded by overflow_mu
  };

  void worker_loop(std::size_t index);
  void publish_warning(std::size_t worker, const StreamWarning& warning);
  void push_item(std::size_t shard, Item item);
  bool try_push_item(std::size_t shard, Item&& item);
  void quiesce();
  void release();
  void drain_queue_into_pending();

  std::atomic<const AnomalyDetector*> detector_;
  AsyncIngestConfig config_;
  std::size_t worker_count_ = 0;
  bool started_ = false;
  bool stopped_ = false;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
  nfv::util::ServiceThreads threads_;

  nfv::util::MpscQueue<StreamWarning> warning_queue_;
  std::vector<StreamWarning> pending_warnings_;  // caller thread only

  // Epoch barrier (quiesce/release) + shutdown flag.
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> epoch_requested_{0};
  std::mutex barrier_mu_;
  std::condition_variable parked_cv_;    // worker -> caller
  std::condition_variable released_cv_;  // caller -> worker
  std::uint64_t epoch_released_ = 0;     // guarded by barrier_mu_
  std::size_t parked_ = 0;               // guarded by barrier_mu_

  // Stats.
  std::atomic<std::uint64_t> lines_submitted_{0};
  std::atomic<std::uint64_t> lines_scored_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> warnings_published_{0};
  std::atomic<std::uint64_t> rejected_submits_{0};
};

/// Canonical deterministic order for a drained warning batch: stable
/// partition by vPE (per-vPE emission order untouched). Concatenating the
/// per-vPE serial warning streams in ascending vPE order yields exactly
/// this — the "per-vPE merge" the determinism tests compare against.
std::vector<StreamWarning> merge_warnings_by_vpe(
    std::vector<StreamWarning> warnings);

}  // namespace nfv::core
