// Mapping detected syslog anomalies to trouble tickets (Fig. 4).
//
// Each ticket defines a *predictive period* (a window before its report
// time) and an *infected period* (report → repair finish). A detected
// anomaly inside the predictive period is an early warning; inside the
// infected period it is an error; anywhere else it is a false alarm.
// Warning signatures are only raised for small clusters of ≥2 anomalies
// (§5.1: matched tickets always showed at least two anomalies, <1 min
// apart on average).
#pragma once

#include <cstdint>
#include <vector>

#include "core/detector.h"
#include "simnet/types.h"
#include "util/sim_time.h"

namespace nfv::core {

enum class AnomalyOutcome : std::uint8_t {
  kEarlyWarning,  // inside a ticket's predictive period
  kError,         // inside a ticket's infected period
  kFalseAlarm,    // associated with no ticket
};

struct MappingConfig {
  /// Length of the predictive period before ticket report.
  nfv::util::Duration predictive_period = nfv::util::Duration::of_days(1);
  /// Warning-signature rule: at least this many anomalies...
  std::size_t min_cluster_size = 2;
  /// ...within this span of one another.
  nfv::util::Duration cluster_span = nfv::util::Duration::of_minutes(2);
};

/// One detected anomaly after mapping.
struct MappedAnomaly {
  nfv::util::SimTime time;
  std::int32_t vpe = -1;
  AnomalyOutcome outcome = AnomalyOutcome::kFalseAlarm;
  std::int64_t ticket_id = -1;                 // -1 for false alarms
  nfv::util::Duration lead{0};                 // report − anomaly time (early warnings)
};

/// Detection summary for one ticket.
struct TicketDetection {
  std::int64_t ticket_id = -1;
  std::int32_t vpe = -1;
  simnet::TicketCategory category = simnet::TicketCategory::kCircuit;
  nfv::util::SimTime report;
  bool detected = false;            // any anomaly in predictive ∪ infected
  bool detected_before = false;     // any anomaly in the predictive period
  bool detected_after = false;      // any anomaly in the infected period
  /// Largest lead among predictive-period anomalies (report − time);
  /// meaningful only when detected_before.
  nfv::util::Duration best_lead{0};
  /// Smallest delay among infected-period anomalies (time − report);
  /// meaningful only when detected_after.
  nfv::util::Duration first_error_delay{0};
  std::size_t anomaly_count = 0;
};

struct MappingResult {
  std::vector<MappedAnomaly> anomalies;       // the *clustered* detections
  std::vector<TicketDetection> tickets;       // one per input ticket
  std::size_t early_warnings = 0;
  std::size_t errors = 0;
  std::size_t false_alarms = 0;
};

/// Collapse raw over-threshold events into anomaly clusters. Returns the
/// representative (first) time of every run of ≥ min_cluster_size events
/// where consecutive events are ≤ cluster_span apart.
std::vector<nfv::util::SimTime> cluster_anomalies(
    std::span<const ScoredEvent> events, double threshold,
    const MappingConfig& config);

/// Map clustered anomaly times (one vPE) onto that vPE's tickets.
/// `tickets` must all belong to the same vPE as the anomalies.
MappingResult map_anomalies(std::span<const nfv::util::SimTime> anomalies,
                            std::span<const simnet::Ticket> tickets,
                            std::int32_t vpe, const MappingConfig& config);

/// Merge per-vPE mapping results into a fleet-wide summary.
MappingResult merge_mappings(std::span<const MappingResult> parts);

}  // namespace nfv::core
