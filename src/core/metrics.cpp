#include "core/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace nfv::core {

using nfv::util::Duration;

PrfMetrics compute_prf(const MappingResult& mapping) {
  PrfMetrics metrics;
  metrics.true_anomalies = mapping.early_warnings + mapping.errors;
  metrics.false_alarms = mapping.false_alarms;
  for (const TicketDetection& detection : mapping.tickets) {
    if (detection.category == simnet::TicketCategory::kMaintenance) continue;
    ++metrics.tickets_total;
    if (detection.detected) ++metrics.tickets_detected;
  }
  const std::size_t detected_total =
      metrics.true_anomalies + metrics.false_alarms;
  metrics.precision =
      detected_total == 0
          ? 0.0
          : static_cast<double>(metrics.true_anomalies) /
                static_cast<double>(detected_total);
  metrics.recall = metrics.tickets_total == 0
                       ? 0.0
                       : static_cast<double>(metrics.tickets_detected) /
                             static_cast<double>(metrics.tickets_total);
  metrics.f_measure =
      metrics.precision + metrics.recall == 0.0
          ? 0.0
          : 2.0 * metrics.precision * metrics.recall /
                (metrics.precision + metrics.recall);
  return metrics;
}

std::vector<PrcPoint> precision_recall_curve(
    std::span<const VpeScoredStream> streams, const MappingConfig& config,
    double days, std::size_t num_thresholds) {
  NFV_CHECK(num_thresholds >= 2, "PRC needs at least two thresholds");
  // Threshold candidates: quantiles of the pooled score distribution,
  // concentrated near the top where the operating points live.
  std::vector<double> scores;
  for (const VpeScoredStream& stream : streams) {
    for (const ScoredEvent& event : stream.events) {
      scores.push_back(event.score);
    }
  }
  if (scores.empty()) return {};
  std::vector<double> qs;
  qs.reserve(num_thresholds);
  for (std::size_t i = 0; i < num_thresholds; ++i) {
    const double u =
        static_cast<double>(i) / static_cast<double>(num_thresholds - 1);
    // Quadratic spacing: more resolution near quantile 1.
    qs.push_back(0.5 + 0.5 * (1.0 - (1.0 - u) * (1.0 - u)));
  }
  std::vector<double> thresholds = nfv::util::quantiles(scores, qs);
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  // The sweep re-clusters and re-maps every stream at every threshold —
  // embarrassingly parallel over thresholds. Each threshold writes only
  // its own pre-sized curve slot, so the parallel sweep is bit-identical
  // to the serial loop for any thread count. Falls back to serial when
  // called from inside an existing parallel region (no nesting).
  std::vector<PrcPoint> curve(thresholds.size());
  const auto eval_threshold = [&](std::size_t i) {
    const double threshold = thresholds[i];
    std::vector<MappingResult> parts;
    parts.reserve(streams.size());
    for (const VpeScoredStream& stream : streams) {
      const std::vector<nfv::util::SimTime> clusters =
          cluster_anomalies(stream.events, threshold, config);
      parts.push_back(
          map_anomalies(clusters, stream.tickets, stream.vpe, config));
    }
    const MappingResult merged = merge_mappings(parts);
    const PrfMetrics prf = compute_prf(merged);
    PrcPoint point;
    point.threshold = threshold;
    point.precision = prf.precision;
    point.recall = prf.recall;
    point.f_measure = prf.f_measure;
    point.false_alarms_per_day =
        days > 0.0 ? static_cast<double>(prf.false_alarms) / days : 0.0;
    curve[i] = point;
  };
  if (nfv::util::ThreadPool::in_parallel_region() ||
      nfv::util::global_pool().size() <= 1) {
    for (std::size_t i = 0; i < thresholds.size(); ++i) eval_threshold(i);
  } else {
    nfv::util::global_pool().parallel_for(0, thresholds.size(),
                                          eval_threshold);
  }
  return curve;
}

double auc_pr(std::span<const PrcPoint> curve) {
  if (curve.size() < 2) return 0.0;
  std::vector<PrcPoint> sorted(curve.begin(), curve.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const PrcPoint& a, const PrcPoint& b) {
              return a.recall < b.recall;
            });
  double area = 0.0;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const double dr = sorted[i].recall - sorted[i - 1].recall;
    area += dr * 0.5 * (sorted[i].precision + sorted[i - 1].precision);
  }
  return area;
}

PrcPoint best_f_point(std::span<const PrcPoint> curve) {
  PrcPoint best;
  for (const PrcPoint& point : curve) {
    if (point.f_measure > best.f_measure) best = point;
  }
  return best;
}

namespace {

void accumulate_rates(const TicketDetection& detection,
                      std::array<double, 5>& counts) {
  const Duration kM15 = Duration::of_minutes(15);
  const Duration kM5 = Duration::of_minutes(5);
  if (detection.detected_before) {
    if (detection.best_lead >= kM15) counts[0] += 1.0;
    if (detection.best_lead >= kM5) counts[1] += 1.0;
    counts[2] += 1.0;
    counts[3] += 1.0;
    counts[4] += 1.0;
    return;
  }
  if (detection.detected_after) {
    if (detection.first_error_delay <= kM5) {
      counts[3] += 1.0;
      counts[4] += 1.0;
    } else if (detection.first_error_delay <= kM15) {
      counts[4] += 1.0;
    }
  }
}

}  // namespace

std::vector<DetectionRateRow> detection_rates_by_category(
    std::span<const TicketDetection> detections) {
  std::vector<DetectionRateRow> rows;
  const simnet::TicketCategory categories[] = {
      simnet::TicketCategory::kCable, simnet::TicketCategory::kCircuit,
      simnet::TicketCategory::kHardware, simnet::TicketCategory::kSoftware,
      simnet::TicketCategory::kDuplicate};
  for (const simnet::TicketCategory category : categories) {
    DetectionRateRow row;
    row.category = category;
    std::array<double, 5> counts{};
    for (const TicketDetection& detection : detections) {
      if (detection.category != category) continue;
      ++row.ticket_count;
      accumulate_rates(detection, counts);
    }
    if (row.ticket_count > 0) {
      for (std::size_t i = 0; i < counts.size(); ++i) {
        row.rate[i] = counts[i] / static_cast<double>(row.ticket_count);
      }
    }
    rows.push_back(row);
  }
  return rows;
}

DetectionRateRow overall_detection_rate(
    std::span<const TicketDetection> detections) {
  DetectionRateRow row;
  std::array<double, 5> counts{};
  for (const TicketDetection& detection : detections) {
    if (detection.category == simnet::TicketCategory::kMaintenance) continue;
    ++row.ticket_count;
    accumulate_rates(detection, counts);
  }
  if (row.ticket_count > 0) {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      row.rate[i] = counts[i] / static_cast<double>(row.ticket_count);
    }
  }
  return row;
}

}  // namespace nfv::core
