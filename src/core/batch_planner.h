// Cross-vPE batched inference planner.
//
// The deployment story of the paper hinges on cheap, frequent scoring
// (§5.1 budgets "<1 hour" for model maintenance across 38 vPEs). Scoring
// one vPE at a time feeds the LSTM tiny batches, so the blocked matmul
// never sees matrices large enough to amortize dispatch. This planner
// flattens the scoring windows of *all* streams of a cluster group into
// one slot-addressed work queue, runs them through the sequence model in
// large fused batches (hundreds–thousands of rows per timestep GEMM), and
// scatters the scores back bit-identically to the per-stream order.
//
// Determinism contract: every window's forward math is independent of its
// batch neighbours (per-row embedding gather, per-row GEMM dot products,
// per-row softmax), so the fused scores are bit-identical to scoring each
// window alone — for any inference batch size and any thread count.
// Enforced by tests/core/batch_invariance_test.cpp under TSan.
//
// The planner is agnostic to the model's scoring tier: when the sequence
// model carries an int8 sidecar (ml::SequenceModel::quantize), the fused
// batches route through the packed int8 kernels and the same determinism
// contract holds within the quantized mode (quantized fused scores are
// bit-identical to quantized one-window scores; fp32 vs int8 agreement is
// the separate rank gate of tests/core/quant_scoring_test.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ml/sequence_model.h"

namespace nfv::core {

/// Default fused inference batch size: large enough that the per-timestep
/// GEMM clears the blocked-parallel work threshold, small enough that the
/// scratch matrices stay cache-resident.
inline constexpr std::size_t kDefaultScoreBatch = 1024;

/// Slot address of one scoring window inside a fused cross-stream batch.
struct WindowSlot {
  std::uint32_t stream = 0;  // index of the source stream
  std::uint32_t window = 0;  // window index within that stream
};

/// Flattened scoring plan: all (stream, window) slots in stream-major
/// order — the exact order a serial per-stream loop would visit them — cut
/// into fused batches of at most `batch_size` slots.
struct BatchPlan {
  std::vector<WindowSlot> slots;
  std::size_t batch_size = kDefaultScoreBatch;

  std::size_t num_batches() const {
    return slots.empty() ? 0 : (slots.size() + batch_size - 1) / batch_size;
  }
  /// Half-open slot range [first, second) of fused batch `b`.
  std::pair<std::size_t, std::size_t> batch_range(std::size_t b) const {
    const std::size_t begin = b * batch_size;
    const std::size_t end = std::min(begin + batch_size, slots.size());
    return {begin, end};
  }
};

/// Build the slot list for streams with the given window counts.
BatchPlan plan_windows(std::span<const std::size_t> windows_per_stream,
                       std::size_t batch_size = kDefaultScoreBatch);

/// How a predicted distribution becomes an anomaly score.
enum class BatchScoreKind : std::uint8_t {
  kNegLogLikelihood,  // −log p(observed target), the paper's score
  kTargetRank,        // DeepLog's rank-of-observed-template score
};

/// Fused cross-stream scorer. Gathers every stream's windows into one
/// work queue, scores them through the model in fused batches, and
/// scatters the anomaly scores back into per-stream vectors. All scratch
/// (gather pointers, flat results, the model's inference buffers) is owned
/// by the scorer and reused across calls — the inner loop performs no
/// per-batch allocation. Not thread-safe: use one scorer per thread.
class BatchedWindowScorer {
 public:
  explicit BatchedWindowScorer(std::size_t batch_size = kDefaultScoreBatch);

  std::size_t batch_size() const { return batch_size_; }

  /// Score all windows of all streams: on return `out[s][w]` is the
  /// anomaly score of window `w` of stream `s` (streams[s][w]), identical
  /// to what scoring that window alone would produce.
  void score(const ml::SequenceModel& model, BatchScoreKind kind,
             std::span<const std::vector<const ml::SeqExample*>> streams,
             std::vector<std::vector<double>>& out);

 private:
  std::size_t batch_size_;
  BatchPlan plan_;
  std::vector<const ml::SeqExample*> gathered_;
  std::vector<double> flat_scores_;
  std::vector<std::size_t> flat_ranks_;
  ml::SequenceModel::InferenceScratch scratch_;
};

}  // namespace nfv::core
