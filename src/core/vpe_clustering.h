// vPE grouping for model customization (§4.3).
//
// One model per vPE would be ideal but data-hungry; one global model
// sacrifices accuracy. The paper clusters vPEs by syslog distribution with
// K-means, picking K by modularity (4 groups for their fleet), and trains
// one model per group on the members' aggregated logs.
#pragma once

#include <vector>

#include "core/parsed_fleet.h"
#include "ml/kmeans.h"
#include "ml/som.h"
#include "util/rng.h"

namespace nfv::core {

enum class GroupingMethod {
  kKMeans,  // the paper's choice (K by modularity when fixed_k == 0)
  kSom,     // SOM-based grouping of the vNMF line of work ([21], [24])
};

struct VpeClusteringOptions {
  GroupingMethod method = GroupingMethod::kKMeans;
  /// Fixed number of groups; 0 selects K by modularity over [k_min, k_max].
  std::size_t fixed_k = 0;
  std::size_t k_min = 2;
  std::size_t k_max = 8;
  /// SOM grid (used when method == kSom); empty units are dropped, so the
  /// effective group count is at most rows × cols.
  ml::SomConfig som;
};

struct VpeClustering {
  std::vector<int> group_of_vpe;       // group index per vPE
  std::size_t num_groups = 0;
  std::vector<double> modularity_by_k; // empty when fixed_k was used
  std::size_t selected_k = 0;
};

/// Cluster vPEs on their template distributions over [begin, end)
/// (typically the initial training month, with ticket windows excluded
/// upstream if desired).
VpeClustering cluster_vpes(const ParsedFleet& parsed,
                           nfv::util::SimTime begin, nfv::util::SimTime end,
                           const VpeClusteringOptions& options,
                           nfv::util::Rng& rng);

/// Trivial clustering: every vPE in group 0 (the "single model" baseline).
VpeClustering single_group(std::size_t num_vpes);

}  // namespace nfv::core
