#include "core/lstm_detector.h"

#include <algorithm>
#include <cmath>

#include <istream>
#include <ostream>

#include "core/batch_planner.h"
#include "ml/optimizer.h"
#include "ml/serialize.h"
#include "util/check.h"
#include "util/stats.h"

namespace nfv::core {

using ml::SeqExample;
using nfv::util::Rng;

LstmDetector::LstmDetector(const LstmDetectorConfig& config)
    : config_(config), rng_(config.seed) {}

LstmDetector::LstmDetector(const LstmDetector& other)
    : config_(other.config_), model_(other.model_), rng_(other.rng_) {}

LstmDetector& LstmDetector::operator=(const LstmDetector& other) {
  if (this != &other) {
    config_ = other.config_;
    model_ = other.model_;
    rng_ = other.rng_;
    optimizer_.reset();
  }
  return *this;
}

std::vector<SeqExample> LstmDetector::prepare_examples(
    std::span<const LogView> streams) const {
  std::vector<SeqExample> examples;
  for (const LogView& logs : streams) {
    std::vector<SeqExample> part =
        logproc::build_sequence_examples(logs, config_.window);
    examples.insert(examples.end(),
                    std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
  }
  if (examples.size() > config_.max_train_windows) {
    // Deterministic uniform subsample preserving time order.
    std::vector<SeqExample> kept;
    kept.reserve(config_.max_train_windows);
    const double stride = static_cast<double>(examples.size()) /
                          static_cast<double>(config_.max_train_windows);
    for (std::size_t i = 0; i < config_.max_train_windows; ++i) {
      kept.push_back(examples[static_cast<std::size_t>(i * stride)]);
    }
    examples = std::move(kept);
  }
  return examples;
}

void LstmDetector::train_epochs(std::span<const SeqExample> examples,
                                std::size_t epochs, float lr) {
  if (examples.empty()) return;
  // Default path: a fresh Adam per training round (the seed behavior).
  // Persistent path: one instance lives on the detector and is re-pointed
  // at the (possibly moved or vocab-grown) parameters each round, keeping
  // its moment state warm across incremental updates.
  std::optional<ml::Adam> local_optimizer;
  ml::Adam* optimizer = nullptr;
  if (config_.persistent_optimizer) {
    if (!optimizer_) optimizer_ = std::make_unique<ml::Adam>(lr);
    optimizer_->set_learning_rate(lr);
    optimizer_->rebind(model_->params());
    optimizer = optimizer_.get();
  } else {
    local_optimizer.emplace(lr);
    local_optimizer->bind(model_->params());
    optimizer = &*local_optimizer;
  }
  std::vector<std::size_t> order(examples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Hoisted out of the batch loop: the pointer buffer (and the model's
  // input scratch, inside train_batch) is reused for every batch.
  std::vector<const SeqExample*> batch;
  batch.reserve(std::min<std::size_t>(config_.batch_size, order.size()));
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    rng_.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(start + config_.batch_size, order.size());
      batch.clear();
      for (std::size_t i = start; i < end; ++i) {
        batch.push_back(&examples[order[i]]);
      }
      model_->train_batch(batch, *optimizer);
    }
  }
}

void LstmDetector::score_known_windows(
    std::span<const std::vector<const SeqExample*>> streams,
    std::vector<std::vector<double>>& scores) const {
  // One scorer per call: score paths must stay const and thread-safe (the
  // streaming monitors share a detector across threads), so the scratch
  // cannot live on the detector. Within the call every fused batch reuses
  // the scorer's buffers.
  BatchedWindowScorer scorer(config_.score_batch);
  const BatchScoreKind kind =
      config_.score_mode == LstmScoreMode::kTargetRank
          ? BatchScoreKind::kTargetRank
          : BatchScoreKind::kNegLogLikelihood;
  scorer.score(*model_, kind, streams, scores);
}

std::vector<double> LstmDetector::score_examples(
    std::span<const SeqExample> examples) const {
  NFV_CHECK(trained(), "score_examples before fit");
  std::vector<std::vector<const SeqExample*>> streams(1);
  streams[0].reserve(examples.size());
  for (const SeqExample& ex : examples) streams[0].push_back(&ex);
  std::vector<std::vector<double>> scores;
  score_known_windows(streams, scores);
  return std::move(scores[0]);
}

void LstmDetector::oversample_refine(std::vector<SeqExample> examples) {
  if (examples.empty()) return;
  double previous_fp_rate = 1.0;
  for (std::size_t round = 0; round < config_.oversample_rounds; ++round) {
    const std::vector<double> scores = score_examples(examples);
    // "Misclassified as anomaly": the highest-score (lowest-likelihood)
    // quantile of the *normal* training data.
    const double threshold =
        nfv::util::quantile(scores, 1.0 - config_.oversample_quantile);
    std::vector<std::size_t> minority;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      if (scores[i] >= threshold) minority.push_back(i);
    }
    const double fp_rate = static_cast<double>(minority.size()) /
                           static_cast<double>(scores.size());
    if (minority.empty() || fp_rate >= previous_fp_rate) break;
    previous_fp_rate = fp_rate;

    // Over-sample the minority patterns, random-sample the rest (§4.2).
    std::vector<SeqExample> refined;
    refined.reserve(minority.size() * config_.oversample_factor +
                    examples.size() / 2);
    for (std::size_t idx : minority) {
      for (std::size_t r = 0; r < config_.oversample_factor; ++r) {
        refined.push_back(examples[idx]);
      }
    }
    for (std::size_t i = 0; i < examples.size(); ++i) {
      if (rng_.bernoulli(0.5)) refined.push_back(examples[i]);
    }
    train_epochs(refined, 1, config_.update_lr);
  }
}

void LstmDetector::fit(std::span<const LogView> streams, std::size_t vocab) {
  NFV_CHECK(vocab > 0, "fit requires a non-empty vocabulary");
  ml::SequenceModelConfig model_config;
  model_config.vocab = vocab;
  model_config.embed_dim = config_.embed_dim;
  model_config.hidden = config_.hidden;
  model_config.layers = config_.layers;
  model_config.window = config_.window;
  Rng init_rng = rng_.fork(1);
  model_.emplace(model_config, init_rng);
  // A freshly initialized model invalidates any accumulated moment state.
  optimizer_.reset();

  std::vector<SeqExample> examples = prepare_examples(streams);
  train_epochs(examples, config_.initial_epochs, config_.initial_lr);
  if (config_.oversample) oversample_refine(std::move(examples));
  // Calibrate once, after ALL training (including the over-sampling
  // rounds, which score with the fp32 model they just trained).
  if (config_.quantize) model_->quantize();
}

void LstmDetector::update(std::span<const LogView> streams,
                          std::size_t vocab) {
  NFV_CHECK(trained(), "update before fit");
  if (vocab > model_->config().vocab) {
    Rng grow_rng = rng_.fork(2);
    model_->grow_vocab(vocab, grow_rng);
  }
  std::vector<SeqExample> examples = prepare_examples(streams);
  train_epochs(examples, config_.update_epochs, config_.update_lr);
  if (config_.quantize) model_->quantize();
}

void LstmDetector::adapt(std::span<const LogView> streams,
                         std::size_t vocab) {
  NFV_CHECK(trained(), "adapt before fit");
  if (vocab > model_->config().vocab) {
    Rng grow_rng = rng_.fork(3);
    model_->grow_vocab(vocab, grow_rng);
  }
  // Teacher → student: the current weights are the teacher; fine-tune the
  // top layers on the small fresh dataset. The unfreeze is scope-guarded:
  // if train_epochs throws (e.g. an id-bounds check on a corrupt stream),
  // the lower layers must not stay silently frozen and cripple every
  // later update() on this detector.
  {
    model_->freeze_lower_layers(
        std::min(config_.adapt_frozen_layers, config_.layers));
    struct UnfreezeGuard {
      ml::SequenceModel* model;
      ~UnfreezeGuard() { model->freeze_lower_layers(0); }
    } guard{&*model_};
    std::vector<SeqExample> examples = prepare_examples(streams);
    train_epochs(examples, config_.adapt_epochs, config_.adapt_lr);
  }
  if (config_.quantize) model_->quantize();
}

std::vector<ScoredEvent> LstmDetector::score(LogView logs,
                                             std::size_t vocab) const {
  return std::move(score_streams({&logs, 1}, vocab)[0]);
}

std::vector<std::vector<ScoredEvent>> LstmDetector::score_streams(
    std::span<const LogView> streams, std::size_t vocab) const {
  NFV_CHECK(trained(), "score before fit");
  (void)vocab;
  const auto model_vocab = static_cast<std::int32_t>(model_->config().vocab);

  // Gather phase: build every stream's windows and split them into
  // unknown-template windows (scored immediately with the pessimistic
  // constant) and model-known windows, remembering each known window's
  // per-stream slot so the fused scores scatter back in order.
  std::vector<std::vector<ScoredEvent>> out(streams.size());
  std::vector<std::vector<SeqExample>> examples(streams.size());
  std::vector<std::vector<const SeqExample*>> known(streams.size());
  std::vector<std::vector<std::size_t>> known_index(streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    const LogView logs = streams[s];
    if (logs.size() <= config_.window) continue;
    // Build windows (no gap filtering at scoring time: every log gets a
    // score if it has k predecessors).
    examples[s] = logproc::build_sequence_examples(
        logs, config_.window, nfv::util::Duration::of_days(3650));
    out[s].resize(examples[s].size());
    std::size_t example_index = 0;
    for (std::size_t i = config_.window; i < logs.size();
         ++i, ++example_index) {
      SeqExample& ex = examples[s][example_index];
      out[s][example_index].time = logs[i].time;
      bool unknown = ex.target >= model_vocab;
      for (std::int32_t id : ex.ids) unknown = unknown || id >= model_vocab;
      if (unknown) {
        // Templates the model has never seen are maximally surprising.
        out[s][example_index].score =
            config_.score_mode == LstmScoreMode::kTargetRank
                ? static_cast<double>(model_->config().vocab)
                : config_.unknown_score;
      } else {
        known[s].push_back(&ex);
        known_index[s].push_back(example_index);
      }
    }
  }

  // Fused scoring across all streams, then the slot-addressed scatter.
  std::vector<std::vector<double>> scores;
  score_known_windows(known, scores);
  for (std::size_t s = 0; s < streams.size(); ++s) {
    for (std::size_t i = 0; i < known[s].size(); ++i) {
      out[s][known_index[s][i]].score = scores[s][i];
    }
  }
  return out;
}

void LstmDetector::set_score_batch(std::size_t score_batch) {
  NFV_CHECK(score_batch >= 1, "score_batch must be >= 1");
  config_.score_batch = score_batch;
}

void LstmDetector::set_quantized(bool on) {
  config_.quantize = on;
  if (!model_) return;  // mode takes effect at the next fit
  if (on) {
    model_->quantize();
  } else {
    model_->clear_quantized();
  }
}

ModelMemoryStats LstmDetector::model_memory() const {
  ModelMemoryStats stats;
  if (!model_) return stats;
  stats.weight_bytes_fp32 = model_->fp32_weight_bytes();
  stats.weight_bytes_quantized = model_->quantized_weight_bytes();
  stats.quantized = model_->quantized();
  return stats;
}

void LstmDetector::save(std::ostream& os) const {
  NFV_CHECK(trained(), "cannot save an untrained detector");
  ml::write_u64(os, 0x4e465644455431ULL);  // "NFVDET1"
  ml::write_u64(os, static_cast<std::uint64_t>(config_.score_mode));
  ml::write_u64(os, config_.window);
  model_->save(os);
}

LstmDetector LstmDetector::load(std::istream& is) {
  NFV_CHECK(ml::read_u64(is) == 0x4e465644455431ULL,
            "not an LstmDetector checkpoint");
  LstmDetectorConfig config;
  config.score_mode = static_cast<LstmScoreMode>(ml::read_u64(is));
  config.window = ml::read_u64(is);
  ml::SequenceModel model = ml::SequenceModel::load(is);
  config.embed_dim = model.config().embed_dim;
  config.hidden = model.config().hidden;
  config.layers = model.config().layers;
  config.quantize = model.quantized();
  LstmDetector detector(config);
  detector.model_.emplace(std::move(model));
  return detector;
}

}  // namespace nfv::core
