#include "core/batch_planner.h"

#include "util/check.h"

namespace nfv::core {

BatchPlan plan_windows(std::span<const std::size_t> windows_per_stream,
                       std::size_t batch_size) {
  NFV_CHECK(batch_size >= 1, "plan_windows requires batch_size >= 1");
  BatchPlan plan;
  plan.batch_size = batch_size;
  std::size_t total = 0;
  for (const std::size_t count : windows_per_stream) total += count;
  plan.slots.reserve(total);
  for (std::size_t s = 0; s < windows_per_stream.size(); ++s) {
    for (std::size_t w = 0; w < windows_per_stream[s]; ++w) {
      plan.slots.push_back({static_cast<std::uint32_t>(s),
                            static_cast<std::uint32_t>(w)});
    }
  }
  return plan;
}

BatchedWindowScorer::BatchedWindowScorer(std::size_t batch_size)
    : batch_size_(batch_size) {
  NFV_CHECK(batch_size >= 1,
            "BatchedWindowScorer requires batch_size >= 1");
}

void BatchedWindowScorer::score(
    const ml::SequenceModel& model, BatchScoreKind kind,
    std::span<const std::vector<const ml::SeqExample*>> streams,
    std::vector<std::vector<double>>& out) {
  // Gather: flatten every stream's windows into one work queue in
  // stream-major order (reusing the scorer's buffers).
  plan_.batch_size = batch_size_;
  plan_.slots.clear();
  gathered_.clear();
  std::size_t total = 0;
  for (const auto& stream : streams) total += stream.size();
  plan_.slots.reserve(total);
  gathered_.reserve(total);
  for (std::size_t s = 0; s < streams.size(); ++s) {
    for (std::size_t w = 0; w < streams[s].size(); ++w) {
      plan_.slots.push_back({static_cast<std::uint32_t>(s),
                             static_cast<std::uint32_t>(w)});
      gathered_.push_back(streams[s][w]);
    }
  }

  out.resize(streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    out[s].resize(streams[s].size());
  }
  if (gathered_.empty()) return;

  // Fused forward passes over the flat queue.
  if (kind == BatchScoreKind::kTargetRank) {
    flat_ranks_.resize(gathered_.size());
    model.score_ranks_batched(gathered_, batch_size_, scratch_, flat_ranks_);
  } else {
    flat_scores_.resize(gathered_.size());
    model.score_batched(gathered_, batch_size_, scratch_, flat_scores_);
  }

  // Scatter: slot i of the queue belongs to exactly one (stream, window)
  // pair, so writes are disjoint and reproduce the per-stream order.
  for (std::size_t i = 0; i < plan_.slots.size(); ++i) {
    const WindowSlot slot = plan_.slots[i];
    out[slot.stream][slot.window] =
        kind == BatchScoreKind::kTargetRank
            ? static_cast<double>(flat_ranks_[i])
            : -flat_scores_[i];
  }
}

}  // namespace nfv::core
