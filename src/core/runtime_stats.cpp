#include "core/runtime_stats.h"

#include <cmath>

#include "util/json.h"

namespace nfv::core {

std::uint64_t HistogramSnapshot::total() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t n : buckets) sum += n;
  return sum;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

double HistogramSnapshot::quantile(double q) const {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank convention of util::quantile: the exact quantile sits at
  // fractional rank q*(n-1) of the sorted values. Walk the cumulative
  // counts to the bucket containing that rank and interpolate linearly
  // inside it.
  const double rank = q * static_cast<double>(n - 1);
  std::uint64_t before = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    const double last_rank = static_cast<double>(before + in_bucket - 1);
    if (rank <= last_rank) {
      const double lo = static_cast<double>(LatencyHistogram::bucket_floor(i));
      const double hi = static_cast<double>(LatencyHistogram::bucket_ceil(i));
      double within =
          in_bucket == 1
              ? 0.0
              : (rank - static_cast<double>(before)) /
                    static_cast<double>(in_bucket - 1);
      // A fractional rank straddling two buckets lands here with a
      // within just outside [0,1]; clamp so the result stays inside the
      // bucket that contains the upper order statistic.
      if (within < 0.0) within = 0.0;
      if (within > 1.0) within = 1.0;
      return lo + within * (hi - lo);
    }
    before += in_bucket;
  }
  // rank points past the last occupied bucket (only reachable through
  // floating-point edge cases): report the top occupied bucket's ceiling.
  for (std::size_t i = buckets.size(); i-- > 0;) {
    if (buckets[i] != 0) {
      return static_cast<double>(LatencyHistogram::bucket_ceil(i));
    }
  }
  return 0.0;
}

void FleetMemoryStats::finalize_bytes_per_vpe() {
  bytes_per_vpe =
      shards == 0
          ? 0.0
          : static_cast<double>(arena_bytes + forest_bytes +
                                tree_bytes_total) /
                static_cast<double>(shards);
}

HistogramSnapshot RuntimeStatsSnapshot::merged_latency() const {
  HistogramSnapshot merged;
  for (const ShardStatsSnapshot& shard : shards) {
    merged.merge(shard.latency);
  }
  return merged;
}

namespace {

void write_queue(nfv::util::JsonWriter& w, const QueueStatsSnapshot& q) {
  w.begin_object();
  w.kv("depth", q.depth);
  w.kv("capacity", q.capacity);
  w.kv("stalls", q.stalls);
  w.end_object();
}

void write_histogram(nfv::util::JsonWriter& w, const HistogramSnapshot& h) {
  w.begin_object();
  w.kv("count", h.total());
  w.kv("p50_us", h.p50() / 1000.0);
  w.kv("p99_us", h.p99() / 1000.0);
  w.kv("p999_us", h.p999() / 1000.0);
  // Sparse bucket dump: upper bound (exclusive, ns) -> count.
  w.key("buckets").begin_array();
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    w.begin_object();
    w.kv("le_ns", LatencyHistogram::bucket_ceil(i));
    w.kv("count", h.buckets[i]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::string to_json(const RuntimeStatsSnapshot& snapshot) {
  nfv::util::JsonWriter w;
  w.begin_object();

  w.key("totals").begin_object();
  w.kv("lines_submitted", snapshot.totals.lines_submitted);
  w.kv("lines_scored", snapshot.totals.lines_scored);
  w.kv("flushes", snapshot.totals.flushes);
  w.kv("warnings_published", snapshot.totals.warnings_published);
  w.kv("rejected_submits", snapshot.totals.rejected_submits);
  w.end_object();

  w.key("workers").begin_array();
  for (const WorkerStatsSnapshot& worker : snapshot.workers) {
    w.begin_object();
    w.kv("worker", worker.worker);
    w.kv("epoch", worker.epoch);
    w.kv("lines", worker.lines);
    w.kv("flushes", worker.flushes);
    w.key("queue");
    write_queue(w, worker.queue);
    w.end_object();
  }
  w.end_array();

  w.key("shards").begin_array();
  for (const ShardStatsSnapshot& shard : snapshot.shards) {
    w.begin_object();
    w.kv("shard", shard.shard);
    w.kv("vpe", shard.vpe);
    w.kv("worker", shard.worker);
    w.kv("paused", shard.paused);
    w.kv("lines", shard.lines);
    w.kv("warnings", shard.warnings);
    w.kv("held", shard.held);
    w.kv("tree_bytes", shard.tree_bytes);
    w.key("model").begin_object();
    w.kv("weight_bytes_fp32", shard.model_bytes_fp32);
    w.kv("weight_bytes_quantized", shard.model_bytes_quantized);
    w.kv("quantized", shard.model_quantized);
    w.end_object();
    w.key("latency");
    write_histogram(w, shard.latency);
    w.end_object();
  }
  w.end_array();

  w.key("warning_queue");
  write_queue(w, snapshot.warning_queue);

  w.key("memory").begin_object();
  w.kv("shared_arena", snapshot.memory.shared_arena);
  w.kv("arena_bytes", snapshot.memory.arena_bytes);
  w.kv("arena_tokens", snapshot.memory.arena_tokens);
  w.kv("shared_forest", snapshot.memory.shared_forest);
  w.kv("forest_bytes", snapshot.memory.forest_bytes);
  w.kv("forest_templates", snapshot.memory.forest_templates);
  w.kv("tree_bytes_total", snapshot.memory.tree_bytes_total);
  w.kv("tree_bytes_max", snapshot.memory.tree_bytes_max);
  w.kv("shards", snapshot.memory.shards);
  // Belt-and-braces: a hand-built snapshot may carry NaN/inf here (e.g. a
  // zero-shard division upstream); the dump must stay parseable.
  w.kv("bytes_per_vpe", std::isfinite(snapshot.memory.bytes_per_vpe)
                            ? snapshot.memory.bytes_per_vpe
                            : 0.0);
  w.end_object();

  w.key("retrain").begin_object();
  w.kv("enabled", snapshot.retrain.enabled);
  w.kv("samples_seen", snapshot.retrain.samples_seen);
  w.kv("samples_dropped", snapshot.retrain.samples_dropped);
  w.kv("buffered_events", snapshot.retrain.buffered_events);
  w.kv("rounds", snapshot.retrain.rounds);
  w.kv("adapt_rounds", snapshot.retrain.adapt_rounds);
  w.kv("swaps", snapshot.retrain.swaps);
  w.kv("last_swap_lines_scored", snapshot.retrain.last_swap_lines_scored);
  w.kv("train_seconds", snapshot.retrain.train_seconds);
  w.end_object();

  w.key("latency");
  write_histogram(w, snapshot.merged_latency());

  w.end_object();
  return w.str();
}

}  // namespace nfv::core
