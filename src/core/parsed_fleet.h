// Bridge from raw simulated syslog to the structured representation the
// detectors consume: every raw line is pushed through a shared signature
// tree (template miner), exactly as the paper preprocesses its vPE syslogs.
#pragma once

#include <vector>

#include "logproc/dataset.h"
#include "logproc/signature_tree.h"
#include "simnet/fleet.h"

namespace nfv::core {

/// The fleet's logs after template extraction. Template ids come from the
/// shared signature tree and grow over time as new message shapes appear
/// (e.g. after the software update).
struct ParsedFleet {
  logproc::SignatureTree tree;
  std::vector<std::vector<logproc::ParsedLog>> logs_by_vpe;
  /// vocab_by_month[m] = templates discovered before the start of month m
  /// (index 0 = 0; last index = final vocabulary). Lets the pipeline train
  /// with exactly the dictionary an online deployment would have had.
  std::vector<std::size_t> vocab_by_month;

  std::size_t vocab() const { return tree.size(); }

  /// Dictionary size at the start of month m (clamped to the trace span).
  std::size_t vocab_at(int month) const;
};

/// Run template extraction over the whole trace. Lines are processed in
/// global time order so template ids appear in discovery order, mirroring
/// an online deployment.
ParsedFleet parse_fleet(const simnet::FleetTrace& trace,
                        logproc::SignatureTreeConfig config = {});

/// Ticket exclusion windows for one vPE: [report − margin, repair_finish)
/// for every ticket on that vPE (the paper drops logs within 3 days of a
/// ticket arrival through its resolution before training).
std::vector<logproc::TimeInterval> ticket_exclusion_windows(
    const simnet::FleetTrace& trace, std::int32_t vpe,
    nfv::util::Duration margin = nfv::util::Duration::of_days(3));

}  // namespace nfv::core
