// The end-to-end evaluation harness (§5.1 "Training and Testing").
//
// Mirrors the paper's protocol: train on the first month's normal logs
// (ticket windows removed), then for every following month score the fresh
// logs with the current model, map detected anomaly clusters to tickets,
// and finally perform that month's incremental model update. When the
// software-update rollout hits a group's vPEs, the adaptation variant
// fine-tunes top layers on one week of post-update data; the
// non-adaptation variants must dig themselves out through ordinary
// incremental training (the Fig. 7 comparison).
#pragma once

#include <memory>
#include <optional>

#include "core/detector.h"
#include "core/feature_detectors.h"
#include "core/lstm_detector.h"
#include "core/mapper.h"
#include "core/metrics.h"
#include "core/parsed_fleet.h"
#include "core/vpe_clustering.h"
#include "simnet/fleet.h"

namespace nfv::core {

struct PipelineOptions {
  DetectorKind detector = DetectorKind::kLstm;
  /// Per-group models (true) vs one global model (false).
  bool customize = true;
  /// Transfer-learning adaptation after software updates.
  bool adapt = true;
  /// Forwarded to the LSTM detector's minority over-sampling loop.
  bool oversample = true;
  /// Forwarded to LstmDetectorConfig::persistent_optimizer: keep one Adam
  /// (moment state included) alive across the monthly update/adapt rounds
  /// instead of restarting it cold each round. Off by default to preserve
  /// the seed training trajectory.
  bool persistent_optimizer = false;
  VpeClusteringOptions clustering{.fixed_k = 4};
  MappingConfig mapping;
  /// Margin before ticket report for training-data exclusion (paper: 3 d).
  nfv::util::Duration exclusion_margin = nfv::util::Duration::of_days(3);
  /// Months of data used for the initial fit.
  int initial_train_months = 1;
  /// Post-update data span handed to adapt() (paper: 1 week suffices).
  nfv::util::Duration adapt_span = nfv::util::Duration::of_days(7);
  /// Operating threshold = this quantile of training-data scores.
  double threshold_quantile = 0.99;
  /// Worker threads for the per-group / per-vPE fan-out. 1 = serial
  /// (default); 0 = auto (NFVPRED_THREADS env override, else hardware
  /// concurrency). Results are bit-identical for every thread count.
  std::size_t threads = 1;
  std::uint64_t seed = 7;
  /// Quantized steady-state scoring (LSTM detector only): each group's
  /// model is calibrated to per-channel int8 after training and every
  /// scoring pass runs the packed int8 kernels (forwarded to
  /// LstmDetectorConfig::quantize; overrides lstm_config's value when on).
  bool quantize = false;
  /// Optional override of the LSTM detector configuration.
  std::optional<LstmDetectorConfig> lstm_config;
};

struct MonthlyMetrics {
  int month = 0;
  PrfMetrics prf;
  double false_alarms_per_day = 0.0;
  std::size_t anomaly_clusters = 0;
};

struct PipelineResult {
  VpeClustering clustering;
  /// Per-month metrics at the rolling operating threshold (Fig. 7 series).
  std::vector<MonthlyMetrics> monthly;
  /// All scored test events + tickets per vPE across the whole evaluation
  /// span — input for threshold sweeps (Figs. 5 & 6).
  std::vector<VpeScoredStream> streams;
  /// Ticket-level detection summaries at the operating threshold (Fig. 8).
  std::vector<TicketDetection> detections;
  /// Aggregate mapping at the operating threshold.
  MappingResult mapping;
  /// Final per-group operating thresholds, indexed by clustering group.
  std::vector<double> group_thresholds;
  PrfMetrics aggregate;
  double false_alarms_per_day = 0.0;
  double eval_days = 0.0;
};

/// Run the full rolling evaluation.
PipelineResult run_pipeline(const simnet::FleetTrace& trace,
                            const ParsedFleet& parsed,
                            const PipelineOptions& options);

/// Tickets of one vPE whose mapping-relevant span intersects [begin, end).
std::vector<simnet::Ticket> tickets_in_window(
    const simnet::FleetTrace& trace, std::int32_t vpe,
    nfv::util::SimTime begin, nfv::util::SimTime end,
    nfv::util::Duration predictive_period);

}  // namespace nfv::core
