#include "core/parsed_fleet.h"

#include <algorithm>

#include "util/check.h"

namespace nfv::core {

std::size_t ParsedFleet::vocab_at(int month) const {
  NFV_CHECK(!vocab_by_month.empty(), "vocab timeline not built");
  const auto idx = static_cast<std::size_t>(std::clamp<int>(
      month, 0, static_cast<int>(vocab_by_month.size()) - 1));
  return vocab_by_month[idx];
}

ParsedFleet parse_fleet(const simnet::FleetTrace& trace,
                        logproc::SignatureTreeConfig config) {
  ParsedFleet parsed;
  parsed.tree = logproc::SignatureTree(config);
  parsed.logs_by_vpe.resize(trace.logs_by_vpe.size());
  parsed.vocab_by_month.assign(
      static_cast<std::size_t>(trace.config.months) + 1, 0);

  // Merge all vPE streams in time order with an index cursor per vPE.
  const std::size_t n = trace.logs_by_vpe.size();
  std::vector<std::size_t> cursor(n, 0);
  int last_month = 0;  // vocab_by_month[0] is always 0
  for (std::size_t v = 0; v < n; ++v) {
    parsed.logs_by_vpe[v].reserve(trace.logs_by_vpe[v].size());
  }
  while (true) {
    std::size_t best = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (cursor[v] >= trace.logs_by_vpe[v].size()) continue;
      if (best == n || trace.logs_by_vpe[v][cursor[v]].time <
                           trace.logs_by_vpe[best][cursor[best]].time) {
        best = v;
      }
    }
    if (best == n) break;
    const simnet::RawLogRecord& rec = trace.logs_by_vpe[best][cursor[best]++];
    // Record the dictionary size at each month boundary we cross.
    const int month = std::min(nfv::util::month_of(rec.time),
                               trace.config.months);
    for (int m = last_month + 1; m <= month; ++m) {
      parsed.vocab_by_month[static_cast<std::size_t>(m)] =
          parsed.tree.size();
    }
    last_month = std::max(last_month, month);
    logproc::ParsedLog parsed_log;
    parsed_log.time = rec.time;
    parsed_log.template_id = parsed.tree.learn(rec.text);
    parsed.logs_by_vpe[best].push_back(parsed_log);
  }
  for (std::size_t m = static_cast<std::size_t>(last_month) + 1;
       m < parsed.vocab_by_month.size(); ++m) {
    parsed.vocab_by_month[m] = parsed.tree.size();
  }
  return parsed;
}

std::vector<logproc::TimeInterval> ticket_exclusion_windows(
    const simnet::FleetTrace& trace, std::int32_t vpe,
    nfv::util::Duration margin) {
  std::vector<logproc::TimeInterval> out;
  for (const simnet::Ticket& ticket : trace.tickets) {
    if (ticket.vpe != vpe) continue;
    out.push_back({ticket.report - margin, ticket.repair_finish});
  }
  return out;
}

}  // namespace nfv::core
