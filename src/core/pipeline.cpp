#include "core/pipeline.h"

#include <algorithm>
#include <map>

#include "util/check.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace nfv::core {

using logproc::ParsedLog;
using logproc::TimeInterval;
using nfv::util::Duration;
using nfv::util::Rng;
using nfv::util::SimTime;

std::vector<simnet::Ticket> tickets_in_window(const simnet::FleetTrace& trace,
                                              std::int32_t vpe, SimTime begin,
                                              SimTime end,
                                              Duration predictive_period) {
  std::vector<simnet::Ticket> out;
  for (const simnet::Ticket& ticket : trace.tickets) {
    if (ticket.vpe != vpe) continue;
    // Mapping-relevant span of the ticket: [report − P, repair_finish].
    if (ticket.report - predictive_period < end &&
        ticket.repair_finish >= begin) {
      out.push_back(ticket);
    }
  }
  return out;
}

namespace {

struct GroupState {
  std::vector<std::int32_t> members;
  std::unique_ptr<AnomalyDetector> detector;
  double threshold = 0.0;
};

/// Normal (training) logs of one vPE in a window: ticket vicinity removed.
std::vector<ParsedLog> normal_logs(
    const ParsedFleet& parsed,
    const std::vector<std::vector<TimeInterval>>& exclusions, std::int32_t vpe,
    SimTime begin, SimTime end) {
  const std::vector<ParsedLog> window = logproc::slice_time(
      parsed.logs_by_vpe[static_cast<std::size_t>(vpe)], begin, end);
  return logproc::exclude_intervals(
      window, exclusions[static_cast<std::size_t>(vpe)]);
}

/// Set the group's operating threshold to a quantile of the detector's
/// scores on (normal) calibration streams. All member streams are scored
/// in one batched score_streams call.
void calibrate_threshold(GroupState& group,
                         const std::vector<std::vector<ParsedLog>>& streams,
                         double quantile_q) {
  // Cap calibration work: the quantile is stable well below full coverage.
  constexpr std::size_t kMaxCalibrationLogsPerStream = 3000;
  std::vector<LogView> views;
  views.reserve(streams.size());
  for (const std::vector<ParsedLog>& stream : streams) {
    const std::size_t take =
        std::min(stream.size(), kMaxCalibrationLogsPerStream);
    views.push_back(LogView{stream.data() + (stream.size() - take), take});
  }
  const std::vector<std::vector<ScoredEvent>> events_by_stream =
      group.detector->score_streams(views, 0);
  std::vector<double> scores;
  for (const std::vector<ScoredEvent>& events : events_by_stream) {
    for (const ScoredEvent& event : events) scores.push_back(event.score);
  }
  if (scores.empty()) return;  // keep the previous threshold
  group.threshold = nfv::util::quantile(scores, quantile_q);
}

/// Merge per-month ticket detections (a ticket straddling two months is
/// mapped in both) into one row per ticket.
std::vector<TicketDetection> merge_detections(
    std::span<const TicketDetection> raw) {
  std::map<std::int64_t, TicketDetection> merged;
  for (const TicketDetection& detection : raw) {
    auto [it, inserted] = merged.emplace(detection.ticket_id, detection);
    if (inserted) continue;
    TicketDetection& existing = it->second;
    existing.detected = existing.detected || detection.detected;
    if (detection.detected_before) {
      existing.best_lead = existing.detected_before
                               ? std::max(existing.best_lead,
                                          detection.best_lead)
                               : detection.best_lead;
      existing.detected_before = true;
    }
    if (detection.detected_after) {
      existing.first_error_delay =
          existing.detected_after
              ? std::min(existing.first_error_delay,
                         detection.first_error_delay)
              : detection.first_error_delay;
      existing.detected_after = true;
    }
    existing.anomaly_count += detection.anomaly_count;
  }
  std::vector<TicketDetection> out;
  out.reserve(merged.size());
  for (auto& [id, detection] : merged) out.push_back(detection);
  return out;
}

}  // namespace

PipelineResult run_pipeline(const simnet::FleetTrace& trace,
                            const ParsedFleet& parsed,
                            const PipelineOptions& options) {
  const auto n = static_cast<std::size_t>(trace.num_vpes());
  const int months = trace.config.months;
  NFV_CHECK(options.initial_train_months >= 1 &&
                options.initial_train_months < months,
            "initial_train_months must leave at least one test month");
  Rng rng(options.seed);

  // Fork-join pool for the per-group / per-vPE fan-out. Determinism for
  // every thread count holds because (a) each group owns its detector and
  // an explicitly split RNG stream (seed + 100·(g+1)), (b) every parallel
  // task writes only its own pre-sized output slot, and (c) per-group
  // results are collected in group order before any cross-group merge.
  nfv::util::ThreadPool pool(options.threads);

  PipelineResult result;

  // --- Customization: group the vPEs. ---
  const SimTime train_end =
      nfv::util::month_start(options.initial_train_months);
  if (options.customize) {
    Rng cluster_rng = rng.fork(1);
    result.clustering = cluster_vpes(parsed, SimTime::epoch(), train_end,
                                     options.clustering, cluster_rng);
  } else {
    result.clustering = single_group(n);
  }

  // --- Exclusion windows (±3 days around every ticket). ---
  std::vector<std::vector<TimeInterval>> exclusions(n);
  for (std::size_t v = 0; v < n; ++v) {
    exclusions[v] = ticket_exclusion_windows(
        trace, static_cast<std::int32_t>(v), options.exclusion_margin);
  }

  // --- Group construction + initial fit. ---
  std::vector<GroupState> groups(result.clustering.num_groups);
  for (std::size_t v = 0; v < n; ++v) {
    groups[static_cast<std::size_t>(result.clustering.group_of_vpe[v])]
        .members.push_back(static_cast<std::int32_t>(v));
  }
  const std::size_t vocab_initial =
      parsed.vocab_at(options.initial_train_months);
  pool.parallel_for(0, groups.size(), [&](std::size_t g) {
    GroupState& group = groups[g];
    if (options.detector == DetectorKind::kLstm) {
      LstmDetectorConfig config =
          options.lstm_config.value_or(LstmDetectorConfig{});
      config.oversample = options.oversample;
      config.persistent_optimizer = options.persistent_optimizer;
      if (options.quantize) config.quantize = true;
      config.seed = options.seed + 100 * (g + 1);
      group.detector = std::make_unique<LstmDetector>(config);
    } else {
      group.detector =
          make_detector(options.detector, options.seed + 100 * (g + 1));
    }
    std::vector<std::vector<ParsedLog>> train_streams;
    for (std::int32_t v : group.members) {
      train_streams.push_back(
          normal_logs(parsed, exclusions, v, SimTime::epoch(), train_end));
    }
    std::vector<LogView> views(train_streams.begin(), train_streams.end());
    group.detector->fit(views, vocab_initial);
    calibrate_threshold(group, train_streams, options.threshold_quantile);
  });

  // --- Rolling monthly evaluation. ---
  result.streams.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    result.streams[v].vpe = static_cast<std::int32_t>(v);
    result.streams[v].tickets = tickets_in_window(
        trace, static_cast<std::int32_t>(v), train_end, trace.horizon,
        options.mapping.predictive_period);
  }
  std::vector<TicketDetection> raw_detections;

  // Flat (group, member) task list in the canonical group-major order —
  // per-task result slots collected in list order reproduce the serial
  // iteration order. Because members are appended group-major, group g's
  // tasks occupy the contiguous range [group_task_begin[g],
  // group_task_begin[g+1]) — the unit the batched scorer consumes.
  struct MemberTask {
    std::size_t group;
    std::int32_t vpe;
  };
  std::vector<MemberTask> member_tasks;
  std::vector<std::size_t> group_task_begin(groups.size() + 1, 0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_task_begin[g] = member_tasks.size();
    for (std::int32_t v : groups[g].members) member_tasks.push_back({g, v});
  }
  group_task_begin[groups.size()] = member_tasks.size();

  for (int month = options.initial_train_months; month < months; ++month) {
    const SimTime month_begin = nfv::util::month_start(month);
    const SimTime month_end = nfv::util::month_start(month + 1);

    // The paper's fast adaptation kicks in one week after a software
    // update: if any member of a group is updated this month, the
    // remainder of the month is scored by the adapted model. Planning is
    // cheap and stays serial.
    struct GroupMonthPlan {
      SimTime adapt_at = simnet::never();
      SimTime phase1_end;
      bool split_month = false;
      std::vector<std::pair<std::int32_t, SimTime>> updated_members;
    };
    std::vector<GroupMonthPlan> plans(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      GroupMonthPlan& plan = plans[g];
      if (options.adapt) {
        for (std::int32_t v : groups[g].members) {
          const SimTime u =
              trace.update_time_by_vpe[static_cast<std::size_t>(v)];
          if (u >= month_begin && u < month_end) {
            plan.updated_members.emplace_back(v, u);
            plan.adapt_at = std::min(plan.adapt_at, u + options.adapt_span);
          }
        }
      }
      plan.split_month =
          !plan.updated_members.empty() && plan.adapt_at < month_end;
      plan.phase1_end = plan.split_month ? plan.adapt_at : month_end;
    }

    // Phase 1 — batched per-group scoring up to the adaptation point (or
    // the whole month): all member streams of a group go through ONE
    // score_streams call, which packs their windows into fused forward
    // batches (core/batch_planner.h) instead of scoring window-by-window
    // per vPE. Detectors are strictly read-only while scoring; every
    // group writes only its own members' pre-sized slots, so results stay
    // bit-identical for any thread count and any inference batch size.
    std::vector<std::vector<ScoredEvent>> events_by_task(
        member_tasks.size());
    pool.parallel_for(0, groups.size(), [&](std::size_t g) {
      const std::size_t t0 = group_task_begin[g];
      const std::size_t t1 = group_task_begin[g + 1];
      std::vector<std::vector<ParsedLog>> logs(t1 - t0);
      for (std::size_t t = t0; t < t1; ++t) {
        logs[t - t0] = logproc::slice_time(
            parsed.logs_by_vpe[static_cast<std::size_t>(
                member_tasks[t].vpe)],
            month_begin, plans[g].phase1_end);
      }
      std::vector<LogView> views(logs.begin(), logs.end());
      std::vector<std::vector<ScoredEvent>> events =
          groups[g].detector->score_streams(views, parsed.vocab());
      for (std::size_t t = t0; t < t1; ++t) {
        events_by_task[t] = std::move(events[t - t0]);
      }
    });

    // Adaptation — parallel per group; the only phase that mutates a
    // detector, and each group mutates only its own.
    pool.parallel_for(0, groups.size(), [&](std::size_t g) {
      const GroupMonthPlan& plan = plans[g];
      if (!plan.split_month) return;
      GroupState& group = groups[g];
      // Adapt on ~1 week of post-update data, then score the rest of the
      // month with the adapted model.
      std::vector<std::vector<ParsedLog>> adapt_streams;
      for (const auto& [v, u] : plan.updated_members) {
        adapt_streams.push_back(logproc::slice_time(
            parsed.logs_by_vpe[static_cast<std::size_t>(v)], u,
            u + options.adapt_span));
      }
      std::vector<LogView> adapt_views(adapt_streams.begin(),
                                       adapt_streams.end());
      group.detector->adapt(adapt_views, parsed.vocab_at(month + 1));
      // Recalibrate on the adaptation data itself (what operations has).
      calibrate_threshold(group, adapt_streams, options.threshold_quantile);
    });

    // Phase 2 — batched per-group tail scoring for split months, appended
    // to each member task's own slot.
    pool.parallel_for(0, groups.size(), [&](std::size_t g) {
      const GroupMonthPlan& plan = plans[g];
      if (!plan.split_month) return;
      const std::size_t t0 = group_task_begin[g];
      const std::size_t t1 = group_task_begin[g + 1];
      std::vector<std::vector<ParsedLog>> logs(t1 - t0);
      for (std::size_t t = t0; t < t1; ++t) {
        logs[t - t0] = logproc::slice_time(
            parsed.logs_by_vpe[static_cast<std::size_t>(
                member_tasks[t].vpe)],
            plan.adapt_at, month_end);
      }
      std::vector<LogView> views(logs.begin(), logs.end());
      const std::vector<std::vector<ScoredEvent>> tails =
          groups[g].detector->score_streams(views, parsed.vocab());
      for (std::size_t t = t0; t < t1; ++t) {
        const std::vector<ScoredEvent>& tail = tails[t - t0];
        events_by_task[t].insert(events_by_task[t].end(), tail.begin(),
                                 tail.end());
      }
    });

    // Detect at each group's operating threshold and map to tickets —
    // parallel per vPE into ordered slots; each vPE appears exactly once,
    // so the result.streams appends are disjoint.
    std::vector<MappingResult> month_parts(member_tasks.size());
    pool.parallel_for(0, member_tasks.size(), [&](std::size_t t) {
      const MemberTask& task = member_tasks[t];
      const GroupState& group = groups[task.group];
      const MappingConfig group_mapping = adapt_mapping_for(
          group.detector->granularity(), options.mapping);
      const std::vector<ScoredEvent>& events = events_by_task[t];
      const std::vector<SimTime> clusters =
          cluster_anomalies(events, group.threshold, group_mapping);
      const std::vector<simnet::Ticket> tickets =
          tickets_in_window(trace, task.vpe, month_begin, month_end,
                            options.mapping.predictive_period);
      month_parts[t] =
          map_anomalies(clusters, tickets, task.vpe, group_mapping);
      // Keep the raw scores for threshold sweeps.
      auto& stream = result.streams[static_cast<std::size_t>(task.vpe)];
      stream.events.insert(stream.events.end(), events.begin(),
                           events.end());
    });

    const MappingResult month_mapping = merge_mappings(month_parts);
    MonthlyMetrics metrics;
    metrics.month = month;
    metrics.prf = compute_prf(month_mapping);
    metrics.false_alarms_per_day =
        static_cast<double>(month_mapping.false_alarms) /
        static_cast<double>(nfv::util::kDaysPerMonth);
    metrics.anomaly_clusters = month_mapping.anomalies.size();
    result.monthly.push_back(metrics);
    raw_detections.insert(raw_detections.end(), month_mapping.tickets.begin(),
                          month_mapping.tickets.end());
    result.mapping.early_warnings += month_mapping.early_warnings;
    result.mapping.errors += month_mapping.errors;
    result.mapping.false_alarms += month_mapping.false_alarms;
    result.mapping.anomalies.insert(result.mapping.anomalies.end(),
                                    month_mapping.anomalies.begin(),
                                    month_mapping.anomalies.end());

    // --- End-of-month model maintenance (parallel per group). ---
    if (month + 1 >= months) break;  // nothing left to score
    const std::size_t vocab_now = parsed.vocab_at(month + 1);
    pool.parallel_for(0, groups.size(), [&](std::size_t g) {
      GroupState& group = groups[g];
      std::vector<std::vector<ParsedLog>> update_streams;
      for (std::int32_t v : group.members) {
        update_streams.push_back(
            normal_logs(parsed, exclusions, v, month_begin, month_end));
      }
      std::vector<LogView> views(update_streams.begin(),
                                 update_streams.end());
      group.detector->update(views, vocab_now);
      calibrate_threshold(group, update_streams, options.threshold_quantile);
    });
  }

  // --- Aggregates. ---
  result.group_thresholds.reserve(groups.size());
  for (const GroupState& group : groups) {
    result.group_thresholds.push_back(group.threshold);
  }
  result.detections = merge_detections(raw_detections);
  result.mapping.tickets = result.detections;
  result.aggregate = compute_prf(result.mapping);
  result.eval_days = static_cast<double>(
      (months - options.initial_train_months) * nfv::util::kDaysPerMonth);
  result.false_alarms_per_day =
      result.eval_days > 0.0
          ? static_cast<double>(result.mapping.false_alarms) /
                result.eval_days
          : 0.0;
  return result;
}

}  // namespace nfv::core
