#include "core/hmm_detector.h"

#include <algorithm>

#include "util/check.h"

namespace nfv::core {

HmmDetector::HmmDetector(const HmmDetectorConfig& config)
    : config_(config), model_(config.hmm), rng_(config.seed) {}

std::vector<std::vector<std::int32_t>> HmmDetector::make_windows(
    std::span<const LogView> streams) const {
  std::vector<std::vector<std::int32_t>> windows;
  const std::size_t k = config_.window;
  for (const LogView& logs : streams) {
    if (logs.size() <= k) continue;
    for (std::size_t i = k; i < logs.size(); ++i) {
      std::vector<std::int32_t> window;
      window.reserve(k + 1);
      for (std::size_t j = i - k; j <= i; ++j) {
        window.push_back(logs[j].template_id);
      }
      windows.push_back(std::move(window));
    }
  }
  if (windows.size() > config_.max_train_windows) {
    std::vector<std::vector<std::int32_t>> kept;
    kept.reserve(config_.max_train_windows);
    const double stride = static_cast<double>(windows.size()) /
                          static_cast<double>(config_.max_train_windows);
    for (std::size_t i = 0; i < config_.max_train_windows; ++i) {
      kept.push_back(std::move(windows[static_cast<std::size_t>(i * stride)]));
    }
    windows = std::move(kept);
  }
  return windows;
}

void HmmDetector::refit() {
  if (buffer_.empty()) return;
  if (buffer_.size() > config_.refit_buffer_windows) {
    buffer_.erase(buffer_.begin(),
                  buffer_.end() - static_cast<std::ptrdiff_t>(
                                      config_.refit_buffer_windows));
  }
  model_ = ml::Hmm(config_.hmm);
  nfv::util::Rng fit_rng = rng_.fork(buffer_.size());
  model_.fit(buffer_, vocab_, fit_rng);
}

void HmmDetector::fit(std::span<const LogView> streams, std::size_t vocab) {
  NFV_CHECK(vocab > 0, "fit requires a vocabulary");
  vocab_ = vocab;
  buffer_ = make_windows(streams);
  refit();
}

void HmmDetector::update(std::span<const LogView> streams,
                         std::size_t vocab) {
  NFV_CHECK(trained(), "update before fit");
  vocab_ = std::max(vocab_, vocab);
  auto windows = make_windows(streams);
  for (auto& window : windows) buffer_.push_back(std::move(window));
  refit();
}

void HmmDetector::adapt(std::span<const LogView> streams, std::size_t vocab) {
  NFV_CHECK(trained(), "adapt before fit");
  vocab_ = std::max(vocab_, vocab);
  // No incremental path: adaptation = refit dominated by the fresh data.
  buffer_ = make_windows(streams);
  refit();
}

std::vector<ScoredEvent> HmmDetector::score(LogView logs,
                                            std::size_t vocab) const {
  NFV_CHECK(trained(), "score before fit");
  (void)vocab;
  std::vector<ScoredEvent> out;
  const std::size_t k = config_.window;
  if (logs.size() <= k) return out;
  out.reserve(logs.size() - k);
  std::vector<std::int32_t> window(k + 1);
  for (std::size_t i = k; i < logs.size(); ++i) {
    for (std::size_t j = 0; j <= k; ++j) {
      window[j] = logs[i - k + j].template_id;
    }
    out.push_back({logs[i].time, model_.anomaly_score(window)});
  }
  return out;
}

}  // namespace nfv::core
