// Signature-tree template extraction for router syslogs.
//
// Implements the approach of Qiu et al., "What happened in my network:
// mining network events from router syslogs" (IMC '10), which the paper
// uses to transform raw free-form syslog into a structured representation:
// each message is reduced to a template id ("signature") plus variable
// fields. The tree is keyed by (token count, first stable token) with leaf
// groups merged by token-wise similarity; positions that disagree across
// merged messages become wildcards.
//
// Fast-path representation (zero allocation in steady state): every stable
// token of a signature is interned once and thereafter a template is a
// sequence of u32 token ids (kWildcardTokenId matches anything). The
// per-line front end — one-pass span tokenization, a single head-token
// interner probe, and a (token count, head id) leaf lookup — never
// materializes a std::string, and candidate scoring compares each template
// token's interned text against the line's spans in place, so a warm line
// touches the interner exactly once (its head). The head probe's result
// AND hash are cached across the learn() call, so even the template-
// discovery path never probes the same token twice in one line (one probe
// per line holds under max_signatures cap pressure — pinned by
// signature_tree_test). Line token ids are only built (and new tokens
// interned) when a genuinely new signature is created.
// Mined template ids are bit-identical to ReferenceSignatureTree (the seed
// implementation); tests/logproc/miner_equivalence_test.cpp and
// bench_parsing_throughput --smoke replay full fleet traces through both.
//
// Token storage is a two-level util::ScopedInterner. By default it is a
// plain private interner (bit-compatible with the pre-arena behavior). A
// tree constructed over a util::SharedInterner instead resolves the
// fleet-wide read-mostly arena first and spills rare per-vPE tokens into
// a private overflow id range: fleet memory for the overlapping token set
// becomes O(vocabulary) instead of O(vPEs x vocabulary), and shared-range
// token ids are identical across every tree on the arena ("id-stable
// across vPEs").
//
// TEMPLATE storage is two-level in the same way. Each per-tree template
// entry holds only a match count plus a node id naming its token
// sequence. With a SharedSignatureForest attached, sequences whose tokens
// are all shared-arena ids live as immutable nodes in the forest —
// deduped fleet-wide, so 10k identically-primed vPEs hold ONE cache-
// resident copy of the catalog instead of 10k cold private vectors, and
// the node id is fleet-stable across vPEs (SignatureTree::fleet_template_id).
// Divergence is copy-on-write: generalizing a shared-backed template
// re-interns the generalized sequence into the forest (vPEs diverging the
// same way keep deduping) or, when the forest rejects it (capacity caps,
// or the sequence contains a privately-spilled token id), spills it into
// the tree's private node range above kPrivateNodeBase, where later
// generalizations mutate it in place. Local precedence: the per-tree
// template id (dense creation order) never changes when its backing node
// moves between tiers. Template ids, patterns and match_counts are
// UNAFFECTED by the arena and forest choices: leaf keying and candidate
// scoring depend only on token identity (text) and per-tree creation
// order, never on where the sequence bytes live, so forest trees mine
// byte-identical templates to private trees (pinned by
// miner_equivalence_test).
//
// Thread-safety / ownership: a SignatureTree owns its (private) interner
// tier, private node pool and tokenization scratch outright, and BOTH
// learn() and match() use that scratch — a tree instance is strictly
// single-threaded, even for read-only matching. StreamMonitor therefore
// keeps one tree per monitor (per vPE). The SHARED pieces are the token
// arena and the forest: many trees on many threads may read them
// lock-free while any of them admits new tokens/templates (a small mutex
// on the cold miss path) — see util/interner.h and
// logproc/shared_forest.h. Copying a tree deep-copies its private tiers
// and scratch; the shared arena and forest are referenced, not copied,
// so copies stay id-compatible with the originals.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "logproc/shared_forest.h"
#include "util/interner.h"

namespace nfv::logproc {

/// Token id reserved for the wildcard marker "<*>" (always interned first).
inline constexpr std::uint32_t kWildcardTokenId = 0;

struct SignatureTreeConfig {
  /// Minimum fraction of positions that must match (wildcards count as
  /// matching) for a line to join an existing signature instead of
  /// creating a new one.
  double merge_threshold = 0.6;
  /// Soft cap on distinct signatures; beyond it, the closest shape-
  /// compatible signature is reused even below the merge threshold
  /// (syslog template spaces are finite in practice; the cap bounds the
  /// ML vocabulary). Lines with a shape no existing signature can absorb
  /// still get a fresh template.
  std::size_t max_signatures = 4096;
};

/// Online template miner. learn() both matches and updates the template
/// set; match() is read-only (it still uses per-tree scratch — see the
/// thread-safety note above). Template ids are dense and stable: ids are
/// never reused or renumbered, so they can serve directly as the LSTM
/// vocabulary.
class SignatureTree {
 public:
  /// Returned by fleet_template_id() for a privately-backed template (or
  /// any template of a tree with no forest attached).
  static constexpr std::uint32_t kNoFleetId = 0xFFFFFFFFu;

  /// `shared_tokens` attaches the tree to a fleet-wide token arena and
  /// `forest` to a fleet-wide template forest (both may be null for a
  /// fully private tree; both must out-live the tree). A forest implies
  /// its arena: pass the forest alone and the tree attaches to
  /// forest->arena(); if both are given they must agree.
  explicit SignatureTree(SignatureTreeConfig config = {},
                         nfv::util::SharedInterner* shared_tokens = nullptr,
                         SharedSignatureForest* forest = nullptr);

  /// Match the line, creating or generalizing a signature as needed.
  /// Returns the template id. Zero heap allocation in steady state (warm
  /// tree, previously-seen stable tokens) — in shared-arena and
  /// shared-forest modes too.
  std::int32_t learn(std::string_view line);

  /// Read-only best match; returns -1 if nothing clears the threshold.
  /// Zero heap allocation in steady state, and never takes the shared
  /// arena's or forest's admission mutex (find-only).
  std::int32_t match(std::string_view line) const;

  std::size_t size() const { return sigs_.size(); }
  const SignatureTreeConfig& config() const { return config_; }

  /// Lines absorbed by template `id` (including the one that created it).
  std::uint64_t match_count(std::int32_t id) const {
    return sigs_[checked_index(id)].match_count;
  }

  /// The template's token-id sequence. Positions equal to
  /// kWildcardTokenId match anything. Forest-backed spans are stable for
  /// the forest's lifetime; privately-backed spans are invalidated by
  /// the next learn() that creates or generalizes a private template.
  std::span<const std::uint32_t> tokens(std::int32_t id) const {
    const TokenSpan s = node_tokens(sigs_[checked_index(id)].node);
    return std::span<const std::uint32_t>(s.data, s.size);
  }

  /// Fleet-stable template id: the forest node currently backing
  /// template `id` — identical in every tree on the forest that mined
  /// the same (identically generalized) template — or kNoFleetId when
  /// the template is privately backed or no forest is attached.
  std::uint32_t fleet_template_id(std::int32_t id) const {
    const std::uint32_t node = sigs_[checked_index(id)].node;
    return node < kPrivateNodeBase ? node : kNoFleetId;
  }

  /// Templates currently backed by this tree's private node pool
  /// (diverged under forest caps or over private token ids). Counts
  /// pool entries, including nodes abandoned by later re-interning.
  std::size_t private_template_count() const { return private_nodes_.size(); }

  /// The attached forest, or nullptr.
  const SharedSignatureForest* forest() const { return forest_; }

  /// Text of one interned token id ("<*>" for kWildcardTokenId). Views
  /// into the shared arena are stable; views into the private tier are
  /// invalidated by the next learn() that admits a new private token.
  std::string_view token_text(std::uint32_t token_id) const {
    return interner_.view(token_id);
  }

  /// Human-readable pattern for a template id, e.g.
  /// "SNMP_TRAP_LINK_DOWN ifIndex <*> ...".
  std::string pattern(std::int32_t id) const;

  /// The two-level token view (probe stats, private-overflow size).
  const nfv::util::ScopedInterner& interner() const { return interner_; }

  /// Approximate resident bytes of this tree's PER-VPE state: private
  /// interner tier, template entries, private node pool, leaf table and
  /// scratch. Deliberately excludes the shared arena and forest
  /// (reported once per fleet) — this is the bytes/vPE figure the
  /// runtime stats publish. O(1).
  std::size_t memory_bytes() const;

 private:
  /// First private-node id. Forest node ids live below it (the forest's
  /// seq interner enforces that); without a forest every node is
  /// private. Same constant as the token tier for symmetry.
  static constexpr std::uint32_t kPrivateNodeBase =
      nfv::util::ScopedInterner::kPrivateBase;

  /// A learned template: where its token sequence lives (shared forest
  /// node or private pool node) plus the per-vPE match count. 16 bytes —
  /// the entire per-tree cost of a fleet-shared template.
  struct SigEntry {
    std::uint32_t node = 0;
    std::uint64_t match_count = 0;
  };

  /// Resolved token sequence of a node (either tier).
  struct TokenSpan {
    const std::uint32_t* data;
    std::size_t size;
  };

  /// Span-of-signatures in the private pool. Offsets into private_words_.
  struct NodeRef {
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };

  /// Open-addressed (token count, head id) -> template list table. One
  /// flat power-of-two slot array (16 B/slot) plus a chain pool for the
  /// rare leaves holding multiple templates, replacing the node-based
  /// unordered_map (whose per-leaf allocations dominated tree bytes at
  /// fleet scale). Keys are never 0: the packed key always has a nonzero
  /// token count in its high half.
  struct LeafSlot {
    std::uint64_t key = 0;    // 0 = empty
    std::int32_t sig = -1;    // first template at this leaf
    std::int32_t next = -1;   // index into leaf_chain_, -1 = none
  };

  /// Result of the shared tokenize→leaf-lookup→best-candidate walk.
  struct BestMatch {
    std::int32_t id = -1;
    double score = 0.0;
  };

  std::size_t checked_index(std::int32_t id) const;

  /// Token count of the tokenized line in scratch ("<empty>" placeholder
  /// counts as one token, matching the reference miner).
  std::size_t line_token_count() const {
    return spans_.empty() ? 1 : spans_.size();
  }

  /// Interner id of the line's leaf head: kWildcardTokenId for a variable
  /// first token, kNotFound when the head was never interned (in which
  /// case no leaf can contain it). Caches the head's hash (and probe
  /// result) so the new-signature path can reuse them instead of
  /// re-probing the token it just looked up.
  std::uint32_t head_id() const;

  TokenSpan node_tokens(std::uint32_t node) const;

  /// Store a token sequence as a node: forest intern when attached and
  /// every token id is shared (dedup across vPEs), else private pool.
  std::uint32_t store_node(const std::vector<std::uint32_t>& ids);

  /// Fraction of positions where the template matches the tokenized line
  /// in scratch: wildcard positions match anything; stable positions
  /// compare the token's interned text against the line's span in place
  /// (a variable line token only matches a wildcard).
  double similarity_to_line(const SigEntry& sig) const;

  /// Wildcard every position of `sig` that disagrees with the line in
  /// scratch: in place for a private node, copy-on-write (re-intern or
  /// private spill) for a shared node.
  void generalize_to_line(SigEntry& sig);

  /// Shared by learn() and match(): probe the leaf for (count, head) and
  /// scan its candidates for the best similarity score (first-best wins,
  /// in signature creation order — identical to the reference miner).
  BestMatch find_best(std::uint32_t head) const;

  const LeafSlot* leaf_find(std::uint64_t key) const;
  void leaf_insert(std::uint64_t key, std::int32_t sig);
  void leaf_grow();

  SignatureTreeConfig config_;
  nfv::util::ScopedInterner interner_;  // two-level token view (see above)
  SharedSignatureForest* forest_;       // fleet template tier, may be null
  std::vector<SigEntry> sigs_;          // template id -> entry

  // Private node pool: token sequences the forest does not hold. Nodes
  // are 1:1 with the templates they back and mutate in place on
  // generalization (a shared node is immutable and COWs into here or
  // back into the forest instead).
  std::vector<std::uint32_t> private_words_;
  std::vector<NodeRef> private_nodes_;

  // Flat leaf table (see LeafSlot).
  std::vector<LeafSlot> leaf_slots_;
  std::vector<std::pair<std::int32_t, std::int32_t>> leaf_chain_;
  std::size_t leaf_mask_ = 0;
  std::size_t leaf_count_ = 0;

  // Per-tree tokenization scratch, reused across learn()/match() calls so
  // the steady state allocates nothing. mutable: match() is logically
  // const but still owns the scratch (single-threaded contract above).
  mutable std::vector<std::string_view> spans_;
  mutable std::vector<unsigned char> variable_;
  // Head-probe cache filled by head_id() for the current line (valid only
  // when the line has a stable head), consumed by learn()'s
  // new-signature path.
  mutable std::uint64_t head_hash_ = 0;
  mutable bool head_hash_valid_ = false;
  std::vector<std::uint32_t> line_ids_;  // new-signature path only
  std::vector<std::uint32_t> gen_ids_;   // COW generalization scratch
};

}  // namespace nfv::logproc
