// Signature-tree template extraction for router syslogs.
//
// Implements the approach of Qiu et al., "What happened in my network:
// mining network events from router syslogs" (IMC '10), which the paper
// uses to transform raw free-form syslog into a structured representation:
// each message is reduced to a template id ("signature") plus variable
// fields. The tree is keyed by (token count, first stable token) with leaf
// groups merged by token-wise similarity; positions that disagree across
// merged messages become wildcards.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace nfv::logproc {

/// A learned message template. Tokens equal to kWildcard match anything.
struct Signature {
  std::int32_t id = -1;
  std::vector<std::string> tokens;
  std::uint64_t match_count = 0;

  /// Human-readable pattern, e.g. "SNMP_TRAP_LINK_DOWN ifIndex <*> ...".
  std::string pattern() const;
};

struct SignatureTreeConfig {
  /// Minimum fraction of positions that must match (wildcards count as
  /// matching) for a line to join an existing signature instead of
  /// creating a new one.
  double merge_threshold = 0.6;
  /// Soft cap on distinct signatures; beyond it, the closest shape-
  /// compatible signature is reused even below the merge threshold
  /// (syslog template spaces are finite in practice; the cap bounds the
  /// ML vocabulary). Lines with a shape no existing signature can absorb
  /// still get a fresh template.
  std::size_t max_signatures = 4096;
};

/// Online template miner. learn() both matches and updates the template
/// set; match() is read-only. Template ids are dense and stable: ids are
/// never reused or renumbered, so they can serve directly as the LSTM
/// vocabulary.
class SignatureTree {
 public:
  explicit SignatureTree(SignatureTreeConfig config = {});

  /// Match the line, creating or generalizing a signature as needed.
  /// Returns the template id.
  std::int32_t learn(std::string_view line);

  /// Read-only best match; returns -1 if nothing clears the threshold.
  std::int32_t match(std::string_view line) const;

  const std::vector<Signature>& signatures() const { return signatures_; }
  std::size_t size() const { return signatures_.size(); }
  const SignatureTreeConfig& config() const { return config_; }

 private:
  struct Leaf {
    std::vector<std::int32_t> signature_ids;
  };

  /// Grouping key: token count + first non-variable token (empty if the
  /// first token is variable).
  struct Key {
    std::size_t token_count;
    std::string head;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  static double similarity(const std::vector<std::string>& sig_tokens,
                           const std::vector<std::string>& line_tokens);

  const Leaf* find_leaf(const Key& key) const;
  std::int32_t best_in_leaf(const Leaf& leaf,
                            const std::vector<std::string>& tokens,
                            double* best_score) const;

  SignatureTreeConfig config_;
  std::vector<Signature> signatures_;
  std::unordered_map<Key, Leaf, KeyHash> leaves_;
};

}  // namespace nfv::logproc
