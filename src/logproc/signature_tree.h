// Signature-tree template extraction for router syslogs.
//
// Implements the approach of Qiu et al., "What happened in my network:
// mining network events from router syslogs" (IMC '10), which the paper
// uses to transform raw free-form syslog into a structured representation:
// each message is reduced to a template id ("signature") plus variable
// fields. The tree is keyed by (token count, first stable token) with leaf
// groups merged by token-wise similarity; positions that disagree across
// merged messages become wildcards.
//
// Fast-path representation (zero allocation in steady state): every stable
// token of a SIGNATURE is interned once and thereafter a Signature stores
// u32 token ids (kWildcardTokenId matches anything). The per-line front
// end — one-pass span tokenization, a single head-token interner probe,
// and a (token count, head id) leaf lookup — never materializes a
// std::string, and candidate scoring compares each signature token's
// interned text against the line's spans in place, so a warm line touches
// the interner exactly once (its head). The head probe's result AND hash
// are cached across the learn() call, so even the template-discovery path
// never probes the same token twice in one line (one probe per line holds
// under max_signatures cap pressure — pinned by signature_tree_test).
// Line token ids are only built (and new tokens interned) when a genuinely
// new signature is created.
// Mined template ids are bit-identical to ReferenceSignatureTree (the seed
// implementation); tests/logproc/miner_equivalence_test.cpp and
// bench_parsing_throughput --smoke replay full fleet traces through both.
//
// Token storage is a two-level util::ScopedInterner. By default it is a
// plain private interner (bit-compatible with the pre-arena behavior). A
// tree constructed over a util::SharedInterner instead resolves the
// fleet-wide read-mostly arena first and spills rare per-vPE tokens into
// a private overflow id range: fleet memory for the overlapping token set
// becomes O(vocabulary) instead of O(vPEs x vocabulary), and shared-range
// token ids are identical across every tree on the arena ("id-stable
// across vPEs" — the substrate for fleet-wide template correlation).
// Template ids, patterns and match_counts are UNAFFECTED by the arena
// choice: leaf keying and candidate scoring depend only on token identity
// (text), never on numeric token ids, so shared-arena trees mine byte-
// identical templates to private-arena trees (also pinned by
// miner_equivalence_test).
//
// Thread-safety / ownership: a SignatureTree owns its (private) interner
// tier and its tokenization scratch outright, and BOTH learn() and
// match() use that scratch — a tree instance is strictly single-threaded,
// even for read-only matching. StreamMonitor therefore keeps one tree per
// monitor (per vPE), exactly as the streaming contract already required;
// sharing one tree across threads is only sound when every access is
// externally serialized. The SHARED arena is the one cross-thread piece:
// many trees on many threads may read it lock-free while any of them
// admits new tokens (a small mutex on the cold miss path) — see the
// concurrency contract in util/interner.h. Copying a tree deep-copies its
// private tier and scratch; the shared arena is referenced, not copied,
// so copies stay id-compatible with the originals.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/interner.h"

namespace nfv::logproc {

/// Token id reserved for the wildcard marker "<*>" (always interned first).
inline constexpr std::uint32_t kWildcardTokenId = 0;

/// A learned message template over interned token ids. Positions equal to
/// kWildcardTokenId match anything. Token text is owned by the tree's
/// interner view: render with SignatureTree::pattern()/token_text().
struct Signature {
  std::int32_t id = -1;
  std::vector<std::uint32_t> tokens;
  std::uint64_t match_count = 0;
};

struct SignatureTreeConfig {
  /// Minimum fraction of positions that must match (wildcards count as
  /// matching) for a line to join an existing signature instead of
  /// creating a new one.
  double merge_threshold = 0.6;
  /// Soft cap on distinct signatures; beyond it, the closest shape-
  /// compatible signature is reused even below the merge threshold
  /// (syslog template spaces are finite in practice; the cap bounds the
  /// ML vocabulary). Lines with a shape no existing signature can absorb
  /// still get a fresh template.
  std::size_t max_signatures = 4096;
};

/// Online template miner. learn() both matches and updates the template
/// set; match() is read-only (it still uses per-tree scratch — see the
/// thread-safety note above). Template ids are dense and stable: ids are
/// never reused or renumbered, so they can serve directly as the LSTM
/// vocabulary.
class SignatureTree {
 public:
  /// `shared_tokens` attaches the tree to a fleet-wide token arena (may
  /// be null for a fully private tree). The arena must out-live the tree.
  explicit SignatureTree(SignatureTreeConfig config = {},
                         nfv::util::SharedInterner* shared_tokens = nullptr);

  /// Match the line, creating or generalizing a signature as needed.
  /// Returns the template id. Zero heap allocation in steady state (warm
  /// tree, previously-seen stable tokens) — in shared-arena mode too.
  std::int32_t learn(std::string_view line);

  /// Read-only best match; returns -1 if nothing clears the threshold.
  /// Zero heap allocation in steady state, and never takes the shared
  /// arena's admission mutex (find-only).
  std::int32_t match(std::string_view line) const;

  const std::vector<Signature>& signatures() const { return signatures_; }
  std::size_t size() const { return signatures_.size(); }
  const SignatureTreeConfig& config() const { return config_; }

  /// Text of one interned token id ("<*>" for kWildcardTokenId). Views
  /// into the shared arena are stable; views into the private tier are
  /// invalidated by the next learn() that admits a new private token.
  std::string_view token_text(std::uint32_t token_id) const {
    return interner_.view(token_id);
  }

  /// Human-readable pattern for a template id, e.g.
  /// "SNMP_TRAP_LINK_DOWN ifIndex <*> ...".
  std::string pattern(std::int32_t id) const;

  /// The two-level token view (probe stats, private-overflow size).
  const nfv::util::ScopedInterner& interner() const { return interner_; }

  /// Approximate resident bytes of this tree's PER-VPE state: private
  /// interner tier, signatures, leaf table and scratch. Deliberately
  /// excludes the shared arena (reported once per fleet) — this is the
  /// bytes/vPE figure the runtime stats publish. O(1).
  std::size_t memory_bytes() const;

 private:
  struct Leaf {
    std::vector<std::int32_t> signature_ids;
  };

  /// splitmix64 over the packed (token count, head id) leaf key, so the
  /// per-line leaf probe hashes two integers instead of a std::string.
  struct LeafKeyHash {
    std::size_t operator()(std::uint64_t key) const;
  };

  /// Result of the shared tokenize→leaf-lookup→best-candidate walk.
  struct BestMatch {
    std::int32_t id = -1;
    double score = 0.0;
  };

  /// Token count of the tokenized line in scratch ("<empty>" placeholder
  /// counts as one token, matching the reference miner).
  std::size_t line_token_count() const {
    return spans_.empty() ? 1 : spans_.size();
  }

  /// Interner id of the line's leaf head: kWildcardTokenId for a variable
  /// first token, kNotFound when the head was never interned (in which
  /// case no leaf can contain it). Caches the head's hash (and probe
  /// result) so the new-signature path can reuse them instead of
  /// re-probing the token it just looked up.
  std::uint32_t head_id() const;

  /// Fraction of positions where `sig` matches the tokenized line in
  /// scratch: wildcard signature positions match anything; stable
  /// positions compare the signature token's interned text against the
  /// line's span in place (a variable line token only matches a wildcard).
  double similarity_to_line(const Signature& sig) const;

  /// Shared by learn() and match(): probe the leaf for (count, head) and
  /// scan its candidates for the best similarity score (first-best wins,
  /// in signature creation order — identical to the reference miner).
  BestMatch find_best(std::uint32_t head) const;

  SignatureTreeConfig config_;
  nfv::util::ScopedInterner interner_;  // two-level token view (see above)
  std::vector<Signature> signatures_;
  std::unordered_map<std::uint64_t, Leaf, LeafKeyHash> leaves_;
  std::size_t signature_token_count_ = 0;  // sum of tokens across templates
  // Per-tree tokenization scratch, reused across learn()/match() calls so
  // the steady state allocates nothing. mutable: match() is logically
  // const but still owns the scratch (single-threaded contract above).
  mutable std::vector<std::string_view> spans_;
  mutable std::vector<unsigned char> variable_;
  // Head-probe cache filled by head_id() for the current line (valid only
  // when the line has a stable head), consumed by learn()'s
  // new-signature path.
  mutable std::uint64_t head_hash_ = 0;
  mutable bool head_hash_valid_ = false;
  std::vector<std::uint32_t> line_ids_;  // new-signature path only
};

}  // namespace nfv::logproc
