// Fleet-wide shared signature forest: cross-vPE template dedup.
//
// The paper's fleet premise is that thousands of vPEs of one type emit
// logs drawn from a common template catalog, so identically-primed
// per-vPE signature trees converge on identical template token
// sequences. The forest is the fleet-wide home for those sequences: one
// read-mostly store of immutable template nodes (token-id sequences over
// the shared token arena), shared by every per-vPE SignatureTree of a
// run. A template that N vPEs mine costs one node fleet-wide instead of
// N private vectors — and the node id is *fleet-stable*: the same
// template resolves to the same forest node id in every tree on the
// forest, the substrate the service-chain / noisy-neighbor correlation
// work needs.
//
// Node ids live below util::ScopedInterner::kPrivateBase. Trees layer a
// private node range on top for templates the forest cannot hold:
// sequences containing privately-spilled token ids (not meaningful
// fleet-wide) and admissions rejected by the capacity caps. Divergence
// is copy-on-write at the tree level: a tree that generalizes a shared
// template re-interns the generalized sequence (deduped again across
// vPEs diverging the same way) or spills it privately; the shared node
// itself is immutable forever.
//
// Concurrency contract = SharedSeqInterner's (util/seq_interner.h):
// find()/view()/size() lock-free from any thread concurrently with
// admissions; intern() takes a small mutex only on first-sight
// admission. The forest must out-live every tree attached to it, and
// its token arena must out-live the forest.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/check.h"
#include "util/interner.h"
#include "util/seq_interner.h"

namespace nfv::logproc {

class SharedSignatureForest {
 public:
  static constexpr std::uint32_t kNotFound = nfv::util::SharedSeqInterner::kNotFound;

  struct Config {
    /// Admission caps forwarded to the node store; beyond them intern()
    /// rejects and trees keep the template privately. Bounds fleet
    /// memory under template-churn attacks.
    std::size_t max_templates = 1u << 17;
    std::size_t max_tokens_total = 4u << 20;
  };

  /// The forest is always layered over a shared token arena: node
  /// sequences are only meaningful in a fleet-wide token id space.
  /// (Two overloads, not one defaulted argument: Config's member
  /// initializers are only parsed once the enclosing class is complete.)
  explicit SharedSignatureForest(nfv::util::SharedInterner* token_arena)
      : SharedSignatureForest(token_arena, Config{}) {}
  SharedSignatureForest(nfv::util::SharedInterner* token_arena, Config config)
      : arena_(token_arena),
        nodes_(nfv::util::SharedSeqInterner::Config{config.max_templates,
                                                    config.max_tokens_total}) {
    NFV_CHECK(token_arena != nullptr,
              "shared forest requires a shared token arena");
  }

  SharedSignatureForest(const SharedSignatureForest&) = delete;
  SharedSignatureForest& operator=(const SharedSignatureForest&) = delete;

  /// The token arena the node sequences are expressed over.
  nfv::util::SharedInterner* arena() const { return arena_; }

  /// Lock-free: node id for the template if published, else kNotFound.
  std::uint32_t find(const std::uint32_t* tokens, std::size_t count) const {
    return nodes_.find(tokens, count);
  }

  /// Node id for the template, admitting it if new (mutex on first
  /// sight only). Returns kNotFound when a capacity cap rejects — the
  /// caller keeps the template in its private node range. Token ids
  /// must all be shared-arena ids (below kPrivateBase): private token
  /// ids are tree-local and must never be published fleet-wide.
  std::uint32_t intern(const std::uint32_t* tokens, std::size_t count) {
    return nodes_.intern(tokens, count);
  }

  /// Registrar admission, exempt from the caps (catalog pre-seeding).
  std::uint32_t register_template(const std::uint32_t* tokens,
                                  std::size_t count) {
    return nodes_.register_seq(tokens, count);
  }

  /// The published token sequence of a node. Stable for the forest's
  /// lifetime. Lock-free, any thread.
  nfv::util::SharedSeqInterner::Seq view(std::uint32_t node) const {
    return nodes_.view(node);
  }

  /// Published template count. Lock-free, any thread.
  std::size_t size() const { return nodes_.size(); }

  /// Resident bytes of the node store (counted once per fleet; the
  /// token arena reports its own bytes). Lock-free, any thread.
  std::size_t bytes() const { return nodes_.bytes(); }

  /// Admissions rejected by the capacity caps.
  std::uint64_t rejected() const { return nodes_.rejected(); }

 private:
  nfv::util::SharedInterner* arena_;
  nfv::util::SharedSeqInterner nodes_;
};

}  // namespace nfv::logproc
