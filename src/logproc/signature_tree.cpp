#include "logproc/signature_tree.h"

#include "logproc/tokenizer.h"
#include "util/check.h"

namespace nfv::logproc {

namespace {

/// Id of the "<empty>" placeholder token (interned right after the
/// wildcard in the constructor, so it is always 1).
constexpr std::uint32_t kEmptyTokenId = 1;

}  // namespace

std::size_t SignatureTree::LeafKeyHash::operator()(std::uint64_t key) const {
  // splitmix64 finalizer; libstdc++'s identity hash would feed strided
  // (count << 32 | head) keys straight into the bucket index.
  key ^= key >> 30;
  key *= 0xBF58476D1CE4E5B9ull;
  key ^= key >> 27;
  key *= 0x94D049BB133111EBull;
  key ^= key >> 31;
  return static_cast<std::size_t>(key);
}

SignatureTree::SignatureTree(SignatureTreeConfig config,
                             nfv::util::SharedInterner* shared_tokens)
    : config_(config), interner_(shared_tokens) {
  NFV_CHECK(config.merge_threshold > 0.0 && config.merge_threshold <= 1.0,
            "merge_threshold must be in (0, 1]");
  NFV_CHECK(config.max_signatures > 0, "max_signatures must be positive");
  // In shared mode these resolve against the arena (which pre-interns
  // them); privately they are the first two admissions. Either way the
  // reserved ids hold.
  const std::uint32_t wildcard = interner_.intern(kWildcard);
  NFV_CHECK(wildcard == kWildcardTokenId, "wildcard must intern to id 0");
  const std::uint32_t empty = interner_.intern("<empty>");
  NFV_CHECK(empty == kEmptyTokenId, "<empty> must intern to id 1");
}

std::string SignatureTree::pattern(std::int32_t id) const {
  NFV_CHECK(id >= 0 && static_cast<std::size_t>(id) < signatures_.size(),
            "pattern(): unknown template id " << id);
  const Signature& sig = signatures_[static_cast<std::size_t>(id)];
  std::string out;
  for (std::size_t i = 0; i < sig.tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += token_text(sig.tokens[i]);
  }
  return out;
}

std::size_t SignatureTree::memory_bytes() const {
  // O(1) estimate from capacities and running totals; close enough for
  // the bytes/vPE fleet accounting (it tracks the dominant vectors and
  // tables, not allocator slack).
  const std::size_t signature_bytes =
      signatures_.capacity() * sizeof(Signature) +
      signature_token_count_ * sizeof(std::uint32_t);
  const std::size_t leaf_bytes =
      leaves_.bucket_count() * (sizeof(void*) + sizeof(std::uint64_t)) +
      leaves_.size() * (sizeof(std::uint64_t) + sizeof(Leaf) + 2 * sizeof(void*)) +
      signatures_.size() * sizeof(std::int32_t);
  const std::size_t scratch_bytes =
      spans_.capacity() * sizeof(std::string_view) + variable_.capacity() +
      line_ids_.capacity() * sizeof(std::uint32_t);
  return interner_.private_bytes() + signature_bytes + leaf_bytes +
         scratch_bytes;
}

std::uint32_t SignatureTree::head_id() const {
  // Masked-head equivalence classes of the reference miner's (count, head
  // string) key: a variable first token shares the wildcard bucket, an
  // empty line heads its own "<empty>" bucket.
  head_hash_valid_ = false;
  if (spans_.empty()) return kEmptyTokenId;
  if (variable_[0]) return kWildcardTokenId;
  head_hash_ = nfv::util::StringInterner::hash_bytes(spans_[0]);
  head_hash_valid_ = true;
  return interner_.find_hashed(spans_[0], head_hash_);
}

double SignatureTree::similarity_to_line(const Signature& sig) const {
  // Same-count is guaranteed by the leaf key, but keep the guard so a
  // corrupt tree degrades to "no match" instead of out-of-bounds reads.
  const std::size_t n = line_token_count();
  if (sig.tokens.size() != n) return 0.0;
  if (spans_.empty()) {
    // Placeholder line "<empty>": matches a wildcard or itself.
    return sig.tokens[0] == kWildcardTokenId ||
                   sig.tokens[0] == kEmptyTokenId
               ? 1.0
               : 0.0;
  }
  // A position matches when the signature holds the wildcard there, or
  // when its interned text equals the line's span (a variable line token
  // is masked to "<*>" in the reference miner, so it can only match a
  // wildcard). Comparing text in place keeps the per-line interner
  // traffic to the single head probe.
  std::size_t matched = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t t = sig.tokens[i];
    matched += static_cast<std::size_t>(
        t == kWildcardTokenId ||
        (variable_[i] == 0 && interner_.view(t) == spans_[i]));
  }
  return static_cast<double>(matched) / static_cast<double>(n);
}

SignatureTree::BestMatch SignatureTree::find_best(std::uint32_t head) const {
  BestMatch best;
  if (head == nfv::util::StringInterner::kNotFound) return best;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(line_token_count()) << 32) | head;
  const auto it = leaves_.find(key);
  if (it == leaves_.end()) return best;
  for (const std::int32_t id : it->second.signature_ids) {
    const double score =
        similarity_to_line(signatures_[static_cast<std::size_t>(id)]);
    if (score > best.score) {
      best.score = score;
      best.id = id;
    }
  }
  return best;
}

std::int32_t SignatureTree::learn(std::string_view line) {
  tokenize_spans(line, spans_, variable_);
  const std::uint32_t head = head_id();

  const BestMatch best = find_best(head);
  const bool at_capacity = signatures_.size() >= config_.max_signatures;
  if (best.id >= 0 &&
      (best.score >= config_.merge_threshold || at_capacity)) {
    Signature& sig = signatures_[static_cast<std::size_t>(best.id)];
    // Generalize: disagreeing positions become wildcards — the same
    // predicate similarity_to_line() counted as a mismatch. A perfect
    // score means no position disagreed, so the pass would be a no-op;
    // skipping it removes the second text-compare walk from the
    // steady-state path (a warm template has already generalized every
    // variable position to a wildcard).
    if (best.score == 1.0) {
      // nothing to generalize
    } else if (spans_.empty()) {
      if (sig.tokens[0] != kWildcardTokenId &&
          sig.tokens[0] != kEmptyTokenId) {
        sig.tokens[0] = kWildcardTokenId;
      }
    } else {
      for (std::size_t i = 0; i < spans_.size(); ++i) {
        const std::uint32_t t = sig.tokens[i];
        if (t != kWildcardTokenId &&
            (variable_[i] != 0 || interner_.view(t) != spans_[i])) {
          sig.tokens[i] = kWildcardTokenId;
        }
      }
    }
    ++sig.match_count;
    return best.id;
  }

  // At capacity with no shape-compatible signature to fall back on the cap
  // is soft: a genuinely new line shape still gets a template, since losing
  // events entirely would corrupt the sequence model's input stream.
  // Only here — template discovery, not the steady state — are the line's
  // stable tokens interned and its id sequence materialized. The head's
  // probe from head_id() is reused (found id directly, or its cached hash
  // on the intern) so no token is probed twice for one line — under
  // max_signatures cap pressure, where novel shapes keep arriving, the
  // one-probe-per-line budget holds.
  line_ids_.clear();
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    std::uint32_t id;
    if (variable_[i] != 0) {
      id = kWildcardTokenId;
    } else if (i == 0 && head != nfv::util::StringInterner::kNotFound) {
      id = head;  // head_id() already resolved it
    } else if (i == 0 && head_hash_valid_) {
      id = interner_.intern_hashed(spans_[0], head_hash_);
    } else {
      id = interner_.intern(spans_[i]);
    }
    line_ids_.push_back(id);
  }
  if (line_ids_.empty()) line_ids_.push_back(kEmptyTokenId);

  Signature sig;
  sig.id = static_cast<std::int32_t>(signatures_.size());
  sig.tokens = line_ids_;
  sig.match_count = 1;
  signature_token_count_ += line_ids_.size();
  const std::uint64_t key =
      (static_cast<std::uint64_t>(line_ids_.size()) << 32) |
      line_ids_.front();
  leaves_[key].signature_ids.push_back(sig.id);
  signatures_.push_back(std::move(sig));
  return signatures_.back().id;
}

std::int32_t SignatureTree::match(std::string_view line) const {
  // Read-only: an unseen head resolves to kNotFound (no leaf can hold it),
  // and unseen stable tokens elsewhere simply fail every text comparison —
  // exactly like an unseen string in the reference miner. Nothing is
  // interned.
  tokenize_spans(line, spans_, variable_);
  const BestMatch best = find_best(head_id());
  return best.score >= config_.merge_threshold ? best.id : -1;
}

}  // namespace nfv::logproc
