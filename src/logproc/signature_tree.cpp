#include "logproc/signature_tree.h"

#include "logproc/tokenizer.h"
#include "util/check.h"

namespace nfv::logproc {

namespace {

/// Id of the "<empty>" placeholder token (interned right after the
/// wildcard in the constructor, so it is always 1).
constexpr std::uint32_t kEmptyTokenId = 1;

constexpr std::size_t kInitialLeafSlots = 64;  // power of two

/// splitmix64 over the packed (token count, head id) leaf key, so the
/// per-line leaf probe hashes two integers instead of a std::string.
inline std::uint64_t leaf_hash(std::uint64_t key) {
  key ^= key >> 30;
  key *= 0xBF58476D1CE4E5B9ull;
  key ^= key >> 27;
  key *= 0x94D049BB133111EBull;
  key ^= key >> 31;
  return key;
}

}  // namespace

SignatureTree::SignatureTree(SignatureTreeConfig config,
                             nfv::util::SharedInterner* shared_tokens,
                             SharedSignatureForest* forest)
    : config_(config),
      interner_(forest != nullptr && shared_tokens == nullptr
                    ? forest->arena()
                    : shared_tokens),
      forest_(forest) {
  NFV_CHECK(config.merge_threshold > 0.0 && config.merge_threshold <= 1.0,
            "merge_threshold must be in (0, 1]");
  NFV_CHECK(config.max_signatures > 0, "max_signatures must be positive");
  NFV_CHECK(forest == nullptr || shared_tokens == nullptr ||
                shared_tokens == forest->arena(),
            "tree's token arena must be its forest's arena");
  // In shared mode these resolve against the arena (which pre-interns
  // them); privately they are the first two admissions. Either way the
  // reserved ids hold.
  const std::uint32_t wildcard = interner_.intern(kWildcard);
  NFV_CHECK(wildcard == kWildcardTokenId, "wildcard must intern to id 0");
  const std::uint32_t empty = interner_.intern("<empty>");
  NFV_CHECK(empty == kEmptyTokenId, "<empty> must intern to id 1");
  leaf_slots_.resize(kInitialLeafSlots);
  leaf_mask_ = kInitialLeafSlots - 1;
}

std::size_t SignatureTree::checked_index(std::int32_t id) const {
  NFV_CHECK(id >= 0 && static_cast<std::size_t>(id) < sigs_.size(),
            "unknown template id " << id);
  return static_cast<std::size_t>(id);
}

SignatureTree::TokenSpan SignatureTree::node_tokens(
    std::uint32_t node) const {
  if (node >= kPrivateNodeBase) {
    const NodeRef& ref = private_nodes_[node - kPrivateNodeBase];
    return TokenSpan{private_words_.data() + ref.offset, ref.length};
  }
  const nfv::util::SharedSeqInterner::Seq seq = forest_->view(node);
  return TokenSpan{seq.data, seq.length};
}

std::uint32_t SignatureTree::store_node(
    const std::vector<std::uint32_t>& ids) {
  if (forest_ != nullptr) {
    // Sequences over privately-spilled token ids are tree-local by
    // definition and must never be published fleet-wide.
    bool shareable = true;
    for (const std::uint32_t t : ids) {
      if (t >= nfv::util::ScopedInterner::kPrivateBase) {
        shareable = false;
        break;
      }
    }
    if (shareable) {
      const std::uint32_t node = forest_->intern(ids.data(), ids.size());
      if (node != SharedSignatureForest::kNotFound) return node;
    }
  }
  NFV_CHECK(private_words_.size() + ids.size() <= 0xFFFFFFFFull &&
                private_nodes_.size() < kPrivateNodeBase,
            "private template pool exhausted");
  NodeRef ref;
  ref.offset = static_cast<std::uint32_t>(private_words_.size());
  ref.length = static_cast<std::uint32_t>(ids.size());
  private_words_.insert(private_words_.end(), ids.begin(), ids.end());
  private_nodes_.push_back(ref);
  return kPrivateNodeBase +
         static_cast<std::uint32_t>(private_nodes_.size() - 1);
}

std::string SignatureTree::pattern(std::int32_t id) const {
  const TokenSpan toks = node_tokens(sigs_[checked_index(id)].node);
  std::string out;
  for (std::size_t i = 0; i < toks.size; ++i) {
    if (i > 0) out += ' ';
    out += token_text(toks.data[i]);
  }
  return out;
}

std::size_t SignatureTree::memory_bytes() const {
  // O(1) estimate from capacities; close enough for the bytes/vPE fleet
  // accounting (it tracks the dominant vectors and tables, not allocator
  // slack). Forest-backed template sequences cost this tree nothing —
  // the forest reports its bytes once per fleet.
  const std::size_t signature_bytes =
      sigs_.capacity() * sizeof(SigEntry) +
      private_words_.capacity() * sizeof(std::uint32_t) +
      private_nodes_.capacity() * sizeof(NodeRef);
  const std::size_t leaf_bytes =
      leaf_slots_.capacity() * sizeof(LeafSlot) +
      leaf_chain_.capacity() * sizeof(std::pair<std::int32_t, std::int32_t>);
  const std::size_t scratch_bytes =
      spans_.capacity() * sizeof(std::string_view) + variable_.capacity() +
      line_ids_.capacity() * sizeof(std::uint32_t) +
      gen_ids_.capacity() * sizeof(std::uint32_t);
  return interner_.private_bytes() + signature_bytes + leaf_bytes +
         scratch_bytes;
}

std::uint32_t SignatureTree::head_id() const {
  // Masked-head equivalence classes of the reference miner's (count, head
  // string) key: a variable first token shares the wildcard bucket, an
  // empty line heads its own "<empty>" bucket.
  head_hash_valid_ = false;
  if (spans_.empty()) return kEmptyTokenId;
  if (variable_[0]) return kWildcardTokenId;
  head_hash_ = nfv::util::StringInterner::hash_bytes(spans_[0]);
  head_hash_valid_ = true;
  return interner_.find_hashed(spans_[0], head_hash_);
}

double SignatureTree::similarity_to_line(const SigEntry& sig) const {
  const TokenSpan toks = node_tokens(sig.node);
  // Same-count is guaranteed by the leaf key, but keep the guard so a
  // corrupt tree degrades to "no match" instead of out-of-bounds reads.
  const std::size_t n = line_token_count();
  if (toks.size != n) return 0.0;
  if (spans_.empty()) {
    // Placeholder line "<empty>": matches a wildcard or itself.
    return toks.data[0] == kWildcardTokenId || toks.data[0] == kEmptyTokenId
               ? 1.0
               : 0.0;
  }
  // A position matches when the template holds the wildcard there, or
  // when its interned text equals the line's span (a variable line token
  // is masked to "<*>" in the reference miner, so it can only match a
  // wildcard). Comparing text in place keeps the per-line interner
  // traffic to the single head probe.
  std::size_t matched = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t t = toks.data[i];
    matched += static_cast<std::size_t>(
        t == kWildcardTokenId ||
        (variable_[i] == 0 && interner_.view(t) == spans_[i]));
  }
  return static_cast<double>(matched) / static_cast<double>(n);
}

void SignatureTree::generalize_to_line(SigEntry& sig) {
  if (sig.node >= kPrivateNodeBase) {
    // Private node: 1:1 with this template, mutate in place (identical
    // to the pre-forest behavior).
    const NodeRef& ref = private_nodes_[sig.node - kPrivateNodeBase];
    std::uint32_t* toks = private_words_.data() + ref.offset;
    if (spans_.empty()) {
      if (toks[0] != kWildcardTokenId && toks[0] != kEmptyTokenId) {
        toks[0] = kWildcardTokenId;
      }
      return;
    }
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      const std::uint32_t t = toks[i];
      if (t != kWildcardTokenId &&
          (variable_[i] != 0 || interner_.view(t) != spans_[i])) {
        toks[i] = kWildcardTokenId;
      }
    }
    return;
  }
  // Shared forest node: immutable, so diverge copy-on-write. The
  // generalized sequence is re-interned — deterministic, so vPEs
  // diverging the same way keep deduping onto one node — and only
  // spills into the private pool when the forest rejects it. The
  // per-tree template id (and its leaf position) never changes.
  const nfv::util::SharedSeqInterner::Seq seq = forest_->view(sig.node);
  gen_ids_.assign(seq.data, seq.data + seq.length);
  bool changed = false;
  if (spans_.empty()) {
    if (gen_ids_[0] != kWildcardTokenId && gen_ids_[0] != kEmptyTokenId) {
      gen_ids_[0] = kWildcardTokenId;
      changed = true;
    }
  } else {
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      const std::uint32_t t = gen_ids_[i];
      if (t != kWildcardTokenId &&
          (variable_[i] != 0 || interner_.view(t) != spans_[i])) {
        gen_ids_[i] = kWildcardTokenId;
        changed = true;
      }
    }
  }
  if (!changed) return;
  sig.node = store_node(gen_ids_);
}

SignatureTree::BestMatch SignatureTree::find_best(std::uint32_t head) const {
  BestMatch best;
  if (head == nfv::util::StringInterner::kNotFound) return best;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(line_token_count()) << 32) | head;
  const LeafSlot* slot = leaf_find(key);
  if (slot == nullptr) return best;
  // Walk head + chain in template creation order (first-best wins,
  // identical to the reference miner's candidate scan).
  std::int32_t id = slot->sig;
  std::int32_t next = slot->next;
  while (id >= 0) {
    const double score =
        similarity_to_line(sigs_[static_cast<std::size_t>(id)]);
    if (score > best.score) {
      best.score = score;
      best.id = id;
    }
    if (next >= 0) {
      id = leaf_chain_[static_cast<std::size_t>(next)].first;
      next = leaf_chain_[static_cast<std::size_t>(next)].second;
    } else {
      id = -1;
    }
  }
  return best;
}

const SignatureTree::LeafSlot* SignatureTree::leaf_find(
    std::uint64_t key) const {
  std::size_t slot = static_cast<std::size_t>(leaf_hash(key)) & leaf_mask_;
  while (true) {
    const LeafSlot& s = leaf_slots_[slot];
    if (s.key == key) return &s;
    if (s.key == 0) return nullptr;
    slot = (slot + 1) & leaf_mask_;
  }
}

void SignatureTree::leaf_grow() {
  const std::size_t new_size = leaf_slots_.size() * 2;
  std::vector<LeafSlot> fresh(new_size);
  const std::size_t new_mask = new_size - 1;
  for (const LeafSlot& s : leaf_slots_) {
    if (s.key == 0) continue;
    std::size_t slot =
        static_cast<std::size_t>(leaf_hash(s.key)) & new_mask;
    while (fresh[slot].key != 0) slot = (slot + 1) & new_mask;
    fresh[slot] = s;
  }
  leaf_slots_ = std::move(fresh);
  leaf_mask_ = new_mask;
}

void SignatureTree::leaf_insert(std::uint64_t key, std::int32_t sig) {
  // Keep load factor under ~0.75 so probe chains stay short.
  if ((leaf_count_ + 1) * 4 > leaf_slots_.size() * 3) leaf_grow();
  std::size_t slot = static_cast<std::size_t>(leaf_hash(key)) & leaf_mask_;
  while (leaf_slots_[slot].key != 0 && leaf_slots_[slot].key != key) {
    slot = (slot + 1) & leaf_mask_;
  }
  LeafSlot& s = leaf_slots_[slot];
  if (s.key == 0) {
    s.key = key;
    s.sig = sig;
    ++leaf_count_;
    return;
  }
  // Append at the chain tail so find_best scans creation order.
  const std::int32_t link = static_cast<std::int32_t>(leaf_chain_.size());
  leaf_chain_.emplace_back(sig, -1);
  if (s.next < 0) {
    s.next = link;
    return;
  }
  std::int32_t cur = s.next;
  while (leaf_chain_[static_cast<std::size_t>(cur)].second >= 0) {
    cur = leaf_chain_[static_cast<std::size_t>(cur)].second;
  }
  leaf_chain_[static_cast<std::size_t>(cur)].second = link;
}

std::int32_t SignatureTree::learn(std::string_view line) {
  tokenize_spans(line, spans_, variable_);
  const std::uint32_t head = head_id();

  const BestMatch best = find_best(head);
  const bool at_capacity = sigs_.size() >= config_.max_signatures;
  if (best.id >= 0 &&
      (best.score >= config_.merge_threshold || at_capacity)) {
    SigEntry& sig = sigs_[static_cast<std::size_t>(best.id)];
    // Generalize: disagreeing positions become wildcards — the same
    // predicate similarity_to_line() counted as a mismatch. A perfect
    // score means no position disagreed, so the pass would be a no-op;
    // skipping it removes the second text-compare walk from the
    // steady-state path (a warm template has already generalized every
    // variable position to a wildcard).
    if (best.score != 1.0) generalize_to_line(sig);
    ++sig.match_count;
    return best.id;
  }

  // At capacity with no shape-compatible signature to fall back on the cap
  // is soft: a genuinely new line shape still gets a template, since losing
  // events entirely would corrupt the sequence model's input stream.
  // Only here — template discovery, not the steady state — are the line's
  // stable tokens interned and its id sequence materialized. The head's
  // probe from head_id() is reused (found id directly, or its cached hash
  // on the intern) so no token is probed twice for one line — under
  // max_signatures cap pressure, where novel shapes keep arriving, the
  // one-probe-per-line budget holds.
  line_ids_.clear();
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    std::uint32_t id;
    if (variable_[i] != 0) {
      id = kWildcardTokenId;
    } else if (i == 0 && head != nfv::util::StringInterner::kNotFound) {
      id = head;  // head_id() already resolved it
    } else if (i == 0 && head_hash_valid_) {
      id = interner_.intern_hashed(spans_[0], head_hash_);
    } else {
      id = interner_.intern(spans_[i]);
    }
    line_ids_.push_back(id);
  }
  if (line_ids_.empty()) line_ids_.push_back(kEmptyTokenId);

  const std::uint64_t key =
      (static_cast<std::uint64_t>(line_ids_.size()) << 32) |
      line_ids_.front();
  const std::int32_t id = static_cast<std::int32_t>(sigs_.size());
  SigEntry entry;
  entry.node = store_node(line_ids_);
  entry.match_count = 1;
  leaf_insert(key, id);
  sigs_.push_back(entry);
  return id;
}

std::int32_t SignatureTree::match(std::string_view line) const {
  // Read-only: an unseen head resolves to kNotFound (no leaf can hold it),
  // and unseen stable tokens elsewhere simply fail every text comparison —
  // exactly like an unseen string in the reference miner. Nothing is
  // interned.
  tokenize_spans(line, spans_, variable_);
  const BestMatch best = find_best(head_id());
  return best.score >= config_.merge_threshold ? best.id : -1;
}

}  // namespace nfv::logproc
