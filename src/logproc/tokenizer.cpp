#include "logproc/tokenizer.h"

#include <bit>
#include <cctype>
#include <cstring>

#include <immintrin.h>

#include "util/strings.h"

namespace nfv::logproc {

bool is_variable_token(std::string_view token) {
  if (token.empty()) return false;
  // Any digit anywhere marks the token as variable: counters, indices,
  // IPs, interface units ("ge-0/0/1.100"), hex ids, timestamps.
  return nfv::util::contains_digit(token);
}

namespace {

using token_detail::kCharClass;
using token_detail::kSpace;

/// Trim non-separator whitespace from the run's ends and emit it. Trimmed
/// characters are never digits, so `has_digit` stays valid for the
/// trimmed span — same argument as the scalar scan.
inline void emit_span(const char* data, std::size_t begin, std::size_t end,
                      bool has_digit,
                      std::vector<std::string_view>& tokens,
                      std::vector<unsigned char>& variable) {
  while (begin < end &&
         (kCharClass[static_cast<unsigned char>(data[begin])] & kSpace)) {
    ++begin;
  }
  while (end > begin &&
         (kCharClass[static_cast<unsigned char>(data[end - 1])] & kSpace)) {
    --end;
  }
  if (begin < end) {
    tokens.emplace_back(data + begin, end - begin);
    variable.push_back(has_digit ? 1 : 0);
  }
}

// AVX2 kernel: classify 32 bytes at once into separator/digit bitmasks
// via the nibble-LUT technique (two vpshufb lookups ANDed together: a
// character belongs to a class iff its low-nibble entry and high-nibble
// entry share a group bit). Token runs are then maximal 1-runs of the
// inverted separator mask, extracted with bit scans; trimming and
// emission reuse the scalar helpers, so the spans are byte-for-byte the
// scalar scan's. Group bits (one per (high nibble, class) pair so no two
// classes collide):
//   0x01 tab          (sep)   0x02 \n \v \f \r  (plain whitespace)
//   0x04 space        (sep)   0x08 " ( ) ,      (sep)
//   0x10 ; =          (sep)   0x20 0-9          (digit)
//   0x40 [ ]          (sep)
constexpr char kSepGroups = 0x01 | 0x04 | 0x08 | 0x10 | 0x40;
constexpr char kDigitGroup = 0x20;

struct ChunkMasks {
  std::uint32_t token = 0;  // 1 = non-separator byte
  std::uint32_t digit = 0;  // 1 = ASCII digit
};

__attribute__((target("avx2"))) inline ChunkMasks classify32(__m256i bytes) {
  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(bytes, nib);
  const __m256i hi =
      _mm256_and_si256(_mm256_srli_epi16(bytes, 4), nib);
  const __m256i lut_lo = _mm256_setr_epi8(
      0x24, 0x20, 0x28, 0x20, 0x20, 0x20, 0x20, 0x20, 0x28, 0x29, 0x02,
      0x52, 0x0A, 0x52, 0x00, 0x00, 0x24, 0x20, 0x28, 0x20, 0x20, 0x20,
      0x20, 0x20, 0x28, 0x29, 0x02, 0x52, 0x0A, 0x52, 0x00, 0x00);
  const __m256i lut_hi = _mm256_setr_epi8(
      0x03, 0x00, 0x0C, 0x30, 0x00, 0x40, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x00, 0x0C, 0x30, 0x00, 0x40,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00);
  const __m256i cls = _mm256_and_si256(_mm256_shuffle_epi8(lut_lo, lo),
                                       _mm256_shuffle_epi8(lut_hi, hi));
  const __m256i zero = _mm256_setzero_si256();
  const __m256i not_sep = _mm256_cmpeq_epi8(
      _mm256_and_si256(cls, _mm256_set1_epi8(kSepGroups)), zero);
  const __m256i not_digit = _mm256_cmpeq_epi8(
      _mm256_and_si256(cls, _mm256_set1_epi8(kDigitGroup)), zero);
  ChunkMasks m;
  m.token = static_cast<std::uint32_t>(_mm256_movemask_epi8(not_sep));
  m.digit = ~static_cast<std::uint32_t>(_mm256_movemask_epi8(not_digit));
  return m;
}

inline std::uint32_t low_bits(unsigned count) {
  return count >= 32 ? ~0u : (1u << count) - 1u;
}

__attribute__((target("avx2"))) void tokenize_spans_avx2(
    std::string_view line, std::vector<std::string_view>& tokens,
    std::vector<unsigned char>& variable) {
  const char* data = line.data();
  const std::size_t n = line.size();
  std::size_t token_begin = 0;
  bool in_token = false;
  bool has_digit = false;
  for (std::size_t base = 0; base < n; base += 32) {
    const std::size_t remain = n - base;
    __m256i bytes;
    if (remain >= 32) {
      bytes = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(data + base));
    } else {
      // Pad the tail with a separator so runs end at the line end.
      alignas(32) char buf[32];
      std::memset(buf, ' ', sizeof(buf));
      std::memcpy(buf, data + base, remain);
      bytes = _mm256_load_si256(reinterpret_cast<const __m256i*>(buf));
    }
    const ChunkMasks cm = classify32(bytes);
    std::uint32_t m = cm.token;

    if (in_token) {
      if (m & 1u) {
        // The open token continues into this chunk.
        const unsigned len = static_cast<unsigned>(std::countr_one(m));
        has_digit = has_digit || (cm.digit & low_bits(len)) != 0;
        if (len == 32) continue;  // spans the whole chunk
        emit_span(data, token_begin, base + len, has_digit, tokens,
                  variable);
        m &= ~low_bits(len);
      } else {
        emit_span(data, token_begin, base, has_digit, tokens, variable);
      }
      in_token = false;
    }

    while (m != 0) {
      const unsigned start = static_cast<unsigned>(std::countr_zero(m));
      const unsigned len =
          static_cast<unsigned>(std::countr_one(m >> start));
      const std::uint32_t run = low_bits(len) << start;
      const bool digit = (cm.digit & run) != 0;
      if (start + len == 32) {
        // Run touches the chunk edge: leave it open for the next chunk
        // (or the post-loop flush when this was the last one).
        in_token = true;
        token_begin = base + start;
        has_digit = digit;
        break;
      }
      emit_span(data, base + start, base + start + len, digit, tokens,
                variable);
      m &= ~run;
    }
  }
  if (in_token) emit_span(data, token_begin, n, has_digit, tokens, variable);
}

}  // namespace

void tokenize_spans(std::string_view line,
                    std::vector<std::string_view>& tokens,
                    std::vector<unsigned char>& variable) {
  tokens.clear();
  variable.clear();
  static const bool use_avx2 = __builtin_cpu_supports("avx2");
  if (use_avx2 && line.size() >= 16) {
    tokenize_spans_avx2(line, tokens, variable);
    return;
  }
  for_each_token(line, [&](std::string_view token, bool is_variable) {
    tokens.push_back(token);
    variable.push_back(is_variable ? 1 : 0);
  });
}

// The allocating tier below is deliberately kept as the seed
// implementation (util::split + trim + per-token std::string): it is the
// behavioral reference the span tokenizer is tested against, and the only
// tier reachable from ReferenceSignatureTree.

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  const auto pieces = nfv::util::split(line, " \t,;=()[]\"");
  out.reserve(pieces.size());
  for (std::string_view piece : pieces) {
    piece = nfv::util::trim(piece);
    if (!piece.empty()) out.emplace_back(piece);
  }
  return out;
}

std::vector<std::string> tokenize_masked(std::string_view line) {
  std::vector<std::string> tokens = tokenize(line);
  for (std::string& token : tokens) {
    if (is_variable_token(token)) token = std::string(kWildcard);
  }
  return tokens;
}

}  // namespace nfv::logproc
