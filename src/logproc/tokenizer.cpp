#include "logproc/tokenizer.h"

#include <cctype>

#include "util/strings.h"

namespace nfv::logproc {

bool is_variable_token(std::string_view token) {
  if (token.empty()) return false;
  // Any digit anywhere marks the token as variable: counters, indices,
  // IPs, interface units ("ge-0/0/1.100"), hex ids, timestamps.
  return nfv::util::contains_digit(token);
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  const auto pieces = nfv::util::split(line, " \t,;=()[]\"");
  out.reserve(pieces.size());
  for (std::string_view piece : pieces) {
    piece = nfv::util::trim(piece);
    if (!piece.empty()) out.emplace_back(piece);
  }
  return out;
}

std::vector<std::string> tokenize_masked(std::string_view line) {
  std::vector<std::string> tokens = tokenize(line);
  for (std::string& token : tokens) {
    if (is_variable_token(token)) token = std::string(kWildcard);
  }
  return tokens;
}

}  // namespace nfv::logproc
