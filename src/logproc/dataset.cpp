#include "logproc/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/stats.h"

namespace nfv::logproc {

using nfv::util::Duration;
using nfv::util::SimTime;

std::vector<ParsedLog> exclude_intervals(std::span<const ParsedLog> logs,
                                         std::span<const TimeInterval> drop) {
  std::vector<ParsedLog> out;
  out.reserve(logs.size());
  for (const ParsedLog& log : logs) {
    bool excluded = false;
    for (const TimeInterval& interval : drop) {
      if (interval.contains(log.time)) {
        excluded = true;
        break;
      }
    }
    if (!excluded) out.push_back(log);
  }
  return out;
}

std::vector<ParsedLog> slice_time(std::span<const ParsedLog> logs,
                                  SimTime begin, SimTime end) {
  std::vector<ParsedLog> out;
  for (const ParsedLog& log : logs) {
    if (log.time >= begin && log.time < end) out.push_back(log);
  }
  return out;
}

std::vector<nfv::ml::SeqExample> build_sequence_examples(
    std::span<const ParsedLog> logs, std::size_t window, Duration max_gap) {
  NFV_CHECK(window >= 1, "window must be >= 1");
  std::vector<nfv::ml::SeqExample> out;
  if (logs.size() <= window) return out;
  out.reserve(logs.size() - window);
  for (std::size_t i = window; i < logs.size(); ++i) {
    // Reject windows spanning a session break.
    bool gap_break = false;
    for (std::size_t j = i - window + 1; j <= i; ++j) {
      if (logs[j].time - logs[j - 1].time > max_gap) {
        gap_break = true;
        break;
      }
    }
    if (gap_break) continue;
    nfv::ml::SeqExample ex;
    ex.ids.resize(window);
    ex.dts.resize(window);
    for (std::size_t j = 0; j < window; ++j) {
      const std::size_t idx = i - window + j;
      ex.ids[j] = logs[idx].template_id;
      const Duration dt =
          idx == 0 ? Duration{0} : logs[idx].time - logs[idx - 1].time;
      ex.dts[j] = static_cast<float>(dt.seconds);
    }
    ex.target = logs[i].template_id;
    out.push_back(std::move(ex));
  }
  return out;
}

std::vector<double> template_distribution(std::span<const ParsedLog> logs,
                                          std::size_t vocab) {
  std::vector<double> dist(vocab, 0.0);
  for (const ParsedLog& log : logs) {
    if (log.template_id >= 0 &&
        static_cast<std::size_t>(log.template_id) < vocab) {
      dist[static_cast<std::size_t>(log.template_id)] += 1.0;
    }
  }
  nfv::util::normalize_l1(dist);
  return dist;
}

std::vector<Document> build_documents(std::span<const ParsedLog> logs,
                                      std::size_t doc_size) {
  NFV_CHECK(doc_size >= 1, "doc_size must be >= 1");
  std::vector<Document> out;
  if (logs.size() < doc_size) return out;
  const std::size_t stride = std::max<std::size_t>(doc_size / 2, 1);
  for (std::size_t start = 0; start + doc_size <= logs.size();
       start += stride) {
    Document doc;
    doc.template_ids.reserve(doc_size);
    for (std::size_t i = start; i < start + doc_size; ++i) {
      doc.template_ids.push_back(logs[i].template_id);
    }
    doc.time = logs[start + doc_size - 1].time;
    out.push_back(std::move(doc));
  }
  return out;
}

void TfidfFeaturizer::fit(std::span<const Document> docs, std::size_t vocab) {
  NFV_CHECK(vocab > 0, "TfidfFeaturizer requires a vocabulary");
  idf_.assign(vocab, 0.0);
  if (docs.empty()) return;
  std::vector<std::uint8_t> seen(vocab);
  for (const Document& doc : docs) {
    std::fill(seen.begin(), seen.end(), 0);
    for (std::int32_t id : doc.template_ids) {
      if (id >= 0 && static_cast<std::size_t>(id) < vocab) {
        seen[static_cast<std::size_t>(id)] = 1;
      }
    }
    for (std::size_t t = 0; t < vocab; ++t) idf_[t] += seen[t];
  }
  const double n = static_cast<double>(docs.size());
  for (double& df : idf_) {
    // Smoothed idf, never negative.
    df = std::log((n + 1.0) / (df + 1.0)) + 1.0;
  }
}

std::vector<float> TfidfFeaturizer::transform(const Document& doc) const {
  NFV_CHECK(fitted(), "TfidfFeaturizer::transform before fit");
  std::vector<float> out(idf_.size(), 0.0f);
  if (doc.template_ids.empty()) return out;
  for (std::int32_t id : doc.template_ids) {
    if (id >= 0 && static_cast<std::size_t>(id) < out.size()) {
      out[static_cast<std::size_t>(id)] += 1.0f;
    }
  }
  const float inv_len = 1.0f / static_cast<float>(doc.template_ids.size());
  double norm2 = 0.0;
  for (std::size_t t = 0; t < out.size(); ++t) {
    out[t] = out[t] * inv_len * static_cast<float>(idf_[t]);
    norm2 += static_cast<double>(out[t]) * out[t];
  }
  if (norm2 > 0.0) {
    const auto inv_norm = static_cast<float>(1.0 / std::sqrt(norm2));
    for (float& x : out) x *= inv_norm;
  }
  return out;
}

nfv::ml::Matrix TfidfFeaturizer::transform_batch(
    std::span<const Document> docs) const {
  nfv::ml::Matrix out(docs.size(), idf_.size());
  for (std::size_t r = 0; r < docs.size(); ++r) {
    const std::vector<float> row = transform(docs[r]);
    std::copy(row.begin(), row.end(), out.row(r));
  }
  return out;
}

}  // namespace nfv::logproc
