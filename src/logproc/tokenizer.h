// Syslog line tokenization.
//
// Splits a raw free-form syslog message into tokens and classifies the
// tokens that are almost certainly variable fields (numbers, IPs,
// interface names with indices, hex ids...). Variable tokens are rewritten
// to the wildcard marker so that the signature tree (template miner) sees
// stable structure.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nfv::logproc {

/// The wildcard marker used in learned templates.
inline constexpr std::string_view kWildcard = "<*>";

/// True if the token should be treated as a variable field: contains a
/// digit, or is a bare punctuation-delimited value like an IP or hex id.
bool is_variable_token(std::string_view token);

/// Tokenize one syslog message body. Splits on whitespace and the
/// separators ,;=()[] while keeping ':' inside tokens (interface names such
/// as "ge-0/0/1" and IPv6 addresses stay single tokens).
std::vector<std::string> tokenize(std::string_view line);

/// Tokenize and replace variable tokens with kWildcard.
std::vector<std::string> tokenize_masked(std::string_view line);

}  // namespace nfv::logproc
