// Syslog line tokenization.
//
// Splits a raw free-form syslog message into tokens and classifies the
// tokens that are almost certainly variable fields (numbers, IPs,
// interface names with indices, hex ids...). Variable tokens are rewritten
// to the wildcard marker so that the signature tree (template miner) sees
// stable structure.
//
// Two tiers:
//  - for_each_token() / tokenize_spans(): the zero-allocation fast path —
//    one table-driven pass over the line emitting string_view spans plus
//    an inline is-variable flag. This is what the signature tree's hot
//    loop uses. tokenize_spans() additionally carries an AVX2 kernel
//    (nibble-LUT byte classification into separator/digit bitmasks, token
//    runs extracted with bit scans) selected at runtime, emitting exactly
//    the same spans as the scalar scan.
//  - tokenize() / tokenize_masked(): the original allocating API, kept
//    bit-for-bit as the behavioral reference (tests assert the span
//    tokenizer agrees with it on every line).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace nfv::logproc {

/// The wildcard marker used in learned templates.
inline constexpr std::string_view kWildcard = "<*>";

/// True if the token should be treated as a variable field: contains a
/// digit, or is a bare punctuation-delimited value like an IP or hex id.
bool is_variable_token(std::string_view token);

namespace token_detail {

inline constexpr unsigned char kSep = 1;    // hard separator
inline constexpr unsigned char kSpace = 2;  // ASCII whitespace (trimmed)
inline constexpr unsigned char kDigit = 4;  // marks variable tokens

inline constexpr std::array<unsigned char, 256> kCharClass = [] {
  std::array<unsigned char, 256> table{};
  for (const char c : std::string_view(" \t,;=()[]\"")) {
    table[static_cast<unsigned char>(c)] |= kSep;
  }
  for (const char c : std::string_view(" \t\n\v\f\r")) {
    table[static_cast<unsigned char>(c)] |= kSpace;
  }
  for (char c = '0'; c <= '9'; ++c) {
    table[static_cast<unsigned char>(c)] |= kDigit;
  }
  return table;
}();

}  // namespace token_detail

/// One-pass span tokenizer: invokes fn(token, is_variable) for each token,
/// where `token` is a view into `line`. Splits on whitespace and the
/// separators ,;=()[]" while keeping ':' inside tokens (interface names
/// such as "ge-0/0/1" and IPv6 addresses stay single tokens); pieces are
/// trimmed of ASCII whitespace and empty pieces are dropped — exactly the
/// tokens of tokenize(), with is_variable == is_variable_token(token),
/// but with zero heap allocation.
template <typename Fn>
inline void for_each_token(std::string_view line, Fn&& fn) {
  using token_detail::kCharClass;
  const char* data = line.data();
  const std::size_t n = line.size();
  std::size_t pos = 0;
  while (pos < n) {
    unsigned char cls = kCharClass[static_cast<unsigned char>(data[pos])];
    if (cls & token_detail::kSep) {
      ++pos;
      continue;
    }
    const std::size_t piece_begin = pos;
    unsigned char seen = 0;
    do {
      seen |= cls;
      ++pos;
      if (pos >= n) break;
      cls = kCharClass[static_cast<unsigned char>(data[pos])];
    } while (!(cls & token_detail::kSep));
    // Trim non-separator whitespace (\n \v \f \r) from both ends. Trimmed
    // characters are never digits, so `seen` stays valid for the trimmed
    // span.
    std::size_t begin = piece_begin;
    std::size_t end = pos;
    while (begin < end && (kCharClass[static_cast<unsigned char>(
                               data[begin])] &
                           token_detail::kSpace)) {
      ++begin;
    }
    while (end > begin && (kCharClass[static_cast<unsigned char>(
                               data[end - 1])] &
                           token_detail::kSpace)) {
      --end;
    }
    if (begin < end) {
      fn(std::string_view(data + begin, end - begin),
         (seen & token_detail::kDigit) != 0);
    }
  }
}

/// Span tokenization into reusable output vectors: tokens[i] views into
/// `line`, variable[i] != 0 iff tokens[i] is a variable field. Clears and
/// refills both vectors, reusing their capacity (no allocation once warm).
void tokenize_spans(std::string_view line,
                    std::vector<std::string_view>& tokens,
                    std::vector<unsigned char>& variable);

/// Tokenize one syslog message body (allocating reference tier). Splits on
/// whitespace and the separators ,;=()[] while keeping ':' inside tokens
/// (interface names such as "ge-0/0/1" and IPv6 addresses stay single
/// tokens).
std::vector<std::string> tokenize(std::string_view line);

/// Tokenize and replace variable tokens with kWildcard (reference tier).
std::vector<std::string> tokenize_masked(std::string_view line);

}  // namespace nfv::logproc
