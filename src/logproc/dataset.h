// Dataset construction: turns template-id log streams into the model
// inputs of §4.2 — sliding windows of (template id, inter-arrival) tuples —
// plus the frequency distributions and TF-IDF features used by the
// clustering step and the baseline detectors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/matrix.h"
#include "ml/sequence_model.h"
#include "util/sim_time.h"

namespace nfv::logproc {

/// One structured syslog event after signature-tree extraction.
struct ParsedLog {
  nfv::util::SimTime time;
  std::int32_t template_id = 0;
};

/// Half-open exclusion interval [begin, end): logs inside are dropped from
/// training data. The paper removes logs within 3 days of a ticket arrival
/// through its resolution (§3.3, §4.2).
struct TimeInterval {
  nfv::util::SimTime begin;
  nfv::util::SimTime end;
  bool contains(nfv::util::SimTime t) const { return t >= begin && t < end; }
};

/// Remove logs falling inside any interval. Intervals need not be sorted
/// or disjoint.
std::vector<ParsedLog> exclude_intervals(std::span<const ParsedLog> logs,
                                         std::span<const TimeInterval> drop);

/// Keep only logs with time in [begin, end).
std::vector<ParsedLog> slice_time(std::span<const ParsedLog> logs,
                                  nfv::util::SimTime begin,
                                  nfv::util::SimTime end);

/// Build LSTM training/scoring windows: for each position i ≥ k, a window
/// of the k preceding (template, Δt) tuples with log i as the prediction
/// target. Windows never span gaps larger than `max_gap` (a session break:
/// prediction across an hours-long silence carries no sequential signal).
std::vector<nfv::ml::SeqExample> build_sequence_examples(
    std::span<const ParsedLog> logs, std::size_t window,
    nfv::util::Duration max_gap = nfv::util::Duration::of_hours(12));

/// Normalized template-frequency distribution over `logs` with the given
/// vocabulary size — the representation both the vPE-similarity analysis
/// (Fig. 3) and the vPE clustering (§4.3) operate on.
std::vector<double> template_distribution(std::span<const ParsedLog> logs,
                                          std::size_t vocab);

/// A count-based document: the multiset of template ids in a window of
/// consecutive logs. Used as the unit for TF-IDF features.
struct Document {
  std::vector<std::int32_t> template_ids;
  nfv::util::SimTime time;  // time of the window's last log
};

/// Chop a log stream into half-overlapping documents of `doc_size` logs.
std::vector<Document> build_documents(std::span<const ParsedLog> logs,
                                      std::size_t doc_size);

/// TF-IDF featurizer over template-id documents (Zhang et al.'s feature
/// choice for the autoencoder baseline). fit() learns document frequencies;
/// transform() produces L2-normalized tf·idf rows.
class TfidfFeaturizer {
 public:
  void fit(std::span<const Document> docs, std::size_t vocab);

  bool fitted() const { return !idf_.empty(); }
  std::size_t vocab() const { return idf_.size(); }

  /// One L2-normalized feature row; ids outside the fitted vocab are
  /// ignored (unseen templates contribute nothing).
  std::vector<float> transform(const Document& doc) const;

  /// Transform a batch into a feature matrix (rows = documents).
  nfv::ml::Matrix transform_batch(std::span<const Document> docs) const;

 private:
  std::vector<double> idf_;
};

}  // namespace nfv::logproc
