#include "logproc/reference_miner.h"

#include <functional>

#include "logproc/signature_tree.h"
#include "logproc/tokenizer.h"
#include "util/check.h"

namespace nfv::logproc {

std::string ReferenceSignature::pattern() const {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += tokens[i];
  }
  return out;
}

std::size_t ReferenceSignatureTree::KeyHash::operator()(const Key& k) const {
  return std::hash<std::size_t>{}(k.token_count) * 1315423911u ^
         std::hash<std::string>{}(k.head);
}

ReferenceSignatureTree::ReferenceSignatureTree()
    : ReferenceSignatureTree(SignatureTreeConfig{}) {}

ReferenceSignatureTree::ReferenceSignatureTree(
    const SignatureTreeConfig& config)
    : merge_threshold_(config.merge_threshold),
      max_signatures_(config.max_signatures) {
  NFV_CHECK(config.merge_threshold > 0.0 && config.merge_threshold <= 1.0,
            "merge_threshold must be in (0, 1]");
  NFV_CHECK(config.max_signatures > 0, "max_signatures must be positive");
}

double ReferenceSignatureTree::similarity(
    const std::vector<std::string>& sig_tokens,
    const std::vector<std::string>& line_tokens) {
  if (sig_tokens.size() != line_tokens.size()) return 0.0;
  if (sig_tokens.empty()) return 1.0;
  std::size_t matched = 0;
  for (std::size_t i = 0; i < sig_tokens.size(); ++i) {
    if (sig_tokens[i] == kWildcard || sig_tokens[i] == line_tokens[i]) {
      ++matched;
    }
  }
  return static_cast<double>(matched) /
         static_cast<double>(sig_tokens.size());
}

const ReferenceSignatureTree::Leaf* ReferenceSignatureTree::find_leaf(
    const Key& key) const {
  const auto it = leaves_.find(key);
  return it == leaves_.end() ? nullptr : &it->second;
}

std::int32_t ReferenceSignatureTree::best_in_leaf(
    const Leaf& leaf, const std::vector<std::string>& tokens,
    double* best_score) const {
  std::int32_t best_id = -1;
  double best = 0.0;
  for (const std::int32_t id : leaf.signature_ids) {
    const double score =
        similarity(signatures_[static_cast<std::size_t>(id)].tokens, tokens);
    if (score > best) {
      best = score;
      best_id = id;
    }
  }
  if (best_score) *best_score = best;
  return best_id;
}

std::int32_t ReferenceSignatureTree::learn(std::string_view line) {
  std::vector<std::string> tokens = tokenize_masked(line);
  if (tokens.empty()) tokens.push_back("<empty>");
  const Key key{tokens.size(),
                tokens.front() == kWildcard ? std::string() : tokens.front()};
  Leaf& leaf = leaves_[key];

  double best_score = 0.0;
  const std::int32_t best_id = best_in_leaf(leaf, tokens, &best_score);
  const bool at_capacity = signatures_.size() >= max_signatures_;
  if (best_id >= 0 &&
      (best_score >= merge_threshold_ || at_capacity)) {
    ReferenceSignature& sig = signatures_[static_cast<std::size_t>(best_id)];
    // Generalize: disagreeing positions become wildcards.
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (sig.tokens[i] != kWildcard && sig.tokens[i] != tokens[i]) {
        sig.tokens[i] = std::string(kWildcard);
      }
    }
    ++sig.match_count;
    return best_id;
  }

  // At capacity with no shape-compatible signature to fall back on the cap
  // is soft: a genuinely new line shape still gets a template, since losing
  // events entirely would corrupt the sequence model's input stream.
  ReferenceSignature sig;
  sig.id = static_cast<std::int32_t>(signatures_.size());
  sig.tokens = std::move(tokens);
  sig.match_count = 1;
  leaf.signature_ids.push_back(sig.id);
  signatures_.push_back(std::move(sig));
  return signatures_.back().id;
}

std::int32_t ReferenceSignatureTree::match(std::string_view line) const {
  std::vector<std::string> tokens = tokenize_masked(line);
  if (tokens.empty()) tokens.push_back("<empty>");
  const Key key{tokens.size(),
                tokens.front() == kWildcard ? std::string() : tokens.front()};
  const Leaf* leaf = find_leaf(key);
  if (!leaf) return -1;
  double best_score = 0.0;
  const std::int32_t best_id = best_in_leaf(*leaf, tokens, &best_score);
  return best_score >= merge_threshold_ ? best_id : -1;
}

}  // namespace nfv::logproc
