// Seed-behavior reference template miner.
//
// This is the original (pre-fast-path) SignatureTree implementation kept
// verbatim: per-line std::string tokens via the allocating tokenize_masked
// tier, string-keyed leaf lookup, and string-compare similarity. It exists
// for the same reason the serial GEMM kernels do — as the behavioral
// reference the optimized path is pinned against: the equivalence suite
// and bench_parsing_throughput --smoke replay full fleet traces through
// both miners and require identical template-id sequences, patterns, and
// match counts. Never use it on a hot path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace nfv::logproc {

/// A learned template in the reference miner (string tokens; tokens equal
/// to kWildcard match anything).
struct ReferenceSignature {
  std::int32_t id = -1;
  std::vector<std::string> tokens;
  std::uint64_t match_count = 0;

  /// Human-readable pattern, e.g. "SNMP_TRAP_LINK_DOWN ifIndex <*> ...".
  std::string pattern() const;
};

struct SignatureTreeConfig;  // shared with the fast path (signature_tree.h)

/// Seed-behavior online template miner. Same semantics as SignatureTree;
/// see signature_tree.h for the API contract.
class ReferenceSignatureTree {
 public:
  ReferenceSignatureTree();
  explicit ReferenceSignatureTree(const SignatureTreeConfig& config);

  std::int32_t learn(std::string_view line);
  std::int32_t match(std::string_view line) const;

  const std::vector<ReferenceSignature>& signatures() const {
    return signatures_;
  }
  std::size_t size() const { return signatures_.size(); }

 private:
  struct Leaf {
    std::vector<std::int32_t> signature_ids;
  };

  /// Grouping key: token count + first non-variable token (empty if the
  /// first token is variable).
  struct Key {
    std::size_t token_count;
    std::string head;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  static double similarity(const std::vector<std::string>& sig_tokens,
                           const std::vector<std::string>& line_tokens);

  const Leaf* find_leaf(const Key& key) const;
  std::int32_t best_in_leaf(const Leaf& leaf,
                            const std::vector<std::string>& tokens,
                            double* best_score) const;

  double merge_threshold_;
  std::size_t max_signatures_;
  std::vector<ReferenceSignature> signatures_;
  std::unordered_map<Key, Leaf, KeyHash> leaves_;
};

}  // namespace nfv::logproc
