// Self-Organizing Map (Kohonen network).
//
// The paper's related work (vNMF, [21]/[24]) clusters NFV monitoring data
// with SOMs. This 2-D map over template-distribution vectors provides the
// alternative vPE-grouping method the ablation bench compares against
// K-means.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "ml/matrix.h"
#include "util/rng.h"

namespace nfv::ml {

struct SomConfig {
  std::size_t rows = 3;
  std::size_t cols = 3;
  std::size_t epochs = 60;
  double initial_learning_rate = 0.5;
  double final_learning_rate = 0.02;
  /// Initial neighbourhood radius (in grid cells); decays to ~0.5.
  double initial_radius = 2.0;
};

/// Rectangular SOM with Gaussian neighbourhood and exponential decay.
class Som {
 public:
  explicit Som(const SomConfig& config = {});

  /// Train on the rows of `data` (n × d).
  void fit(const Matrix& data, nfv::util::Rng& rng);

  bool trained() const { return dim_ > 0; }
  std::size_t units() const { return config_.rows * config_.cols; }
  const SomConfig& config() const { return config_; }

  /// Best-matching unit (flattened index) for a sample.
  std::size_t best_matching_unit(std::span<const float> x) const;

  /// Quantization error: distance of the sample to its BMU's codebook.
  double quantization_error(std::span<const float> x) const;

  /// Cluster labels for a dataset: each row's BMU index.
  std::vector<std::size_t> assign(const Matrix& data) const;

  /// Codebook vector of a unit.
  std::span<const float> codebook(std::size_t unit) const;

 private:
  std::pair<std::size_t, std::size_t> unit_position(std::size_t unit) const {
    return {unit / config_.cols, unit % config_.cols};
  }

  SomConfig config_;
  std::size_t dim_ = 0;
  Matrix codebook_;  // (rows*cols × d)
};

}  // namespace nfv::ml
