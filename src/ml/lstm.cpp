#include "ml/lstm.h"

#include <cmath>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "ml/activations.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace nfv::ml {

namespace {

/// Row-parallel threshold for the elementwise gate/cell loops. The
/// sigmoid/tanh evaluations dominate the fused scoring batches (each costs
/// tens of MACs), so the bar is much lower than the matmul one; rows are
/// independent, so the parallel split is bit-identical to the serial loop.
/// Training batches (typically 64 rows) deliberately stay under it — at
/// that size a fork-join costs more than the row loop, and the training
/// path gets its parallelism from the chunky per-timestep gradient shards
/// instead. The fused scoring batches (~1024 rows) are far above it.
bool use_parallel_rows(std::size_t rows) {
  return rows >= 256 && !nfv::util::ThreadPool::in_parallel_region() &&
         nfv::util::global_pool().size() > 1;
}

template <typename Fn>
void for_each_row(std::size_t rows, const Fn& fn) {
  if (use_parallel_rows(rows)) {
    nfv::util::global_pool().parallel_for(0, rows, fn);
  } else {
    for (std::size_t r = 0; r < rows; ++r) fn(r);
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
#define NFV_LSTM_SIMD 1

// Vectorized activations for the fused gate/cell row passes, used only in
// the AVX2+FMA kernel mode (ml::simd_kernels_enabled). exp — and tanh /
// sigmoid through it — is the classic Cephes single-precision evaluation
// (range-reduce by ln 2, degree-6 polynomial, scale by 2^n), accurate to
// ~1e-7 relative. Like FMA contraction in the matmul kernels, this makes
// the two SIMD modes differ numerically from each other, while each mode
// stays bit-identical across thread counts: the row split never changes
// which instructions evaluate a given element.

__attribute__((target("avx2,fma"))) inline __m256 exp256(__m256 x) {
  x = _mm256_min_ps(x, _mm256_set1_ps(88.3762626647949f));
  x = _mm256_max_ps(x, _mm256_set1_ps(-88.3762626647949f));
  const __m256 n = _mm256_round_ps(
      _mm256_mul_ps(x, _mm256_set1_ps(1.44269504088896341f)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  // r = x - n·ln2, with ln2 split in two for extra precision.
  __m256 r = _mm256_fnmadd_ps(n, _mm256_set1_ps(0.693359375f), x);
  r = _mm256_fnmadd_ps(n, _mm256_set1_ps(-2.12194440e-4f), r);
  __m256 p = _mm256_set1_ps(1.9875691500e-4f);
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.3981999507e-3f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(8.3334519073e-3f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(4.1665795894e-2f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.6666665459e-1f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(5.0000001201e-1f));
  p = _mm256_fmadd_ps(p, _mm256_mul_ps(r, r), r);
  p = _mm256_add_ps(p, _mm256_set1_ps(1.0f));
  __m256i bits = _mm256_cvtps_epi32(n);
  bits = _mm256_add_epi32(bits, _mm256_set1_epi32(127));
  bits = _mm256_slli_epi32(bits, 23);
  return _mm256_mul_ps(p, _mm256_castsi256_ps(bits));
}

__attribute__((target("avx2,fma"))) inline __m256 tanh256(__m256 x) {
  // tanh(x) = sign(x)·(1 − t)/(1 + t) with t = exp(−2|x|) ∈ (0, 1].
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  const __m256 sign = _mm256_and_ps(x, sign_mask);
  const __m256 ax = _mm256_andnot_ps(sign_mask, x);
  const __m256 t = exp256(_mm256_mul_ps(ax, _mm256_set1_ps(-2.0f)));
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 y =
      _mm256_div_ps(_mm256_sub_ps(one, t), _mm256_add_ps(one, t));
  return _mm256_or_ps(y, sign);
}

__attribute__((target("avx2,fma"))) inline __m256 sigmoid256(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = exp256(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

/// Fused bias + gate activations for one row of [i f g o] pre-activations.
__attribute__((target("avx2,fma"))) void gate_activation_row_fma(
    float* g, const float* bias, std::size_t h) {
  for (std::size_t seg = 0; seg < 4; ++seg) {
    const std::size_t j1 = (seg + 1) * h;
    std::size_t j = seg * h;
    if (seg == 2) {  // candidate gate: tanh
      for (; j + 8 <= j1; j += 8) {
        const __m256 v = _mm256_add_ps(_mm256_loadu_ps(g + j),
                                       _mm256_loadu_ps(bias + j));
        _mm256_storeu_ps(g + j, tanh256(v));
      }
      for (; j < j1; ++j) g[j] = std::tanh(g[j] + bias[j]);
    } else {  // input / forget / output gates: sigmoid
      for (; j + 8 <= j1; j += 8) {
        const __m256 v = _mm256_add_ps(_mm256_loadu_ps(g + j),
                                       _mm256_loadu_ps(bias + j));
        _mm256_storeu_ps(g + j, sigmoid256(v));
      }
      for (; j < j1; ++j) g[j] = sigmoid(g[j] + bias[j]);
    }
  }
}

/// Fused cell/hidden update for one row: c = f·c_prev + i·g, h = o·tanh(c).
__attribute__((target("avx2,fma"))) void cell_forward_row_fma(
    const float* g, const float* cp, float* c, float* hh, std::size_t h) {
  std::size_t j = 0;
  for (; j + 8 <= h; j += 8) {
    const __m256 ig = _mm256_loadu_ps(g + j);
    const __m256 fg = _mm256_loadu_ps(g + h + j);
    const __m256 cg = _mm256_loadu_ps(g + 2 * h + j);
    const __m256 og = _mm256_loadu_ps(g + 3 * h + j);
    const __m256 cj =
        _mm256_fmadd_ps(fg, _mm256_loadu_ps(cp + j), _mm256_mul_ps(ig, cg));
    _mm256_storeu_ps(c + j, cj);
    _mm256_storeu_ps(hh + j, _mm256_mul_ps(og, tanh256(cj)));
  }
  for (; j < h; ++j) {
    const float cj = __builtin_fmaf(g[h + j], cp[j], g[j] * g[2 * h + j]);
    c[j] = cj;
    hh[j] = g[3 * h + j] * std::tanh(cj);
  }
}

/// Fused gate-gradient pass for one row of the BPTT recurrence; same math
/// as the scalar body in Lstm::backward.
__attribute__((target("avx2,fma"))) void gate_backward_row_fma(
    const float* g, const float* c, const float* cprev, const float* gh,
    const float* dhn, float* dcn, float* dg, std::size_t h) {
  const __m256 one = _mm256_set1_ps(1.0f);
  std::size_t j = 0;
  for (; j + 8 <= h; j += 8) {
    const __m256 ig = _mm256_loadu_ps(g + j);
    const __m256 fg = _mm256_loadu_ps(g + h + j);
    const __m256 cg = _mm256_loadu_ps(g + 2 * h + j);
    const __m256 og = _mm256_loadu_ps(g + 3 * h + j);
    const __m256 tc = tanh256(_mm256_loadu_ps(c + j));
    const __m256 dh =
        _mm256_add_ps(_mm256_loadu_ps(gh + j), _mm256_loadu_ps(dhn + j));
    const __m256 dc = _mm256_fmadd_ps(_mm256_mul_ps(dh, og),
                                      _mm256_fnmadd_ps(tc, tc, one),
                                      _mm256_loadu_ps(dcn + j));
    const __m256 cp = cprev ? _mm256_loadu_ps(cprev + j)
                            : _mm256_setzero_ps();
    const __m256 gi = _mm256_mul_ps(ig, _mm256_sub_ps(one, ig));
    const __m256 gf = _mm256_mul_ps(fg, _mm256_sub_ps(one, fg));
    const __m256 gg = _mm256_fnmadd_ps(cg, cg, one);
    const __m256 go = _mm256_mul_ps(og, _mm256_sub_ps(one, og));
    _mm256_storeu_ps(dg + j, _mm256_mul_ps(_mm256_mul_ps(dc, cg), gi));
    _mm256_storeu_ps(dg + h + j, _mm256_mul_ps(_mm256_mul_ps(dc, cp), gf));
    _mm256_storeu_ps(dg + 2 * h + j,
                     _mm256_mul_ps(_mm256_mul_ps(dc, ig), gg));
    _mm256_storeu_ps(dg + 3 * h + j,
                     _mm256_mul_ps(_mm256_mul_ps(dh, tc), go));
    _mm256_storeu_ps(dcn + j, _mm256_mul_ps(dc, fg));
  }
  for (; j < h; ++j) {
    const float ig = g[j];
    const float fg = g[h + j];
    const float cg = g[2 * h + j];
    const float og = g[3 * h + j];
    const float tc = std::tanh(c[j]);
    const float dh = gh[j] + dhn[j];
    const float dc = dh * og * (1.0f - tc * tc) + dcn[j];
    const float cpj = cprev ? cprev[j] : 0.0f;
    dg[j] = dc * cg * sigmoid_grad_from_output(ig);
    dg[h + j] = dc * cpj * sigmoid_grad_from_output(fg);
    dg[2 * h + j] = dc * ig * tanh_grad_from_output(cg);
    dg[3 * h + j] = dh * tc * sigmoid_grad_from_output(og);
    dcn[j] = dc * fg;
  }
}
#endif  // NFV_LSTM_SIMD

}  // namespace

Lstm::Lstm(std::string name, std::size_t input_size, std::size_t hidden_size,
           nfv::util::Rng& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      weight_(name + ".weight", 4 * hidden_size, input_size + hidden_size),
      bias_(name + ".bias", 1, 4 * hidden_size) {
  xavier_uniform(weight_.value, input_size + hidden_size, hidden_size, rng);
  // Forget-gate bias = 1 (gate slice [H, 2H)).
  for (std::size_t j = hidden_size_; j < 2 * hidden_size_; ++j) {
    bias_.value.at(0, j) = 1.0f;
  }
}

void Lstm::compute_gates(const Matrix& input, const Matrix& h_prev,
                         Matrix& concat_scratch, Matrix& gates,
                         const QuantizedMatrix* qweight) const {
  const std::size_t batch = input.rows();
  NFV_CHECK(input.cols() == input_size_,
            "Lstm input width " << input.cols() << " != " << input_size_);
  concat_scratch.resize(batch, input_size_ + hidden_size_);
  for (std::size_t r = 0; r < batch; ++r) {
    std::memcpy(concat_scratch.row(r), input.row(r),
                input_size_ * sizeof(float));
    std::memcpy(concat_scratch.row(r) + input_size_, h_prev.row(r),
                hidden_size_ * sizeof(float));
  }
  if (qweight != nullptr) {
    matmul_quant(concat_scratch, *qweight, gates);
  } else {
    matmul_transb(concat_scratch, weight_.value, gates);
  }
  const std::size_t h = hidden_size_;
  const float* bias = bias_.value.row(0);
  // Bias + activations fused into one row pass (same per-element order as
  // add_row_vector followed by the activation sweeps).
  const bool simd = simd_kernels_enabled();
  (void)simd;
  for_each_row(batch, [&](std::size_t r) {
    float* g = gates.row(r);
#ifdef NFV_LSTM_SIMD
    if (simd) {
      gate_activation_row_fma(g, bias, h);
      return;
    }
#endif
    for (std::size_t j = 0; j < 4 * h; ++j) g[j] += bias[j];
    for (std::size_t j = 0; j < h; ++j) g[j] = sigmoid(g[j]);                // i
    for (std::size_t j = h; j < 2 * h; ++j) g[j] = sigmoid(g[j]);            // f
    for (std::size_t j = 2 * h; j < 3 * h; ++j) g[j] = std::tanh(g[j]);      // g
    for (std::size_t j = 3 * h; j < 4 * h; ++j) g[j] = sigmoid(g[j]);        // o
  });
}

const std::vector<Matrix>& Lstm::forward(const std::vector<Matrix>& inputs) {
  NFV_CHECK(!inputs.empty(), "Lstm::forward on empty sequence");
  const std::size_t steps = inputs.size();
  const std::size_t batch = inputs.front().rows();
  // Keep the cache matrices alive across batches: every entry is fully
  // rewritten below, so only the vector *length* needs to match and the
  // matrices' heap capacity is reused from the previous forward pass.
  if (concat_cache_.size() != steps) {
    concat_cache_.assign(steps, Matrix());
    gates_cache_.assign(steps, Matrix());
    c_cache_.assign(steps, Matrix());
    h_cache_.assign(steps, Matrix());
  }

  // Point at the previous step's cache entries instead of copying them —
  // the zero initial state is the only matrix materialized here.
  Matrix zero_state(batch, hidden_size_);
  const Matrix* h_prev = &zero_state;
  const Matrix* c_prev = &zero_state;
  const std::size_t h = hidden_size_;
  for (std::size_t t = 0; t < steps; ++t) {
    NFV_CHECK(inputs[t].rows() == batch, "Lstm batch size varies over time");
    compute_gates(inputs[t], *h_prev, concat_cache_[t], gates_cache_[t]);
    Matrix& c_t = c_cache_[t];
    Matrix& h_t = h_cache_[t];
    c_t.resize(batch, h);
    h_t.resize(batch, h);
    const Matrix& gates = gates_cache_[t];
    const Matrix& cp_m = *c_prev;
    const bool simd = simd_kernels_enabled();
    (void)simd;
    for_each_row(batch, [&](std::size_t r) {
      const float* g = gates.row(r);
      const float* cp = cp_m.row(r);
      float* c = c_t.row(r);
      float* hh = h_t.row(r);
#ifdef NFV_LSTM_SIMD
      if (simd) {
        cell_forward_row_fma(g, cp, c, hh, h);
        return;
      }
#endif
      for (std::size_t j = 0; j < h; ++j) {
        const float ig = g[j];
        const float fg = g[h + j];
        const float cg = g[2 * h + j];
        const float og = g[3 * h + j];
        c[j] = fg * cp[j] + ig * cg;
        hh[j] = og * std::tanh(c[j]);
      }
    });
    h_prev = &h_t;
    c_prev = &c_t;
  }
  return h_cache_;
}

const std::vector<Matrix>& Lstm::backward(
    const std::vector<Matrix>& grad_hidden) {
  const std::size_t steps = h_cache_.size();
  NFV_CHECK(grad_hidden.size() == steps,
            "Lstm::backward expects one hidden-gradient per step");
  NFV_CHECK(steps > 0, "Lstm::backward before forward");
  const std::size_t batch = h_cache_.front().rows();
  const std::size_t h = hidden_size_;

  if (grad_inputs_.size() != steps) grad_inputs_.assign(steps, Matrix());
  if (dgates_cache_.size() != steps) dgates_cache_.assign(steps, Matrix());
  dh_next_.resize(batch, h);
  dc_next_.resize(batch, h);
  // The dgates × W product recurs every step with the same W; pack it once.
  pack_matmul_b(weight_.value, packed_weight_);

  // Phase 1 — sequential in t (the dh/dc recurrence), row-parallel within
  // each step: one fused pass computes all four pre-activation gate
  // gradients and the carried cell gradient, then the packed product
  // yields dconcat and the dx / dh split. Every step's dgates stays alive
  // in dgates_cache_ for the parameter-gradient phase below.
  for (std::size_t ti = steps; ti-- > 0;) {
    const Matrix& gates = gates_cache_[ti];
    const Matrix& c_t = c_cache_[ti];
    const Matrix* c_prev = ti > 0 ? &c_cache_[ti - 1] : nullptr;
    Matrix& dgates = dgates_cache_[ti];
    dgates.resize(batch, 4 * h);

    const bool simd = simd_kernels_enabled();
    (void)simd;
    for_each_row(batch, [&](std::size_t r) {
      const float* g = gates.row(r);
      const float* c = c_t.row(r);
      const float* gh = grad_hidden[ti].row(r);
      float* dhn = dh_next_.row(r);
      float* dcn = dc_next_.row(r);
      float* dg = dgates.row(r);
#ifdef NFV_LSTM_SIMD
      if (simd) {
        gate_backward_row_fma(g, c, c_prev ? c_prev->row(r) : nullptr, gh,
                              dhn, dcn, dg, h);
        return;
      }
#endif
      for (std::size_t j = 0; j < h; ++j) {
        const float ig = g[j];
        const float fg = g[h + j];
        const float cg = g[2 * h + j];
        const float og = g[3 * h + j];
        const float tc = std::tanh(c[j]);
        const float dh = gh[j] + dhn[j];
        const float dc = dh * og * (1.0f - tc * tc) + dcn[j];
        const float cprev = c_prev ? c_prev->row(r)[j] : 0.0f;
        // Gradients w.r.t. pre-activation gate inputs.
        dg[j] = dc * cg * sigmoid_grad_from_output(ig);              // i
        dg[h + j] = dc * cprev * sigmoid_grad_from_output(fg);       // f
        dg[2 * h + j] = dc * ig * tanh_grad_from_output(cg);         // g
        dg[3 * h + j] = dh * tc * sigmoid_grad_from_output(og);      // o
        dcn[j] = dc * fg;  // carried to step t-1
      }
    });

    matmul_packed(dgates, weight_.value, packed_weight_, dconcat_);

    Matrix& dx = grad_inputs_[ti];
    dx.resize(batch, input_size_);
    for (std::size_t r = 0; r < batch; ++r) {
      std::memcpy(dx.row(r), dconcat_.row(r), input_size_ * sizeof(float));
      std::memcpy(dh_next_.row(r), dconcat_.row(r) + input_size_,
                  h * sizeof(float));
    }
  }

  // Phase 2 — parameter gradients. Each timestep's dW/db partial is an
  // independent product computed from zero (parallel across steps), then
  // the partials are reduced into the parameter grads in fixed descending
  // t-order. The same two-phase structure runs at every thread count, so
  // gradients are bit-identical for any NFVPRED_THREADS.
  if (dw_partials_.size() != steps) {
    dw_partials_.assign(steps, Matrix());
    db_partials_.assign(steps, Matrix());
  }
  const auto step_partial = [&](std::size_t t) {
    Matrix& dw = dw_partials_[t];
    dw.resize(4 * h, input_size_ + h);
    matmul_transa_accumulate_serial(dgates_cache_[t], concat_cache_[t], dw);
    Matrix& db = db_partials_[t];
    db.resize(1, 4 * h);
    sum_rows_accumulate(dgates_cache_[t], db);
  };
  if (!nfv::util::ThreadPool::in_parallel_region() &&
      nfv::util::global_pool().size() > 1) {
    nfv::util::global_pool().parallel_for(0, steps, step_partial);
  } else {
    for (std::size_t t = 0; t < steps; ++t) step_partial(t);
  }
  for (std::size_t ti = steps; ti-- > 0;) {
    weight_.grad.add(dw_partials_[ti]);
    bias_.grad.add(db_partials_[ti]);
  }
  return grad_inputs_;
}

void Lstm::step(const Matrix& input, LstmState& state) const {
  Matrix concat;
  Matrix gates;
  step(input, state, concat, gates);
}

void Lstm::step(const Matrix& input, LstmState& state, Matrix& concat_scratch,
                Matrix& gates_scratch) const {
  const std::size_t batch = input.rows();
  NFV_CHECK(state.h.rows() == batch && state.c.rows() == batch,
            "LstmState batch mismatch");
  compute_gates(input, state.h, concat_scratch, gates_scratch);
  cell_update(gates_scratch, state);
}

void Lstm::step_quantized(const Matrix& input, LstmState& state,
                          const QuantizedMatrix& qweight,
                          Matrix& concat_scratch,
                          Matrix& gates_scratch) const {
  const std::size_t batch = input.rows();
  NFV_CHECK(state.h.rows() == batch && state.c.rows() == batch,
            "LstmState batch mismatch");
  NFV_CHECK(qweight.rows == 4 * hidden_size_ &&
                qweight.cols == input_size_ + hidden_size_,
            "Lstm::step_quantized weight shape mismatch");
  compute_gates(input, state.h, concat_scratch, gates_scratch, &qweight);
  cell_update(gates_scratch, state);
}

void Lstm::cell_update(const Matrix& gates, LstmState& state) const {
  const std::size_t h = hidden_size_;
  for_each_row(gates.rows(), [&](std::size_t r) {
    const float* g = gates.row(r);
    float* c = state.c.row(r);
    float* hh = state.h.row(r);
    for (std::size_t j = 0; j < h; ++j) {
      c[j] = g[h + j] * c[j] + g[j] * g[2 * h + j];
      hh[j] = g[3 * h + j] * std::tanh(c[j]);
    }
  });
}

LstmState Lstm::make_state(std::size_t batch) const {
  return LstmState{Matrix(batch, hidden_size_), Matrix(batch, hidden_size_)};
}

}  // namespace nfv::ml
