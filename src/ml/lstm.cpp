#include "ml/lstm.h"

#include <cmath>
#include <cstring>

#include "ml/activations.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace nfv::ml {

namespace {

/// Row-parallel threshold for the elementwise gate/cell loops. The
/// sigmoid/tanh evaluations dominate the fused scoring batches (each costs
/// tens of MACs), so the bar is much lower than the matmul one; rows are
/// independent, so the parallel split is bit-identical to the serial loop.
bool use_parallel_rows(std::size_t rows) {
  return rows >= 64 && !nfv::util::ThreadPool::in_parallel_region() &&
         nfv::util::global_pool().size() > 1;
}

template <typename Fn>
void for_each_row(std::size_t rows, const Fn& fn) {
  if (use_parallel_rows(rows)) {
    nfv::util::global_pool().parallel_for(0, rows, fn);
  } else {
    for (std::size_t r = 0; r < rows; ++r) fn(r);
  }
}

}  // namespace

Lstm::Lstm(std::string name, std::size_t input_size, std::size_t hidden_size,
           nfv::util::Rng& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      weight_(name + ".weight", 4 * hidden_size, input_size + hidden_size),
      bias_(name + ".bias", 1, 4 * hidden_size) {
  xavier_uniform(weight_.value, input_size + hidden_size, hidden_size, rng);
  // Forget-gate bias = 1 (gate slice [H, 2H)).
  for (std::size_t j = hidden_size_; j < 2 * hidden_size_; ++j) {
    bias_.value.at(0, j) = 1.0f;
  }
}

void Lstm::compute_gates(const Matrix& input, const Matrix& h_prev,
                         Matrix& concat_scratch, Matrix& gates) const {
  const std::size_t batch = input.rows();
  NFV_CHECK(input.cols() == input_size_,
            "Lstm input width " << input.cols() << " != " << input_size_);
  concat_scratch.resize(batch, input_size_ + hidden_size_);
  for (std::size_t r = 0; r < batch; ++r) {
    std::memcpy(concat_scratch.row(r), input.row(r),
                input_size_ * sizeof(float));
    std::memcpy(concat_scratch.row(r) + input_size_, h_prev.row(r),
                hidden_size_ * sizeof(float));
  }
  matmul_transb(concat_scratch, weight_.value, gates);
  const std::size_t h = hidden_size_;
  const float* bias = bias_.value.row(0);
  // Bias + activations fused into one row pass (same per-element order as
  // add_row_vector followed by the activation sweeps).
  for_each_row(batch, [&](std::size_t r) {
    float* g = gates.row(r);
    for (std::size_t j = 0; j < 4 * h; ++j) g[j] += bias[j];
    for (std::size_t j = 0; j < h; ++j) g[j] = sigmoid(g[j]);                // i
    for (std::size_t j = h; j < 2 * h; ++j) g[j] = sigmoid(g[j]);            // f
    for (std::size_t j = 2 * h; j < 3 * h; ++j) g[j] = std::tanh(g[j]);      // g
    for (std::size_t j = 3 * h; j < 4 * h; ++j) g[j] = sigmoid(g[j]);        // o
  });
}

const std::vector<Matrix>& Lstm::forward(const std::vector<Matrix>& inputs) {
  NFV_CHECK(!inputs.empty(), "Lstm::forward on empty sequence");
  const std::size_t steps = inputs.size();
  const std::size_t batch = inputs.front().rows();
  // Keep the cache matrices alive across batches: every entry is fully
  // rewritten below, so only the vector *length* needs to match and the
  // matrices' heap capacity is reused from the previous forward pass.
  if (concat_cache_.size() != steps) {
    concat_cache_.assign(steps, Matrix());
    gates_cache_.assign(steps, Matrix());
    c_cache_.assign(steps, Matrix());
    h_cache_.assign(steps, Matrix());
  }

  Matrix h_prev(batch, hidden_size_);
  Matrix c_prev(batch, hidden_size_);
  const std::size_t h = hidden_size_;
  for (std::size_t t = 0; t < steps; ++t) {
    NFV_CHECK(inputs[t].rows() == batch, "Lstm batch size varies over time");
    compute_gates(inputs[t], h_prev, concat_cache_[t], gates_cache_[t]);
    Matrix& c_t = c_cache_[t];
    Matrix& h_t = h_cache_[t];
    c_t.resize(batch, h);
    h_t.resize(batch, h);
    for (std::size_t r = 0; r < batch; ++r) {
      const float* g = gates_cache_[t].row(r);
      const float* cp = c_prev.row(r);
      float* c = c_t.row(r);
      float* hh = h_t.row(r);
      for (std::size_t j = 0; j < h; ++j) {
        const float ig = g[j];
        const float fg = g[h + j];
        const float cg = g[2 * h + j];
        const float og = g[3 * h + j];
        c[j] = fg * cp[j] + ig * cg;
        hh[j] = og * std::tanh(c[j]);
      }
    }
    h_prev = h_t;
    c_prev = c_t;
  }
  return h_cache_;
}

const std::vector<Matrix>& Lstm::backward(
    const std::vector<Matrix>& grad_hidden) {
  const std::size_t steps = h_cache_.size();
  NFV_CHECK(grad_hidden.size() == steps,
            "Lstm::backward expects one hidden-gradient per step");
  NFV_CHECK(steps > 0, "Lstm::backward before forward");
  const std::size_t batch = h_cache_.front().rows();
  const std::size_t h = hidden_size_;

  if (grad_inputs_.size() != steps) grad_inputs_.assign(steps, Matrix());
  Matrix dh_next(batch, h);
  Matrix dc_next(batch, h);
  Matrix dgates(batch, 4 * h);
  Matrix dconcat;

  for (std::size_t ti = steps; ti-- > 0;) {
    const Matrix& gates = gates_cache_[ti];
    const Matrix& c_t = c_cache_[ti];
    const Matrix* c_prev = ti > 0 ? &c_cache_[ti - 1] : nullptr;

    for (std::size_t r = 0; r < batch; ++r) {
      const float* g = gates.row(r);
      const float* c = c_t.row(r);
      const float* gh = grad_hidden[ti].row(r);
      float* dhn = dh_next.row(r);
      float* dcn = dc_next.row(r);
      float* dg = dgates.row(r);
      for (std::size_t j = 0; j < h; ++j) {
        const float ig = g[j];
        const float fg = g[h + j];
        const float cg = g[2 * h + j];
        const float og = g[3 * h + j];
        const float tc = std::tanh(c[j]);
        const float dh = gh[j] + dhn[j];
        const float dc = dh * og * (1.0f - tc * tc) + dcn[j];
        const float cprev = c_prev ? c_prev->row(r)[j] : 0.0f;
        // Gradients w.r.t. pre-activation gate inputs.
        dg[j] = dc * cg * sigmoid_grad_from_output(ig);              // i
        dg[h + j] = dc * cprev * sigmoid_grad_from_output(fg);       // f
        dg[2 * h + j] = dc * ig * tanh_grad_from_output(cg);         // g
        dg[3 * h + j] = dh * tc * sigmoid_grad_from_output(og);      // o
        dcn[j] = dc * fg;  // carried to step t-1
      }
    }

    // Parameter gradients and gradient to the concatenated input.
    matmul_transa_accumulate(dgates, concat_cache_[ti], weight_.grad);
    sum_rows_accumulate(dgates, bias_.grad);
    matmul(dgates, weight_.value, dconcat);

    Matrix& dx = grad_inputs_[ti];
    dx.resize(batch, input_size_);
    for (std::size_t r = 0; r < batch; ++r) {
      std::memcpy(dx.row(r), dconcat.row(r), input_size_ * sizeof(float));
      std::memcpy(dh_next.row(r), dconcat.row(r) + input_size_,
                  h * sizeof(float));
    }
  }
  return grad_inputs_;
}

void Lstm::step(const Matrix& input, LstmState& state) const {
  Matrix concat;
  Matrix gates;
  step(input, state, concat, gates);
}

void Lstm::step(const Matrix& input, LstmState& state, Matrix& concat_scratch,
                Matrix& gates_scratch) const {
  const std::size_t batch = input.rows();
  NFV_CHECK(state.h.rows() == batch && state.c.rows() == batch,
            "LstmState batch mismatch");
  compute_gates(input, state.h, concat_scratch, gates_scratch);
  const Matrix& gates = gates_scratch;
  const std::size_t h = hidden_size_;
  for_each_row(batch, [&](std::size_t r) {
    const float* g = gates.row(r);
    float* c = state.c.row(r);
    float* hh = state.h.row(r);
    for (std::size_t j = 0; j < h; ++j) {
      c[j] = g[h + j] * c[j] + g[j] * g[2 * h + j];
      hh[j] = g[3 * h + j] * std::tanh(c[j]);
    }
  });
}

LstmState Lstm::make_state(std::size_t batch) const {
  return LstmState{Matrix(batch, hidden_size_), Matrix(batch, hidden_size_)};
}

}  // namespace nfv::ml
