// LSTM layer with full backpropagation-through-time.
//
// Implements the standard LSTM of Hochreiter & Schmidhuber as used by the
// paper's anomaly detector (two stacked LSTM layers followed by a dense
// softmax over the syslog template vocabulary). Weights for the four gates
// are packed into one matrix so each timestep is a single GEMM.
#pragma once

#include <string>
#include <vector>

#include "ml/matrix.h"
#include "ml/param.h"
#include "util/rng.h"

namespace nfv::ml {

/// Inference-time recurrent state for streaming scoring.
struct LstmState {
  Matrix h;  // (batch × hidden)
  Matrix c;  // (batch × hidden)
};

/// Single LSTM layer. Gate packing order along the 4H axis: input, forget,
/// cell (candidate), output. The forget-gate bias is initialized to +1, the
/// usual trick to preserve memory early in training.
class Lstm {
 public:
  Lstm(std::string name, std::size_t input_size, std::size_t hidden_size,
       nfv::util::Rng& rng);

  /// Full-sequence forward. `inputs[t]` is (batch × input_size); returns one
  /// hidden matrix per step. Initial state is zero. Caches everything needed
  /// for backward().
  const std::vector<Matrix>& forward(const std::vector<Matrix>& inputs);

  /// Full BPTT. `grad_hidden[t]` is dL/dh_t from the upper layer (may be
  /// all-zero for steps without loss). Accumulates weight gradients and
  /// returns dL/dx_t per step.
  const std::vector<Matrix>& backward(const std::vector<Matrix>& grad_hidden);

  /// Stateful single-step inference (no caching, no gradients).
  void step(const Matrix& input, LstmState& state) const;

  /// As step(), but with caller-owned scratch matrices so tight scoring
  /// loops allocate nothing per step (the scratch is resized in place and
  /// its capacity is reused across calls).
  void step(const Matrix& input, LstmState& state, Matrix& concat_scratch,
            Matrix& gates_scratch) const;

  /// As the scratch step(), but the gate pre-activation GEMM runs on the
  /// packed int8 image of this layer's weight matrix (`qweight` must come
  /// from quantize_pack_b(weight().value)). Bias, gate activations and the
  /// cell update are the untouched fp32 code paths — only the matmul is
  /// quantized, so the result inherits matmul_quant's cross-tier and
  /// cross-batch bit-identity.
  void step_quantized(const Matrix& input, LstmState& state,
                      const QuantizedMatrix& qweight, Matrix& concat_scratch,
                      Matrix& gates_scratch) const;

  /// Zero-initialized state for a given batch size.
  LstmState make_state(std::size_t batch) const;

  std::vector<Param*> params() { return {&weight_, &bias_}; }
  std::size_t input_size() const { return input_size_; }
  std::size_t hidden_size() const { return hidden_size_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  void compute_gates(const Matrix& input, const Matrix& h_prev,
                     Matrix& concat_scratch, Matrix& gates,
                     const QuantizedMatrix* qweight = nullptr) const;
  void cell_update(const Matrix& gates, LstmState& state) const;

  std::size_t input_size_;
  std::size_t hidden_size_;
  Param weight_;  // (4H × (I+H))
  Param bias_;    // (1 × 4H)

  // Caches from the last forward pass (one entry per timestep).
  std::vector<Matrix> concat_cache_;  // [x_t, h_{t-1}]  (B × (I+H))
  std::vector<Matrix> gates_cache_;   // post-activation (B × 4H)
  std::vector<Matrix> c_cache_;       // cell states     (B × H)
  std::vector<Matrix> h_cache_;       // hidden states   (B × H)
  std::vector<Matrix> grad_inputs_;

  // Backward-pass scratch, reused across calls so BPTT allocates nothing
  // in steady state. dgates_cache_ keeps every step's pre-activation gate
  // gradients alive for the deferred (parallel) weight-gradient phase;
  // dw_partials_/db_partials_ hold the per-timestep parameter-gradient
  // partials that are reduced into weight_/bias_ grads in fixed t-order.
  std::vector<Matrix> dgates_cache_;  // (B × 4H) per step
  std::vector<Matrix> dw_partials_;   // (4H × (I+H)) per step
  std::vector<Matrix> db_partials_;   // (1 × 4H) per step
  Matrix dh_next_;
  Matrix dc_next_;
  Matrix dconcat_;
  std::vector<float> packed_weight_;  // weight_ packed for dgates × W
};

}  // namespace nfv::ml
