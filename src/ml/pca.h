// Principal component analysis via orthogonal power iteration.
//
// Used as an extension baseline: Xu et al. (SOSP '09) — cited by the paper —
// detect console-log anomalies by projecting feature vectors onto the top
// principal components and scoring the residual subspace energy.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/matrix.h"
#include "util/rng.h"

namespace nfv::ml {

struct PcaConfig {
  std::size_t components = 4;
  std::size_t max_iterations = 200;
  double tolerance = 1e-7;
};

/// PCA model: mean + top-k principal directions of the training data.
class Pca {
 public:
  explicit Pca(const PcaConfig& config = {});

  /// Fit on the rows of `data` (n × d). Requires n ≥ 2.
  void fit(const Matrix& data, nfv::util::Rng& rng);

  bool trained() const { return !components_.empty(); }
  std::size_t component_count() const { return components_.rows(); }
  const Matrix& components() const { return components_; }
  const std::vector<double>& explained_variance() const { return variance_; }

  /// Project a row vector onto the principal subspace (length = components).
  std::vector<double> project(std::span<const float> x) const;

  /// Squared residual after removing the principal-subspace projection —
  /// the anomaly score of Xu et al.
  double residual_energy(std::span<const float> x) const;

 private:
  PcaConfig config_;
  std::vector<double> mean_;
  Matrix components_;            // (k × d), orthonormal rows
  std::vector<double> variance_; // eigenvalues (descending)
};

}  // namespace nfv::ml
