#include "ml/sequence_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "ml/loss.h"
#include "ml/serialize.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace nfv::ml {

float normalize_dt(float dt_seconds) {
  // log1p compresses the heavy-tailed inter-arrival distribution; the /10
  // keeps the feature within roughly [0, 1.5] for Δt up to a few hours.
  return std::log1p(std::max(dt_seconds, 0.0f)) * 0.1f;
}

SequenceModel::SequenceModel(const SequenceModelConfig& config,
                             nfv::util::Rng& rng)
    : config_(config),
      embedding_("embed", config.vocab, config.embed_dim, rng),
      output_("out", config.hidden, config.vocab, Activation::kLinear, rng) {
  NFV_CHECK(config.vocab > 0, "SequenceModel requires a non-empty vocabulary");
  NFV_CHECK(config.layers >= 1, "SequenceModel requires at least one LSTM layer");
  NFV_CHECK(config.window >= 1, "SequenceModel requires window >= 1");
  const std::size_t in0 = config.embed_dim + (config.use_dt_feature ? 1 : 0);
  lstm_layers_.reserve(config.layers);
  for (std::size_t l = 0; l < config.layers; ++l) {
    lstm_layers_.emplace_back("lstm" + std::to_string(l),
                              l == 0 ? in0 : config.hidden, config.hidden,
                              rng);
  }
}

std::vector<Param*> SequenceModel::params() {
  std::vector<Param*> out;
  for (Param* p : embedding_.params()) out.push_back(p);
  for (Lstm& lstm : lstm_layers_) {
    for (Param* p : lstm.params()) out.push_back(p);
  }
  for (Param* p : output_.params()) out.push_back(p);
  return out;
}

std::vector<const Param*> SequenceModel::params() const {
  std::vector<Param*> mutable_params =
      const_cast<SequenceModel*>(this)->params();
  return {mutable_params.begin(), mutable_params.end()};
}

void SequenceModel::build_inputs(
    const SeqExample* const* batch, std::size_t batch_size,
    std::vector<Matrix>& inputs,
    std::vector<std::vector<std::int32_t>>* ids_steps) const {
  const std::size_t k = config_.window;
  const std::size_t width =
      config_.embed_dim + (config_.use_dt_feature ? 1 : 0);
  // Reuse, don't reallocate: every matrix entry is fully rewritten below.
  if (inputs.size() != k) inputs.assign(k, Matrix());
  if (ids_steps && ids_steps->size() != k) ids_steps->assign(k, {});
  for (std::size_t t = 0; t < k; ++t) {
    Matrix& input = inputs[t];
    input.resize(batch_size, width);
    if (ids_steps) (*ids_steps)[t].resize(batch_size);
    for (std::size_t r = 0; r < batch_size; ++r) {
      const SeqExample& ex = *batch[r];
      NFV_CHECK(ex.ids.size() == k && ex.dts.size() == k,
                "SeqExample window length " << ex.ids.size()
                                            << " != model window " << k);
      const auto id = ex.ids[t];
      NFV_CHECK(id >= 0 &&
                    static_cast<std::size_t>(id) < embedding_.vocab(),
                "template id " << id << " outside vocab "
                               << embedding_.vocab());
      const float* row =
          embedding_.table().value.row(static_cast<std::size_t>(id));
      std::memcpy(input.row(r), row, config_.embed_dim * sizeof(float));
      if (config_.use_dt_feature) {
        input.at(r, config_.embed_dim) = normalize_dt(ex.dts[t]);
      }
      if (ids_steps) (*ids_steps)[t][r] = id;
    }
  }
}

double SequenceModel::forward_backward(
    const std::vector<const SeqExample*>& batch) {
  const std::size_t k = config_.window;
  const std::size_t batch_size = batch.size();

  // All scratch lives on the model and is reused batch after batch.
  std::vector<Matrix>& inputs = train_scratch_.inputs;
  std::vector<std::vector<std::int32_t>>& ids_steps = train_scratch_.ids;
  build_inputs(batch.data(), batch_size, inputs, &ids_steps);

  // Forward through the LSTM stack.
  const std::vector<Matrix>* hidden = &lstm_layers_[0].forward(inputs);
  for (std::size_t l = 1; l < lstm_layers_.size(); ++l) {
    hidden = &lstm_layers_[l].forward(*hidden);
  }
  const Matrix& logits = output_.forward(hidden->back());

  train_scratch_.targets.resize(batch_size);
  for (std::size_t r = 0; r < batch_size; ++r) {
    train_scratch_.targets[r] = batch[r]->target;
  }
  const double loss = softmax_cross_entropy(logits, train_scratch_.targets,
                                            train_scratch_.grad_logits);

  // Backward: dense head, then the LSTM stack top-down.
  const Matrix& dh_last = output_.backward(train_scratch_.grad_logits);
  std::vector<Matrix>& grad_hidden = train_scratch_.grad_hidden;
  if (grad_hidden.size() != k) grad_hidden.assign(k, Matrix());
  for (std::size_t t = 0; t < k; ++t) {
    grad_hidden[t].resize(batch_size, config_.hidden);
  }
  grad_hidden[k - 1] = dh_last;
  const std::vector<Matrix>* grad_below = &grad_hidden;
  for (std::size_t l = lstm_layers_.size(); l-- > 0;) {
    grad_below = &lstm_layers_[l].backward(*grad_below);
  }

  // Scatter input gradients back into the embedding table, sharded by
  // destination: each task owns a block of vocab rows and scans every
  // (t, r) pair for ids landing in its block. A table row therefore
  // accumulates its contributions in exactly the serial (t, r) order no
  // matter how many threads run, and no two tasks touch the same row.
  Matrix& table_grad = embedding_.table().grad;
  const std::size_t embed_dim = config_.embed_dim;
  const auto scatter_rows = [&](std::size_t v0, std::size_t v1) {
    for (std::size_t t = 0; t < k; ++t) {
      const Matrix& dx = (*grad_below)[t];
      const std::int32_t* ids = ids_steps[t].data();
      for (std::size_t r = 0; r < batch_size; ++r) {
        const auto id = static_cast<std::size_t>(ids[r]);
        if (id < v0 || id >= v1) continue;
        float* grad_row = table_grad.row(id);
        const float* g = dx.row(r);
        for (std::size_t c = 0; c < embed_dim; ++c) grad_row[c] += g[c];
      }
    }
  };
  const std::size_t vocab = embedding_.vocab();
  nfv::util::ThreadPool& pool = nfv::util::global_pool();
  // Each task rescans all (t, r) pairs, so the fan-out only pays off once
  // the scatter moves a few hundred KMACs of row additions.
  if (!nfv::util::ThreadPool::in_parallel_region() && pool.size() > 1 &&
      k * batch_size * embed_dim >= (1u << 18)) {
    const std::size_t blocks = std::min(vocab, pool.size() * 2);
    const std::size_t block = (vocab + blocks - 1) / blocks;
    pool.parallel_for(0, blocks, [&](std::size_t bi) {
      scatter_rows(bi * block, std::min((bi + 1) * block, vocab));
    });
  } else {
    scatter_rows(0, vocab);
  }
  return loss;
}

double SequenceModel::train_batch(const std::vector<const SeqExample*>& batch,
                                  Optimizer& optimizer, double max_grad_norm) {
  NFV_CHECK(!batch.empty(), "train_batch on empty batch");
  const double loss = forward_backward(batch);
  clip_gradients(params(), max_grad_norm);
  optimizer.step();
  // The fp32 weights just moved; a stale int8 image would silently score
  // the old model.
  quantized_.reset();
  return loss;
}

void SequenceModel::predict(const std::vector<const SeqExample*>& batch,
                            Matrix& probs) const {
  NFV_CHECK(!batch.empty(), "predict on empty batch");
  std::vector<Matrix> inputs;
  build_inputs(batch.data(), batch.size(), inputs, nullptr);

  // Stateful stepping avoids touching the training caches, keeping
  // prediction const and cheap.
  std::vector<LstmState> states;
  states.reserve(lstm_layers_.size());
  for (const Lstm& lstm : lstm_layers_) {
    states.push_back(lstm.make_state(batch.size()));
  }
  Matrix concat;
  Matrix gates;
  for (std::size_t t = 0; t < config_.window; ++t) {
    const Matrix* x = &inputs[t];
    for (std::size_t l = 0; l < lstm_layers_.size(); ++l) {
      if (quantized_) {
        lstm_layers_[l].step_quantized(*x, states[l], quantized_->lstm[l],
                                       concat, gates);
      } else {
        lstm_layers_[l].step(*x, states[l], concat, gates);
      }
      x = &states[l].h;
    }
  }
  Matrix logits;
  if (quantized_) {
    matmul_quant(states.back().h, quantized_->output, logits);
  } else {
    matmul_transb(states.back().h, output_.weight().value, logits);
  }
  add_row_vector(logits, output_.bias().value);
  softmax(logits, probs);
}

void SequenceModel::forward_probs(const SeqExample* const* batch,
                                  std::size_t batch_size,
                                  InferenceScratch& scratch) const {
  build_inputs(batch, batch_size, scratch.inputs, nullptr);

  // (Re)shape the recurrent state in place. Matrix::resize zero-fills,
  // which is exactly the initial state Lstm::make_state would provide,
  // while reusing the buffers' heap capacity across sub-batches.
  if (scratch.states.size() != lstm_layers_.size()) {
    scratch.states.clear();
    scratch.states.reserve(lstm_layers_.size());
    for (const Lstm& lstm : lstm_layers_) {
      scratch.states.push_back(lstm.make_state(batch_size));
    }
  } else {
    for (std::size_t l = 0; l < lstm_layers_.size(); ++l) {
      scratch.states[l].h.resize(batch_size, config_.hidden);
      scratch.states[l].c.resize(batch_size, config_.hidden);
    }
  }

  for (std::size_t t = 0; t < config_.window; ++t) {
    const Matrix* x = &scratch.inputs[t];
    for (std::size_t l = 0; l < lstm_layers_.size(); ++l) {
      if (quantized_) {
        lstm_layers_[l].step_quantized(*x, scratch.states[l],
                                       quantized_->lstm[l], scratch.concat,
                                       scratch.gates);
      } else {
        lstm_layers_[l].step(*x, scratch.states[l], scratch.concat,
                             scratch.gates);
      }
      x = &scratch.states[l].h;
    }
  }
  if (quantized_) {
    matmul_quant(scratch.states.back().h, quantized_->output,
                 scratch.logits);
  } else {
    matmul_transb(scratch.states.back().h, output_.weight().value,
                  scratch.logits);
  }
  add_row_vector(scratch.logits, output_.bias().value);
  softmax(scratch.logits, scratch.probs);
}

void SequenceModel::score_batched(std::span<const SeqExample* const> batch,
                                  std::size_t batch_size,
                                  InferenceScratch& scratch,
                                  std::span<double> out) const {
  NFV_CHECK(batch_size >= 1, "score_batched requires batch_size >= 1");
  NFV_CHECK(out.size() == batch.size(),
            "score_batched output size " << out.size() << " != batch size "
                                         << batch.size());
  for (std::size_t start = 0; start < batch.size(); start += batch_size) {
    const std::size_t n = std::min(batch_size, batch.size() - start);
    forward_probs(batch.data() + start, n, scratch);
    for (std::size_t r = 0; r < n; ++r) {
      out[start + r] = log_prob(scratch.probs, r, batch[start + r]->target);
    }
  }
}

void SequenceModel::score_ranks_batched(
    std::span<const SeqExample* const> batch, std::size_t batch_size,
    InferenceScratch& scratch, std::span<std::size_t> out) const {
  NFV_CHECK(batch_size >= 1, "score_ranks_batched requires batch_size >= 1");
  NFV_CHECK(out.size() == batch.size(),
            "score_ranks_batched output size "
                << out.size() << " != batch size " << batch.size());
  for (std::size_t start = 0; start < batch.size(); start += batch_size) {
    const std::size_t n = std::min(batch_size, batch.size() - start);
    forward_probs(batch.data() + start, n, scratch);
    for (std::size_t r = 0; r < n; ++r) {
      const auto target =
          static_cast<std::size_t>(batch[start + r]->target);
      NFV_CHECK(target < scratch.probs.cols(), "target outside vocabulary");
      const float p_target = scratch.probs.at(r, target);
      std::size_t rank = 0;
      for (std::size_t c = 0; c < scratch.probs.cols(); ++c) {
        if (scratch.probs.at(r, c) > p_target) ++rank;
      }
      out[start + r] = rank;
    }
  }
}

std::vector<double> SequenceModel::score_log_likelihood(
    const std::vector<const SeqExample*>& batch) const {
  Matrix probs;
  predict(batch, probs);
  std::vector<double> out(batch.size());
  for (std::size_t r = 0; r < batch.size(); ++r) {
    out[r] = log_prob(probs, r, batch[r]->target);
  }
  return out;
}

std::vector<std::size_t> SequenceModel::score_target_ranks(
    const std::vector<const SeqExample*>& batch) const {
  Matrix probs;
  predict(batch, probs);
  std::vector<std::size_t> out(batch.size());
  for (std::size_t r = 0; r < batch.size(); ++r) {
    const auto target = static_cast<std::size_t>(batch[r]->target);
    NFV_CHECK(target < probs.cols(), "target outside vocabulary");
    const float p_target = probs.at(r, target);
    std::size_t rank = 0;
    for (std::size_t c = 0; c < probs.cols(); ++c) {
      if (probs.at(r, c) > p_target) ++rank;
    }
    out[r] = rank;
  }
  return out;
}

void SequenceModel::freeze_lower_layers(std::size_t n) {
  NFV_CHECK(n <= lstm_layers_.size(),
            "cannot freeze " << n << " of " << lstm_layers_.size()
                             << " LSTM layers");
  const bool freeze_embed = n > 0;
  for (Param* p : embedding_.params()) p->frozen = freeze_embed;
  for (std::size_t l = 0; l < lstm_layers_.size(); ++l) {
    const bool freeze = l < n;
    for (Param* p : lstm_layers_[l].params()) p->frozen = freeze;
  }
  for (Param* p : output_.params()) p->frozen = false;
}

void SequenceModel::grow_vocab(std::size_t new_vocab, nfv::util::Rng& rng) {
  NFV_CHECK(new_vocab >= config_.vocab, "grow_vocab cannot shrink");
  if (new_vocab == config_.vocab) return;
  embedding_.grow_vocab(new_vocab, rng);
  // Grow the output head: new class rows in W and new bias columns.
  Param& w = output_.weight();
  Matrix grown_w(new_vocab, config_.hidden);
  xavier_uniform(grown_w, config_.hidden, new_vocab, rng);
  for (std::size_t r = 0; r < config_.vocab; ++r) {
    std::memcpy(grown_w.row(r), w.value.row(r),
                config_.hidden * sizeof(float));
  }
  w.value = std::move(grown_w);
  w.grad.resize(new_vocab, config_.hidden);
  Param& b = output_.bias();
  Matrix grown_b(1, new_vocab);
  std::memcpy(grown_b.row(0), b.value.row(0),
              config_.vocab * sizeof(float));
  b.value = std::move(grown_b);
  b.grad.resize(1, new_vocab);
  config_.vocab = new_vocab;
  quantized_.reset();
}

std::size_t SequenceModel::QuantizedWeights::weight_bytes() const {
  std::size_t total = output.weight_bytes();
  for (const QuantizedMatrix& m : lstm) total += m.weight_bytes();
  return total;
}

void SequenceModel::quantize() {
  QuantizedWeights qw;
  qw.lstm.resize(lstm_layers_.size());
  for (std::size_t l = 0; l < lstm_layers_.size(); ++l) {
    quantize_pack_b(lstm_layers_[l].weight().value, qw.lstm[l]);
  }
  quantize_pack_b(output_.weight().value, qw.output);
  quantized_ = std::move(qw);
}

std::size_t SequenceModel::fp32_weight_bytes() const {
  auto* self = const_cast<SequenceModel*>(this);
  std::size_t total = 0;
  for (Param* p : self->params()) total += p->value.size() * sizeof(float);
  return total;
}

std::size_t SequenceModel::quantized_weight_bytes() const {
  return quantized_ ? quantized_->weight_bytes() : 0;
}

void SequenceModel::save(std::ostream& os) const {
  write_u64(os, kSequenceModelMagic);
  write_u64(os, config_.vocab);
  write_u64(os, config_.embed_dim);
  write_u64(os, config_.hidden);
  write_u64(os, config_.layers);
  write_u64(os, config_.window);
  write_u64(os, config_.use_dt_feature ? 1 : 0);
  auto* self = const_cast<SequenceModel*>(this);
  for (Param* p : self->params()) write_matrix(os, p->value);
  // Trailing quantized sidecar: the calibration (scales, packed panels,
  // column sums) is persisted byte for byte so a loaded quantized model
  // scores identically to the one that was saved.
  write_u64(os, quantized_ ? 1 : 0);
  if (quantized_) {
    for (const QuantizedMatrix& m : quantized_->lstm) {
      write_quant_matrix(os, m);
    }
    write_quant_matrix(os, quantized_->output);
  }
}

SequenceModel SequenceModel::load(std::istream& is) {
  NFV_CHECK(read_u64(is) == kSequenceModelMagic,
            "not a SequenceModel stream");
  SequenceModelConfig config;
  config.vocab = read_u64(is);
  config.embed_dim = read_u64(is);
  config.hidden = read_u64(is);
  config.layers = read_u64(is);
  config.window = read_u64(is);
  config.use_dt_feature = read_u64(is) != 0;
  nfv::util::Rng rng(0);  // weights are overwritten below
  SequenceModel model(config, rng);
  for (Param* p : model.params()) {
    Matrix m = read_matrix(is);
    NFV_CHECK(m.rows() == p->value.rows() && m.cols() == p->value.cols(),
              "saved tensor shape mismatch for " << p->name);
    p->value = std::move(m);
  }
  if (read_u64(is) != 0) {
    QuantizedWeights qw;
    qw.lstm.resize(config.layers);
    for (std::size_t l = 0; l < config.layers; ++l) {
      qw.lstm[l] = read_quant_matrix(is);
      NFV_CHECK(qw.lstm[l].rows == 4 * config.hidden,
                "saved quantized LSTM layer shape mismatch");
    }
    qw.output = read_quant_matrix(is);
    NFV_CHECK(qw.output.rows == config.vocab &&
                  qw.output.cols == config.hidden,
              "saved quantized output head shape mismatch");
    model.quantized_ = std::move(qw);
  }
  return model;
}

}  // namespace nfv::ml
