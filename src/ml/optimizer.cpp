#include "ml/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace nfv::ml {

Sgd::Sgd(float lr, float momentum) : lr_(lr), momentum_(momentum) {}

void Sgd::bind(std::vector<Param*> params) {
  params_ = std::move(params);
  velocity_.clear();
  velocity_.reserve(params_.size());
  for (const Param* p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::step() {
  NFV_CHECK(!params_.empty(), "Sgd::step before bind");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    if (p.frozen) {
      p.zero_grad();
      continue;
    }
    if (momentum_ > 0.0f) {
      Matrix& vel = velocity_[i];
      vel.scale(momentum_);
      vel.add_scaled(p.grad, 1.0f);
      p.value.add_scaled(vel, -lr_);
    } else {
      p.value.add_scaled(p.grad, -lr_);
    }
    p.zero_grad();
  }
}

Adam::Adam(float lr, float beta1, float beta2, float epsilon)
    : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

void Adam::bind(std::vector<Param*> params) {
  params_ = std::move(params);
  m_.clear();
  v_.clear();
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  t_ = 0;
  for (const Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  NFV_CHECK(!params_.empty(), "Adam::step before bind");
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    if (p.frozen) {
      p.zero_grad();
      continue;
    }
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    float* mv = m.data();
    float* vv = v.data();
    float* g = p.grad.data();
    float* w = p.value.data();
    const std::size_t n = p.value.size();
    for (std::size_t j = 0; j < n; ++j) {
      mv[j] = beta1_ * mv[j] + (1.0f - beta1_) * g[j];
      vv[j] = beta2_ * vv[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = mv[j] / bias1;
      const float vhat = vv[j] / bias2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
    }
    p.zero_grad();
  }
}

}  // namespace nfv::ml
