#include "ml/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"
#include "util/thread_pool.h"

namespace nfv::ml {

Sgd::Sgd(float lr, float momentum) : lr_(lr), momentum_(momentum) {}

void Sgd::bind(std::vector<Param*> params) {
  params_ = std::move(params);
  velocity_.clear();
  velocity_.reserve(params_.size());
  for (const Param* p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::step() {
  NFV_CHECK(!params_.empty(), "Sgd::step before bind");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    if (p.frozen) {
      p.zero_grad();
      continue;
    }
    if (momentum_ > 0.0f) {
      Matrix& vel = velocity_[i];
      vel.scale(momentum_);
      vel.add_scaled(p.grad, 1.0f);
      p.value.add_scaled(vel, -lr_);
    } else {
      p.value.add_scaled(p.grad, -lr_);
    }
    p.zero_grad();
  }
}

Adam::Adam(float lr, float beta1, float beta2, float epsilon)
    : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

void Adam::bind(std::vector<Param*> params) {
  params_ = std::move(params);
  m_.clear();
  v_.clear();
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  t_ = 0;
  for (const Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::rebind(std::vector<Param*> params) {
  if (params_.empty()) {
    bind(std::move(params));
    return;
  }
  NFV_CHECK(params.size() == m_.size(),
            "Adam::rebind parameter count changed: " << params.size()
                                                     << " vs " << m_.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Matrix& value = params[i]->value;
    if (m_[i].rows() == value.rows() && m_[i].cols() == value.cols()) {
      continue;
    }
    // Shape changed (grow_vocab): keep the moments of surviving weights,
    // start the new rows/columns from zero like a fresh bind would.
    Matrix m_new(value.rows(), value.cols());
    Matrix v_new(value.rows(), value.cols());
    const std::size_t rn = std::min(m_[i].rows(), m_new.rows());
    const std::size_t cn = std::min(m_[i].cols(), m_new.cols());
    for (std::size_t r = 0; r < rn; ++r) {
      std::memcpy(m_new.row(r), m_[i].row(r), cn * sizeof(float));
      std::memcpy(v_new.row(r), v_[i].row(r), cn * sizeof(float));
    }
    m_[i] = std::move(m_new);
    v_[i] = std::move(v_new);
  }
  params_ = std::move(params);
}

void Adam::step() {
  NFV_CHECK(!params_.empty(), "Adam::step before bind");
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    if (p.frozen) {
      p.zero_grad();
      continue;
    }
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    float* mv = m.data();
    float* vv = v.data();
    float* g = p.grad.data();
    float* w = p.value.data();
    const std::size_t n = p.value.size();
    const auto update = [&](std::size_t j0, std::size_t j1) {
      for (std::size_t j = j0; j < j1; ++j) {
        mv[j] = beta1_ * mv[j] + (1.0f - beta1_) * g[j];
        vv[j] = beta2_ * vv[j] + (1.0f - beta2_) * g[j] * g[j];
        const float mhat = mv[j] / bias1;
        const float vhat = vv[j] / bias2;
        w[j] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
      }
    };
    // Every element's update is independent, so chunking over the pool is
    // slot-addressed and bit-identical to the serial sweep. Only the big
    // tensors (embedding table, output head) clear the bar.
    constexpr std::size_t kChunk = 16384;
    if (n >= 2 * kChunk && !nfv::util::ThreadPool::in_parallel_region() &&
        nfv::util::global_pool().size() > 1) {
      const std::size_t chunks = (n + kChunk - 1) / kChunk;
      nfv::util::global_pool().parallel_for(0, chunks, [&](std::size_t ci) {
        update(ci * kChunk, std::min((ci + 1) * kChunk, n));
      });
    } else {
      update(0, n);
    }
    p.zero_grad();
  }
}

}  // namespace nfv::ml
