// Fully-connected layer with manual backprop.
#pragma once

#include <string>
#include <vector>

#include "ml/activations.h"
#include "ml/matrix.h"
#include "ml/param.h"
#include "util/rng.h"

namespace nfv::ml {

/// y = act(x · Wᵀ + b). W is (out_features × in_features); inputs/outputs
/// are (batch × features). The layer caches its last forward pass for
/// backward(); call forward/backward in matched pairs.
class Dense {
 public:
  Dense(std::string name, std::size_t in_features, std::size_t out_features,
        Activation act, nfv::util::Rng& rng);

  /// Forward pass; caches input and pre/post activation.
  const Matrix& forward(const Matrix& input);

  /// Backward pass: consumes dL/d-output, accumulates weight gradients, and
  /// returns dL/d-input.
  const Matrix& backward(const Matrix& grad_output);

  std::vector<Param*> params();
  std::size_t in_features() const { return weight_.value.cols(); }
  std::size_t out_features() const { return weight_.value.rows(); }
  Activation activation() const { return act_; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  const Param& weight() const { return weight_; }
  const Param& bias() const { return bias_; }

 private:
  Activation act_;
  Param weight_;
  Param bias_;
  Matrix input_cache_;
  Matrix pre_act_;
  Matrix output_;
  Matrix grad_input_;
  Matrix grad_pre_;
};

}  // namespace nfv::ml
