// Token-embedding layer mapping template ids to dense vectors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/matrix.h"
#include "ml/param.h"
#include "util/rng.h"

namespace nfv::ml {

/// Lookup table (vocab × dim). forward() gathers rows for a batch of token
/// ids; backward() scatters gradients back into the table.
class Embedding {
 public:
  Embedding(std::string name, std::size_t vocab, std::size_t dim,
            nfv::util::Rng& rng);

  /// ids: one token per batch row. Output is (batch × dim).
  const Matrix& forward(const std::vector<std::int32_t>& ids);

  /// Accumulate gradients for the ids of the last forward pass.
  void backward(const Matrix& grad_output);

  std::vector<Param*> params() { return {&table_}; }
  std::size_t vocab() const { return table_.value.rows(); }
  std::size_t dim() const { return table_.value.cols(); }
  Param& table() { return table_; }
  const Param& table() const { return table_; }

  /// Grow the vocabulary (new rows randomly initialized). Used when a system
  /// update introduces templates unseen by the teacher model.
  void grow_vocab(std::size_t new_vocab, nfv::util::Rng& rng);

 private:
  Param table_;
  std::vector<std::int32_t> ids_cache_;
  Matrix output_;
};

}  // namespace nfv::ml
