// The paper's syslog sequence model: embedding → 2 stacked LSTM layers →
// dense softmax over the template vocabulary (§5.1: "Our final LSTM model
// consists of 2 LSTM layers and 1 dense layer").
//
// Given the k previous syslog tuples (template id, inter-arrival time) the
// model predicts a probability distribution for the (k+1)-th template. A low
// log-likelihood of the actually observed template flags an anomaly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "ml/dense.h"
#include "ml/embedding.h"
#include "ml/lstm.h"
#include "ml/matrix.h"
#include "ml/optimizer.h"
#include "util/rng.h"

namespace nfv::ml {

/// One training/scoring window: k template ids with their inter-arrival
/// times (seconds), plus the id of the template that followed.
struct SeqExample {
  std::vector<std::int32_t> ids;  // length k
  std::vector<float> dts;         // length k, seconds since previous log
  std::int32_t target = 0;        // the (k+1)-th template id
};

/// Model hyper-parameters. The paper reports performance is "fairly
/// insensitive to parameter choices"; defaults here are sized for the
/// simulator's vocabulary.
struct SequenceModelConfig {
  std::size_t vocab = 0;        // template-dictionary size (required)
  std::size_t embed_dim = 16;   // template embedding width
  std::size_t hidden = 32;      // LSTM hidden width
  std::size_t layers = 2;       // stacked LSTM layers
  std::size_t window = 10;      // k = history length
  bool use_dt_feature = true;   // append log1p(Δt) to each embedded input
};

/// Two-layer LSTM next-template language model with manual backprop.
/// Copyable: copying yields an independent model with identical weights,
/// which is exactly the teacher→student step of the transfer-learning
/// adaptation (§4.3).
class SequenceModel {
 public:
  SequenceModel(const SequenceModelConfig& config, nfv::util::Rng& rng);

  const SequenceModelConfig& config() const { return config_; }

  /// All trainable parameters, bottom (embedding) to top (output dense).
  std::vector<Param*> params();
  /// Read-only view in the same order (e.g. to assert freeze state).
  std::vector<const Param*> params() const;

  /// One optimization step on a batch. Returns mean cross-entropy loss.
  /// Gradients are clipped to `max_grad_norm` before the optimizer step.
  double train_batch(const std::vector<const SeqExample*>& batch,
                     Optimizer& optimizer, double max_grad_norm = 5.0);

  /// Forward-only: probability rows over the vocabulary, one per example.
  void predict(const std::vector<const SeqExample*>& batch,
               Matrix& probs) const;

  /// Log-likelihood of each example's observed target under the model.
  /// Serial reference path for the batched scorer below.
  std::vector<double> score_log_likelihood(
      const std::vector<const SeqExample*>& batch) const;

  /// Rank (0-based) of each example's observed target in the predicted
  /// distribution: 0 = most likely next template. DeepLog-style detection
  /// flags an event whose rank is ≥ k. Serial reference path.
  std::vector<std::size_t> score_target_ranks(
      const std::vector<const SeqExample*>& batch) const;

  /// Reusable buffers for the batched scoring path. One scratch belongs to
  /// exactly one calling thread; reusing it across calls means the fused
  /// forward loop performs no heap allocation once shapes have stabilized.
  struct InferenceScratch {
    std::vector<Matrix> inputs;    // k × (B × input_width)
    std::vector<LstmState> states; // one per LSTM layer
    Matrix concat;                 // Lstm::step concat scratch
    Matrix gates;                  // Lstm::step gate scratch
    Matrix logits;
    Matrix probs;
  };

  /// Batched forward-only scoring: the log-likelihood of each example's
  /// observed target, processed in fused sub-batches of at most
  /// `batch_size` rows. Built on Lstm::step/make_state, so no BPTT caches
  /// are materialized. Every row's arithmetic is independent of its batch
  /// neighbours (per-row embedding gather, per-row GEMM dot products,
  /// per-row softmax), so results are bit-identical to
  /// score_log_likelihood for ANY batch size and any thread count.
  /// `out.size()` must equal `batch.size()`.
  void score_batched(std::span<const SeqExample* const> batch,
                     std::size_t batch_size, InferenceScratch& scratch,
                     std::span<double> out) const;

  /// As score_batched, but emits target ranks (DeepLog's top-k rule).
  void score_ranks_batched(std::span<const SeqExample* const> batch,
                           std::size_t batch_size, InferenceScratch& scratch,
                           std::span<std::size_t> out) const;

  /// Reusable buffers for the training path — the mirror of
  /// InferenceScratch: once shapes have stabilized,
  /// forward_backward/train_batch perform no steady-state heap allocation
  /// (the LSTM layers hold their own BPTT scratch the same way).
  struct TrainingScratch {
    std::vector<Matrix> inputs;                  // k × (B × input_width)
    std::vector<std::vector<std::int32_t>> ids;  // k × B gathered ids
    std::vector<std::int32_t> targets;           // B
    std::vector<Matrix> grad_hidden;             // k × (B × hidden)
    Matrix grad_logits;
  };

  /// Freeze the embedding and the bottom `n` LSTM layers; the remaining
  /// layers (and the output head) stay trainable. Passing 0 unfreezes all.
  void freeze_lower_layers(std::size_t n);

  /// Extend the template vocabulary (new embedding rows + output columns
  /// randomly initialized); existing weights are preserved. Needed when a
  /// software update introduces previously unseen templates. Drops any
  /// quantized sidecar (the output head changed shape).
  void grow_vocab(std::size_t new_vocab, nfv::util::Rng& rng);

  /// Post-training int8 sidecar: the per-layer LSTM gate matrices and the
  /// dense output head, quantized per output channel and pre-packed for
  /// matmul_quant. The embedding is a gather (no GEMM) and the biases are
  /// O(width) vectors, so both stay fp32. Calibrated once from the fp32
  /// weights; the fp32 parameters remain the source of truth for
  /// training/serialization.
  struct QuantizedWeights {
    std::vector<QuantizedMatrix> lstm;  // one per layer, (4H × (I+H))
    QuantizedMatrix output;             // (vocab × hidden)
    std::size_t weight_bytes() const;
  };

  /// (Re)calibrate the int8 sidecar from the current fp32 weights. Every
  /// scoring entry point (predict, score_*, score_batched /
  /// score_ranks_batched) then routes its GEMMs through matmul_quant, so
  /// the serial references and the batched path stay mutually
  /// bit-identical within quantized mode. Gate/cell math, softmax and the
  /// embedding gather are unchanged fp32.
  void quantize();
  /// Drop the sidecar and return to fp32 scoring.
  void clear_quantized() { quantized_.reset(); }
  bool quantized() const { return quantized_.has_value(); }
  const QuantizedWeights* quantized_weights() const {
    return quantized_ ? &*quantized_ : nullptr;
  }

  /// Resident bytes of all fp32 trainable parameter values.
  std::size_t fp32_weight_bytes() const;
  /// Resident bytes of the int8 sidecar (0 when not quantized).
  std::size_t quantized_weight_bytes() const;

  void save(std::ostream& os) const;
  static SequenceModel load(std::istream& is);

 private:
  /// Builds per-timestep input matrices from the batch (embedding + Δt).
  /// Reuses the capacity of `inputs` (and `ids_steps`) across calls.
  void build_inputs(const SeqExample* const* batch, std::size_t batch_size,
                    std::vector<Matrix>& inputs,
                    std::vector<std::vector<std::int32_t>>* ids_steps) const;

  /// Forward one fused sub-batch through the stepped (cache-free) LSTM
  /// stack into scratch.probs.
  void forward_probs(const SeqExample* const* batch, std::size_t batch_size,
                     InferenceScratch& scratch) const;

  double forward_backward(const std::vector<const SeqExample*>& batch);

  SequenceModelConfig config_;
  Embedding embedding_;
  std::vector<Lstm> lstm_layers_;
  Dense output_;

  // int8 scoring sidecar; absent = fp32 scoring. Invalidated whenever the
  // fp32 weights change (train_batch, grow_vocab) — callers re-quantize()
  // after training if they want to keep scoring quantized.
  std::optional<QuantizedWeights> quantized_;

  // Training-only scratch reused across train_batch calls (hoisted out of
  // the per-batch loop; copying a model simply copies the buffers).
  TrainingScratch train_scratch_;
};

/// Normalization applied to Δt before it enters the network; exposed for
/// tests. Maps seconds to a small bounded feature via log1p scaling.
float normalize_dt(float dt_seconds);

}  // namespace nfv::ml
