#include "ml/loss.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/thread_pool.h"

namespace nfv::ml {

void softmax(const Matrix& logits, Matrix& probs) {
  probs.resize(logits.rows(), logits.cols());
  const auto softmax_row = [&](std::size_t r) {
    const float* in = logits.row(r);
    float* out = probs.row(r);
    float max_logit = in[0];
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      max_logit = std::max(max_logit, in[c]);
    }
    float total = 0.0f;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      out[c] = std::exp(in[c] - max_logit);
      total += out[c];
    }
    const float inv = 1.0f / total;
    for (std::size_t c = 0; c < logits.cols(); ++c) out[c] *= inv;
  };
  // Rows are independent, so the parallel split over the fused scoring
  // batches is bit-identical to the serial sweep.
  if (logits.rows() >= 64 && !nfv::util::ThreadPool::in_parallel_region() &&
      nfv::util::global_pool().size() > 1) {
    nfv::util::global_pool().parallel_for(0, logits.rows(), softmax_row);
  } else {
    for (std::size_t r = 0; r < logits.rows(); ++r) softmax_row(r);
  }
}

double softmax_cross_entropy(const Matrix& logits,
                             const std::vector<std::int32_t>& targets,
                             Matrix& grad_logits, Matrix& probs) {
  NFV_CHECK(targets.size() == logits.rows(),
            "cross entropy: one target per batch row required");
  softmax(logits, probs);
  grad_logits = probs;
  const auto batch = static_cast<float>(logits.rows());
  double loss = 0.0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto t = targets[r];
    NFV_CHECK(t >= 0 && static_cast<std::size_t>(t) < logits.cols(),
              "cross entropy target out of range: " << t);
    const double p =
        std::max(static_cast<double>(probs.at(r, static_cast<std::size_t>(t))),
                 1e-12);
    loss -= std::log(p);
    grad_logits.at(r, static_cast<std::size_t>(t)) -= 1.0f;
  }
  grad_logits.scale(1.0f / batch);
  return loss / batch;
}

double softmax_cross_entropy(const Matrix& logits,
                             const std::vector<std::int32_t>& targets,
                             Matrix& grad_logits) {
  Matrix probs;
  return softmax_cross_entropy(logits, targets, grad_logits, probs);
}

double mse_loss(const Matrix& pred, const Matrix& target, Matrix& grad_pred) {
  NFV_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols(),
            "mse_loss shape mismatch");
  grad_pred.resize(pred.rows(), pred.cols());
  const auto n = static_cast<double>(pred.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float diff = pred.data()[i] - target.data()[i];
    loss += static_cast<double>(diff) * diff;
    grad_pred.data()[i] = 2.0f * diff / static_cast<float>(n);
  }
  return loss / n;
}

double log_prob(const Matrix& probs, std::size_t row, std::int32_t target,
                double min_prob) {
  NFV_CHECK(row < probs.rows(), "log_prob row out of range");
  NFV_CHECK(target >= 0 && static_cast<std::size_t>(target) < probs.cols(),
            "log_prob target out of range");
  const double p = std::max(
      static_cast<double>(probs.at(row, static_cast<std::size_t>(target))),
      min_prob);
  return std::log(p);
}

}  // namespace nfv::ml
