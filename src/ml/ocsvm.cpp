#include "ml/ocsvm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/check.h"

namespace nfv::ml {

OcSvm::OcSvm(const OcSvmConfig& config) : config_(config) {
  NFV_CHECK(config.nu > 0.0 && config.nu <= 1.0, "nu must be in (0, 1]");
}

double OcSvm::kernel(std::span<const float> a, std::span<const float> b) const {
  NFV_CHECK(a.size() == b.size(), "kernel input width mismatch");
  double dist2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    dist2 += d * d;
  }
  return std::exp(-gamma_effective_ * dist2);
}

void OcSvm::fit(const Matrix& data) {
  NFV_CHECK(data.rows() > 0 && data.cols() > 0, "OcSvm::fit on empty data");

  // Deterministic stride subsample if the training set is too large for the
  // O(n²) kernel matrix.
  Matrix train;
  if (data.rows() > config_.max_training_rows) {
    const std::size_t stride =
        (data.rows() + config_.max_training_rows - 1) /
        config_.max_training_rows;
    std::size_t kept = 0;
    for (std::size_t r = 0; r < data.rows(); r += stride) ++kept;
    train.resize(kept, data.cols());
    std::size_t w = 0;
    for (std::size_t r = 0; r < data.rows(); r += stride) {
      std::memcpy(train.row(w++), data.row(r), data.cols() * sizeof(float));
    }
  } else {
    train = data;
  }
  const std::size_t n = train.rows();
  const std::size_t d = train.cols();

  // Default gamma = 1 / (d * mean feature variance), the usual "scale"
  // heuristic.
  if (config_.gamma > 0.0) {
    gamma_effective_ = config_.gamma;
  } else {
    double total_var = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      double sum = 0.0;
      double sum2 = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const double v = train.at(r, c);
        sum += v;
        sum2 += v * v;
      }
      const double mean = sum / static_cast<double>(n);
      total_var += sum2 / static_cast<double>(n) - mean * mean;
    }
    const double mean_var = total_var / static_cast<double>(d);
    gamma_effective_ =
        mean_var > 1e-12 ? 1.0 / (static_cast<double>(d) * mean_var) : 1.0;
  }

  // Kernel matrix.
  std::vector<double> K(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    K[i * n + i] = 1.0;  // RBF: K(x,x) = 1
    for (std::size_t j = i + 1; j < n; ++j) {
      const double k = kernel(train.row_span(i), train.row_span(j));
      K[i * n + j] = k;
      K[j * n + i] = k;
    }
  }

  // Initialize α feasibly: first ⌊νn⌋ points at the cap, remainder on one.
  const double cap = 1.0 / (config_.nu * static_cast<double>(n));
  std::vector<double> alpha(n, 0.0);
  {
    double remaining = 1.0;
    for (std::size_t i = 0; i < n && remaining > 0.0; ++i) {
      const double take = std::min(cap, remaining);
      alpha[i] = take;
      remaining -= take;
    }
  }

  // Gradient of the dual objective: g_i = (Kα)_i.
  std::vector<double> grad(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) sum += K[i * n + j] * alpha[j];
    grad[i] = sum;
  }

  // Maximal-violating-pair SMO. Decrease α where the gradient is large,
  // increase where it is small, preserving Σα = 1 and the box constraint.
  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    std::size_t up = n;    // candidate to increase (α < cap), min gradient
    std::size_t down = n;  // candidate to decrease (α > 0), max gradient
    double min_grad = std::numeric_limits<double>::infinity();
    double max_grad = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (alpha[i] < cap - 1e-15 && grad[i] < min_grad) {
        min_grad = grad[i];
        up = i;
      }
      if (alpha[i] > 1e-15 && grad[i] > max_grad) {
        max_grad = grad[i];
        down = i;
      }
    }
    if (up == n || down == n || max_grad - min_grad < config_.tolerance) break;

    // Optimal unconstrained step for the pair, then clip to the box.
    const double denom =
        std::max(K[up * n + up] + K[down * n + down] - 2.0 * K[up * n + down],
                 1e-12);
    double delta = (max_grad - min_grad) / denom;
    delta = std::min(delta, cap - alpha[up]);
    delta = std::min(delta, alpha[down]);
    if (delta <= 0.0) break;
    alpha[up] += delta;
    alpha[down] -= delta;
    for (std::size_t i = 0; i < n; ++i) {
      grad[i] += delta * (K[i * n + up] - K[i * n + down]);
    }
  }

  // ρ = average decision value over free support vectors (0 < α < cap);
  // fall back to all support vectors if none are strictly free.
  double rho_sum = 0.0;
  std::size_t rho_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-12 && alpha[i] < cap - 1e-12) {
      rho_sum += grad[i];
      ++rho_count;
    }
  }
  if (rho_count == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (alpha[i] > 1e-12) {
        rho_sum += grad[i];
        ++rho_count;
      }
    }
  }
  rho_ = rho_count > 0 ? rho_sum / static_cast<double>(rho_count) : 0.0;

  // Keep only support vectors.
  std::size_t m = 0;
  for (double a : alpha) {
    if (a > 1e-12) ++m;
  }
  support_vectors_.resize(m, d);
  alphas_.clear();
  alphas_.reserve(m);
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-12) {
      std::memcpy(support_vectors_.row(w++), train.row(i), d * sizeof(float));
      alphas_.push_back(alpha[i]);
    }
  }
}

double OcSvm::decision_value(std::span<const float> x) const {
  NFV_CHECK(trained(), "OcSvm::decision_value before fit");
  double sum = 0.0;
  for (std::size_t i = 0; i < alphas_.size(); ++i) {
    sum += alphas_[i] * kernel(support_vectors_.row_span(i), x);
  }
  return sum - rho_;
}

double OcSvm::anomaly_score(std::span<const float> x) const {
  return -decision_value(x);
}

std::vector<double> OcSvm::anomaly_scores(const Matrix& data) const {
  std::vector<double> out(data.rows());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    out[r] = anomaly_score(data.row_span(r));
  }
  return out;
}

}  // namespace nfv::ml
