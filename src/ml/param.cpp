#include "ml/param.h"

#include <cmath>

namespace nfv::ml {

void xavier_uniform(Matrix& m, std::size_t fan_in, std::size_t fan_out,
                    nfv::util::Rng& rng) {
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  uniform_init(m, a, rng);
}

void uniform_init(Matrix& m, float scale, nfv::util::Rng& rng) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
}

double clip_gradients(const std::vector<Param*>& params, double max_norm) {
  double total = 0.0;
  for (const Param* p : params) total += p->grad.squared_norm();
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const auto k = static_cast<float>(max_norm / norm);
    for (Param* p : params) p->grad.scale(k);
  }
  return norm;
}

}  // namespace nfv::ml
