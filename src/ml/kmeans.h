// K-means clustering (Lloyd's algorithm with k-means++ seeding), used to
// group vPEs with similar syslog distributions (§4.3). Also provides the
// modularity score the paper uses to pick the number of groups K.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/matrix.h"
#include "util/rng.h"

namespace nfv::ml {

struct KMeansConfig {
  std::size_t k = 4;
  std::size_t max_iterations = 100;
  double tolerance = 1e-6;  // stop when centroids move less than this
};

struct KMeansResult {
  Matrix centroids;                 // (k × d)
  std::vector<std::size_t> labels;  // per input row
  double inertia = 0.0;             // Σ squared distance to assigned centroid
  std::size_t iterations = 0;
};

/// Cluster the rows of `data`. Deterministic given the Rng seed.
KMeansResult kmeans(const Matrix& data, const KMeansConfig& config,
                    nfv::util::Rng& rng);

/// Newman modularity of a partition over a weighted similarity graph.
/// `similarity` is a symmetric (n × n) matrix with zero diagonal; `labels`
/// assigns each node to a community.
double modularity(const Matrix& similarity,
                  const std::vector<std::size_t>& labels);

/// Pairwise cosine-similarity graph of the rows of `data` (diagonal zeroed),
/// with similarities below `threshold` dropped — the graph the modularity
/// criterion is evaluated on.
Matrix cosine_similarity_graph(const Matrix& data, double threshold = 0.0);

/// Pick K by maximizing modularity of the k-means partition over the cosine
/// similarity graph, for K in [k_min, k_max]. Returns the winning result.
struct KSelection {
  std::size_t best_k = 0;
  KMeansResult result;
  std::vector<double> modularity_by_k;  // index 0 ↔ k_min
};
KSelection select_k_by_modularity(const Matrix& data, std::size_t k_min,
                                  std::size_t k_max, nfv::util::Rng& rng);

}  // namespace nfv::ml
