// Feed-forward autoencoder baseline (§5.2, Fig. 6).
//
// The paper's comparison trains an autoencoder on TF-IDF features of normal
// syslog windows and uses the reconstruction error as the anomaly score
// (following Zhang et al., "Automated IT system failure prediction").
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "ml/dense.h"
#include "ml/matrix.h"
#include "ml/optimizer.h"
#include "util/rng.h"

namespace nfv::ml {

struct AutoencoderConfig {
  std::size_t input_dim = 0;               // feature width (required)
  std::vector<std::size_t> encoder = {64, 16};  // hidden widths, top = code
};

/// Symmetric ReLU autoencoder with a linear reconstruction head.
class Autoencoder {
 public:
  Autoencoder(const AutoencoderConfig& config, nfv::util::Rng& rng);

  const AutoencoderConfig& config() const { return config_; }
  std::vector<Param*> params();

  /// One optimizer step on a batch of feature rows; returns mean MSE.
  double train_batch(const Matrix& batch, Optimizer& optimizer,
                     double max_grad_norm = 5.0);

  /// Reconstruct a batch (forward only).
  void reconstruct(const Matrix& batch, Matrix& output) const;

  /// Per-row mean squared reconstruction error — the anomaly score.
  std::vector<double> reconstruction_error(const Matrix& batch) const;

  /// Freeze all layers except the top `trainable_top` (decoder-side) layers;
  /// mirrors the transfer-learning adaptation applied to the LSTM.
  void freeze_lower_layers(std::size_t trainable_top);

 private:
  AutoencoderConfig config_;
  std::vector<Dense> layers_;
};

}  // namespace nfv::ml
