// Minimal binary (de)serialization for model checkpoints. Little-endian
// host order; the library never exchanges checkpoints across machines.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "ml/matrix.h"

namespace nfv::ml {

inline constexpr std::uint64_t kSequenceModelMagic = 0x4e46565345514d31ULL;
inline constexpr std::uint64_t kAutoencoderMagic = 0x4e4656414531ULL;
inline constexpr std::uint64_t kMatrixMagic = 0x4e46564d5831ULL;
inline constexpr std::uint64_t kQuantMatrixMagic = 0x4e465651384d31ULL;

void write_u64(std::ostream& os, std::uint64_t value);
std::uint64_t read_u64(std::istream& is);

void write_matrix(std::ostream& os, const Matrix& m);
Matrix read_matrix(std::istream& is);

/// Quantized-matrix image: magic, shape, then the raw packed int8 panels,
/// per-channel fp32 scales and int32 column sums byte for byte — a
/// round-trip reproduces the calibration exactly (no re-quantization).
void write_quant_matrix(std::ostream& os, const QuantizedMatrix& m);
QuantizedMatrix read_quant_matrix(std::istream& is);

}  // namespace nfv::ml
