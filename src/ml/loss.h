// Loss functions: categorical cross-entropy over softmax (the paper's
// training objective) and mean-squared error (autoencoder reconstruction).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/matrix.h"

namespace nfv::ml {

/// Row-wise softmax of `logits` into `probs` (numerically stabilized).
void softmax(const Matrix& logits, Matrix& probs);

/// Mean categorical cross-entropy over the batch. `targets[r]` is the class
/// index for row r. On return `grad_logits` holds dL/d-logits (already
/// divided by batch size).
double softmax_cross_entropy(const Matrix& logits,
                             const std::vector<std::int32_t>& targets,
                             Matrix& grad_logits);

/// As above but also exposes the softmax probabilities.
double softmax_cross_entropy(const Matrix& logits,
                             const std::vector<std::int32_t>& targets,
                             Matrix& grad_logits, Matrix& probs);

/// Mean-squared error: mean over batch and features of (pred-target)².
/// `grad_pred` receives dL/d-pred.
double mse_loss(const Matrix& pred, const Matrix& target, Matrix& grad_pred);

/// Natural-log probability of class `target` in a probability row-vector,
/// floored at `min_prob` to keep scores finite.
double log_prob(const Matrix& probs, std::size_t row, std::int32_t target,
                double min_prob = 1e-12);

}  // namespace nfv::ml
