// Trainable parameter tensors and initializers.
#pragma once

#include <string>
#include <vector>

#include "ml/matrix.h"
#include "util/rng.h"

namespace nfv::ml {

/// A named trainable tensor: value, gradient accumulator, and a freeze flag
/// used by the transfer-learning adaptation step (frozen parameters keep
/// their teacher weights while top layers fine-tune).
struct Param {
  std::string name;
  Matrix value;
  Matrix grad;
  bool frozen = false;

  Param() = default;
  Param(std::string n, std::size_t rows, std::size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void zero_grad() { grad.zero(); }
};

/// Xavier/Glorot uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
void xavier_uniform(Matrix& m, std::size_t fan_in, std::size_t fan_out,
                    nfv::util::Rng& rng);

/// Uniform init in [-scale, scale].
void uniform_init(Matrix& m, float scale, nfv::util::Rng& rng);

/// Global L2-norm gradient clipping across a parameter set; returns the
/// pre-clip norm. Standard practice for LSTM BPTT stability.
double clip_gradients(const std::vector<Param*>& params, double max_norm);

}  // namespace nfv::ml
