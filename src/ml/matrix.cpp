#include "ml/matrix.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "util/check.h"
#include "util/thread_pool.h"

namespace nfv::ml {

namespace {

/// Minimum multiply-accumulate count before the blocked-parallel kernels
/// pay for themselves; below this the serial kernels win outright. Sized
/// so the per-timestep training GEMMs (a 64-row batch against one layer's
/// weights is ~4e5 MACs) stay on the calling thread — BPTT parallelizes
/// across timesteps instead, one fork-join per backward pass rather than
/// one per step — while the fused scoring batches (~1k rows, several
/// MMACs) still shard across the pool.
constexpr std::size_t kParallelMinWork = 1u << 19;

/// Parallelize only for large products, only when a multi-thread pool is
/// available, and never from inside an already parallel region (the
/// per-group pipeline fan-out owns the threads there).
bool use_parallel(std::size_t work) {
  return work >= kParallelMinWork &&
         !nfv::util::ThreadPool::in_parallel_region() &&
         nfv::util::global_pool().size() > 1;
}

#if defined(__x86_64__) && defined(__GNUC__)
#define NFV_X86_MULTIVERSION 1

bool has_avx2_fma() {
  static const bool value =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return value;
}
#endif

bool default_simd_enabled() {
#ifdef NFV_X86_MULTIVERSION
  if (std::getenv("NFVPRED_NO_AVX2") != nullptr) return false;
  return has_avx2_fma();
#else
  return false;
#endif
}

/// Read by kernel dispatchers on worker threads; written only from
/// single-threaded control points (startup, bench/test mode switches).
/// Atomic so the cross-thread reads are race-free under TSan.
std::atomic<bool>& simd_flag() {
  static std::atomic<bool> flag(default_simd_enabled());
  return flag;
}

/// One row of out = a * b, i-k-j order (streams b and out contiguously);
/// out row must start zeroed. Each out element accumulates in k-ascending
/// order — the same chain every packed/tiled variant below uses.
inline void matmul_row(const Matrix& a, const Matrix& b, Matrix& out,
                       std::size_t i) {
  const float* arow = a.row(i);
  float* orow = out.row(i);
  for (std::size_t k = 0; k < a.cols(); ++k) {
    const float aik = arow[k];
    const float* brow = b.row(k);
    for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
  }
}

/// One row of out = a * bᵀ. always_inline so the ISA-targeted wrappers
/// below compile this body with their own instruction set (and FMA
/// contraction) instead of calling a baseline copy.
__attribute__((always_inline)) inline void matmul_transb_row(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  const float* arow = a.row(i);
  float* orow = out.row(i);
  for (std::size_t j = 0; j < b.rows(); ++j) {
    const float* brow = b.row(j);
    float dot = 0.0f;
    for (std::size_t k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
    orow[j] = dot;
  }
}

/// Panel width of the packed kernels (output columns per tile).
constexpr std::size_t kPanelCols = 8;

/// Pack b (the weight matrix of out = a * bᵀ) into 8-row k-major panels:
/// panel jp holds b rows [8jp, 8jp+8) interleaved as [k][jj], so the inner
/// product loop reads 8 weights for 8 output columns from one contiguous
/// 32-byte slot — the layout auto-vectorizes to SIMD with each lane an
/// independent accumulator chain. Pack cost is O(b.size()) and is
/// amortized over every row of a, which is exactly what a fused scoring
/// batch provides and a single-window batch cannot.
void pack_transb_panels(const Matrix& b, std::vector<float>& packed) {
  const std::size_t cols = b.cols();
  const std::size_t panels = b.rows() / kPanelCols;
  packed.resize(panels * cols * kPanelCols);
  for (std::size_t jp = 0; jp < panels; ++jp) {
    float* panel = packed.data() + jp * cols * kPanelCols;
    for (std::size_t k = 0; k < cols; ++k) {
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
        panel[kPanelCols * k + jj] = b.row(kPanelCols * jp + jj)[k];
      }
    }
  }
}

/// Pack the B operand (K×C) of the *plain* product out = a·b into the
/// same 8-column k-major panel layout: panel jp holds b columns
/// [8jp, 8jp+8) interleaved as [k][jj]. Identical consumption pattern to
/// the transb panels, so the compute kernels mirror each other.
void pack_matmul_b_panels(const Matrix& b, std::vector<float>& packed) {
  const std::size_t kn = b.rows();
  const std::size_t panels = b.cols() / kPanelCols;
  packed.resize(panels * kn * kPanelCols);
  for (std::size_t jp = 0; jp < panels; ++jp) {
    float* panel = packed.data() + jp * kn * kPanelCols;
    for (std::size_t k = 0; k < kn; ++k) {
      const float* brow = b.row(k) + kPanelCols * jp;
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
        panel[kPanelCols * k + jj] = brow[jj];
      }
    }
  }
}

/// Rows [i0, i1) of out = a * bᵀ with b pre-packed into panels: 4 a-rows ×
/// one 8-column panel per tile, 32 accumulators. Every acc chain is
/// accumulated in the same k-ascending order as matmul_transb_row, so
/// results are bit-identical to the row-at-a-time kernel for any row
/// blocking and any thread count.
__attribute__((always_inline)) inline void matmul_transb_rows_packed(
    const Matrix& a, const Matrix& b, const float* packed, Matrix& out,
    std::size_t i0, std::size_t i1) {
  const std::size_t cols = a.cols();
  const std::size_t jn = b.rows();
  const std::size_t panels = jn / kPanelCols;
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a.row(i);
    const float* a1 = a.row(i + 1);
    const float* a2 = a.row(i + 2);
    const float* a3 = a.row(i + 3);
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const float* panel = packed + jp * cols * kPanelCols;
      float acc0[kPanelCols] = {}, acc1[kPanelCols] = {};
      float acc2[kPanelCols] = {}, acc3[kPanelCols] = {};
      for (std::size_t k = 0; k < cols; ++k) {
        const float* bv = panel + kPanelCols * k;
        const float av0 = a0[k], av1 = a1[k], av2 = a2[k], av3 = a3[k];
        for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
          acc0[jj] += av0 * bv[jj];
          acc1[jj] += av1 * bv[jj];
          acc2[jj] += av2 * bv[jj];
          acc3[jj] += av3 * bv[jj];
        }
      }
      float* o0 = out.row(i) + kPanelCols * jp;
      float* o1 = out.row(i + 1) + kPanelCols * jp;
      float* o2 = out.row(i + 2) + kPanelCols * jp;
      float* o3 = out.row(i + 3) + kPanelCols * jp;
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
        o0[jj] = acc0[jj];
        o1[jj] = acc1[jj];
        o2[jj] = acc2[jj];
        o3[jj] = acc3[jj];
      }
    }
    for (std::size_t j = kPanelCols * panels; j < jn; ++j) {
      const float* brow = b.row(j);
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t k = 0; k < cols; ++k) {
        const float bk = brow[k];
        d0 += a0[k] * bk;
        d1 += a1[k] * bk;
        d2 += a2[k] * bk;
        d3 += a3[k] * bk;
      }
      out.row(i)[j] = d0;
      out.row(i + 1)[j] = d1;
      out.row(i + 2)[j] = d2;
      out.row(i + 3)[j] = d3;
    }
  }
  for (; i < i1; ++i) matmul_transb_row(a, b, out, i);
}

/// Rows [i0, i1) of out = a * b with b pre-packed into 8-column k-major
/// panels. Same 4-row × 8-column register tiling as the transb kernel;
/// every out element keeps the k-ascending chain of matmul_row, so the
/// packed, row-at-a-time, and any row-blocked parallel variants all agree
/// bit for bit.
inline void matmul_rows_bpacked(const Matrix& a, const Matrix& b,
                                const float* packed, Matrix& out,
                                std::size_t i0, std::size_t i1) {
  const std::size_t kn = a.cols();
  const std::size_t cn = b.cols();
  const std::size_t panels = cn / kPanelCols;
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a.row(i);
    const float* a1 = a.row(i + 1);
    const float* a2 = a.row(i + 2);
    const float* a3 = a.row(i + 3);
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const float* panel = packed + jp * kn * kPanelCols;
      float acc0[kPanelCols] = {}, acc1[kPanelCols] = {};
      float acc2[kPanelCols] = {}, acc3[kPanelCols] = {};
      for (std::size_t k = 0; k < kn; ++k) {
        const float* bv = panel + kPanelCols * k;
        const float av0 = a0[k], av1 = a1[k], av2 = a2[k], av3 = a3[k];
        for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
          acc0[jj] += av0 * bv[jj];
          acc1[jj] += av1 * bv[jj];
          acc2[jj] += av2 * bv[jj];
          acc3[jj] += av3 * bv[jj];
        }
      }
      float* o0 = out.row(i) + kPanelCols * jp;
      float* o1 = out.row(i + 1) + kPanelCols * jp;
      float* o2 = out.row(i + 2) + kPanelCols * jp;
      float* o3 = out.row(i + 3) + kPanelCols * jp;
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
        o0[jj] = acc0[jj];
        o1[jj] = acc1[jj];
        o2[jj] = acc2[jj];
        o3[jj] = acc3[jj];
      }
    }
    for (std::size_t j = kPanelCols * panels; j < cn; ++j) {
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t k = 0; k < kn; ++k) {
        const float bk = b.row(k)[j];
        d0 += a0[k] * bk;
        d1 += a1[k] * bk;
        d2 += a2[k] * bk;
        d3 += a3[k] * bk;
      }
      out.row(i)[j] = d0;
      out.row(i + 1)[j] = d1;
      out.row(i + 2)[j] = d2;
      out.row(i + 3)[j] = d3;
    }
  }
  for (; i < i1; ++i) matmul_row(a, b, out, i);
}

/// Column block [c0, c1) of out += aᵀ * b, register-tiled 4 out-rows × 8
/// out-columns. Each out element adds a partial sum accumulated from zero
/// in r-ascending order (then one `out += sum`), so the result is
/// independent of the k/c tiling and of any column-block parallel split.
inline void transa_acc_block(const Matrix& a, const Matrix& b, Matrix& out,
                             std::size_t c0, std::size_t c1) {
  const std::size_t rn = a.rows();
  const std::size_t kn = a.cols();
  std::size_t k = 0;
  for (; k + 4 <= kn; k += 4) {
    std::size_t c = c0;
    for (; c + kPanelCols <= c1; c += kPanelCols) {
      float acc0[kPanelCols] = {}, acc1[kPanelCols] = {};
      float acc2[kPanelCols] = {}, acc3[kPanelCols] = {};
      for (std::size_t r = 0; r < rn; ++r) {
        const float* ar = a.row(r) + k;
        const float* bv = b.row(r) + c;
        const float a0 = ar[0], a1 = ar[1], a2 = ar[2], a3 = ar[3];
        for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
          acc0[jj] += a0 * bv[jj];
          acc1[jj] += a1 * bv[jj];
          acc2[jj] += a2 * bv[jj];
          acc3[jj] += a3 * bv[jj];
        }
      }
      float* o0 = out.row(k) + c;
      float* o1 = out.row(k + 1) + c;
      float* o2 = out.row(k + 2) + c;
      float* o3 = out.row(k + 3) + c;
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
        o0[jj] += acc0[jj];
        o1[jj] += acc1[jj];
        o2[jj] += acc2[jj];
        o3[jj] += acc3[jj];
      }
    }
    for (; c < c1; ++c) {
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t r = 0; r < rn; ++r) {
        const float* ar = a.row(r) + k;
        const float bc = b.row(r)[c];
        d0 += ar[0] * bc;
        d1 += ar[1] * bc;
        d2 += ar[2] * bc;
        d3 += ar[3] * bc;
      }
      out.row(k)[c] += d0;
      out.row(k + 1)[c] += d1;
      out.row(k + 2)[c] += d2;
      out.row(k + 3)[c] += d3;
    }
  }
  for (; k < kn; ++k) {
    std::size_t c = c0;
    for (; c + kPanelCols <= c1; c += kPanelCols) {
      float acc[kPanelCols] = {};
      for (std::size_t r = 0; r < rn; ++r) {
        const float ak = a.row(r)[k];
        const float* bv = b.row(r) + c;
        for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
          acc[jj] += ak * bv[jj];
        }
      }
      float* orow = out.row(k) + c;
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) orow[jj] += acc[jj];
    }
    for (; c < c1; ++c) {
      float d = 0.0f;
      for (std::size_t r = 0; r < rn; ++r) {
        d += a.row(r)[k] * b.row(r)[c];
      }
      out.row(k)[c] += d;
    }
  }
}

/// Minimum a-row count before packing b into panels pays for itself; below
/// this the plain row kernel is used (a 1-window batch never packs).
constexpr std::size_t kPackMinRows = 8;

/// Reused pack buffer (packing happens on the calling thread before any
/// parallel fan-out; workers only read it).
thread_local std::vector<float> tl_packed_b;

// ISA dispatch for the packed kernels. Both the single-row reference
// kernels and the packed batch kernels are cloned for AVX2+FMA, and ALL
// take the same runtime branch (simd_kernels_enabled): every accumulator
// chain then uses fused multiply-add on every path, so a window scored
// alone still matches a window scored inside a fused batch bit for bit,
// and a gradient accumulated serially matches any tiled/parallel variant.
// (Results may differ between machines with and without FMA — and between
// the default and NFVPRED_NO_AVX2 modes — determinism is per-machine and
// per-mode, the same guarantee the baseline kernels give.)
#ifdef NFV_X86_MULTIVERSION

/// One row of out = a * bᵀ with every chain step an explicit fused
/// multiply-add (`__builtin_fmaf` = one vfmadd instruction under the fma
/// target). The compiler cannot split or partially contract the chain, so
/// this is bit-identical to the fmadd lanes of the packed AVX2 kernel.
__attribute__((always_inline)) inline void transb_row_fma_body(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  const float* arow = a.row(i);
  float* orow = out.row(i);
  for (std::size_t j = 0; j < b.rows(); ++j) {
    const float* brow = b.row(j);
    float dot = 0.0f;
    for (std::size_t k = 0; k < a.cols(); ++k) {
      dot = __builtin_fmaf(arow[k], brow[k], dot);
    }
    orow[j] = dot;
  }
}

__attribute__((target("avx2,fma"))) void matmul_transb_row_fma(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  transb_row_fma_body(a, b, out, i);
}

/// One row of out = a * b with explicit fused multiply-adds, the scalar
/// reference for the packed FMA kernel below.
__attribute__((always_inline)) inline void matmul_row_fma_body(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  const float* arow = a.row(i);
  float* orow = out.row(i);
  for (std::size_t k = 0; k < a.cols(); ++k) {
    const float aik = arow[k];
    const float* brow = b.row(k);
    for (std::size_t j = 0; j < b.cols(); ++j) {
      orow[j] = __builtin_fmaf(aik, brow[j], orow[j]);
    }
  }
}

__attribute__((target("avx2,fma"))) void matmul_row_fma(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  matmul_row_fma_body(a, b, out, i);
}

/// Hand-vectorized AVX2+FMA packed kernel: one 256-bit fmadd per
/// (a-row, k) covers a full 8-column panel, so each accumulator lane is
/// exactly the chain `acc = fma(a[k]*b[k], acc)` in k order — the same
/// fused operation the contracted scalar row kernel performs.
__attribute__((target("avx2,fma"))) void matmul_transb_rows_packed_fma(
    const Matrix& a, const Matrix& b, const float* packed, Matrix& out,
    std::size_t i0, std::size_t i1) {
  const std::size_t cols = a.cols();
  const std::size_t jn = b.rows();
  const std::size_t panels = jn / kPanelCols;
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a.row(i);
    const float* a1 = a.row(i + 1);
    const float* a2 = a.row(i + 2);
    const float* a3 = a.row(i + 3);
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const float* panel = packed + jp * cols * kPanelCols;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      for (std::size_t k = 0; k < cols; ++k) {
        const __m256 bv = _mm256_loadu_ps(panel + kPanelCols * k);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[k]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[k]), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[k]), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[k]), bv, acc3);
      }
      _mm256_storeu_ps(out.row(i) + kPanelCols * jp, acc0);
      _mm256_storeu_ps(out.row(i + 1) + kPanelCols * jp, acc1);
      _mm256_storeu_ps(out.row(i + 2) + kPanelCols * jp, acc2);
      _mm256_storeu_ps(out.row(i + 3) + kPanelCols * jp, acc3);
    }
    for (std::size_t j = kPanelCols * panels; j < jn; ++j) {
      const float* brow = b.row(j);
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t k = 0; k < cols; ++k) {
        const float bk = brow[k];
        d0 = __builtin_fmaf(a0[k], bk, d0);
        d1 = __builtin_fmaf(a1[k], bk, d1);
        d2 = __builtin_fmaf(a2[k], bk, d2);
        d3 = __builtin_fmaf(a3[k], bk, d3);
      }
      out.row(i)[j] = d0;
      out.row(i + 1)[j] = d1;
      out.row(i + 2)[j] = d2;
      out.row(i + 3)[j] = d3;
    }
  }
  for (; i < i1; ++i) transb_row_fma_body(a, b, out, i);
}

/// AVX2+FMA clone of matmul_rows_bpacked (plain out = a·b, packed B).
__attribute__((target("avx2,fma"))) void matmul_rows_bpacked_fma(
    const Matrix& a, const Matrix& b, const float* packed, Matrix& out,
    std::size_t i0, std::size_t i1) {
  const std::size_t kn = a.cols();
  const std::size_t cn = b.cols();
  const std::size_t panels = cn / kPanelCols;
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a.row(i);
    const float* a1 = a.row(i + 1);
    const float* a2 = a.row(i + 2);
    const float* a3 = a.row(i + 3);
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const float* panel = packed + jp * kn * kPanelCols;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      for (std::size_t k = 0; k < kn; ++k) {
        const __m256 bv = _mm256_loadu_ps(panel + kPanelCols * k);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[k]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[k]), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[k]), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[k]), bv, acc3);
      }
      _mm256_storeu_ps(out.row(i) + kPanelCols * jp, acc0);
      _mm256_storeu_ps(out.row(i + 1) + kPanelCols * jp, acc1);
      _mm256_storeu_ps(out.row(i + 2) + kPanelCols * jp, acc2);
      _mm256_storeu_ps(out.row(i + 3) + kPanelCols * jp, acc3);
    }
    for (std::size_t j = kPanelCols * panels; j < cn; ++j) {
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t k = 0; k < kn; ++k) {
        const float bk = b.row(k)[j];
        d0 = __builtin_fmaf(a0[k], bk, d0);
        d1 = __builtin_fmaf(a1[k], bk, d1);
        d2 = __builtin_fmaf(a2[k], bk, d2);
        d3 = __builtin_fmaf(a3[k], bk, d3);
      }
      out.row(i)[j] = d0;
      out.row(i + 1)[j] = d1;
      out.row(i + 2)[j] = d2;
      out.row(i + 3)[j] = d3;
    }
  }
  for (; i < i1; ++i) matmul_row_fma_body(a, b, out, i);
}

/// AVX2+FMA clone of transa_acc_block (weight-gradient accumulation). The
/// 4×8 register tile becomes four ymm accumulators fed by one broadcast
/// fmadd per (r, out-row); the final `out += sum` is one vector add per
/// lane, matching the scalar epilogue exactly.
__attribute__((target("avx2,fma"))) void transa_acc_block_fma(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t c0,
    std::size_t c1) {
  const std::size_t rn = a.rows();
  const std::size_t kn = a.cols();
  std::size_t k = 0;
  for (; k + 4 <= kn; k += 4) {
    std::size_t c = c0;
    for (; c + kPanelCols <= c1; c += kPanelCols) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      for (std::size_t r = 0; r < rn; ++r) {
        const float* ar = a.row(r) + k;
        const __m256 bv = _mm256_loadu_ps(b.row(r) + c);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(ar[0]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(ar[1]), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(ar[2]), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(ar[3]), bv, acc3);
      }
      float* o0 = out.row(k) + c;
      float* o1 = out.row(k + 1) + c;
      float* o2 = out.row(k + 2) + c;
      float* o3 = out.row(k + 3) + c;
      _mm256_storeu_ps(o0, _mm256_add_ps(_mm256_loadu_ps(o0), acc0));
      _mm256_storeu_ps(o1, _mm256_add_ps(_mm256_loadu_ps(o1), acc1));
      _mm256_storeu_ps(o2, _mm256_add_ps(_mm256_loadu_ps(o2), acc2));
      _mm256_storeu_ps(o3, _mm256_add_ps(_mm256_loadu_ps(o3), acc3));
    }
    for (; c < c1; ++c) {
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t r = 0; r < rn; ++r) {
        const float* ar = a.row(r) + k;
        const float bc = b.row(r)[c];
        d0 = __builtin_fmaf(ar[0], bc, d0);
        d1 = __builtin_fmaf(ar[1], bc, d1);
        d2 = __builtin_fmaf(ar[2], bc, d2);
        d3 = __builtin_fmaf(ar[3], bc, d3);
      }
      out.row(k)[c] += d0;
      out.row(k + 1)[c] += d1;
      out.row(k + 2)[c] += d2;
      out.row(k + 3)[c] += d3;
    }
  }
  for (; k < kn; ++k) {
    std::size_t c = c0;
    for (; c + kPanelCols <= c1; c += kPanelCols) {
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t r = 0; r < rn; ++r) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(a.row(r)[k]),
                              _mm256_loadu_ps(b.row(r) + c), acc);
      }
      float* orow = out.row(k) + c;
      _mm256_storeu_ps(orow, _mm256_add_ps(_mm256_loadu_ps(orow), acc));
    }
    for (; c < c1; ++c) {
      float d = 0.0f;
      for (std::size_t r = 0; r < rn; ++r) {
        d = __builtin_fmaf(a.row(r)[k], b.row(r)[c], d);
      }
      out.row(k)[c] += d;
    }
  }
}
#endif

void transb_row_dispatch(const Matrix& a, const Matrix& b, Matrix& out,
                         std::size_t i) {
#ifdef NFV_X86_MULTIVERSION
  if (simd_kernels_enabled()) {
    matmul_transb_row_fma(a, b, out, i);
    return;
  }
#endif
  matmul_transb_row(a, b, out, i);
}

void transb_rows_packed_dispatch(const Matrix& a, const Matrix& b,
                                 const float* packed, Matrix& out,
                                 std::size_t i0, std::size_t i1) {
#ifdef NFV_X86_MULTIVERSION
  if (simd_kernels_enabled()) {
    matmul_transb_rows_packed_fma(a, b, packed, out, i0, i1);
    return;
  }
#endif
  matmul_transb_rows_packed(a, b, packed, out, i0, i1);
}

void matmul_row_dispatch(const Matrix& a, const Matrix& b, Matrix& out,
                         std::size_t i) {
#ifdef NFV_X86_MULTIVERSION
  if (simd_kernels_enabled()) {
    matmul_row_fma(a, b, out, i);
    return;
  }
#endif
  matmul_row(a, b, out, i);
}

void matmul_rows_bpacked_dispatch(const Matrix& a, const Matrix& b,
                                  const float* packed, Matrix& out,
                                  std::size_t i0, std::size_t i1) {
#ifdef NFV_X86_MULTIVERSION
  if (simd_kernels_enabled()) {
    matmul_rows_bpacked_fma(a, b, packed, out, i0, i1);
    return;
  }
#endif
  matmul_rows_bpacked(a, b, packed, out, i0, i1);
}

void transa_acc_block_dispatch(const Matrix& a, const Matrix& b, Matrix& out,
                               std::size_t c0, std::size_t c1) {
#ifdef NFV_X86_MULTIVERSION
  if (simd_kernels_enabled()) {
    transa_acc_block_fma(a, b, out, c0, c1);
    return;
  }
#endif
  transa_acc_block(a, b, out, c0, c1);
}

}  // namespace

bool simd_kernels_enabled() {
  return simd_flag().load(std::memory_order_relaxed);
}

void set_simd_kernels_enabled(bool enabled) {
#ifdef NFV_X86_MULTIVERSION
  simd_flag().store(enabled && has_avx2_fma(), std::memory_order_relaxed);
#else
  (void)enabled;
  simd_flag().store(false, std::memory_order_relaxed);
#endif
}

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(float value) {
  for (float& x : data_) x = value;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::add(const Matrix& other) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::add shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::add_scaled(const Matrix& other, float k) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += k * other.data_[i];
  }
}

void Matrix::scale(float k) {
  for (float& x : data_) x *= k;
}

void Matrix::hadamard(const Matrix& other) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::hadamard shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

double Matrix::squared_norm() const {
  double sum = 0.0;
  for (float x : data_) sum += static_cast<double>(x) * x;
  return sum;
}

void matmul_serial(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.rows(), "matmul inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.rows());
  out.resize(a.rows(), b.cols());
  if (a.rows() < kPackMinRows) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      matmul_row_dispatch(a, b, out, i);
    }
    return;
  }
  pack_matmul_b_panels(b, tl_packed_b);
  matmul_rows_bpacked_dispatch(a, b, tl_packed_b.data(), out, 0, a.rows());
}

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.rows(), "matmul inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.rows());
  if (!use_parallel(a.rows() * a.cols() * b.cols())) {
    matmul_serial(a, b, out);
    return;
  }
  out.resize(a.rows(), b.cols());
  // Pack once on the calling thread; row blocks keep the 4×8 tiling inside
  // each parallel task. Every task writes only its own rows and every
  // accumulator chain keeps its k-order, so the result matches the serial
  // kernel bit for bit regardless of thread count.
  pack_matmul_b_panels(b, tl_packed_b);
  const float* packed = tl_packed_b.data();
  constexpr std::size_t kRowBlock = 16;
  const std::size_t blocks = (a.rows() + kRowBlock - 1) / kRowBlock;
  nfv::util::global_pool().parallel_for(0, blocks, [&](std::size_t bi) {
    const std::size_t i0 = bi * kRowBlock;
    matmul_rows_bpacked_dispatch(a, b, packed, out, i0,
                                 std::min(i0 + kRowBlock, a.rows()));
  });
}

void pack_matmul_b(const Matrix& b, std::vector<float>& packed) {
  pack_matmul_b_panels(b, packed);
}

void matmul_packed(const Matrix& a, const Matrix& b,
                   const std::vector<float>& packed, Matrix& out) {
  NFV_CHECK(a.cols() == b.rows(), "matmul_packed inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.rows());
  NFV_CHECK(packed.size() == (b.cols() / kPanelCols) * b.rows() * kPanelCols,
            "matmul_packed: packed buffer does not match b (repack needed)");
  out.resize(a.rows(), b.cols());
  if (!use_parallel(a.rows() * a.cols() * b.cols())) {
    matmul_rows_bpacked_dispatch(a, b, packed.data(), out, 0, a.rows());
    return;
  }
  constexpr std::size_t kRowBlock = 16;
  const std::size_t blocks = (a.rows() + kRowBlock - 1) / kRowBlock;
  nfv::util::global_pool().parallel_for(0, blocks, [&](std::size_t bi) {
    const std::size_t i0 = bi * kRowBlock;
    matmul_rows_bpacked_dispatch(a, b, packed.data(), out, i0,
                                 std::min(i0 + kRowBlock, a.rows()));
  });
}

void matmul_transb_serial(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.cols(), "matmul_transb inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.cols());
  out.resize(a.rows(), b.rows());
  if (a.rows() < kPackMinRows) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      transb_row_dispatch(a, b, out, i);
    }
    return;
  }
  pack_transb_panels(b, tl_packed_b);
  transb_rows_packed_dispatch(a, b, tl_packed_b.data(), out, 0, a.rows());
}

void matmul_transb(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.cols(), "matmul_transb inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.cols());
  if (!use_parallel(a.rows() * a.cols() * b.rows())) {
    matmul_transb_serial(a, b, out);
    return;
  }
  out.resize(a.rows(), b.rows());
  // Pack once on the calling thread; row blocks keep the 4×4 tiling inside
  // each parallel task. Every task writes only its own rows and every
  // accumulator chain keeps its k-order, so the result matches the serial
  // kernel bit for bit regardless of thread count.
  pack_transb_panels(b, tl_packed_b);
  const float* packed = tl_packed_b.data();
  constexpr std::size_t kRowBlock = 16;
  const std::size_t blocks = (a.rows() + kRowBlock - 1) / kRowBlock;
  nfv::util::global_pool().parallel_for(0, blocks, [&](std::size_t bi) {
    const std::size_t i0 = bi * kRowBlock;
    transb_rows_packed_dispatch(a, b, packed, out, i0,
                                std::min(i0 + kRowBlock, a.rows()));
  });
}

void matmul_transa_accumulate_serial(const Matrix& a, const Matrix& b,
                                     Matrix& out) {
  NFV_CHECK(a.rows() == b.rows(),
            "matmul_transa_accumulate row mismatch: " << a.rows() << " vs "
                                                      << b.rows());
  NFV_CHECK(out.rows() == a.cols() && out.cols() == b.cols(),
            "matmul_transa_accumulate output shape mismatch");
  transa_acc_block_dispatch(a, b, out, 0, b.cols());
}

void matmul_transa_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.rows() == b.rows(),
            "matmul_transa_accumulate row mismatch: " << a.rows() << " vs "
                                                      << b.rows());
  NFV_CHECK(out.rows() == a.cols() && out.cols() == b.cols(),
            "matmul_transa_accumulate output shape mismatch");
  if (!use_parallel(a.rows() * a.cols() * b.cols())) {
    transa_acc_block_dispatch(a, b, out, 0, b.cols());
    return;
  }
  nfv::util::ThreadPool& pool = nfv::util::global_pool();
  const std::size_t blocks = std::min(b.cols(), pool.size() * 4);
  const std::size_t block = (b.cols() + blocks - 1) / blocks;
  pool.parallel_for(0, blocks, [&](std::size_t bi) {
    const std::size_t c0 = bi * block;
    const std::size_t c1 = std::min(c0 + block, b.cols());
    if (c0 < c1) transa_acc_block_dispatch(a, b, out, c0, c1);
  });
}

void add_row_vector(Matrix& m, const Matrix& row) {
  NFV_CHECK(row.rows() == 1 && row.cols() == m.cols(),
            "add_row_vector expects a 1×cols vector");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* mrow = m.row(r);
    const float* v = row.row(0);
    for (std::size_t c = 0; c < m.cols(); ++c) mrow[c] += v[c];
  }
}

void sum_rows_accumulate(const Matrix& m, Matrix& out) {
  NFV_CHECK(out.rows() == 1 && out.cols() == m.cols(),
            "sum_rows_accumulate expects a 1×cols accumulator");
  float* acc = out.row(0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* mrow = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) acc[c] += mrow[c];
  }
}

}  // namespace nfv::ml
