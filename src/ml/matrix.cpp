#include "ml/matrix.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace nfv::ml {

namespace {

/// Minimum multiply-accumulate count before the blocked-parallel kernels
/// pay for themselves; below this the serial kernels win outright.
constexpr std::size_t kParallelMinWork = 1u << 16;

/// Parallelize only for large products, only when a multi-thread pool is
/// available, and never from inside an already parallel region (the
/// per-group pipeline fan-out owns the threads there).
bool use_parallel(std::size_t work) {
  return work >= kParallelMinWork &&
         !nfv::util::ThreadPool::in_parallel_region() &&
         nfv::util::global_pool().size() > 1;
}

/// One row of out = a * b, i-k-j order (streams b and out contiguously).
inline void matmul_row(const Matrix& a, const Matrix& b, Matrix& out,
                       std::size_t i) {
  const float* arow = a.row(i);
  float* orow = out.row(i);
  for (std::size_t k = 0; k < a.cols(); ++k) {
    const float aik = arow[k];
    if (aik == 0.0f) continue;
    const float* brow = b.row(k);
    for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
  }
}

/// One row of out = a * bᵀ.
inline void matmul_transb_row(const Matrix& a, const Matrix& b, Matrix& out,
                              std::size_t i) {
  const float* arow = a.row(i);
  float* orow = out.row(i);
  for (std::size_t j = 0; j < b.rows(); ++j) {
    const float* brow = b.row(j);
    float dot = 0.0f;
    for (std::size_t k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
    orow[j] = dot;
  }
}

/// Column block [c0, c1) of out += aᵀ * b. Each out element accumulates in
/// the same r-ascending order as the serial kernel.
inline void transa_accumulate_cols(const Matrix& a, const Matrix& b,
                                   Matrix& out, std::size_t c0,
                                   std::size_t c1) {
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    const float* brow = b.row(r);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float ark = arow[k];
      if (ark == 0.0f) continue;
      float* orow = out.row(k);
      for (std::size_t c = c0; c < c1; ++c) orow[c] += ark * brow[c];
    }
  }
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(float value) {
  for (float& x : data_) x = value;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::add(const Matrix& other) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::add shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::add_scaled(const Matrix& other, float k) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += k * other.data_[i];
  }
}

void Matrix::scale(float k) {
  for (float& x : data_) x *= k;
}

void Matrix::hadamard(const Matrix& other) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::hadamard shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

double Matrix::squared_norm() const {
  double sum = 0.0;
  for (float x : data_) sum += static_cast<double>(x) * x;
  return sum;
}

void matmul_serial(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.rows(), "matmul inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.rows());
  out.resize(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) matmul_row(a, b, out, i);
}

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.rows(), "matmul inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.rows());
  if (!use_parallel(a.rows() * a.cols() * b.cols())) {
    matmul_serial(a, b, out);
    return;
  }
  out.resize(a.rows(), b.cols());
  nfv::util::global_pool().parallel_for(
      0, a.rows(), [&](std::size_t i) { matmul_row(a, b, out, i); });
}

void matmul_transb_serial(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.cols(), "matmul_transb inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.cols());
  out.resize(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) matmul_transb_row(a, b, out, i);
}

void matmul_transb(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.cols(), "matmul_transb inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.cols());
  if (!use_parallel(a.rows() * a.cols() * b.rows())) {
    matmul_transb_serial(a, b, out);
    return;
  }
  out.resize(a.rows(), b.rows());
  nfv::util::global_pool().parallel_for(
      0, a.rows(), [&](std::size_t i) { matmul_transb_row(a, b, out, i); });
}

void matmul_transa_accumulate_serial(const Matrix& a, const Matrix& b,
                                     Matrix& out) {
  NFV_CHECK(a.rows() == b.rows(),
            "matmul_transa_accumulate row mismatch: " << a.rows() << " vs "
                                                      << b.rows());
  NFV_CHECK(out.rows() == a.cols() && out.cols() == b.cols(),
            "matmul_transa_accumulate output shape mismatch");
  transa_accumulate_cols(a, b, out, 0, b.cols());
}

void matmul_transa_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.rows() == b.rows(),
            "matmul_transa_accumulate row mismatch: " << a.rows() << " vs "
                                                      << b.rows());
  NFV_CHECK(out.rows() == a.cols() && out.cols() == b.cols(),
            "matmul_transa_accumulate output shape mismatch");
  if (!use_parallel(a.rows() * a.cols() * b.cols())) {
    transa_accumulate_cols(a, b, out, 0, b.cols());
    return;
  }
  nfv::util::ThreadPool& pool = nfv::util::global_pool();
  const std::size_t blocks = std::min(b.cols(), pool.size() * 4);
  const std::size_t block = (b.cols() + blocks - 1) / blocks;
  pool.parallel_for(0, blocks, [&](std::size_t bi) {
    const std::size_t c0 = bi * block;
    const std::size_t c1 = std::min(c0 + block, b.cols());
    if (c0 < c1) transa_accumulate_cols(a, b, out, c0, c1);
  });
}

void add_row_vector(Matrix& m, const Matrix& row) {
  NFV_CHECK(row.rows() == 1 && row.cols() == m.cols(),
            "add_row_vector expects a 1×cols vector");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* mrow = m.row(r);
    const float* v = row.row(0);
    for (std::size_t c = 0; c < m.cols(); ++c) mrow[c] += v[c];
  }
}

void sum_rows_accumulate(const Matrix& m, Matrix& out) {
  NFV_CHECK(out.rows() == 1 && out.cols() == m.cols(),
            "sum_rows_accumulate expects a 1×cols accumulator");
  float* acc = out.row(0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* mrow = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) acc[c] += mrow[c];
  }
}

}  // namespace nfv::ml
