#include "ml/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "util/check.h"
#include "util/thread_pool.h"

namespace nfv::ml {

namespace {

/// Minimum multiply-accumulate count before the blocked-parallel kernels
/// pay for themselves; below this the serial kernels win outright. Sized
/// so the per-timestep training GEMMs (a 64-row batch against one layer's
/// weights is ~4e5 MACs) stay on the calling thread — BPTT parallelizes
/// across timesteps instead, one fork-join per backward pass rather than
/// one per step — while the fused scoring batches (~1k rows, several
/// MMACs) still shard across the pool.
constexpr std::size_t kParallelMinWork = 1u << 19;

/// Parallelize only for large products, only when a multi-thread pool is
/// available, and never from inside an already parallel region (the
/// per-group pipeline fan-out owns the threads there).
bool use_parallel(std::size_t work) {
  return work >= kParallelMinWork &&
         !nfv::util::ThreadPool::in_parallel_region() &&
         nfv::util::global_pool().size() > 1;
}

#if defined(__x86_64__) && defined(__GNUC__)
#define NFV_X86_MULTIVERSION 1

bool has_avx2_fma() {
  static const bool value =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return value;
}
#endif

bool default_simd_enabled() {
#ifdef NFV_X86_MULTIVERSION
  if (std::getenv("NFVPRED_NO_AVX2") != nullptr) return false;
  return has_avx2_fma();
#else
  return false;
#endif
}

/// Read by kernel dispatchers on worker threads; written only from
/// single-threaded control points (startup, bench/test mode switches).
/// Atomic so the cross-thread reads are race-free under TSan.
std::atomic<bool>& simd_flag() {
  static std::atomic<bool> flag(default_simd_enabled());
  return flag;
}

/// One row of out = a * b, i-k-j order (streams b and out contiguously);
/// out row must start zeroed. Each out element accumulates in k-ascending
/// order — the same chain every packed/tiled variant below uses.
inline void matmul_row(const Matrix& a, const Matrix& b, Matrix& out,
                       std::size_t i) {
  const float* arow = a.row(i);
  float* orow = out.row(i);
  for (std::size_t k = 0; k < a.cols(); ++k) {
    const float aik = arow[k];
    const float* brow = b.row(k);
    for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
  }
}

/// One row of out = a * bᵀ. always_inline so the ISA-targeted wrappers
/// below compile this body with their own instruction set (and FMA
/// contraction) instead of calling a baseline copy.
__attribute__((always_inline)) inline void matmul_transb_row(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  const float* arow = a.row(i);
  float* orow = out.row(i);
  for (std::size_t j = 0; j < b.rows(); ++j) {
    const float* brow = b.row(j);
    float dot = 0.0f;
    for (std::size_t k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
    orow[j] = dot;
  }
}

/// Panel width of the packed kernels (output columns per tile).
constexpr std::size_t kPanelCols = 8;

/// Pack b (the weight matrix of out = a * bᵀ) into 8-row k-major panels:
/// panel jp holds b rows [8jp, 8jp+8) interleaved as [k][jj], so the inner
/// product loop reads 8 weights for 8 output columns from one contiguous
/// 32-byte slot — the layout auto-vectorizes to SIMD with each lane an
/// independent accumulator chain. Pack cost is O(b.size()) and is
/// amortized over every row of a, which is exactly what a fused scoring
/// batch provides and a single-window batch cannot.
void pack_transb_panels(const Matrix& b, std::vector<float>& packed) {
  const std::size_t cols = b.cols();
  const std::size_t panels = b.rows() / kPanelCols;
  packed.resize(panels * cols * kPanelCols);
  for (std::size_t jp = 0; jp < panels; ++jp) {
    float* panel = packed.data() + jp * cols * kPanelCols;
    for (std::size_t k = 0; k < cols; ++k) {
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
        panel[kPanelCols * k + jj] = b.row(kPanelCols * jp + jj)[k];
      }
    }
  }
}

/// Pack the B operand (K×C) of the *plain* product out = a·b into the
/// same 8-column k-major panel layout: panel jp holds b columns
/// [8jp, 8jp+8) interleaved as [k][jj]. Identical consumption pattern to
/// the transb panels, so the compute kernels mirror each other.
void pack_matmul_b_panels(const Matrix& b, std::vector<float>& packed) {
  const std::size_t kn = b.rows();
  const std::size_t panels = b.cols() / kPanelCols;
  packed.resize(panels * kn * kPanelCols);
  for (std::size_t jp = 0; jp < panels; ++jp) {
    float* panel = packed.data() + jp * kn * kPanelCols;
    for (std::size_t k = 0; k < kn; ++k) {
      const float* brow = b.row(k) + kPanelCols * jp;
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
        panel[kPanelCols * k + jj] = brow[jj];
      }
    }
  }
}

/// Rows [i0, i1) of out = a * bᵀ with b pre-packed into panels: 4 a-rows ×
/// one 8-column panel per tile, 32 accumulators. Every acc chain is
/// accumulated in the same k-ascending order as matmul_transb_row, so
/// results are bit-identical to the row-at-a-time kernel for any row
/// blocking and any thread count.
__attribute__((always_inline)) inline void matmul_transb_rows_packed(
    const Matrix& a, const Matrix& b, const float* packed, Matrix& out,
    std::size_t i0, std::size_t i1) {
  const std::size_t cols = a.cols();
  const std::size_t jn = b.rows();
  const std::size_t panels = jn / kPanelCols;
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a.row(i);
    const float* a1 = a.row(i + 1);
    const float* a2 = a.row(i + 2);
    const float* a3 = a.row(i + 3);
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const float* panel = packed + jp * cols * kPanelCols;
      float acc0[kPanelCols] = {}, acc1[kPanelCols] = {};
      float acc2[kPanelCols] = {}, acc3[kPanelCols] = {};
      for (std::size_t k = 0; k < cols; ++k) {
        const float* bv = panel + kPanelCols * k;
        const float av0 = a0[k], av1 = a1[k], av2 = a2[k], av3 = a3[k];
        for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
          acc0[jj] += av0 * bv[jj];
          acc1[jj] += av1 * bv[jj];
          acc2[jj] += av2 * bv[jj];
          acc3[jj] += av3 * bv[jj];
        }
      }
      float* o0 = out.row(i) + kPanelCols * jp;
      float* o1 = out.row(i + 1) + kPanelCols * jp;
      float* o2 = out.row(i + 2) + kPanelCols * jp;
      float* o3 = out.row(i + 3) + kPanelCols * jp;
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
        o0[jj] = acc0[jj];
        o1[jj] = acc1[jj];
        o2[jj] = acc2[jj];
        o3[jj] = acc3[jj];
      }
    }
    for (std::size_t j = kPanelCols * panels; j < jn; ++j) {
      const float* brow = b.row(j);
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t k = 0; k < cols; ++k) {
        const float bk = brow[k];
        d0 += a0[k] * bk;
        d1 += a1[k] * bk;
        d2 += a2[k] * bk;
        d3 += a3[k] * bk;
      }
      out.row(i)[j] = d0;
      out.row(i + 1)[j] = d1;
      out.row(i + 2)[j] = d2;
      out.row(i + 3)[j] = d3;
    }
  }
  for (; i < i1; ++i) matmul_transb_row(a, b, out, i);
}

/// Rows [i0, i1) of out = a * b with b pre-packed into 8-column k-major
/// panels. Same 4-row × 8-column register tiling as the transb kernel;
/// every out element keeps the k-ascending chain of matmul_row, so the
/// packed, row-at-a-time, and any row-blocked parallel variants all agree
/// bit for bit.
inline void matmul_rows_bpacked(const Matrix& a, const Matrix& b,
                                const float* packed, Matrix& out,
                                std::size_t i0, std::size_t i1) {
  const std::size_t kn = a.cols();
  const std::size_t cn = b.cols();
  const std::size_t panels = cn / kPanelCols;
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a.row(i);
    const float* a1 = a.row(i + 1);
    const float* a2 = a.row(i + 2);
    const float* a3 = a.row(i + 3);
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const float* panel = packed + jp * kn * kPanelCols;
      float acc0[kPanelCols] = {}, acc1[kPanelCols] = {};
      float acc2[kPanelCols] = {}, acc3[kPanelCols] = {};
      for (std::size_t k = 0; k < kn; ++k) {
        const float* bv = panel + kPanelCols * k;
        const float av0 = a0[k], av1 = a1[k], av2 = a2[k], av3 = a3[k];
        for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
          acc0[jj] += av0 * bv[jj];
          acc1[jj] += av1 * bv[jj];
          acc2[jj] += av2 * bv[jj];
          acc3[jj] += av3 * bv[jj];
        }
      }
      float* o0 = out.row(i) + kPanelCols * jp;
      float* o1 = out.row(i + 1) + kPanelCols * jp;
      float* o2 = out.row(i + 2) + kPanelCols * jp;
      float* o3 = out.row(i + 3) + kPanelCols * jp;
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
        o0[jj] = acc0[jj];
        o1[jj] = acc1[jj];
        o2[jj] = acc2[jj];
        o3[jj] = acc3[jj];
      }
    }
    for (std::size_t j = kPanelCols * panels; j < cn; ++j) {
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t k = 0; k < kn; ++k) {
        const float bk = b.row(k)[j];
        d0 += a0[k] * bk;
        d1 += a1[k] * bk;
        d2 += a2[k] * bk;
        d3 += a3[k] * bk;
      }
      out.row(i)[j] = d0;
      out.row(i + 1)[j] = d1;
      out.row(i + 2)[j] = d2;
      out.row(i + 3)[j] = d3;
    }
  }
  for (; i < i1; ++i) matmul_row(a, b, out, i);
}

/// Column block [c0, c1) of out += aᵀ * b, register-tiled 4 out-rows × 8
/// out-columns. Each out element adds a partial sum accumulated from zero
/// in r-ascending order (then one `out += sum`), so the result is
/// independent of the k/c tiling and of any column-block parallel split.
inline void transa_acc_block(const Matrix& a, const Matrix& b, Matrix& out,
                             std::size_t c0, std::size_t c1) {
  const std::size_t rn = a.rows();
  const std::size_t kn = a.cols();
  std::size_t k = 0;
  for (; k + 4 <= kn; k += 4) {
    std::size_t c = c0;
    for (; c + kPanelCols <= c1; c += kPanelCols) {
      float acc0[kPanelCols] = {}, acc1[kPanelCols] = {};
      float acc2[kPanelCols] = {}, acc3[kPanelCols] = {};
      for (std::size_t r = 0; r < rn; ++r) {
        const float* ar = a.row(r) + k;
        const float* bv = b.row(r) + c;
        const float a0 = ar[0], a1 = ar[1], a2 = ar[2], a3 = ar[3];
        for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
          acc0[jj] += a0 * bv[jj];
          acc1[jj] += a1 * bv[jj];
          acc2[jj] += a2 * bv[jj];
          acc3[jj] += a3 * bv[jj];
        }
      }
      float* o0 = out.row(k) + c;
      float* o1 = out.row(k + 1) + c;
      float* o2 = out.row(k + 2) + c;
      float* o3 = out.row(k + 3) + c;
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
        o0[jj] += acc0[jj];
        o1[jj] += acc1[jj];
        o2[jj] += acc2[jj];
        o3[jj] += acc3[jj];
      }
    }
    for (; c < c1; ++c) {
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t r = 0; r < rn; ++r) {
        const float* ar = a.row(r) + k;
        const float bc = b.row(r)[c];
        d0 += ar[0] * bc;
        d1 += ar[1] * bc;
        d2 += ar[2] * bc;
        d3 += ar[3] * bc;
      }
      out.row(k)[c] += d0;
      out.row(k + 1)[c] += d1;
      out.row(k + 2)[c] += d2;
      out.row(k + 3)[c] += d3;
    }
  }
  for (; k < kn; ++k) {
    std::size_t c = c0;
    for (; c + kPanelCols <= c1; c += kPanelCols) {
      float acc[kPanelCols] = {};
      for (std::size_t r = 0; r < rn; ++r) {
        const float ak = a.row(r)[k];
        const float* bv = b.row(r) + c;
        for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
          acc[jj] += ak * bv[jj];
        }
      }
      float* orow = out.row(k) + c;
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) orow[jj] += acc[jj];
    }
    for (; c < c1; ++c) {
      float d = 0.0f;
      for (std::size_t r = 0; r < rn; ++r) {
        d += a.row(r)[k] * b.row(r)[c];
      }
      out.row(k)[c] += d;
    }
  }
}

/// Minimum a-row count before packing b into panels pays for itself; below
/// this the plain row kernel is used (a 1-window batch never packs).
constexpr std::size_t kPackMinRows = 8;

/// Reused pack buffer (packing happens on the calling thread before any
/// parallel fan-out; workers only read it).
thread_local std::vector<float> tl_packed_b;

// ISA dispatch for the packed kernels. Both the single-row reference
// kernels and the packed batch kernels are cloned for AVX2+FMA, and ALL
// take the same runtime branch (simd_kernels_enabled): every accumulator
// chain then uses fused multiply-add on every path, so a window scored
// alone still matches a window scored inside a fused batch bit for bit,
// and a gradient accumulated serially matches any tiled/parallel variant.
// (Results may differ between machines with and without FMA — and between
// the default and NFVPRED_NO_AVX2 modes — determinism is per-machine and
// per-mode, the same guarantee the baseline kernels give.)
#ifdef NFV_X86_MULTIVERSION

/// One row of out = a * bᵀ with every chain step an explicit fused
/// multiply-add (`__builtin_fmaf` = one vfmadd instruction under the fma
/// target). The compiler cannot split or partially contract the chain, so
/// this is bit-identical to the fmadd lanes of the packed AVX2 kernel.
__attribute__((always_inline)) inline void transb_row_fma_body(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  const float* arow = a.row(i);
  float* orow = out.row(i);
  for (std::size_t j = 0; j < b.rows(); ++j) {
    const float* brow = b.row(j);
    float dot = 0.0f;
    for (std::size_t k = 0; k < a.cols(); ++k) {
      dot = __builtin_fmaf(arow[k], brow[k], dot);
    }
    orow[j] = dot;
  }
}

__attribute__((target("avx2,fma"))) void matmul_transb_row_fma(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  transb_row_fma_body(a, b, out, i);
}

/// One row of out = a * b with explicit fused multiply-adds, the scalar
/// reference for the packed FMA kernel below.
__attribute__((always_inline)) inline void matmul_row_fma_body(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  const float* arow = a.row(i);
  float* orow = out.row(i);
  for (std::size_t k = 0; k < a.cols(); ++k) {
    const float aik = arow[k];
    const float* brow = b.row(k);
    for (std::size_t j = 0; j < b.cols(); ++j) {
      orow[j] = __builtin_fmaf(aik, brow[j], orow[j]);
    }
  }
}

__attribute__((target("avx2,fma"))) void matmul_row_fma(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  matmul_row_fma_body(a, b, out, i);
}

/// Hand-vectorized AVX2+FMA packed kernel: one 256-bit fmadd per
/// (a-row, k) covers a full 8-column panel, so each accumulator lane is
/// exactly the chain `acc = fma(a[k]*b[k], acc)` in k order — the same
/// fused operation the contracted scalar row kernel performs.
__attribute__((target("avx2,fma"))) void matmul_transb_rows_packed_fma(
    const Matrix& a, const Matrix& b, const float* packed, Matrix& out,
    std::size_t i0, std::size_t i1) {
  const std::size_t cols = a.cols();
  const std::size_t jn = b.rows();
  const std::size_t panels = jn / kPanelCols;
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a.row(i);
    const float* a1 = a.row(i + 1);
    const float* a2 = a.row(i + 2);
    const float* a3 = a.row(i + 3);
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const float* panel = packed + jp * cols * kPanelCols;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      for (std::size_t k = 0; k < cols; ++k) {
        const __m256 bv = _mm256_loadu_ps(panel + kPanelCols * k);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[k]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[k]), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[k]), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[k]), bv, acc3);
      }
      _mm256_storeu_ps(out.row(i) + kPanelCols * jp, acc0);
      _mm256_storeu_ps(out.row(i + 1) + kPanelCols * jp, acc1);
      _mm256_storeu_ps(out.row(i + 2) + kPanelCols * jp, acc2);
      _mm256_storeu_ps(out.row(i + 3) + kPanelCols * jp, acc3);
    }
    for (std::size_t j = kPanelCols * panels; j < jn; ++j) {
      const float* brow = b.row(j);
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t k = 0; k < cols; ++k) {
        const float bk = brow[k];
        d0 = __builtin_fmaf(a0[k], bk, d0);
        d1 = __builtin_fmaf(a1[k], bk, d1);
        d2 = __builtin_fmaf(a2[k], bk, d2);
        d3 = __builtin_fmaf(a3[k], bk, d3);
      }
      out.row(i)[j] = d0;
      out.row(i + 1)[j] = d1;
      out.row(i + 2)[j] = d2;
      out.row(i + 3)[j] = d3;
    }
  }
  for (; i < i1; ++i) transb_row_fma_body(a, b, out, i);
}

/// AVX2+FMA clone of matmul_rows_bpacked (plain out = a·b, packed B).
__attribute__((target("avx2,fma"))) void matmul_rows_bpacked_fma(
    const Matrix& a, const Matrix& b, const float* packed, Matrix& out,
    std::size_t i0, std::size_t i1) {
  const std::size_t kn = a.cols();
  const std::size_t cn = b.cols();
  const std::size_t panels = cn / kPanelCols;
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a.row(i);
    const float* a1 = a.row(i + 1);
    const float* a2 = a.row(i + 2);
    const float* a3 = a.row(i + 3);
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const float* panel = packed + jp * kn * kPanelCols;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      for (std::size_t k = 0; k < kn; ++k) {
        const __m256 bv = _mm256_loadu_ps(panel + kPanelCols * k);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[k]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[k]), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[k]), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[k]), bv, acc3);
      }
      _mm256_storeu_ps(out.row(i) + kPanelCols * jp, acc0);
      _mm256_storeu_ps(out.row(i + 1) + kPanelCols * jp, acc1);
      _mm256_storeu_ps(out.row(i + 2) + kPanelCols * jp, acc2);
      _mm256_storeu_ps(out.row(i + 3) + kPanelCols * jp, acc3);
    }
    for (std::size_t j = kPanelCols * panels; j < cn; ++j) {
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t k = 0; k < kn; ++k) {
        const float bk = b.row(k)[j];
        d0 = __builtin_fmaf(a0[k], bk, d0);
        d1 = __builtin_fmaf(a1[k], bk, d1);
        d2 = __builtin_fmaf(a2[k], bk, d2);
        d3 = __builtin_fmaf(a3[k], bk, d3);
      }
      out.row(i)[j] = d0;
      out.row(i + 1)[j] = d1;
      out.row(i + 2)[j] = d2;
      out.row(i + 3)[j] = d3;
    }
  }
  for (; i < i1; ++i) matmul_row_fma_body(a, b, out, i);
}

/// AVX2+FMA clone of transa_acc_block (weight-gradient accumulation). The
/// 4×8 register tile becomes four ymm accumulators fed by one broadcast
/// fmadd per (r, out-row); the final `out += sum` is one vector add per
/// lane, matching the scalar epilogue exactly.
__attribute__((target("avx2,fma"))) void transa_acc_block_fma(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t c0,
    std::size_t c1) {
  const std::size_t rn = a.rows();
  const std::size_t kn = a.cols();
  std::size_t k = 0;
  for (; k + 4 <= kn; k += 4) {
    std::size_t c = c0;
    for (; c + kPanelCols <= c1; c += kPanelCols) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      for (std::size_t r = 0; r < rn; ++r) {
        const float* ar = a.row(r) + k;
        const __m256 bv = _mm256_loadu_ps(b.row(r) + c);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(ar[0]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(ar[1]), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(ar[2]), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(ar[3]), bv, acc3);
      }
      float* o0 = out.row(k) + c;
      float* o1 = out.row(k + 1) + c;
      float* o2 = out.row(k + 2) + c;
      float* o3 = out.row(k + 3) + c;
      _mm256_storeu_ps(o0, _mm256_add_ps(_mm256_loadu_ps(o0), acc0));
      _mm256_storeu_ps(o1, _mm256_add_ps(_mm256_loadu_ps(o1), acc1));
      _mm256_storeu_ps(o2, _mm256_add_ps(_mm256_loadu_ps(o2), acc2));
      _mm256_storeu_ps(o3, _mm256_add_ps(_mm256_loadu_ps(o3), acc3));
    }
    for (; c < c1; ++c) {
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t r = 0; r < rn; ++r) {
        const float* ar = a.row(r) + k;
        const float bc = b.row(r)[c];
        d0 = __builtin_fmaf(ar[0], bc, d0);
        d1 = __builtin_fmaf(ar[1], bc, d1);
        d2 = __builtin_fmaf(ar[2], bc, d2);
        d3 = __builtin_fmaf(ar[3], bc, d3);
      }
      out.row(k)[c] += d0;
      out.row(k + 1)[c] += d1;
      out.row(k + 2)[c] += d2;
      out.row(k + 3)[c] += d3;
    }
  }
  for (; k < kn; ++k) {
    std::size_t c = c0;
    for (; c + kPanelCols <= c1; c += kPanelCols) {
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t r = 0; r < rn; ++r) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(a.row(r)[k]),
                              _mm256_loadu_ps(b.row(r) + c), acc);
      }
      float* orow = out.row(k) + c;
      _mm256_storeu_ps(orow, _mm256_add_ps(_mm256_loadu_ps(orow), acc));
    }
    for (; c < c1; ++c) {
      float d = 0.0f;
      for (std::size_t r = 0; r < rn; ++r) {
        d = __builtin_fmaf(a.row(r)[k], b.row(r)[c], d);
      }
      out.row(k)[c] += d;
    }
  }
}
#endif

void transb_row_dispatch(const Matrix& a, const Matrix& b, Matrix& out,
                         std::size_t i) {
#ifdef NFV_X86_MULTIVERSION
  if (simd_kernels_enabled()) {
    matmul_transb_row_fma(a, b, out, i);
    return;
  }
#endif
  matmul_transb_row(a, b, out, i);
}

void transb_rows_packed_dispatch(const Matrix& a, const Matrix& b,
                                 const float* packed, Matrix& out,
                                 std::size_t i0, std::size_t i1) {
#ifdef NFV_X86_MULTIVERSION
  if (simd_kernels_enabled()) {
    matmul_transb_rows_packed_fma(a, b, packed, out, i0, i1);
    return;
  }
#endif
  matmul_transb_rows_packed(a, b, packed, out, i0, i1);
}

void matmul_row_dispatch(const Matrix& a, const Matrix& b, Matrix& out,
                         std::size_t i) {
#ifdef NFV_X86_MULTIVERSION
  if (simd_kernels_enabled()) {
    matmul_row_fma(a, b, out, i);
    return;
  }
#endif
  matmul_row(a, b, out, i);
}

void matmul_rows_bpacked_dispatch(const Matrix& a, const Matrix& b,
                                  const float* packed, Matrix& out,
                                  std::size_t i0, std::size_t i1) {
#ifdef NFV_X86_MULTIVERSION
  if (simd_kernels_enabled()) {
    matmul_rows_bpacked_fma(a, b, packed, out, i0, i1);
    return;
  }
#endif
  matmul_rows_bpacked(a, b, packed, out, i0, i1);
}

void transa_acc_block_dispatch(const Matrix& a, const Matrix& b, Matrix& out,
                               std::size_t c0, std::size_t c1) {
#ifdef NFV_X86_MULTIVERSION
  if (simd_kernels_enabled()) {
    transa_acc_block_fma(a, b, out, c0, c1);
    return;
  }
#endif
  transa_acc_block(a, b, out, c0, c1);
}

// ---------------------------------------------------------------------------
// int8 quantized kernels (matmul_quant family).
//
// The reduction is exact int32 arithmetic, so unlike the fp32 kernels there
// is no per-tier accumulation order to preserve — any tiling gives the same
// integer. The only float work is the per-row activation quantization
// (done once, on the calling thread, before any fan-out) and the dequant
// epilogue, which is the fixed two-rounding expression
//     out = float(iacc - zp·col_sum) * (a_scale * b_scale)
// on every tier; elementwise float ops have no reassociation freedom, so
// the AVX2 and baseline builds of that expression agree bit for bit.
// ---------------------------------------------------------------------------

/// k-depth of one packed int8 group (the vpmaddubsw reduction quad).
constexpr std::size_t kQuantK = 4;

/// Round-to-nearest-even via the 1.5·2^23 magic constant: exact for
/// |x| < 2^22 (every quantized code is within ±128), branch-free, and
/// independent of libm — the same bits on every build.
inline std::int32_t round_nearest_i32(float x) {
  constexpr float kMagic = 12582912.0f;  // 1.5 * 2^23
  return static_cast<std::int32_t>((x + kMagic) - kMagic);
}

/// Quantize one activation row to unsigned 7-bit codes with a per-row
/// asymmetric scale/zero-point — the scalar reference tier. The [0, 127]
/// code range (not [0, 255]) is what makes the AVX2 GEMM exact: every
/// vpmaddubsw pair sum is at most 2·127·127 = 32258 < 2^15, so the i16
/// intermediate never saturates and SIMD equals the serial int32
/// reference. The quantized range always brackets 0 (lo ≤ 0 ≤ hi), so
/// the zero point lands in [0, 127] and an all-zero row round-trips to
/// exact zeros.
void quantize_activation_row_scalar(const float* ar, std::size_t kn,
                                    std::size_t kpad, std::uint8_t* q,
                                    float* sa, std::int32_t* zp) {
  float lo = 0.0f, hi = 0.0f;
  for (std::size_t k = 0; k < kn; ++k) {
    lo = std::min(lo, ar[k]);
    hi = std::max(hi, ar[k]);
  }
  const float range = hi - lo;
  if (range <= 0.0f) {
    *sa = 1.0f;
    *zp = 0;
    std::memset(q, 0, kpad);
    return;
  }
  const float inv = 127.0f / range;
  const std::int32_t z = std::clamp(round_nearest_i32(-lo * inv), 0, 127);
  for (std::size_t k = 0; k < kn; ++k) {
    const std::int32_t v = round_nearest_i32(ar[k] * inv) + z;
    q[k] = static_cast<std::uint8_t>(std::clamp(v, 0, 127));
  }
  std::memset(q + kn, 0, kpad - kn);
  *sa = range / 127.0f;
  *zp = z;
}

#ifdef NFV_X86_MULTIVERSION
/// AVX2 activation quantizer. Bit-identical to the scalar tier by
/// construction: min/max and the ×inv multiply are exact IEEE ops in any
/// order, and vcvtps2dq rounds to nearest-even — the same rounding the
/// scalar tier gets from the 1.5·2^23 magic constant (exact for the
/// |x| ≤ ~127 range every code lives in). So toggling SIMD never changes
/// the codes, and the cross-tier GEMM identity holds end to end.
__attribute__((target("avx2"))) void quantize_activation_rows_avx2(
    const Matrix& a, std::size_t kpad, std::uint8_t* qa, float* sa,
    std::int32_t* zp) {
  const std::size_t kn = a.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* ar = a.row(i);
    std::uint8_t* q = qa + i * kpad;
    __m256 vlo = _mm256_setzero_ps();  // seeds match the scalar lo=hi=0
    __m256 vhi = _mm256_setzero_ps();
    std::size_t k = 0;
    for (; k + 8 <= kn; k += 8) {
      const __m256 v = _mm256_loadu_ps(ar + k);
      vlo = _mm256_min_ps(vlo, v);
      vhi = _mm256_max_ps(vhi, v);
    }
    __m128 l4 = _mm_min_ps(_mm256_castps256_ps128(vlo),
                           _mm256_extractf128_ps(vlo, 1));
    l4 = _mm_min_ps(l4, _mm_movehl_ps(l4, l4));
    l4 = _mm_min_ss(l4, _mm_shuffle_ps(l4, l4, 1));
    float lo = _mm_cvtss_f32(l4);
    __m128 h4 = _mm_max_ps(_mm256_castps256_ps128(vhi),
                           _mm256_extractf128_ps(vhi, 1));
    h4 = _mm_max_ps(h4, _mm_movehl_ps(h4, h4));
    h4 = _mm_max_ss(h4, _mm_shuffle_ps(h4, h4, 1));
    float hi = _mm_cvtss_f32(h4);
    for (; k < kn; ++k) {
      lo = std::min(lo, ar[k]);
      hi = std::max(hi, ar[k]);
    }
    const float range = hi - lo;
    if (range <= 0.0f) {
      sa[i] = 1.0f;
      zp[i] = 0;
      std::memset(q, 0, kpad);
      continue;
    }
    const float inv = 127.0f / range;
    const std::int32_t z = std::clamp(round_nearest_i32(-lo * inv), 0, 127);
    const __m256 vinv = _mm256_set1_ps(inv);
    const __m256i vz = _mm256_set1_epi32(z);
    const __m256i v127 = _mm256_set1_epi32(127);
    const __m256i vzero = _mm256_setzero_si256();
    k = 0;
    for (; k + 16 <= kn; k += 16) {
      __m256i q0 =
          _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(ar + k), vinv));
      __m256i q1 = _mm256_cvtps_epi32(
          _mm256_mul_ps(_mm256_loadu_ps(ar + k + 8), vinv));
      q0 = _mm256_min_epi32(
          _mm256_max_epi32(_mm256_add_epi32(q0, vz), vzero), v127);
      q1 = _mm256_min_epi32(
          _mm256_max_epi32(_mm256_add_epi32(q1, vz), vzero), v127);
      // packs interleaves 128-bit lanes; permute restores element order.
      __m256i p = _mm256_packs_epi32(q0, q1);
      p = _mm256_permute4x64_epi64(p, 0xD8);
      const __m128i bytes =
          _mm_packus_epi16(_mm256_castsi256_si128(p),
                           _mm256_extracti128_si256(p, 1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(q + k), bytes);
    }
    for (; k < kn; ++k) {
      const std::int32_t v = round_nearest_i32(ar[k] * inv) + z;
      q[k] = static_cast<std::uint8_t>(std::clamp(v, 0, 127));
    }
    std::memset(q + kn, 0, kpad - kn);
    sa[i] = range / 127.0f;
    zp[i] = z;
  }
}
#endif

/// Quantize every row of `a` (see the per-tier functions above; the two
/// tiers produce identical codes, so this dispatch is a pure speed knob).
void quantize_activation_rows(const Matrix& a, std::size_t kpad,
                              std::uint8_t* qa, float* sa,
                              std::int32_t* zp) {
#ifdef NFV_X86_MULTIVERSION
  if (simd_kernels_enabled()) {
    quantize_activation_rows_avx2(a, kpad, qa, sa, zp);
    return;
  }
#endif
  const std::size_t kn = a.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    quantize_activation_row_scalar(a.row(i), kn, kpad, qa + i * kpad, sa + i,
                                   zp + i);
  }
}

/// Activation-quantization scratch: filled on the calling thread before
/// any parallel fan-out; workers only read through captured pointers.
thread_local std::vector<std::uint8_t> tl_quant_a;
thread_local std::vector<float> tl_quant_sa;
thread_local std::vector<std::int32_t> tl_quant_zp;

/// Rows [i0, i1) of the quantized product, plain-int reference tier.
/// Walks the packed panels in the same order as the AVX2 kernel; the
/// integer sums are exact so the order is immaterial, and the dequant
/// epilogue is the canonical expression shared with the SIMD tier.
void quant_rows_serial(const std::uint8_t* qa, const float* sa,
                       const std::int32_t* zp, std::size_t kpad,
                       const QuantizedMatrix& qb, Matrix& out,
                       std::size_t i0, std::size_t i1) {
  const std::size_t groups = kpad / kQuantK;
  const std::size_t panels = qb.rows / kPanelCols;
  const std::int8_t* tail_base =
      qb.data.data() + panels * kpad * kPanelCols;
  for (std::size_t i = i0; i < i1; ++i) {
    const std::uint8_t* ar = qa + i * kpad;
    float* orow = out.row(i);
    const float sai = sa[i];
    const std::int32_t zpi = zp[i];
    for (std::size_t p = 0; p < panels; ++p) {
      const std::int8_t* panel = qb.data.data() + p * kpad * kPanelCols;
      std::int32_t acc[kPanelCols] = {};
      for (std::size_t g = 0; g < groups; ++g) {
        const std::uint8_t* av = ar + kQuantK * g;
        const std::int8_t* bg = panel + kPanelCols * kQuantK * g;
        for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
          const std::int8_t* bv = bg + kQuantK * jj;
          acc[jj] += static_cast<std::int32_t>(av[0]) * bv[0] +
                     static_cast<std::int32_t>(av[1]) * bv[1] +
                     static_cast<std::int32_t>(av[2]) * bv[2] +
                     static_cast<std::int32_t>(av[3]) * bv[3];
        }
      }
      const float* sc = qb.scales.data() + kPanelCols * p;
      const std::int32_t* cs = qb.col_sums.data() + kPanelCols * p;
      float* o = orow + kPanelCols * p;
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
        o[jj] =
            static_cast<float>(acc[jj] - zpi * cs[jj]) * (sai * sc[jj]);
      }
    }
    for (std::size_t c = panels * kPanelCols; c < qb.rows; ++c) {
      const std::int8_t* bv =
          tail_base + (c - panels * kPanelCols) * kpad;
      std::int32_t acc = 0;
      for (std::size_t k = 0; k < kpad; ++k) {
        acc += static_cast<std::int32_t>(ar[k]) * bv[k];
      }
      orow[c] = static_cast<float>(acc - zpi * qb.col_sums[c]) *
                (sai * qb.scales[c]);
    }
  }
}

#ifdef NFV_X86_MULTIVERSION
/// Broadcast one 4-byte activation quad to all 8 panel lanes. (Free
/// function, not a lambda: GCC does not propagate the target attribute
/// into lambdas defined inside a target("avx2") function.)
__attribute__((target("avx2"))) inline __m256i quant_bcast4(
    const std::uint8_t* p) {
  std::int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return _mm256_set1_epi32(v);
}

/// Dequant epilogue for one row × one panel: the canonical
/// (acc − zp·col_sum) · (sa·scale) expression shared with the serial tier.
__attribute__((target("avx2"))) inline void quant_finish_row(
    __m256i acc, std::int32_t zp, float sa, __m256i cs, __m256 sc,
    float* dst) {
  const __m256i corr = _mm256_mullo_epi32(_mm256_set1_epi32(zp), cs);
  const __m256 f = _mm256_cvtepi32_ps(_mm256_sub_epi32(acc, corr));
  const __m256 s = _mm256_mul_ps(_mm256_set1_ps(sa), sc);
  _mm256_storeu_ps(dst, _mm256_mul_ps(f, s));
}

/// AVX2 tier: one vpmaddubsw + vpmaddwd pair turns a 4-k × 8-channel
/// 32-byte panel block into 8 int32 channel partials; 4 a-rows share
/// each panel load. Unsigned activations ride the first operand,
/// signed weights the second — with u7 codes the i16 intermediate
/// cannot saturate, so this equals quant_rows_serial exactly.
__attribute__((target("avx2"))) void quant_rows_avx2(
    const std::uint8_t* qa, const float* sa, const std::int32_t* zp,
    std::size_t kpad, const QuantizedMatrix& qb, Matrix& out,
    std::size_t i0, std::size_t i1) {
  const std::size_t groups = kpad / kQuantK;
  const std::size_t panels = qb.rows / kPanelCols;
  const std::int8_t* tail_base =
      qb.data.data() + panels * kpad * kPanelCols;
  const __m256i ones = _mm256_set1_epi16(1);
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const std::uint8_t* a0 = qa + i * kpad;
    const std::uint8_t* a1 = qa + (i + 1) * kpad;
    const std::uint8_t* a2 = qa + (i + 2) * kpad;
    const std::uint8_t* a3 = qa + (i + 3) * kpad;
    for (std::size_t p = 0; p < panels; ++p) {
      const std::int8_t* panel = qb.data.data() + p * kpad * kPanelCols;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (std::size_t g = 0; g < groups; ++g) {
        const __m256i bv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            panel + kPanelCols * kQuantK * g));
        acc0 = _mm256_add_epi32(
            acc0,
            _mm256_madd_epi16(
                _mm256_maddubs_epi16(quant_bcast4(a0 + kQuantK * g), bv),
                ones));
        acc1 = _mm256_add_epi32(
            acc1,
            _mm256_madd_epi16(
                _mm256_maddubs_epi16(quant_bcast4(a1 + kQuantK * g), bv),
                ones));
        acc2 = _mm256_add_epi32(
            acc2,
            _mm256_madd_epi16(
                _mm256_maddubs_epi16(quant_bcast4(a2 + kQuantK * g), bv),
                ones));
        acc3 = _mm256_add_epi32(
            acc3,
            _mm256_madd_epi16(
                _mm256_maddubs_epi16(quant_bcast4(a3 + kQuantK * g), bv),
                ones));
      }
      const __m256i cs = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          qb.col_sums.data() + kPanelCols * p));
      const __m256 sc = _mm256_loadu_ps(qb.scales.data() + kPanelCols * p);
      float* obase = out.row(i) + kPanelCols * p;
      quant_finish_row(acc0, zp[i], sa[i], cs, sc, obase);
      quant_finish_row(acc1, zp[i + 1], sa[i + 1], cs, sc,
                       out.row(i + 1) + kPanelCols * p);
      quant_finish_row(acc2, zp[i + 2], sa[i + 2], cs, sc,
                       out.row(i + 2) + kPanelCols * p);
      quant_finish_row(acc3, zp[i + 3], sa[i + 3], cs, sc,
                       out.row(i + 3) + kPanelCols * p);
    }
    for (std::size_t c = panels * kPanelCols; c < qb.rows; ++c) {
      const std::int8_t* bv =
          tail_base + (c - panels * kPanelCols) * kpad;
      std::int32_t d0 = 0, d1 = 0, d2 = 0, d3 = 0;
      for (std::size_t k = 0; k < kpad; ++k) {
        const std::int32_t bk = bv[k];
        d0 += static_cast<std::int32_t>(a0[k]) * bk;
        d1 += static_cast<std::int32_t>(a1[k]) * bk;
        d2 += static_cast<std::int32_t>(a2[k]) * bk;
        d3 += static_cast<std::int32_t>(a3[k]) * bk;
      }
      const float sbc = qb.scales[c];
      const std::int32_t csc = qb.col_sums[c];
      out.row(i)[c] =
          static_cast<float>(d0 - zp[i] * csc) * (sa[i] * sbc);
      out.row(i + 1)[c] =
          static_cast<float>(d1 - zp[i + 1] * csc) * (sa[i + 1] * sbc);
      out.row(i + 2)[c] =
          static_cast<float>(d2 - zp[i + 2] * csc) * (sa[i + 2] * sbc);
      out.row(i + 3)[c] =
          static_cast<float>(d3 - zp[i + 3] * csc) * (sa[i + 3] * sbc);
    }
  }
  for (; i < i1; ++i) {
    const std::uint8_t* ar = qa + i * kpad;
    float* orow = out.row(i);
    const float sai = sa[i];
    const std::int32_t zpi = zp[i];
    for (std::size_t p = 0; p < panels; ++p) {
      const std::int8_t* panel = qb.data.data() + p * kpad * kPanelCols;
      __m256i acc = _mm256_setzero_si256();
      for (std::size_t g = 0; g < groups; ++g) {
        const __m256i bv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            panel + kPanelCols * kQuantK * g));
        acc = _mm256_add_epi32(
            acc,
            _mm256_madd_epi16(
                _mm256_maddubs_epi16(quant_bcast4(ar + kQuantK * g), bv),
                ones));
      }
      const __m256i cs = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          qb.col_sums.data() + kPanelCols * p));
      const __m256 sc = _mm256_loadu_ps(qb.scales.data() + kPanelCols * p);
      quant_finish_row(acc, zpi, sai, cs, sc, orow + kPanelCols * p);
    }
    for (std::size_t c = panels * kPanelCols; c < qb.rows; ++c) {
      const std::int8_t* bv =
          tail_base + (c - panels * kPanelCols) * kpad;
      std::int32_t acc = 0;
      for (std::size_t k = 0; k < kpad; ++k) {
        acc += static_cast<std::int32_t>(ar[k]) * bv[k];
      }
      orow[c] = static_cast<float>(acc - zpi * qb.col_sums[c]) *
                (sai * qb.scales[c]);
    }
  }
}
#endif

void quant_rows_dispatch(const std::uint8_t* qa, const float* sa,
                         const std::int32_t* zp, std::size_t kpad,
                         const QuantizedMatrix& qb, Matrix& out,
                         std::size_t i0, std::size_t i1) {
#ifdef NFV_X86_MULTIVERSION
  if (simd_kernels_enabled()) {
    quant_rows_avx2(qa, sa, zp, kpad, qb, out, i0, i1);
    return;
  }
#endif
  quant_rows_serial(qa, sa, zp, kpad, qb, out, i0, i1);
}

}  // namespace

bool simd_kernels_enabled() {
  return simd_flag().load(std::memory_order_relaxed);
}

void set_simd_kernels_enabled(bool enabled) {
#ifdef NFV_X86_MULTIVERSION
  simd_flag().store(enabled && has_avx2_fma(), std::memory_order_relaxed);
#else
  (void)enabled;
  simd_flag().store(false, std::memory_order_relaxed);
#endif
}

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(float value) {
  for (float& x : data_) x = value;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::add(const Matrix& other) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::add shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::add_scaled(const Matrix& other, float k) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += k * other.data_[i];
  }
}

void Matrix::scale(float k) {
  for (float& x : data_) x *= k;
}

void Matrix::hadamard(const Matrix& other) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::hadamard shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

double Matrix::squared_norm() const {
  double sum = 0.0;
  for (float x : data_) sum += static_cast<double>(x) * x;
  return sum;
}

void matmul_serial(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.rows(), "matmul inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.rows());
  out.resize(a.rows(), b.cols());
  if (a.rows() < kPackMinRows) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      matmul_row_dispatch(a, b, out, i);
    }
    return;
  }
  pack_matmul_b_panels(b, tl_packed_b);
  matmul_rows_bpacked_dispatch(a, b, tl_packed_b.data(), out, 0, a.rows());
}

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.rows(), "matmul inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.rows());
  if (!use_parallel(a.rows() * a.cols() * b.cols())) {
    matmul_serial(a, b, out);
    return;
  }
  out.resize(a.rows(), b.cols());
  // Pack once on the calling thread; row blocks keep the 4×8 tiling inside
  // each parallel task. Every task writes only its own rows and every
  // accumulator chain keeps its k-order, so the result matches the serial
  // kernel bit for bit regardless of thread count.
  pack_matmul_b_panels(b, tl_packed_b);
  const float* packed = tl_packed_b.data();
  constexpr std::size_t kRowBlock = 16;
  const std::size_t blocks = (a.rows() + kRowBlock - 1) / kRowBlock;
  nfv::util::global_pool().parallel_for(0, blocks, [&](std::size_t bi) {
    const std::size_t i0 = bi * kRowBlock;
    matmul_rows_bpacked_dispatch(a, b, packed, out, i0,
                                 std::min(i0 + kRowBlock, a.rows()));
  });
}

void pack_matmul_b(const Matrix& b, std::vector<float>& packed) {
  pack_matmul_b_panels(b, packed);
}

void matmul_packed(const Matrix& a, const Matrix& b,
                   const std::vector<float>& packed, Matrix& out) {
  NFV_CHECK(a.cols() == b.rows(), "matmul_packed inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.rows());
  NFV_CHECK(packed.size() == (b.cols() / kPanelCols) * b.rows() * kPanelCols,
            "matmul_packed: packed buffer does not match b (repack needed)");
  out.resize(a.rows(), b.cols());
  if (!use_parallel(a.rows() * a.cols() * b.cols())) {
    matmul_rows_bpacked_dispatch(a, b, packed.data(), out, 0, a.rows());
    return;
  }
  constexpr std::size_t kRowBlock = 16;
  const std::size_t blocks = (a.rows() + kRowBlock - 1) / kRowBlock;
  nfv::util::global_pool().parallel_for(0, blocks, [&](std::size_t bi) {
    const std::size_t i0 = bi * kRowBlock;
    matmul_rows_bpacked_dispatch(a, b, packed.data(), out, i0,
                                 std::min(i0 + kRowBlock, a.rows()));
  });
}

void matmul_transb_serial(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.cols(), "matmul_transb inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.cols());
  out.resize(a.rows(), b.rows());
  if (a.rows() < kPackMinRows) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      transb_row_dispatch(a, b, out, i);
    }
    return;
  }
  pack_transb_panels(b, tl_packed_b);
  transb_rows_packed_dispatch(a, b, tl_packed_b.data(), out, 0, a.rows());
}

void matmul_transb(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.cols(), "matmul_transb inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.cols());
  if (!use_parallel(a.rows() * a.cols() * b.rows())) {
    matmul_transb_serial(a, b, out);
    return;
  }
  out.resize(a.rows(), b.rows());
  // Pack once on the calling thread; row blocks keep the 4×4 tiling inside
  // each parallel task. Every task writes only its own rows and every
  // accumulator chain keeps its k-order, so the result matches the serial
  // kernel bit for bit regardless of thread count.
  pack_transb_panels(b, tl_packed_b);
  const float* packed = tl_packed_b.data();
  constexpr std::size_t kRowBlock = 16;
  const std::size_t blocks = (a.rows() + kRowBlock - 1) / kRowBlock;
  nfv::util::global_pool().parallel_for(0, blocks, [&](std::size_t bi) {
    const std::size_t i0 = bi * kRowBlock;
    transb_rows_packed_dispatch(a, b, packed, out, i0,
                                std::min(i0 + kRowBlock, a.rows()));
  });
}

void matmul_transa_accumulate_serial(const Matrix& a, const Matrix& b,
                                     Matrix& out) {
  NFV_CHECK(a.rows() == b.rows(),
            "matmul_transa_accumulate row mismatch: " << a.rows() << " vs "
                                                      << b.rows());
  NFV_CHECK(out.rows() == a.cols() && out.cols() == b.cols(),
            "matmul_transa_accumulate output shape mismatch");
  transa_acc_block_dispatch(a, b, out, 0, b.cols());
}

void matmul_transa_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.rows() == b.rows(),
            "matmul_transa_accumulate row mismatch: " << a.rows() << " vs "
                                                      << b.rows());
  NFV_CHECK(out.rows() == a.cols() && out.cols() == b.cols(),
            "matmul_transa_accumulate output shape mismatch");
  if (!use_parallel(a.rows() * a.cols() * b.cols())) {
    transa_acc_block_dispatch(a, b, out, 0, b.cols());
    return;
  }
  nfv::util::ThreadPool& pool = nfv::util::global_pool();
  const std::size_t blocks = std::min(b.cols(), pool.size() * 4);
  const std::size_t block = (b.cols() + blocks - 1) / blocks;
  pool.parallel_for(0, blocks, [&](std::size_t bi) {
    const std::size_t c0 = bi * block;
    const std::size_t c1 = std::min(c0 + block, b.cols());
    if (c0 < c1) transa_acc_block_dispatch(a, b, out, c0, c1);
  });
}

void quantize_pack_b(const Matrix& b, QuantizedMatrix& out) {
  const std::size_t cn = b.rows();
  const std::size_t kn = b.cols();
  out.rows = cn;
  out.cols = kn;
  out.cols_padded = (kn + kQuantK - 1) / kQuantK * kQuantK;
  out.scales.assign(cn, 1.0f);
  out.col_sums.assign(cn, 0);
  const std::size_t panels = cn / kPanelCols;
  out.data.assign(cn * out.cols_padded, 0);
  std::vector<std::int8_t> qrow(out.cols_padded, 0);
  for (std::size_t c = 0; c < cn; ++c) {
    const float* w = b.row(c);
    float amax = 0.0f;
    for (std::size_t k = 0; k < kn; ++k) {
      amax = std::max(amax, std::fabs(w[k]));
    }
    // All-zero channels keep scale 1 (nothing divides by zero) and code
    // 0 everywhere — the dequantized row is exactly zero.
    const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    const float inv = amax > 0.0f ? 127.0f / amax : 0.0f;
    std::int32_t sum = 0;
    for (std::size_t k = 0; k < kn; ++k) {
      const std::int32_t q =
          std::clamp(round_nearest_i32(w[k] * inv), -127, 127);
      qrow[k] = static_cast<std::int8_t>(q);
      sum += q;
    }
    std::fill(qrow.begin() + kn, qrow.end(), static_cast<std::int8_t>(0));
    out.scales[c] = scale;
    out.col_sums[c] = sum;
    if (c < panels * kPanelCols) {
      // Scatter into the panel's 4-k × 8-channel blocks.
      const std::size_t p = c / kPanelCols;
      const std::size_t jj = c % kPanelCols;
      std::int8_t* panel = out.data.data() + p * out.cols_padded * kPanelCols;
      for (std::size_t g = 0; g < out.cols_padded / kQuantK; ++g) {
        std::memcpy(panel + kPanelCols * kQuantK * g + kQuantK * jj,
                    qrow.data() + kQuantK * g, kQuantK);
      }
    } else {
      std::memcpy(out.data.data() + panels * out.cols_padded * kPanelCols +
                      (c - panels * kPanelCols) * out.cols_padded,
                  qrow.data(), out.cols_padded);
    }
  }
}

void matmul_quant_serial(const Matrix& a, const QuantizedMatrix& qb,
                         Matrix& out) {
  NFV_CHECK(a.cols() == qb.cols, "matmul_quant inner-dimension mismatch: "
                                     << a.cols() << " vs " << qb.cols);
  out.resize(a.rows(), qb.rows);
  if (a.rows() == 0 || qb.rows == 0) return;
  const std::size_t kpad = qb.cols_padded;
  tl_quant_a.resize(a.rows() * kpad);
  tl_quant_sa.resize(a.rows());
  tl_quant_zp.resize(a.rows());
  quantize_activation_rows(a, kpad, tl_quant_a.data(), tl_quant_sa.data(),
                           tl_quant_zp.data());
  quant_rows_dispatch(tl_quant_a.data(), tl_quant_sa.data(),
                      tl_quant_zp.data(), kpad, qb, out, 0, a.rows());
}

void matmul_quant(const Matrix& a, const QuantizedMatrix& qb, Matrix& out) {
  NFV_CHECK(a.cols() == qb.cols, "matmul_quant inner-dimension mismatch: "
                                     << a.cols() << " vs " << qb.cols);
  if (!use_parallel(a.rows() * a.cols() * qb.rows)) {
    matmul_quant_serial(a, qb, out);
    return;
  }
  out.resize(a.rows(), qb.rows);
  // Quantize every activation row once on the calling thread; the row
  // blocks then run an exact integer reduction plus a per-element float
  // epilogue, so any thread count produces the serial result bit for bit.
  const std::size_t kpad = qb.cols_padded;
  tl_quant_a.resize(a.rows() * kpad);
  tl_quant_sa.resize(a.rows());
  tl_quant_zp.resize(a.rows());
  quantize_activation_rows(a, kpad, tl_quant_a.data(), tl_quant_sa.data(),
                           tl_quant_zp.data());
  const std::uint8_t* qa = tl_quant_a.data();
  const float* sa = tl_quant_sa.data();
  const std::int32_t* zp = tl_quant_zp.data();
  constexpr std::size_t kRowBlock = 16;
  const std::size_t blocks = (a.rows() + kRowBlock - 1) / kRowBlock;
  nfv::util::global_pool().parallel_for(0, blocks, [&](std::size_t bi) {
    const std::size_t i0 = bi * kRowBlock;
    quant_rows_dispatch(qa, sa, zp, kpad, qb, out, i0,
                        std::min(i0 + kRowBlock, a.rows()));
  });
}

void add_row_vector(Matrix& m, const Matrix& row) {
  NFV_CHECK(row.rows() == 1 && row.cols() == m.cols(),
            "add_row_vector expects a 1×cols vector");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* mrow = m.row(r);
    const float* v = row.row(0);
    for (std::size_t c = 0; c < m.cols(); ++c) mrow[c] += v[c];
  }
}

void sum_rows_accumulate(const Matrix& m, Matrix& out) {
  NFV_CHECK(out.rows() == 1 && out.cols() == m.cols(),
            "sum_rows_accumulate expects a 1×cols accumulator");
  float* acc = out.row(0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* mrow = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) acc[c] += mrow[c];
  }
}

}  // namespace nfv::ml
