#include "ml/matrix.h"

#include "util/check.h"

namespace nfv::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(float value) {
  for (float& x : data_) x = value;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::add(const Matrix& other) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::add shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::add_scaled(const Matrix& other, float k) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += k * other.data_[i];
  }
}

void Matrix::scale(float k) {
  for (float& x : data_) x *= k;
}

void Matrix::hadamard(const Matrix& other) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::hadamard shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

double Matrix::squared_norm() const {
  double sum = 0.0;
  for (float x : data_) sum += static_cast<double>(x) * x;
  return sum;
}

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.rows(), "matmul inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.rows());
  out.resize(a.rows(), b.cols());
  // i-k-j loop order: streams through b and out rows contiguously.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
}

void matmul_transb(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.cols(), "matmul_transb inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.cols());
  out.resize(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.row(j);
      float dot = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
      orow[j] = dot;
    }
  }
}

void matmul_transa_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.rows() == b.rows(),
            "matmul_transa_accumulate row mismatch: " << a.rows() << " vs "
                                                      << b.rows());
  NFV_CHECK(out.rows() == a.cols() && out.cols() == b.cols(),
            "matmul_transa_accumulate output shape mismatch");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    const float* brow = b.row(r);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float ark = arow[k];
      if (ark == 0.0f) continue;
      float* orow = out.row(k);
      for (std::size_t c = 0; c < b.cols(); ++c) orow[c] += ark * brow[c];
    }
  }
}

void add_row_vector(Matrix& m, const Matrix& row) {
  NFV_CHECK(row.rows() == 1 && row.cols() == m.cols(),
            "add_row_vector expects a 1×cols vector");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* mrow = m.row(r);
    const float* v = row.row(0);
    for (std::size_t c = 0; c < m.cols(); ++c) mrow[c] += v[c];
  }
}

void sum_rows_accumulate(const Matrix& m, Matrix& out) {
  NFV_CHECK(out.rows() == 1 && out.cols() == m.cols(),
            "sum_rows_accumulate expects a 1×cols accumulator");
  float* acc = out.row(0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* mrow = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) acc[c] += mrow[c];
  }
}

}  // namespace nfv::ml
