#include "ml/matrix.h"

#include <algorithm>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "util/check.h"
#include "util/thread_pool.h"

namespace nfv::ml {

namespace {

/// Minimum multiply-accumulate count before the blocked-parallel kernels
/// pay for themselves; below this the serial kernels win outright.
constexpr std::size_t kParallelMinWork = 1u << 16;

/// Parallelize only for large products, only when a multi-thread pool is
/// available, and never from inside an already parallel region (the
/// per-group pipeline fan-out owns the threads there).
bool use_parallel(std::size_t work) {
  return work >= kParallelMinWork &&
         !nfv::util::ThreadPool::in_parallel_region() &&
         nfv::util::global_pool().size() > 1;
}

/// One row of out = a * b, i-k-j order (streams b and out contiguously).
inline void matmul_row(const Matrix& a, const Matrix& b, Matrix& out,
                       std::size_t i) {
  const float* arow = a.row(i);
  float* orow = out.row(i);
  for (std::size_t k = 0; k < a.cols(); ++k) {
    const float aik = arow[k];
    if (aik == 0.0f) continue;
    const float* brow = b.row(k);
    for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
  }
}

/// One row of out = a * bᵀ. always_inline so the ISA-targeted wrappers
/// below compile this body with their own instruction set (and FMA
/// contraction) instead of calling a baseline copy.
__attribute__((always_inline)) inline void matmul_transb_row(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  const float* arow = a.row(i);
  float* orow = out.row(i);
  for (std::size_t j = 0; j < b.rows(); ++j) {
    const float* brow = b.row(j);
    float dot = 0.0f;
    for (std::size_t k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
    orow[j] = dot;
  }
}

/// Panel width of the packed out = a * bᵀ kernel (output columns per tile).
constexpr std::size_t kPanelCols = 8;

/// Pack b (the weight matrix of out = a * bᵀ) into 8-row k-major panels:
/// panel jp holds b rows [8jp, 8jp+8) interleaved as [k][jj], so the inner
/// product loop reads 8 weights for 8 output columns from one contiguous
/// 32-byte slot — the layout auto-vectorizes to SIMD with each lane an
/// independent accumulator chain. Pack cost is O(b.size()) and is
/// amortized over every row of a, which is exactly what a fused scoring
/// batch provides and a single-window batch cannot.
void pack_transb_panels(const Matrix& b, std::vector<float>& packed) {
  const std::size_t cols = b.cols();
  const std::size_t panels = b.rows() / kPanelCols;
  packed.resize(panels * cols * kPanelCols);
  for (std::size_t jp = 0; jp < panels; ++jp) {
    float* panel = packed.data() + jp * cols * kPanelCols;
    for (std::size_t k = 0; k < cols; ++k) {
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
        panel[kPanelCols * k + jj] = b.row(kPanelCols * jp + jj)[k];
      }
    }
  }
}

/// Rows [i0, i1) of out = a * bᵀ with b pre-packed into panels: 4 a-rows ×
/// one 8-column panel per tile, 32 accumulators. Every acc chain is
/// accumulated in the same k-ascending order as matmul_transb_row, so
/// results are bit-identical to the row-at-a-time kernel for any row
/// blocking and any thread count.
__attribute__((always_inline)) inline void matmul_transb_rows_packed(
    const Matrix& a, const Matrix& b, const float* packed, Matrix& out,
    std::size_t i0, std::size_t i1) {
  const std::size_t cols = a.cols();
  const std::size_t jn = b.rows();
  const std::size_t panels = jn / kPanelCols;
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a.row(i);
    const float* a1 = a.row(i + 1);
    const float* a2 = a.row(i + 2);
    const float* a3 = a.row(i + 3);
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const float* panel = packed + jp * cols * kPanelCols;
      float acc0[kPanelCols] = {}, acc1[kPanelCols] = {};
      float acc2[kPanelCols] = {}, acc3[kPanelCols] = {};
      for (std::size_t k = 0; k < cols; ++k) {
        const float* bv = panel + kPanelCols * k;
        const float av0 = a0[k], av1 = a1[k], av2 = a2[k], av3 = a3[k];
        for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
          acc0[jj] += av0 * bv[jj];
          acc1[jj] += av1 * bv[jj];
          acc2[jj] += av2 * bv[jj];
          acc3[jj] += av3 * bv[jj];
        }
      }
      float* o0 = out.row(i) + kPanelCols * jp;
      float* o1 = out.row(i + 1) + kPanelCols * jp;
      float* o2 = out.row(i + 2) + kPanelCols * jp;
      float* o3 = out.row(i + 3) + kPanelCols * jp;
      for (std::size_t jj = 0; jj < kPanelCols; ++jj) {
        o0[jj] = acc0[jj];
        o1[jj] = acc1[jj];
        o2[jj] = acc2[jj];
        o3[jj] = acc3[jj];
      }
    }
    for (std::size_t j = kPanelCols * panels; j < jn; ++j) {
      const float* brow = b.row(j);
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t k = 0; k < cols; ++k) {
        const float bk = brow[k];
        d0 += a0[k] * bk;
        d1 += a1[k] * bk;
        d2 += a2[k] * bk;
        d3 += a3[k] * bk;
      }
      out.row(i)[j] = d0;
      out.row(i + 1)[j] = d1;
      out.row(i + 2)[j] = d2;
      out.row(i + 3)[j] = d3;
    }
  }
  for (; i < i1; ++i) matmul_transb_row(a, b, out, i);
}

/// Minimum a-row count before packing b into panels pays for itself; below
/// this the plain row kernel is used (a 1-window batch never packs).
constexpr std::size_t kPackMinRows = 8;

/// Reused pack buffer (packing happens on the calling thread before any
/// parallel fan-out; workers only read it).
thread_local std::vector<float> tl_packed_b;

// ISA dispatch for the out = a * bᵀ kernels. Both the single-row reference
// kernel and the packed batch kernel are cloned for AVX2+FMA, and BOTH
// take the same runtime branch: every accumulator chain then uses fused
// multiply-add on every path, so a window scored alone still matches a
// window scored inside a fused batch bit for bit. (Results may differ
// between machines with and without FMA — determinism is per-machine, the
// same guarantee the baseline kernels give.)
#if defined(__x86_64__) && defined(__GNUC__)
#define NFV_X86_MULTIVERSION 1

/// One row of out = a * bᵀ with every chain step an explicit fused
/// multiply-add (`__builtin_fmaf` = one vfmadd instruction under the fma
/// target). The compiler cannot split or partially contract the chain, so
/// this is bit-identical to the fmadd lanes of the packed AVX2 kernel.
__attribute__((always_inline)) inline void transb_row_fma_body(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  const float* arow = a.row(i);
  float* orow = out.row(i);
  for (std::size_t j = 0; j < b.rows(); ++j) {
    const float* brow = b.row(j);
    float dot = 0.0f;
    for (std::size_t k = 0; k < a.cols(); ++k) {
      dot = __builtin_fmaf(arow[k], brow[k], dot);
    }
    orow[j] = dot;
  }
}

__attribute__((target("avx2,fma"))) void matmul_transb_row_fma(
    const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  transb_row_fma_body(a, b, out, i);
}

/// Hand-vectorized AVX2+FMA packed kernel: one 256-bit fmadd per
/// (a-row, k) covers a full 8-column panel, so each accumulator lane is
/// exactly the chain `acc = fma(a[k]*b[k], acc)` in k order — the same
/// fused operation the contracted scalar row kernel performs.
__attribute__((target("avx2,fma"))) void matmul_transb_rows_packed_fma(
    const Matrix& a, const Matrix& b, const float* packed, Matrix& out,
    std::size_t i0, std::size_t i1) {
  const std::size_t cols = a.cols();
  const std::size_t jn = b.rows();
  const std::size_t panels = jn / kPanelCols;
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a.row(i);
    const float* a1 = a.row(i + 1);
    const float* a2 = a.row(i + 2);
    const float* a3 = a.row(i + 3);
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const float* panel = packed + jp * cols * kPanelCols;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      for (std::size_t k = 0; k < cols; ++k) {
        const __m256 bv = _mm256_loadu_ps(panel + kPanelCols * k);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[k]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[k]), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[k]), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[k]), bv, acc3);
      }
      _mm256_storeu_ps(out.row(i) + kPanelCols * jp, acc0);
      _mm256_storeu_ps(out.row(i + 1) + kPanelCols * jp, acc1);
      _mm256_storeu_ps(out.row(i + 2) + kPanelCols * jp, acc2);
      _mm256_storeu_ps(out.row(i + 3) + kPanelCols * jp, acc3);
    }
    for (std::size_t j = kPanelCols * panels; j < jn; ++j) {
      const float* brow = b.row(j);
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (std::size_t k = 0; k < cols; ++k) {
        const float bk = brow[k];
        d0 = __builtin_fmaf(a0[k], bk, d0);
        d1 = __builtin_fmaf(a1[k], bk, d1);
        d2 = __builtin_fmaf(a2[k], bk, d2);
        d3 = __builtin_fmaf(a3[k], bk, d3);
      }
      out.row(i)[j] = d0;
      out.row(i + 1)[j] = d1;
      out.row(i + 2)[j] = d2;
      out.row(i + 3)[j] = d3;
    }
  }
  for (; i < i1; ++i) transb_row_fma_body(a, b, out, i);
}

bool has_avx2_fma() {
  static const bool value =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return value;
}
#endif

void transb_row_dispatch(const Matrix& a, const Matrix& b, Matrix& out,
                         std::size_t i) {
#ifdef NFV_X86_MULTIVERSION
  if (has_avx2_fma()) {
    matmul_transb_row_fma(a, b, out, i);
    return;
  }
#endif
  matmul_transb_row(a, b, out, i);
}

void transb_rows_packed_dispatch(const Matrix& a, const Matrix& b,
                                 const float* packed, Matrix& out,
                                 std::size_t i0, std::size_t i1) {
#ifdef NFV_X86_MULTIVERSION
  if (has_avx2_fma()) {
    matmul_transb_rows_packed_fma(a, b, packed, out, i0, i1);
    return;
  }
#endif
  matmul_transb_rows_packed(a, b, packed, out, i0, i1);
}

/// Column block [c0, c1) of out += aᵀ * b. Each out element accumulates in
/// the same r-ascending order as the serial kernel.
inline void transa_accumulate_cols(const Matrix& a, const Matrix& b,
                                   Matrix& out, std::size_t c0,
                                   std::size_t c1) {
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    const float* brow = b.row(r);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float ark = arow[k];
      if (ark == 0.0f) continue;
      float* orow = out.row(k);
      for (std::size_t c = c0; c < c1; ++c) orow[c] += ark * brow[c];
    }
  }
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(float value) {
  for (float& x : data_) x = value;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::add(const Matrix& other) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::add shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::add_scaled(const Matrix& other, float k) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += k * other.data_[i];
  }
}

void Matrix::scale(float k) {
  for (float& x : data_) x *= k;
}

void Matrix::hadamard(const Matrix& other) {
  NFV_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::hadamard shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

double Matrix::squared_norm() const {
  double sum = 0.0;
  for (float x : data_) sum += static_cast<double>(x) * x;
  return sum;
}

void matmul_serial(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.rows(), "matmul inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.rows());
  out.resize(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) matmul_row(a, b, out, i);
}

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.rows(), "matmul inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.rows());
  if (!use_parallel(a.rows() * a.cols() * b.cols())) {
    matmul_serial(a, b, out);
    return;
  }
  out.resize(a.rows(), b.cols());
  nfv::util::global_pool().parallel_for(
      0, a.rows(), [&](std::size_t i) { matmul_row(a, b, out, i); });
}

void matmul_transb_serial(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.cols(), "matmul_transb inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.cols());
  out.resize(a.rows(), b.rows());
  if (a.rows() < kPackMinRows) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      transb_row_dispatch(a, b, out, i);
    }
    return;
  }
  pack_transb_panels(b, tl_packed_b);
  transb_rows_packed_dispatch(a, b, tl_packed_b.data(), out, 0, a.rows());
}

void matmul_transb(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.cols() == b.cols(), "matmul_transb inner-dimension mismatch: "
                                      << a.cols() << " vs " << b.cols());
  if (!use_parallel(a.rows() * a.cols() * b.rows())) {
    matmul_transb_serial(a, b, out);
    return;
  }
  out.resize(a.rows(), b.rows());
  // Pack once on the calling thread; row blocks keep the 4×4 tiling inside
  // each parallel task. Every task writes only its own rows and every
  // accumulator chain keeps its k-order, so the result matches the serial
  // kernel bit for bit regardless of thread count.
  pack_transb_panels(b, tl_packed_b);
  const float* packed = tl_packed_b.data();
  constexpr std::size_t kRowBlock = 16;
  const std::size_t blocks = (a.rows() + kRowBlock - 1) / kRowBlock;
  nfv::util::global_pool().parallel_for(0, blocks, [&](std::size_t bi) {
    const std::size_t i0 = bi * kRowBlock;
    transb_rows_packed_dispatch(a, b, packed, out, i0,
                                std::min(i0 + kRowBlock, a.rows()));
  });
}

void matmul_transa_accumulate_serial(const Matrix& a, const Matrix& b,
                                     Matrix& out) {
  NFV_CHECK(a.rows() == b.rows(),
            "matmul_transa_accumulate row mismatch: " << a.rows() << " vs "
                                                      << b.rows());
  NFV_CHECK(out.rows() == a.cols() && out.cols() == b.cols(),
            "matmul_transa_accumulate output shape mismatch");
  transa_accumulate_cols(a, b, out, 0, b.cols());
}

void matmul_transa_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  NFV_CHECK(a.rows() == b.rows(),
            "matmul_transa_accumulate row mismatch: " << a.rows() << " vs "
                                                      << b.rows());
  NFV_CHECK(out.rows() == a.cols() && out.cols() == b.cols(),
            "matmul_transa_accumulate output shape mismatch");
  if (!use_parallel(a.rows() * a.cols() * b.cols())) {
    transa_accumulate_cols(a, b, out, 0, b.cols());
    return;
  }
  nfv::util::ThreadPool& pool = nfv::util::global_pool();
  const std::size_t blocks = std::min(b.cols(), pool.size() * 4);
  const std::size_t block = (b.cols() + blocks - 1) / blocks;
  pool.parallel_for(0, blocks, [&](std::size_t bi) {
    const std::size_t c0 = bi * block;
    const std::size_t c1 = std::min(c0 + block, b.cols());
    if (c0 < c1) transa_accumulate_cols(a, b, out, c0, c1);
  });
}

void add_row_vector(Matrix& m, const Matrix& row) {
  NFV_CHECK(row.rows() == 1 && row.cols() == m.cols(),
            "add_row_vector expects a 1×cols vector");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* mrow = m.row(r);
    const float* v = row.row(0);
    for (std::size_t c = 0; c < m.cols(); ++c) mrow[c] += v[c];
  }
}

void sum_rows_accumulate(const Matrix& m, Matrix& out) {
  NFV_CHECK(out.rows() == 1 && out.cols() == m.cols(),
            "sum_rows_accumulate expects a 1×cols accumulator");
  float* acc = out.row(0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* mrow = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) acc[c] += mrow[c];
  }
}

}  // namespace nfv::ml
