#include "ml/som.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace nfv::ml {

namespace {

double squared_distance(std::span<const float> a, std::span<const float> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

Som::Som(const SomConfig& config) : config_(config) {
  NFV_CHECK(config.rows >= 1 && config.cols >= 1, "SOM grid must be non-empty");
  NFV_CHECK(config.epochs >= 1, "SOM needs at least one epoch");
}

void Som::fit(const Matrix& data, nfv::util::Rng& rng) {
  NFV_CHECK(data.rows() > 0 && data.cols() > 0, "Som::fit on empty data");
  dim_ = data.cols();
  const std::size_t n_units = units();
  codebook_.resize(n_units, dim_);
  // Initialize codebook from random training samples (plus tiny noise so
  // duplicate samples don't create identical units).
  for (std::size_t u = 0; u < n_units; ++u) {
    const std::size_t pick = rng.uniform_index(data.rows());
    for (std::size_t c = 0; c < dim_; ++c) {
      codebook_.at(u, c) =
          data.at(pick, c) + static_cast<float>(rng.uniform(-1e-4, 1e-4));
    }
  }

  std::vector<std::size_t> order(data.rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  const double total_steps = static_cast<double>(config_.epochs);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const double progress = static_cast<double>(epoch) / total_steps;
    const double lr =
        config_.initial_learning_rate *
        std::pow(config_.final_learning_rate / config_.initial_learning_rate,
                 progress);
    const double radius =
        std::max(0.5, config_.initial_radius *
                          std::pow(0.5 / config_.initial_radius, progress));
    const double radius2 = radius * radius;

    rng.shuffle(order);
    for (const std::size_t i : order) {
      const std::span<const float> x = data.row_span(i);
      const std::size_t bmu = best_matching_unit(x);
      const auto [bmu_r, bmu_c] = unit_position(bmu);
      for (std::size_t u = 0; u < n_units; ++u) {
        const auto [ur, uc] = unit_position(u);
        const double grid_d2 =
            (static_cast<double>(ur) - static_cast<double>(bmu_r)) *
                (static_cast<double>(ur) - static_cast<double>(bmu_r)) +
            (static_cast<double>(uc) - static_cast<double>(bmu_c)) *
                (static_cast<double>(uc) - static_cast<double>(bmu_c));
        if (grid_d2 > 9.0 * radius2) continue;  // negligible influence
        const double h = std::exp(-grid_d2 / (2.0 * radius2));
        float* w = codebook_.row(u);
        const auto step = static_cast<float>(lr * h);
        for (std::size_t c = 0; c < dim_; ++c) {
          w[c] += step * (x[c] - w[c]);
        }
      }
    }
  }
}

std::size_t Som::best_matching_unit(std::span<const float> x) const {
  NFV_CHECK(trained(), "Som::best_matching_unit before fit");
  NFV_CHECK(x.size() == dim_, "SOM input width mismatch");
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t u = 0; u < units(); ++u) {
    const double d = squared_distance(codebook_.row_span(u), x);
    if (d < best_d) {
      best_d = d;
      best = u;
    }
  }
  return best;
}

double Som::quantization_error(std::span<const float> x) const {
  const std::size_t bmu = best_matching_unit(x);
  return std::sqrt(squared_distance(codebook_.row_span(bmu), x));
}

std::vector<std::size_t> Som::assign(const Matrix& data) const {
  std::vector<std::size_t> out(data.rows());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    out[r] = best_matching_unit(data.row_span(r));
  }
  return out;
}

std::span<const float> Som::codebook(std::size_t unit) const {
  NFV_CHECK(trained(), "Som::codebook before fit");
  NFV_CHECK(unit < units(), "SOM unit out of range");
  return codebook_.row_span(unit);
}

}  // namespace nfv::ml
