#include "ml/activations.h"

#include "util/check.h"

namespace nfv::ml {

void apply_activation(Matrix& m, Activation act) {
  switch (act) {
    case Activation::kLinear:
      return;
    case Activation::kRelu:
      for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = relu(m.data()[i]);
      return;
    case Activation::kTanh:
      for (std::size_t i = 0; i < m.size(); ++i) {
        m.data()[i] = std::tanh(m.data()[i]);
      }
      return;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < m.size(); ++i) {
        m.data()[i] = sigmoid(m.data()[i]);
      }
      return;
  }
}

void apply_activation_grad(const Matrix& pre, const Matrix& post, Matrix& grad,
                           Activation act) {
  NFV_CHECK(pre.size() == grad.size() && post.size() == grad.size(),
            "activation grad shape mismatch");
  switch (act) {
    case Activation::kLinear:
      return;
    case Activation::kRelu:
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad.data()[i] *= relu_grad(pre.data()[i]);
      }
      return;
    case Activation::kTanh:
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad.data()[i] *= tanh_grad_from_output(post.data()[i]);
      }
      return;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad.data()[i] *= sigmoid_grad_from_output(post.data()[i]);
      }
      return;
  }
}

}  // namespace nfv::ml
