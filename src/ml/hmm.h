// Discrete hidden Markov model trained with Baum-Welch.
//
// The paper's related work ([19], [29]) predicts failures with (semi-)
// Markov models over event sequences; this HMM over syslog template ids
// serves as that classical sequential baseline: train on normal windows,
// score a window by its per-symbol negative log-likelihood under the
// forward algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace nfv::ml {

struct HmmConfig {
  std::size_t states = 8;
  std::size_t max_iterations = 30;
  double tolerance = 1e-4;       // stop when log-likelihood gain/symbol < tol
  double smoothing = 1e-3;       // additive smoothing on re-estimated rows
};

/// Discrete-emission HMM. Train on sequences of symbols in [0, vocab);
/// score new sequences by average negative log-likelihood per symbol.
class Hmm {
 public:
  explicit Hmm(const HmmConfig& config = {});

  /// Fit with Baum-Welch on the given sequences (each a vector of symbol
  /// ids < vocab). Requires at least one non-empty sequence.
  void fit(const std::vector<std::vector<std::int32_t>>& sequences,
           std::size_t vocab, nfv::util::Rng& rng);

  bool trained() const { return vocab_ > 0; }
  std::size_t states() const { return config_.states; }
  std::size_t vocab() const { return vocab_; }

  /// Total log-likelihood of a sequence (forward algorithm, scaled).
  double log_likelihood(const std::vector<std::int32_t>& sequence) const;

  /// Anomaly score: −log-likelihood / length. Symbols ≥ vocab are mapped
  /// to the least-likely emission (maximally surprising).
  double anomaly_score(const std::vector<std::int32_t>& sequence) const;

 private:
  double forward(const std::vector<std::int32_t>& sequence,
                 std::vector<std::vector<double>>* alphas,
                 std::vector<double>* scales) const;
  double emission(std::size_t state, std::int32_t symbol) const;

  HmmConfig config_;
  std::size_t vocab_ = 0;
  std::vector<double> initial_;    // (states)
  std::vector<double> transition_; // (states × states), row-major
  std::vector<double> emission_;   // (states × vocab), row-major
  double min_emission_ = 1e-9;
};

}  // namespace nfv::ml
