#include "ml/hmm.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nfv::ml {

Hmm::Hmm(const HmmConfig& config) : config_(config) {
  NFV_CHECK(config.states >= 1, "HMM needs at least one state");
}

double Hmm::emission(std::size_t state, std::int32_t symbol) const {
  if (symbol < 0 || static_cast<std::size_t>(symbol) >= vocab_) {
    return min_emission_;  // unseen symbol: maximally surprising
  }
  return emission_[state * vocab_ + static_cast<std::size_t>(symbol)];
}

void Hmm::fit(const std::vector<std::vector<std::int32_t>>& sequences,
              std::size_t vocab, nfv::util::Rng& rng) {
  NFV_CHECK(vocab > 0, "HMM needs a vocabulary");
  bool any = false;
  for (const auto& sequence : sequences) any = any || !sequence.empty();
  NFV_CHECK(any, "HMM::fit needs at least one non-empty sequence");
  vocab_ = vocab;
  const std::size_t n = config_.states;

  // Random (normalized) initialization.
  auto normalize_row = [](double* row, std::size_t width) {
    double total = 0.0;
    for (std::size_t i = 0; i < width; ++i) total += row[i];
    for (std::size_t i = 0; i < width; ++i) row[i] /= total;
  };
  initial_.assign(n, 0.0);
  transition_.assign(n * n, 0.0);
  emission_.assign(n * vocab_, 0.0);
  for (double& x : initial_) x = 1.0 + rng.uniform();
  normalize_row(initial_.data(), n);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = 0; t < n; ++t) {
      transition_[s * n + t] = 1.0 + rng.uniform();
    }
    normalize_row(&transition_[s * n], n);
    for (std::size_t v = 0; v < vocab_; ++v) {
      emission_[s * vocab_ + v] = 1.0 + rng.uniform();
    }
    normalize_row(&emission_[s * vocab_], vocab_);
  }

  double previous_ll = -1e300;
  std::size_t total_symbols = 0;
  for (const auto& sequence : sequences) total_symbols += sequence.size();

  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    // Accumulators for re-estimation.
    std::vector<double> new_initial(n, config_.smoothing);
    std::vector<double> new_transition(n * n, config_.smoothing);
    std::vector<double> new_emission(n * vocab_, config_.smoothing);
    double total_ll = 0.0;

    for (const auto& sequence : sequences) {
      if (sequence.empty()) continue;
      const std::size_t length = sequence.size();
      std::vector<std::vector<double>> alpha;
      std::vector<double> scales;
      total_ll += forward(sequence, &alpha, &scales);

      // Backward pass (scaled with the same factors).
      std::vector<std::vector<double>> beta(
          length, std::vector<double>(n, 0.0));
      for (std::size_t s = 0; s < n; ++s) beta[length - 1][s] = 1.0;
      for (std::size_t t = length - 1; t-- > 0;) {
        for (std::size_t s = 0; s < n; ++s) {
          double sum = 0.0;
          for (std::size_t u = 0; u < n; ++u) {
            sum += transition_[s * n + u] * emission(u, sequence[t + 1]) *
                   beta[t + 1][u];
          }
          beta[t][s] = sum / scales[t + 1];
        }
      }

      // Occupancy and transition statistics.
      for (std::size_t t = 0; t < length; ++t) {
        for (std::size_t s = 0; s < n; ++s) {
          const double gamma = alpha[t][s] * beta[t][s];
          if (t == 0) new_initial[s] += gamma;
          if (sequence[t] >= 0 &&
              static_cast<std::size_t>(sequence[t]) < vocab_) {
            new_emission[s * vocab_ +
                         static_cast<std::size_t>(sequence[t])] += gamma;
          }
        }
      }
      for (std::size_t t = 0; t + 1 < length; ++t) {
        for (std::size_t s = 0; s < n; ++s) {
          for (std::size_t u = 0; u < n; ++u) {
            new_transition[s * n + u] +=
                alpha[t][s] * transition_[s * n + u] *
                emission(u, sequence[t + 1]) * beta[t + 1][u] /
                scales[t + 1];
          }
        }
      }
    }

    normalize_row(new_initial.data(), n);
    for (std::size_t s = 0; s < n; ++s) {
      normalize_row(&new_transition[s * n], n);
      normalize_row(&new_emission[s * vocab_], vocab_);
    }
    initial_ = std::move(new_initial);
    transition_ = std::move(new_transition);
    emission_ = std::move(new_emission);

    const double gain =
        (total_ll - previous_ll) / static_cast<double>(total_symbols);
    previous_ll = total_ll;
    if (iter > 0 && gain >= 0.0 && gain < config_.tolerance) break;
  }

  // Floor for unseen-symbol scoring: below the smallest trained emission.
  min_emission_ = 1e-9;
  for (double e : emission_) min_emission_ = std::min(min_emission_, e);
  min_emission_ = std::max(min_emission_ * 0.1, 1e-12);
}

double Hmm::forward(const std::vector<std::int32_t>& sequence,
                    std::vector<std::vector<double>>* alphas,
                    std::vector<double>* scales) const {
  const std::size_t n = config_.states;
  const std::size_t length = sequence.size();
  std::vector<std::vector<double>> alpha(length, std::vector<double>(n, 0.0));
  std::vector<double> scale(length, 0.0);

  for (std::size_t s = 0; s < n; ++s) {
    alpha[0][s] = initial_[s] * emission(s, sequence[0]);
    scale[0] += alpha[0][s];
  }
  scale[0] = std::max(scale[0], 1e-300);
  for (std::size_t s = 0; s < n; ++s) alpha[0][s] /= scale[0];

  for (std::size_t t = 1; t < length; ++t) {
    for (std::size_t u = 0; u < n; ++u) {
      double sum = 0.0;
      for (std::size_t s = 0; s < n; ++s) {
        sum += alpha[t - 1][s] * transition_[s * n + u];
      }
      alpha[t][u] = sum * emission(u, sequence[t]);
      scale[t] += alpha[t][u];
    }
    scale[t] = std::max(scale[t], 1e-300);
    for (std::size_t u = 0; u < n; ++u) alpha[t][u] /= scale[t];
  }

  double ll = 0.0;
  for (double s : scale) ll += std::log(s);
  if (alphas) *alphas = std::move(alpha);
  if (scales) *scales = std::move(scale);
  return ll;
}

double Hmm::log_likelihood(const std::vector<std::int32_t>& sequence) const {
  NFV_CHECK(trained(), "Hmm::log_likelihood before fit");
  NFV_CHECK(!sequence.empty(), "log_likelihood of empty sequence");
  return forward(sequence, nullptr, nullptr);
}

double Hmm::anomaly_score(const std::vector<std::int32_t>& sequence) const {
  NFV_CHECK(trained(), "Hmm::anomaly_score before fit");
  if (sequence.empty()) return 0.0;
  return -log_likelihood(sequence) / static_cast<double>(sequence.size());
}

}  // namespace nfv::ml
