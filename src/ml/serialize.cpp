#include "ml/serialize.h"

#include <istream>
#include <ostream>

#include "util/check.h"

namespace nfv::ml {

void write_u64(std::ostream& os, std::uint64_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  NFV_CHECK(is.good(), "unexpected end of checkpoint stream");
  return value;
}

void write_matrix(std::ostream& os, const Matrix& m) {
  write_u64(os, kMatrixMagic);
  write_u64(os, m.rows());
  write_u64(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

Matrix read_matrix(std::istream& is) {
  NFV_CHECK(read_u64(is) == kMatrixMagic, "corrupt checkpoint: bad matrix tag");
  const std::uint64_t rows = read_u64(is);
  const std::uint64_t cols = read_u64(is);
  Matrix m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  NFV_CHECK(is.good(), "unexpected end of checkpoint stream in matrix body");
  return m;
}

void write_quant_matrix(std::ostream& os, const QuantizedMatrix& m) {
  write_u64(os, kQuantMatrixMagic);
  write_u64(os, m.rows);
  write_u64(os, m.cols);
  write_u64(os, m.cols_padded);
  write_u64(os, m.data.size());
  os.write(reinterpret_cast<const char*>(m.data.data()),
           static_cast<std::streamsize>(m.data.size()));
  os.write(reinterpret_cast<const char*>(m.scales.data()),
           static_cast<std::streamsize>(m.scales.size() * sizeof(float)));
  os.write(reinterpret_cast<const char*>(m.col_sums.data()),
           static_cast<std::streamsize>(m.col_sums.size() *
                                        sizeof(std::int32_t)));
}

QuantizedMatrix read_quant_matrix(std::istream& is) {
  NFV_CHECK(read_u64(is) == kQuantMatrixMagic,
            "corrupt checkpoint: bad quantized-matrix tag");
  QuantizedMatrix m;
  m.rows = read_u64(is);
  m.cols = read_u64(is);
  m.cols_padded = read_u64(is);
  const std::uint64_t bytes = read_u64(is);
  NFV_CHECK(m.cols_padded >= m.cols && m.cols_padded % 4 == 0 &&
                bytes == m.rows * m.cols_padded,
            "corrupt checkpoint: quantized-matrix shape mismatch");
  m.data.resize(bytes);
  is.read(reinterpret_cast<char*>(m.data.data()),
          static_cast<std::streamsize>(bytes));
  m.scales.resize(m.rows);
  is.read(reinterpret_cast<char*>(m.scales.data()),
          static_cast<std::streamsize>(m.scales.size() * sizeof(float)));
  m.col_sums.resize(m.rows);
  is.read(reinterpret_cast<char*>(m.col_sums.data()),
          static_cast<std::streamsize>(m.col_sums.size() *
                                       sizeof(std::int32_t)));
  NFV_CHECK(is.good(),
            "unexpected end of checkpoint stream in quantized-matrix body");
  return m;
}

}  // namespace nfv::ml
