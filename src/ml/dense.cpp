#include "ml/dense.h"

#include "util/check.h"

namespace nfv::ml {

Dense::Dense(std::string name, std::size_t in_features,
             std::size_t out_features, Activation act, nfv::util::Rng& rng)
    : act_(act),
      weight_(name + ".weight", out_features, in_features),
      bias_(name + ".bias", 1, out_features) {
  xavier_uniform(weight_.value, in_features, out_features, rng);
}

const Matrix& Dense::forward(const Matrix& input) {
  NFV_CHECK(input.cols() == in_features(),
            "Dense forward: expected " << in_features() << " features, got "
                                       << input.cols());
  input_cache_ = input;
  matmul_transb(input, weight_.value, pre_act_);
  add_row_vector(pre_act_, bias_.value);
  // A linear head (the batch × vocab softmax input, the model's widest
  // matrix) is returned without the post-activation copy.
  if (act_ == Activation::kLinear) return pre_act_;
  output_ = pre_act_;
  apply_activation(output_, act_);
  return output_;
}

const Matrix& Dense::backward(const Matrix& grad_output) {
  NFV_CHECK(grad_output.rows() == pre_act_.rows() &&
                grad_output.cols() == pre_act_.cols(),
            "Dense backward shape mismatch");
  const Matrix* grad_pre = &grad_output;
  if (act_ != Activation::kLinear) {
    grad_pre_ = grad_output;
    apply_activation_grad(pre_act_, output_, grad_pre_, act_);
    grad_pre = &grad_pre_;
  }
  // dW += grad_preᵀ · input ; db += Σ rows(grad_pre); dx = grad_pre · W.
  matmul_transa_accumulate(*grad_pre, input_cache_, weight_.grad);
  sum_rows_accumulate(*grad_pre, bias_.grad);
  matmul(*grad_pre, weight_.value, grad_input_);
  return grad_input_;
}

std::vector<Param*> Dense::params() { return {&weight_, &bias_}; }

}  // namespace nfv::ml
