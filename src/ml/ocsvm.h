// One-Class SVM baseline (§5.2, Fig. 6).
//
// Schölkopf's ν-one-class SVM with an RBF kernel, trained by an SMO-style
// maximal-violating-pair solver on the dual:
//     min ½ αᵀKα   s.t.  0 ≤ α_i ≤ 1/(νn),  Σα_i = 1.
// The decision value f(x) = Σα_i K(x_i,x) − ρ is positive inside the learned
// "normal" region; the anomaly score is ρ − Σα_i K(x_i,x).
#pragma once

#include <cstddef>
#include <vector>

#include "ml/matrix.h"

namespace nfv::ml {

struct OcSvmConfig {
  double nu = 0.1;        // upper bound on training outlier fraction
  double gamma = 0.0;     // RBF width; <=0 means 1/(d · feature variance)
  std::size_t max_iterations = 20000;
  double tolerance = 1e-4;
  std::size_t max_training_rows = 1500;  // subsample beyond this (O(n²) kernel)
};

/// One-class SVM model with training-vector storage.
class OcSvm {
 public:
  explicit OcSvm(const OcSvmConfig& config = {});

  /// Fit on rows of `data` (each row one feature vector). Rows beyond
  /// `max_training_rows` are dropped deterministically (stride subsample).
  void fit(const Matrix& data);

  bool trained() const { return !support_vectors_.empty(); }
  double rho() const { return rho_; }
  std::size_t support_vector_count() const { return support_vectors_.rows(); }
  double gamma() const { return gamma_effective_; }

  /// Decision value f(x); positive = normal side of the boundary.
  double decision_value(std::span<const float> x) const;

  /// Anomaly score = ρ − Σα_i K(x_i, x)  (= −decision_value).
  double anomaly_score(std::span<const float> x) const;
  std::vector<double> anomaly_scores(const Matrix& data) const;

 private:
  double kernel(std::span<const float> a, std::span<const float> b) const;

  OcSvmConfig config_;
  double gamma_effective_ = 0.0;
  Matrix support_vectors_;       // (m × d)
  std::vector<double> alphas_;   // length m, all > 0
  double rho_ = 0.0;
};

}  // namespace nfv::ml
