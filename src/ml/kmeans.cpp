#include "ml/kmeans.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "util/check.h"
#include "util/stats.h"

namespace nfv::ml {

namespace {

double squared_distance(const float* a, const float* b, std::size_t d) {
  double sum = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace

KMeansResult kmeans(const Matrix& data, const KMeansConfig& config,
                    nfv::util::Rng& rng) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  NFV_CHECK(n > 0, "kmeans on empty data");
  NFV_CHECK(config.k > 0 && config.k <= n,
            "kmeans k=" << config.k << " out of range for n=" << n);

  KMeansResult result;
  result.centroids.resize(config.k, d);
  result.labels.assign(n, 0);

  // k-means++ seeding.
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  std::size_t first = rng.uniform_index(n);
  std::memcpy(result.centroids.row(0), data.row(first), d * sizeof(float));
  for (std::size_t c = 1; c < config.k; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dist =
          squared_distance(data.row(i), result.centroids.row(c - 1), d);
      min_dist[i] = std::min(min_dist[i], dist);
    }
    double total = 0.0;
    for (double v : min_dist) total += v;
    std::size_t chosen;
    if (total <= 0.0) {
      chosen = rng.uniform_index(n);
    } else {
      chosen = rng.categorical(min_dist);
    }
    std::memcpy(result.centroids.row(c), data.row(chosen), d * sizeof(float));
  }

  std::vector<std::size_t> counts(config.k, 0);
  Matrix new_centroids(config.k, d);
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    result.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < config.k; ++c) {
        const double dist =
            squared_distance(data.row(i), result.centroids.row(c), d);
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      result.labels[i] = best_c;
      result.inertia += best;
    }
    // Update step.
    new_centroids.zero();
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = result.labels[i];
      float* cen = new_centroids.row(c);
      const float* x = data.row(i);
      for (std::size_t j = 0; j < d; ++j) cen[j] += x[j];
      ++counts[c];
    }
    double movement = 0.0;
    for (std::size_t c = 0; c < config.k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty cluster at the point farthest from its centroid.
        double worst = -1.0;
        std::size_t worst_i = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const double dist = squared_distance(
              data.row(i), result.centroids.row(result.labels[i]), d);
          if (dist > worst) {
            worst = dist;
            worst_i = i;
          }
        }
        std::memcpy(new_centroids.row(c), data.row(worst_i),
                    d * sizeof(float));
        counts[c] = 1;
      } else {
        float* cen = new_centroids.row(c);
        const float inv = 1.0f / static_cast<float>(counts[c]);
        for (std::size_t j = 0; j < d; ++j) cen[j] *= inv;
      }
      movement +=
          squared_distance(new_centroids.row(c), result.centroids.row(c), d);
    }
    result.centroids = new_centroids;
    if (movement < config.tolerance) break;
  }
  return result;
}

Matrix cosine_similarity_graph(const Matrix& data, double threshold) {
  const std::size_t n = data.rows();
  Matrix graph(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      std::vector<double> a(data.row(i), data.row(i) + data.cols());
      std::vector<double> b(data.row(j), data.row(j) + data.cols());
      double sim = nfv::util::cosine_similarity(a, b);
      if (sim < threshold) sim = 0.0;
      graph.at(i, j) = static_cast<float>(sim);
      graph.at(j, i) = static_cast<float>(sim);
    }
  }
  return graph;
}

double modularity(const Matrix& similarity,
                  const std::vector<std::size_t>& labels) {
  const std::size_t n = similarity.rows();
  NFV_CHECK(similarity.cols() == n, "modularity expects a square matrix");
  NFV_CHECK(labels.size() == n, "modularity labels size mismatch");
  double two_m = 0.0;
  std::vector<double> degree(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      degree[i] += similarity.at(i, j);
    }
    two_m += degree[i];
  }
  if (two_m <= 0.0) return 0.0;
  double q = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (labels[i] != labels[j]) continue;
      q += similarity.at(i, j) - degree[i] * degree[j] / two_m;
    }
  }
  return q / two_m;
}

KSelection select_k_by_modularity(const Matrix& data, std::size_t k_min,
                                  std::size_t k_max, nfv::util::Rng& rng) {
  NFV_CHECK(k_min >= 1 && k_min <= k_max, "invalid K range");
  NFV_CHECK(k_max <= data.rows(), "k_max exceeds the number of points");
  const Matrix graph = cosine_similarity_graph(data);
  KSelection selection;
  double best_q = -std::numeric_limits<double>::infinity();
  for (std::size_t k = k_min; k <= k_max; ++k) {
    KMeansConfig config;
    config.k = k;
    nfv::util::Rng local = rng.fork(k);
    KMeansResult result = kmeans(data, config, local);
    const double q = modularity(graph, result.labels);
    selection.modularity_by_k.push_back(q);
    if (q > best_q) {
      best_q = q;
      selection.best_k = k;
      selection.result = std::move(result);
    }
  }
  return selection;
}

}  // namespace nfv::ml
