// Gradient-descent optimizers for the from-scratch network stack.
//
// Both optimizers honor Param::frozen, which is how the transfer-learning
// adaptation of §4.3 fine-tunes only the top layers of a copied teacher
// model.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/param.h"

namespace nfv::ml {

/// Optimizer interface: step() applies accumulated gradients and zeroes them.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Bind the parameter set. Must be called before step(); rebinding resets
  /// internal state (used after copying a teacher model into a student).
  virtual void bind(std::vector<Param*> params) = 0;

  /// Apply one update from the accumulated gradients, then zero them.
  virtual void step() = 0;

  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;
};

/// Plain SGD with optional momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f);

  void bind(std::vector<Param*> params) override;
  void step() override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<Param*> params_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) — the workhorse for LSTM training here.
class Adam final : public Optimizer {
 public:
  explicit Adam(float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-8f);

  void bind(std::vector<Param*> params) override;
  void step() override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float epsilon_;
  std::size_t t_ = 0;
  std::vector<Param*> params_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace nfv::ml
