// Gradient-descent optimizers for the from-scratch network stack.
//
// Both optimizers honor Param::frozen, which is how the transfer-learning
// adaptation of §4.3 fine-tunes only the top layers of a copied teacher
// model.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/param.h"

namespace nfv::ml {

/// Optimizer interface: step() applies accumulated gradients and zeroes them.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Bind the parameter set. Must be called before step(); rebinding resets
  /// internal state (used after copying a teacher model into a student).
  virtual void bind(std::vector<Param*> params) = 0;

  /// Apply one update from the accumulated gradients, then zero them.
  virtual void step() = 0;

  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;
};

/// Plain SGD with optional momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f);

  void bind(std::vector<Param*> params) override;
  void step() override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<Param*> params_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) — the workhorse for LSTM training here.
class Adam final : public Optimizer {
 public:
  explicit Adam(float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-8f);

  void bind(std::vector<Param*> params) override;
  void step() override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

  /// Re-point the optimizer at a new parameter set while preserving moment
  /// state: step count and m/v survive, and after a shape change (e.g.
  /// grow_vocab) the overlapping top-left block of each moment matrix is
  /// carried over with the new rows/columns starting from zero. This is
  /// what lets one Adam instance live across incremental update/adapt
  /// rounds instead of restarting cold each month — contrast bind(), which
  /// resets everything. The parameter count must match the bound set.
  void rebind(std::vector<Param*> params);

  /// True once bind() has been called (rebind falls back to bind if not).
  bool bound() const { return !params_.empty(); }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float epsilon_;
  std::size_t t_ = 0;
  std::vector<Param*> params_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace nfv::ml
