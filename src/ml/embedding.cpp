#include "ml/embedding.h"

#include <cstring>

#include "util/check.h"

namespace nfv::ml {

Embedding::Embedding(std::string name, std::size_t vocab, std::size_t dim,
                     nfv::util::Rng& rng)
    : table_(name + ".table", vocab, dim) {
  xavier_uniform(table_.value, vocab, dim, rng);
}

const Matrix& Embedding::forward(const std::vector<std::int32_t>& ids) {
  ids_cache_ = ids;
  output_.resize(ids.size(), dim());
  for (std::size_t r = 0; r < ids.size(); ++r) {
    const auto id = ids[r];
    NFV_CHECK(id >= 0 && static_cast<std::size_t>(id) < vocab(),
              "embedding id out of range: " << id << " vocab " << vocab());
    std::memcpy(output_.row(r), table_.value.row(static_cast<std::size_t>(id)),
                dim() * sizeof(float));
  }
  return output_;
}

void Embedding::backward(const Matrix& grad_output) {
  NFV_CHECK(grad_output.rows() == ids_cache_.size() &&
                grad_output.cols() == dim(),
            "embedding backward shape mismatch");
  for (std::size_t r = 0; r < ids_cache_.size(); ++r) {
    float* grow = table_.grad.row(static_cast<std::size_t>(ids_cache_[r]));
    const float* g = grad_output.row(r);
    for (std::size_t c = 0; c < dim(); ++c) grow[c] += g[c];
  }
}

void Embedding::grow_vocab(std::size_t new_vocab, nfv::util::Rng& rng) {
  NFV_CHECK(new_vocab >= vocab(), "grow_vocab cannot shrink the table");
  if (new_vocab == vocab()) return;
  Matrix grown(new_vocab, dim());
  xavier_uniform(grown, new_vocab, dim(), rng);
  for (std::size_t r = 0; r < vocab(); ++r) {
    std::memcpy(grown.row(r), table_.value.row(r), dim() * sizeof(float));
  }
  table_.value = std::move(grown);
  table_.grad.resize(new_vocab, dim());
}

}  // namespace nfv::ml
