#include "ml/autoencoder.h"

#include "ml/loss.h"
#include "util/check.h"

namespace nfv::ml {

Autoencoder::Autoencoder(const AutoencoderConfig& config,
                         nfv::util::Rng& rng)
    : config_(config) {
  NFV_CHECK(config.input_dim > 0, "Autoencoder requires input_dim > 0");
  NFV_CHECK(!config.encoder.empty(), "Autoencoder requires hidden layers");
  // Encoder: in -> e0 -> e1 -> ... -> code.
  std::size_t prev = config.input_dim;
  int index = 0;
  for (std::size_t width : config.encoder) {
    layers_.emplace_back("ae.enc" + std::to_string(index++), prev, width,
                         Activation::kRelu, rng);
    prev = width;
  }
  // Decoder: mirror, linear final reconstruction.
  for (std::size_t i = config.encoder.size(); i-- > 0;) {
    const std::size_t width =
        i == 0 ? config.input_dim : config.encoder[i - 1];
    const Activation act =
        i == 0 ? Activation::kLinear : Activation::kRelu;
    layers_.emplace_back("ae.dec" + std::to_string(i), prev, width, act, rng);
    prev = width;
  }
}

std::vector<Param*> Autoencoder::params() {
  std::vector<Param*> out;
  for (Dense& layer : layers_) {
    for (Param* p : layer.params()) out.push_back(p);
  }
  return out;
}

double Autoencoder::train_batch(const Matrix& batch, Optimizer& optimizer,
                                double max_grad_norm) {
  NFV_CHECK(batch.rows() > 0, "train_batch on empty batch");
  const Matrix* x = &batch;
  for (Dense& layer : layers_) x = &layer.forward(*x);
  Matrix grad;
  const double loss = mse_loss(*x, batch, grad);
  const Matrix* g = &grad;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = &layers_[i].backward(*g);
  }
  clip_gradients(params(), max_grad_norm);
  optimizer.step();
  return loss;
}

void Autoencoder::reconstruct(const Matrix& batch, Matrix& output) const {
  // Forward without touching training caches: manual affine chain.
  Matrix current = batch;
  Matrix next;
  for (const Dense& layer : layers_) {
    matmul_transb(current, layer.weight().value, next);
    add_row_vector(next, layer.bias().value);
    apply_activation(next, layer.activation());
    current = next;
  }
  output = std::move(current);
}

std::vector<double> Autoencoder::reconstruction_error(
    const Matrix& batch) const {
  Matrix recon;
  reconstruct(batch, recon);
  std::vector<double> out(batch.rows(), 0.0);
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    double sum = 0.0;
    const float* a = batch.row(r);
    const float* b = recon.row(r);
    for (std::size_t c = 0; c < batch.cols(); ++c) {
      const double diff = static_cast<double>(a[c]) - b[c];
      sum += diff * diff;
    }
    out[r] = sum / static_cast<double>(batch.cols());
  }
  return out;
}

void Autoencoder::freeze_lower_layers(std::size_t trainable_top) {
  const std::size_t total = layers_.size();
  const std::size_t frozen =
      trainable_top >= total ? 0 : total - trainable_top;
  for (std::size_t i = 0; i < total; ++i) {
    for (Param* p : layers_[i].params()) p->frozen = i < frozen;
  }
}

}  // namespace nfv::ml
