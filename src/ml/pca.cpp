#include "ml/pca.h"

#include <cmath>

#include "util/check.h"

namespace nfv::ml {

Pca::Pca(const PcaConfig& config) : config_(config) {}

void Pca::fit(const Matrix& data, nfv::util::Rng& rng) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  NFV_CHECK(n >= 2, "Pca::fit requires at least two rows");
  const std::size_t k = std::min(config_.components, d);

  mean_.assign(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const float* row = data.row(r);
    for (std::size_t c = 0; c < d; ++c) mean_[c] += row[c];
  }
  for (double& m : mean_) m /= static_cast<double>(n);

  // Covariance (d × d). Feature widths here are small (template vocab or
  // TF-IDF dims), so the dense covariance is fine.
  std::vector<double> cov(d * d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const float* row = data.row(r);
    for (std::size_t i = 0; i < d; ++i) {
      const double xi = row[i] - mean_[i];
      for (std::size_t j = i; j < d; ++j) {
        cov[i * d + j] += xi * (row[j] - mean_[j]);
      }
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov[i * d + j] /= static_cast<double>(n - 1);
      cov[j * d + i] = cov[i * d + j];
    }
  }

  components_.resize(k, d);
  variance_.assign(k, 0.0);
  std::vector<double> v(d);
  std::vector<double> cv(d);
  for (std::size_t comp = 0; comp < k; ++comp) {
    for (double& x : v) x = rng.uniform(-1.0, 1.0);
    double eigenvalue = 0.0;
    for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
      // Deflate: remove projections onto previously found components.
      for (std::size_t prev = 0; prev < comp; ++prev) {
        double dot = 0.0;
        const float* p = components_.row(prev);
        for (std::size_t i = 0; i < d; ++i) dot += v[i] * p[i];
        for (std::size_t i = 0; i < d; ++i) v[i] -= dot * p[i];
      }
      // cv = Cov · v.
      for (std::size_t i = 0; i < d; ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < d; ++j) sum += cov[i * d + j] * v[j];
        cv[i] = sum;
      }
      double norm = 0.0;
      for (double x : cv) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-15) break;  // null direction
      double delta = 0.0;
      for (std::size_t i = 0; i < d; ++i) {
        const double next = cv[i] / norm;
        delta += (next - v[i]) * (next - v[i]);
        v[i] = next;
      }
      eigenvalue = norm;
      if (delta < config_.tolerance) break;
    }
    variance_[comp] = eigenvalue;
    for (std::size_t i = 0; i < d; ++i) {
      components_.at(comp, i) = static_cast<float>(v[i]);
    }
  }
}

std::vector<double> Pca::project(std::span<const float> x) const {
  NFV_CHECK(trained(), "Pca::project before fit");
  NFV_CHECK(x.size() == mean_.size(), "Pca::project width mismatch");
  std::vector<double> out(components_.rows(), 0.0);
  for (std::size_t c = 0; c < components_.rows(); ++c) {
    const float* p = components_.row(c);
    double dot = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      dot += (static_cast<double>(x[i]) - mean_[i]) * p[i];
    }
    out[c] = dot;
  }
  return out;
}

double Pca::residual_energy(std::span<const float> x) const {
  NFV_CHECK(trained(), "Pca::residual_energy before fit");
  NFV_CHECK(x.size() == mean_.size(), "Pca width mismatch");
  const std::vector<double> coeffs = project(x);
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double centered = static_cast<double>(x[i]) - mean_[i];
    total += centered * centered;
  }
  double projected = 0.0;
  for (double c : coeffs) projected += c * c;
  return std::max(0.0, total - projected);
}

}  // namespace nfv::ml
