// Scalar activation functions and their derivatives, applied elementwise.
#pragma once

#include <cmath>

#include "ml/matrix.h"

namespace nfv::ml {

inline float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
inline float sigmoid_grad_from_output(float y) { return y * (1.0f - y); }
inline float tanh_grad_from_output(float y) { return 1.0f - y * y; }
inline float relu(float x) { return x > 0.0f ? x : 0.0f; }
inline float relu_grad(float x) { return x > 0.0f ? 1.0f : 0.0f; }

/// Kinds of elementwise nonlinearity supported by Dense layers.
enum class Activation { kLinear, kRelu, kTanh, kSigmoid };

/// Apply an activation in place.
void apply_activation(Matrix& m, Activation act);

/// Given pre-activation input `pre` and post-activation output `post`,
/// multiply `grad` (dL/d-post) in place by d-post/d-pre.
void apply_activation_grad(const Matrix& pre, const Matrix& post, Matrix& grad,
                           Activation act);

}  // namespace nfv::ml
