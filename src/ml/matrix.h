// Dense row-major float matrix used by the from-scratch neural network
// stack. This is deliberately a small, dependency-free implementation: the
// paper's models (2 LSTM layers + 1 dense over a template vocabulary) are
// tiny by deep-learning standards, so clarity and determinism beat BLAS.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nfv::ml {

/// Row-major dense matrix of float. Rows typically index batch elements.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }
  std::span<float> row_span(std::size_t r) { return {row(r), cols_}; }
  std::span<const float> row_span(std::size_t r) const { return {row(r), cols_}; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  /// Set every element to `value`.
  void fill(float value);
  /// Set every element to zero (keeps shape).
  void zero() { fill(0.0f); }
  /// Reshape, reallocating as needed; contents are zeroed.
  void resize(std::size_t rows, std::size_t cols);

  /// Elementwise in-place operations.
  void add(const Matrix& other);                   // this += other
  void add_scaled(const Matrix& other, float k);   // this += k * other
  void scale(float k);                             // this *= k
  void hadamard(const Matrix& other);              // this *= other (elementwise)

  /// Frobenius-norm squared of all elements.
  double squared_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a (R×K) * b (K×C). `out` is resized and overwritten. Above a
/// work threshold the rows are computed in parallel blocks on the global
/// thread pool (bit-identical to the serial kernel: each output row is an
/// independent slot computed in the same k-order); inside an already
/// parallel region the serial kernel is used.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a (R×K) * bᵀ where b is (C×K). The natural layout for y = x·Wᵀ
/// with weight matrices stored as (out_features × in_features). Same
/// row-blocked parallel dispatch as matmul.
void matmul_transb(const Matrix& a, const Matrix& b, Matrix& out);

/// out += aᵀ (K×R stored as R×K) * b (R×C) — i.e. out (K×C) accumulates
/// gradient contributions Σ_r a[r]ᵀ b[r]. Used for weight gradients.
/// Parallelized over blocks of output *columns* (each element keeps the
/// serial r-ascending accumulation order, so results stay bit-identical).
void matmul_transa_accumulate(const Matrix& a, const Matrix& b, Matrix& out);

/// Serial reference kernels: always single-threaded, used by the parallel
/// dispatchers below the work threshold and by the determinism tests.
void matmul_serial(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_transb_serial(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_transa_accumulate_serial(const Matrix& a, const Matrix& b,
                                     Matrix& out);

/// Add a row vector (1×C or length-C matrix) to every row of m.
void add_row_vector(Matrix& m, const Matrix& row);

/// Accumulate column sums of m into row vector `out` (1×C).
void sum_rows_accumulate(const Matrix& m, Matrix& out);

}  // namespace nfv::ml
