// Dense row-major float matrix used by the from-scratch neural network
// stack. This is deliberately a small, dependency-free implementation: the
// paper's models (2 LSTM layers + 1 dense over a template vocabulary) are
// tiny by deep-learning standards, so clarity and determinism beat BLAS.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nfv::ml {

/// Row-major dense matrix of float. Rows typically index batch elements.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }
  std::span<float> row_span(std::size_t r) { return {row(r), cols_}; }
  std::span<const float> row_span(std::size_t r) const { return {row(r), cols_}; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  /// Set every element to `value`.
  void fill(float value);
  /// Set every element to zero (keeps shape).
  void zero() { fill(0.0f); }
  /// Reshape, reallocating as needed; contents are zeroed.
  void resize(std::size_t rows, std::size_t cols);

  /// Elementwise in-place operations.
  void add(const Matrix& other);                   // this += other
  void add_scaled(const Matrix& other, float k);   // this += k * other
  void scale(float k);                             // this *= k
  void hadamard(const Matrix& other);              // this *= other (elementwise)

  /// Frobenius-norm squared of all elements.
  double squared_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Runtime switch for the AVX2+FMA kernel dispatch shared by every packed
/// kernel in this file (scoring *and* training take the same branch).
/// Defaults to true when the CPU supports AVX2+FMA and the environment
/// variable NFVPRED_NO_AVX2 is unset; setting it to false forces the
/// baseline (unfused) kernels everywhere — the A/B escape hatch used by
/// the `--no-avx2` bench flags and the determinism tests. Results are
/// bit-identical across thread counts *within* either mode; the two modes
/// may differ from each other exactly as two machines with and without
/// FMA would.
bool simd_kernels_enabled();
void set_simd_kernels_enabled(bool enabled);

/// out = a (R×K) * b (K×C). `out` is resized and overwritten. Above a
/// work threshold the rows are computed in parallel blocks on the global
/// thread pool (bit-identical to the serial kernel: each output row is an
/// independent slot computed in the same k-order); inside an already
/// parallel region the serial kernel is used. For R ≥ 8 rows the B
/// operand is packed into 8-column k-major panels (same layout machinery
/// as matmul_transb) and a 4-row × 8-column register-tiled kernel is used;
/// every accumulator chain keeps the k-ascending order, so packed and
/// row-at-a-time results match bit for bit.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// Pack the B operand (K×C) of out = a·b into 8-column k-major panels for
/// matmul_packed. Pack cost is O(b.size()); pre-packing pays off when the
/// same B multiplies many A matrices — e.g. the per-timestep
/// dgates_t × W products of BPTT, which share one weight matrix across
/// the whole sequence.
void pack_matmul_b(const Matrix& b, std::vector<float>& packed);

/// out = a·b with `packed` previously produced by pack_matmul_b(b).
/// Bit-identical to matmul(a, b, out) for any row count and thread count.
void matmul_packed(const Matrix& a, const Matrix& b,
                   const std::vector<float>& packed, Matrix& out);

/// out = a (R×K) * bᵀ where b is (C×K). The natural layout for y = x·Wᵀ
/// with weight matrices stored as (out_features × in_features). Same
/// row-blocked parallel dispatch as matmul.
void matmul_transb(const Matrix& a, const Matrix& b, Matrix& out);

/// out += aᵀ (K×R stored as R×K) * b (R×C) — i.e. out (K×C) accumulates
/// gradient contributions Σ_r a[r]ᵀ b[r]. Used for weight gradients.
/// Register-tiled 4-row × 8-column kernel with AVX2+FMA dispatch: each
/// out element adds a sum accumulated from zero in r-ascending order, so
/// any tiling and any column-block parallel split produce the same bits.
/// Parallelized over blocks of output *columns*.
void matmul_transa_accumulate(const Matrix& a, const Matrix& b, Matrix& out);

/// Serial reference kernels: always single-threaded, used by the parallel
/// dispatchers below the work threshold and by the determinism tests.
void matmul_serial(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_transb_serial(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_transa_accumulate_serial(const Matrix& a, const Matrix& b,
                                     Matrix& out);

/// Add a row vector (1×C or length-C matrix) to every row of m.
void add_row_vector(Matrix& m, const Matrix& row);

/// Accumulate column sums of m into row vector `out` (1×C).
void sum_rows_accumulate(const Matrix& m, Matrix& out);

}  // namespace nfv::ml
