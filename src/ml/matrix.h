// Dense row-major float matrix used by the from-scratch neural network
// stack. This is deliberately a small, dependency-free implementation: the
// paper's models (2 LSTM layers + 1 dense over a template vocabulary) are
// tiny by deep-learning standards, so clarity and determinism beat BLAS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace nfv::ml {

/// Row-major dense matrix of float. Rows typically index batch elements.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }
  std::span<float> row_span(std::size_t r) { return {row(r), cols_}; }
  std::span<const float> row_span(std::size_t r) const { return {row(r), cols_}; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  /// Set every element to `value`.
  void fill(float value);
  /// Set every element to zero (keeps shape).
  void zero() { fill(0.0f); }
  /// Reshape, reallocating as needed; contents are zeroed.
  void resize(std::size_t rows, std::size_t cols);

  /// Elementwise in-place operations.
  void add(const Matrix& other);                   // this += other
  void add_scaled(const Matrix& other, float k);   // this += k * other
  void scale(float k);                             // this *= k
  void hadamard(const Matrix& other);              // this *= other (elementwise)

  /// Frobenius-norm squared of all elements.
  double squared_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Runtime switch for the AVX2+FMA kernel dispatch shared by every packed
/// kernel in this file (scoring *and* training take the same branch).
/// Defaults to true when the CPU supports AVX2+FMA and the environment
/// variable NFVPRED_NO_AVX2 is unset; setting it to false forces the
/// baseline (unfused) kernels everywhere — the A/B escape hatch used by
/// the `--no-avx2` bench flags and the determinism tests. Results are
/// bit-identical across thread counts *within* either mode; the two modes
/// may differ from each other exactly as two machines with and without
/// FMA would.
bool simd_kernels_enabled();
void set_simd_kernels_enabled(bool enabled);

/// out = a (R×K) * b (K×C). `out` is resized and overwritten. Above a
/// work threshold the rows are computed in parallel blocks on the global
/// thread pool (bit-identical to the serial kernel: each output row is an
/// independent slot computed in the same k-order); inside an already
/// parallel region the serial kernel is used. For R ≥ 8 rows the B
/// operand is packed into 8-column k-major panels (same layout machinery
/// as matmul_transb) and a 4-row × 8-column register-tiled kernel is used;
/// every accumulator chain keeps the k-ascending order, so packed and
/// row-at-a-time results match bit for bit.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// Pack the B operand (K×C) of out = a·b into 8-column k-major panels for
/// matmul_packed. Pack cost is O(b.size()); pre-packing pays off when the
/// same B multiplies many A matrices — e.g. the per-timestep
/// dgates_t × W products of BPTT, which share one weight matrix across
/// the whole sequence.
void pack_matmul_b(const Matrix& b, std::vector<float>& packed);

/// out = a·b with `packed` previously produced by pack_matmul_b(b).
/// Bit-identical to matmul(a, b, out) for any row count and thread count.
void matmul_packed(const Matrix& a, const Matrix& b,
                   const std::vector<float>& packed, Matrix& out);

/// out = a (R×K) * bᵀ where b is (C×K). The natural layout for y = x·Wᵀ
/// with weight matrices stored as (out_features × in_features). Same
/// row-blocked parallel dispatch as matmul.
void matmul_transb(const Matrix& a, const Matrix& b, Matrix& out);

/// out += aᵀ (K×R stored as R×K) * b (R×C) — i.e. out (K×C) accumulates
/// gradient contributions Σ_r a[r]ᵀ b[r]. Used for weight gradients.
/// Register-tiled 4-row × 8-column kernel with AVX2+FMA dispatch: each
/// out element adds a sum accumulated from zero in r-ascending order, so
/// any tiling and any column-block parallel split produce the same bits.
/// Parallelized over blocks of output *columns*.
void matmul_transa_accumulate(const Matrix& a, const Matrix& b, Matrix& out);

/// Serial reference kernels: always single-threaded, used by the parallel
/// dispatchers below the work threshold and by the determinism tests.
void matmul_serial(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_transb_serial(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_transa_accumulate_serial(const Matrix& a, const Matrix& b,
                                     Matrix& out);

/// Post-training int8 image of a weight matrix b (C×K, out_features ×
/// in_features — the matmul_transb B operand). Weights are quantized
/// symmetrically per output channel (scale[c] = max|b[c,:]| / 127, all-zero
/// rows get scale 1 so nothing divides by zero) and stored pre-packed for
/// the int8 kernel: full groups of 8 channels live in k-major panels of
/// 4-k × 8-channel 32-byte blocks (the vpmaddubsw operand layout), the
/// C mod 8 tail channels follow row-major, and K is zero-padded to a
/// multiple of 4. `col_sums[c]` caches Σ_k q[c][k] for the activation
/// zero-point correction so the kernel epilogue is a single fused
/// subtract-and-scale per output.
struct QuantizedMatrix {
  std::size_t rows = 0;          ///< C, output channels (b.rows()).
  std::size_t cols = 0;          ///< K, logical reduction depth (b.cols()).
  std::size_t cols_padded = 0;   ///< K rounded up to a multiple of 4.
  std::vector<std::int8_t> data; ///< Packed panels then tail rows.
  std::vector<float> scales;     ///< Per-channel dequant scale (length C).
  std::vector<std::int32_t> col_sums;  ///< Per-channel Σ_k q[c][k].

  bool empty() const { return rows == 0; }
  /// Resident bytes of the int8 image (panels + scales + col_sums).
  std::size_t weight_bytes() const {
    return data.size() * sizeof(std::int8_t) +
           scales.size() * sizeof(float) +
           col_sums.size() * sizeof(std::int32_t);
  }
  /// Bytes the same matrix occupies in fp32 (rows × cols × 4).
  std::size_t fp32_bytes() const { return rows * cols * sizeof(float); }
};

/// Quantize and pack b (C×K) into `out`. Deterministic: round-to-nearest-
/// even via the 1.5·2^23 magic constant, identical on every kernel tier.
/// Degenerate channels are safe by construction — an all-zero row gets
/// scale 1 and all-zero codes (exact), a constant row lands exactly on
/// ±127 (exact up to one rounding).
void quantize_pack_b(const Matrix& b, QuantizedMatrix& out);

/// out = a (R×K) * dequant(qb)ᵀ — the int8 twin of matmul_transb.
/// Activations are quantized on the fly per row to unsigned 7-bit
/// (asymmetric, zero-point corrected through qb.col_sums); products
/// accumulate in exact int32 and a single fp32 scale pair maps back.
/// Contract (stronger than the fp32 family): results are bit-identical
/// across thread counts, batch sizes, AND between the AVX2
/// vpmaddubsw/vpmaddwd kernel and the serial reference — integer
/// accumulation is associative, the u7 activation range keeps every
/// vpmaddubsw pair sum below i16 saturation, and the float epilogue is the
/// same two-rounding expression on every tier. Same row-blocked parallel
/// dispatch as matmul_transb.
void matmul_quant(const Matrix& a, const QuantizedMatrix& qb, Matrix& out);

/// Serial reference for matmul_quant (single-threaded; bit-identical to
/// the parallel/AVX2 paths by the contract above).
void matmul_quant_serial(const Matrix& a, const QuantizedMatrix& qb,
                         Matrix& out);

/// Add a row vector (1×C or length-C matrix) to every row of m.
void add_row_vector(Matrix& m, const Matrix& row);

/// Accumulate column sums of m into row vector `out` (1×C).
void sum_rows_accumulate(const Matrix& m, Matrix& out);

}  // namespace nfv::ml
