// Bounded multi-producer queue (Vyukov-style bounded ring).
//
// Two async-ingest edges need many writers and one reader:
//  - line routing: several producer threads feeding one shard-worker's
//    input queue;
//  - warning publication: every shard worker pushing StreamWarnings into
//    the single queue the caller drains.
//
// Each ring cell carries a sequence counter; a producer claims a slot
// with one fetch-free CAS on the tail ticket and publishes the payload by
// release-storing the cell sequence, so producers never contend on a lock
// and the consumer never observes a half-written cell. The implementation
// is the classic Dmitry Vyukov bounded MPMC design (safe a fortiori for
// our MPSC use), lock-free in the practical sense: no mutexes anywhere,
// and a stalled thread can only delay the slots it has claimed.
//
// Per-producer FIFO is preserved: pushes from one thread claim strictly
// increasing tickets, and the consumer pops in ticket order — the
// property the deterministic ingest mode relies on (a vPE's events flow
// producer → one worker → warning queue without reordering).
//
// Backpressure mirrors SpscQueue: try_push/try_pop are non-blocking;
// push/pop block with yield/sleep backoff; close() fails further pushes
// while pop drains remaining items before reporting exhaustion.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/spsc_queue.h"  // queue_detail::backoff / round_up_pow2

namespace nfv::util {

template <typename T>
class MpscQueue {
 public:
  /// Capacity is rounded up to the next power of two (min 2).
  explicit MpscQueue(std::size_t capacity)
      : capacity_(queue_detail::round_up_pow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        cells_(std::make_unique<Cell[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Queue-depth gauge for observability: any thread may sample it while
  /// producers and the consumer run. Reads head BEFORE tail so a racy
  /// sample cannot underflow, and clamps to capacity() (concurrent
  /// pops+pushes between the two reads could otherwise overshoot). Exact
  /// when quiescent.
  std::size_t depth() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t d = tail >= head ? tail - head : 0;
    return d > capacity_ ? capacity_ : d;
  }
  std::size_t size() const { return depth(); }

  /// Backpressure-stall counter: how many times a producer found the
  /// ring full — once per failed try_push(), and once per blocking
  /// push() episode (the internal retry spin does NOT inflate it).
  std::uint64_t stall_count() const {
    return stalls_.load(std::memory_order_relaxed);
  }

  /// Any thread. False when the ring is full or the queue is closed — and
  /// then `value` is NOT consumed (an rvalue argument is only moved from
  /// on success), so blocking wrappers can safely retry with it.
  bool try_push(T&& value) { return try_push_impl(value, true); }
  bool try_push(const T& value) {
    T copy(value);
    return try_push_impl(copy, true);
  }

  /// Any thread. Blocks until space is available; false if the queue was
  /// closed before the item could be enqueued.
  bool push(T value) {
    unsigned round = 0;
    bool count_stall = true;
    for (;;) {
      if (try_push_impl(value, count_stall)) return true;
      count_stall = false;  // one stall per blocking episode
      if (closed_.load(std::memory_order_acquire)) return false;
      queue_detail::backoff(round);
    }
  }

  /// Consumer. False when the ring is empty. (The pop side is written to
  /// the full MPMC protocol, so a second consumer would also be safe.)
  bool try_pop(T& out) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(cell.value);
          cell.seq.store(pos + capacity_, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty (or the producer hasn't published yet)
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer. Blocks until an item arrives; false only when the queue is
  /// closed AND fully drained.
  bool pop(T& out) {
    unsigned round = 0;
    for (;;) {
      if (try_pop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // close() is sequenced after every producer's final push that it
        // is meant to cover; re-check once so those pushes are not lost.
        return try_pop(out);
      }
      queue_detail::backoff(round);
    }
  }

  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  bool try_push_impl(T& value, bool count_stall) {
    if (closed_.load(std::memory_order_relaxed)) return false;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry with it.
      } else if (dif < 0) {
        // Full: the slot still holds an unpopped item.
        if (count_stall) stalls_.fetch_add(1, std::memory_order_relaxed);
        return false;
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<std::size_t> head_{0};  // pop ticket
  alignas(64) std::atomic<std::size_t> tail_{0};  // push ticket
  alignas(64) std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> stalls_{0};  // full-ring push attempts
};

}  // namespace nfv::util
