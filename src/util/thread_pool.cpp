#include "util/thread_pool.h"

#include <cstdlib>
#include <memory>

#include "util/check.h"

namespace nfv::util {

namespace {

// Set while the current thread executes chunks of a multi-threaded job
// (workers and the participating caller). Not set by the size-1 inline
// path: an inline loop is plain serial code, so kernels below it may still
// use the global pool.
thread_local bool tl_in_parallel_region = false;

}  // namespace

bool ThreadPool::in_parallel_region() { return tl_in_parallel_region; }

ThreadPool::ScopedRegion::ScopedRegion() : previous_(tl_in_parallel_region) {
  tl_in_parallel_region = true;
}

ThreadPool::ScopedRegion::~ScopedRegion() {
  tl_in_parallel_region = previous_;
}

void ServiceThreads::start(std::size_t count,
                           std::function<void(std::size_t)> fn,
                           bool serial_kernels) {
  NFV_CHECK(threads_.empty(), "ServiceThreads already started");
  NFV_CHECK(fn != nullptr, "ServiceThreads requires a loop function");
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([fn, i, serial_kernels] {
      if (serial_kernels) {
        ThreadPool::ScopedRegion region;
        fn(i);
      } else {
        fn(i);
      }
    });
  }
}

void ServiceThreads::join() {
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("NFVPRED_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(resolve_threads(threads)) {
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::record_error(std::size_t index) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (!error_ || index < error_index_) {
    error_ = std::current_exception();
    error_index_ = index;
  }
}

void ThreadPool::run_chunks(const std::function<void(std::size_t)>& fn,
                            std::size_t end) {
  for (;;) {
    const std::size_t start = next_index_.fetch_add(job_chunk_);
    if (start >= end) break;
    const std::size_t stop = std::min(start + job_chunk_, end);
    for (std::size_t i = start; i < stop; ++i) {
      try {
        fn(i);
      } catch (...) {
        // Every index still runs; the lowest failing index wins, matching
        // what the serial loop would have thrown first.
        record_error(i);
      }
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t end = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      fn = job_fn_;
      end = job_end_;
    }
    tl_in_parallel_region = true;
    run_chunks(*fn, end);
    tl_in_parallel_region = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++finished_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  NFV_CHECK(!tl_in_parallel_region,
            "nested parallel_for: already inside a parallel region");
  if (end <= begin) return;
  const std::size_t n = end - begin;

  // Serial path: a size-1 pool (or a single index) runs inline with no
  // synchronization and no region flag. Failure semantics match the
  // parallel path exactly: every index runs, the lowest failing index's
  // exception is rethrown.
  if (threads_ == 1 || n == 1) {
    std::exception_ptr first_error;
    for (std::size_t i = begin; i < end; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  std::lock_guard<std::mutex> job_lock(job_mutex_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_end_ = end;
    job_chunk_ = std::max<std::size_t>(1, n / (threads_ * 4));
    next_index_.store(begin);
    finished_workers_ = 0;
    ++epoch_;
  }
  work_cv_.notify_all();

  tl_in_parallel_region = true;
  run_chunks(fn, end);
  tl_in_parallel_region = false;

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [&] { return finished_workers_ == workers_.size(); });
    job_fn_ = nullptr;
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_invoke(
    const std::vector<std::function<void()>>& tasks) {
  parallel_for(0, tasks.size(), [&tasks](std::size_t i) { tasks[i](); });
}

namespace {

std::mutex g_global_pool_mu;
std::unique_ptr<ThreadPool> g_global_pool;  // NOLINT: joined at exit

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>(0);
  return *g_global_pool;
}

void set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  g_global_pool = std::make_unique<ThreadPool>(threads);
}

}  // namespace nfv::util
