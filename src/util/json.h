// Minimal JSON emit + parse.
//
// One shared formatter for every JSON surface the project has grown —
// the BENCH_*.json files the throughput benches write, the runtime
// stats dumps of the async ingest control plane, and the CLI — so
// escaping, number formatting and structural bookkeeping live in one
// place instead of being hand-rolled per call site. The writer produces
// deterministic, pretty-printed (2-space) output with round-trippable
// doubles (shortest std::to_chars form); the parser is the counterpart
// used by the round-trip tests and by anything that needs to read the
// files back. Neither aims to be a general JSON library: no streaming
// input, no duplicate-key policy, objects keep insertion order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace nfv::util {

/// Escape `s` for inclusion inside a JSON string literal (quotes NOT
/// added): ", \ and control characters become their escape sequences.
std::string json_escape(std::string_view s);

/// Structural JSON writer: begin/end object/array, key(), value().
/// Commas, colons, quoting, indentation and number formatting are
/// handled internally; misuse (value with no pending key inside an
/// object, end without begin) trips an NFV_CHECK. Doubles are written in
/// shortest round-trip form; non-finite doubles become null (JSON has no
/// NaN/Inf).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or begin_*().
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>) {
      return value_int(static_cast<std::int64_t>(v));
    } else {
      return value_uint(static_cast<std::uint64_t>(v));
    }
  }
  JsonWriter& null();

  /// Convenience: key(k) followed by value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// The document so far. Call after the outermost end_*().
  const std::string& str() const { return out_; }
  bool complete() const;

 private:
  JsonWriter& value_int(std::int64_t v);
  JsonWriter& value_uint(std::uint64_t v);
  void begin_value();
  void indent();

  std::string out_;
  std::string stack_;       // '{' or '[' per open scope
  bool comma_pending_ = false;
  bool key_pending_ = false;
};

/// Parsed JSON document (tree form). Object members keep file order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_null() const { return kind == Kind::kNull; }
  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* find(std::string_view key) const;
};

/// Parse a complete JSON document. Returns nullopt on malformed input
/// (and a human-readable reason in *error when provided). Supports the
/// standard escapes including \uXXXX (encoded to UTF-8; surrogate pairs
/// handled).
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace nfv::util
