#include "util/seq_interner.h"

#include <cstring>
#include <string_view>

#include "util/check.h"
#include "util/interner.h"

namespace nfv::util {

namespace {

constexpr std::size_t kInitialSlots = 64;  // power of two

}  // namespace

std::uint64_t SharedSeqInterner::hash_words(const std::uint32_t* words,
                                            std::size_t count) {
  // Same mix as the token interners, folded over the raw word bytes, so
  // the sequence hash quality matches the (well-tested) string hash.
  return StringInterner::hash_bytes(std::string_view(
      reinterpret_cast<const char*>(words), count * sizeof(std::uint32_t)));
}

SharedSeqInterner::SharedSeqInterner() : SharedSeqInterner(Config{}) {}

SharedSeqInterner::SharedSeqInterner(Config config) : config_(config) {
  auto table = std::make_unique<Table>(kInitialSlots);
  table_bytes_.store(kInitialSlots * sizeof(std::uint32_t),
                     std::memory_order_relaxed);
  table_.store(table.get(), std::memory_order_release);
  tables_.push_back(std::move(table));
}

SharedSeqInterner::~SharedSeqInterner() {
  const std::uint32_t n = size_.load(std::memory_order_acquire);
  const std::size_t used_blocks =
      (static_cast<std::size_t>(n) + kBlockSize - 1) >> kBlockShift;
  for (std::size_t b = 0; b < used_blocks; ++b) {
    delete[] blocks_[b].load(std::memory_order_relaxed);
  }
}

std::uint32_t SharedSeqInterner::probe(const Table& table,
                                       const std::uint32_t* words,
                                       std::size_t count,
                                       std::uint64_t hash) const {
  std::size_t slot = static_cast<std::size_t>(hash) & table.mask;
  while (true) {
    const std::uint32_t stored =
        table.slots[slot].load(std::memory_order_acquire);
    if (stored == 0) return kNotFound;
    const std::uint32_t id = stored - 1;
    const Entry& e = entry(id);
    if (e.hash == hash && e.length == count &&
        std::memcmp(e.data, words, count * sizeof(std::uint32_t)) == 0) {
      return id;
    }
    slot = (slot + 1) & table.mask;
  }
}

std::uint32_t SharedSeqInterner::find(const std::uint32_t* words,
                                      std::size_t count) const {
  return find_hashed(words, count, hash_words(words, count));
}

std::uint32_t SharedSeqInterner::find_hashed(const std::uint32_t* words,
                                             std::size_t count,
                                             std::uint64_t hash) const {
  return probe(*table_.load(std::memory_order_acquire), words, count, hash);
}

std::uint32_t SharedSeqInterner::intern(const std::uint32_t* words,
                                        std::size_t count) {
  const std::uint64_t hash = hash_words(words, count);
  const std::uint32_t found = find_hashed(words, count, hash);
  if (found != kNotFound) return found;
  return admit(words, count, hash, /*enforce_caps=*/true);
}

std::uint32_t SharedSeqInterner::register_seq(const std::uint32_t* words,
                                              std::size_t count) {
  const std::uint64_t hash = hash_words(words, count);
  const std::uint32_t found = find_hashed(words, count, hash);
  if (found != kNotFound) return found;
  return admit(words, count, hash, /*enforce_caps=*/false);
}

const std::uint32_t* SharedSeqInterner::append_words(
    const std::uint32_t* words, std::size_t count) {
  if (chunk_cap_ - chunk_used_ < count) {
    // Chunks double up to 1 MiB so small fleets stay small; words in
    // older chunks never move (published views stay valid forever).
    std::size_t cap = chunks_.empty() ? 1024 : chunk_cap_ * 2;
    if (cap > (1u << 18)) cap = 1u << 18;  // 256K words = 1 MiB
    if (cap < count) cap = count;
    chunks_.push_back(std::make_unique<std::uint32_t[]>(cap));
    chunk_cap_ = cap;
    chunk_used_ = 0;
    chunk_bytes_.fetch_add(cap * sizeof(std::uint32_t),
                           std::memory_order_relaxed);
  }
  std::uint32_t* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, words, count * sizeof(std::uint32_t));
  chunk_used_ += count;
  return dst;
}

std::uint32_t SharedSeqInterner::admit(const std::uint32_t* words,
                                       std::size_t count, std::uint64_t hash,
                                       bool enforce_caps) {
  std::lock_guard<std::mutex> lock(mu_);
  // Double-check under the lock: another thread may have admitted the
  // sequence between our lock-free miss and here.
  Table* table = table_.load(std::memory_order_relaxed);
  const std::uint32_t raced = probe(*table, words, count, hash);
  if (raced != kNotFound) return raced;

  const std::uint32_t published = size_.load(std::memory_order_relaxed);
  if (enforce_caps &&
      (published >= config_.max_seqs ||
       word_count_.load(std::memory_order_relaxed) + count >
           config_.max_words)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return kNotFound;
  }
  // Ids stay below the private-overflow base so callers can layer a
  // private id range on top, exactly like ScopedInterner does for
  // token ids.
  NFV_CHECK(published < ScopedInterner::kPrivateBase &&
                static_cast<std::size_t>(published) < kMaxBlocks * kBlockSize,
            "shared seq interner id space exhausted");
  NFV_CHECK(count <= 0xFFFFFFFFull, "sequence too long");

  const std::size_t block = published >> kBlockShift;
  Entry* entries = blocks_[block].load(std::memory_order_relaxed);
  if (entries == nullptr) {
    entries = new Entry[kBlockSize];
    blocks_[block].store(entries, std::memory_order_release);
  }
  Entry& e = entries[published & (kBlockSize - 1)];
  e.data = append_words(words, count);
  e.length = static_cast<std::uint32_t>(count);
  e.hash = hash;
  word_count_.fetch_add(count, std::memory_order_relaxed);

  // Grow BEFORE publishing so the new id is inserted exactly once, into
  // the table every subsequent reader will load (see SharedInterner).
  if ((static_cast<std::size_t>(published) + 2) * 4 >
      table->slots.size() * 3) {
    grow_table_locked(published);
    table = table_.load(std::memory_order_relaxed);
  }

  std::size_t slot = static_cast<std::size_t>(hash) & table->mask;
  while (table->slots[slot].load(std::memory_order_relaxed) != 0) {
    slot = (slot + 1) & table->mask;
  }
  // Publication point: the release-store makes the entry (and its block
  // pointer and words) visible to any reader that acquires this slot.
  table->slots[slot].store(published + 1, std::memory_order_release);
  size_.store(published + 1, std::memory_order_release);
  return published;
}

void SharedSeqInterner::grow_table_locked(std::size_t count) {
  Table* old = table_.load(std::memory_order_relaxed);
  auto fresh = std::make_unique<Table>(old->slots.size() * 2);
  for (std::uint32_t id = 0; id < count; ++id) {
    const Entry& e = entry(id);
    std::size_t slot = static_cast<std::size_t>(e.hash) & fresh->mask;
    while (fresh->slots[slot].load(std::memory_order_relaxed) != 0) {
      slot = (slot + 1) & fresh->mask;
    }
    fresh->slots[slot].store(id + 1, std::memory_order_relaxed);
  }
  table_bytes_.fetch_add(fresh->slots.size() * sizeof(std::uint32_t),
                         std::memory_order_relaxed);
  // Retired tables stay resident so racing readers never touch freed
  // memory; total retired memory is bounded by the geometric growth.
  table_.store(fresh.get(), std::memory_order_release);
  tables_.push_back(std::move(fresh));
}

std::size_t SharedSeqInterner::bytes() const {
  const std::size_t n = size_.load(std::memory_order_acquire);
  const std::size_t blocks = (n + kBlockSize - 1) >> kBlockShift;
  return chunk_bytes_.load(std::memory_order_relaxed) +
         blocks * kBlockSize * sizeof(Entry) +
         table_bytes_.load(std::memory_order_relaxed);
}

}  // namespace nfv::util
