#include "util/interner.h"

#include <cstring>

#include "util/check.h"

namespace nfv::util {

namespace {

constexpr std::size_t kInitialSlots = 64;  // power of two
constexpr std::uint64_t kSeed = 0x9E3779B97F4A7C15ull;

inline std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer: cheap and well-distributed for short keys.
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

inline std::uint64_t load64(const char* p, std::size_t n) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, n);
  return v;
}

}  // namespace

std::uint64_t StringInterner::hash_bytes(std::string_view text) {
  // Unaligned 8-byte chunks folded with multiply-xor; syslog tokens are
  // short (typically <= 16 bytes) so this is one or two rounds.
  std::uint64_t h = kSeed ^ (static_cast<std::uint64_t>(text.size()) << 1);
  const char* p = text.data();
  std::size_t n = text.size();
  while (n >= 8) {
    h = mix64(h ^ load64(p, 8));
    p += 8;
    n -= 8;
  }
  if (n > 0) h = mix64(h ^ load64(p, n));
  return h;
}

StringInterner::StringInterner() : slots_(kInitialSlots, 0) {
  mask_ = kInitialSlots - 1;
}

std::uint32_t StringInterner::find(std::string_view text) const {
  return find_hashed(text, hash_bytes(text));
}

std::uint32_t StringInterner::find_hashed(std::string_view text,
                                          std::uint64_t hash) const {
  std::size_t slot = static_cast<std::size_t>(hash) & mask_;
  while (true) {
    const std::uint32_t stored = slots_[slot];
    if (stored == 0) return kNotFound;
    const std::uint32_t id = stored - 1;
    if (hashes_[id] == hash && equals(id, text)) return id;
    slot = (slot + 1) & mask_;
  }
}

std::uint32_t StringInterner::intern(std::string_view text) {
  return intern_hashed(text, hash_bytes(text));
}

std::uint32_t StringInterner::intern_hashed(std::string_view text,
                                            std::uint64_t hash) {
  std::size_t slot = static_cast<std::size_t>(hash) & mask_;
  while (true) {
    const std::uint32_t stored = slots_[slot];
    if (stored == 0) break;
    const std::uint32_t id = stored - 1;
    if (hashes_[id] == hash && equals(id, text)) return id;
    slot = (slot + 1) & mask_;
  }

  NFV_CHECK(entries_.size() < kNotFound, "interner id space exhausted");
  NFV_CHECK(arena_.size() + text.size() <= 0xFFFFFFFFull,
            "interner arena exceeds 4 GiB");
  const auto id = static_cast<std::uint32_t>(entries_.size());
  Entry entry;
  entry.offset = static_cast<std::uint32_t>(arena_.size());
  entry.length = static_cast<std::uint32_t>(text.size());
  arena_.insert(arena_.end(), text.begin(), text.end());
  entries_.push_back(entry);
  hashes_.push_back(hash);
  slots_[slot] = id + 1;

  // Keep load factor under ~0.75 so probe chains stay short.
  if ((entries_.size() + 1) * 4 > slots_.size() * 3) grow_table();
  return id;
}

void StringInterner::grow_table() {
  const std::size_t new_size = slots_.size() * 2;
  std::vector<std::uint32_t> fresh(new_size, 0);
  const std::size_t new_mask = new_size - 1;
  for (std::uint32_t id = 0; id < entries_.size(); ++id) {
    std::size_t slot = static_cast<std::size_t>(hashes_[id]) & new_mask;
    while (fresh[slot] != 0) slot = (slot + 1) & new_mask;
    fresh[slot] = id + 1;
  }
  slots_ = std::move(fresh);
  mask_ = new_mask;
}

// ---------------------------------------------------------------------------
// SharedInterner

SharedInterner::SharedInterner() : SharedInterner(Config{}) {}

SharedInterner::SharedInterner(Config config) : config_(config) {
  auto table = std::make_unique<Table>(kInitialSlots);
  table_bytes_.store(kInitialSlots * sizeof(std::uint32_t),
                     std::memory_order_relaxed);
  table_.store(table.get(), std::memory_order_release);
  tables_.push_back(std::move(table));
  // Reserved tree token ids (see signature_tree.h): the wildcard and the
  // empty-line placeholder must be ids 0 and 1 in every tier.
  register_token("<*>");
  register_token("<empty>");
}

SharedInterner::~SharedInterner() {
  const std::uint32_t n = size_.load(std::memory_order_acquire);
  const std::size_t used_blocks =
      (static_cast<std::size_t>(n) + kBlockSize - 1) >> kBlockShift;
  for (std::size_t b = 0; b < used_blocks; ++b) {
    delete[] blocks_[b].load(std::memory_order_relaxed);
  }
}

std::uint32_t SharedInterner::probe(const Table& table, std::string_view text,
                                    std::uint64_t hash) const {
  std::size_t slot = static_cast<std::size_t>(hash) & table.mask;
  while (true) {
    const std::uint32_t stored =
        table.slots[slot].load(std::memory_order_acquire);
    if (stored == 0) return kNotFound;
    const std::uint32_t id = stored - 1;
    const Entry& e = entry(id);
    if (e.hash == hash &&
        std::string_view(e.data, e.length) == text) {
      return id;
    }
    slot = (slot + 1) & table.mask;
  }
}

std::uint32_t SharedInterner::find(std::string_view text) const {
  return find_hashed(text, StringInterner::hash_bytes(text));
}

std::uint32_t SharedInterner::find_hashed(std::string_view text,
                                          std::uint64_t hash) const {
  return probe(*table_.load(std::memory_order_acquire), text, hash);
}

std::uint32_t SharedInterner::intern(std::string_view text) {
  return intern_hashed(text, StringInterner::hash_bytes(text));
}

std::uint32_t SharedInterner::intern_hashed(std::string_view text,
                                            std::uint64_t hash) {
  const std::uint32_t found = find_hashed(text, hash);
  if (found != kNotFound) return found;
  return admit(text, hash, /*enforce_caps=*/true);
}

std::uint32_t SharedInterner::register_token(std::string_view text) {
  const std::uint64_t hash = StringInterner::hash_bytes(text);
  const std::uint32_t found = find_hashed(text, hash);
  if (found != kNotFound) return found;
  return admit(text, hash, /*enforce_caps=*/false);
}

const char* SharedInterner::append_bytes(std::string_view text) {
  if (chunk_cap_ - chunk_used_ < text.size()) {
    // Chunks double up to 1 MiB so small fleets stay small; bytes in
    // older chunks never move (published views stay valid forever).
    std::size_t cap = chunks_.empty() ? 4096 : chunk_cap_ * 2;
    if (cap > (1u << 20)) cap = 1u << 20;
    if (cap < text.size()) cap = text.size();
    chunks_.push_back(std::make_unique<char[]>(cap));
    chunk_cap_ = cap;
    chunk_used_ = 0;
    chunk_bytes_.fetch_add(cap, std::memory_order_relaxed);
  }
  char* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, text.data(), text.size());
  chunk_used_ += text.size();
  return dst;
}

std::uint32_t SharedInterner::admit(std::string_view text, std::uint64_t hash,
                                    bool enforce_caps) {
  std::lock_guard<std::mutex> lock(mu_);
  // Double-check under the lock: another thread may have admitted the
  // token between our lock-free miss and here.
  Table* table = table_.load(std::memory_order_relaxed);
  const std::uint32_t raced = probe(*table, text, hash);
  if (raced != kNotFound) return raced;

  const std::uint32_t count = size_.load(std::memory_order_relaxed);
  if (enforce_caps &&
      (count >= config_.max_tokens ||
       text_bytes_.load(std::memory_order_relaxed) + text.size() >
           config_.max_bytes)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return kNotFound;
  }
  NFV_CHECK(count < ScopedInterner::kPrivateBase &&
                static_cast<std::size_t>(count) < kMaxBlocks * kBlockSize,
            "shared interner id space exhausted");

  const std::size_t block = count >> kBlockShift;
  Entry* entries = blocks_[block].load(std::memory_order_relaxed);
  if (entries == nullptr) {
    entries = new Entry[kBlockSize];
    blocks_[block].store(entries, std::memory_order_release);
  }
  Entry& e = entries[count & (kBlockSize - 1)];
  e.data = append_bytes(text);
  e.length = static_cast<std::uint32_t>(text.size());
  e.hash = hash;
  text_bytes_.fetch_add(text.size(), std::memory_order_relaxed);

  // Grow BEFORE publishing so the new id is inserted exactly once, into
  // the table every subsequent reader will load. Readers racing the swap
  // keep probing the retired table — every previously published id is
  // still in it, and this id simply reads as a transient miss.
  if ((static_cast<std::size_t>(count) + 2) * 4 > table->slots.size() * 3) {
    grow_table_locked(count);
    table = table_.load(std::memory_order_relaxed);
  }

  std::size_t slot = static_cast<std::size_t>(hash) & table->mask;
  while (table->slots[slot].load(std::memory_order_relaxed) != 0) {
    slot = (slot + 1) & table->mask;
  }
  // Publication point: the release-store makes the entry (and its block
  // pointer and bytes) visible to any reader that acquires this slot.
  table->slots[slot].store(count + 1, std::memory_order_release);
  size_.store(count + 1, std::memory_order_release);
  return count;
}

void SharedInterner::grow_table_locked(std::size_t count) {
  Table* old = table_.load(std::memory_order_relaxed);
  auto fresh = std::make_unique<Table>(old->slots.size() * 2);
  for (std::uint32_t id = 0; id < count; ++id) {
    const Entry& e = entry(id);
    std::size_t slot = static_cast<std::size_t>(e.hash) & fresh->mask;
    while (fresh->slots[slot].load(std::memory_order_relaxed) != 0) {
      slot = (slot + 1) & fresh->mask;
    }
    fresh->slots[slot].store(id + 1, std::memory_order_relaxed);
  }
  table_bytes_.fetch_add(fresh->slots.size() * sizeof(std::uint32_t),
                         std::memory_order_relaxed);
  // The old table stays resident (retired in tables_) so readers still
  // probing it never touch freed memory; total retired memory is bounded
  // by the geometric growth (< one live table's worth).
  table_.store(fresh.get(), std::memory_order_release);
  tables_.push_back(std::move(fresh));
}

std::size_t SharedInterner::bytes() const {
  const std::size_t n = size_.load(std::memory_order_acquire);
  const std::size_t blocks = (n + kBlockSize - 1) >> kBlockShift;
  return chunk_bytes_.load(std::memory_order_relaxed) +
         blocks * kBlockSize * sizeof(Entry) +
         table_bytes_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ScopedInterner

std::uint32_t ScopedInterner::find_hashed(std::string_view text,
                                          std::uint64_t hash) const {
  ++stats_.lookups;
  if (shared_ == nullptr) return private_.find_hashed(text, hash);
  // Private first: it is tiny (usually empty — one cache-resident slot
  // load) and must win when a token exists in both tiers so this tree's
  // published ids never change (overflow promotion, file comment).
  if (private_.size() != 0) {
    const std::uint32_t id = private_.find_hashed(text, hash);
    if (id != kNotFound) return kPrivateBase + id;
  }
  return shared_->find_hashed(text, hash);
}

std::uint32_t ScopedInterner::intern_hashed(std::string_view text,
                                            std::uint64_t hash) {
  ++stats_.lookups;
  if (shared_ == nullptr) return private_.intern_hashed(text, hash);
  if (private_.size() != 0) {
    const std::uint32_t id = private_.find_hashed(text, hash);
    if (id != kNotFound) return kPrivateBase + id;
  }
  {
    const std::uint32_t id = shared_->find_hashed(text, hash);
    if (id != kNotFound) return id;
  }
  // Cold miss: ask the arena to admit (mutex); a capacity rejection is
  // remembered by spilling into the private overflow, so this token
  // never reaches the mutex path again from this tree.
  ++stats_.slow_probes;
  const std::uint32_t shared_id = shared_->intern_hashed(text, hash);
  if (shared_id != kNotFound) {
    ++stats_.shared_admissions;
    return shared_id;
  }
  ++stats_.private_spills;
  return kPrivateBase + private_.intern_hashed(text, hash);
}

}  // namespace nfv::util
