#include "util/interner.h"

#include <cstring>

#include "util/check.h"

namespace nfv::util {

namespace {

constexpr std::size_t kInitialSlots = 64;  // power of two
constexpr std::uint64_t kSeed = 0x9E3779B97F4A7C15ull;

inline std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer: cheap and well-distributed for short keys.
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

inline std::uint64_t load64(const char* p, std::size_t n) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, n);
  return v;
}

}  // namespace

std::uint64_t StringInterner::hash_bytes(std::string_view text) {
  // Unaligned 8-byte chunks folded with multiply-xor; syslog tokens are
  // short (typically <= 16 bytes) so this is one or two rounds.
  std::uint64_t h = kSeed ^ (static_cast<std::uint64_t>(text.size()) << 1);
  const char* p = text.data();
  std::size_t n = text.size();
  while (n >= 8) {
    h = mix64(h ^ load64(p, 8));
    p += 8;
    n -= 8;
  }
  if (n > 0) h = mix64(h ^ load64(p, n));
  return h;
}

StringInterner::StringInterner() : slots_(kInitialSlots, 0) {
  mask_ = kInitialSlots - 1;
}

std::uint32_t StringInterner::find(std::string_view text) const {
  return find_hashed(text, hash_bytes(text));
}

std::uint32_t StringInterner::find_hashed(std::string_view text,
                                          std::uint64_t hash) const {
  std::size_t slot = static_cast<std::size_t>(hash) & mask_;
  while (true) {
    const std::uint32_t stored = slots_[slot];
    if (stored == 0) return kNotFound;
    const std::uint32_t id = stored - 1;
    if (hashes_[id] == hash && equals(id, text)) return id;
    slot = (slot + 1) & mask_;
  }
}

std::uint32_t StringInterner::intern(std::string_view text) {
  return intern_hashed(text, hash_bytes(text));
}

std::uint32_t StringInterner::intern_hashed(std::string_view text,
                                            std::uint64_t hash) {
  std::size_t slot = static_cast<std::size_t>(hash) & mask_;
  while (true) {
    const std::uint32_t stored = slots_[slot];
    if (stored == 0) break;
    const std::uint32_t id = stored - 1;
    if (hashes_[id] == hash && equals(id, text)) return id;
    slot = (slot + 1) & mask_;
  }

  NFV_CHECK(entries_.size() < kNotFound, "interner id space exhausted");
  NFV_CHECK(arena_.size() + text.size() <= 0xFFFFFFFFull,
            "interner arena exceeds 4 GiB");
  const auto id = static_cast<std::uint32_t>(entries_.size());
  Entry entry;
  entry.offset = static_cast<std::uint32_t>(arena_.size());
  entry.length = static_cast<std::uint32_t>(text.size());
  arena_.insert(arena_.end(), text.begin(), text.end());
  entries_.push_back(entry);
  hashes_.push_back(hash);
  slots_[slot] = id + 1;

  // Keep load factor under ~0.75 so probe chains stay short.
  if ((entries_.size() + 1) * 4 > slots_.size() * 3) grow_table();
  return id;
}

void StringInterner::grow_table() {
  const std::size_t new_size = slots_.size() * 2;
  std::vector<std::uint32_t> fresh(new_size, 0);
  const std::size_t new_mask = new_size - 1;
  for (std::uint32_t id = 0; id < entries_.size(); ++id) {
    std::size_t slot = static_cast<std::size_t>(hashes_[id]) & new_mask;
    while (fresh[slot] != 0) slot = (slot + 1) & new_mask;
    fresh[slot] = id + 1;
  }
  slots_ = std::move(fresh);
  mask_ = new_mask;
}

}  // namespace nfv::util
