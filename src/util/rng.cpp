#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nfv::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t salt) {
  std::uint64_t mix = next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL);
  return Rng(mix);
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::uniform_index(std::size_t n) {
  NFV_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection-free multiply-shift (Lemire); bias negligible for n << 2^64.
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  NFV_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(
                  (static_cast<unsigned __int128>(next_u64()) * span) >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu_log, double sigma_log) {
  return std::exp(normal(mu_log, sigma_log));
}

double Rng::exponential(double mean) {
  NFV_CHECK(mean > 0.0, "exponential mean must be positive");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::pareto(double xm, double alpha) {
  NFV_CHECK(xm > 0.0 && alpha > 0.0, "pareto parameters must be positive");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint32_t Rng::poisson(double mean) {
  NFV_CHECK(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint32_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for the
  // simulator's large-mean regimes.
  const double value = normal(mean, std::sqrt(mean));
  return value <= 0.0 ? 0u : static_cast<std::uint32_t>(value + 0.5);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    NFV_CHECK(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  NFV_CHECK(total > 0.0, "categorical requires a positive total weight");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical fallback
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  cumulative_.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) {
    NFV_CHECK(w >= 0.0, "DiscreteSampler weights must be non-negative");
    total += w;
    cumulative_.push_back(total);
  }
  NFV_CHECK(total > 0.0, "DiscreteSampler requires a positive total weight");
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  NFV_CHECK(!cumulative_.empty(), "sampling from an empty DiscreteSampler");
  const double target = rng.uniform() * cumulative_.back();
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cumulative_.begin(),
      static_cast<std::ptrdiff_t>(cumulative_.size()) - 1));
}

}  // namespace nfv::util
