#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace nfv::util {

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> headers, std::string title)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt_double(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  print_row(headers_);
  std::size_t rule = 1;
  for (std::size_t w : widths) rule += w + 3;
  os << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_csv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

}  // namespace nfv::util
