// Deterministic fork-join parallelism for the per-group training/scoring
// fan-out and the blocked matrix kernels.
//
// Design constraints (see README "Parallel execution & determinism"):
//  - Results must be bit-identical to the serial path for any thread
//    count. parallel_for therefore only distributes *indices*; every index
//    writes to its own pre-sized output slot and no reduction happens
//    inside the pool. Work is claimed dynamically (atomic chunk counter),
//    which is safe precisely because outputs are slot-addressed.
//  - Exceptions propagate deterministically: every index runs exactly
//    once, and the exception thrown by the *lowest* failing index is
//    rethrown on the calling thread — the same exception the serial loop
//    would have surfaced first.
//  - Nesting is rejected. A parallel_for issued from inside a running
//    parallel region throws CheckError instead of deadlocking; kernels
//    that may be reached from inside tasks (e.g. nfv::ml::matmul) consult
//    in_parallel_region() and fall back to their serial path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nfv::util {

/// Fixed-size fork-join pool. `threads` counts the calling thread: a pool
/// of size N keeps N−1 workers and the caller participates in every job,
/// so size 1 means "run inline, spawn nothing" — the serial path.
class ThreadPool {
 public:
  /// `threads == 0` resolves via resolve_threads(0) (NFVPRED_THREADS or
  /// hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_; }

  /// Run fn(i) exactly once for every i in [begin, end), blocking until
  /// all indices completed. Deterministic given slot-addressed outputs
  /// (fn(i) must only write state owned by index i). Throws CheckError if
  /// called from inside a running parallel region.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Run every task exactly once, blocking until all completed. Same
  /// determinism/nesting rules as parallel_for.
  void parallel_invoke(const std::vector<std::function<void()>>& tasks);

  /// True while the current thread is executing inside a multi-threaded
  /// parallel region (worker thread, or the caller participating in its
  /// own job). Kernels use this to fall back to serial rather than nest.
  static bool in_parallel_region();

  /// RAII marker declaring the current thread part of a parallel region.
  /// Long-running service threads (async ingest shard workers) install
  /// one so every ml kernel underneath takes its serial path instead of
  /// contending for the global fork-join pool — N service threads doing
  /// serial work beat N threads queueing behind one pool. Restores the
  /// previous state on destruction, so nesting is harmless.
  class ScopedRegion {
   public:
    ScopedRegion();
    ~ScopedRegion();
    ScopedRegion(const ScopedRegion&) = delete;
    ScopedRegion& operator=(const ScopedRegion&) = delete;

   private:
    bool previous_;
  };

  /// Resolve a requested thread count: explicit requests win, 0 means
  /// "auto" = NFVPRED_THREADS if set (and > 0), else hardware
  /// concurrency, else 1.
  static std::size_t resolve_threads(std::size_t requested);

 private:
  void worker_loop();
  void run_chunks(const std::function<void(std::size_t)>& fn,
                  std::size_t end);
  void record_error(std::size_t index);

  std::size_t threads_ = 1;
  std::vector<std::thread> workers_;

  // Serializes whole jobs: concurrent top-level parallel_for calls on the
  // same pool queue behind each other instead of corrupting the job slot.
  std::mutex job_mutex_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;           // bumped once per job
  std::size_t finished_workers_ = 0;  // workers done with current epoch
  bool stop_ = false;

  // Current job (valid while a job is in flight; guarded by mu_ for
  // publication, read-only afterwards).
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_end_ = 0;
  std::size_t job_chunk_ = 1;
  std::atomic<std::size_t> next_index_{0};

  std::mutex error_mu_;
  std::exception_ptr error_;
  std::size_t error_index_ = 0;
};

/// Owned long-running threads for service-style work (queue-draining
/// shard workers), complementing ThreadPool's fork-join jobs: fork-join
/// workers must never block indefinitely, while a service loop runs for
/// the lifetime of a runtime object. Each thread runs fn(index) exactly
/// once; join() (or destruction) blocks until every loop returns — the
/// caller is responsible for signalling its loops to exit first (e.g. by
/// closing their input queues). When `serial_kernels` is set (the
/// default), each thread holds a ThreadPool::ScopedRegion for its entire
/// run, pinning all ml kernels underneath to their serial paths.
class ServiceThreads {
 public:
  ServiceThreads() = default;
  ~ServiceThreads() { join(); }

  ServiceThreads(const ServiceThreads&) = delete;
  ServiceThreads& operator=(const ServiceThreads&) = delete;

  /// Spawn `count` threads running fn(0..count-1). May only be called on
  /// an empty (never-started or joined) instance.
  void start(std::size_t count, std::function<void(std::size_t)> fn,
             bool serial_kernels = true);

  /// Block until all loops return. Idempotent.
  void join();

  std::size_t size() const { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
};

/// Process-wide pool used by kernels that parallelize internally (blocked
/// matmul) and by tools/benches. Lazily created at resolve_threads(0)
/// size. Not intended to be resized concurrently with use.
ThreadPool& global_pool();

/// Replace the global pool with one of the given size (0 = auto). Call
/// from startup code (CLI flag parsing), not from inside parallel work.
void set_global_threads(std::size_t threads);

}  // namespace nfv::util
