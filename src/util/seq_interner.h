// Append-only interner of u32 id sequences: span of ids -> dense u32 id.
//
// SharedSeqInterner is the SharedInterner publication machinery (see
// util/interner.h) generalized from byte strings to fixed sequences of
// 32-bit ids. It exists for fleet-wide structures whose unit of sharing
// is a *sequence over an already-shared id space* — concretely the
// shared signature forest (logproc/shared_forest.h), where each
// published sequence is one immutable template over shared token ids.
//
// Concurrency contract (identical to SharedInterner):
//  - find()/view()/size() are LOCK-FREE and safe from any number of
//    threads concurrently with admissions. Published sequences are
//    immutable once visible: sequence words live in stable chunks that
//    never move, entry records live in fixed-size blocks that never
//    move, and the open-addressed id table is published by
//    release-storing the slot AFTER the entry is fully written (grown
//    tables are swapped via an atomic pointer and retired, not freed,
//    until destruction).
//  - intern() takes a small mutex only on the cold miss path (first
//    sight of a sequence) to admit it — or reject it once a capacity
//    cap is reached, in which case it returns kNotFound and the caller
//    falls back to private storage.
//  - register_seq() is the registrar admission path: same mutex, exempt
//    from the capacity caps (pre-seeding, promotion).
// A view() is stable for the interner's lifetime — growth never
// invalidates it.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace nfv::util {

class SharedSeqInterner {
 public:
  /// Returned by find() when the sequence was never interned, and by
  /// intern() when a capacity cap rejects admission.
  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

  struct Config {
    /// Admission cap on distinct sequences; beyond it intern() rejects
    /// (returns kNotFound) and callers fall back to private storage.
    std::size_t max_seqs = 1u << 17;
    /// Admission cap on total u32 words across all sequences.
    std::size_t max_words = 4u << 20;
  };

  /// An immutable published sequence. The pointer is stable for the
  /// interner's lifetime.
  struct Seq {
    const std::uint32_t* data = nullptr;
    std::uint32_t length = 0;
  };

  SharedSeqInterner();
  explicit SharedSeqInterner(Config config);
  ~SharedSeqInterner();

  SharedSeqInterner(const SharedSeqInterner&) = delete;
  SharedSeqInterner& operator=(const SharedSeqInterner&) = delete;

  /// Lock-free: id for the sequence if published, else kNotFound.
  std::uint32_t find(const std::uint32_t* words, std::size_t count) const;
  std::uint32_t find_hashed(const std::uint32_t* words, std::size_t count,
                            std::uint64_t hash) const;

  /// Id for the sequence, admitting it if new (mutex on the cold miss
  /// path only). Returns kNotFound when a capacity cap rejects.
  std::uint32_t intern(const std::uint32_t* words, std::size_t count);

  /// Registrar admission: like intern() but exempt from the caps.
  std::uint32_t register_seq(const std::uint32_t* words, std::size_t count);

  /// The published words for an id. Stable for the interner's lifetime.
  /// Lock-free, any thread.
  Seq view(std::uint32_t id) const {
    const Entry& e = entry(id);
    return Seq{e.data, e.length};
  }

  /// Published sequence count. Lock-free, any thread.
  std::size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Total published words across all sequences. Lock-free, any thread.
  std::size_t words() const {
    return word_count_.load(std::memory_order_relaxed);
  }

  /// Resident bytes: word chunks + entry blocks + live and retired id
  /// tables. Lock-free, any thread.
  std::size_t bytes() const;

  /// Admissions rejected by the capacity caps.
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// 64-bit sequence hash (shared mix with StringInterner::hash_bytes).
  static std::uint64_t hash_words(const std::uint32_t* words,
                                  std::size_t count);

 private:
  struct Entry {
    const std::uint32_t* data = nullptr;
    std::uint32_t length = 0;
    std::uint64_t hash = 0;
  };

  // Entry records live in fixed blocks so a published Entry& never
  // moves; 4096 entries/block x 4096 blocks = 16M id headroom.
  static constexpr std::size_t kBlockShift = 12;
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;
  static constexpr std::size_t kMaxBlocks = std::size_t{1} << 12;

  // Open-addressed id table (slot = id + 1, 0 = empty), swapped
  // wholesale on growth via the atomic table_ pointer.
  struct Table {
    explicit Table(std::size_t n) : slots(n), mask(n - 1) {}
    std::vector<std::atomic<std::uint32_t>> slots;
    std::size_t mask;
  };

  const Entry& entry(std::uint32_t id) const {
    return blocks_[id >> kBlockShift].load(std::memory_order_acquire)
        [id & (kBlockSize - 1)];
  }

  std::uint32_t probe(const Table& table, const std::uint32_t* words,
                      std::size_t count, std::uint64_t hash) const;
  std::uint32_t admit(const std::uint32_t* words, std::size_t count,
                      std::uint64_t hash, bool enforce_caps);
  const std::uint32_t* append_words(const std::uint32_t* words,
                                    std::size_t count);
  void grow_table_locked(std::size_t count);

  Config config_;

  std::array<std::atomic<Entry*>, kMaxBlocks> blocks_{};
  std::atomic<std::uint32_t> size_{0};
  std::atomic<Table*> table_{nullptr};

  std::atomic<std::size_t> word_count_{0};
  std::atomic<std::size_t> chunk_bytes_{0};
  std::atomic<std::size_t> table_bytes_{0};
  std::atomic<std::uint64_t> rejected_{0};

  // Cold admission path only.
  std::mutex mu_;
  std::vector<std::unique_ptr<std::uint32_t[]>> chunks_;  // words, stable
  std::size_t chunk_used_ = 0;                            // within back()
  std::size_t chunk_cap_ = 0;
  std::vector<std::unique_ptr<Table>> tables_;            // live + retired
};

}  // namespace nfv::util
