// Deterministic random number generation for the simulator and the ML stack.
//
// All stochastic components of the library draw from nfv::util::Rng, a
// xoshiro256** generator seeded via splitmix64. Determinism is a first-class
// requirement: every experiment in the paper reproduction must be exactly
// re-runnable from a single seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nfv::util {

/// splitmix64 step — used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic PRNG (xoshiro256**) with convenience distributions.
///
/// Not thread-safe; create one Rng per logical stream. Use `fork()` to derive
/// independent child streams (e.g. one per simulated vPE) so that adding a
/// component does not perturb the draws seen by existing components.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Derive an independent generator; `salt` distinguishes siblings.
  Rng fork(std::uint64_t salt);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu_log, sigma_log)).
  double lognormal(double mu_log, double sigma_log);

  /// Exponential with the given mean (NOT rate). Requires mean > 0.
  double exponential(double mean);

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed durations).
  double pareto(double xm, double alpha);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Poisson-distributed count with the given mean (Knuth / PTRS hybrid).
  std::uint32_t poisson(double mean);

  /// Sample an index from non-negative weights (need not be normalized).
  /// Requires at least one strictly positive weight.
  std::size_t categorical(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Precomputed alias-free cumulative sampler for repeated categorical draws
/// from a fixed distribution (O(log n) per draw).
class DiscreteSampler {
 public:
  DiscreteSampler() = default;
  explicit DiscreteSampler(std::span<const double> weights);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cumulative_.size(); }
  bool empty() const { return cumulative_.empty(); }

 private:
  std::vector<double> cumulative_;  // strictly increasing, last == total
};

}  // namespace nfv::util
