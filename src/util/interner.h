// Append-only string interners: string_view -> dense u32 id.
//
// Three tiers, built for the template-mining fast path (the signature
// tree interns every stable syslog token once and thereafter works on
// u32 ids, so the per-line hot loop never materializes a std::string):
//
//  - StringInterner: the original single-threaded interner. Ids are
//    dense (0, 1, 2, ...) in first-intern order and never change;
//    lookups are allocation-free; intern() only allocates when it
//    actually admits a new string, so a warm interner is
//    zero-allocation in steady state. Value semantics: the arena stores
//    (offset, length) entries into one contiguous byte buffer, so the
//    interner can be copied and moved freely. Not thread-safe.
//
//  - SharedInterner: the fleet-wide read-mostly token arena. One arena
//    serves every per-vPE signature tree of a run, so memory for the
//    (heavily overlapping) fleet token set is O(vocabulary) instead of
//    O(vPEs x vocabulary), and shared token ids are identical across
//    vPEs ("id-stable"). Concurrency contract:
//      * find()/view()/size() are LOCK-FREE and safe from any number of
//        threads concurrently with admissions. Published ids are
//        immutable once visible: token bytes live in stable chunks that
//        never move, entry records live in fixed-size blocks that never
//        move, and the open-addressed id table is published by
//        release-storing the slot AFTER the entry is fully written (a
//        grown table is swapped in via an atomic pointer; superseded
//        tables are retired, not freed, until destruction — an epoch
//        scheme with the epochs collapsed to the arena's lifetime).
//      * intern() takes a small mutex only on the cold miss path (first
//        sight of a token fleet-wide) to admit the token — or reject it
//        once the configured capacity is reached, in which case it
//        returns kNotFound and the caller spills to a private overflow
//        (see ScopedInterner). A racing find() may transiently miss a
//        token that intern() is admitting; that is always safe — the
//        caller either retries through intern() or treats it as absent,
//        exactly like the reference miner treats an unseen string.
//      * register_token() is the registrar/admin admission path: same
//        mutex, but exempt from the capacity cap (pre-seeding a fleet
//        vocabulary, promoting a hot private token).
//    A view() from SharedInterner is stable for the arena's lifetime —
//    unlike StringInterner, growth never invalidates it.
//
//  - ScopedInterner: the two-level per-tree view. Resolves against the
//    shared arena and spills tokens the arena rejects (capacity) — or
//    that predate attachment — into a private overflow range starting
//    at kPrivateBase. Single-threaded like StringInterner (it is owned
//    by one tree); only its reads/admissions AGAINST the shared arena
//    are the concurrent part, and those follow SharedInterner's
//    contract. Id-resolution order: the private table takes precedence
//    when a token exists in both tiers, so a tree's ids stay stable
//    even when a privately spilled token is later promoted into the
//    shared arena (the "overflow promotion" edge case — new trees then
//    resolve the shared id, existing trees keep their private id and
//    both render the same text). With no shared arena attached it
//    degenerates to a plain StringInterner with ids from 0 — bit-
//    compatible with the pre-arena behavior.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace nfv::util {

class StringInterner {
 public:
  /// Returned by find() when the string has never been interned.
  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

  StringInterner();

  /// Id for `text`, interning it if new. Ids are dense and stable.
  std::uint32_t intern(std::string_view text);

  /// Id for `text` if already interned, else kNotFound. Never mutates.
  std::uint32_t find(std::string_view text) const;

  /// The interned bytes for an id. The view is invalidated by the next
  /// intern() that grows the arena — consume it before interning again.
  std::string_view view(std::uint32_t id) const {
    const Entry& e = entries_[id];
    return std::string_view(arena_.data() + e.offset, e.length);
  }

  std::size_t size() const { return entries_.size(); }

  /// Resident bytes (arena + entry/hash/slot tables), by capacity.
  std::size_t bytes() const {
    return arena_.capacity() + entries_.capacity() * sizeof(Entry) +
           hashes_.capacity() * sizeof(std::uint64_t) +
           slots_.capacity() * sizeof(std::uint32_t);
  }

  /// 64-bit string hash used internally; exposed so callers that already
  /// scanned the bytes can avoid a second pass (see find_hashed()). All
  /// three interner tiers share this hash, so one computation serves a
  /// private and a shared probe.
  static std::uint64_t hash_bytes(std::string_view text);

  /// find()/intern() with a caller-precomputed hash_bytes() value.
  std::uint32_t find_hashed(std::string_view text, std::uint64_t hash) const;
  std::uint32_t intern_hashed(std::string_view text, std::uint64_t hash);

 private:
  struct Entry {
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };

  bool equals(std::uint32_t id, std::string_view text) const {
    const Entry& e = entries_[id];
    return e.length == text.size() &&
           std::string_view(arena_.data() + e.offset, e.length) == text;
  }

  void grow_table();

  std::vector<char> arena_;            // all interned bytes, back to back
  std::vector<Entry> entries_;         // id -> span within arena_
  std::vector<std::uint64_t> hashes_;  // id -> hash_bytes(view(id))
  std::vector<std::uint32_t> slots_;   // open addressing; id+1, 0 = empty
  std::size_t mask_ = 0;               // slots_.size() - 1 (power of two)
};

/// Fleet-wide shared token arena (see file comment for the concurrency
/// contract). Ids are dense in admission order and live below
/// ScopedInterner::kPrivateBase. The constructor pre-interns "<*>" (id 0)
/// and "<empty>" (id 1) so SignatureTree's reserved token ids hold in
/// shared mode exactly as they do privately — attach trees before
/// interning anything else if you rely on other specific id values.
class SharedInterner {
 public:
  static constexpr std::uint32_t kNotFound = StringInterner::kNotFound;

  struct Config {
    /// Admission cap on distinct shared tokens; beyond it intern()
    /// rejects (returns kNotFound) and callers spill privately. Keeps
    /// the arena read-mostly and fleet memory bounded under token-churn
    /// attacks (a vPE spraying unique stable tokens).
    std::size_t max_tokens = 1u << 20;
    /// Admission cap on total token bytes.
    std::size_t max_bytes = 64u << 20;
  };

  // Two overloads (not one defaulted argument): Config's member
  // initializers are only parsed once the enclosing class is complete,
  // so `Config config = {}` would not compile here.
  SharedInterner();
  explicit SharedInterner(Config config);
  ~SharedInterner();

  SharedInterner(const SharedInterner&) = delete;
  SharedInterner& operator=(const SharedInterner&) = delete;

  /// Lock-free: id for `text` if published, else kNotFound. Safe from
  /// any thread, concurrently with admissions.
  std::uint32_t find(std::string_view text) const;
  std::uint32_t find_hashed(std::string_view text, std::uint64_t hash) const;

  /// Id for `text`, admitting it if new (mutex on the cold miss path
  /// only). Returns kNotFound when the capacity caps reject admission.
  std::uint32_t intern(std::string_view text);
  std::uint32_t intern_hashed(std::string_view text, std::uint64_t hash);

  /// Registrar admission: like intern() but exempt from the capacity
  /// caps — pre-seeding and promotion of hot private tokens.
  std::uint32_t register_token(std::string_view text);

  /// The interned bytes for a published id. Stable for the arena's
  /// lifetime (token storage never moves). Lock-free, any thread.
  std::string_view view(std::uint32_t id) const {
    const Entry& e = entry(id);
    return std::string_view(e.data, e.length);
  }

  /// Published token count. Lock-free, any thread.
  std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }

  /// Resident bytes: token storage chunks + entry blocks + the live id
  /// table (+ retired tables, which are kept until destruction).
  /// Lock-free, any thread.
  std::size_t bytes() const;

  /// Admissions rejected by the capacity caps (callers spilled).
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    const char* data = nullptr;
    std::uint32_t length = 0;
    std::uint64_t hash = 0;
  };

  // Entry records live in fixed blocks so a published Entry& never
  // moves; 4096 entries/block x 4096 blocks = 16M id headroom.
  static constexpr std::size_t kBlockShift = 12;
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;
  static constexpr std::size_t kMaxBlocks = std::size_t{1} << 12;

  // Open-addressed id table (slot = id + 1, 0 = empty), swapped
  // wholesale on growth via the atomic table_ pointer.
  struct Table {
    explicit Table(std::size_t n) : slots(n), mask(n - 1) {}
    std::vector<std::atomic<std::uint32_t>> slots;
    std::size_t mask;
  };

  const Entry& entry(std::uint32_t id) const {
    // The release-store of the slot (or of size_) that published `id`
    // happened-after the block pointer and entry were written, so the
    // acquire the caller already performed makes relaxed loads safe;
    // we keep an acquire on the block pointer for clarity (free on x86).
    return blocks_[id >> kBlockShift].load(std::memory_order_acquire)
        [id & (kBlockSize - 1)];
  }

  std::uint32_t probe(const Table& table, std::string_view text,
                      std::uint64_t hash) const;
  /// Admission under mu_: returns the (possibly pre-existing) id, or
  /// kNotFound when enforce_caps and a cap rejects.
  std::uint32_t admit(std::string_view text, std::uint64_t hash,
                      bool enforce_caps);
  const char* append_bytes(std::string_view text);
  void grow_table_locked(std::size_t count);

  Config config_;

  std::array<std::atomic<Entry*>, kMaxBlocks> blocks_{};
  std::atomic<std::uint32_t> size_{0};
  std::atomic<Table*> table_{nullptr};

  std::atomic<std::size_t> text_bytes_{0};
  std::atomic<std::size_t> chunk_bytes_{0};
  std::atomic<std::size_t> table_bytes_{0};
  std::atomic<std::uint64_t> rejected_{0};

  // Cold admission path only.
  std::mutex mu_;
  std::vector<std::unique_ptr<char[]>> chunks_;   // token bytes, stable
  std::size_t chunk_used_ = 0;                    // within chunks_.back()
  std::size_t chunk_cap_ = 0;
  std::vector<std::unique_ptr<Table>> tables_;    // live + retired
};

/// Two-level interner view: shared arena + private overflow (see file
/// comment). Single-threaded, owned by one SignatureTree.
class ScopedInterner {
 public:
  static constexpr std::uint32_t kNotFound = StringInterner::kNotFound;
  /// First private-overflow id when a shared arena is attached. Shared
  /// ids live below it; kNotFound stays above both ranges.
  static constexpr std::uint32_t kPrivateBase = 0x40000000u;

  /// Probe accounting, cheap enough to keep always-on: `lookups` counts
  /// public find/intern calls (the signature tree performs exactly one
  /// per warm line — pinned by tests), `slow_probes` counts shared-arena
  /// mutex acquisitions (cold misses only; zero in steady state, even
  /// under capacity pressure, because rejected tokens are remembered in
  /// the private overflow instead of re-asking the arena).
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t slow_probes = 0;
    std::uint64_t shared_admissions = 0;
    std::uint64_t private_spills = 0;
  };

  explicit ScopedInterner(SharedInterner* shared = nullptr)
      : shared_(shared) {}

  std::uint32_t intern(std::string_view text) {
    return intern_hashed(text, StringInterner::hash_bytes(text));
  }
  std::uint32_t find(std::string_view text) const {
    return find_hashed(text, StringInterner::hash_bytes(text));
  }

  std::uint32_t find_hashed(std::string_view text, std::uint64_t hash) const;
  std::uint32_t intern_hashed(std::string_view text, std::uint64_t hash);

  std::string_view view(std::uint32_t id) const {
    if (shared_ == nullptr) return private_.view(id);
    if (id < kPrivateBase) return shared_->view(id);
    return private_.view(id - kPrivateBase);
  }

  bool shared_mode() const { return shared_ != nullptr; }
  const SharedInterner* shared() const { return shared_; }
  bool is_private(std::uint32_t id) const {
    return shared_ == nullptr || id >= kPrivateBase;
  }

  /// Tokens spilled into this view's private overflow.
  std::size_t private_size() const { return private_.size(); }
  /// Resident bytes of the private overflow tier only (the shared
  /// arena's bytes are reported once per fleet, not per view).
  std::size_t private_bytes() const { return private_.bytes(); }

  const Stats& stats() const { return stats_; }

 private:
  SharedInterner* shared_;
  StringInterner private_;
  mutable Stats stats_;
};

}  // namespace nfv::util
