// Append-only string interner: string_view -> dense u32 id.
//
// Built for the template-mining fast path: the signature tree interns every
// stable syslog token once and thereafter works on u32 ids, so the per-line
// hot loop never materializes a std::string. Design constraints that shape
// the implementation:
//
//  - Ids are dense (0, 1, 2, ...) in first-intern order and never change.
//  - Lookups are allocation-free; intern() only allocates when it actually
//    admits a new string (arena growth / table rehash), so a warm interner
//    is zero-allocation in steady state.
//  - Value semantics: the arena stores (offset, length) entries into one
//    contiguous byte buffer, never pointers, so the interner can be copied
//    and moved freely and views are computed on demand.
//
// Not thread-safe: callers own synchronization (the signature tree keeps
// one interner per tree, and trees are single-threaded by contract).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace nfv::util {

class StringInterner {
 public:
  /// Returned by find() when the string has never been interned.
  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

  StringInterner();

  /// Id for `text`, interning it if new. Ids are dense and stable.
  std::uint32_t intern(std::string_view text);

  /// Id for `text` if already interned, else kNotFound. Never mutates.
  std::uint32_t find(std::string_view text) const;

  /// The interned bytes for an id. The view is invalidated by the next
  /// intern() that grows the arena — consume it before interning again.
  std::string_view view(std::uint32_t id) const {
    const Entry& e = entries_[id];
    return std::string_view(arena_.data() + e.offset, e.length);
  }

  std::size_t size() const { return entries_.size(); }

  /// 64-bit string hash used internally; exposed so callers that already
  /// scanned the bytes can avoid a second pass (see find_hashed()).
  static std::uint64_t hash_bytes(std::string_view text);

  /// find()/intern() with a caller-precomputed hash_bytes() value.
  std::uint32_t find_hashed(std::string_view text, std::uint64_t hash) const;
  std::uint32_t intern_hashed(std::string_view text, std::uint64_t hash);

 private:
  struct Entry {
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };

  bool equals(std::uint32_t id, std::string_view text) const {
    const Entry& e = entries_[id];
    return e.length == text.size() &&
           std::string_view(arena_.data() + e.offset, e.length) == text;
  }

  void grow_table();

  std::vector<char> arena_;            // all interned bytes, back to back
  std::vector<Entry> entries_;         // id -> span within arena_
  std::vector<std::uint64_t> hashes_;  // id -> hash_bytes(view(id))
  std::vector<std::uint32_t> slots_;   // open addressing; id+1, 0 = empty
  std::size_t mask_ = 0;               // slots_.size() - 1 (power of two)
};

}  // namespace nfv::util
