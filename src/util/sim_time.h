// Simulated-time primitives.
//
// The fleet simulator runs on a virtual clock with one-second resolution,
// covering an 18-month study window like the paper's dataset. SimTime is a
// strong type (seconds since the simulation epoch) so that raw integers do
// not silently mix with durations.
#pragma once

#include <cstdint>
#include <string>

namespace nfv::util {

/// Duration in whole seconds of simulated time.
struct Duration {
  std::int64_t seconds = 0;

  static constexpr Duration of_seconds(std::int64_t s) { return {s}; }
  static constexpr Duration of_minutes(std::int64_t m) { return {m * 60}; }
  static constexpr Duration of_hours(std::int64_t h) { return {h * 3600}; }
  static constexpr Duration of_days(std::int64_t d) { return {d * 86400}; }

  constexpr double hours() const { return static_cast<double>(seconds) / 3600.0; }
  constexpr double days() const { return static_cast<double>(seconds) / 86400.0; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return {seconds + o.seconds}; }
  constexpr Duration operator-(Duration o) const { return {seconds - o.seconds}; }
  constexpr Duration operator*(std::int64_t k) const { return {seconds * k}; }
};

/// Instant on the simulated clock: seconds since the simulation epoch
/// (the epoch corresponds to the first day of the study, "Oct 1 '16" in
/// the paper's figures).
struct SimTime {
  std::int64_t seconds = 0;

  static constexpr SimTime epoch() { return {0}; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(Duration d) const { return {seconds + d.seconds}; }
  constexpr SimTime operator-(Duration d) const { return {seconds - d.seconds}; }
  constexpr Duration operator-(SimTime o) const { return {seconds - o.seconds}; }
};

/// Days in the simulator's idealized month. The paper buckets its analysis
/// monthly; we use fixed 30-day months so month arithmetic is exact.
inline constexpr std::int64_t kDaysPerMonth = 30;
inline constexpr Duration kMonth = Duration::of_days(kDaysPerMonth);

/// Month index (0-based) containing `t`. Negative times map to month 0.
int month_of(SimTime t);

/// Start instant of month `m` (0-based).
SimTime month_start(int m);

/// Render as "m03 d12 04:05:06" — month, day-of-month, hh:mm:ss. Purely for
/// human-readable bench/example output.
std::string format_time(SimTime t);

/// Render a duration compactly, e.g. "2d4h", "15m", "42s".
std::string format_duration(Duration d);

}  // namespace nfv::util
