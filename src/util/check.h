// Lightweight runtime assertion utilities.
//
// NFV_CHECK(cond, msg) throws nfv::util::CheckError when `cond` is false.
// Unlike assert(), checks stay active in release builds: the library is
// used for empirical studies where silently-wrong numbers are worse than
// a crash with a message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nfv::util {

/// Error thrown when an NFV_CHECK condition fails.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& message);

}  // namespace nfv::util

/// Always-on check. On failure throws nfv::util::CheckError with
/// file:line, the failed expression, and the streamed message.
#define NFV_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream nfv_check_oss_;                                  \
      nfv_check_oss_ << msg; /* NOLINT */                                 \
      ::nfv::util::check_failed(__FILE__, __LINE__, #cond,                \
                                nfv_check_oss_.str());                    \
    }                                                                     \
  } while (false)
