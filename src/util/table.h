// Plain-text table and CSV writers for the bench harness. Each bench prints
// the rows/series of the paper figure it reproduces; Table keeps that output
// aligned and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nfv::util {

/// Column-aligned text table with an optional title, printed to any ostream.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, std::string title = "");

  /// Append a row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  void print(std::ostream& os) const;
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for bench output).
std::string fmt_double(double v, int precision = 3);

}  // namespace nfv::util
