#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nfv::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

namespace {
double sorted_quantile(const std::vector<double>& sorted, double q) {
  NFV_CHECK(!sorted.empty(), "quantile of empty data");
  NFV_CHECK(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1], got " << q);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

double quantile(std::span<const double> xs, double q) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_quantile(sorted, q);
}

std::vector<double> quantiles(std::span<const double> xs,
                              std::span<const double> qs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(sorted_quantile(sorted, q));
  return out;
}

double cosine_similarity(std::span<const double> a,
                         std::span<const double> b) {
  NFV_CHECK(a.size() == b.size(),
            "cosine_similarity size mismatch: " << a.size() << " vs "
                                                << b.size());
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void normalize_l1(std::vector<double>& xs) {
  double total = 0.0;
  for (double x : xs) total += x;
  if (total <= 0.0) return;
  for (double& x : xs) x /= total;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> out;
  out.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    out.push_back({sorted[i], static_cast<double>(i + 1) /
                                  static_cast<double>(sorted.size())});
  }
  return out;
}

std::vector<CdfPoint> empirical_cdf_sampled(std::span<const double> xs,
                                            std::size_t max_points) {
  auto full = empirical_cdf(xs);
  if (full.size() <= max_points || max_points == 0) return full;
  std::vector<CdfPoint> out;
  out.reserve(max_points);
  for (std::size_t i = 0; i < max_points; ++i) {
    const std::size_t idx =
        (i * (full.size() - 1)) / std::max<std::size_t>(max_points - 1, 1);
    out.push_back(full[idx]);
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  NFV_CHECK(bins > 0, "histogram needs at least one bin");
  NFV_CHECK(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double x, double weight) {
  const double pos =
      (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor(pos));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

}  // namespace nfv::util
