#include "util/sim_time.h"

#include <cstdio>

namespace nfv::util {

int month_of(SimTime t) {
  if (t.seconds < 0) return 0;
  return static_cast<int>(t.seconds / kMonth.seconds);
}

SimTime month_start(int m) {
  return SimTime{static_cast<std::int64_t>(m) * kMonth.seconds};
}

std::string format_time(SimTime t) {
  const int month = month_of(t);
  std::int64_t rem = t.seconds - month_start(month).seconds;
  const std::int64_t day = rem / 86400;
  rem %= 86400;
  const std::int64_t hh = rem / 3600;
  rem %= 3600;
  const std::int64_t mm = rem / 60;
  const std::int64_t ss = rem % 60;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "m%02d d%02lld %02lld:%02lld:%02lld", month,
                static_cast<long long>(day), static_cast<long long>(hh),
                static_cast<long long>(mm), static_cast<long long>(ss));
  return buf;
}

std::string format_duration(Duration d) {
  std::int64_t s = d.seconds;
  const bool negative = s < 0;
  if (negative) s = -s;
  char buf[48];
  if (s >= 86400) {
    std::snprintf(buf, sizeof(buf), "%s%lldd%lldh", negative ? "-" : "",
                  static_cast<long long>(s / 86400),
                  static_cast<long long>((s % 86400) / 3600));
  } else if (s >= 3600) {
    std::snprintf(buf, sizeof(buf), "%s%lldh%lldm", negative ? "-" : "",
                  static_cast<long long>(s / 3600),
                  static_cast<long long>((s % 3600) / 60));
  } else if (s >= 60) {
    std::snprintf(buf, sizeof(buf), "%s%lldm", negative ? "-" : "",
                  static_cast<long long>(s / 60));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%llds", negative ? "-" : "",
                  static_cast<long long>(s));
  }
  return buf;
}

}  // namespace nfv::util
