// Small statistics helpers shared by the analysis benches and the core
// pipeline: summary statistics, quantiles, empirical CDFs, histograms and
// the cosine similarity used throughout §3 of the paper.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace nfv::util {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Population variance; 0 for fewer than 2 elements.
double variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0,1]. Sorts a copy of the input.
/// Requires a non-empty input.
double quantile(std::span<const double> xs, double q);

/// Several quantiles at once (single sort). Requires a non-empty input.
std::vector<double> quantiles(std::span<const double> xs,
                              std::span<const double> qs);

/// Cosine similarity between two equally-sized non-negative vectors.
/// Returns 0 when either vector is all-zero.
double cosine_similarity(std::span<const double> a, std::span<const double> b);

/// L1-normalize in place; no-op on an all-zero vector.
void normalize_l1(std::vector<double>& xs);

/// Point on an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double cumulative_fraction = 0.0;
};

/// Empirical CDF of the input (sorted copy); one point per element.
std::vector<CdfPoint> empirical_cdf(std::span<const double> xs);

/// Empirical CDF downsampled to ~`max_points` evenly spaced points, for
/// printing bench series without flooding the output.
std::vector<CdfPoint> empirical_cdf_sampled(std::span<const double> xs,
                                            std::size_t max_points);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Running mean/min/max accumulator.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace nfv::util
