#include "util/json.h"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace nfv::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  out_ += '\n';
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::begin_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // "key": <here> — no comma/indent, key() placed them
  }
  NFV_CHECK(stack_.empty() || stack_.back() == '[',
            "JsonWriter: value inside an object requires key()");
  NFV_CHECK(!(stack_.empty() && !out_.empty()),
            "JsonWriter: only one top-level value");
  if (!stack_.empty()) {
    if (comma_pending_) out_ += ',';
    indent();
  }
  comma_pending_ = true;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  NFV_CHECK(!stack_.empty() && stack_.back() == '{',
            "JsonWriter: key() outside an object");
  NFV_CHECK(!key_pending_, "JsonWriter: key() twice without a value");
  if (comma_pending_) out_ += ',';
  indent();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  key_pending_ = true;
  comma_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  out_ += '{';
  stack_ += '{';
  comma_pending_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  NFV_CHECK(!stack_.empty() && stack_.back() == '{',
            "JsonWriter: end_object() without begin_object()");
  NFV_CHECK(!key_pending_, "JsonWriter: dangling key()");
  const bool had_members = comma_pending_;
  stack_.pop_back();
  if (had_members) indent();
  out_ += '}';
  comma_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  out_ += '[';
  stack_ += '[';
  comma_pending_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  NFV_CHECK(!stack_.empty() && stack_.back() == '[',
            "JsonWriter: end_array() without begin_array()");
  const bool had_items = comma_pending_;
  stack_.pop_back();
  if (had_items) indent();
  out_ += ']';
  comma_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  begin_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  begin_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  begin_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  std::array<char, 32> buf;
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out_.append(buf.data(), res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value_int(std::int64_t v) {
  begin_value();
  std::array<char, 24> buf;
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out_.append(buf.data(), res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value_uint(std::uint64_t v) {
  begin_value();
  std::array<char, 24> buf;
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out_.append(buf.data(), res.ptr);
  return *this;
}

JsonWriter& JsonWriter::null() {
  begin_value();
  out_ += "null";
  return *this;
}

bool JsonWriter::complete() const {
  return stack_.empty() && !key_pending_ && !out_.empty();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t at = 0;
  std::string error;

  bool fail(const std::string& reason) {
    if (error.empty()) {
      error = reason + " at offset " + std::to_string(at);
    }
    return false;
  }

  void skip_ws() {
    while (at < text.size() &&
           (text[at] == ' ' || text[at] == '\t' || text[at] == '\n' ||
            text[at] == '\r')) {
      ++at;
    }
  }

  bool eat(char c) {
    if (at < text.size() && text[at] == c) {
      ++at;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(at, word.size()) == word) {
      at += word.size();
      return true;
    }
    return false;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(std::uint32_t& out) {
    if (at + 4 > text.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[at + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
    }
    at += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return fail("expected '\"'");
    out.clear();
    while (at < text.size()) {
      const char c = text[at];
      if (c == '"') {
        ++at;
        return true;
      }
      if (c == '\\') {
        ++at;
        if (at >= text.size()) return fail("truncated escape");
        const char e = text[at++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            std::uint32_t cp = 0;
            if (!hex4(cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
              if (!literal("\\u")) return fail("unpaired surrogate");
              std::uint32_t lo = 0;
              if (!hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return fail("bad low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return fail("unpaired low surrogate");
            }
            append_utf8(out, cp);
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      out += c;
      ++at;
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > 128) return fail("nesting too deep");
    skip_ws();
    if (at >= text.size()) return fail("unexpected end of input");
    const char c = text[at];
    if (c == 'n') {
      if (!literal("null")) return fail("bad literal");
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    if (c == 't' || c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = (c == 't');
      if (!literal(c == 't' ? "true" : "false")) return fail("bad literal");
      return true;
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    }
    if (c == '[') {
      ++at;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (eat(']')) return true;
      for (;;) {
        out.items.emplace_back();
        if (!parse_value(out.items.back(), depth + 1)) return false;
        skip_ws();
        if (eat(']')) return true;
        if (!eat(',')) return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++at;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (eat('}')) return true;
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!eat(':')) return fail("expected ':'");
        out.members.emplace_back(std::move(key), JsonValue{});
        if (!parse_value(out.members.back().second, depth + 1)) return false;
        skip_ws();
        if (eat('}')) return true;
        if (!eat(',')) return fail("expected ',' or '}'");
      }
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      out.kind = JsonValue::Kind::kNumber;
      const char* begin = text.data() + at;
      const char* end = text.data() + text.size();
      const auto res = std::from_chars(begin, end, out.number);
      if (res.ec != std::errc{}) return fail("bad number");
      at += static_cast<std::size_t>(res.ptr - begin);
      return true;
    }
    return fail("unexpected character");
  }
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  Parser parser{text, 0, {}};
  JsonValue value;
  if (!parser.parse_value(value, 0)) {
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  parser.skip_ws();
  if (parser.at != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(parser.at);
    }
    return std::nullopt;
  }
  return value;
}

}  // namespace nfv::util
