// Bounded single-producer/single-consumer ring buffer.
//
// The async ingest front-end routes syslog lines from ONE producer thread
// to ONE shard-worker thread; this queue is that edge in its cheapest
// form: a power-of-two ring indexed by two monotonically increasing
// counters, the producer owning the tail and the consumer owning the
// head. No locks, no CAS — a push is one relaxed load, one store, one
// release store; cached counter copies keep the hot path free of
// cross-core traffic until the ring actually looks full/empty.
//
// Backpressure modes:
//  - try_push/try_pop never block: try_push returns false when the ring
//    is full (or closed) so the producer can shed or buffer load;
//  - push/pop block with a yield/sleep backoff until space/data arrives,
//    bounding producer memory at `capacity()` items end-to-end.
//
// close() wakes blocked peers: push fails once closed; pop keeps draining
// until the ring is empty and only then reports exhaustion. A close
// issued after a producer's final push is therefore lossless: the
// consumer always observes every pushed item first (the closed_ store is
// sequenced after the pushes and pop re-checks the ring after seeing it).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/check.h"

namespace nfv::util {

namespace queue_detail {

/// Shared wait strategy for the ring buffers: spin briefly, then yield,
/// then sleep — single-core friendly (the peer thread needs the CPU to
/// make the awaited progress).
inline void backoff(unsigned& round) {
  if (round < 8) {
    // brief spin
  } else if (round < 64) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  ++round;
}

inline std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace queue_detail

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to the next power of two (min 2).
  explicit SpscQueue(std::size_t capacity)
      : cells_(queue_detail::round_up_pow2(capacity < 2 ? 2 : capacity)),
        mask_(cells_.size() - 1) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return cells_.size(); }

  /// Queue-depth gauge for observability: any thread may sample it while
  /// producer and consumer run. The head counter is read BEFORE the tail
  /// counter so a racy sample can never underflow ("go negative"), and
  /// the result is clamped to capacity() because pops+pushes landing
  /// between the two reads could otherwise overshoot. Exact when
  /// quiescent.
  std::size_t depth() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t d = tail - head;
    return d > cells_.size() ? cells_.size() : d;
  }
  std::size_t size() const { return depth(); }

  /// Backpressure-stall counter: how many times a producer found the
  /// ring full — once per failed try_push(), and once per blocking
  /// push() episode (the internal retry spin does NOT inflate it).
  std::uint64_t stall_count() const {
    return stalls_.load(std::memory_order_relaxed);
  }

  /// Producer only. False when the ring is full or the queue is closed —
  /// and then `value` is NOT consumed (an rvalue argument is only moved
  /// from on success), so blocking wrappers can safely retry with it.
  bool try_push(T&& value) { return try_push_impl(value, true); }
  bool try_push(const T& value) {
    T copy(value);
    return try_push_impl(copy, true);
  }

  /// Producer only. Blocks until space is available; false if the queue
  /// was closed before the item could be enqueued.
  bool push(T value) {
    unsigned round = 0;
    bool count_stall = true;
    for (;;) {
      if (try_push_impl(value, count_stall)) return true;
      count_stall = false;  // one stall per blocking episode
      if (closed_.load(std::memory_order_acquire)) return false;
      queue_detail::backoff(round);
    }
  }

  /// Consumer only. False when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(cells_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. Blocks until an item arrives; false only when the
  /// queue is closed AND fully drained.
  bool pop(T& out) {
    unsigned round = 0;
    for (;;) {
      if (try_pop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // The close happened-before this load; one final check catches
        // items pushed just before the close.
        return try_pop(out);
      }
      queue_detail::backoff(round);
    }
  }

  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  bool try_push_impl(T& value, bool count_stall) {
    if (closed_.load(std::memory_order_relaxed)) return false;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == cells_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == cells_.size()) {
        if (count_stall) stalls_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    cells_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  std::vector<T> cells_;
  const std::size_t mask_;
  // Producer and consumer counters on separate cache lines; each side
  // additionally caches the other's counter to avoid re-reading it while
  // the ring is known non-full/non-empty.
  alignas(64) std::atomic<std::size_t> head_{0};  // next pop slot
  alignas(64) std::atomic<std::size_t> tail_{0};  // next push slot
  alignas(64) std::size_t cached_head_ = 0;       // producer-local
  alignas(64) std::size_t cached_tail_ = 0;       // consumer-local
  alignas(64) std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> stalls_{0};  // full-ring push attempts
};

}  // namespace nfv::util
