#include "util/check.h"

namespace nfv::util {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& message) {
  std::ostringstream oss;
  oss << file << ":" << line << ": check failed: (" << expr << ")";
  if (!message.empty()) oss << " — " << message;
  throw CheckError(oss.str());
}

}  // namespace nfv::util
