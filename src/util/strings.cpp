#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace nfv::util {

std::vector<std::string_view> split(std::string_view text,
                                    std::string_view delims) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    if (end > start) out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool is_all_digits(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool contains_digit(std::string_view text) {
  for (char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c))) return true;
  }
  return false;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace nfv::util
