// String helpers used by the syslog tokenizer and the table writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nfv::util {

/// Split on any of the characters in `delims`, dropping empty pieces.
std::vector<std::string_view> split(std::string_view text,
                                    std::string_view delims = " \t");

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if every character is an ASCII digit (and text is non-empty).
bool is_all_digits(std::string_view text);

/// True if the token contains at least one digit (signal for variable
/// fields like interface indices, IPs, counters in syslog lines).
bool contains_digit(std::string_view text);

/// Lowercase copy (ASCII only).
std::string to_lower(std::string_view text);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace nfv::util
