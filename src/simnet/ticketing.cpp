#include "simnet/ticketing.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nfv::simnet {

using nfv::util::Duration;
using nfv::util::Rng;
using nfv::util::SimTime;

TicketingResult run_ticketing(FaultSchedule& schedule,
                              const TicketingConfig& config, Rng& rng) {
  TicketingResult result;
  std::int64_t next_ticket_id = 0;

  for (FaultEvent& fault : schedule.faults) {
    Rng fault_rng = rng.fork(static_cast<std::uint64_t>(fault.fault_id) + 31);
    Ticket ticket;
    ticket.ticket_id = next_ticket_id++;
    ticket.fault_id = fault.fault_id;
    ticket.vpe = fault.vpe;
    ticket.category = fault.category;
    const auto delay = static_cast<std::int64_t>(fault_rng.lognormal(
        std::log(config.report_delay_median_s), config.report_delay_sigma));
    ticket.report = fault.onset + Duration::of_seconds(std::max<std::int64_t>(
                                      delay, 30));
    const auto repair_s = static_cast<std::int64_t>(fault_rng.lognormal(
        std::log(config.repair_median_h * 3600.0), config.repair_sigma));
    ticket.repair_finish =
        ticket.report +
        Duration::of_seconds(std::max<std::int64_t>(repair_s, 600));
    fault.cleared = ticket.repair_finish;
    result.tickets.push_back(ticket);

    // Duplicate burst while the original trouble is being worked.
    if (fault_rng.bernoulli(config.p_duplicates)) {
      const std::uint32_t count =
          1 + fault_rng.poisson(config.duplicate_count_mean);
      SimTime t = ticket.report;
      for (std::uint32_t d = 0; d < count; ++d) {
        const auto gap = static_cast<std::int64_t>(fault_rng.lognormal(
            std::log(config.duplicate_gap_median_h * 3600.0),
            config.duplicate_gap_sigma));
        t = t + Duration::of_seconds(std::max<std::int64_t>(gap, 120));
        if (t >= ticket.repair_finish) break;
        Ticket dup;
        dup.ticket_id = next_ticket_id++;
        dup.fault_id = fault.fault_id;
        dup.vpe = fault.vpe;
        dup.category = TicketCategory::kDuplicate;
        dup.report = t;
        dup.repair_finish = ticket.repair_finish;
        result.tickets.push_back(dup);
      }
    }
  }

  // Maintenance tickets: pre-scheduled, report at window start, resolved at
  // window end.
  for (const MaintenanceWindow& window : schedule.maintenance) {
    Ticket ticket;
    ticket.ticket_id = next_ticket_id++;
    ticket.fault_id = -1;
    ticket.vpe = window.vpe;
    ticket.category = TicketCategory::kMaintenance;
    ticket.report = window.start;
    ticket.repair_finish = window.end();
    result.tickets.push_back(ticket);
  }

  std::sort(result.tickets.begin(), result.tickets.end(),
            [](const Ticket& a, const Ticket& b) {
              return a.report < b.report;
            });
  return result;
}

}  // namespace nfv::simnet
