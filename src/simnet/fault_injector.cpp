#include "simnet/fault_injector.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nfv::simnet {

using nfv::util::Duration;
using nfv::util::Rng;
using nfv::util::SimTime;

FaultSchedule inject_faults(const std::vector<VpeProfile>& profiles,
                            SimTime horizon, const FaultInjectorConfig& config,
                            Rng& rng) {
  NFV_CHECK(!profiles.empty(), "inject_faults needs vPE profiles");
  NFV_CHECK(horizon > SimTime::epoch(), "horizon must be positive");
  FaultSchedule schedule;
  std::int64_t next_fault_id = 0;

  const double category_weights[4] = {config.p_circuit, config.p_cable,
                                      config.p_hardware, config.p_software};
  const TicketCategory categories[4] = {
      TicketCategory::kCircuit, TicketCategory::kCable,
      TicketCategory::kHardware, TicketCategory::kSoftware};

  // Per-vPE primary fault renewal process.
  for (const VpeProfile& profile : profiles) {
    Rng vpe_rng = rng.fork(static_cast<std::uint64_t>(profile.vpe_id) + 77);
    const double median_gap_s = config.fault_median_gap_h * 3600.0 /
                                std::max(profile.fault_rate_scale, 1e-3);
    const double mu = std::log(median_gap_s);
    SimTime t = SimTime::epoch();
    SimTime last_fault{-1};
    while (true) {
      const auto gap = static_cast<std::int64_t>(
          vpe_rng.lognormal(mu, config.fault_gap_sigma));
      t = t + Duration::of_seconds(std::max<std::int64_t>(gap, 60));
      if (t >= horizon) break;
      // Enforce the >40-minute spacing of Fig. 1(b) by dropping collisions
      // (rare; only matters for the smallest sampled gaps).
      if (last_fault.seconds >= 0 &&
          t - last_fault < config.min_fault_gap) {
        continue;
      }
      FaultEvent fault;
      fault.fault_id = next_fault_id++;
      fault.vpe = profile.vpe_id;
      fault.category =
          categories[vpe_rng.categorical(category_weights)];
      fault.onset = t;
      fault.cleared = t;  // finalized by the ticketing pipeline
      fault.fleet_wide = false;
      schedule.faults.push_back(fault);
      last_fault = t;

      // Related secondary trouble a few hours later (short-gap mass of
      // Fig. 1(b)).
      if (vpe_rng.bernoulli(config.p_secondary)) {
        const SimTime secondary_time =
            t + Duration::of_seconds(static_cast<std::int64_t>(
                    3600.0 * vpe_rng.uniform(config.secondary_lag_min_h,
                                             config.secondary_lag_max_h)));
        if (secondary_time < horizon) {
          FaultEvent secondary = fault;
          secondary.fault_id = next_fault_id++;
          secondary.category =
              categories[vpe_rng.categorical(category_weights)];
          secondary.onset = secondary_time;
          secondary.cleared = secondary_time;
          schedule.faults.push_back(secondary);
          last_fault = secondary_time;
          t = secondary_time;
        }
      }
    }
  }

  // Per-vPE fault times, for collision checks below.
  std::vector<std::vector<SimTime>> fault_times(profiles.size());
  for (const FaultEvent& fault : schedule.faults) {
    fault_times[static_cast<std::size_t>(fault.vpe)].push_back(fault.onset);
  }
  auto collides = [&](std::int32_t vpe, SimTime when) {
    for (const SimTime t : fault_times[static_cast<std::size_t>(vpe)]) {
      const auto gap = when >= t ? when - t : t - when;
      if (gap < config.collision_margin) return true;
    }
    return false;
  };

  // Fleet-wide core-router events: same onset (±30 s) across a sampled
  // subset of vPEs, surfacing as circuit troubles at each vPE.
  for (int e = 0; e < config.fleet_wide_events; ++e) {
    const auto when = static_cast<std::int64_t>(
        rng.uniform(0.0, static_cast<double>(horizon.seconds)));
    for (const VpeProfile& profile : profiles) {
      if (!rng.bernoulli(config.fleet_wide_fraction)) continue;
      if (collides(profile.vpe_id, SimTime{when})) continue;
      FaultEvent fault;
      fault.fault_id = next_fault_id++;
      fault.vpe = profile.vpe_id;
      fault.category = TicketCategory::kCircuit;
      fault.onset = SimTime{when + rng.uniform_int(-30, 30)};
      fault.cleared = fault.onset;
      fault.fleet_wide = true;
      schedule.faults.push_back(fault);
      fault_times[static_cast<std::size_t>(profile.vpe_id)].push_back(
          fault.onset);
    }
  }

  std::sort(schedule.faults.begin(), schedule.faults.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.onset < b.onset;
            });

  // Maintenance campaigns: fleet-wide change windows covering a sampled
  // subset of vPEs, spread over a few days around each campaign time.
  {
    Rng maint_rng = rng.fork(991);
    const double gap_mu = std::log(config.campaign_gap_median_d * 86400.0);
    SimTime campaign = SimTime{static_cast<std::int64_t>(maint_rng.uniform(
        0.0, config.campaign_gap_median_d * 86400.0))};
    while (campaign < horizon) {
      for (const VpeProfile& profile : profiles) {
        if (!maint_rng.bernoulli(config.campaign_coverage)) continue;
        MaintenanceWindow window;
        window.vpe = profile.vpe_id;
        window.start =
            campaign + Duration::of_seconds(static_cast<std::int64_t>(
                           maint_rng.uniform(
                               0.0, config.campaign_spread_d * 86400.0)));
        if (window.start >= horizon) continue;
        if (collides(profile.vpe_id, window.start)) continue;
        window.length = Duration::of_seconds(static_cast<std::int64_t>(
            3600.0 * maint_rng.uniform(config.maintenance_min_h,
                                       config.maintenance_max_h)));
        schedule.maintenance.push_back(window);
      }
      campaign =
          campaign + Duration::of_seconds(static_cast<std::int64_t>(
                         maint_rng.lognormal(gap_mu,
                                             config.campaign_gap_sigma)));
    }
  }
  std::sort(schedule.maintenance.begin(), schedule.maintenance.end(),
            [](const MaintenanceWindow& a, const MaintenanceWindow& b) {
              return a.start < b.start;
            });
  return schedule;
}

}  // namespace nfv::simnet
