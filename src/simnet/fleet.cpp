#include "simnet/fleet.h"

#include <algorithm>
#include <limits>

#include "util/check.h"
#include "util/thread_pool.h"

namespace nfv::simnet {

using nfv::util::Duration;
using nfv::util::Rng;
using nfv::util::SimTime;

SimTime never() { return SimTime{std::numeric_limits<std::int64_t>::max()}; }

std::size_t FleetTrace::total_log_count() const {
  std::size_t total = 0;
  for (const auto& logs : logs_by_vpe) total += logs.size();
  return total;
}

FleetTrace simulate_fleet(const FleetConfig& config) {
  NFV_CHECK(config.months > 0, "fleet must run for at least one month");
  FleetTrace trace;
  trace.config = config;
  trace.catalog = TemplateCatalog::standard();
  trace.horizon = nfv::util::month_start(config.months);

  Rng rng(config.seed);
  Rng profile_rng = rng.fork(1);
  trace.profiles =
      make_fleet_profiles(trace.catalog, config.profiles, profile_rng);

  // Software-update rollout schedule.
  Rng update_rng = rng.fork(2);
  trace.update_time_by_vpe.assign(trace.profiles.size(), never());
  if (config.update_month >= 0) {
    const SimTime rollout = nfv::util::month_start(config.update_month);
    for (const VpeProfile& profile : trace.profiles) {
      if (!profile.affected_by_update) continue;
      const auto stagger = static_cast<std::int64_t>(
          update_rng.uniform(0.0, config.update_stagger_days * 86400.0));
      trace.update_time_by_vpe[static_cast<std::size_t>(profile.vpe_id)] =
          rollout + Duration::of_seconds(stagger);
    }
  }

  // Faults, maintenance, tickets.
  Rng fault_rng = rng.fork(3);
  FaultSchedule schedule =
      inject_faults(trace.profiles, trace.horizon, config.faults, fault_rng);
  Rng ticket_rng = rng.fork(4);
  TicketingResult ticketing =
      run_ticketing(schedule, config.ticketing, ticket_rng);
  trace.tickets = std::move(ticketing.tickets);
  trace.faults = std::move(schedule.faults);
  trace.maintenance = std::move(schedule.maintenance);

  // Fault-driven syslogs.
  Rng emit_rng = rng.fork(5);
  std::vector<RawLogRecord> fault_logs = emit_fault_logs(
      trace.faults, trace.tickets, trace.catalog, config.anomalies, emit_rng);
  Rng near_miss_rng = rng.fork(6);
  std::vector<RawLogRecord> near_miss_logs = emit_near_miss_logs(
      config.profiles.num_vpes, trace.horizon, trace.catalog,
      config.anomalies, near_miss_rng);
  fault_logs.insert(fault_logs.end(),
                    std::make_move_iterator(near_miss_logs.begin()),
                    std::make_move_iterator(near_miss_logs.end()));

  // Background syslogs per vPE, sharded over the thread pool, then merge
  // in the fault logs. Rng::fork advances the parent generator, so the
  // per-vPE streams are forked serially in the same order the serial loop
  // used; after that every task reads shared state and writes only its own
  // logs_by_vpe slot, so the trace is byte-identical to a single-threaded
  // build for any thread count.
  trace.logs_by_vpe.resize(trace.profiles.size());
  std::vector<Rng> vpe_rngs;
  vpe_rngs.reserve(trace.profiles.size());
  for (const VpeProfile& profile : trace.profiles) {
    vpe_rngs.push_back(
        rng.fork(1000 + static_cast<std::uint64_t>(profile.vpe_id)));
  }
  const auto generate_vpe = [&](std::size_t p) {
    const VpeProfile& profile = trace.profiles[p];
    const auto v = static_cast<std::size_t>(profile.vpe_id);
    std::vector<MaintenanceWindow> windows;
    for (const MaintenanceWindow& w : trace.maintenance) {
      if (w.vpe == profile.vpe_id) windows.push_back(w);
    }
    SyslogProcess process(&trace.catalog, &profile,
                          trace.update_time_by_vpe[v], config.syslog,
                          vpe_rngs[p]);
    trace.logs_by_vpe[v] =
        process.generate(SimTime::epoch(), trace.horizon, windows);
  };
  if (!nfv::util::ThreadPool::in_parallel_region() &&
      nfv::util::global_pool().size() > 1) {
    nfv::util::global_pool().parallel_for(0, trace.profiles.size(),
                                          generate_vpe);
  } else {
    for (std::size_t p = 0; p < trace.profiles.size(); ++p) generate_vpe(p);
  }
  for (RawLogRecord& rec : fault_logs) {
    if (rec.time >= trace.horizon || rec.time < SimTime::epoch()) continue;
    trace.logs_by_vpe[static_cast<std::size_t>(rec.vpe)].push_back(
        std::move(rec));
  }
  for (auto& logs : trace.logs_by_vpe) {
    std::stable_sort(logs.begin(), logs.end(),
                     [](const RawLogRecord& a, const RawLogRecord& b) {
                       return a.time < b.time;
                     });
  }
  return trace;
}

FleetConfig small_fleet_config(std::uint64_t seed) {
  FleetConfig config;
  config.seed = seed;
  config.months = 4;
  config.profiles.num_vpes = 6;
  config.profiles.num_clusters = 2;
  config.profiles.num_outliers = 1;
  config.syslog.gap_scale = 4.0;  // sparser logs
  config.update_month = 2;
  config.faults.fleet_wide_events = 1;
  return config;
}

}  // namespace nfv::simnet
