// Background syslog generation for one vPE.
//
// A semi-Markov process over the template catalog: background emissions are
// drawn from the vPE's weight distribution, and with some probability an
// emission instead starts a *motif* — a short template chain executed in
// order with seconds-scale gaps. Motifs give the stream the sequential
// structure that makes next-template prediction meaningful. The process
// switches to the post-update emission profile at the vPE's update time,
// and emits maintenance chatter inside scheduled maintenance windows.
#pragma once

#include <span>
#include <vector>

#include "simnet/template_catalog.h"
#include "simnet/types.h"
#include "simnet/vpe_profile.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace nfv::simnet {

/// A scheduled maintenance window on one vPE.
struct MaintenanceWindow {
  std::int32_t vpe = -1;
  nfv::util::SimTime start;
  nfv::util::Duration length;
  nfv::util::SimTime end() const { return start + length; }
};

struct SyslogProcessConfig {
  /// Probability that an emission event starts a motif instead of a single
  /// background template.
  double motif_probability = 0.2;
  /// Mean gap between consecutive logs inside a motif, seconds.
  double motif_gap_mean_s = 15.0;
  /// Lognormal sigma of the background inter-event gap (median comes from
  /// the vPE profile).
  double gap_sigma = 1.0;
  /// Global rate multiplier: >1 slows the stream down (longer gaps).
  /// Benches use this to trade fidelity for speed.
  double gap_scale = 1.0;
  /// Mean gap between maintenance-window log lines, seconds.
  double maintenance_gap_mean_s = 240.0;
  /// Rare benign bursts (audit storms, route refreshes): mean bursts per
  /// vPE per day. These are the natural false-alarm source — legitimate
  /// operations whose log signature looks anomalous.
  double benign_burst_rate_per_day = 0.25;
  std::size_t benign_burst_min = 2;
  std::size_t benign_burst_max = 4;
  double benign_burst_gap_mean_s = 25.0;
};

/// Generator for one vPE's background (non-fault) syslog.
class SyslogProcess {
 public:
  SyslogProcess(const TemplateCatalog* catalog, const VpeProfile* profile,
                nfv::util::SimTime update_time,
                const SyslogProcessConfig& config, nfv::util::Rng rng);

  /// Generate all background logs in [begin, end), including maintenance
  /// chatter for the provided windows (which must belong to this vPE).
  /// Output is time-sorted.
  std::vector<RawLogRecord> generate(
      nfv::util::SimTime begin, nfv::util::SimTime end,
      std::span<const MaintenanceWindow> windows);

 private:
  const EmissionProfile& profile_at(nfv::util::SimTime t) const;
  void emit(std::vector<RawLogRecord>& out, nfv::util::SimTime t,
            std::int32_t template_id);

  const TemplateCatalog* catalog_;
  const VpeProfile* profile_;
  nfv::util::SimTime update_time_;
  SyslogProcessConfig config_;
  nfv::util::Rng rng_;
  nfv::util::DiscreteSampler normal_sampler_;
  nfv::util::DiscreteSampler post_sampler_;
  nfv::util::DiscreteSampler normal_motif_sampler_;
  nfv::util::DiscreteSampler post_motif_sampler_;
};

}  // namespace nfv::simnet
