#include "simnet/template_catalog.h"

#include "util/check.h"
#include "util/strings.h"

namespace nfv::simnet {

using nfv::util::Rng;

const LogTemplate& TemplateCatalog::at(std::int32_t id) const {
  NFV_CHECK(id >= 0 && static_cast<std::size_t>(id) < templates_.size(),
            "template id out of range: " << id);
  return templates_[static_cast<std::size_t>(id)];
}

std::vector<std::int32_t> TemplateCatalog::ids_of_kind(
    TemplateKind kind) const {
  std::vector<std::int32_t> out;
  for (const LogTemplate& t : templates_) {
    if (t.kind == kind) out.push_back(t.id);
  }
  return out;
}

std::vector<std::int32_t> TemplateCatalog::fault_ids(
    TemplateKind kind, TicketCategory category) const {
  std::vector<std::int32_t> out;
  for (const LogTemplate& t : templates_) {
    if (t.kind == kind && t.category == category) out.push_back(t.id);
  }
  return out;
}

void TemplateCatalog::add(std::string name, std::string pattern,
                          TemplateKind kind, double base_weight,
                          TicketCategory category) {
  LogTemplate t;
  t.id = static_cast<std::int32_t>(templates_.size());
  t.name = std::move(name);
  t.pattern = std::move(pattern);
  t.kind = kind;
  t.category = category;
  t.base_weight = base_weight;
  templates_.push_back(std::move(t));
}

namespace {

std::string render_field(std::string_view key, Rng& rng) {
  using nfv::util::format;
  if (key == "if") {
    const char* speeds[] = {"ge", "xe", "et"};
    return format("%s-%d/%d/%d", speeds[rng.uniform_index(3)],
                  static_cast<int>(rng.uniform_index(2)),
                  static_cast<int>(rng.uniform_index(4)),
                  static_cast<int>(rng.uniform_index(48)));
  }
  if (key == "ip") {
    return format("%d.%d.%d.%d", static_cast<int>(rng.uniform_int(10, 203)),
                  static_cast<int>(rng.uniform_int(0, 255)),
                  static_cast<int>(rng.uniform_int(0, 255)),
                  static_cast<int>(rng.uniform_int(1, 254)));
  }
  if (key == "num") return format("%d", static_cast<int>(rng.uniform_int(0, 99)));
  if (key == "big") {
    return format("%lld", static_cast<long long>(rng.uniform_int(1000, 99999999)));
  }
  if (key == "hex") {
    return format("0x%08llx",
                  static_cast<unsigned long long>(rng.next_u64() & 0xffffffffu));
  }
  if (key == "as") return format("%d", static_cast<int>(rng.uniform_int(64512, 65534)));
  if (key == "pct") return format("%d%%", static_cast<int>(rng.uniform_int(1, 99)));
  if (key == "fpc") return format("%d", static_cast<int>(rng.uniform_index(8)));
  if (key == "peer") {
    const char* roles[] = {"agg", "core", "edge", "rr"};
    return format("%s%d.region%d", roles[rng.uniform_index(4)],
                  static_cast<int>(rng.uniform_int(1, 8)),
                  static_cast<int>(rng.uniform_int(1, 4)));
  }
  return std::string(key);
}

}  // namespace

std::string TemplateCatalog::render(std::int32_t id, Rng& rng) const {
  const LogTemplate& t = at(id);
  std::string out;
  out.reserve(t.pattern.size() + 16);
  std::size_t i = 0;
  while (i < t.pattern.size()) {
    if (t.pattern[i] == '{') {
      const std::size_t close = t.pattern.find('}', i);
      if (close != std::string::npos) {
        out += render_field(
            std::string_view(t.pattern).substr(i + 1, close - i - 1), rng);
        i = close + 1;
        continue;
      }
    }
    out += t.pattern[i++];
  }
  return out;
}

std::string TemplateCatalog::render_seeded(std::int32_t id,
                                           std::uint64_t salt) const {
  // Seed by mixing id into salt (splitmix-style) so adjacent (id, salt)
  // pairs do not produce correlated field draws.
  std::uint64_t state =
      salt * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(id) + 1;
  Rng rng(nfv::util::splitmix64(state));
  return render(id, rng);
}

TemplateCatalog TemplateCatalog::standard() {
  TemplateCatalog c;
  using K = TemplateKind;
  using TC = TicketCategory;

  // --- Normal operational chatter (routing protocols) ---
  c.add("RPD_BGP_UPDATE_RECV", "rpd[{num}]: bgp_recv: received {num} updates from peer {ip} (External AS {as})", K::kNormal, 9.0);
  c.add("RPD_BGP_KEEPALIVE", "rpd[{num}]: BGP keepalive exchange with {ip} completed, hold timer reset", K::kNormal, 7.0);
  c.add("RPD_OSPF_HELLO", "rpd[{num}]: OSPF hello processed on {if} area 0.0.0.{num}", K::kNormal, 6.0);
  c.add("RPD_OSPF_LSA_REFRESH", "rpd[{num}]: OSPF LSA refresh: advertising router {ip} seq {hex}", K::kNormal, 4.0);
  c.add("RPD_ISIS_ADJ_STATE", "rpd[{num}]: IS-IS adjacency refresh on {if} level 2 system {peer}", K::kNormal, 2.5);
  c.add("RPD_LDP_SESSION_UP", "rpd[{num}]: LDP session {ip} keepalive ok, label space {num}", K::kNormal, 2.0);
  c.add("RPD_RSVP_REFRESH", "rpd[{num}]: RSVP path refresh for LSP {peer}-to-{peer} bandwidth {big}bps", K::kNormal, 1.5);
  c.add("RPD_TASK_BEGIN", "rpd[{num}]: task scheduler: periodic job {num} started", K::kNormal, 2.0);
  c.add("RPD_KRT_QUEUE", "rpd[{num}]: KRT queue drained, {num} routes installed in {num}ms", K::kNormal, 3.0);
  c.add("BGP_RIB_CHURN", "rpd[{num}]: RIB walk complete: {big} prefixes, {num} withdrawn", K::kNormal, 3.5);

  // --- Normal: interfaces / data plane ---
  c.add("IF_STATS_POLL", "pfed[{num}]: interface {if} stats poll: in {big} octets out {big} octets", K::kNormal, 8.0);
  c.add("LACP_TIMEOUT_REFRESH", "lacpd[{num}]: LACP partner refresh on {if} sys-prio {num}", K::kNormal, 2.0);
  c.add("BFD_SESSION_OK", "bfdd[{num}]: BFD session {ip} on {if} state Up, interval {num}ms", K::kNormal, 3.0);
  c.add("PFE_CELL_STATS", "fpc{fpc} pfe: fabric cell stats ok, drops {num} over {big} cells", K::kNormal, 2.5);
  c.add("DDOS_PROTO_OK", "jddosd[{num}]: protocol {num} violation check ok, rate {big}pps", K::kNormal, 1.5);
  c.add("FW_FILTER_HIT", "fw: filter {hex} term {num} matched {big} packets on {if}", K::kNormal, 2.0);
  c.add("COS_QUEUE_STATS", "cosd[{num}]: queue {num} on {if}: tail-drops {num} red-drops {num}", K::kNormal, 1.8);
  c.add("ARP_RESOLVE", "kernel: arp resolved {ip} on {if} lladdr {hex}", K::kNormal, 2.2);

  // --- Normal: system / platform ---
  c.add("SNMP_GET", "snmpd[{num}]: GET request from {ip} oid ifHCInOctets.{num}", K::kNormal, 6.0);
  c.add("NTP_SYNC", "xntpd[{num}]: clock synchronized to {ip} stratum {num} offset 0.{num}ms", K::kNormal, 1.2);
  c.add("CHASSISD_POLL", "chassisd[{num}]: environment poll: all FRUs nominal, {num} sensors read", K::kNormal, 2.0);
  c.add("CHASSISD_TEMP_OK", "chassisd[{num}]: temperature fpc{fpc} intake {num}C within range", K::kNormal, 1.5);
  c.add("SSHD_LOGIN", "sshd[{num}]: accepted publickey for netops from {ip} port {big}", K::kNormal, 1.0);
  c.add("MGD_SHOW_CMD", "mgd[{num}]: UI_CMDLINE_READ_LINE: user 'netops' command 'show bgp summary'", K::kNormal, 1.6);
  c.add("SYSTEM_CRON", "cron[{num}]: (root) CMD (newsyslog -r) exit {num}", K::kNormal, 0.8);
  c.add("LICENSE_CHECK", "license-check[{num}]: feature bandwidth usage {pct} of entitlement", K::kNormal, 0.6);
  c.add("JTASK_IO_STATS", "rpd[{num}]: jtask io stats: {big} reads {big} writes pending {num}", K::kNormal, 1.4);
  c.add("KERNEL_IFSTATE", "kernel: ifstate sync: {num} entries committed, gen {big}", K::kNormal, 1.7);

  // --- Normal: NFV / virtualization layer (vPE-specific visibility) ---
  c.add("VNF_HEARTBEAT", "vnf-agent[{num}]: heartbeat to VIM controller {ip} ok rtt {num}ms", K::kNormal, 3.0);
  c.add("VCPU_STEAL", "hypervisor: vcpu {num} steal time {num}ms over last interval", K::kNormal, 2.0);
  c.add("VIRTIO_QUEUE", "virtio-net: queue {num} on vnic{num} kicked, {big} descriptors", K::kNormal, 2.2);
  c.add("OVS_FLOW_STATS", "ovs-vswitchd[{num}]: datapath flow stats: {big} hits {num} misses", K::kNormal, 1.8);
  c.add("VM_BALLOON", "balloon: target {big}MB actual {big}MB", K::kNormal, 0.9);
  c.add("DPDK_POLL_STATS", "dpdk-pmd[{num}]: rx burst poll on port {num}: {big} pkts, {num} empty polls", K::kNormal, 2.4);

  // --- Normal: commit motif (chained in the generator) ---
  c.add("UI_COMMIT", "mgd[{num}]: UI_COMMIT: user 'netops' requested commit", K::kNormal, 0.7);
  c.add("UI_COMMIT_PROGRESS", "mgd[{num}]: UI_COMMIT_PROGRESS: commit phase {num} of {num}", K::kNormal, 0.7);
  c.add("UI_COMMIT_COMPLETED", "mgd[{num}]: UI_COMMIT_COMPLETED: commit complete", K::kNormal, 0.7);

  // --- Maintenance-window messages ---
  c.add("MAINT_START", "mgd[{num}]: maintenance window opened by change {hex}", K::kMaintenance, 1.0);
  c.add("PKG_INSTALL", "pkg[{num}]: installing bundle jinstall-{num}.{num}R{num} validate ok", K::kMaintenance, 1.0);
  c.add("ISSU_PHASE", "chassisd[{num}]: ISSU phase {num}: dark window {num}s", K::kMaintenance, 1.0);
  c.add("SYSTEM_REBOOT", "init: system going down for reboot requested by netops", K::kMaintenance, 0.8);
  c.add("MAINT_SNAPSHOT", "mgd[{num}]: configuration snapshot saved as rollback {num}", K::kMaintenance, 0.9);
  c.add("MAINT_END", "mgd[{num}]: maintenance window closed, change {hex} verified", K::kMaintenance, 1.0);

  // --- Circuit fault precursors (the paper's flagship signatures) ---
  c.add("BGP_UNUSABLE_ASPATH", "rpd[{num}]: BGP UNUSABLE ASPATH: bgp reject path from peer {ip} (AS {as})", K::kPrecursor, 1.0, TC::kCircuit);
  c.add("CHASSIS_PEER_INVALID", "chassisd[{num}]: invalid response from peer chassis-control session {hex}", K::kPrecursor, 1.0, TC::kCircuit);
  c.add("BGP_HOLDTIME_EXPIRY_WARN", "rpd[{num}]: peer {ip} hold timer {num}s about to expire, last keepalive {num}s ago", K::kPrecursor, 1.0, TC::kCircuit);
  c.add("BFD_FLAP_WARN", "bfdd[{num}]: BFD session {ip} on {if} flapped {num} times in {num}s", K::kPrecursor, 1.0, TC::kCircuit);
  c.add("LDP_SESSION_RETRY", "rpd[{num}]: LDP session {ip} init retry {num}, backoff {num}s", K::kPrecursor, 1.0, TC::kCircuit);

  // --- Circuit fault errors (infected period) ---
  c.add("BGP_NEIGHBOR_DOWN", "rpd[{num}]: RPD_BGP_NEIGHBOR_STATE_CHANGED: peer {ip} (External AS {as}) changed state from Established to Idle (event HoldTime)", K::kError, 1.0, TC::kCircuit);
  c.add("CIRCUIT_IF_DOWN", "mib2d[{num}]: SNMP_TRAP_LINK_DOWN: ifIndex {num}, ifAdminStatus up({num}), ifOperStatus down({num}), ifName {if}", K::kError, 1.0, TC::kCircuit);
  c.add("OSPF_NBR_DOWN", "rpd[{num}]: RPD_OSPF_NBRDOWN: OSPF neighbor {ip} (realm v2 {if}) state changed from Full to Down", K::kError, 1.0, TC::kCircuit);
  c.add("VRF_CONNECTIVITY_LOSS", "rpd[{num}]: VRF {peer} lost connectivity to CE {ip}, {big} prefixes withdrawn", K::kError, 1.0, TC::kCircuit);

  // --- Cable fault precursors ---
  c.add("OPTICS_POWER_LOW", "fpc{fpc} xcvr {num}: rx optical power {num}.{num}dBm below warn threshold on {if}", K::kPrecursor, 1.0, TC::kCable);
  c.add("FEC_ERRORS_RISING", "fpc{fpc} mac: FEC corrected errors rising on {if}: {big} in {num}s", K::kPrecursor, 1.0, TC::kCable);
  c.add("LINK_CRC_WARN", "fpc{fpc} mac: CRC error rate {num}e-{num} on {if} exceeds watermark", K::kPrecursor, 1.0, TC::kCable);

  // --- Cable fault errors ---
  c.add("CABLE_LOS", "fpc{fpc} xcvr {num}: rx loss of signal on {if}", K::kError, 1.0, TC::kCable);
  c.add("CABLE_IF_DOWN_FLAP", "mib2d[{num}]: SNMP_TRAP_LINK_DOWN: ifIndex {num}, ifName {if} (carrier transitions {num})", K::kError, 1.0, TC::kCable);
  c.add("LACP_MEMBER_DETACH", "lacpd[{num}]: member {if} detached from ae{num}: port timeout", K::kError, 1.0, TC::kCable);

  // --- Hardware fault precursors ---
  c.add("CM_PARITY_WARN", "fpc{fpc} cmerror: module {num} parity error count {num} (threshold {num})", K::kPrecursor, 1.0, TC::kHardware);
  c.add("FAN_RPM_DEVIATION", "chassisd[{num}]: fan tray {num} rpm {big} deviates {pct} from commanded", K::kPrecursor, 1.0, TC::kHardware);
  c.add("TEMP_RISING_WARN", "chassisd[{num}]: temperature fpc{fpc} exhaust {num}C rising, fan duty {pct}", K::kPrecursor, 1.0, TC::kHardware);
  c.add("VOLTAGE_RAIL_WARN", "chassisd[{num}]: power rail {num}V{num} reading {num}mV out of spec on FRU {num}", K::kPrecursor, 1.0, TC::kHardware);

  // --- Hardware fault errors ---
  c.add("FRU_FAILURE", "chassisd[{num}]: CHASSISD_FRU_ERROR: FPC {fpc} fault, error code {hex}", K::kError, 1.0, TC::kHardware);
  c.add("ALARM_RED", "alarmd[{num}]: Alarm set: RED, class CHASSIS, reason FPC {fpc} offline", K::kError, 1.0, TC::kHardware);
  c.add("PFE_DISABLE", "fpc{fpc} pfe: PFE {num} disabled after {num} wedge detections", K::kError, 1.0, TC::kHardware);

  // --- Software fault precursors ---
  c.add("RPD_SCHED_SLIP", "rpd[{num}]: RPD_SCHED_SLIP: {num}s scheduler slip, longest {num}s", K::kPrecursor, 1.0, TC::kSoftware);
  c.add("MEM_UTIL_HIGH", "rpd[{num}]: memory utilization {pct} above watermark, rtsock backlog {num}", K::kPrecursor, 1.0, TC::kSoftware);
  c.add("WEDGE_DETECT_WARN", "fpc{fpc} pfe: possible wedge: host loopback latency {num}ms", K::kPrecursor, 1.0, TC::kSoftware);
  c.add("VNF_HEARTBEAT_MISS", "vnf-agent[{num}]: missed {num} heartbeats to VIM controller {ip}", K::kPrecursor, 1.0, TC::kSoftware);

  // --- Software fault errors ---
  c.add("PROC_COREDUMP", "kernel: pid {big} (rpd), uid 0: exited on signal {num} (core dumped)", K::kError, 1.0, TC::kSoftware);
  c.add("DAEMON_RESTART", "init: routing (PID {big}) terminated; restarting", K::kError, 1.0, TC::kSoftware);
  c.add("RPD_ABORT", "rpd[{num}]: assertion failed file krt_state.c line {big}", K::kError, 1.0, TC::kSoftware);

  // --- Rare benign bursts (legitimate but surprising operations) ---
  c.add("CONFIG_AUDIT_SWEEP", "audit[{num}]: configuration audit sweep section {num}: {num} stanzas checked", K::kBenignRare, 1.0);
  c.add("ROUTE_REFRESH_STORM", "rpd[{num}]: route refresh from {ip}: {big} prefixes re-advertised", K::kBenignRare, 1.2);
  c.add("SNMP_BULKWALK", "snmpd[{num}]: bulk walk from {ip}: {big} oids in {num}s", K::kBenignRare, 1.0);
  c.add("NTP_STEP", "xntpd[{num}]: time reset {num}.{num}s (step) to stratum {num} source {ip}", K::kBenignRare, 0.6);
  c.add("LICENSE_REVALIDATE", "license-check[{num}]: entitlement revalidation forced, token {hex}", K::kBenignRare, 0.5);
  c.add("FLOWTABLE_FLUSH", "vrouter-dp[{num}]: flow table {num} flushed, {big} entries aged", K::kBenignRare, 0.8);
  c.add("IGP_FULL_SPF", "rpd[{num}]: full SPF run triggered by LSA {hex}, {num}ms", K::kBenignRare, 1.0);
  c.add("CHASSIS_INVENTORY", "chassisd[{num}]: full inventory reread: {num} FRUs enumerated", K::kBenignRare, 0.7);

  // --- Post-update templates (appear only after the system upgrade) ---
  c.add("TELEMETRY_EXPORT", "telemetry-agent[{num}]: gRPC export to {ip}:{num} ok, {big} datapoints", K::kPostUpdate, 5.0);
  c.add("SECINTEL_FEED", "secintel[{num}]: threat feed delta applied: {num} entries ver {big}", K::kPostUpdate, 2.5);
  c.add("OPENCONFIG_SUBSCRIBE", "na-grpcd[{num}]: OpenConfig subscription {hex} from {ip} paths {num}", K::kPostUpdate, 3.0);
  c.add("EVPN_MAC_LEARN", "rpd[{num}]: EVPN MAC+IP advertisement {hex} learned on {if} vlan {num}", K::kPostUpdate, 3.5);
  c.add("SR_TE_POLICY", "rpd[{num}]: SR-TE policy {peer} color {num} path recomputed, {num} segments", K::kPostUpdate, 2.8);
  c.add("AGENTD_SENSOR", "agentd[{num}]: sensor /interfaces/{if}/state pushed {big} bytes", K::kPostUpdate, 4.0);
  c.add("NEW_DDOS_ENGINE", "jddosd2[{num}]: adaptive policer {num} tuned to {big}pps", K::kPostUpdate, 1.8);
  c.add("VROUTER_OFFLOAD", "vrouter-dp[{num}]: flow offload table {num} occupancy {pct}", K::kPostUpdate, 2.2);

  return c;
}

}  // namespace nfv::simnet
