#include "simnet/vpe_profile.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nfv::simnet {

using nfv::util::Rng;

namespace {

/// Cluster-level base: catalog base weights perturbed per cluster, so each
/// cluster "speaks" with a different template mix (different server roles).
std::vector<double> make_cluster_weights(const TemplateCatalog& catalog,
                                         double cluster_noise,
                                         double template_dropout, Rng& rng) {
  std::vector<double> weights(catalog.size(), 0.0);
  for (const LogTemplate& t : catalog.all()) {
    if (t.kind == TemplateKind::kNormal) {
      if (rng.bernoulli(template_dropout)) continue;  // role never logs it
      weights[static_cast<std::size_t>(t.id)] =
          t.base_weight * rng.lognormal(0.0, cluster_noise);
    }
  }
  return weights;
}

/// Motif pool: hand-curated chains over the catalog's normal templates plus
/// cluster-specific random chains. Chains reference templates by name so
/// the pool stays in sync with the catalog.
std::vector<Motif> make_cluster_motifs(const TemplateCatalog& catalog,
                                       Rng& rng) {
  auto id_of = [&](std::string_view name) -> std::int32_t {
    for (const LogTemplate& t : catalog.all()) {
      if (t.name == name) return t.id;
    }
    NFV_CHECK(false, "motif references unknown template " << name);
    return -1;
  };

  std::vector<Motif> pool;
  // The commit conversation — present on every cluster.
  pool.push_back({{id_of("UI_COMMIT"), id_of("UI_COMMIT_PROGRESS"),
                   id_of("UI_COMMIT_PROGRESS"), id_of("UI_COMMIT_COMPLETED")},
                  1.0});
  // BGP update burst followed by RIB churn and KRT drain.
  pool.push_back({{id_of("RPD_BGP_UPDATE_RECV"), id_of("RPD_BGP_UPDATE_RECV"),
                   id_of("BGP_RIB_CHURN"), id_of("RPD_KRT_QUEUE")},
                  2.0});
  // SNMP poll cycle.
  pool.push_back({{id_of("SNMP_GET"), id_of("IF_STATS_POLL"),
                   id_of("COS_QUEUE_STATS")},
                  1.6});
  // Operator inspection session.
  pool.push_back({{id_of("SSHD_LOGIN"), id_of("MGD_SHOW_CMD"),
                   id_of("MGD_SHOW_CMD")},
                  0.8});
  // VNF layer heartbeat + stats sweep.
  pool.push_back({{id_of("VNF_HEARTBEAT"), id_of("OVS_FLOW_STATS"),
                   id_of("DPDK_POLL_STATS"), id_of("VIRTIO_QUEUE")},
                  1.4});
  // IGP refresh cycle.
  pool.push_back({{id_of("RPD_OSPF_HELLO"), id_of("RPD_OSPF_LSA_REFRESH"),
                   id_of("RPD_ISIS_ADJ_STATE")},
                  1.2});
  // Chassis environment sweep.
  pool.push_back({{id_of("CHASSISD_POLL"), id_of("CHASSISD_TEMP_OK")}, 1.0});

  // Cluster-specific random chains drawn from the normal templates, giving
  // each cluster sequential idioms of its own.
  const std::vector<std::int32_t> normal_ids =
      catalog.ids_of_kind(TemplateKind::kNormal);
  const std::size_t extra = 3 + rng.uniform_index(3);
  for (std::size_t i = 0; i < extra; ++i) {
    Motif m;
    const std::size_t len = 3 + rng.uniform_index(3);
    for (std::size_t j = 0; j < len; ++j) {
      m.chain.push_back(normal_ids[rng.uniform_index(normal_ids.size())]);
    }
    m.weight = rng.uniform(0.5, 2.0);
    pool.push_back(std::move(m));
  }

  // Conflicting continuations: every cluster finishes the shared motif
  // prefixes with its own template. A per-group model learns its cluster's
  // continuation sharply; a single global model must split probability
  // across the clusters' variants — the paper's "no single model will
  // work well across VNFs".
  for (Motif& m : pool) {
    m.chain.push_back(normal_ids[rng.uniform_index(normal_ids.size())]);
  }

  // Each cluster keeps a random subset of the pool.
  std::vector<Motif> kept;
  for (Motif& m : pool) {
    if (rng.bernoulli(0.75)) kept.push_back(std::move(m));
  }
  if (kept.empty()) kept.push_back(pool.front());

  // Rare cluster-specific idioms: legitimate sequences that fire only a
  // few times a week. A per-group model sees enough of them to learn them
  // (the over-sampling loop targets exactly these); a single global model
  // has them diluted ~K x in its training budget and keeps flagging them -
  // the mechanism behind the paper's customization gain (Sec. 4.3/Fig. 7).
  for (int r = 0; r < 2; ++r) {
    Motif rare;
    const std::size_t len = 3 + rng.uniform_index(2);
    for (std::size_t j = 0; j < len; ++j) {
      rare.chain.push_back(normal_ids[rng.uniform_index(normal_ids.size())]);
    }
    rare.weight = 0.06;
    kept.push_back(std::move(rare));
  }
  return kept;
}

std::vector<double> perturb_weights(const std::vector<double>& base,
                                    double sigma, double dropout, Rng& rng) {
  std::vector<double> out(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (base[i] <= 0.0 || rng.bernoulli(dropout)) {
      out[i] = 0.0;
    } else {
      out[i] = base[i] * rng.lognormal(0.0, sigma);
    }
  }
  return out;
}

/// Post-update behaviour: new telemetry/daemon templates take a large share
/// of the emission mass, a chunk of legacy templates fades, the rest is
/// re-noised. This is what collapses month-over-month cosine similarity
/// below 0.4 at the update (§3.3).
EmissionProfile make_post_update(const TemplateCatalog& catalog,
                                 const FleetProfileConfig& config,
                                 const EmissionProfile& before, Rng& rng) {
  EmissionProfile after;
  after.weights = before.weights;
  double normal_mass = 0.0;
  for (double w : after.weights) normal_mass += w;

  // Reshuffle the legacy emission rates (see FleetProfileConfig).
  if (config.update_permute_weights) {
    std::vector<std::size_t> nonzero;
    std::vector<double> weights;
    for (std::size_t i = 0; i < after.weights.size(); ++i) {
      if (after.weights[i] > 0.0) {
        nonzero.push_back(i);
        weights.push_back(after.weights[i]);
      }
    }
    rng.shuffle(weights);
    for (std::size_t j = 0; j < nonzero.size(); ++j) {
      after.weights[nonzero[j]] = weights[j];
    }
  }
  // Fade a share of the legacy templates.
  for (double& w : after.weights) {
    if (w > 0.0 && rng.bernoulli(config.update_fade_prob)) {
      w *= config.update_fade_factor;
    }
  }
  // Bring in the post-update templates at a share of the original mass.
  const std::vector<std::int32_t> new_ids =
      catalog.ids_of_kind(TemplateKind::kPostUpdate);
  double new_base_total = 0.0;
  for (std::int32_t id : new_ids) new_base_total += catalog.at(id).base_weight;
  for (std::int32_t id : new_ids) {
    after.weights[static_cast<std::size_t>(id)] =
        config.update_new_mass * normal_mass * catalog.at(id).base_weight /
        new_base_total * rng.lognormal(0.0, 0.3);
  }

  // Motifs survive but their relative rates reshuffle, plus one new
  // telemetry sweep idiom appears.
  after.motifs = before.motifs;
  {
    std::vector<double> motif_weights;
    for (const Motif& m : after.motifs) motif_weights.push_back(m.weight);
    rng.shuffle(motif_weights);
    for (std::size_t i = 0; i < after.motifs.size(); ++i) {
      after.motifs[i].weight = motif_weights[i];
    }
  }
  if (new_ids.size() >= 3) {
    Motif telemetry;
    telemetry.chain = {new_ids[0], new_ids[new_ids.size() - 3],
                       new_ids[new_ids.size() - 1]};
    telemetry.weight = 1.5;
    after.motifs.push_back(std::move(telemetry));
  }
  return after;
}

}  // namespace

std::vector<VpeProfile> make_fleet_profiles(const TemplateCatalog& catalog,
                                            const FleetProfileConfig& config,
                                            Rng& rng) {
  NFV_CHECK(config.num_vpes > 0, "fleet needs at least one vPE");
  NFV_CHECK(config.num_clusters > 0 &&
                config.num_clusters <= config.num_vpes,
            "invalid cluster count");

  // Cluster bases.
  struct ClusterBase {
    std::vector<double> weights;
    std::vector<Motif> motifs;
  };
  std::vector<ClusterBase> clusters;
  clusters.reserve(static_cast<std::size_t>(config.num_clusters));
  for (int c = 0; c < config.num_clusters; ++c) {
    Rng cluster_rng = rng.fork(static_cast<std::uint64_t>(c) + 1000);
    ClusterBase base;
    base.weights = make_cluster_weights(catalog, config.cluster_noise,
                                        config.cluster_template_dropout,
                                        cluster_rng);
    base.motifs = make_cluster_motifs(catalog, cluster_rng);
    clusters.push_back(std::move(base));
  }

  // Choose outlier vPEs and update-affected vPEs deterministically.
  std::vector<int> vpe_order(static_cast<std::size_t>(config.num_vpes));
  for (int i = 0; i < config.num_vpes; ++i) {
    vpe_order[static_cast<std::size_t>(i)] = i;
  }
  rng.shuffle(vpe_order);
  std::vector<bool> is_outlier(static_cast<std::size_t>(config.num_vpes));
  for (int i = 0; i < std::min(config.num_outliers, config.num_vpes); ++i) {
    is_outlier[static_cast<std::size_t>(vpe_order[static_cast<std::size_t>(i)])] = true;
  }
  rng.shuffle(vpe_order);
  const int num_updated = static_cast<int>(
      std::lround(config.update_fraction * config.num_vpes));
  std::vector<bool> updated(static_cast<std::size_t>(config.num_vpes));
  for (int i = 0; i < num_updated; ++i) {
    updated[static_cast<std::size_t>(vpe_order[static_cast<std::size_t>(i)])] = true;
  }

  std::vector<VpeProfile> profiles;
  profiles.reserve(static_cast<std::size_t>(config.num_vpes));
  for (int v = 0; v < config.num_vpes; ++v) {
    Rng vpe_rng = rng.fork(static_cast<std::uint64_t>(v) + 5000);
    VpeProfile p;
    p.vpe_id = v;
    p.cluster = v % config.num_clusters;
    p.divergence = is_outlier[static_cast<std::size_t>(v)]
                       ? config.outlier_noise
                       : config.vpe_noise;
    const ClusterBase& base = clusters[static_cast<std::size_t>(p.cluster)];
    if (is_outlier[static_cast<std::size_t>(v)]) {
      // Outliers get an emission profile independent of any cluster: a
      // fresh random base with heavy dropout (unusual server role).
      p.normal.weights = make_cluster_weights(
          catalog, config.outlier_noise, config.outlier_template_dropout,
          vpe_rng);
    } else {
      p.normal.weights =
          perturb_weights(base.weights, p.divergence,
                          config.vpe_template_dropout, vpe_rng);
    }
    p.normal.motifs = base.motifs;
    // Motif taste also varies per vPE.
    for (Motif& m : p.normal.motifs) {
      m.weight *= vpe_rng.lognormal(0.0, p.divergence);
    }
    p.affected_by_update = updated[static_cast<std::size_t>(v)];
    p.post_update =
        p.affected_by_update
            ? make_post_update(catalog, config, p.normal, vpe_rng)
            : p.normal;
    // Fault-rate skew: heavy-tailed so a few vPEs dominate ticket volume
    // (Fig. 2), median stays ~1.
    p.fault_rate_scale = vpe_rng.lognormal(0.0, 0.7);
    p.median_log_gap_s = 1800.0 * vpe_rng.lognormal(0.0, 0.3);
    profiles.push_back(std::move(p));
  }
  return profiles;
}

}  // namespace nfv::simnet
