// Fault-driven syslog emission.
//
// Encodes how faults surface in VNF syslogs, calibrated to the paper's
// Fig. 8 / §5.3 findings:
//   - Circuit troubles show pre-ticket anomalies most often (74%), then
//     Software (55%), Cable (40%) and Hardware (28%).
//   - Conditioned on showing early, the anomaly leads the ticket by ≥15
//     minutes 36% (Circuit) to ~39% (Cable) of the time.
//   - ~80% of tickets show syslog anomalies within 15 minutes *after*
//     ticket generation even when no precursor appeared.
//   - Anomalies come in small clusters: ≥2 logs less than a minute apart.
// Each fault therefore emits an optional precursor burst before the ticket
// report, an error burst shortly after it, and sparse error chatter across
// the infected period.
#pragma once

#include <vector>

#include "simnet/template_catalog.h"
#include "simnet/ticketing.h"
#include "simnet/types.h"
#include "util/rng.h"

namespace nfv::simnet {

/// Timing parameters for one root-cause category. `p_precursor` values
/// are *emission* probabilities calibrated so that the detection rates
/// measured by the full LSTM pipeline land on the paper's Fig. 8 numbers
/// (0.74 / 0.40 / 0.28 / 0.55) after detector misses, anomaly
/// re-attribution to overlapping tickets and syslog-silent faults take
/// their cut.
struct CategoryTiming {
  double p_precursor = 0.5;     // P(pre-ticket anomaly burst)
  double lead_median_s = 600;   // burst lead before the ticket report
  double lead_sigma = 1.1;
  double p_post_burst = 0.85;   // P(error burst shortly after report)
  /// Probability the fault is *silent at the VNF layer*: the ticket still
  /// fires (SNMP/KPI monitoring sees it) but no syslog trace appears —
  /// the reduced lower-layer visibility the paper's premise rests on.
  /// Physical-layer causes (cable, hardware) are silent most often.
  double p_silent = 0.1;
};

struct AnomalyEmitterConfig {
  CategoryTiming circuit{0.98, 607.0, 1.1, 0.85, 0.08};
  CategoryTiming cable{0.70, 662.0, 1.1, 0.85, 0.25};
  CategoryTiming hardware{0.46, 643.0, 1.1, 0.85, 0.30};
  CategoryTiming software{0.98, 505.0, 1.1, 0.85, 0.10};
  /// Burst shape: 2–5 logs spaced ~20 s apart (paper: ≥2 anomalies, <1 min
  /// apart on average).
  std::size_t burst_min = 2;
  std::size_t burst_max = 5;
  double burst_gap_mean_s = 20.0;
  /// Post-report error burst lag: lognormal median seconds.
  double post_lag_median_s = 180.0;
  double post_lag_sigma = 0.8;
  /// Mean gap of error chatter across the infected period, seconds. The
  /// chatter itself comes in mini-bursts (see burst_* above) so that
  /// follow-up (duplicate) tickets cut during the infected period also
  /// have clusterable anomalies nearby.
  double infected_gap_mean_s = 1500.0;
  /// Probability a (non-silent) fault produces infected-period chatter.
  double p_infected_chatter = 0.8;
  /// Duplicate tickets are triggered by recurring symptoms: probability of
  /// an error burst shortly after (and, less often, shortly before) each
  /// duplicate ticket's report time. Silent faults stay silent for their
  /// duplicates too.
  double p_duplicate_post_burst = 0.7;
  double p_duplicate_pre_burst = 0.3;
  /// Near-miss conditions (§5.3 scenario 4, "coincidental"): precursor
  /// bursts from transient troubles that self-resolve without a ticket —
  /// the irreducible false-alarm source. Mean events per vPE per day.
  double near_miss_rate_per_day = 0.07;

  const CategoryTiming& timing(TicketCategory category) const;
};

/// Emit all fault-driven logs for the fleet. `tickets` must be the output
/// of run_ticketing over the same schedule (primary tickets carry the
/// report/repair times the bursts are anchored to). Records are marked
/// `anomalous = true`; output is unsorted (the fleet simulator merges).
std::vector<RawLogRecord> emit_fault_logs(
    const std::vector<FaultEvent>& faults, const std::vector<Ticket>& tickets,
    const TemplateCatalog& catalog, const AnomalyEmitterConfig& config,
    nfv::util::Rng& rng);

/// Emit the fleet's near-miss bursts (ticket-less transient troubles) over
/// [epoch, horizon). Output is unsorted.
std::vector<RawLogRecord> emit_near_miss_logs(
    int num_vpes, nfv::util::SimTime horizon, const TemplateCatalog& catalog,
    const AnomalyEmitterConfig& config, nfv::util::Rng& rng);

}  // namespace nfv::simnet
