#include "simnet/types.h"

namespace nfv::simnet {

const char* to_string(TicketCategory category) {
  switch (category) {
    case TicketCategory::kMaintenance:
      return "Maintenance";
    case TicketCategory::kCircuit:
      return "Circuit";
    case TicketCategory::kCable:
      return "Cable";
    case TicketCategory::kHardware:
      return "Hardware";
    case TicketCategory::kSoftware:
      return "Software";
    case TicketCategory::kDuplicate:
      return "Duplicate";
  }
  return "Unknown";
}

bool is_primary(TicketCategory category) {
  return category != TicketCategory::kDuplicate &&
         category != TicketCategory::kMaintenance;
}

}  // namespace nfv::simnet
