#include "simnet/syslog_process.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nfv::simnet {

using nfv::util::DiscreteSampler;
using nfv::util::Duration;
using nfv::util::Rng;
using nfv::util::SimTime;

namespace {

DiscreteSampler make_motif_sampler(const EmissionProfile& profile) {
  if (profile.motifs.empty()) return DiscreteSampler();
  std::vector<double> weights;
  weights.reserve(profile.motifs.size());
  for (const Motif& m : profile.motifs) weights.push_back(m.weight);
  return DiscreteSampler(weights);
}

}  // namespace

SyslogProcess::SyslogProcess(const TemplateCatalog* catalog,
                             const VpeProfile* profile, SimTime update_time,
                             const SyslogProcessConfig& config, Rng rng)
    : catalog_(catalog),
      profile_(profile),
      update_time_(update_time),
      config_(config),
      rng_(rng),
      normal_sampler_(profile->normal.weights),
      post_sampler_(profile->post_update.weights),
      normal_motif_sampler_(make_motif_sampler(profile->normal)),
      post_motif_sampler_(make_motif_sampler(profile->post_update)) {
  NFV_CHECK(catalog != nullptr && profile != nullptr,
            "SyslogProcess requires catalog and profile");
}

const EmissionProfile& SyslogProcess::profile_at(SimTime t) const {
  return t >= update_time_ ? profile_->post_update : profile_->normal;
}

void SyslogProcess::emit(std::vector<RawLogRecord>& out, SimTime t,
                         std::int32_t template_id) {
  RawLogRecord rec;
  rec.time = t;
  rec.vpe = profile_->vpe_id;
  rec.true_template = template_id;
  rec.text = catalog_->render(template_id, rng_);
  rec.anomalous = false;
  out.push_back(std::move(rec));
}

std::vector<RawLogRecord> SyslogProcess::generate(
    SimTime begin, SimTime end, std::span<const MaintenanceWindow> windows) {
  NFV_CHECK(begin < end, "SyslogProcess::generate empty interval");
  std::vector<RawLogRecord> out;
  const double median_gap =
      profile_->median_log_gap_s * config_.gap_scale;
  const double mu_gap = std::log(median_gap);

  // Background + motif stream.
  SimTime t = begin + Duration::of_seconds(static_cast<std::int64_t>(
                          rng_.exponential(median_gap)));
  while (t < end) {
    const EmissionProfile& era = profile_at(t);
    const bool post = t >= update_time_;
    const DiscreteSampler& background =
        post ? post_sampler_ : normal_sampler_;
    const DiscreteSampler& motifs =
        post ? post_motif_sampler_ : normal_motif_sampler_;

    if (!motifs.empty() && rng_.bernoulli(config_.motif_probability)) {
      const Motif& motif = era.motifs[motifs.sample(rng_)];
      SimTime mt = t;
      for (std::int32_t id : motif.chain) {
        if (mt >= end) break;
        // The era can flip mid-motif (update boot); templates keep flowing.
        emit(out, mt, id);
        mt = mt + Duration::of_seconds(std::max<std::int64_t>(
                      1, static_cast<std::int64_t>(
                             rng_.exponential(config_.motif_gap_mean_s))));
      }
      t = mt;
    } else {
      emit(out, t, static_cast<std::int32_t>(background.sample(rng_)));
    }
    t = t + Duration::of_seconds(std::max<std::int64_t>(
                1, static_cast<std::int64_t>(
                       rng_.lognormal(mu_gap, config_.gap_sigma))));
  }

  // Rare benign bursts: a Poisson process of short storms drawn from the
  // kBenignRare templates. They are normal operations (anomalous = false)
  // but rare enough that a sequence model will flag them — the realistic
  // false-alarm floor.
  if (config_.benign_burst_rate_per_day > 0.0) {
    const std::vector<std::int32_t> rare_ids =
        catalog_->ids_of_kind(TemplateKind::kBenignRare);
    if (!rare_ids.empty()) {
      const double mean_gap_s = 86400.0 / config_.benign_burst_rate_per_day;
      SimTime bt = begin + Duration::of_seconds(static_cast<std::int64_t>(
                               rng_.exponential(mean_gap_s)));
      while (bt < end) {
        const std::size_t count =
            config_.benign_burst_min +
            rng_.uniform_index(config_.benign_burst_max -
                               config_.benign_burst_min + 1);
        // One storm typically repeats a single rare template.
        const std::int32_t id = rare_ids[rng_.uniform_index(rare_ids.size())];
        SimTime lt = bt;
        for (std::size_t i = 0; i < count && lt < end; ++i) {
          emit(out, lt, id);
          lt = lt + Duration::of_seconds(std::max<std::int64_t>(
                        1, static_cast<std::int64_t>(rng_.exponential(
                               config_.benign_burst_gap_mean_s))));
        }
        bt = bt + Duration::of_seconds(static_cast<std::int64_t>(
                      rng_.exponential(mean_gap_s)));
      }
    }
  }

  // Maintenance chatter inside windows.
  const std::vector<std::int32_t> maint_ids =
      catalog_->ids_of_kind(TemplateKind::kMaintenance);
  for (const MaintenanceWindow& window : windows) {
    NFV_CHECK(window.vpe == profile_->vpe_id,
              "maintenance window for wrong vPE");
    if (window.end() <= begin || window.start >= end) continue;
    SimTime mt = std::max(window.start, begin);
    // Opening line, then a random walk over maintenance templates, closing
    // with MAINT_END (the last id in catalog order).
    emit(out, mt, maint_ids.front());
    mt = mt + Duration::of_seconds(static_cast<std::int64_t>(
                  rng_.exponential(config_.maintenance_gap_mean_s)));
    const SimTime stop = std::min(window.end(), end);
    while (mt < stop) {
      const std::size_t pick = 1 + rng_.uniform_index(maint_ids.size() - 2);
      emit(out, mt, maint_ids[pick]);
      mt = mt + Duration::of_seconds(std::max<std::int64_t>(
                    1, static_cast<std::int64_t>(rng_.exponential(
                           config_.maintenance_gap_mean_s))));
    }
    if (stop > window.start && stop <= end) {
      emit(out, stop - Duration::of_seconds(1), maint_ids.back());
    }
  }

  std::sort(out.begin(), out.end(),
            [](const RawLogRecord& a, const RawLogRecord& b) {
              return a.time < b.time;
            });
  return out;
}

}  // namespace nfv::simnet
