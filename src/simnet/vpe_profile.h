// Per-vPE behavioural profiles.
//
// §3.3 of the paper observes that syslog distributions vary across vPEs
// (server roles, configurations, traffic), that the variation has group
// structure (4 clusters suffice for customization), and that a software
// update shifts the distribution sharply. Profiles encode exactly those
// three effects: a cluster-level base distribution and motif set, per-vPE
// perturbation (with a handful of deliberate outliers), and a distinct
// post-update distribution for the vPEs the upgrade touches.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/template_catalog.h"
#include "util/rng.h"

namespace nfv::simnet {

/// A short chain of templates that tends to appear in order (a "protocol
/// conversation", e.g. commit → progress → completed). Motifs give the log
/// stream the sequential structure the LSTM exploits.
struct Motif {
  std::vector<std::int32_t> chain;
  double weight = 1.0;
};

/// The template-emission behaviour of one vPE in one era (pre/post update).
struct EmissionProfile {
  /// Relative emission weight per catalog template id (0 = never).
  std::vector<double> weights;
  /// Motifs started from the background state.
  std::vector<Motif> motifs;
};

struct VpeProfile {
  std::int32_t vpe_id = -1;
  int cluster = 0;
  EmissionProfile normal;        // steady-state behaviour
  EmissionProfile post_update;   // behaviour after the software update
  bool affected_by_update = false;
  /// Per-vPE fault-rate multiplier (drives the skew of Fig. 2).
  double fault_rate_scale = 1.0;
  /// Divergence of this vPE's distribution from its cluster base; a few
  /// outlier vPEs get large values (drives the Fig. 3 spread).
  double divergence = 0.25;
  /// Median inter-arrival of background logs, seconds.
  double median_log_gap_s = 1800.0;
};

struct FleetProfileConfig {
  int num_vpes = 38;
  int num_clusters = 4;
  /// How many vPEs are distribution outliers (paper: 5 with cos-sim < 0.5).
  int num_outliers = 5;
  /// Fraction of vPEs the software update touches.
  double update_fraction = 0.6;
  /// Lognormal sigma of cluster-level template-weight noise.
  double cluster_noise = 1.3;
  /// Lognormal sigma of per-vPE weight noise for ordinary vPEs.
  double vpe_noise = 0.35;
  /// Lognormal sigma for outlier vPEs.
  double outlier_noise = 2.5;
  /// Structural diversity: probability a cluster never emits a given
  /// normal template (role differences), probability an individual vPE
  /// additionally drops one (configuration differences), and the dropout
  /// applied to outlier vPEs, whose emission profile is generated
  /// independently of any cluster.
  double cluster_template_dropout = 0.2;
  double vpe_template_dropout = 0.1;
  double outlier_template_dropout = 0.5;
  /// Post-update shift: share of total emission mass taken by the new
  /// (kPostUpdate) templates, probability a legacy template fades, and the
  /// factor faded templates keep.
  double update_new_mass = 0.3;
  double update_fade_prob = 0.5;
  double update_fade_factor = 0.15;
  /// Additionally permute the legacy templates' emission weights at the
  /// update: message *rates* get reshuffled wholesale (new software logs
  /// different things at different frequencies), which is what collapses
  /// month-over-month cosine similarity below 0.4 (§3.3) without flooding
  /// the stream with unknown templates.
  bool update_permute_weights = true;
};

/// Build the fleet's profiles deterministically from `rng`.
std::vector<VpeProfile> make_fleet_profiles(const TemplateCatalog& catalog,
                                            const FleetProfileConfig& config,
                                            nfv::util::Rng& rng);

}  // namespace nfv::simnet
