// Core domain types of the simulated NFV deployment: trouble tickets with
// the paper's six root-cause categories, hidden fault events (the ground
// truth the ticketing system imperfectly observes), and raw syslog records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace nfv::simnet {

/// Trouble-ticket root causes (§2 "Network Trouble Tickets").
enum class TicketCategory : std::uint8_t {
  kMaintenance = 0,  // expected or scheduled network actions
  kCircuit,          // connection between two devices is down
  kCable,            // cable disconnection (environment/human)
  kHardware,         // card / chassis component failures
  kSoftware,         // software issues
  kDuplicate,        // follow-ups on unresolved troubles
};

inline constexpr std::size_t kTicketCategoryCount = 6;

const char* to_string(TicketCategory category);

/// Categories that are *not* duplicates of another ticket.
bool is_primary(TicketCategory category);

/// A network fault as it actually happened — the simulator's hidden ground
/// truth. The monitoring stack observes faults only through syslog and
/// derives tickets with delay.
struct FaultEvent {
  std::int64_t fault_id = -1;
  std::int32_t vpe = -1;
  TicketCategory category = TicketCategory::kCircuit;
  nfv::util::SimTime onset;         // first physical symptom
  nfv::util::SimTime cleared;       // symptom end (repair finished)
  bool fleet_wide = false;          // core-router event hitting many vPEs
};

/// A trouble ticket as emitted by the monitoring/ticketing pipeline.
struct Ticket {
  std::int64_t ticket_id = -1;
  std::int64_t fault_id = -1;       // -1 for maintenance windows
  std::int32_t vpe = -1;
  TicketCategory category = TicketCategory::kCircuit;
  nfv::util::SimTime report;        // ticket report time
  nfv::util::SimTime repair_finish; // time the ticket is marked resolved
};

/// One raw syslog line from a vPE. `true_template` and `anomalous` are
/// simulator ground truth used only for validation — the analysis pipeline
/// must work from `text` alone.
struct RawLogRecord {
  nfv::util::SimTime time;
  std::int32_t vpe = -1;
  std::string text;
  std::int32_t true_template = -1;
  bool anomalous = false;           // emitted by a fault process
};

}  // namespace nfv::simnet
