// The monitoring/ticketing pipeline.
//
// Trouble tickets are *delayed, imperfect* observations of faults (§2):
// monitoring signals pass through pattern matching, correlation and
// verification stages before a ticket is cut, so the report time trails the
// first symptom. Unresolved troubles spawn bursts of duplicate tickets, and
// pre-scheduled maintenance windows produce their own (predictable) tickets.
#pragma once

#include <vector>

#include "simnet/fault_injector.h"
#include "simnet/types.h"
#include "util/rng.h"

namespace nfv::simnet {

struct TicketingConfig {
  /// Report delay (report − onset): lognormal median seconds and sigma.
  /// Represents the verification/correlation latency of the ticket flow.
  double report_delay_median_s = 300.0;
  double report_delay_sigma = 1.0;
  /// Repair duration (repair_finish − report): lognormal median hours.
  double repair_median_h = 4.0;
  double repair_sigma = 1.0;
  /// Probability that a primary fault spawns duplicate tickets, and the
  /// Poisson mean of how many (≥1 when spawned). Duplicates arrive in
  /// bursts (§3.2).
  double p_duplicates = 0.25;
  double duplicate_count_mean = 1.0;
  /// Gap between duplicate tickets: lognormal median hours.
  double duplicate_gap_median_h = 2.0;
  double duplicate_gap_sigma = 0.8;
};

struct TicketingResult {
  std::vector<Ticket> tickets;  // report-time sorted, ids assigned
};

/// Run the pipeline: derives one ticket per fault (plus duplicates and
/// maintenance tickets) and writes each fault's `cleared` time back into
/// `schedule.faults`. Duplicate tickets reference the originating fault.
TicketingResult run_ticketing(FaultSchedule& schedule,
                              const TicketingConfig& config,
                              nfv::util::Rng& rng);

}  // namespace nfv::simnet
