// Fleet simulator: orchestrates everything into an 18-month trace.
//
// This is the stand-in for the paper's proprietary dataset — 38 vPEs on a
// tier-1 ISP backbone observed for 18 months. run() produces per-vPE raw
// syslog streams, the trouble-ticket feed, the hidden fault ground truth,
// and each vPE's software-update time (operations know their own rollout
// schedule, so exposing it to the adaptation logic is faithful).
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/anomaly_emitter.h"
#include "simnet/fault_injector.h"
#include "simnet/syslog_process.h"
#include "simnet/template_catalog.h"
#include "simnet/ticketing.h"
#include "simnet/types.h"
#include "simnet/vpe_profile.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace nfv::simnet {

struct FleetConfig {
  std::uint64_t seed = 42;
  int months = 18;
  FleetProfileConfig profiles;
  FaultInjectorConfig faults;
  TicketingConfig ticketing;
  AnomalyEmitterConfig anomalies;
  SyslogProcessConfig syslog;
  /// Month (0-based) in which the software-update rollout begins; the
  /// paper's update lands "between late 2017 and early 2018" ≈ month 13 of
  /// an Oct'16 start. Set < 0 to disable the update entirely.
  int update_month = 13;
  /// Rollout stagger across affected vPEs, days.
  double update_stagger_days = 21.0;
};

/// A value that compares after every in-trace time (for "never updated").
nfv::util::SimTime never();

struct FleetTrace {
  FleetConfig config;
  TemplateCatalog catalog;
  std::vector<VpeProfile> profiles;
  std::vector<std::vector<RawLogRecord>> logs_by_vpe;  // time-sorted each
  std::vector<Ticket> tickets;                         // report-sorted
  std::vector<FaultEvent> faults;                      // onset-sorted
  std::vector<MaintenanceWindow> maintenance;
  std::vector<nfv::util::SimTime> update_time_by_vpe;  // never() if none
  nfv::util::SimTime horizon;

  std::size_t total_log_count() const;
  int num_vpes() const { return static_cast<int>(logs_by_vpe.size()); }
};

/// Run the full simulation. Deterministic in `config.seed`.
FleetTrace simulate_fleet(const FleetConfig& config);

/// A scaled-down config (fewer vPEs, fewer months, sparser logs) for unit
/// tests and quick experiments.
FleetConfig small_fleet_config(std::uint64_t seed = 42);

}  // namespace nfv::simnet
