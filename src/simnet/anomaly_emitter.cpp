#include "simnet/anomaly_emitter.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"

namespace nfv::simnet {

using nfv::util::Duration;
using nfv::util::Rng;
using nfv::util::SimTime;

const CategoryTiming& AnomalyEmitterConfig::timing(
    TicketCategory category) const {
  switch (category) {
    case TicketCategory::kCircuit:
      return circuit;
    case TicketCategory::kCable:
      return cable;
    case TicketCategory::kHardware:
      return hardware;
    case TicketCategory::kSoftware:
      return software;
    default:
      return circuit;  // duplicates/maintenance never reach here
  }
}

namespace {

void emit_burst(std::vector<RawLogRecord>& out, SimTime start,
                std::int32_t vpe, const std::vector<std::int32_t>& pool,
                std::size_t burst_min, std::size_t burst_max,
                double gap_mean_s, const TemplateCatalog& catalog, Rng& rng) {
  NFV_CHECK(!pool.empty(), "anomaly burst with empty template pool");
  const std::size_t count =
      burst_min + rng.uniform_index(burst_max - burst_min + 1);
  SimTime t = start;
  for (std::size_t i = 0; i < count; ++i) {
    RawLogRecord rec;
    rec.time = t;
    rec.vpe = vpe;
    rec.true_template = pool[rng.uniform_index(pool.size())];
    rec.text = catalog.render(rec.true_template, rng);
    rec.anomalous = true;
    out.push_back(std::move(rec));
    t = t + Duration::of_seconds(std::max<std::int64_t>(
                1, static_cast<std::int64_t>(rng.exponential(gap_mean_s))));
  }
}

}  // namespace

std::vector<RawLogRecord> emit_fault_logs(
    const std::vector<FaultEvent>& faults, const std::vector<Ticket>& tickets,
    const TemplateCatalog& catalog, const AnomalyEmitterConfig& config,
    Rng& rng) {
  // Index the primary ticket of each fault.
  std::unordered_map<std::int64_t, const Ticket*> primary_by_fault;
  for (const Ticket& ticket : tickets) {
    if (ticket.fault_id >= 0 &&
        ticket.category != TicketCategory::kDuplicate) {
      primary_by_fault.emplace(ticket.fault_id, &ticket);
    }
  }

  std::vector<RawLogRecord> out;
  std::unordered_map<std::int64_t, bool> silent_fault;
  for (const FaultEvent& fault : faults) {
    const auto it = primary_by_fault.find(fault.fault_id);
    NFV_CHECK(it != primary_by_fault.end(),
              "fault " << fault.fault_id << " has no primary ticket");
    const Ticket& ticket = *it->second;
    const CategoryTiming& timing = config.timing(fault.category);
    Rng fault_rng = rng.fork(static_cast<std::uint64_t>(fault.fault_id) + 7);

    // Syslog-silent fault: the ticket exists, the VNF layer saw nothing.
    if (fault_rng.bernoulli(timing.p_silent)) {
      silent_fault[fault.fault_id] = true;
      continue;
    }

    const std::vector<std::int32_t> precursors =
        catalog.fault_ids(TemplateKind::kPrecursor, fault.category);
    const std::vector<std::int32_t> errors =
        catalog.fault_ids(TemplateKind::kError, fault.category);

    // Pre-ticket precursor burst.
    if (fault_rng.bernoulli(timing.p_precursor)) {
      const auto lead = static_cast<std::int64_t>(fault_rng.lognormal(
          std::log(timing.lead_median_s), timing.lead_sigma));
      SimTime burst_start =
          ticket.report - Duration::of_seconds(std::max<std::int64_t>(
                              lead, 60));
      // Never before the physical symptom could plausibly exist.
      burst_start = std::max(burst_start,
                             fault.onset - Duration::of_minutes(30));
      if (burst_start.seconds > 0) {
        emit_burst(out, burst_start, fault.vpe, precursors, config.burst_min,
                   config.burst_max, config.burst_gap_mean_s, catalog,
                   fault_rng);
      }
    }

    // Post-report error burst.
    if (fault_rng.bernoulli(timing.p_post_burst)) {
      const auto lag = static_cast<std::int64_t>(fault_rng.lognormal(
          std::log(config.post_lag_median_s), config.post_lag_sigma));
      emit_burst(out, ticket.report + Duration::of_seconds(std::max<std::int64_t>(lag, 10)),
                 fault.vpe, errors, config.burst_min, config.burst_max,
                 config.burst_gap_mean_s, catalog, fault_rng);
    }

    // Error chatter across the infected period, in mini-bursts so that
    // anything cut during the trouble (duplicate tickets in particular)
    // has clusterable anomalies nearby.
    SimTime t = ticket.report + Duration::of_seconds(static_cast<std::int64_t>(
                                    fault_rng.exponential(
                                        config.infected_gap_mean_s)));
    if (!fault_rng.bernoulli(config.p_infected_chatter)) {
      t = ticket.repair_finish;  // quiet infected period
    }
    while (t < ticket.repair_finish) {
      emit_burst(out, t, fault.vpe, errors, config.burst_min,
                 config.burst_max, config.burst_gap_mean_s, catalog,
                 fault_rng);
      t = t + Duration::of_seconds(std::max<std::int64_t>(
                  1, static_cast<std::int64_t>(fault_rng.exponential(
                         config.infected_gap_mean_s))));
    }
  }

  // Duplicate tickets: the recurrence that triggers each follow-up ticket
  // shows up as an error burst around its report time.
  for (const Ticket& ticket : tickets) {
    if (ticket.category != TicketCategory::kDuplicate) continue;
    Rng dup_rng = rng.fork(static_cast<std::uint64_t>(ticket.ticket_id) + 13);
    const FaultEvent* fault = nullptr;
    for (const FaultEvent& candidate : faults) {
      if (candidate.fault_id == ticket.fault_id) {
        fault = &candidate;
        break;
      }
    }
    if (!fault) continue;
    if (silent_fault[fault->fault_id]) continue;
    const std::vector<std::int32_t> errors =
        catalog.fault_ids(TemplateKind::kError, fault->category);
    if (dup_rng.bernoulli(config.p_duplicate_post_burst)) {
      emit_burst(out,
                 ticket.report + Duration::of_seconds(
                                     dup_rng.uniform_int(30, 480)),
                 ticket.vpe, errors, config.burst_min, config.burst_max,
                 config.burst_gap_mean_s, catalog, dup_rng);
    }
    if (dup_rng.bernoulli(config.p_duplicate_pre_burst)) {
      emit_burst(out,
                 ticket.report - Duration::of_seconds(
                                     dup_rng.uniform_int(30, 300)),
                 ticket.vpe, errors, config.burst_min, config.burst_max,
                 config.burst_gap_mean_s, catalog, dup_rng);
    }
  }
  return out;
}

std::vector<RawLogRecord> emit_near_miss_logs(
    int num_vpes, SimTime horizon, const TemplateCatalog& catalog,
    const AnomalyEmitterConfig& config, Rng& rng) {
  std::vector<RawLogRecord> out;
  if (config.near_miss_rate_per_day <= 0.0) return out;
  const TicketCategory categories[4] = {
      TicketCategory::kCircuit, TicketCategory::kCable,
      TicketCategory::kHardware, TicketCategory::kSoftware};
  const double mean_gap_s = 86400.0 / config.near_miss_rate_per_day;
  for (int v = 0; v < num_vpes; ++v) {
    Rng vpe_rng = rng.fork(static_cast<std::uint64_t>(v) + 4242);
    SimTime t = SimTime{static_cast<std::int64_t>(
        vpe_rng.exponential(mean_gap_s))};
    while (t < horizon) {
      const TicketCategory category =
          categories[vpe_rng.uniform_index(4)];
      // Near-misses repeat each category's single "noisy" symptom (the
      // first precursor in catalog order). Real fault bursts draw from the
      // whole precursor pool, so they keep reliable rare templates that
      // the detector never sees in normal training data — otherwise
      // ticket-less occurrences would teach the model that *every*
      // precursor is normal and kill pre-ticket detection entirely.
      const std::vector<std::int32_t> precursors =
          catalog.fault_ids(TemplateKind::kPrecursor, category);
      const std::vector<std::int32_t> noisy{precursors.front()};
      emit_burst(out, t, v, noisy, config.burst_min, config.burst_max,
                 config.burst_gap_mean_s, catalog, vpe_rng);
      t = t + Duration::of_seconds(static_cast<std::int64_t>(
                  vpe_rng.exponential(mean_gap_s)));
    }
  }
  return out;
}

}  // namespace nfv::simnet
