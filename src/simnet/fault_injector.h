// Fault scheduling for the simulated fleet.
//
// Primary faults per vPE form a heavy-tailed renewal process calibrated to
// the paper's Fig. 1(b): non-duplicated tickets are never closer than 40
// minutes, ~80% of gaps exceed 10 hours and ~25% exceed 1000 hours. A small
// number of fleet-wide core-router events hit many vPEs at once (Fig. 2's
// vertical bars). Maintenance windows are pre-scheduled per vPE and account
// for the dominant share of tickets (Fig. 1(a)).
#pragma once

#include <vector>

#include "simnet/syslog_process.h"
#include "simnet/types.h"
#include "simnet/vpe_profile.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace nfv::simnet {

struct FaultInjectorConfig {
  /// Median gap between primary faults on a rate-1 vPE, hours.
  double fault_median_gap_h = 640.0;
  /// Lognormal sigma of the fault inter-arrival (heavy tail of Fig. 1(b)).
  double fault_gap_sigma = 2.2;
  /// Minimum spacing between primary faults on one vPE (paper: >40 min).
  nfv::util::Duration min_fault_gap = nfv::util::Duration::of_hours(2);
  /// Probability that a fault triggers a *secondary* fault (a related
  /// trouble of another category) within a few hours — the short-gap mass
  /// in Fig. 1(b)'s inter-arrival CDF.
  double p_secondary = 0.22;
  double secondary_lag_min_h = 2.0;
  double secondary_lag_max_h = 8.0;
  /// Category mix of primary faults: Circuit, Cable, Hardware, Software.
  double p_circuit = 0.38;
  double p_cable = 0.18;
  double p_hardware = 0.18;
  double p_software = 0.26;
  /// Margin kept between any two ticket-producing events on one vPE
  /// (report-time jitter must not compress non-duplicate ticket gaps
  /// below the paper's observed 40-minute minimum).
  nfv::util::Duration collision_margin = nfv::util::Duration::of_hours(3);
  /// Fleet-wide core-router events over the whole study window.
  int fleet_wide_events = 3;
  /// Fraction of vPEs each fleet-wide event disrupts.
  double fleet_wide_fraction = 0.4;
  /// Maintenance is organized as fleet-wide *campaigns* (software rollout
  /// waves, scheduled change windows): campaigns arrive with the given
  /// median gap, each covering a fraction of the fleet with windows spread
  /// over a few days. This keeps maintenance the dominant ticket category
  /// in aggregate (Fig. 1(a)) while leaving the long quiet stretches per
  /// vPE that Fig. 1(b)'s heavy tail requires.
  double campaign_gap_median_d = 55.0;
  double campaign_gap_sigma = 0.25;
  double campaign_coverage = 0.7;
  double campaign_spread_d = 4.0;
  /// Maintenance window length bounds, hours.
  double maintenance_min_h = 1.0;
  double maintenance_max_h = 4.0;
};

struct FaultSchedule {
  std::vector<FaultEvent> faults;              // onset-sorted, ids assigned
  std::vector<MaintenanceWindow> maintenance;  // start-sorted
};

/// Generate the fault + maintenance schedule for the whole fleet over
/// [epoch, horizon). FaultEvent::cleared is left at onset; the ticketing
/// pipeline fills it once repair durations are drawn.
FaultSchedule inject_faults(const std::vector<VpeProfile>& profiles,
                            nfv::util::SimTime horizon,
                            const FaultInjectorConfig& config,
                            nfv::util::Rng& rng);

}  // namespace nfv::simnet
