// Catalog of syslog message templates the simulated vPEs emit.
//
// The catalog plays the role of the (proprietary) router syslog universe in
// the paper's dataset: free-form messages with variable fields (interfaces,
// peers, counters). Each template carries simulation metadata — how common
// it is in normal operation, whether it is a fault precursor or an
// infected-period error and for which ticket root cause, and whether it
// only appears after the fleet's software update.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/types.h"
#include "util/rng.h"

namespace nfv::simnet {

enum class TemplateKind : std::uint8_t {
  kNormal = 0,   // steady-state operational chatter
  kMaintenance,  // emitted during scheduled maintenance windows
  kPrecursor,    // anomalous pattern preceding a fault's ticket
  kError,        // emitted during a fault's infected period
  kPostUpdate,   // exists only after the system software update
  kBenignRare,   // rare benign bursts (audit storms, route refreshes) —
                 // legitimate operations that look like anomalies and are
                 // the main source of detector false alarms
};

/// One message template. `pattern` contains placeholders that the renderer
/// fills with plausible values: {if} interface, {ip} IPv4 address, {num}
/// small integer, {big} large counter, {hex} hex id, {as} AS number,
/// {pct} percentage, {fpc} slot number, {peer} peer router name.
struct LogTemplate {
  std::int32_t id = -1;
  std::string name;       // stable mnemonic, e.g. "BGP_NEIGHBOR_DOWN"
  std::string pattern;
  TemplateKind kind = TemplateKind::kNormal;
  /// Root cause this template signals (precursor/error kinds only).
  TicketCategory category = TicketCategory::kCircuit;
  /// Relative frequency in normal operation (normal/maintenance kinds).
  double base_weight = 1.0;
};

/// Immutable catalog shared by all vPEs.
class TemplateCatalog {
 public:
  /// Build the standard catalog (~150 templates).
  static TemplateCatalog standard();

  const std::vector<LogTemplate>& all() const { return templates_; }
  const LogTemplate& at(std::int32_t id) const;
  std::size_t size() const { return templates_.size(); }

  /// Ids of templates of a given kind (and, for fault kinds, category).
  std::vector<std::int32_t> ids_of_kind(TemplateKind kind) const;
  std::vector<std::int32_t> fault_ids(TemplateKind kind,
                                      TicketCategory category) const;

  /// Render a template's pattern with random variable fields.
  std::string render(std::int32_t id, nfv::util::Rng& rng) const;

  /// Deterministic render: the variable fields are drawn from a fresh
  /// generator seeded with (id, salt), so the same (id, salt) pair yields
  /// the same line on every call. This is what lets the fleet soak bench
  /// regenerate a multi-million-line 10k-vPE workload for its serial
  /// replay instead of holding every line in memory.
  std::string render_seeded(std::int32_t id, std::uint64_t salt) const;

 private:
  void add(std::string name, std::string pattern, TemplateKind kind,
           double base_weight = 1.0,
           TicketCategory category = TicketCategory::kCircuit);

  std::vector<LogTemplate> templates_;
};

}  // namespace nfv::simnet
