// Signature mining and operational signatures (§2 "VNF Syslog", §5.3
// "Operational findings").
//
// Shows the logproc layer standalone: raw free-form syslog lines go
// through the signature tree, which recovers message templates with
// wildcarded variable fields; then demonstrates the paper's flagship
// operational signature — a storm of "BGP UNUSABLE ASPATH" messages across
// multiple peers inside a short interval — being picked out of a log
// stream via the anomaly-cluster rule.
//
//   ./examples/signature_mining
#include <iostream>

#include "core/mapper.h"
#include "logproc/dataset.h"
#include "logproc/signature_tree.h"
#include "simnet/template_catalog.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace nfv;

  // --- Part 1: template mining on raw lines. ---
  const char* raw_lines[] = {
      "rpd[1451]: bgp_recv: received 84 updates from peer 10.4.2.17 (External AS 65201)",
      "rpd[1451]: bgp_recv: received 12 updates from peer 192.168.4.9 (External AS 65033)",
      "rpd[1451]: bgp_recv: received 7 updates from peer 10.99.3.2 (External AS 64900)",
      "mib2d[901]: SNMP_TRAP_LINK_DOWN: ifIndex 531, ifAdminStatus up(1), ifOperStatus down(2), ifName ge-0/0/17",
      "mib2d[901]: SNMP_TRAP_LINK_DOWN: ifIndex 12, ifAdminStatus up(1), ifOperStatus down(2), ifName xe-1/2/0",
      "chassisd[222]: temperature fpc2 intake 34C within range",
      "chassisd[222]: temperature fpc7 intake 41C within range",
      "sshd[8712]: accepted publickey for netops from 10.1.1.4 port 51234",
  };

  logproc::SignatureTree tree;
  std::cout << "Learning templates from " << std::size(raw_lines)
            << " raw syslog lines...\n\n";
  for (const char* line : raw_lines) tree.learn(line);

  util::Table mined({"id", "hits", "template"}, "mined signatures");
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const auto id = static_cast<std::int32_t>(i);
    mined.add_row({std::to_string(id), std::to_string(tree.match_count(id)),
                   tree.pattern(id)});
  }
  mined.print(std::cout);

  // Matching is read-only and tolerant of fresh variable fields:
  const auto id = tree.match(
      "rpd[9999]: bgp_recv: received 555 updates from peer 172.16.0.1 "
      "(External AS 65500)");
  std::cout << "\nnew line with unseen peer/counters matches template #"
            << id << "\n\n";

  // --- Part 2: the BGP UNUSABLE ASPATH storm signature. ---
  // Render a realistic stream: background chatter with a protocol-flap
  // storm in the middle (multiple peers, seconds apart), as described in
  // the paper's operational findings.
  const auto catalog = simnet::TemplateCatalog::standard();
  util::Rng rng(3);
  std::int32_t aspath_id = -1;
  std::int32_t chatter_id = -1;
  for (const auto& t : catalog.all()) {
    if (t.name == "BGP_UNUSABLE_ASPATH") aspath_id = t.id;
    if (t.name == "RPD_BGP_KEEPALIVE") chatter_id = t.id;
  }

  logproc::SignatureTree stream_tree;
  std::vector<logproc::ParsedLog> stream;
  std::int64_t t = 0;
  auto emit = [&](std::int32_t template_id, std::int64_t gap_s) {
    t += gap_s;
    stream.push_back({util::SimTime{t},
                      stream_tree.learn(catalog.render(template_id, rng))});
  };
  for (int i = 0; i < 40; ++i) emit(chatter_id, 120);
  std::cout << "Injecting a BGP UNUSABLE ASPATH storm (5 peers, seconds "
               "apart) into background chatter...\n";
  for (int i = 0; i < 5; ++i) emit(aspath_id, 15);
  for (int i = 0; i < 40; ++i) emit(chatter_id, 120);

  // Score by novelty against the normal prefix: the storm template never
  // appears in the first 40 (training) logs, so every storm line is
  // maximally surprising (a stand-in for the LSTM's low log-likelihood);
  // the ≥2-anomalies-in-2-minutes rule then turns the storm into ONE
  // warning signature instead of five separate alerts.
  const std::size_t train_prefix = 40;
  std::vector<bool> seen(stream_tree.size(), false);
  for (std::size_t i = 0; i < train_prefix; ++i) {
    seen[static_cast<std::size_t>(stream[i].template_id)] = true;
  }
  std::vector<core::ScoredEvent> events;
  for (std::size_t i = train_prefix; i < stream.size(); ++i) {
    const bool known =
        seen[static_cast<std::size_t>(stream[i].template_id)];
    events.push_back({stream[i].time, known ? 0.1 : 10.0});
  }
  core::MappingConfig mapping;
  const auto clusters = core::cluster_anomalies(events, 5.0, mapping);
  std::cout << "detected " << clusters.size()
            << " warning signature(s); storm onset at "
            << util::format_time(clusters.empty() ? util::SimTime{0}
                                                  : clusters.front())
            << "\n";
  std::cout << "\nPer the paper, this storm signature can be turned into a "
               "quick detection rule that beats\nservice-level monitoring "
               "to the incident, with minimum false positives.\n";
  return 0;
}
