// Quickstart: simulate a small vPE fleet, mine syslog templates, train the
// LSTM anomaly detector on the first month of normal logs, and see how the
// detected anomalies line up with trouble tickets in the following month.
//
//   ./examples/quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/lstm_detector.h"
#include "core/mapper.h"
#include "core/metrics.h"
#include "core/parsed_fleet.h"
#include "core/pipeline.h"
#include "simnet/fleet.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nfv;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. Simulate a small NFV deployment (6 vPEs, 4 months). Denser logs
  //    give the detector richer training data; the software-update story
  //    is demonstrated separately in examples/update_adaptation.
  simnet::FleetConfig config = simnet::small_fleet_config(seed);
  config.syslog.gap_scale = 1.5;
  config.update_month = -1;
  std::cout << "Simulating " << config.profiles.num_vpes << " vPEs for "
            << config.months << " months...\n";
  const simnet::FleetTrace trace = simnet::simulate_fleet(config);
  std::cout << "  " << trace.total_log_count() << " syslog lines, "
            << trace.tickets.size() << " tickets, " << trace.faults.size()
            << " underlying faults\n";

  // 2. Structure the raw logs with the signature tree.
  const core::ParsedFleet parsed = core::parse_fleet(trace);
  std::cout << "  signature tree learned " << parsed.vocab()
            << " templates\n\n";

  // A few mined templates:
  std::cout << "Sample mined templates:\n";
  for (std::size_t i = 0; i < parsed.tree.size() && i < 5; ++i) {
    std::cout << "  [" << i << "] "
              << parsed.tree.pattern(static_cast<std::int32_t>(i)) << "\n";
  }
  std::cout << "\n";

  // 3. Pick the vPE with the most non-maintenance tickets in months 1-3
  //    (so the demo has something to predict), train the LSTM detector on
  //    its first month (ticket vicinity excluded), then score the rest.
  std::int32_t vpe = 0;
  int best_tickets = -1;
  for (int v = 0; v < trace.num_vpes(); ++v) {
    int count = 0;
    for (const auto& t : trace.tickets) {
      if (t.vpe == v && t.category != simnet::TicketCategory::kMaintenance &&
          util::month_of(t.report) >= 1) {
        ++count;
      }
    }
    if (count > best_tickets) {
      best_tickets = count;
      vpe = v;
    }
  }
  const auto exclusion = core::ticket_exclusion_windows(trace, vpe);
  const auto train_window = logproc::slice_time(
      parsed.logs_by_vpe[static_cast<std::size_t>(vpe)],
      util::SimTime::epoch(), util::month_start(1));
  const auto train = logproc::exclude_intervals(train_window, exclusion);
  std::cout << "Training LSTM detector on " << train.size()
            << " normal logs of vPE " << vpe << "...\n";

  core::LstmDetectorConfig detector_config;
  detector_config.seed = seed;
  core::LstmDetector detector(detector_config);
  const core::LogView train_view{train};
  detector.fit({&train_view, 1}, parsed.vocab_at(1));

  const auto test = logproc::slice_time(parsed.logs_by_vpe[static_cast<std::size_t>(vpe)],
                                        util::month_start(1),
                                        trace.horizon);
  const auto events = detector.score(test, parsed.vocab());
  std::cout << "Scored " << events.size() << " events in months 1-"
            << trace.config.months - 1 << ".\n\n";

  // 4. Threshold at the 99.5th percentile of training scores, cluster, and
  //    map to tickets.
  std::vector<double> train_scores;
  for (const auto& e : detector.score(train, parsed.vocab())) {
    train_scores.push_back(e.score);
  }
  const double threshold = util::quantile(train_scores, 0.995);
  core::MappingConfig mapping_config;
  const auto clusters =
      core::cluster_anomalies(events, threshold, mapping_config);
  const auto tickets = core::tickets_in_window(
      trace, vpe, util::month_start(1), trace.horizon,
      mapping_config.predictive_period);
  const auto mapping =
      core::map_anomalies(clusters, tickets, vpe, mapping_config);
  const auto prf = core::compute_prf(mapping);

  util::Table table({"metric", "value"},
                  "vPE " + std::to_string(vpe) + ", months 1+");
  table.add_row({"anomaly clusters", std::to_string(clusters.size())});
  table.add_row({"early warnings", std::to_string(mapping.early_warnings)});
  table.add_row({"errors (infected period)", std::to_string(mapping.errors)});
  table.add_row({"false alarms", std::to_string(mapping.false_alarms)});
  table.add_row({"tickets (non-maint)", std::to_string(prf.tickets_total)});
  table.add_row({"tickets detected", std::to_string(prf.tickets_detected)});
  table.add_row({"precision", util::fmt_double(prf.precision)});
  table.add_row({"recall", util::fmt_double(prf.recall)});
  table.add_row({"F-measure", util::fmt_double(prf.f_measure)});
  table.print(std::cout);

  std::cout << "\nDetected anomalies vs tickets:\n";
  for (const auto& anomaly : mapping.anomalies) {
    const char* outcome =
        anomaly.outcome == core::AnomalyOutcome::kEarlyWarning ? "EARLY-WARN"
        : anomaly.outcome == core::AnomalyOutcome::kError      ? "ERROR     "
                                                               : "FALSE-ALRM";
    std::cout << "  " << util::format_time(anomaly.time) << "  " << outcome;
    if (anomaly.ticket_id >= 0) {
      std::cout << "  ticket #" << anomaly.ticket_id;
      if (anomaly.outcome == core::AnomalyOutcome::kEarlyWarning) {
        std::cout << "  lead " << util::format_duration(anomaly.lead);
      }
    }
    std::cout << "\n";
  }
  return 0;
}
