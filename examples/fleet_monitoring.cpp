// Fleet monitoring: the workload the paper's introduction motivates — a
// runtime predictive-analysis system watching a whole vPE fleet in
// parallel with the reactive ticketing flow.
//
// Runs the full rolling pipeline (per-group LSTM models, monthly
// incremental training, transfer-learning adaptation after the software
// update) on a mid-sized fleet and prints the monthly operating report an
// operations team would consume.
//
//   ./examples/fleet_monitoring [seed]
#include <cstdlib>
#include <iostream>

#include "core/metrics.h"
#include "core/pipeline.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nfv;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  simnet::FleetConfig config;
  config.seed = seed;
  config.months = 8;
  config.profiles.num_vpes = 12;
  config.profiles.num_clusters = 3;
  config.profiles.num_outliers = 2;
  config.syslog.gap_scale = 4.0;
  config.update_month = 5;

  std::cout << "Simulating a " << config.profiles.num_vpes << "-vPE fleet for "
            << config.months << " months (software update in month "
            << config.update_month << ")...\n";
  const auto trace = simnet::simulate_fleet(config);
  const auto parsed = core::parse_fleet(trace);
  std::cout << "  " << trace.total_log_count() << " syslog lines, "
            << trace.tickets.size() << " tickets, " << parsed.vocab()
            << " mined templates\n\n";

  core::PipelineOptions options;
  options.clustering.fixed_k = 3;
  core::LstmDetectorConfig lstm;
  lstm.max_train_windows = 2500;
  lstm.initial_epochs = 3;
  options.lstm_config = lstm;
  options.seed = seed;

  std::cout << "Running the rolling monitoring pipeline "
            << "(train month 0, then score/update monthly)...\n";
  const core::PipelineResult result =
      core::run_pipeline(trace, parsed, options);

  util::Table monthly({"month", "precision", "recall", "F", "FA/day",
                       "clusters", "note"},
                      "monthly operating report");
  for (const auto& m : result.monthly) {
    monthly.add_row({std::to_string(m.month),
                     util::fmt_double(m.prf.precision, 3),
                     util::fmt_double(m.prf.recall, 3),
                     util::fmt_double(m.prf.f_measure, 3),
                     util::fmt_double(m.false_alarms_per_day, 2),
                     std::to_string(m.anomaly_clusters),
                     m.month == config.update_month
                         ? "software update (adaptation after 1 week)"
                         : ""});
  }
  monthly.print(std::cout);

  std::cout << "\nAggregate over the evaluation span:\n"
            << "  precision " << util::fmt_double(result.aggregate.precision, 3)
            << ", recall " << util::fmt_double(result.aggregate.recall, 3)
            << ", F " << util::fmt_double(result.aggregate.f_measure, 3)
            << ", false alarms/day "
            << util::fmt_double(result.false_alarms_per_day, 2) << "\n";

  // Where do the early warnings come from?
  const auto rates = core::detection_rates_by_category(result.detections);
  util::Table warnings({"ticket type", "tickets", "warned before report",
                        "warned >=15 min early"},
                       "early-warning yield by root cause");
  for (const auto& row : rates) {
    if (row.ticket_count == 0) continue;
    warnings.add_row({simnet::to_string(row.category),
                      std::to_string(row.ticket_count),
                      util::fmt_double(row.rate[2], 2),
                      util::fmt_double(row.rate[0], 2)});
  }
  warnings.print(std::cout);
  std::cout << "\nvPE grouping used " << result.clustering.num_groups
            << " model groups.\n";
  return 0;
}
