// Real-time monitoring: the "runtime predictive analysis system running
// in parallel with existing reactive monitoring" of the paper's vision.
//
// Trains a detector on one month of a vPE's logs, then REPLAYS the next
// month line-by-line through a StreamMonitor, printing each warning the
// moment it would have fired, alongside the tickets the reactive system
// eventually cut — so you can see warnings leading tickets.
//
//   ./examples/realtime_monitor [seed]
#include <cstdlib>
#include <iostream>

#include "core/lstm_detector.h"
#include "core/parsed_fleet.h"
#include "core/streaming.h"
#include "logproc/dataset.h"
#include "simnet/fleet.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nfv;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 17;

  simnet::FleetConfig config;
  config.seed = seed;
  config.months = 3;
  config.profiles.num_vpes = 3;
  config.profiles.num_clusters = 1;
  config.profiles.num_outliers = 0;
  config.syslog.gap_scale = 2.0;
  config.update_month = -1;

  std::cout << "Simulating 3 vPEs for 3 months...\n";
  const auto trace = simnet::simulate_fleet(config);

  // Train on month 0 of vPE 0 (raw lines through a signature tree, as a
  // deployment would).
  logproc::SignatureTree tree;
  std::vector<logproc::ParsedLog> train;
  const auto& raw = trace.logs_by_vpe[0];
  for (const auto& rec : raw) {
    if (rec.time >= util::month_start(1)) break;
    train.push_back({rec.time, tree.learn(rec.text)});
  }
  const auto exclusion = core::ticket_exclusion_windows(trace, 0);
  train = logproc::exclude_intervals(train, exclusion);
  std::cout << "Training on " << train.size() << " normal lines ("
            << tree.size() << " templates)...\n";

  core::LstmDetectorConfig detector_config;
  detector_config.seed = seed;
  core::LstmDetector detector(detector_config);
  const core::LogView view{train};
  detector.fit({&view, 1}, tree.size());

  // Operating threshold: 99.5th percentile of training scores.
  std::vector<double> scores;
  for (const auto& e : detector.score(train, tree.size())) {
    scores.push_back(e.score);
  }
  const double threshold = util::quantile(scores, 0.995);
  std::cout << "Operating threshold: " << util::fmt_double(threshold, 2)
            << "\n\nReplaying month 1 live; warnings as they fire:\n\n";

  // Live replay of month 1.
  core::StreamMonitorConfig monitor_config;
  monitor_config.threshold = threshold;
  monitor_config.window = detector.config().window;
  constexpr std::size_t kMaxPrinted = 12;
  std::size_t warning_count = 0;
  core::StreamMonitor monitor(
      0, &detector, &tree, monitor_config,
      [&](const core::StreamWarning& warning) {
        ++warning_count;
        if (warning_count > kMaxPrinted) {
          if (warning_count == kMaxPrinted + 1) {
            std::cout << "  ... (further warnings elided)\n";
          }
          return;
        }
        std::cout << "  [WARNING] " << util::format_time(warning.time)
                  << "  vPE " << warning.vpe << "  peak score "
                  << util::fmt_double(warning.peak_score, 1)
                  << "  trigger template #" << warning.trigger_template
                  << ": "
                  << tree.pattern(warning.trigger_template) << "\n";
      });

  for (const auto& rec : raw) {
    if (rec.time < util::month_start(1)) continue;
    if (rec.time >= util::month_start(2)) break;
    monitor.ingest(rec.time, rec.text);
  }

  std::cout << "\n" << warning_count
            << " warning(s) raised. Tickets the reactive flow cut on vPE 0 "
               "in month 1:\n";
  for (const auto& ticket : trace.tickets) {
    if (ticket.vpe != 0) continue;
    if (ticket.report < util::month_start(1) ||
        ticket.report >= util::month_start(2)) {
      continue;
    }
    std::cout << "  [TICKET]  " << util::format_time(ticket.report) << "  "
              << simnet::to_string(ticket.category) << "  (resolved "
              << util::format_time(ticket.repair_finish) << ")\n";
  }
  std::cout << "\nCompare timestamps: warnings ahead of (or tightly "
               "trailing) a ticket are the predictive value; warnings with "
               "no ticket are the false-alarm cost.\n";
  return 0;
}
