// Surviving a software update: demonstrates §4.3's transfer learning.
//
// A model trained before a software update goes stale the moment the vPE's
// syslog distribution shifts. This example trains a teacher on pre-update
// data, then compares three strategies on post-update logs:
//   1. do nothing (keep the stale teacher),
//   2. transfer learning — copy the teacher, freeze the bottom LSTM layer,
//      fine-tune the top on ONE WEEK of post-update data,
//   3. full retrain from scratch on the same one week.
//
//   ./examples/update_adaptation [seed]
#include <cstdlib>
#include <iostream>

#include "core/lstm_detector.h"
#include "core/parsed_fleet.h"
#include "logproc/dataset.h"
#include "simnet/fleet.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace nfv;

/// Mean anomaly score of a detector on a window of (normal) logs — a stale
/// model shows an elevated score floor, i.e. a false-alarm storm.
double mean_score(const core::LstmDetector& detector,
                  std::span<const logproc::ParsedLog> logs,
                  std::size_t vocab) {
  const auto events = detector.score(logs, vocab);
  double sum = 0.0;
  for (const auto& e : events) sum += e.score;
  return events.empty() ? 0.0 : sum / static_cast<double>(events.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nfv;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  simnet::FleetConfig config;
  config.seed = seed;
  config.months = 6;
  config.profiles.num_vpes = 4;
  config.profiles.num_clusters = 1;
  config.profiles.num_outliers = 0;
  config.profiles.update_fraction = 1.0;  // everyone gets the update
  config.syslog.gap_scale = 2.0;
  config.update_month = 3;
  config.update_stagger_days = 0.5;

  std::cout << "Simulating 4 vPEs; software update lands in month "
            << config.update_month << "...\n";
  const auto trace = simnet::simulate_fleet(config);
  const auto parsed = core::parse_fleet(trace);
  std::cout << "  " << trace.total_log_count() << " logs, "
            << parsed.vocab() << " templates\n\n";

  // Teacher: trained on months [0, 3) of all vPEs.
  const auto update_at = util::month_start(config.update_month);
  std::vector<std::vector<logproc::ParsedLog>> pre_streams;
  std::vector<std::vector<logproc::ParsedLog>> week_streams;
  std::vector<std::vector<logproc::ParsedLog>> eval_streams;
  for (int v = 0; v < trace.num_vpes(); ++v) {
    const auto& logs = parsed.logs_by_vpe[static_cast<std::size_t>(v)];
    const auto exclusion = core::ticket_exclusion_windows(trace, v);
    pre_streams.push_back(logproc::exclude_intervals(
        logproc::slice_time(logs, util::SimTime::epoch(), update_at),
        exclusion));
    week_streams.push_back(logproc::exclude_intervals(
        logproc::slice_time(logs, update_at + util::Duration::of_days(1),
                            update_at + util::Duration::of_days(8)),
        exclusion));
    // Evaluation: a clean post-update month, well after the rollout.
    eval_streams.push_back(logproc::exclude_intervals(
        logproc::slice_time(logs, util::month_start(4),
                            util::month_start(5)),
        exclusion));
  }
  std::vector<core::LogView> pre_views(pre_streams.begin(),
                                       pre_streams.end());
  std::vector<core::LogView> week_views(week_streams.begin(),
                                        week_streams.end());

  core::LstmDetectorConfig detector_config;
  detector_config.seed = seed;
  detector_config.max_train_windows = 3000;
  core::LstmDetector teacher(detector_config);
  std::cout << "Training the teacher on pre-update months [0, 3)...\n";
  teacher.fit(pre_views, parsed.vocab_at(config.update_month));

  // Baseline score floor on pre-update data (what "healthy" looks like).
  double pre_floor = 0.0;
  for (const auto& s : pre_streams) {
    pre_floor += mean_score(teacher, s, parsed.vocab());
  }
  pre_floor /= static_cast<double>(pre_streams.size());

  auto eval_floor = [&](const core::LstmDetector& detector) {
    double total = 0.0;
    for (const auto& s : eval_streams) {
      total += mean_score(detector, s, parsed.vocab());
    }
    return total / static_cast<double>(eval_streams.size());
  };

  // 1. Stale teacher.
  const double stale = eval_floor(teacher);

  // 2. Transfer learning: copy + freeze bottom + fine-tune on 1 week.
  core::LstmDetector student = teacher;  // copy = teacher weights
  std::cout << "Adapting a student copy on 1 week of post-update data "
               "(bottom layers frozen)...\n";
  student.adapt(week_views, parsed.vocab());
  const double adapted = eval_floor(student);

  // 3. Full retrain on the same single week.
  core::LstmDetector from_scratch(detector_config);
  std::cout << "Retraining from scratch on the same week...\n";
  from_scratch.fit(week_views, parsed.vocab());
  const double retrained = eval_floor(from_scratch);

  util::Table table({"strategy", "mean anomaly score on post-update month",
                     "vs healthy floor"},
                    "post-update score floor (lower = fewer false alarms)");
  auto ratio = [&](double x) { return util::fmt_double(x / pre_floor, 2); };
  table.add_row({"healthy teacher on pre-update data",
                 util::fmt_double(pre_floor, 3), "1.00"});
  table.add_row({"stale teacher (no action)", util::fmt_double(stale, 3),
                 ratio(stale)});
  table.add_row({"transfer learning, 1 week (paper §4.3)",
                 util::fmt_double(adapted, 3), ratio(adapted)});
  table.add_row({"full retrain, same 1 week", util::fmt_double(retrained, 3),
                 ratio(retrained)});
  table.print(std::cout);

  std::cout << "\nThe stale model's elevated score floor is what multiplies "
               "false alarms after an update;\ntransfer learning restores "
               "the floor with one week of data by reusing the teacher's "
               "sequence structure.\n";
  return 0;
}
