// nfvpred — command-line front end for the library.
//
// Works on plain text log files, one event per line:
//     <epoch-seconds> <free-form syslog message>
// so it can be pointed at real (suitably exported) router logs, not just
// the simulator. Subcommands:
//
//   simulate --out FILE [--vpe N] [--months M] [--seed S] [--tickets FILE]
//       Generate a synthetic vPE log stream (and optionally its ticket
//       feed) in the CLI's log format.
//
//   mine --logs FILE [--max N]
//       Run signature-tree template mining and print the learned patterns.
//
//   train --logs FILE --model FILE [--window K] [--epochs E]
//       Train the LSTM detector on a (normal) log file; write a
//       checkpoint.
//
//   score --logs FILE --model FILE [--threshold-quantile Q]
//       Score a log file with a trained model and print warning
//       signatures (clusters of >=2 anomalies within 2 minutes).
//
// Exit codes: 0 ok, 1 usage error, 2 runtime failure.
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/async_ingest.h"
#include "core/lstm_detector.h"
#include "core/mapper.h"
#include "core/parsed_fleet.h"
#include "logproc/dataset.h"
#include "logproc/signature_tree.h"
#include "simnet/fleet.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace {

using namespace nfv;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::optional<std::string> get(const std::string& key) const {
    const auto it = options.find(key);
    return it == options.end() ? std::nullopt
                               : std::optional<std::string>(it->second);
  }
  std::string require(const std::string& key) const {
    const auto value = get(key);
    if (!value) {
      std::cerr << "error: missing required option --" << key << "\n";
      std::exit(1);
    }
    return *value;
  }
  long get_long(const std::string& key, long fallback) const {
    const auto value = get(key);
    return value ? std::strtol(value->c_str(), nullptr, 10) : fallback;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto value = get(key);
    return value ? std::strtod(value->c_str(), nullptr) : fallback;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) return args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::cerr << "error: expected --option, got '" << key << "'\n";
      std::exit(1);
    }
    args.options[key.substr(2)] = argv[i + 1];
  }
  return args;
}

void usage() {
  std::cerr <<
      "usage: nfvpred <command> [options]\n"
      "  simulate --out FILE [--vpe N] [--months M] [--seed S]"
      " [--tickets FILE]\n"
      "  mine     --logs FILE [--max N]\n"
      "  train    --logs FILE --model FILE [--window K] [--epochs E]\n"
      "           [--persistent-optimizer 1]  keep Adam moment state\n"
      "           across the over-sampling refinement rounds\n"
      "  score    --logs FILE --model FILE [--threshold-quantile Q]\n"
      "           [--async-ingest 1]    replay the file through the\n"
      "           asynchronous streaming ingest runtime (per-line warning\n"
      "           rule; identical warnings for any worker count)\n"
      "           [--ingest-workers N]  shard workers (default: auto)\n"
      "           [--flush-batch N]     micro-batch size (default 64)\n"
      "           [--flush-deadline US] micro-batch deadline in\n"
      "           microseconds (default 2000; 0 = immediate)\n"
      "           [--share-arena 0|1]   fleet-wide shared token arena\n"
      "           (default 1; 0 = fully private per-shard interners)\n"
      "           [--share-forest 0|1]  fleet-wide shared signature\n"
      "           forest: cross-vPE template dedup with copy-on-write\n"
      "           divergence (default 1; needs --share-arena 1; never\n"
      "           changes mined templates or warnings)\n"
      "           [--stats-json FILE]   dump the runtime observability\n"
      "           snapshot (per-shard counters, ingest-to-scored latency\n"
      "           histograms, queue gauges) as JSON after the replay\n"
      "           [--online-retrain 1]  continual learning: a background\n"
      "           trainer samples the template stream, fine-tunes a\n"
      "           shadow model (update / post-update adapt) and installs\n"
      "           it via the epoch barrier — detection never stops\n"
      "           [--retrain-interval N] retrain every N scored lines\n"
      "           (default 50000; 0 = never on its own)\n"
      "           [--retrain-samples N] per-shard recency-window sample\n"
      "           budget for each retrain round (default 2048)\n"
      "common options:\n"
      "  --threads N   worker threads for training/scoring kernels\n"
      "                (default: NFVPRED_THREADS env, else all cores;\n"
      "                 results are identical for any thread count)\n"
      "  --score-batch N  max windows per fused inference batch\n"
      "                (train/score; default 1024, min 1; scores are\n"
      "                 identical for any batch size)\n"
      "  --quantize 1  int8 quantized scoring (train: calibrate the int8\n"
      "                sidecar after training and store it in the\n"
      "                checkpoint; score: calibrate after load). Training\n"
      "                stays fp32; see README \"Quantized scoring\"\n"
      "log file format: '<epoch-seconds> <syslog message>' per line\n";
}

struct RawLine {
  util::SimTime time;
  std::string text;
};

std::vector<RawLine> read_log_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << "\n";
    std::exit(2);
  }
  std::vector<RawLine> lines;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto space = trimmed.find(' ');
    if (space == std::string_view::npos) {
      std::cerr << "warning: line " << lineno << " has no message; skipped\n";
      continue;
    }
    char* end = nullptr;
    const long long ts =
        std::strtoll(std::string(trimmed.substr(0, space)).c_str(), &end, 10);
    lines.push_back(
        {util::SimTime{ts}, std::string(util::trim(trimmed.substr(space)))});
  }
  if (lines.empty()) {
    std::cerr << "error: no usable lines in " << path << "\n";
    std::exit(2);
  }
  return lines;
}

int cmd_simulate(const Args& args) {
  simnet::FleetConfig config;
  config.profiles.num_vpes = static_cast<int>(args.get_long("vpe", 1));
  config.profiles.num_clusters =
      std::min(config.profiles.num_vpes, 4);
  config.profiles.num_outliers = 0;
  config.months = static_cast<int>(args.get_long("months", 3));
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 42));
  config.syslog.gap_scale = args.get_double("gap-scale", 2.0);
  const auto trace = simnet::simulate_fleet(config);

  std::ofstream out(args.require("out"));
  if (!out) {
    std::cerr << "error: cannot write output file\n";
    return 2;
  }
  std::size_t written = 0;
  for (const auto& stream : trace.logs_by_vpe) {
    for (const auto& rec : stream) {
      out << rec.time.seconds << ' ' << rec.text << '\n';
      ++written;
    }
  }
  std::cerr << "wrote " << written << " log lines\n";

  if (const auto tickets_path = args.get("tickets")) {
    std::ofstream tickets_out(*tickets_path);
    for (const auto& t : trace.tickets) {
      tickets_out << t.report.seconds << ' ' << t.vpe << ' '
                  << simnet::to_string(t.category) << ' '
                  << t.repair_finish.seconds << '\n';
    }
    std::cerr << "wrote " << trace.tickets.size() << " tickets\n";
  }
  return 0;
}

int cmd_mine(const Args& args) {
  const auto lines = read_log_file(args.require("logs"));
  logproc::SignatureTree tree;
  for (const auto& line : lines) tree.learn(line.text);
  const auto max_shown =
      static_cast<std::size_t>(args.get_long("max", 1000));
  std::cout << tree.size() << " templates from " << lines.size()
            << " lines\n";
  for (std::size_t i = 0; i < tree.size() && i < max_shown; ++i) {
    const auto id = static_cast<std::int32_t>(i);
    std::cout << "[" << id << "] x" << tree.match_count(id) << "  "
              << tree.pattern(id) << "\n";
  }
  return 0;
}

int cmd_train(const Args& args) {
  const auto lines = read_log_file(args.require("logs"));
  logproc::SignatureTree tree;
  std::vector<logproc::ParsedLog> logs;
  logs.reserve(lines.size());
  for (const auto& line : lines) {
    logs.push_back({line.time, tree.learn(line.text)});
  }
  core::LstmDetectorConfig config;
  config.window = static_cast<std::size_t>(args.get_long("window", 10));
  config.initial_epochs =
      static_cast<std::size_t>(args.get_long("epochs", 4));
  config.persistent_optimizer =
      args.get_long("persistent-optimizer", 0) != 0;
  config.quantize = args.get_long("quantize", 0) != 0;
  const long score_batch = args.get_long("score-batch", 0);
  if (score_batch < 0) {
    std::cerr << "error: --score-batch must be positive\n";
    return 1;
  }
  if (score_batch > 0) {
    config.score_batch = static_cast<std::size_t>(score_batch);
  }
  core::LstmDetector detector(config);
  std::cerr << "training on " << logs.size() << " events ("
            << tree.size() << " templates)...\n";
  const core::LogView view{logs};
  detector.fit({&view, 1}, tree.size());

  std::ofstream out(args.require("model"), std::ios::binary);
  if (!out) {
    std::cerr << "error: cannot write model file\n";
    return 2;
  }
  detector.save(out);
  std::cerr << "model written\n";
  return 0;
}

int cmd_score(const Args& args) {
  const auto lines = read_log_file(args.require("logs"));
  std::ifstream model_in(args.require("model"), std::ios::binary);
  if (!model_in) {
    std::cerr << "error: cannot open model file\n";
    return 2;
  }
  core::LstmDetector detector = core::LstmDetector::load(model_in);
  if (args.get_long("quantize", 0) != 0) {
    // Calibrate the int8 sidecar from the loaded fp32 weights (a no-op if
    // the checkpoint already carried one).
    detector.set_quantized(true);
  }
  const long score_batch = args.get_long("score-batch", 0);
  if (score_batch < 0) {
    std::cerr << "error: --score-batch must be positive\n";
    return 1;
  }
  if (score_batch > 0) {
    detector.set_score_batch(static_cast<std::size_t>(score_batch));
  }

  // Template ids must be assigned consistently with training: the
  // signature tree is rebuilt from the scored file itself (the tree is
  // deterministic given the same message shapes; novel shapes map to new
  // ids, which the detector treats as maximally surprising).
  logproc::SignatureTree tree;
  std::vector<logproc::ParsedLog> logs;
  for (const auto& line : lines) {
    logs.push_back({line.time, tree.learn(line.text)});
  }
  const auto events = detector.score(logs, tree.size());
  if (events.empty()) {
    std::cerr << "not enough events to score (need window+1)\n";
    return 2;
  }
  std::vector<double> scores;
  scores.reserve(events.size());
  for (const auto& e : events) scores.push_back(e.score);
  const double q = args.get_double("threshold-quantile", 0.99);
  const double threshold = util::quantile(scores, q);

  if (args.get_long("async-ingest", 0) != 0) {
    // Streaming replay: raw lines flow through the asynchronous ingest
    // runtime (online template mining + micro-batched scoring + the
    // >=2-anomalies-within-minutes warning rule). The threshold comes
    // from the batch calibration above; warnings are deterministic for
    // any worker count / flush batch / deadline.
    core::AsyncIngestConfig ingest_config;
    ingest_config.workers =
        static_cast<std::size_t>(args.get_long("ingest-workers", 0));
    ingest_config.flush_batch =
        static_cast<std::size_t>(args.get_long("flush-batch", 64));
    ingest_config.flush_deadline =
        std::chrono::microseconds(args.get_long("flush-deadline", 2000));
    ingest_config.share_token_arena = args.get_long("share-arena", 1) != 0;
    ingest_config.share_template_forest =
        args.get_long("share-forest", 1) != 0;
    ingest_config.single_producer = true;
    ingest_config.online_retrain = args.get_long("online-retrain", 0) != 0;
    const long retrain_interval = args.get_long("retrain-interval", 50000);
    const long retrain_samples = args.get_long("retrain-samples", 2048);
    if (retrain_interval < 0 || retrain_samples < 1) {
      std::cerr << "error: --retrain-interval must be >= 0 and"
                   " --retrain-samples >= 1\n";
      return 1;
    }
    ingest_config.retrain_interval_lines =
        static_cast<std::uint64_t>(retrain_interval);
    ingest_config.retrain_samples =
        static_cast<std::size_t>(retrain_samples);
    core::AsyncIngest ingest(&detector, ingest_config);
    core::StreamMonitorConfig monitor_config;
    monitor_config.threshold = threshold;
    monitor_config.window = detector.config().window;
    const std::size_t shard = ingest.add_shard(0, monitor_config);
    ingest.start();
    for (const auto& line : lines) {
      ingest.submit(shard, line.time, line.text);
    }
    ingest.flush();
    const auto stats_path = args.get("stats-json");
    const auto dump_stats = [&ingest, &stats_path]() -> bool {
      std::ofstream stats_out(*stats_path);
      if (!stats_out) {
        std::cerr << "error: cannot write " << *stats_path << "\n";
        return false;
      }
      stats_out << ingest.stats_json() << "\n";
      std::cerr << "wrote runtime stats to " << *stats_path << "\n";
      return true;
    };
    if (stats_path && !ingest_config.online_retrain) {
      // flush() is an epoch barrier, so the snapshot's counters and
      // latency buckets are exact for every submitted line — and the
      // queue gauges still describe the live (not yet stopped) runtime.
      if (!dump_stats()) return 2;
    }
    ingest.stop();
    if (stats_path && ingest_config.online_retrain) {
      // With the trainer running, a pre-stop cut could catch a retrain
      // round mid-flight (train_seconds advanced, rounds/swaps not yet);
      // stop() joins the trainer, making the retrain block final.
      if (!dump_stats()) return 2;
    }
    std::vector<core::StreamWarning> warnings;
    ingest.drain_warnings(warnings);
    const core::AsyncIngestStats stats = ingest.stats();
    std::cout << "async ingest: " << stats.lines_scored << " lines over "
              << ingest.workers() << " worker(s); threshold " << threshold
              << " (q=" << q << ")\n";
    if (ingest_config.online_retrain) {
      const core::RetrainStats retrain = ingest.snapshot().retrain;
      std::cout << "online retrain: " << retrain.rounds << " round(s), "
                << retrain.adapt_rounds << " adapt, " << retrain.swaps
                << " model swap(s), " << retrain.samples_seen
                << " sampled events (" << retrain.samples_dropped
                << " dropped), " << retrain.train_seconds
                << "s shadow training\n";
    }
    std::cout << warnings.size() << " warning signature(s):\n";
    for (const auto& warning : warnings) {
      std::cout << "  t=" << warning.time.seconds
                << " anomalies=" << warning.anomaly_count
                << " peak=" << warning.peak_score << "\n";
    }
    return 0;
  }

  core::MappingConfig mapping;
  const auto clusters = core::cluster_anomalies(events, threshold, mapping);

  std::cout << "scored " << events.size() << " events; threshold "
            << threshold << " (q=" << q << ")\n";
  std::cout << clusters.size() << " warning signature(s):\n";
  for (const auto& t : clusters) {
    std::cout << "  t=" << t.seconds << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    const long threads = args.get_long("threads", 0);
    if (threads < 0) {
      std::cerr << "error: --threads must be positive\n";
      return 1;
    }
    if (threads > 0) {
      util::set_global_threads(static_cast<std::size_t>(threads));
    }
    if (args.command == "simulate") return cmd_simulate(args);
    if (args.command == "mine") return cmd_mine(args);
    if (args.command == "train") return cmd_train(args);
    if (args.command == "score") return cmd_score(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  usage();
  return args.command.empty() ? 1 : 1;
}
