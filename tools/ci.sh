#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, an explicit pass over
# the observability-labelled tests (latency histograms, runtime stats
# snapshots, JSON round-trip), the continual-labelled tests (online
# retrain update-shift scenario, per-epoch swap determinism, swap-storm
# races, adapt unfreeze safety), then a ThreadSanitizer pass over the
# concurrency-, observability- and continual-labelled tests (thread pool, lock-free
# queues, the shared token arena's lock-free reader/registrar stress,
# parallel-vs-serial pipeline determinism, shared-detector streaming,
# the async-ingest determinism/backpressure/control-plane suite, and the
# batched-inference batch-size/thread-count invariance suite). The
# async-ingest smoke also gates the instrumentation overhead at <=2%
# lines/sec; the fleet-soak smoke gates the sharing-tier memory ladder
# (arena+forest bytes/vPE < shared-arena < private) and warning parity
# vs serial replay at two worker counts. The forest-labelled tests cover
# the shared signature forest (sequence-interner publication machinery,
# cross-vPE template dedup, copy-on-write divergence) and run in both
# the regular and TSan legs. The quantized-scoring leg runs the quant-labelled
# tests, the bench_scoring_throughput --smoke rank-agreement /
# tier-bit-identity gates, and an ASan build of the int8 kernels.
#
# Usage: tools/ci.sh [jobs]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${1:-$(nproc)}"

echo "=== tier-1: build + full ctest ==="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

echo "=== training fast path: bench smoke ==="
cmake --build "$ROOT/build" -j "$JOBS" --target bench_training_throughput
"$ROOT/build/bench/bench_training_throughput" --smoke

echo "=== observability: runtime stats + json round-trip ==="
ctest --test-dir "$ROOT/build" -L observability --output-on-failure -j "$JOBS"

echo "=== async ingest: serial-equivalence + instrumentation-overhead smoke ==="
cmake --build "$ROOT/build" -j "$JOBS" --target bench_ingest_throughput
"$ROOT/build/bench/bench_ingest_throughput" --smoke

echo "=== template mining: fast-path equivalence smoke ==="
cmake --build "$ROOT/build" -j "$JOBS" --target bench_parsing_throughput
"$ROOT/build/bench/bench_parsing_throughput" --smoke

echo "=== shared signature forest: dedup + divergence tests ==="
ctest --test-dir "$ROOT/build" -L forest --output-on-failure -j "$JOBS"

echo "=== fleet soak: sharing-tier memory ladder + warning-parity smoke ==="
cmake --build "$ROOT/build" -j "$JOBS" --target bench_fleet_soak
"$ROOT/build/bench/bench_fleet_soak" --smoke

echo "=== quantized scoring: kernel/lifecycle tests + rank-agreement smoke ==="
ctest --test-dir "$ROOT/build" -L quant --output-on-failure -j "$JOBS"
cmake --build "$ROOT/build" -j "$JOBS" --target bench_scoring_throughput
"$ROOT/build/bench/bench_scoring_throughput" --smoke

echo "=== ASan: logproc fast path (interner, AVX2 tokenizer, alloc hook) + int8 kernels ==="
cmake -B "$ROOT/build-asan" -S "$ROOT" -DNFVPRED_SANITIZE=address
cmake --build "$ROOT/build-asan" -j "$JOBS" --target test_logproc --target test_logproc_alloc --target test_quant
"$ROOT/build-asan/tests/test_logproc"
"$ROOT/build-asan/tests/test_logproc_alloc"
"$ROOT/build-asan/tests/test_quant"

echo "=== continual learning: online retrain + hot swap + adapt safety ==="
ctest --test-dir "$ROOT/build" -L continual --output-on-failure -j "$JOBS"

echo "=== TSan: concurrency + observability + continual + forest labels ==="
cmake -B "$ROOT/build-tsan" -S "$ROOT" -DNFVPRED_SANITIZE=thread
cmake --build "$ROOT/build-tsan" -j "$JOBS" --target test_concurrency --target test_observability --target test_continual --target test_forest
ctest --test-dir "$ROOT/build-tsan" -L 'concurrency|observability|continual|forest' --output-on-failure

echo "ci.sh: all passes clean"
