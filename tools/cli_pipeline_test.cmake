# End-to-end CLI chain: simulate → mine → train → score.
file(MAKE_DIRECTORY ${WORK_DIR})
set(LOGS ${WORK_DIR}/demo.log)
set(MODEL ${WORK_DIR}/demo.model)

execute_process(COMMAND ${NFVPRED} simulate --out ${LOGS} --vpe 1
                        --months 2 --seed 7
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed: ${rc}")
endif()

execute_process(COMMAND ${NFVPRED} mine --logs ${LOGS} --max 3
                RESULT_VARIABLE rc OUTPUT_VARIABLE mine_out)
if(NOT rc EQUAL 0 OR NOT mine_out MATCHES "templates from")
  message(FATAL_ERROR "mine failed: ${rc} / ${mine_out}")
endif()

execute_process(COMMAND ${NFVPRED} train --logs ${LOGS} --model ${MODEL}
                        --epochs 2
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "train failed: ${rc}")
endif()

execute_process(COMMAND ${NFVPRED} score --logs ${LOGS} --model ${MODEL}
                RESULT_VARIABLE rc OUTPUT_VARIABLE score_out)
if(NOT rc EQUAL 0 OR NOT score_out MATCHES "warning signature")
  message(FATAL_ERROR "score failed: ${rc} / ${score_out}")
endif()
