// Calibration regression tests: the paper-shape claims that EXPERIMENTS.md
// tracks, encoded as executable assertions with tolerance bands. If a
// simulator or pipeline change drifts the reproduction away from the
// paper's dataset statistics, these fail before the (slow) benches would
// show it.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/parsed_fleet.h"
#include "core/pipeline.h"
#include "logproc/dataset.h"
#include "simnet/fleet.h"
#include "util/stats.h"

namespace nfv {
namespace {

using simnet::Ticket;
using simnet::TicketCategory;
using util::Duration;
using util::SimTime;

/// Ticket analysis doesn't need dense logs: crank gap_scale way up.
simnet::FleetTrace ticket_trace(std::uint64_t seed, int months = 18) {
  simnet::FleetConfig config;
  config.seed = seed;
  config.months = months;
  config.syslog.gap_scale = 60.0;
  return simnet::simulate_fleet(config);
}

class TicketCalibrationP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TicketCalibrationP, MaintenanceIsTheLargestCategory) {
  // Fig. 1(a): maintenance dominant; Duplicate and Circuit the next two.
  const auto trace = ticket_trace(GetParam());
  std::map<TicketCategory, std::size_t> counts;
  for (const Ticket& t : trace.tickets) ++counts[t.category];
  const std::size_t maintenance = counts[TicketCategory::kMaintenance];
  for (const auto& [category, count] : counts) {
    if (category == TicketCategory::kMaintenance) continue;
    EXPECT_LE(count, maintenance) << to_string(category);
  }
  // Circuit and Duplicate are the two largest non-maintenance causes.
  std::vector<std::pair<std::size_t, TicketCategory>> others;
  for (const auto& [category, count] : counts) {
    if (category != TicketCategory::kMaintenance) {
      others.emplace_back(count, category);
    }
  }
  std::sort(others.rbegin(), others.rend());
  ASSERT_GE(others.size(), 2u);
  const auto top_two = {others[0].second, others[1].second};
  EXPECT_TRUE(std::count(top_two.begin(), top_two.end(),
                         TicketCategory::kCircuit) == 1);
  EXPECT_TRUE(std::count(top_two.begin(), top_two.end(),
                         TicketCategory::kDuplicate) == 1);
}

TEST_P(TicketCalibrationP, InterArrivalTailMatchesFig1b) {
  // Fig. 1(b): min gap > 40 min; ~80% > 10 h; ~25% > 1000 h.
  const auto trace = ticket_trace(GetParam());
  std::map<int, SimTime> last;
  std::vector<double> gaps_hours;
  for (const Ticket& t : trace.tickets) {
    if (t.category == TicketCategory::kDuplicate) continue;
    const auto it = last.find(t.vpe);
    if (it != last.end()) gaps_hours.push_back((t.report - it->second).hours());
    last[t.vpe] = t.report;
  }
  ASSERT_GT(gaps_hours.size(), 200u);
  std::sort(gaps_hours.begin(), gaps_hours.end());
  EXPECT_GT(gaps_hours.front(), 40.0 / 60.0);
  auto fraction_above = [&](double hours) {
    const auto it =
        std::upper_bound(gaps_hours.begin(), gaps_hours.end(), hours);
    return static_cast<double>(gaps_hours.end() - it) /
           static_cast<double>(gaps_hours.size());
  };
  EXPECT_GT(fraction_above(10.0), 0.70);
  EXPECT_LT(fraction_above(10.0), 0.97);
  EXPECT_GT(fraction_above(1000.0), 0.15);
  EXPECT_LT(fraction_above(1000.0), 0.50);
}

TEST_P(TicketCalibrationP, TicketVolumeIsSkewedAcrossVpes) {
  // Fig. 2: a few vPEs carry much more than their share.
  const auto trace = ticket_trace(GetParam(), 12);
  std::map<int, int> per_vpe;
  for (const Ticket& t : trace.tickets) {
    if (t.category == TicketCategory::kMaintenance) continue;
    ++per_vpe[t.vpe];
  }
  std::vector<int> counts;
  for (const auto& [vpe, count] : per_vpe) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  ASSERT_GE(counts.size(), 10u);
  int total = 0;
  for (int c : counts) total += c;
  const int top5 = counts[0] + counts[1] + counts[2] + counts[3] + counts[4];
  // Top 5 of 38 vPEs (13% of the fleet) carry well above 13% of tickets.
  EXPECT_GT(static_cast<double>(top5) / total, 0.22);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TicketCalibrationP,
                         ::testing::Values(42u, 7u, 1337u));

TEST(SyslogCalibration, PerVpeDiversityMatchesFig3) {
  // Fig. 3: substantial spread — a meaningful share of vPEs above 0.8
  // similarity to the aggregate, and a low tail below 0.6.
  simnet::FleetConfig config;
  config.seed = 42;
  config.months = 4;
  config.syslog.gap_scale = 8.0;
  config.update_month = -1;
  const auto trace = simnet::simulate_fleet(config);
  const auto parsed = core::parse_fleet(trace);
  const std::size_t vocab = parsed.vocab();
  const auto n = static_cast<std::size_t>(trace.num_vpes());

  std::vector<std::vector<double>> dists(n);
  std::vector<double> aggregate(vocab, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    dists[v] = logproc::template_distribution(parsed.logs_by_vpe[v], vocab);
    for (std::size_t t = 0; t < vocab; ++t) aggregate[t] += dists[v][t];
  }
  util::normalize_l1(aggregate);
  int above_08 = 0;
  int below_06 = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const double sim = util::cosine_similarity(dists[v], aggregate);
    if (sim > 0.8) ++above_08;
    if (sim < 0.6) ++below_06;
  }
  EXPECT_GE(above_08, 5);   // some vPEs track the aggregate
  EXPECT_LE(above_08, 30);  // ...but far from all (paper: ~1/3)
  EXPECT_GE(below_06, 2);   // and a low tail exists (paper: 5 below 0.5)
}

TEST(SyslogCalibration, UpdateShiftsDistributionsSharply) {
  // §3.3: the software update collapses the before/after similarity of
  // affected vPEs while unaffected vPEs stay stable.
  simnet::FleetConfig config;
  config.seed = 42;
  config.months = 6;
  config.syslog.gap_scale = 8.0;
  config.update_month = 3;
  const auto trace = simnet::simulate_fleet(config);
  const auto parsed = core::parse_fleet(trace);
  const std::size_t vocab = parsed.vocab();

  util::RunningStats updated;
  util::RunningStats stable;
  for (std::size_t v = 0; v < parsed.logs_by_vpe.size(); ++v) {
    const auto update_time = trace.update_time_by_vpe[v];
    const SimTime pivot = update_time == simnet::never()
                              ? util::month_start(config.update_month)
                              : update_time;
    const auto before = logproc::template_distribution(
        logproc::slice_time(parsed.logs_by_vpe[v],
                            pivot - Duration::of_days(30), pivot),
        vocab);
    const auto after = logproc::template_distribution(
        logproc::slice_time(parsed.logs_by_vpe[v], pivot,
                            pivot + Duration::of_days(30)),
        vocab);
    const double sim = util::cosine_similarity(before, after);
    (update_time == simnet::never() ? stable : updated).add(sim);
  }
  ASSERT_GT(updated.count(), 0u);
  ASSERT_GT(stable.count(), 0u);
  // Thresholds allow for the sampling noise of ~100-log monthly windows
  // at this reduced rate; the *gap* between the two populations is the
  // calibrated property.
  EXPECT_LT(updated.mean(), 0.65);
  EXPECT_GT(stable.mean(), 0.72);
  EXPECT_LT(updated.mean(), stable.mean() - 0.15);
}

TEST(PipelineCalibration, DeterministicAcrossRuns) {
  // The whole experiment chain is a pure function of the seed.
  const auto trace = simnet::simulate_fleet(simnet::small_fleet_config(5));
  const auto parsed = core::parse_fleet(trace);
  core::PipelineOptions options;
  options.clustering.fixed_k = 2;
  core::LstmDetectorConfig lstm;
  lstm.initial_epochs = 2;
  lstm.update_epochs = 1;
  lstm.max_train_windows = 1000;
  options.lstm_config = lstm;
  const auto a = core::run_pipeline(trace, parsed, options);
  const auto b = core::run_pipeline(trace, parsed, options);
  EXPECT_DOUBLE_EQ(a.aggregate.f_measure, b.aggregate.f_measure);
  EXPECT_EQ(a.mapping.false_alarms, b.mapping.false_alarms);
  ASSERT_EQ(a.monthly.size(), b.monthly.size());
  for (std::size_t m = 0; m < a.monthly.size(); ++m) {
    EXPECT_DOUBLE_EQ(a.monthly[m].prf.f_measure, b.monthly[m].prf.f_measure);
  }
}

TEST(PipelineCalibration, AnomalyBurstsLeadTicketsEndToEnd) {
  // A small but complete end-to-end check of the paper's core claim:
  // syslog anomalies map to tickets, with some genuinely early warnings.
  simnet::FleetConfig config = simnet::small_fleet_config(21);
  config.syslog.gap_scale = 2.0;
  config.months = 5;
  config.profiles.num_vpes = 8;
  const auto trace = simnet::simulate_fleet(config);
  const auto parsed = core::parse_fleet(trace);
  core::PipelineOptions options;
  options.clustering.fixed_k = 2;
  core::LstmDetectorConfig lstm;
  lstm.initial_epochs = 3;
  lstm.max_train_windows = 2000;
  options.lstm_config = lstm;
  const auto result = core::run_pipeline(trace, parsed, options);
  EXPECT_GT(result.mapping.early_warnings, 0u);
  EXPECT_GT(result.aggregate.recall, 0.4);
  EXPECT_GT(result.aggregate.precision, 0.5);
  // At least one ticket was flagged before its report time.
  bool any_before = false;
  for (const auto& detection : result.detections) {
    any_before = any_before || detection.detected_before;
  }
  EXPECT_TRUE(any_before);
}

}  // namespace
}  // namespace nfv
