// Online continual learning: the update-shift scenario of the paper's
// Fig. 11 run end-to-end inside the async runtime. A fleet software
// update swaps ~1/3 of the template mix mid-stream; the stale model sees
// every window as novel, the cluster tracker collapses the whole drifted
// epoch into one giant anomaly run, and fault-burst recall craters. The
// background trainer samples the live stream, detects the update shift
// (novel-template fraction), takes the transfer adapt() path and installs
// the fine-tuned model through the epoch barrier — recall recovers to
// within 5% of pre-update without a gap in the warning stream.
//
// Also pinned here: per-epoch determinism of retrain-installed models
// (each swap epoch is byte-for-byte a serial replay with that epoch's
// model), byte parity with retrain disabled on the same drifted stream,
// the swap-storm / snapshot-hammer race (retired-generation ownership:
// runs under TSan via ctest -L continual in tools/ci.sh), the adapt()
// unfreeze guard on a throwing training round, and the persistent-Adam
// moment state across fit/adapt/update rounds.
#include "core/async_ingest.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/lstm_detector.h"
#include "logproc/signature_tree.h"
#include "util/check.h"
#include "util/json.h"
#include "util/stats.h"

namespace nfv::core {
namespace {

using logproc::ParsedLog;
using logproc::SignatureTree;
using nfv::util::SimTime;

constexpr std::size_t kVpes = 2;
// One line a minute per vPE: a two-line fault burst spans 60s, inside the
// 2-minute cluster span, so every burst is a ≥2-anomaly warning cluster.
constexpr std::int64_t kStep = 60;
constexpr std::size_t kPreShapes = 8;
constexpr std::size_t kTrainLen = 400;
constexpr std::size_t kUpdateAt = 2000;  // fleet software update hits here
constexpr std::size_t kSwapAt = 2400;    // retrain requested at this line
constexpr std::size_t kTotalLen = 4500;
constexpr std::size_t kBurstPeriod = 200;  // bursts at i % 200 == 100, 101

// Letters-only heads: digit-bearing tokens are masked to wildcards by the
// tokenizer, so template identity must ride on alphabetic tokens.
const char* const kPreNames[] = {"alpha", "bravo", "charlie", "delta",
                                 "echo",  "golf",  "hotel",   "kilo"};
const char* const kPostNames[] = {"upsilon", "vector", "whiskey", "xray"};

std::string letters(std::size_t n) {
  std::string out;
  do {
    out.push_back(static_cast<char>('a' + n % 10));
    n /= 10;
  } while (n != 0);
  return out;
}

std::string pre_line(std::size_t shape, std::size_t salt) {
  return std::string(kPreNames[shape]) + " event code " +
         std::to_string(salt);
}

std::string post_line(std::size_t shape, std::size_t salt) {
  return std::string(kPostNames[shape]) + " event code " +
         std::to_string(salt);
}

// A FRESH head per (vpe, burst index): every fault burst is novel to ANY
// model ever trained in this test, so burst detection always rides the
// deterministic unknown-template score — recall measures the cluster
// tracker's ability to see bursts, not the model's memory of them.
std::string burst_line(std::size_t vpe, std::size_t i) {
  return "fault" + letters(vpe) + "x" + letters(i / kBurstPeriod) +
         " event code " + std::to_string(i);
}

bool is_burst(std::size_t i) {
  const std::size_t r = i % kBurstPeriod;
  return r == 100 || r == 101;
}

std::size_t pre_shape(std::size_t vpe, std::size_t i) {
  return (i * 7 + vpe * 3 + i / 31) % kPreShapes;
}

// The live stream. Post-update, every third line comes from the new
// catalog, so every scoring window (4 history + target) contains at
// least one post-update template: the stale model sees one continuous
// anomaly run — exactly the Fig. 11 recall collapse.
std::string stream_line(std::size_t vpe, std::size_t i) {
  if (is_burst(i)) return burst_line(vpe, i);
  if (i >= kUpdateAt && i % 3 == 0) return post_line((i / 3) % 4, i);
  return pre_line(pre_shape(vpe, i), i);
}

SimTime line_time(std::size_t i) {
  return SimTime{static_cast<std::int64_t>(i) * kStep};
}

void prime_tree(SignatureTree& tree) {
  for (std::size_t shape = 0; shape < kPreShapes; ++shape) {
    tree.learn(pre_line(shape, 0));
  }
}

LstmDetector train_detector(std::uint64_t seed) {
  SignatureTree train_tree;
  prime_tree(train_tree);
  std::vector<std::vector<ParsedLog>> train_streams(kVpes);
  for (std::size_t v = 0; v < kVpes; ++v) {
    for (std::size_t i = 0; i < kTrainLen; ++i) {
      train_streams[v].push_back(
          {line_time(i), train_tree.learn(pre_line(pre_shape(v, i), i))});
    }
  }
  LstmDetectorConfig config;
  config.window = 4;
  config.embed_dim = 8;
  config.hidden = 8;
  config.initial_epochs = 2;
  config.oversample = false;
  config.seed = seed;
  LstmDetector detector(config);
  std::vector<LogView> views(train_streams.begin(), train_streams.end());
  detector.fit(views, train_tree.size());
  return detector;
}

double operating_threshold(const LstmDetector& detector) {
  std::vector<double> scores;
  for (std::size_t v = 0; v < kVpes; ++v) {
    std::vector<ParsedLog> stream;
    SignatureTree tree;
    prime_tree(tree);
    for (std::size_t i = 0; i < kTrainLen; ++i) {
      stream.push_back(
          {line_time(i), tree.learn(pre_line(pre_shape(v, i), i))});
    }
    for (const ScoredEvent& event : detector.score(stream, tree.size())) {
      scores.push_back(event.score);
    }
  }
  // Operating point: above the healthy-stream NLL band (p999 ~2.2 here)
  // with margin for the adapted model's slightly-elevated NLL on the new
  // catalog (~3-4: its embedding rows stay frozen during adapt), yet far
  // below the unknown-template score (27.6) that fault bursts and the
  // drifted epoch ride on. Without the margin, post-adapt scoring drowns
  // in false positives and run tracking merges across bursts.
  return nfv::util::quantile(scores, 0.999) + 6.0;
}

StreamMonitorConfig monitor_config(double threshold) {
  StreamMonitorConfig config;
  config.threshold = threshold;
  config.window = 4;
  return config;
}

/// Serial reference over the SAME drifted stream, with an optional
/// detector swap after `swap_at` lines.
std::vector<std::vector<StreamWarning>> serial_replay(
    const AnomalyDetector& detector, double threshold, std::size_t length,
    const AnomalyDetector* swap_to = nullptr, std::size_t swap_at = 0) {
  std::vector<std::vector<StreamWarning>> warnings(kVpes);
  for (std::size_t v = 0; v < kVpes; ++v) {
    SignatureTree tree;
    prime_tree(tree);
    StreamMonitor monitor(static_cast<std::int32_t>(v), &detector, &tree,
                          monitor_config(threshold),
                          [&warnings, v](const StreamWarning& warning) {
                            warnings[v].push_back(warning);
                          });
    for (std::size_t i = 0; i < length; ++i) {
      if (swap_to != nullptr && i == swap_at) monitor.set_detector(swap_to);
      monitor.ingest(line_time(i), stream_line(v, i));
    }
  }
  return warnings;
}

void expect_same_warnings(
    const std::vector<std::vector<StreamWarning>>& serial,
    const std::vector<StreamWarning>& drained, const std::string& label) {
  const std::vector<StreamWarning> merged = merge_warnings_by_vpe(drained);
  std::size_t serial_total = 0;
  for (const auto& per_vpe : serial) serial_total += per_vpe.size();
  ASSERT_EQ(merged.size(), serial_total) << label;
  std::size_t at = 0;
  for (std::size_t v = 0; v < serial.size(); ++v) {
    for (std::size_t w = 0; w < serial[v].size(); ++w, ++at) {
      const StreamWarning& expected = serial[v][w];
      const StreamWarning& actual = merged[at];
      ASSERT_EQ(actual.vpe, expected.vpe) << label;
      ASSERT_EQ(actual.time.seconds, expected.time.seconds)
          << label << " vpe " << v << " warning " << w;
      ASSERT_EQ(actual.anomaly_count, expected.anomaly_count)
          << label << " vpe " << v << " warning " << w;
      ASSERT_EQ(actual.peak_score, expected.peak_score)
          << label << " vpe " << v << " warning " << w;
      ASSERT_EQ(actual.trigger_template, expected.trigger_template)
          << label << " vpe " << v << " warning " << w;
    }
  }
}

/// Fraction of fault bursts starting in [begin, end) with a warning
/// within ±2 steps of the burst head, per vPE.
double burst_recall(const std::vector<StreamWarning>& warnings,
                    std::size_t begin, std::size_t end) {
  std::size_t total = 0;
  std::size_t detected = 0;
  for (std::size_t v = 0; v < kVpes; ++v) {
    for (std::size_t i = begin; i < end; ++i) {
      if (i % kBurstPeriod != 100) continue;
      ++total;
      const std::int64_t burst_time = static_cast<std::int64_t>(i) * kStep;
      for (const StreamWarning& w : warnings) {
        if (w.vpe != static_cast<std::int32_t>(v)) continue;
        const std::int64_t delta = w.time.seconds - burst_time;
        if (delta >= -2 * kStep && delta <= 2 * kStep) {
          ++detected;
          break;
        }
      }
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(detected) /
                          static_cast<double>(total);
}

struct ContinualLearningTest : ::testing::Test {
  static const LstmDetector& detector() {
    static const LstmDetector d = train_detector(1234);
    return d;
  }
  static double threshold() {
    static const double t = operating_threshold(detector());
    return t;
  }
};

// ---------------------------------------------------------------------
// Tentpole: update shift -> recall collapse -> adapt-path retrain ->
// recall recovery, all while the runtime keeps scoring.
// ---------------------------------------------------------------------
TEST_F(ContinualLearningTest, UpdateShiftAdaptRestoresRecall) {
  AsyncIngestConfig config;
  config.workers = 2;
  config.flush_batch = 32;
  config.online_retrain = true;
  // Request-driven rounds: the corpus cut and swap position are then
  // exact (producers quiet at the request), making the test
  // scheduling-independent.
  config.retrain_interval_lines = 0;
  // Recency window reaches back across the update boundary: the corpus
  // holds both catalogs, well past the novel-fraction trigger.
  config.retrain_samples = 1200;
  AsyncIngest ingest(&detector(), config);
  for (std::size_t v = 0; v < kVpes; ++v) {
    const std::size_t shard = ingest.add_shard(static_cast<std::int32_t>(v),
                                               monitor_config(threshold()));
    prime_tree(ingest.mutable_tree(shard));
  }
  ingest.start();

  std::vector<StreamWarning> warnings;

  // Phase 1 (healthy) + the drifted epoch after the update at kUpdateAt.
  for (std::size_t i = 0; i < kSwapAt; ++i) {
    for (std::size_t v = 0; v < kVpes; ++v) {
      ingest.submit(v, line_time(i), stream_line(v, i));
    }
  }
  ingest.flush();
  ingest.drain_warnings(warnings);

  ingest.request_retrain();
  ingest.wait_retrain_rounds(1);
  const RuntimeStatsSnapshot mid = ingest.snapshot();
  ASSERT_EQ(mid.retrain.rounds, 1u);
  ASSERT_EQ(mid.retrain.adapt_rounds, 1u)
      << "an update shift must take the transfer adapt() path";
  ASSERT_EQ(mid.retrain.swaps, 1u);
  // Producers were quiet from flush() through the install, so the swap
  // epoch is exact: everything before was scored by the stale model,
  // everything after by the adapted one.
  EXPECT_EQ(mid.retrain.last_swap_lines_scored, kVpes * kSwapAt);
  EXPECT_GT(mid.retrain.train_seconds, 0.0);

  // Phase 3: the adapted model scores the post-update mix.
  for (std::size_t i = kSwapAt; i < kTotalLen; ++i) {
    for (std::size_t v = 0; v < kVpes; ++v) {
      ingest.submit(v, line_time(i), stream_line(v, i));
    }
  }
  ingest.flush();
  ingest.stop();
  ingest.drain_warnings(warnings);

  // Detection never paused: every submitted line was scored.
  const RuntimeStatsSnapshot snap = ingest.snapshot();
  EXPECT_EQ(snap.totals.lines_submitted, kVpes * kTotalLen);
  EXPECT_EQ(snap.totals.lines_scored, kVpes * kTotalLen);
  EXPECT_EQ(snap.retrain.samples_seen, kVpes * kTotalLen);

  const double recall_pre = burst_recall(warnings, 0, kUpdateAt);
  const double recall_drift = burst_recall(warnings, kUpdateAt, kSwapAt);
  const double recall_post = burst_recall(warnings, kSwapAt, kTotalLen);
  ASSERT_GT(recall_pre, 0.89) << "healthy-stream recall must be high";
  // The stale model folds the whole drifted epoch into one anomaly run:
  // fault bursts stop producing distinct warnings.
  EXPECT_LT(recall_drift, 0.5) << "update shift must collapse recall";
  // Paper acceptance: recall back within 5% of pre-update.
  EXPECT_GE(recall_post, recall_pre - 0.05);

  // The drifted epoch itself still raised a warning (the stream never
  // went dark), and recovery took far less than a week of sim time.
  bool drift_warned = false;
  for (const StreamWarning& w : warnings) {
    if (w.time.seconds >= static_cast<std::int64_t>(kUpdateAt) * kStep &&
        w.time.seconds < static_cast<std::int64_t>(kUpdateAt + 30) * kStep) {
      drift_warned = true;
      break;
    }
  }
  EXPECT_TRUE(drift_warned);
  EXPECT_LE((kSwapAt - kUpdateAt) * static_cast<std::size_t>(kStep),
            std::size_t{7} * 24 * 3600);
}

// With retrain disabled the same drifted stream stays byte-for-byte the
// serial replay: the tap, trainer and swap machinery must be inert.
TEST_F(ContinualLearningTest, RetrainDisabledDriftStreamMatchesSerial) {
  const std::size_t length = kSwapAt + 400;
  const auto serial = serial_replay(detector(), threshold(), length);
  std::size_t serial_total = 0;
  for (const auto& per_vpe : serial) serial_total += per_vpe.size();
  ASSERT_GT(serial_total, 0u) << "vacuous comparison";

  AsyncIngestConfig config;
  config.workers = 3;
  config.flush_batch = 16;
  AsyncIngest ingest(&detector(), config);
  for (std::size_t v = 0; v < kVpes; ++v) {
    const std::size_t shard = ingest.add_shard(static_cast<std::int32_t>(v),
                                               monitor_config(threshold()));
    prime_tree(ingest.mutable_tree(shard));
  }
  ingest.start();
  for (std::size_t i = 0; i < length; ++i) {
    for (std::size_t v = 0; v < kVpes; ++v) {
      ingest.submit(v, line_time(i), stream_line(v, i));
    }
  }
  ingest.flush();
  ingest.stop();
  std::vector<StreamWarning> warnings;
  ingest.drain_warnings(warnings);
  expect_same_warnings(serial, warnings, "retrain off, drifted stream");
  EXPECT_FALSE(ingest.snapshot().retrain.enabled);
  EXPECT_EQ(ingest.snapshot().retrain.samples_seen, 0u);
}

// Determinism contract with retrain ON: each swap epoch is byte-for-byte
// a serial replay that scores it with that epoch's model. The swap
// position is pinned by requesting the round at a producer-quiet flush.
TEST_F(ContinualLearningTest, RetrainEpochMatchesSerialReplayOfThatModel) {
  constexpr std::size_t kFirstEpoch = 600;
  constexpr std::size_t kLength = 1200;

  AsyncIngestConfig config;
  config.workers = 2;
  config.flush_batch = 16;
  config.online_retrain = true;
  config.retrain_interval_lines = 0;
  config.retrain_samples = 512;
  AsyncIngest ingest(&detector(), config);
  for (std::size_t v = 0; v < kVpes; ++v) {
    const std::size_t shard = ingest.add_shard(static_cast<std::int32_t>(v),
                                               monitor_config(threshold()));
    prime_tree(ingest.mutable_tree(shard));
  }
  ingest.start();
  for (std::size_t i = 0; i < kFirstEpoch; ++i) {
    for (std::size_t v = 0; v < kVpes; ++v) {
      ingest.submit(v, line_time(i), stream_line(v, i));
    }
  }
  ingest.flush();
  ingest.request_retrain();
  ingest.wait_retrain_rounds(1);
  const RuntimeStatsSnapshot mid = ingest.snapshot();
  ASSERT_EQ(mid.retrain.swaps, 1u);
  // Healthy stream: barely any novel ids, so the warm update() path ran.
  EXPECT_EQ(mid.retrain.adapt_rounds, 0u);
  EXPECT_EQ(mid.retrain.last_swap_lines_scored, kVpes * kFirstEpoch);

  const AnomalyDetector* swapped = ingest.installed_detector();
  ASSERT_NE(swapped, nullptr);
  ASSERT_NE(swapped, static_cast<const AnomalyDetector*>(&detector()));

  for (std::size_t i = kFirstEpoch; i < kLength; ++i) {
    for (std::size_t v = 0; v < kVpes; ++v) {
      ingest.submit(v, line_time(i), stream_line(v, i));
    }
  }
  ingest.flush();
  ingest.stop();
  std::vector<StreamWarning> warnings;
  ingest.drain_warnings(warnings);

  // `swapped` stays valid after stop(): the runtime owns the installed
  // generation until destruction.
  const auto serial = serial_replay(detector(), threshold(), kLength,
                                    swapped, kFirstEpoch);
  expect_same_warnings(serial, warnings, "per-epoch retrain parity");
}

// Satellite: swap storm + stats hammer. Owned swaps with identical
// weights race snapshot()/stats_json() and live ingest; the stream must
// stay byte-for-byte serial and nothing may read a freed model (the
// retired-generation list; this binary runs under TSan in tools/ci.sh).
TEST_F(ContinualLearningTest, SwapStormSurvivesConcurrentSnapshots) {
  constexpr std::size_t kLength = 1200;
  const auto serial = serial_replay(detector(), threshold(), kLength);

  AsyncIngestConfig config;
  config.workers = 2;
  config.flush_batch = 16;
  config.queue_capacity = 256;
  AsyncIngest ingest(&detector(), config);
  for (std::size_t v = 0; v < kVpes; ++v) {
    const std::size_t shard = ingest.add_shard(static_cast<std::int32_t>(v),
                                               monitor_config(threshold()));
    prime_tree(ingest.mutable_tree(shard));
  }
  ingest.start();

  std::atomic<bool> done{false};
  std::thread hammer([&ingest, &done] {
    std::uint64_t reads = 0;
    while (!done.load(std::memory_order_acquire)) {
      const RuntimeStatsSnapshot snap = ingest.snapshot();
      ASSERT_LE(snap.totals.lines_scored, snap.totals.lines_submitted);
      if (!snap.shards.empty()) {
        ASSERT_GT(snap.shards[0].model_bytes_fp32, 0u);
      }
      ASSERT_FALSE(ingest.stats_json().empty());
      ++reads;
    }
    ASSERT_GT(reads, 0u);
  });
  std::thread storm([&ingest] {
    for (int k = 0; k < 24; ++k) {
      ingest.swap_detector_owned(
          std::make_unique<LstmDetector>(detector()));
    }
  });

  for (std::size_t i = 0; i < kLength; ++i) {
    for (std::size_t v = 0; v < kVpes; ++v) {
      ingest.submit(v, line_time(i), stream_line(v, i));
    }
    // Brief gaps let the storm's epoch barriers land mid-stream instead
    // of queueing up behind a saturating producer.
    if (i % 100 == 99) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  storm.join();
  ingest.flush();
  ingest.stop();
  done.store(true, std::memory_order_release);
  hammer.join();

  std::vector<StreamWarning> warnings;
  ingest.drain_warnings(warnings);
  // Every installed generation had identical weights, so the warning
  // stream equals the no-swap serial replay regardless of where the 24
  // barriers landed.
  expect_same_warnings(serial, warnings, "swap storm");
}

// Satellite: tap accounting. A deliberately tiny tap ring under a
// flush burst must drop (lossy by design), counters must stay coherent,
// and the JSON dump must carry the retrain block.
TEST_F(ContinualLearningTest, RetrainStatsTapCountersAndJson) {
  constexpr std::size_t kLength = 1000;
  AsyncIngestConfig config;
  config.workers = 2;
  config.flush_batch = 64;
  config.online_retrain = true;
  config.retrain_interval_lines = 0;
  config.retrain_samples = 64;
  config.retrain_tap_capacity = 2;
  AsyncIngest ingest(&detector(), config);
  for (std::size_t v = 0; v < kVpes; ++v) {
    const std::size_t shard = ingest.add_shard(static_cast<std::int32_t>(v),
                                               monitor_config(threshold()));
    prime_tree(ingest.mutable_tree(shard));
  }
  ingest.start();
  for (std::size_t i = 0; i < kLength; ++i) {
    for (std::size_t v = 0; v < kVpes; ++v) {
      ingest.submit(v, line_time(i), stream_line(v, i));
    }
  }
  ingest.flush();

  const RuntimeStatsSnapshot snap = ingest.snapshot();
  EXPECT_TRUE(snap.retrain.enabled);
  EXPECT_EQ(snap.retrain.samples_seen, kVpes * kLength);
  // 64-event flush bursts against a 2-slot ring: overflow must have
  // been dropped rather than stalling the scoring path.
  EXPECT_GT(snap.retrain.samples_dropped, 0u);
  EXPECT_LE(snap.retrain.buffered_events,
            snap.retrain.samples_seen - snap.retrain.samples_dropped);
  EXPECT_LE(snap.retrain.buffered_events, kVpes * config.retrain_samples);

  ingest.request_retrain();
  ingest.wait_retrain_rounds(1);
  const RuntimeStatsSnapshot after = ingest.snapshot();
  EXPECT_EQ(after.retrain.rounds, 1u);
  EXPECT_EQ(after.retrain.swaps, 1u);
  EXPECT_EQ(after.retrain.last_swap_lines_scored, kVpes * kLength);
  EXPECT_GT(after.retrain.train_seconds, 0.0);

  std::string error;
  const auto doc = nfv::util::json_parse(ingest.stats_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const nfv::util::JsonValue* retrain = doc->find("retrain");
  ASSERT_NE(retrain, nullptr);
  EXPECT_TRUE(retrain->find("enabled")->boolean);
  EXPECT_EQ(retrain->find("rounds")->number, 1.0);
  EXPECT_EQ(retrain->find("swaps")->number, 1.0);
  EXPECT_GT(retrain->find("samples_dropped")->number, 0.0);
  ingest.stop();
}

// ---------------------------------------------------------------------
// Satellite: adapt() exception safety. A training round that throws
// (corrupt stream: template ids beyond the non-growing vocabulary) must
// leave no layer frozen — the scope guard, not the happy path, unfreezes.
// ---------------------------------------------------------------------
TEST(ContinualLearningAdapt, ThrowingAdaptLeavesNoLayerFrozen) {
  LstmDetectorConfig config;
  config.window = 3;
  config.embed_dim = 4;
  config.hidden = 4;
  config.initial_epochs = 1;
  config.oversample = false;
  config.seed = 7;
  LstmDetector detector(config);
  std::vector<ParsedLog> train;
  for (std::size_t i = 0; i < 120; ++i) {
    train.push_back({SimTime{static_cast<std::int64_t>(i) * 30},
                     static_cast<std::int32_t>(i % 6)});
  }
  const std::vector<LogView> views{train};
  detector.fit(views, 6);

  // Poison stream: id 100 with a vocab argument that does not grow the
  // model, so the embedding's id-bounds check throws mid-train_epochs —
  // strictly after freeze_lower_layers() ran.
  std::vector<ParsedLog> poison;
  for (std::size_t i = 0; i < 40; ++i) {
    poison.push_back({SimTime{static_cast<std::int64_t>(i) * 30},
                      i % 5 == 0 ? 100 : static_cast<std::int32_t>(i % 6)});
  }
  const std::vector<LogView> poison_views{poison};
  EXPECT_THROW(detector.adapt(poison_views, 6), nfv::util::CheckError);
  for (const ml::Param* param : detector.model().params()) {
    EXPECT_FALSE(param->frozen) << param->name;
  }

  // The detector is still fully trainable and scorable afterwards.
  detector.update(views, 6);
  const std::vector<ScoredEvent> scored = detector.score(train, 6);
  EXPECT_EQ(scored.size(), train.size() - config.window);
}

// Satellite: persistent-Adam moment state must survive the frozen ->
// unfrozen transitions of fit -> adapt -> update (deterministically), and
// must actually change the trajectory versus fresh-optimizer rounds.
TEST(ContinualLearningAdapt, PersistentOptimizerSurvivesFitAdaptUpdate) {
  const auto run = [](bool persistent) {
    LstmDetectorConfig config;
    config.window = 3;
    config.embed_dim = 4;
    config.hidden = 4;
    config.initial_epochs = 1;
    config.update_epochs = 1;
    config.adapt_epochs = 1;
    config.oversample = false;
    config.persistent_optimizer = persistent;
    config.seed = 42;
    LstmDetector detector(config);
    std::vector<ParsedLog> a, b;
    for (std::size_t i = 0; i < 150; ++i) {
      a.push_back({SimTime{static_cast<std::int64_t>(i) * 30},
                   static_cast<std::int32_t>(i % 6)});
      b.push_back({SimTime{static_cast<std::int64_t>(i) * 30},
                   static_cast<std::int32_t>(i % 8)});
    }
    const std::vector<LogView> views_a{a};
    const std::vector<LogView> views_b{b};
    detector.fit(views_a, 6);
    detector.adapt(views_b, 8);  // freeze -> train -> unfreeze, vocab grows
    detector.update(views_b, 8);
    for (const ml::Param* param : detector.model().params()) {
      EXPECT_FALSE(param->frozen) << param->name;
    }
    std::ostringstream os;
    detector.save(os);
    return os.str();
  };
  const std::string persistent_once = run(true);
  // Deterministic: the whole fit/adapt/update chain with one live Adam
  // reproduces byte-for-byte.
  EXPECT_EQ(persistent_once, run(true));
  // And the carried moment state is real: fresh-per-round optimizers land
  // on different weights.
  EXPECT_NE(persistent_once, run(false));
}

}  // namespace
}  // namespace nfv::core
