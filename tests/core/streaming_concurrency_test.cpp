// The StreamMonitor concurrency contract (src/core/streaming.h): many
// per-vPE monitors may score against ONE shared detector from different
// threads, because AnomalyDetector::score() is const with no hidden
// mutation. This test runs N monitors over one shared LstmDetector from
// worker threads — interleaved by the scheduler — and asserts that every
// per-line score and every warning matches a single-threaded replay.
// Under -DNFVPRED_SANITIZE=thread it also proves the scoring path free of
// data races.
#include "core/streaming.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/lstm_detector.h"
#include "logproc/signature_tree.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace nfv::core {
namespace {

using logproc::ParsedLog;
using logproc::SignatureTree;
using nfv::util::SimTime;

constexpr std::size_t kVpes = 4;
constexpr std::size_t kVocab = 10;     // shapes 8 and 9 never seen in training
constexpr std::size_t kTrainLen = 500;
constexpr std::size_t kTestLen = 300;
constexpr std::int64_t kStepSeconds = 30;

std::string make_line(std::size_t shape, std::size_t salt) {
  // Distinct head token per shape → distinct template; the trailing salt
  // becomes a wildcard position inside the template.
  return "proc" + std::to_string(shape) + " event code " +
         std::to_string(salt);
}

/// Prime a tree with every shape in canonical order so all trees assign
/// identical template ids.
void prime_tree(SignatureTree& tree) {
  for (std::size_t shape = 0; shape < kVocab; ++shape) {
    tree.learn(make_line(shape, 0));
  }
}

std::size_t train_shape(std::size_t vpe, std::size_t i) {
  return (i * 7 + vpe * 3 + i / 31) % 8;  // only shapes 0..7 in training
}

std::size_t test_shape(std::size_t vpe, std::size_t i) {
  // Inject pairs of never-seen shapes — adjacent anomalies that must form
  // ≥2-within-2-minutes warning clusters.
  if (i % 97 == 50 || i % 97 == 51) return 8 + (vpe % 2);
  return train_shape(vpe, i);
}

struct Replay {
  std::vector<double> scores;
  std::vector<StreamWarning> warnings;
};

Replay replay_stream(std::size_t vpe, const AnomalyDetector& detector,
                     double threshold) {
  Replay out;
  SignatureTree tree;  // per-monitor: ingest() mutates it (online mining)
  prime_tree(tree);
  StreamMonitorConfig config;
  config.threshold = threshold;
  config.window = 4;
  StreamMonitor monitor(
      static_cast<std::int32_t>(vpe), &detector, &tree, config,
      [&out](const StreamWarning& warning) { out.warnings.push_back(warning); });
  for (std::size_t i = 0; i < kTestLen; ++i) {
    const SimTime time{static_cast<std::int64_t>(i) * kStepSeconds};
    out.scores.push_back(
        monitor.ingest(time, make_line(test_shape(vpe, i), i)));
  }
  return out;
}

TEST(StreamingConcurrencyTest, ParallelMonitorsMatchSerialReplay) {
  // --- Train one detector, shared (read-only) by all monitors. ---
  SignatureTree train_tree;
  prime_tree(train_tree);
  std::vector<std::vector<ParsedLog>> train_streams(kVpes);
  for (std::size_t v = 0; v < kVpes; ++v) {
    for (std::size_t i = 0; i < kTrainLen; ++i) {
      ParsedLog log;
      log.time = SimTime{static_cast<std::int64_t>(i) * kStepSeconds};
      log.template_id = train_tree.learn(make_line(train_shape(v, i), i));
      train_streams[v].push_back(log);
    }
  }
  LstmDetectorConfig config;
  config.window = 4;
  config.embed_dim = 8;
  config.hidden = 8;
  config.initial_epochs = 2;
  config.max_train_windows = 1500;
  config.oversample = false;
  LstmDetector detector(config);
  std::vector<LogView> views(train_streams.begin(), train_streams.end());
  detector.fit(views, train_tree.size());

  // Operating threshold: high quantile of training scores.
  std::vector<double> train_scores;
  for (const auto& stream : train_streams) {
    for (const ScoredEvent& event :
         detector.score(stream, train_tree.size())) {
      train_scores.push_back(event.score);
    }
  }
  ASSERT_FALSE(train_scores.empty());
  const double threshold = nfv::util::quantile(train_scores, 0.995);

  // --- Single-threaded reference replay. ---
  std::vector<Replay> serial(kVpes);
  for (std::size_t v = 0; v < kVpes; ++v) {
    serial[v] = replay_stream(v, detector, threshold);
  }
  // The injected unseen templates must actually fire warnings, otherwise
  // the comparison below is vacuous.
  for (std::size_t v = 0; v < kVpes; ++v) {
    ASSERT_FALSE(serial[v].warnings.empty()) << "vpe " << v;
  }

  // --- Concurrent run: one monitor per worker thread, shared detector,
  // ingestion interleaved by the scheduler. ---
  nfv::util::ThreadPool pool(kVpes);
  std::vector<Replay> parallel(kVpes);
  pool.parallel_for(0, kVpes, [&](std::size_t v) {
    parallel[v] = replay_stream(v, detector, threshold);
  });

  for (std::size_t v = 0; v < kVpes; ++v) {
    ASSERT_EQ(serial[v].scores.size(), parallel[v].scores.size());
    for (std::size_t i = 0; i < serial[v].scores.size(); ++i) {
      ASSERT_EQ(serial[v].scores[i], parallel[v].scores[i])
          << "vpe " << v << " line " << i;
    }
    ASSERT_EQ(serial[v].warnings.size(), parallel[v].warnings.size())
        << "vpe " << v;
    for (std::size_t w = 0; w < serial[v].warnings.size(); ++w) {
      const StreamWarning& sw = serial[v].warnings[w];
      const StreamWarning& pw = parallel[v].warnings[w];
      EXPECT_EQ(sw.vpe, pw.vpe);
      EXPECT_EQ(sw.time.seconds, pw.time.seconds);
      EXPECT_EQ(sw.anomaly_count, pw.anomaly_count);
      EXPECT_EQ(sw.peak_score, pw.peak_score);
      EXPECT_EQ(sw.trigger_template, pw.trigger_template);
    }
  }
}

}  // namespace
}  // namespace nfv::core
