#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nfv::core {
namespace {

using nfv::util::Duration;
using nfv::util::SimTime;
using simnet::Ticket;
using simnet::TicketCategory;

TicketDetection make_detection(TicketCategory category, bool before,
                               std::int64_t lead_s, bool after,
                               std::int64_t delay_s,
                               std::int64_t id = 0) {
  TicketDetection d;
  d.ticket_id = id;
  d.category = category;
  d.detected = before || after;
  d.detected_before = before;
  d.detected_after = after;
  d.best_lead = Duration::of_seconds(lead_s);
  d.first_error_delay = Duration::of_seconds(delay_s);
  return d;
}

TEST(ComputePrf, BasicCounts) {
  MappingResult mapping;
  mapping.early_warnings = 6;
  mapping.errors = 2;
  mapping.false_alarms = 2;
  mapping.tickets.push_back(
      make_detection(TicketCategory::kCircuit, true, 600, false, 0, 1));
  mapping.tickets.push_back(
      make_detection(TicketCategory::kSoftware, false, 0, false, 0, 2));
  mapping.tickets.push_back(  // maintenance excluded from recall
      make_detection(TicketCategory::kMaintenance, false, 0, true, 10, 3));
  const PrfMetrics prf = compute_prf(mapping);
  EXPECT_DOUBLE_EQ(prf.precision, 0.8);
  EXPECT_DOUBLE_EQ(prf.recall, 0.5);
  EXPECT_EQ(prf.tickets_total, 2u);
  EXPECT_EQ(prf.tickets_detected, 1u);
  EXPECT_NEAR(prf.f_measure, 2 * 0.8 * 0.5 / 1.3, 1e-12);
}

TEST(ComputePrf, EmptyMappingAllZero) {
  const PrfMetrics prf = compute_prf(MappingResult{});
  EXPECT_DOUBLE_EQ(prf.precision, 0.0);
  EXPECT_DOUBLE_EQ(prf.recall, 0.0);
  EXPECT_DOUBLE_EQ(prf.f_measure, 0.0);
}

TEST(PrecisionRecallCurve, SweepIsWellFormed) {
  // One vPE, two tickets. Ticket A's warning burst scores 10, ticket B's
  // scores 6, a benign burst scores 4. Sweeping the threshold walks
  // through three regimes:
  //   t ≤ 4:      recall 1,   precision 2/3 (benign burst fires too)
  //   4 < t ≤ 6:  recall 1,   precision 1
  //   6 < t ≤ 10: recall 1/2, precision 1
  VpeScoredStream stream;
  stream.vpe = 0;
  for (int i = 0; i < 2; ++i) {
    Ticket ticket;
    ticket.ticket_id = i + 1;
    ticket.vpe = 0;
    ticket.category = TicketCategory::kCircuit;
    ticket.report = SimTime{500000 + i * 1000000};
    ticket.repair_finish = SimTime{600000 + i * 1000000};
    stream.tickets.push_back(ticket);
  }
  stream.events.push_back({SimTime{499000}, 10.0});
  stream.events.push_back({SimTime{499030}, 10.0});
  stream.events.push_back({SimTime{1499000}, 6.0});
  stream.events.push_back({SimTime{1499030}, 6.0});
  stream.events.push_back({SimTime{100000}, 4.0});
  stream.events.push_back({SimTime{100040}, 4.0});
  for (int i = 0; i < 50; ++i) {  // isolated background noise
    stream.events.push_back({SimTime{200000 + i * 10000}, 1.0});
  }

  MappingConfig config;
  const std::vector<VpeScoredStream> streams{stream};
  const auto curve = precision_recall_curve(streams, config, 10.0, 30);
  ASSERT_GE(curve.size(), 3u);
  bool saw_perfect = false;
  bool saw_two_thirds = false;
  bool saw_half_recall = false;
  for (const PrcPoint& point : curve) {
    EXPECT_GE(point.precision, 0.0);
    EXPECT_LE(point.precision, 1.0);
    EXPECT_GE(point.recall, 0.0);
    EXPECT_LE(point.recall, 1.0);
    if (point.precision == 1.0 && point.recall == 1.0) saw_perfect = true;
    if (std::abs(point.precision - 2.0 / 3.0) < 1e-9) saw_two_thirds = true;
    if (point.recall == 0.5) saw_half_recall = true;
  }
  EXPECT_TRUE(saw_perfect);
  EXPECT_TRUE(saw_two_thirds);
  EXPECT_TRUE(saw_half_recall);

  const PrcPoint best = best_f_point(curve);
  EXPECT_DOUBLE_EQ(best.precision, 1.0);
  EXPECT_DOUBLE_EQ(best.recall, 1.0);
  EXPECT_GT(auc_pr(curve), 0.4);
}

TEST(PrecisionRecallCurve, EmptyStreams) {
  MappingConfig config;
  const std::vector<VpeScoredStream> streams;
  EXPECT_TRUE(precision_recall_curve(streams, config, 1.0).empty());
}

TEST(AucPr, TrapezoidArea) {
  std::vector<PrcPoint> curve(2);
  curve[0].recall = 0.0;
  curve[0].precision = 1.0;
  curve[1].recall = 1.0;
  curve[1].precision = 0.5;
  EXPECT_DOUBLE_EQ(auc_pr(curve), 0.75);
  EXPECT_DOUBLE_EQ(auc_pr(std::vector<PrcPoint>{}), 0.0);
}

TEST(DetectionRates, CumulativeColumns) {
  std::vector<TicketDetection> detections;
  // Circuit: detected 20 min before.
  detections.push_back(
      make_detection(TicketCategory::kCircuit, true, 1200, false, 0, 1));
  // Circuit: detected 7 min before.
  detections.push_back(
      make_detection(TicketCategory::kCircuit, true, 420, false, 0, 2));
  // Circuit: detected 4 min *after*.
  detections.push_back(
      make_detection(TicketCategory::kCircuit, false, 0, true, 240, 3));
  // Circuit: detected 10 min after.
  detections.push_back(
      make_detection(TicketCategory::kCircuit, false, 0, true, 600, 4));
  // Circuit: never detected.
  detections.push_back(
      make_detection(TicketCategory::kCircuit, false, 0, false, 0, 5));

  const auto rows = detection_rates_by_category(detections);
  const DetectionRateRow* circuit = nullptr;
  for (const auto& row : rows) {
    if (row.category == TicketCategory::kCircuit) circuit = &row;
  }
  ASSERT_NE(circuit, nullptr);
  EXPECT_EQ(circuit->ticket_count, 5u);
  EXPECT_DOUBLE_EQ(circuit->rate[0], 0.2);  // ≥15 min before
  EXPECT_DOUBLE_EQ(circuit->rate[1], 0.4);  // ≥5 min before
  EXPECT_DOUBLE_EQ(circuit->rate[2], 0.4);  // before report
  EXPECT_DOUBLE_EQ(circuit->rate[3], 0.6);  // within +5 min
  EXPECT_DOUBLE_EQ(circuit->rate[4], 0.8);  // within +15 min
  // Monotone non-decreasing across the columns.
  for (std::size_t i = 1; i < circuit->rate.size(); ++i) {
    EXPECT_GE(circuit->rate[i], circuit->rate[i - 1]);
  }
}

TEST(DetectionRates, EmptyCategoryIsZero) {
  const auto rows = detection_rates_by_category({});
  for (const auto& row : rows) {
    EXPECT_EQ(row.ticket_count, 0u);
    for (double r : row.rate) EXPECT_DOUBLE_EQ(r, 0.0);
  }
}

TEST(OverallDetectionRate, SkipsMaintenance) {
  std::vector<TicketDetection> detections;
  detections.push_back(
      make_detection(TicketCategory::kCircuit, true, 1200, false, 0, 1));
  detections.push_back(
      make_detection(TicketCategory::kMaintenance, true, 1200, false, 0, 2));
  const DetectionRateRow row = overall_detection_rate(detections);
  EXPECT_EQ(row.ticket_count, 1u);
  EXPECT_DOUBLE_EQ(row.rate[2], 1.0);
}

}  // namespace
}  // namespace nfv::core
