// Detector-level contracts of the int8 quantized scoring tier.
//
// What must hold when LstmDetector scores through the packed int8
// kernels instead of fp32 GEMMs:
//   - DeepLog-style top-k decisions agree with fp32 on predictable
//     traffic (the statistical 99.5% gate over a noisy corpus runs in
//     bench_scoring_throughput --smoke; here the corpus is margin-y and
//     agreement must be near-total);
//   - the warning stream of the async ingest runtime is unchanged by
//     quantization when anomalies have real margin — the operational
//     parity the paper's deployment story needs;
//   - quantize → save → load reproduces the quantized scores bit-exactly
//     (the sidecar is persisted, not re-derived from fp32 on load);
//   - set_quantized() is a reversible toggle: dropping the sidecar
//     restores bit-exact fp32 scoring;
//   - AsyncIngest::stats_json() reports the per-detector model memory so
//     the fleet-soak bytes/vPE axis is observable at runtime.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/async_ingest.h"
#include "core/lstm_detector.h"
#include "logproc/signature_tree.h"
#include "util/json.h"

namespace nfv::core {
namespace {

using logproc::ParsedLog;
using logproc::SignatureTree;
using nfv::util::SimTime;

constexpr std::size_t kVpes = 3;
constexpr std::size_t kTrainShapes = 8;  // shapes 8/9 are never trained on
constexpr std::size_t kTrainLen = 400;
constexpr std::size_t kTestLen = 200;
constexpr std::int64_t kStepSeconds = 30;

// Letters-only head tokens so the tokenizer's digit masking cannot merge
// two shapes into one template (same trick as async_ingest_test.cpp).
std::string make_line(std::size_t shape, std::size_t salt) {
  static const char* kShapeNames[] = {"alpha", "bravo", "charlie", "delta",
                                      "echo",  "golf",  "hotel",   "kilo",
                                      "oscar", "tango"};
  return std::string(kShapeNames[shape]) + " event code " +
         std::to_string(salt);
}

void prime_tree(SignatureTree& tree) {
  for (std::size_t shape = 0; shape < kTrainShapes; ++shape) {
    tree.learn(make_line(shape, 0));
  }
}

std::size_t train_shape(std::size_t vpe, std::size_t i) {
  return (i * 7 + vpe * 3 + i / 31) % kTrainShapes;
}

SimTime line_time(std::size_t i) {
  return SimTime{static_cast<std::int64_t>(i) * kStepSeconds};
}

std::vector<std::vector<ParsedLog>> train_streams() {
  SignatureTree tree;
  prime_tree(tree);
  std::vector<std::vector<ParsedLog>> streams(kVpes);
  for (std::size_t v = 0; v < kVpes; ++v) {
    for (std::size_t i = 0; i < kTrainLen; ++i) {
      ParsedLog log;
      log.time = line_time(i);
      log.template_id = tree.learn(make_line(train_shape(v, i), i));
      streams[v].push_back(log);
    }
  }
  return streams;
}

LstmDetector train_detector(LstmScoreMode mode, bool quantize_config) {
  LstmDetectorConfig config;
  config.window = 4;
  config.embed_dim = 8;
  config.hidden = 8;
  config.initial_epochs = 2;
  config.max_train_windows = 1200;
  config.oversample = false;
  config.score_mode = mode;
  config.quantize = quantize_config;
  LstmDetector detector(config);
  const auto streams = train_streams();
  std::vector<LogView> views(streams.begin(), streams.end());
  detector.fit(views, kTrainShapes);
  return detector;
}

std::vector<double> flat_scores(const LstmDetector& detector,
                                const std::vector<std::vector<ParsedLog>>&
                                    streams) {
  std::vector<LogView> views(streams.begin(), streams.end());
  std::vector<double> out;
  for (const auto& events :
       detector.score_streams(views, kTrainShapes)) {
    for (const ScoredEvent& event : events) out.push_back(event.score);
  }
  return out;
}

TEST(QuantScoring, TopKDecisionsAgreeWithFp32OnPredictableTraffic) {
  const LstmDetector fp32 =
      train_detector(LstmScoreMode::kTargetRank, false);
  LstmDetector quant(fp32);  // the swap_detector-style quantized shadow
  quant.set_quantized(true);
  ASSERT_TRUE(quant.model_memory().quantized);

  // Fresh streams from the trained motif family: the model is confident
  // here, so the DeepLog decision (observed rank <= k) has margin and
  // must survive quantization on essentially every window. The 99.5%
  // statistical gate over a *noisy* corpus is bench_scoring_throughput
  // --smoke; this is the unit-sized margin case.
  SignatureTree tree;
  prime_tree(tree);
  std::vector<std::vector<ParsedLog>> streams(kVpes);
  for (std::size_t v = 0; v < kVpes; ++v) {
    for (std::size_t i = 0; i < kTestLen; ++i) {
      streams[v].push_back(
          {line_time(i),
           tree.learn(make_line(train_shape(v + 1, i), i))});
    }
  }
  const std::vector<double> ranks_fp32 = flat_scores(fp32, streams);
  const std::vector<double> ranks_quant = flat_scores(quant, streams);
  ASSERT_EQ(ranks_fp32.size(), ranks_quant.size());
  ASSERT_FALSE(ranks_fp32.empty());

  const double k = 3.0;  // top-k rule at k < vocab/2
  std::size_t agree = 0;
  for (std::size_t i = 0; i < ranks_fp32.size(); ++i) {
    agree += (ranks_fp32[i] <= k) == (ranks_quant[i] <= k) ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(agree) /
                static_cast<double>(ranks_fp32.size()),
            0.995);
}

TEST(QuantScoring, AsyncIngestWarningStreamMatchesFp32) {
  const LstmDetector fp32 =
      train_detector(LstmScoreMode::kLogLikelihood, false);
  LstmDetector quant(fp32);
  quant.set_quantized(true);

  // Threshold halfway between the worst normal score of EITHER tier and
  // the unknown-template score: anomaly decisions then differ only if
  // quantization error eats the whole margin — which is exactly the
  // regression this test guards.
  const auto normal = train_streams();
  double normal_max = 0.0;
  for (const double s : flat_scores(fp32, normal)) {
    normal_max = std::max(normal_max, s);
  }
  for (const double s : flat_scores(quant, normal)) {
    normal_max = std::max(normal_max, s);
  }
  const double unknown = fp32.config().unknown_score;
  ASSERT_LT(normal_max, unknown);
  StreamMonitorConfig monitor;
  monitor.threshold = (normal_max + unknown) / 2.0;
  monitor.window = fp32.config().window;

  // Identical submissions to two runtimes that differ only in the
  // detector tier. Bursts of never-trained shapes 8/9 form the warning
  // clusters (>= 2 anomalies within 2 minutes).
  auto run = [&](const LstmDetector& detector) {
    AsyncIngestConfig config;
    config.workers = 2;
    AsyncIngest ingest(&detector, config);
    for (std::size_t v = 0; v < kVpes; ++v) {
      prime_tree(ingest.mutable_tree(ingest.add_shard(
          static_cast<std::int32_t>(v), monitor)));
    }
    ingest.start();
    for (std::size_t i = 0; i < kTestLen; ++i) {
      for (std::size_t v = 0; v < kVpes; ++v) {
        const std::size_t shape = (i % 61 == 20 || i % 61 == 21)
                                      ? 8 + (v % 2)
                                      : train_shape(v, i);
        ingest.submit(v, line_time(i), make_line(shape, i));
      }
    }
    ingest.flush();
    ingest.stop();
    std::vector<StreamWarning> warnings;
    ingest.drain_warnings(warnings);
    return merge_warnings_by_vpe(std::move(warnings));
  };

  const std::vector<StreamWarning> from_fp32 = run(fp32);
  const std::vector<StreamWarning> from_quant = run(quant);
  ASSERT_FALSE(from_fp32.empty());
  ASSERT_EQ(from_fp32.size(), from_quant.size());
  for (std::size_t i = 0; i < from_fp32.size(); ++i) {
    EXPECT_EQ(from_fp32[i].vpe, from_quant[i].vpe) << "warning " << i;
    EXPECT_EQ(from_fp32[i].time.seconds, from_quant[i].time.seconds)
        << "warning " << i;
    EXPECT_EQ(from_fp32[i].anomaly_count, from_quant[i].anomaly_count)
        << "warning " << i;
    EXPECT_EQ(from_fp32[i].trigger_template, from_quant[i].trigger_template)
        << "warning " << i;
    // Cluster members are unknown-template events; that score bypasses
    // the model, so the peaks agree exactly across tiers.
    EXPECT_EQ(from_fp32[i].peak_score, from_quant[i].peak_score)
        << "warning " << i;
  }
}

TEST(QuantScoring, SaveLoadReproducesQuantizedScoresExactly) {
  const LstmDetector detector =
      train_detector(LstmScoreMode::kLogLikelihood, true);
  ASSERT_TRUE(detector.model_memory().quantized);

  const auto streams = train_streams();
  const std::vector<double> before = flat_scores(detector, streams);

  std::stringstream buffer;
  detector.save(buffer);
  const LstmDetector loaded = LstmDetector::load(buffer);
  EXPECT_TRUE(loaded.config().quantize);
  const ModelMemoryStats memory = loaded.model_memory();
  EXPECT_TRUE(memory.quantized);
  EXPECT_EQ(memory.weight_bytes_quantized,
            detector.model_memory().weight_bytes_quantized);
  EXPECT_EQ(memory.weight_bytes_fp32,
            detector.model_memory().weight_bytes_fp32);

  // The sidecar travels with the model: loaded scores are bit-identical,
  // not merely close (a re-calibration from perturbed fp32 weights would
  // betray itself here).
  EXPECT_EQ(flat_scores(loaded, streams), before);
}

TEST(QuantScoring, SetQuantizedTogglesAndRestoresFp32Exactly) {
  LstmDetector detector =
      train_detector(LstmScoreMode::kLogLikelihood, false);
  const ModelMemoryStats fp32_memory = detector.model_memory();
  EXPECT_FALSE(fp32_memory.quantized);
  EXPECT_GT(fp32_memory.weight_bytes_fp32, 0u);
  EXPECT_EQ(fp32_memory.weight_bytes_quantized, 0u);

  const auto streams = train_streams();
  const std::vector<double> fp32_scores = flat_scores(detector, streams);

  detector.set_quantized(true);
  const ModelMemoryStats quant_memory = detector.model_memory();
  EXPECT_TRUE(quant_memory.quantized);
  EXPECT_TRUE(detector.config().quantize);
  EXPECT_EQ(quant_memory.weight_bytes_fp32, fp32_memory.weight_bytes_fp32);
  EXPECT_GT(quant_memory.weight_bytes_quantized, 0u);
  // Strictly smaller even at this toy size, where k-padding and the
  // per-channel scale/col-sum overhead blunt the ratio; the ~4x shrink at
  // realistic model sizes is gated by bench_scoring_throughput
  // (BENCH_scoring.json: weight_bytes_ratio).
  EXPECT_LT(quant_memory.weight_bytes_quantized,
            fp32_memory.weight_bytes_fp32 / 2);

  detector.set_quantized(false);
  EXPECT_FALSE(detector.model_memory().quantized);
  EXPECT_FALSE(detector.config().quantize);
  EXPECT_EQ(flat_scores(detector, streams), fp32_scores);
}

TEST(QuantScoring, StatsJsonReportsModelMemoryPerShard) {
  const LstmDetector detector =
      train_detector(LstmScoreMode::kLogLikelihood, true);
  const ModelMemoryStats memory = detector.model_memory();

  AsyncIngest ingest(&detector);
  StreamMonitorConfig monitor;
  monitor.window = detector.config().window;
  ingest.add_shard(7, monitor);
  ingest.add_shard(9, monitor);

  // snapshot()/stats_json() work before start(); model memory must be
  // present in every shard snapshot.
  std::string error;
  const auto doc = nfv::util::json_parse(ingest.stats_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const nfv::util::JsonValue* shards = doc->find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->items.size(), 2u);
  for (const nfv::util::JsonValue& shard : shards->items) {
    const nfv::util::JsonValue* model = shard.find("model");
    ASSERT_NE(model, nullptr);
    const nfv::util::JsonValue* fp32_bytes =
        model->find("weight_bytes_fp32");
    const nfv::util::JsonValue* quant_bytes =
        model->find("weight_bytes_quantized");
    const nfv::util::JsonValue* quantized = model->find("quantized");
    ASSERT_NE(fp32_bytes, nullptr);
    ASSERT_NE(quant_bytes, nullptr);
    ASSERT_NE(quantized, nullptr);
    EXPECT_EQ(fp32_bytes->number,
              static_cast<double>(memory.weight_bytes_fp32));
    EXPECT_EQ(quant_bytes->number,
              static_cast<double>(memory.weight_bytes_quantized));
    EXPECT_TRUE(quantized->boolean);
  }
}

}  // namespace
}  // namespace nfv::core
