// Async streaming ingest runtime: the per-vPE warning stream produced by
// AsyncIngest must be byte-for-byte the serial StreamMonitor replay for
// ANY worker count / flush batch / deadline (deterministic mode), lines
// must survive tiny-queue backpressure losslessly, multiple producers may
// feed the runtime concurrently, and the epoch-barrier detector swap must
// match a serial swap at the same stream position. Runs under TSan via
// tools/ci.sh (ctest -L concurrency).
#include "core/async_ingest.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/lstm_detector.h"
#include "logproc/signature_tree.h"
#include "util/stats.h"

namespace nfv::core {
namespace {

using logproc::ParsedLog;
using logproc::SignatureTree;
using nfv::util::SimTime;

constexpr std::size_t kVpes = 4;
constexpr std::size_t kTrainShapes = 8;  // shapes 8 and 9 are anomalies
constexpr std::size_t kTrainLen = 400;
constexpr std::size_t kTestLen = 240;
constexpr std::int64_t kStepSeconds = 30;

// Alphabetic head tokens: digit-bearing tokens are masked to wildcards by
// the tokenizer, so "procN" heads would all merge into one template. A
// distinct letters-only head per shape guarantees one template per shape
// (the tree leaves are keyed by the first stable token).
std::string make_line(std::size_t shape, std::size_t salt) {
  static const char* kShapeNames[] = {"alpha",   "bravo", "charlie", "delta",
                                      "echo",    "golf",  "hotel",   "kilo",
                                      "oscar",   "tango"};
  return std::string(kShapeNames[shape]) + " event code " +
         std::to_string(salt);
}

/// Prime only the TRAINING shapes: the anomaly shapes stay unknown and
/// are mined online during the test, landing on ids >= the model vocab —
/// the deterministic unknown-template score path.
void prime_tree(SignatureTree& tree) {
  for (std::size_t shape = 0; shape < kTrainShapes; ++shape) {
    tree.learn(make_line(shape, 0));
  }
}

std::size_t train_shape(std::size_t vpe, std::size_t i) {
  return (i * 7 + vpe * 3 + i / 31) % 8;  // only shapes 0..7 in training
}

std::size_t test_shape(std::size_t vpe, std::size_t i) {
  // Pairs of never-seen shapes → ≥2-within-2-minutes warning clusters.
  if (i % 83 == 40 || i % 83 == 41) return 8 + (vpe % 2);
  return train_shape(vpe, i);
}

SimTime line_time(std::size_t i) {
  return SimTime{static_cast<std::int64_t>(i) * kStepSeconds};
}

LstmDetector train_detector(std::uint64_t seed) {
  SignatureTree train_tree;
  prime_tree(train_tree);
  std::vector<std::vector<ParsedLog>> train_streams(kVpes);
  for (std::size_t v = 0; v < kVpes; ++v) {
    for (std::size_t i = 0; i < kTrainLen; ++i) {
      ParsedLog log;
      log.time = line_time(i);
      log.template_id = train_tree.learn(make_line(train_shape(v, i), i));
      train_streams[v].push_back(log);
    }
  }
  LstmDetectorConfig config;
  config.window = 4;
  config.embed_dim = 8;
  config.hidden = 8;
  config.initial_epochs = 2;
  config.max_train_windows = 1200;
  config.oversample = false;
  config.seed = seed;
  LstmDetector detector(config);
  std::vector<LogView> views(train_streams.begin(), train_streams.end());
  detector.fit(views, train_tree.size());
  return detector;
}

double operating_threshold(const LstmDetector& detector) {
  std::vector<double> scores;
  for (std::size_t v = 0; v < kVpes; ++v) {
    std::vector<ParsedLog> stream;
    SignatureTree tree;
    prime_tree(tree);
    for (std::size_t i = 0; i < kTrainLen; ++i) {
      stream.push_back(
          {line_time(i), tree.learn(make_line(train_shape(v, i), i))});
    }
    for (const ScoredEvent& event : detector.score(stream, tree.size())) {
      scores.push_back(event.score);
    }
  }
  return nfv::util::quantile(scores, 0.995);
}

StreamMonitorConfig monitor_config(double threshold) {
  StreamMonitorConfig config;
  config.threshold = threshold;
  config.window = 4;
  return config;
}

/// Serial reference: one StreamMonitor per vPE, raw lines in order, with
/// an optional detector swap after `swap_at` lines.
std::vector<std::vector<StreamWarning>> serial_replay(
    const AnomalyDetector& detector, double threshold,
    const AnomalyDetector* swap_to = nullptr, std::size_t swap_at = 0) {
  std::vector<std::vector<StreamWarning>> warnings(kVpes);
  for (std::size_t v = 0; v < kVpes; ++v) {
    SignatureTree tree;
    prime_tree(tree);
    StreamMonitor monitor(static_cast<std::int32_t>(v), &detector, &tree,
                          monitor_config(threshold),
                          [&warnings, v](const StreamWarning& warning) {
                            warnings[v].push_back(warning);
                          });
    for (std::size_t i = 0; i < kTestLen; ++i) {
      if (swap_to != nullptr && i == swap_at) monitor.set_detector(swap_to);
      monitor.ingest(line_time(i), make_line(test_shape(v, i), i));
    }
  }
  return warnings;
}

void expect_same_warnings(
    const std::vector<std::vector<StreamWarning>>& serial,
    const std::vector<StreamWarning>& drained, const std::string& label) {
  const std::vector<StreamWarning> merged =
      merge_warnings_by_vpe(drained);  // stable: per-vPE order untouched
  std::size_t serial_total = 0;
  for (const auto& per_vpe : serial) serial_total += per_vpe.size();
  ASSERT_EQ(merged.size(), serial_total) << label;
  std::size_t at = 0;
  for (std::size_t v = 0; v < serial.size(); ++v) {
    for (std::size_t w = 0; w < serial[v].size(); ++w, ++at) {
      const StreamWarning& expected = serial[v][w];
      const StreamWarning& actual = merged[at];
      ASSERT_EQ(actual.vpe, expected.vpe) << label;
      ASSERT_EQ(actual.time.seconds, expected.time.seconds)
          << label << " vpe " << v << " warning " << w;
      ASSERT_EQ(actual.anomaly_count, expected.anomaly_count)
          << label << " vpe " << v << " warning " << w;
      ASSERT_EQ(actual.peak_score, expected.peak_score)
          << label << " vpe " << v << " warning " << w;
      ASSERT_EQ(actual.trigger_template, expected.trigger_template)
          << label << " vpe " << v << " warning " << w;
    }
  }
}

struct AsyncIngestTest : ::testing::Test {
  static const LstmDetector& detector() {
    static const LstmDetector d = train_detector(1234);
    return d;
  }
  static const LstmDetector& updated_detector() {
    static const LstmDetector d = train_detector(99);
    return d;
  }
  static double threshold() {
    static const double t = operating_threshold(detector());
    return t;
  }
};

TEST_F(AsyncIngestTest, WarningStreamDeterministicForAnyWorkerCount) {
  const auto serial = serial_replay(detector(), threshold());
  std::size_t serial_total = 0;
  for (const auto& per_vpe : serial) serial_total += per_vpe.size();
  ASSERT_GT(serial_total, 0u) << "vacuous comparison";

  struct Variant {
    std::size_t workers;
    std::size_t flush_batch;
    std::chrono::microseconds deadline;
    bool single_producer;
  };
  const std::vector<Variant> variants = {
      {1, 1, std::chrono::microseconds(0), true},
      {2, 32, std::chrono::microseconds(2000), false},
      {3, 7, std::chrono::microseconds(0), false},
      {4, 256, std::chrono::microseconds(500), true},
  };
  for (const Variant& variant : variants) {
    AsyncIngestConfig config;
    config.workers = variant.workers;
    config.flush_batch = variant.flush_batch;
    config.flush_deadline = variant.deadline;
    config.single_producer = variant.single_producer;
    config.queue_capacity = 64;
    AsyncIngest ingest(&detector(), config);
    for (std::size_t v = 0; v < kVpes; ++v) {
      const std::size_t shard = ingest.add_shard(
          static_cast<std::int32_t>(v), monitor_config(threshold()));
      ASSERT_EQ(shard, v);
      prime_tree(ingest.mutable_tree(shard));
    }
    ingest.start();
    // One producer, lines interleaved across vPEs in global arrival order
    // (per-vPE order is what determinism is defined over).
    for (std::size_t i = 0; i < kTestLen; ++i) {
      for (std::size_t v = 0; v < kVpes; ++v) {
        ingest.submit(v, line_time(i), make_line(test_shape(v, i), i));
      }
    }
    ingest.flush();
    ingest.stop();
    std::vector<StreamWarning> drained;
    ingest.drain_warnings(drained);
    const std::string label = "workers=" + std::to_string(variant.workers) +
                              " flush_batch=" +
                              std::to_string(variant.flush_batch);
    expect_same_warnings(serial, drained, label);
    const AsyncIngestStats stats = ingest.stats();
    EXPECT_EQ(stats.lines_submitted, kTestLen * kVpes) << label;
    EXPECT_EQ(stats.lines_scored, kTestLen * kVpes) << label;
  }
}

TEST_F(AsyncIngestTest, ConcurrentProducersPreservePerVpeDeterminism) {
  const auto serial = serial_replay(detector(), threshold());

  AsyncIngestConfig config;
  config.workers = 2;
  config.flush_batch = 16;
  config.queue_capacity = 32;
  AsyncIngest ingest(&detector(), config);
  for (std::size_t v = 0; v < kVpes; ++v) {
    prime_tree(ingest.mutable_tree(ingest.add_shard(
        static_cast<std::int32_t>(v), monitor_config(threshold()))));
  }
  ingest.start();

  // One producer thread per vPE: cross-vPE interleaving is scheduler
  // chaos, per-vPE submission order is fixed — which is all the
  // determinism contract needs.
  std::vector<std::thread> producers;
  for (std::size_t v = 0; v < kVpes; ++v) {
    producers.emplace_back([&ingest, v] {
      for (std::size_t i = 0; i < kTestLen; ++i) {
        ingest.submit(v, line_time(i), make_line(test_shape(v, i), i));
      }
    });
  }
  for (auto& producer : producers) producer.join();
  ingest.flush();
  ingest.stop();

  std::vector<StreamWarning> drained;
  ingest.drain_warnings(drained);
  expect_same_warnings(serial, drained, "multi-producer");
}

TEST_F(AsyncIngestTest, TinyQueueBackpressureLosesNothing) {
  const auto serial = serial_replay(detector(), threshold());

  AsyncIngestConfig config;
  config.workers = 1;
  config.queue_capacity = 2;  // constant backpressure
  config.flush_batch = 1024;  // flush only on queue-empty / deadline
  config.flush_deadline = std::chrono::microseconds(0);
  config.warning_capacity = 2;  // force the lossless warning spillover too
  AsyncIngest ingest(&detector(), config);
  for (std::size_t v = 0; v < kVpes; ++v) {
    prime_tree(ingest.mutable_tree(ingest.add_shard(
        static_cast<std::int32_t>(v), monitor_config(threshold()))));
  }
  ingest.start();

  // Mix non-blocking and blocking submission: a rejected try_submit falls
  // back to the blocking path, so every line still arrives, in order.
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < kTestLen; ++i) {
    for (std::size_t v = 0; v < kVpes; ++v) {
      if (!ingest.try_submit(v, line_time(i),
                             make_line(test_shape(v, i), i))) {
        ++rejected;
        ingest.submit(v, line_time(i), make_line(test_shape(v, i), i));
      }
    }
  }
  ingest.flush();
  const AsyncIngestStats stats = ingest.stats();
  EXPECT_EQ(stats.lines_submitted, kTestLen * kVpes);
  EXPECT_EQ(stats.lines_scored, kTestLen * kVpes);
  EXPECT_EQ(stats.rejected_submits, rejected);
  ingest.stop();

  std::vector<StreamWarning> drained;
  ingest.drain_warnings(drained);
  expect_same_warnings(serial, drained, "backpressure");
}

TEST_F(AsyncIngestTest, EpochBarrierDetectorSwapMatchesSerialSwap) {
  constexpr std::size_t kSwapAt = kTestLen / 2;
  const auto serial =
      serial_replay(detector(), threshold(), &updated_detector(), kSwapAt);

  AsyncIngestConfig config;
  config.workers = 3;
  config.flush_batch = 16;
  config.queue_capacity = 64;
  AsyncIngest ingest(&detector(), config);
  for (std::size_t v = 0; v < kVpes; ++v) {
    prime_tree(ingest.mutable_tree(ingest.add_shard(
        static_cast<std::int32_t>(v), monitor_config(threshold()))));
  }
  ingest.start();
  for (std::size_t i = 0; i < kTestLen; ++i) {
    if (i == kSwapAt) {
      // Quiesces every worker between micro-batches: all pre-swap lines
      // are scored by the old model, all post-swap lines by the new one —
      // exactly the serial set_detector at the same position.
      ingest.swap_detector(&updated_detector());
    }
    for (std::size_t v = 0; v < kVpes; ++v) {
      ingest.submit(v, line_time(i), make_line(test_shape(v, i), i));
    }
  }
  ingest.flush();
  ingest.stop();

  std::vector<StreamWarning> drained;
  ingest.drain_warnings(drained);
  expect_same_warnings(serial, drained, "detector swap");
}

TEST_F(AsyncIngestTest, PauseResumeMidStormKeepsWarningStreamIdentical) {
  const auto serial = serial_replay(detector(), threshold());

  AsyncIngestConfig config;
  config.workers = 2;
  config.flush_batch = 16;
  config.queue_capacity = 256;
  AsyncIngest ingest(&detector(), config);
  for (std::size_t v = 0; v < kVpes; ++v) {
    prime_tree(ingest.mutable_tree(ingest.add_shard(
        static_cast<std::int32_t>(v), monitor_config(threshold()))));
  }
  ingest.start();

  constexpr std::size_t kPauseAt = kTestLen / 2;
  for (std::size_t i = 0; i < kPauseAt; ++i) {
    for (std::size_t v = 0; v < kVpes; ++v) {
      ingest.submit(v, line_time(i), make_line(test_shape(v, i), i));
    }
  }
  // Pause two shards (one per worker) mid-storm and keep the firehose
  // running: their lines are parked in order, everyone else's flow. The
  // flush first pins the pause position — without it, first-half lines
  // still sitting in the queues would (correctly, but unpredictably for
  // the held-gauge assertions below) be parked too.
  ingest.flush();
  ingest.pause_shard(0);
  ingest.pause_shard(1);
  ingest.wait_commands();
  EXPECT_TRUE(ingest.shard_paused(0));
  EXPECT_TRUE(ingest.shard_paused(1));
  EXPECT_FALSE(ingest.shard_paused(2));

  for (std::size_t i = kPauseAt; i < kTestLen; ++i) {
    for (std::size_t v = 0; v < kVpes; ++v) {
      ingest.submit(v, line_time(i), make_line(test_shape(v, i), i));
    }
  }
  // flush() drains the queues, which parks paused shards' lines in their
  // hold buffers — observable in the snapshot's held gauge.
  ingest.flush();
  const RuntimeStatsSnapshot paused = ingest.snapshot();
  EXPECT_EQ(paused.shards[0].held, kTestLen - kPauseAt);
  EXPECT_EQ(paused.shards[1].held, kTestLen - kPauseAt);
  EXPECT_EQ(paused.shards[2].held, 0u);
  EXPECT_TRUE(paused.shards[0].paused);

  ingest.resume_shard(0);
  ingest.resume_shard(1);
  ingest.wait_commands();
  EXPECT_FALSE(ingest.shard_paused(0));
  EXPECT_FALSE(ingest.shard_paused(1));
  ingest.flush();
  const RuntimeStatsSnapshot resumed = ingest.snapshot();
  EXPECT_EQ(resumed.shards[0].held, 0u);
  EXPECT_EQ(resumed.totals.lines_scored, kTestLen * kVpes);
  ingest.stop();

  std::vector<StreamWarning> drained;
  ingest.drain_warnings(drained);
  expect_same_warnings(serial, drained, "pause-resume");
}

TEST_F(AsyncIngestTest, SwapDetectorWhileShardsPausedScoresHeldLinesWithNewModel) {
  constexpr std::size_t kSwapAt = kTestLen / 2;
  // Serial reference: detector swapped at the pause position — held lines
  // must be scored by the NEW model, exactly as if the swap happened
  // before they were ingested.
  const auto serial =
      serial_replay(detector(), threshold(), &updated_detector(), kSwapAt);

  AsyncIngestConfig config;
  config.workers = 3;
  config.flush_batch = 8;
  config.queue_capacity = 256;
  AsyncIngest ingest(&detector(), config);
  for (std::size_t v = 0; v < kVpes; ++v) {
    prime_tree(ingest.mutable_tree(ingest.add_shard(
        static_cast<std::int32_t>(v), monitor_config(threshold()))));
  }
  ingest.start();

  for (std::size_t i = 0; i < kSwapAt; ++i) {
    for (std::size_t v = 0; v < kVpes; ++v) {
      ingest.submit(v, line_time(i), make_line(test_shape(v, i), i));
    }
  }
  ingest.flush();  // old model has scored everything submitted so far
  for (std::size_t v = 0; v < kVpes; ++v) ingest.pause_shard(v);
  ingest.wait_commands();

  // Second half arrives while every shard is paused: all parked.
  for (std::size_t i = kSwapAt; i < kTestLen; ++i) {
    for (std::size_t v = 0; v < kVpes; ++v) {
      ingest.submit(v, line_time(i), make_line(test_shape(v, i), i));
    }
  }
  ingest.flush();  // drain queues into the hold buffers
  const RuntimeStatsSnapshot held = ingest.snapshot();
  for (std::size_t v = 0; v < kVpes; ++v) {
    EXPECT_EQ(held.shards[v].held, kTestLen - kSwapAt) << "shard " << v;
  }

  // Swap while paused: the epoch barrier still works (paused shards hold
  // their lines OUTSIDE the monitors, nothing is staged).
  ingest.swap_detector(&updated_detector());
  for (std::size_t v = 0; v < kVpes; ++v) ingest.resume_shard(v);
  ingest.wait_commands();
  ingest.flush();
  ingest.stop();

  std::vector<StreamWarning> drained;
  ingest.drain_warnings(drained);
  expect_same_warnings(serial, drained, "swap-while-paused");
  const AsyncIngestStats stats = ingest.stats();
  EXPECT_EQ(stats.lines_scored, kTestLen * kVpes);
}

TEST_F(AsyncIngestTest, StatsDumpRacesIngestFlushAndShutdownSafely) {
  AsyncIngestConfig config;
  config.workers = 2;
  config.flush_batch = 8;
  config.queue_capacity = 64;
  AsyncIngest ingest(&detector(), config);
  for (std::size_t v = 0; v < kVpes; ++v) {
    prime_tree(ingest.mutable_tree(ingest.add_shard(
        static_cast<std::int32_t>(v), monitor_config(threshold()))));
  }
  ingest.start();

  // Reader hammers the snapshot/JSON path concurrently with ingestion, a
  // detector swap, pause/resume AND stop() — the seqlock must hand back
  // epoch-consistent cuts throughout (TSan-checked via ctest -L
  // concurrency).
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const RuntimeStatsSnapshot snap = ingest.snapshot();
      for (const ShardStatsSnapshot& shard : snap.shards) {
        // Epoch consistency: a worker's published histogram only counts
        // lines that were already counted as ingested in the same cut.
        EXPECT_LE(shard.latency.total(), shard.lines)
            << "shard " << shard.shard;
      }
      EXPECT_FALSE(ingest.stats_json().empty());
    }
  });

  for (std::size_t i = 0; i < kTestLen; ++i) {
    if (i == kTestLen / 3) ingest.pause_shard(0);
    if (i == kTestLen / 2) {
      ingest.resume_shard(0);
      ingest.swap_detector(&updated_detector());
    }
    for (std::size_t v = 0; v < kVpes; ++v) {
      ingest.submit(v, line_time(i), make_line(test_shape(v, i), i));
    }
  }
  ingest.flush();
  ingest.stop();  // reader keeps snapshotting straight through this
  done.store(true, std::memory_order_release);
  reader.join();

  const RuntimeStatsSnapshot final_snap = ingest.snapshot();
  EXPECT_EQ(final_snap.totals.lines_submitted, kTestLen * kVpes);
  EXPECT_EQ(final_snap.totals.lines_scored, kTestLen * kVpes);
  std::uint64_t lines = 0;
  for (const ShardStatsSnapshot& shard : final_snap.shards) {
    EXPECT_FALSE(shard.paused);
    EXPECT_EQ(shard.held, 0u);
    lines += shard.lines;
  }
  EXPECT_EQ(lines, kTestLen * kVpes);
}

}  // namespace
}  // namespace nfv::core
