#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include <set>

namespace nfv::core {
namespace {

using nfv::util::Duration;
using nfv::util::SimTime;

struct PipelineFixture : ::testing::Test {
  static const simnet::FleetTrace& trace() {
    static const simnet::FleetTrace t =
        simnet::simulate_fleet(simnet::small_fleet_config(61));
    return t;
  }
  static const ParsedFleet& parsed() {
    static const ParsedFleet p = parse_fleet(trace());
    return p;
  }
  static LstmDetectorConfig fast_lstm() {
    LstmDetectorConfig config;
    config.initial_epochs = 2;
    config.update_epochs = 1;
    config.adapt_epochs = 2;
    config.max_train_windows = 1200;
    config.hidden = 16;
    config.oversample_rounds = 1;
    return config;
  }
};

TEST_F(PipelineFixture, EndToEndLstm) {
  PipelineOptions options;
  options.clustering.fixed_k = 2;
  options.lstm_config = fast_lstm();
  const PipelineResult result = run_pipeline(trace(), parsed(), options);

  EXPECT_EQ(result.clustering.num_groups, 2u);
  ASSERT_EQ(result.monthly.size(),
            static_cast<std::size_t>(trace().config.months - 1));
  // Scored streams exist for every vPE across the eval span.
  ASSERT_EQ(result.streams.size(),
            static_cast<std::size_t>(trace().num_vpes()));
  std::size_t total_events = 0;
  for (const auto& stream : result.streams) {
    total_events += stream.events.size();
    // Events time-sorted within each stream.
    for (std::size_t i = 1; i < stream.events.size(); ++i) {
      EXPECT_LE(stream.events[i - 1].time.seconds,
                stream.events[i].time.seconds);
    }
  }
  EXPECT_GT(total_events, 1000u);
  // The simulator plants real anomalies; the pipeline should find tickets.
  EXPECT_GT(result.aggregate.recall, 0.3);
  EXPECT_GT(result.aggregate.precision, 0.3);
  EXPECT_GT(result.eval_days, 0.0);

  // Detections deduplicated by ticket id.
  std::set<std::int64_t> ids;
  for (const TicketDetection& d : result.detections) {
    EXPECT_TRUE(ids.insert(d.ticket_id).second);
  }
}

TEST_F(PipelineFixture, BaselineWithoutCustomizationIsOneGroup) {
  PipelineOptions options;
  options.customize = false;
  options.lstm_config = fast_lstm();
  const PipelineResult result = run_pipeline(trace(), parsed(), options);
  EXPECT_EQ(result.clustering.num_groups, 1u);
}

TEST_F(PipelineFixture, FeatureDetectorPipelineRuns) {
  PipelineOptions options;
  options.detector = DetectorKind::kAutoencoder;
  options.clustering.fixed_k = 2;
  const PipelineResult result = run_pipeline(trace(), parsed(), options);
  EXPECT_FALSE(result.monthly.empty());
  std::size_t total_events = 0;
  for (const auto& stream : result.streams) {
    total_events += stream.events.size();
  }
  EXPECT_GT(total_events, 100u);
}

TEST_F(PipelineFixture, TicketsInWindowIntersectsCorrectly) {
  const auto tickets = tickets_in_window(
      trace(), 0, nfv::util::month_start(1), nfv::util::month_start(2),
      Duration::of_days(1));
  for (const auto& t : tickets) {
    EXPECT_EQ(t.vpe, 0);
    // Mapping-relevant span intersects the window.
    EXPECT_LT((t.report - Duration::of_days(1)).seconds,
              nfv::util::month_start(2).seconds);
    EXPECT_GE(t.repair_finish.seconds, nfv::util::month_start(1).seconds);
  }
}

TEST_F(PipelineFixture, RejectsBadTrainMonths) {
  PipelineOptions options;
  options.initial_train_months = trace().config.months;  // nothing to test
  EXPECT_THROW(run_pipeline(trace(), parsed(), options),
               nfv::util::CheckError);
}

}  // namespace
}  // namespace nfv::core
