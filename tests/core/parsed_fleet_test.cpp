#include "core/parsed_fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace nfv::core {
namespace {

using nfv::util::Duration;
using nfv::util::SimTime;

TEST(ParsedFleet, EveryLogGetsATemplate) {
  const auto trace = simnet::simulate_fleet(simnet::small_fleet_config(3));
  const ParsedFleet parsed = parse_fleet(trace);
  ASSERT_EQ(parsed.logs_by_vpe.size(), trace.logs_by_vpe.size());
  for (std::size_t v = 0; v < parsed.logs_by_vpe.size(); ++v) {
    ASSERT_EQ(parsed.logs_by_vpe[v].size(), trace.logs_by_vpe[v].size());
    for (const logproc::ParsedLog& log : parsed.logs_by_vpe[v]) {
      EXPECT_GE(log.template_id, 0);
      EXPECT_LT(static_cast<std::size_t>(log.template_id), parsed.vocab());
    }
  }
}

TEST(ParsedFleet, TimesPreserved) {
  const auto trace = simnet::simulate_fleet(simnet::small_fleet_config(3));
  const ParsedFleet parsed = parse_fleet(trace);
  for (std::size_t v = 0; v < parsed.logs_by_vpe.size(); ++v) {
    for (std::size_t i = 0; i < parsed.logs_by_vpe[v].size(); ++i) {
      EXPECT_EQ(parsed.logs_by_vpe[v][i].time, trace.logs_by_vpe[v][i].time);
    }
  }
}

TEST(ParsedFleet, TemplateCountNearTrueCatalog) {
  const auto trace = simnet::simulate_fleet(simnet::small_fleet_config(3));
  const ParsedFleet parsed = parse_fleet(trace);
  // The signature tree should recover roughly the emitted template space —
  // not 10× more (over-splitting) and not 10× fewer (over-merging).
  std::size_t emitted_templates = 0;
  std::vector<bool> seen(trace.catalog.size(), false);
  for (const auto& logs : trace.logs_by_vpe) {
    for (const auto& rec : logs) {
      if (!seen[static_cast<std::size_t>(rec.true_template)]) {
        seen[static_cast<std::size_t>(rec.true_template)] = true;
        ++emitted_templates;
      }
    }
  }
  EXPECT_GT(parsed.vocab(), emitted_templates / 3);
  EXPECT_LT(parsed.vocab(), emitted_templates * 3);
}

TEST(ParsedFleet, SameTrueTemplateMapsToSameId) {
  const auto trace = simnet::simulate_fleet(simnet::small_fleet_config(3));
  const ParsedFleet parsed = parse_fleet(trace);
  // For each true template, collect the set of assigned ids; the dominant
  // id should cover the vast majority of its occurrences.
  std::vector<std::map<std::int32_t, int>> assignment(trace.catalog.size());
  for (std::size_t v = 0; v < parsed.logs_by_vpe.size(); ++v) {
    for (std::size_t i = 0; i < parsed.logs_by_vpe[v].size(); ++i) {
      ++assignment[static_cast<std::size_t>(
          trace.logs_by_vpe[v][i].true_template)]
          [parsed.logs_by_vpe[v][i].template_id];
    }
  }
  std::size_t total = 0;
  std::size_t dominant = 0;
  for (const auto& counts : assignment) {
    int best = 0;
    int sum = 0;
    for (const auto& [id, count] : counts) {
      best = std::max(best, count);
      sum += count;
    }
    total += static_cast<std::size_t>(sum);
    dominant += static_cast<std::size_t>(best);
  }
  EXPECT_GT(static_cast<double>(dominant) / static_cast<double>(total), 0.9);
}

TEST(ParsedFleet, VocabTimelineMonotone) {
  const auto trace = simnet::simulate_fleet(simnet::small_fleet_config(3));
  const ParsedFleet parsed = parse_fleet(trace);
  ASSERT_EQ(parsed.vocab_by_month.size(),
            static_cast<std::size_t>(trace.config.months) + 1);
  EXPECT_EQ(parsed.vocab_by_month.front(), 0u);
  for (std::size_t m = 1; m < parsed.vocab_by_month.size(); ++m) {
    EXPECT_GE(parsed.vocab_by_month[m], parsed.vocab_by_month[m - 1]);
  }
  EXPECT_EQ(parsed.vocab_by_month.back(), parsed.vocab());
  EXPECT_EQ(parsed.vocab_at(trace.config.months), parsed.vocab());
  EXPECT_EQ(parsed.vocab_at(999), parsed.vocab());  // clamped
}

TEST(ParsedFleet, UpdateMonthIntroducesNewTemplates) {
  // The post-update templates must enlarge the dictionary after the
  // rollout month.
  auto config = simnet::small_fleet_config(5);
  const auto trace = simnet::simulate_fleet(config);
  const ParsedFleet parsed = parse_fleet(trace);
  const auto before =
      parsed.vocab_at(config.update_month);
  const auto after = parsed.vocab_at(config.months);
  EXPECT_GT(after, before);
}

TEST(TicketExclusionWindows, MarginApplied) {
  const auto trace = simnet::simulate_fleet(simnet::small_fleet_config(3));
  const auto windows =
      ticket_exclusion_windows(trace, 0, Duration::of_days(3));
  std::size_t expected = 0;
  for (const simnet::Ticket& t : trace.tickets) {
    if (t.vpe == 0) ++expected;
  }
  ASSERT_EQ(windows.size(), expected);
  std::size_t i = 0;
  for (const simnet::Ticket& t : trace.tickets) {
    if (t.vpe != 0) continue;
    EXPECT_EQ(windows[i].begin, t.report - Duration::of_days(3));
    EXPECT_EQ(windows[i].end, t.repair_finish);
    ++i;
  }
}

}  // namespace
}  // namespace nfv::core
