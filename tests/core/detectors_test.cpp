#include <gtest/gtest.h>

#include <algorithm>

#include "core/feature_detectors.h"
#include "core/hmm_detector.h"
#include "core/lstm_detector.h"
#include "util/check.h"

namespace nfv::core {
namespace {

using logproc::ParsedLog;
using nfv::util::Duration;
using nfv::util::SimTime;

/// Synthetic "normal" stream: repeating motif 0→1→2→3 with 60 s gaps.
std::vector<ParsedLog> motif_stream(std::size_t cycles,
                                    std::int64_t start_s = 0) {
  std::vector<ParsedLog> logs;
  std::int64_t t = start_s;
  for (std::size_t c = 0; c < cycles; ++c) {
    for (std::int32_t id = 0; id < 4; ++id) {
      logs.push_back({SimTime{t}, id});
      t += 60;
    }
  }
  return logs;
}

/// The same stream with a burst of template 7 (never seen) injected.
std::vector<ParsedLog> with_anomaly_burst(std::vector<ParsedLog> logs,
                                          std::size_t at_index) {
  const SimTime t = logs[at_index].time;
  std::vector<ParsedLog> burst{{t + Duration::of_seconds(5), 7},
                               {t + Duration::of_seconds(15), 7},
                               {t + Duration::of_seconds(25), 7}};
  logs.insert(logs.begin() + static_cast<std::ptrdiff_t>(at_index) + 1,
              burst.begin(), burst.end());
  return logs;
}

LstmDetectorConfig fast_lstm_config() {
  LstmDetectorConfig config;
  config.window = 4;
  config.hidden = 16;
  config.embed_dim = 8;
  config.initial_epochs = 6;
  config.max_train_windows = 1500;
  return config;
}

TEST(LstmDetector, FlagsUnseenTemplateBurst) {
  const auto train = motif_stream(150);
  LstmDetector detector(fast_lstm_config());
  const LogView view{train};
  detector.fit({&view, 1}, 8);
  ASSERT_TRUE(detector.trained());

  const auto test = with_anomaly_burst(motif_stream(30, 1000000), 60);
  const auto events = detector.score(test, 8);
  ASSERT_EQ(events.size(), test.size() - 4);

  // Events on the injected templates must score far above the median.
  std::vector<double> scores;
  double burst_min = 1e9;
  for (std::size_t i = 0; i < events.size(); ++i) {
    scores.push_back(events[i].score);
    if (test[i + 4].template_id == 7) {
      burst_min = std::min(burst_min, events[i].score);
    }
  }
  std::nth_element(scores.begin(), scores.begin() + scores.size() / 2,
                   scores.end());
  EXPECT_GT(burst_min, scores[scores.size() / 2] + 2.0);
}

TEST(LstmDetector, FlagsOutOfOrderContinuation) {
  const auto train = motif_stream(200);
  LstmDetector detector(fast_lstm_config());
  const LogView view{train};
  detector.fit({&view, 1}, 8);

  // Test stream where one cycle goes 0→1→2→*1* instead of 3.
  auto test = motif_stream(30, 2000000);
  test[43].template_id = 1;  // index 43 is a "3" position (4*10+3)
  const auto events = detector.score(test, 8);
  double wrong_score = 0.0;
  double right_score_sum = 0.0;
  std::size_t right_count = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i + 4 == 43) {
      wrong_score = events[i].score;
    } else if (test[i + 4].template_id == 3) {
      right_score_sum += events[i].score;
      ++right_count;
    }
  }
  EXPECT_GT(wrong_score, right_score_sum / right_count + 1.0);
}

TEST(LstmDetector, UpdateAbsorbsNewPattern) {
  // Train on 0→1→2→3; a new motif 4→5 appears later. After update() the
  // new motif should score much lower than before. Incremental updates
  // are deliberately gentle in the pipeline defaults; give this test a
  // stronger update schedule so absorption is visible in one call.
  const auto train = motif_stream(150);
  auto config = fast_lstm_config();
  config.update_epochs = 6;
  config.update_lr = 3e-3f;
  LstmDetector detector(config);
  const LogView view{train};
  detector.fit({&view, 1}, 8);

  std::vector<ParsedLog> new_pattern;
  std::int64_t t = 5000000;
  for (int c = 0; c < 150; ++c) {
    new_pattern.push_back({SimTime{t}, 4});
    t += 60;
    new_pattern.push_back({SimTime{t}, 5});
    t += 60;
  }
  const auto before = detector.score(new_pattern, 8);
  const LogView new_view{new_pattern};
  detector.update({&new_view, 1}, 8);
  const auto after = detector.score(new_pattern, 8);
  double before_mean = 0.0;
  double after_mean = 0.0;
  for (const auto& e : before) before_mean += e.score;
  for (const auto& e : after) after_mean += e.score;
  before_mean /= static_cast<double>(before.size());
  after_mean /= static_cast<double>(after.size());
  EXPECT_LT(after_mean, before_mean - 0.5);
}

TEST(LstmDetector, AdaptGrowsVocabAndLearns) {
  const auto train = motif_stream(100);
  LstmDetector detector(fast_lstm_config());
  const LogView view{train};
  detector.fit({&view, 1}, 8);

  // Post-update: new templates 8–11 in a new motif; vocab grows to 12.
  std::vector<ParsedLog> post;
  std::int64_t t = 9000000;
  for (int c = 0; c < 120; ++c) {
    for (std::int32_t id = 8; id < 12; ++id) {
      post.push_back({SimTime{t}, id});
      t += 45;
    }
  }
  const LogView post_view{post};
  detector.adapt({&post_view, 1}, 12);
  const auto events = detector.score(post, 12);
  double mean = 0.0;
  for (const auto& e : events) mean += e.score;
  mean /= static_cast<double>(events.size());
  // After adaptation, the new motif is no longer "unknown-level"
  // surprising.
  EXPECT_LT(mean, detector.config().unknown_score * 0.5);
}

TEST(LstmDetector, OversamplingReducesTrainingTailScores) {
  // A stream with a rare-but-normal pattern: mostly 0→1→2→3 plus an
  // occasional 0→1→2→5. Over-sampling should reduce the false-positive
  // score of the rare continuation relative to a no-oversampling model.
  std::vector<ParsedLog> train;
  std::int64_t t = 0;
  for (int c = 0; c < 300; ++c) {
    train.push_back({SimTime{t += 60}, 0});
    train.push_back({SimTime{t += 60}, 1});
    train.push_back({SimTime{t += 60}, 2});
    train.push_back({SimTime{t += 60}, c % 25 == 0 ? 5 : 3});
  }
  auto config_with = fast_lstm_config();
  config_with.oversample = true;
  config_with.oversample_rounds = 3;
  auto config_without = fast_lstm_config();
  config_without.oversample = false;

  LstmDetector with(config_with);
  LstmDetector without(config_without);
  const LogView view{train};
  with.fit({&view, 1}, 8);
  without.fit({&view, 1}, 8);

  auto rare_score = [&](const LstmDetector& d) {
    const auto events = d.score(train, 8);
    double worst = 0.0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (train[i + 4].template_id == 5) {
        worst = std::max(worst, events[i].score);
      }
    }
    return worst;
  };
  EXPECT_LT(rare_score(with), rare_score(without) + 0.5);
}

TEST(LstmDetector, LifecycleChecks) {
  LstmDetector detector(fast_lstm_config());
  EXPECT_FALSE(detector.trained());
  const auto logs = motif_stream(10);
  EXPECT_THROW(detector.score(logs, 8), nfv::util::CheckError);
  const LogView view{logs};
  EXPECT_THROW(detector.update({&view, 1}, 8), nfv::util::CheckError);
  EXPECT_THROW(detector.adapt({&view, 1}, 8), nfv::util::CheckError);
  EXPECT_EQ(detector.kind(), DetectorKind::kLstm);
}

TEST(LstmDetector, ShortStreamYieldsNoEvents) {
  const auto train = motif_stream(100);
  LstmDetector detector(fast_lstm_config());
  const LogView view{train};
  detector.fit({&view, 1}, 8);
  const auto tiny = motif_stream(1);  // 4 logs = window, no target
  EXPECT_TRUE(detector.score(tiny, 8).empty());
}

TEST(AutoencoderDetector, SeparatesShiftedDistribution) {
  AutoencoderDetectorConfig config;
  config.doc_size = 10;
  config.initial_epochs = 20;
  AutoencoderDetector detector(config);
  const auto train = motif_stream(300);
  const LogView view{train};
  detector.fit({&view, 1}, 8);
  ASSERT_TRUE(detector.trained());

  // Normal test: same motif. Anomalous: unseen template 6 everywhere.
  const auto normal = motif_stream(40, 7000000);
  std::vector<ParsedLog> anomalous;
  std::int64_t t = 8000000;
  for (int i = 0; i < 160; ++i) anomalous.push_back({SimTime{t += 60}, 6});
  const auto normal_events = detector.score(normal, 8);
  const auto anomalous_events = detector.score(anomalous, 8);
  ASSERT_FALSE(normal_events.empty());
  ASSERT_FALSE(anomalous_events.empty());
  double normal_mean = 0.0;
  double anomalous_mean = 0.0;
  for (const auto& e : normal_events) normal_mean += e.score;
  for (const auto& e : anomalous_events) anomalous_mean += e.score;
  normal_mean /= static_cast<double>(normal_events.size());
  anomalous_mean /= static_cast<double>(anomalous_events.size());
  EXPECT_GT(anomalous_mean, 2.0 * normal_mean);
}

TEST(OcSvmDetector, SeparatesShiftedDistribution) {
  OcSvmDetectorConfig config;
  config.doc_size = 10;
  OcSvmDetector detector(config);
  const auto train = motif_stream(200);
  const LogView view{train};
  detector.fit({&view, 1}, 8);
  ASSERT_TRUE(detector.trained());

  const auto normal = motif_stream(30, 7000000);
  std::vector<ParsedLog> anomalous;
  std::int64_t t = 8000000;
  for (int i = 0; i < 120; ++i) anomalous.push_back({SimTime{t += 60}, 6});
  const auto normal_events = detector.score(normal, 8);
  const auto anomalous_events = detector.score(anomalous, 8);
  double normal_max = -1e9;
  double anomalous_min = 1e9;
  for (const auto& e : normal_events) normal_max = std::max(normal_max, e.score);
  for (const auto& e : anomalous_events) {
    anomalous_min = std::min(anomalous_min, e.score);
  }
  EXPECT_GT(anomalous_min, normal_max);
}

TEST(PcaDetector, SeparatesShiftedDistribution) {
  PcaDetectorConfig config;
  config.doc_size = 10;
  PcaDetector detector(config);
  const auto train = motif_stream(200);
  const LogView view{train};
  detector.fit({&view, 1}, 8);
  ASSERT_TRUE(detector.trained());
  const auto normal = motif_stream(30, 7000000);
  std::vector<ParsedLog> anomalous;
  std::int64_t t = 8000000;
  for (int i = 0; i < 120; ++i) {
    anomalous.push_back({SimTime{t += 60}, i % 2 == 0 ? 6 : 7});
  }
  const auto normal_events = detector.score(normal, 8);
  const auto anomalous_events = detector.score(anomalous, 8);
  double normal_mean = 0.0;
  double anomalous_mean = 0.0;
  for (const auto& e : normal_events) normal_mean += e.score;
  for (const auto& e : anomalous_events) anomalous_mean += e.score;
  normal_mean /= static_cast<double>(normal_events.size());
  anomalous_mean /= static_cast<double>(anomalous_events.size());
  EXPECT_GT(anomalous_mean, normal_mean);
}

TEST(MakeDetector, FactoryCoversAllKinds) {
  for (const DetectorKind kind :
       {DetectorKind::kLstm, DetectorKind::kAutoencoder,
        DetectorKind::kOcSvm, DetectorKind::kPca, DetectorKind::kHmm}) {
    const auto detector = make_detector(kind, 1);
    ASSERT_NE(detector, nullptr);
    EXPECT_EQ(detector->kind(), kind);
    EXPECT_FALSE(detector->trained());
  }
}

TEST(DetectorKindNames, Stable) {
  EXPECT_STREQ(to_string(DetectorKind::kLstm), "LSTM");
  EXPECT_STREQ(to_string(DetectorKind::kAutoencoder), "Autoencoder");
  EXPECT_STREQ(to_string(DetectorKind::kOcSvm), "OC-SVM");
  EXPECT_STREQ(to_string(DetectorKind::kPca), "PCA");
  EXPECT_STREQ(to_string(DetectorKind::kHmm), "HMM");
}

TEST(HmmDetector, FlagsUnseenTemplateBurst) {
  const auto train = motif_stream(150);
  HmmDetectorConfig config;
  config.window = 6;
  HmmDetector detector(config);
  const LogView view{train};
  detector.fit({&view, 1}, 8);
  ASSERT_TRUE(detector.trained());
  EXPECT_EQ(detector.granularity(), EventGranularity::kPerLog);

  const auto test = with_anomaly_burst(motif_stream(30, 1000000), 60);
  const auto events = detector.score(test, 8);
  ASSERT_EQ(events.size(), test.size() - 6);
  std::vector<double> scores;
  double burst_min = 1e9;
  for (std::size_t i = 0; i < events.size(); ++i) {
    scores.push_back(events[i].score);
    if (test[i + 6].template_id == 7) {
      burst_min = std::min(burst_min, events[i].score);
    }
  }
  std::nth_element(scores.begin(), scores.begin() + scores.size() / 2,
                   scores.end());
  EXPECT_GT(burst_min, scores[scores.size() / 2]);
}

TEST(HmmDetector, UpdateAndAdaptRefit) {
  const auto train = motif_stream(100);
  HmmDetector detector;
  const LogView view{train};
  detector.fit({&view, 1}, 8);
  // New pattern appears; adapt() refits on it and its score drops.
  std::vector<logproc::ParsedLog> fresh;
  std::int64_t t = 5000000;
  for (int c = 0; c < 200; ++c) {
    fresh.push_back({SimTime{t += 60}, 4});
    fresh.push_back({SimTime{t += 60}, 5});
  }
  const auto before = detector.score(fresh, 8);
  const LogView fresh_view{fresh};
  detector.adapt({&fresh_view, 1}, 8);
  const auto after = detector.score(fresh, 8);
  double before_mean = 0.0;
  double after_mean = 0.0;
  for (const auto& e : before) before_mean += e.score;
  for (const auto& e : after) after_mean += e.score;
  EXPECT_LT(after_mean / after.size(), before_mean / before.size());
}

}  // namespace
}  // namespace nfv::core
