// Determinism is a hard requirement of the parallel execution layer: the
// pipeline's per-group/per-vPE fan-out and the blocked matrix kernels must
// produce bit-identical results for every thread count. These tests pin
// that contract by comparing full runs at threads = 1 vs threads = 4.
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "ml/matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nfv::core {
namespace {

LstmDetectorConfig fast_lstm() {
  LstmDetectorConfig config;
  config.initial_epochs = 2;
  config.update_epochs = 1;
  config.adapt_epochs = 2;
  config.max_train_windows = 1200;
  config.hidden = 16;
  config.oversample_rounds = 1;
  return config;
}

void expect_identical(const PipelineResult& a, const PipelineResult& b) {
  // Clustering.
  ASSERT_EQ(a.clustering.num_groups, b.clustering.num_groups);
  ASSERT_EQ(a.clustering.group_of_vpe, b.clustering.group_of_vpe);

  // Monthly metrics (Fig. 7 series) — exact double equality, not
  // tolerance: the parallel path must be bit-identical.
  ASSERT_EQ(a.monthly.size(), b.monthly.size());
  for (std::size_t m = 0; m < a.monthly.size(); ++m) {
    EXPECT_EQ(a.monthly[m].month, b.monthly[m].month);
    EXPECT_EQ(a.monthly[m].prf.precision, b.monthly[m].prf.precision);
    EXPECT_EQ(a.monthly[m].prf.recall, b.monthly[m].prf.recall);
    EXPECT_EQ(a.monthly[m].prf.f_measure, b.monthly[m].prf.f_measure);
    EXPECT_EQ(a.monthly[m].false_alarms_per_day,
              b.monthly[m].false_alarms_per_day);
    EXPECT_EQ(a.monthly[m].anomaly_clusters, b.monthly[m].anomaly_clusters);
  }

  // Raw scored streams: every event time and score.
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t v = 0; v < a.streams.size(); ++v) {
    ASSERT_EQ(a.streams[v].events.size(), b.streams[v].events.size())
        << "vpe " << v;
    for (std::size_t e = 0; e < a.streams[v].events.size(); ++e) {
      ASSERT_EQ(a.streams[v].events[e].time.seconds,
                b.streams[v].events[e].time.seconds);
      ASSERT_EQ(a.streams[v].events[e].score, b.streams[v].events[e].score)
          << "vpe " << v << " event " << e;
    }
  }

  // Anomaly clusters and ticket-level detections.
  ASSERT_EQ(a.mapping.anomalies.size(), b.mapping.anomalies.size());
  for (std::size_t i = 0; i < a.mapping.anomalies.size(); ++i) {
    EXPECT_EQ(a.mapping.anomalies[i].time.seconds,
              b.mapping.anomalies[i].time.seconds);
    EXPECT_EQ(a.mapping.anomalies[i].vpe, b.mapping.anomalies[i].vpe);
    EXPECT_EQ(a.mapping.anomalies[i].outcome, b.mapping.anomalies[i].outcome);
    EXPECT_EQ(a.mapping.anomalies[i].ticket_id,
              b.mapping.anomalies[i].ticket_id);
  }
  ASSERT_EQ(a.detections.size(), b.detections.size());
  for (std::size_t i = 0; i < a.detections.size(); ++i) {
    EXPECT_EQ(a.detections[i].ticket_id, b.detections[i].ticket_id);
    EXPECT_EQ(a.detections[i].detected, b.detections[i].detected);
    EXPECT_EQ(a.detections[i].detected_before, b.detections[i].detected_before);
    EXPECT_EQ(a.detections[i].detected_after, b.detections[i].detected_after);
    EXPECT_EQ(a.detections[i].best_lead.seconds,
              b.detections[i].best_lead.seconds);
    EXPECT_EQ(a.detections[i].anomaly_count, b.detections[i].anomaly_count);
  }

  // Final per-group operating thresholds.
  ASSERT_EQ(a.group_thresholds, b.group_thresholds);

  // Aggregates.
  EXPECT_EQ(a.mapping.early_warnings, b.mapping.early_warnings);
  EXPECT_EQ(a.mapping.errors, b.mapping.errors);
  EXPECT_EQ(a.mapping.false_alarms, b.mapping.false_alarms);
  EXPECT_EQ(a.aggregate.precision, b.aggregate.precision);
  EXPECT_EQ(a.aggregate.recall, b.aggregate.recall);
  EXPECT_EQ(a.aggregate.f_measure, b.aggregate.f_measure);
  EXPECT_EQ(a.false_alarms_per_day, b.false_alarms_per_day);
}

TEST(PipelineDeterminismTest, ThreadsOneAndFourAreBitIdentical) {
  const simnet::FleetTrace trace =
      simnet::simulate_fleet(simnet::small_fleet_config(61));
  const ParsedFleet parsed = parse_fleet(trace);

  PipelineOptions options;
  options.clustering.fixed_k = 2;
  options.lstm_config = fast_lstm();

  options.threads = 1;
  const PipelineResult serial = run_pipeline(trace, parsed, options);
  options.threads = 4;
  const PipelineResult parallel = run_pipeline(trace, parsed, options);

  expect_identical(serial, parallel);
}

// The blocked-parallel matrix kernels against their serial references on
// random shapes straddling the parallelism work threshold.
TEST(PipelineDeterminismTest, BlockedParallelMatmulMatchesSerial) {
  nfv::util::set_global_threads(4);
  nfv::util::Rng rng(99);
  const struct {
    std::size_t r, k, c;
  } shapes[] = {
      {1, 1, 1},     {3, 7, 5},      {17, 33, 9},
      {64, 64, 64},  {128, 96, 130}, {300, 128, 77},
  };
  for (const auto& shape : shapes) {
    ml::Matrix a(shape.r, shape.k);
    ml::Matrix b(shape.k, shape.c);
    ml::Matrix bt(shape.c, shape.k);
    for (float& x : a.storage()) x = static_cast<float>(rng.normal());
    for (float& x : b.storage()) x = static_cast<float>(rng.normal());
    for (float& x : bt.storage()) x = static_cast<float>(rng.normal());

    ml::Matrix serial, parallel;
    ml::matmul_serial(a, b, serial);
    ml::matmul(a, b, parallel);
    ASSERT_EQ(serial.storage(), parallel.storage())
        << shape.r << "x" << shape.k << "x" << shape.c;

    ml::matmul_transb_serial(a, bt, serial);
    ml::matmul_transb(a, bt, parallel);
    ASSERT_EQ(serial.storage(), parallel.storage())
        << "transb " << shape.r << "x" << shape.k << "x" << shape.c;

    // Accumulating kernel: seed both accumulators identically.
    ml::Matrix b2(shape.r, shape.c);
    for (float& x : b2.storage()) x = static_cast<float>(rng.normal());
    ml::Matrix acc_serial(shape.k, shape.c);
    for (float& x : acc_serial.storage()) {
      x = static_cast<float>(rng.normal());
    }
    ml::Matrix acc_parallel = acc_serial;
    ml::matmul_transa_accumulate_serial(a, b2, acc_serial);
    ml::matmul_transa_accumulate(a, b2, acc_parallel);
    ASSERT_EQ(acc_serial.storage(), acc_parallel.storage())
        << "transa " << shape.r << "x" << shape.k << "x" << shape.c;
  }
  nfv::util::set_global_threads(0);  // restore auto sizing
}

}  // namespace
}  // namespace nfv::core
