#include "core/batch_planner.h"

#include <gtest/gtest.h>

#include <vector>

#include "ml/sequence_model.h"
#include "util/rng.h"

namespace nfv::core {
namespace {

TEST(BatchPlannerTest, SlotsAreStreamMajorInSerialVisitOrder) {
  const std::vector<std::size_t> counts = {3, 0, 2, 1};
  const BatchPlan plan = plan_windows(counts, /*batch_size=*/2);
  ASSERT_EQ(plan.slots.size(), 6u);
  const WindowSlot expected[] = {{0, 0}, {0, 1}, {0, 2}, {2, 0}, {2, 1}, {3, 0}};
  for (std::size_t i = 0; i < plan.slots.size(); ++i) {
    EXPECT_EQ(plan.slots[i].stream, expected[i].stream) << "slot " << i;
    EXPECT_EQ(plan.slots[i].window, expected[i].window) << "slot " << i;
  }
}

TEST(BatchPlannerTest, BatchRangesTileTheSlotListExactly) {
  const std::vector<std::size_t> counts = {3, 0, 2, 1};
  const BatchPlan plan = plan_windows(counts, /*batch_size=*/4);
  ASSERT_EQ(plan.num_batches(), 2u);
  EXPECT_EQ(plan.batch_range(0), (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(plan.batch_range(1), (std::pair<std::size_t, std::size_t>{4, 6}));

  // Exact multiple: no empty trailing batch.
  const BatchPlan exact = plan_windows(counts, /*batch_size=*/3);
  ASSERT_EQ(exact.num_batches(), 2u);
  EXPECT_EQ(exact.batch_range(1),
            (std::pair<std::size_t, std::size_t>{3, 6}));

  const BatchPlan empty = plan_windows(std::vector<std::size_t>{0, 0}, 8);
  EXPECT_TRUE(empty.slots.empty());
  EXPECT_EQ(empty.num_batches(), 0u);
}

std::vector<ml::SeqExample> make_examples(std::size_t count,
                                          std::size_t window,
                                          std::size_t vocab,
                                          std::uint64_t seed) {
  nfv::util::Rng rng(seed);
  std::vector<ml::SeqExample> examples(count);
  for (ml::SeqExample& example : examples) {
    example.ids.resize(window);
    example.dts.resize(window);
    for (std::size_t t = 0; t < window; ++t) {
      example.ids[t] = static_cast<std::int32_t>(rng.uniform_index(vocab));
      example.dts[t] = static_cast<float>(rng.uniform_index(300));
    }
    example.target = static_cast<std::int32_t>(rng.uniform_index(vocab));
  }
  return examples;
}

// Gather/scatter round-trip: scores land in out[stream][window] exactly as
// scoring each window alone would place them, regardless of how the
// windows are partitioned into streams or cut into fused batches.
TEST(BatchPlannerTest, ScorerScattersFusedScoresBackToStreamSlots) {
  ml::SequenceModelConfig config;
  config.vocab = 9;
  config.embed_dim = 6;
  config.hidden = 6;
  config.window = 3;
  nfv::util::Rng rng(7);
  const ml::SequenceModel model(config, rng);  // untrained weights suffice

  const std::vector<ml::SeqExample> examples =
      make_examples(23, config.window, config.vocab, 99);

  // Per-window reference through the serial path.
  std::vector<double> expected_nll;
  std::vector<double> expected_rank;
  for (const ml::SeqExample& example : examples) {
    expected_nll.push_back(-model.score_log_likelihood({&example})[0]);
    expected_rank.push_back(
        static_cast<double>(model.score_target_ranks({&example})[0]));
  }

  // Uneven stream partition, including an empty stream in the middle.
  const std::size_t cuts[] = {0, 9, 9, 20, 23};
  std::vector<std::vector<const ml::SeqExample*>> streams;
  for (std::size_t s = 0; s + 1 < std::size(cuts); ++s) {
    std::vector<const ml::SeqExample*> stream;
    for (std::size_t i = cuts[s]; i < cuts[s + 1]; ++i) {
      stream.push_back(&examples[i]);
    }
    streams.push_back(std::move(stream));
  }

  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{5},
                                       std::size_t{64}}) {
    BatchedWindowScorer scorer(batch_size);
    std::vector<std::vector<double>> nll;
    scorer.score(model, BatchScoreKind::kNegLogLikelihood, streams, nll);
    std::vector<std::vector<double>> ranks;
    scorer.score(model, BatchScoreKind::kTargetRank, streams, ranks);

    ASSERT_EQ(nll.size(), streams.size());
    ASSERT_EQ(ranks.size(), streams.size());
    for (std::size_t s = 0; s + 1 < std::size(cuts); ++s) {
      ASSERT_EQ(nll[s].size(), streams[s].size()) << "stream " << s;
      ASSERT_EQ(ranks[s].size(), streams[s].size()) << "stream " << s;
      for (std::size_t w = 0; w < streams[s].size(); ++w) {
        EXPECT_EQ(nll[s][w], expected_nll[cuts[s] + w])
            << "batch_size " << batch_size << " stream " << s << " window "
            << w;
        EXPECT_EQ(ranks[s][w], expected_rank[cuts[s] + w])
            << "batch_size " << batch_size << " stream " << s << " window "
            << w;
      }
    }
  }
}

}  // namespace
}  // namespace nfv::core
