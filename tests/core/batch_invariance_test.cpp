// The batched inference engine's determinism contract: packing scoring
// windows from many streams into fused forward batches must produce
// scores bit-identical to window-by-window scoring — for ANY inference
// batch size and ANY thread count (the per-row forward math never depends
// on batch neighbours). These tests sweep score_batch ∈ {1, 64, 1024} ×
// threads ∈ {1, 4} against the window-by-window reference, and prove the
// StreamMonitorGroup micro-batch flush equivalent to immediate per-line
// ingestion. Run under -DNFVPRED_SANITIZE=thread via ctest -L concurrency.
#include "core/batch_planner.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/lstm_detector.h"
#include "core/streaming.h"
#include "logproc/dataset.h"
#include "logproc/signature_tree.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nfv::core {
namespace {

using logproc::ParsedLog;
using nfv::util::SimTime;

constexpr std::size_t kStreams = 3;
constexpr std::size_t kVocab = 12;      // ids 10, 11 never seen in training
constexpr std::size_t kTrainVocab = 10;
constexpr std::size_t kWindow = 4;

std::vector<ParsedLog> make_stream(std::size_t stream, std::size_t length,
                                   bool with_unknowns) {
  std::vector<ParsedLog> logs;
  logs.reserve(length);
  std::int64_t t = 0;
  for (std::size_t i = 0; i < length; ++i) {
    t += 20 + static_cast<std::int64_t>((i * 13 + stream * 7) % 45);
    std::size_t id = (i * 5 + stream * 3 + i / 17) % kTrainVocab;
    if (with_unknowns && i % 41 == 19) id = kTrainVocab + (stream % 2);
    logs.push_back({SimTime{t}, static_cast<std::int32_t>(id)});
  }
  return logs;
}

LstmDetector make_trained_detector(LstmScoreMode mode) {
  LstmDetectorConfig config;
  config.window = kWindow;
  config.embed_dim = 8;
  config.hidden = 8;
  config.initial_epochs = 1;
  config.max_train_windows = 800;
  config.oversample = false;
  config.score_mode = mode;
  LstmDetector detector(config);
  std::vector<std::vector<ParsedLog>> train(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    train[s] = make_stream(s, 300, /*with_unknowns=*/false);
  }
  std::vector<LogView> views(train.begin(), train.end());
  detector.fit(views, kTrainVocab);
  return detector;
}

void expect_identical_events(
    const std::vector<std::vector<ScoredEvent>>& expected,
    const std::vector<std::vector<ScoredEvent>>& actual,
    const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (std::size_t s = 0; s < expected.size(); ++s) {
    ASSERT_EQ(expected[s].size(), actual[s].size()) << label << " stream " << s;
    for (std::size_t e = 0; e < expected[s].size(); ++e) {
      ASSERT_EQ(expected[s][e].time.seconds, actual[s][e].time.seconds)
          << label << " stream " << s << " event " << e;
      // Bit-identical, not approximately equal.
      ASSERT_EQ(expected[s][e].score, actual[s][e].score)
          << label << " stream " << s << " event " << e;
    }
  }
}

TEST(BatchInvarianceTest, ScoresIdenticalForAnyBatchSizeAndThreadCount) {
  for (const LstmScoreMode mode :
       {LstmScoreMode::kLogLikelihood, LstmScoreMode::kTargetRank}) {
    LstmDetector detector = make_trained_detector(mode);

    std::vector<std::vector<ParsedLog>> test_streams(kStreams);
    for (std::size_t s = 0; s < kStreams; ++s) {
      // Unknown templates exercise the gather/scatter split between
      // model-scored and constant-scored windows.
      test_streams[s] = make_stream(s + 10, 200, /*with_unknowns=*/true);
    }
    std::vector<LogView> views(test_streams.begin(), test_streams.end());

    // Reference: window-by-window (batch size 1), serial.
    nfv::util::set_global_threads(1);
    detector.set_score_batch(1);
    const std::vector<std::vector<ScoredEvent>> reference =
        detector.score_streams(views, kVocab);
    for (const auto& events : reference) ASSERT_FALSE(events.empty());

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      nfv::util::set_global_threads(threads);
      for (const std::size_t batch :
           {std::size_t{1}, std::size_t{64}, std::size_t{1024}}) {
        detector.set_score_batch(batch);
        const std::vector<std::vector<ScoredEvent>> fused =
            detector.score_streams(views, kVocab);
        expect_identical_events(
            reference, fused,
            "mode=" + std::to_string(static_cast<int>(mode)) +
                " batch=" + std::to_string(batch) +
                " threads=" + std::to_string(threads));
      }
    }
    nfv::util::set_global_threads(0);  // restore auto sizing
  }
}

// The fused path must agree with the completely independent serial
// reference path (SequenceModel::predict) window by window.
TEST(BatchInvarianceTest, FusedScoresMatchSerialModelReference) {
  LstmDetector detector = make_trained_detector(LstmScoreMode::kLogLikelihood);
  const std::vector<ParsedLog> logs =
      make_stream(42, 150, /*with_unknowns=*/false);

  detector.set_score_batch(1024);
  const std::vector<ScoredEvent> fused = detector.score(logs, kTrainVocab);

  const std::vector<ml::SeqExample> examples =
      logproc::build_sequence_examples(logs, kWindow,
                                       nfv::util::Duration::of_days(3650));
  ASSERT_EQ(fused.size(), examples.size());
  for (std::size_t i = 0; i < examples.size(); ++i) {
    const std::vector<double> ll =
        detector.model().score_log_likelihood({&examples[i]});
    ASSERT_EQ(fused[i].score, -ll[0]) << "window " << i;
  }
}

TEST(BatchInvarianceTest, MonitorGroupFlushMatchesImmediateIngestion) {
  LstmDetector detector = make_trained_detector(LstmScoreMode::kLogLikelihood);

  std::vector<std::vector<ParsedLog>> test_streams(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    test_streams[s] = make_stream(s + 20, 180, /*with_unknowns=*/true);
  }

  StreamMonitorConfig config;
  config.window = kWindow;
  config.threshold = 5.0;
  config.min_cluster_size = 2;

  // Immediate per-line ingestion (the reference).
  std::vector<std::vector<double>> direct_scores(kStreams);
  std::vector<std::vector<StreamWarning>> direct_warnings(kStreams);
  std::vector<logproc::SignatureTree> direct_trees(kStreams);
  {
    std::vector<StreamMonitor> monitors;
    monitors.reserve(kStreams);
    for (std::size_t s = 0; s < kStreams; ++s) {
      monitors.emplace_back(
          static_cast<std::int32_t>(s), &detector, &direct_trees[s], config,
          [&direct_warnings, s](const StreamWarning& warning) {
            direct_warnings[s].push_back(warning);
          });
    }
    for (std::size_t i = 0; i < test_streams[0].size(); ++i) {
      for (std::size_t s = 0; s < kStreams; ++s) {
        direct_scores[s].push_back(
            monitors[s].ingest_parsed(test_streams[s][i]));
      }
    }
  }

  // Micro-batched: stage the same interleaving, flush periodically.
  std::vector<std::vector<StreamWarning>> group_warnings(kStreams);
  std::vector<logproc::SignatureTree> group_trees(kStreams);
  std::vector<StreamMonitor> monitors;
  monitors.reserve(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    monitors.emplace_back(
        static_cast<std::int32_t>(s), &detector, &group_trees[s], config,
        [&group_warnings, s](const StreamWarning& warning) {
          group_warnings[s].push_back(warning);
        });
  }
  StreamMonitorGroup group(&detector);
  for (std::size_t s = 0; s < kStreams; ++s) group.add(&monitors[s]);

  std::vector<std::vector<double>> group_scores(kStreams);
  std::vector<std::size_t> flush_shard_order;
  const auto drain = [&] {
    const std::vector<double> scores = group.flush();
    ASSERT_EQ(scores.size(), flush_shard_order.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      group_scores[flush_shard_order[i]].push_back(scores[i]);
    }
    flush_shard_order.clear();
  };
  for (std::size_t i = 0; i < test_streams[0].size(); ++i) {
    for (std::size_t s = 0; s < kStreams; ++s) {
      group.ingest_parsed(s, test_streams[s][i]);
      flush_shard_order.push_back(s);
    }
    if (i % 17 == 16) drain();  // micro-batch flush cadence
  }
  drain();

  for (std::size_t s = 0; s < kStreams; ++s) {
    ASSERT_EQ(direct_scores[s].size(), group_scores[s].size());
    for (std::size_t i = 0; i < direct_scores[s].size(); ++i) {
      ASSERT_EQ(direct_scores[s][i], group_scores[s][i])
          << "shard " << s << " line " << i;
    }
    ASSERT_EQ(direct_warnings[s].size(), group_warnings[s].size())
        << "shard " << s;
    for (std::size_t w = 0; w < direct_warnings[s].size(); ++w) {
      EXPECT_EQ(direct_warnings[s][w].time.seconds,
                group_warnings[s][w].time.seconds);
      EXPECT_EQ(direct_warnings[s][w].anomaly_count,
                group_warnings[s][w].anomaly_count);
      EXPECT_EQ(direct_warnings[s][w].peak_score,
                group_warnings[s][w].peak_score);
      EXPECT_EQ(direct_warnings[s][w].trigger_template,
                group_warnings[s][w].trigger_template);
    }
  }
}

}  // namespace
}  // namespace nfv::core
