#include "core/vpe_clustering.h"

#include <gtest/gtest.h>

namespace nfv::core {
namespace {

using nfv::util::SimTime;

TEST(VpeClustering, SingleGroupBaseline) {
  const VpeClustering clustering = single_group(7);
  EXPECT_EQ(clustering.num_groups, 1u);
  ASSERT_EQ(clustering.group_of_vpe.size(), 7u);
  for (int g : clustering.group_of_vpe) EXPECT_EQ(g, 0);
}

TEST(VpeClustering, FixedKProducesKGroups) {
  const auto trace = simnet::simulate_fleet(simnet::small_fleet_config(3));
  const ParsedFleet parsed = parse_fleet(trace);
  VpeClusteringOptions options;
  options.fixed_k = 2;
  nfv::util::Rng rng(1);
  const VpeClustering clustering =
      cluster_vpes(parsed, SimTime::epoch(), nfv::util::month_start(1),
                   options, rng);
  EXPECT_EQ(clustering.num_groups, 2u);
  ASSERT_EQ(clustering.group_of_vpe.size(),
            static_cast<std::size_t>(trace.num_vpes()));
  for (int g : clustering.group_of_vpe) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, 2);
  }
}

TEST(VpeClustering, ModularitySelectionWithinRange) {
  const auto trace = simnet::simulate_fleet(simnet::small_fleet_config(5));
  const ParsedFleet parsed = parse_fleet(trace);
  VpeClusteringOptions options;
  options.fixed_k = 0;
  options.k_min = 2;
  options.k_max = 4;
  nfv::util::Rng rng(2);
  const VpeClustering clustering =
      cluster_vpes(parsed, SimTime::epoch(), nfv::util::month_start(1),
                   options, rng);
  EXPECT_GE(clustering.selected_k, 2u);
  EXPECT_LE(clustering.selected_k, 4u);
  EXPECT_EQ(clustering.modularity_by_k.size(), 3u);
}

TEST(VpeClustering, SomGroupingProducesValidPartition) {
  const auto trace = simnet::simulate_fleet(simnet::small_fleet_config(9));
  const ParsedFleet parsed = parse_fleet(trace);
  VpeClusteringOptions options;
  options.method = GroupingMethod::kSom;
  options.som.rows = 2;
  options.som.cols = 2;
  nfv::util::Rng rng(4);
  const VpeClustering clustering =
      cluster_vpes(parsed, nfv::util::SimTime::epoch(),
                   nfv::util::month_start(1), options, rng);
  ASSERT_EQ(clustering.group_of_vpe.size(),
            static_cast<std::size_t>(trace.num_vpes()));
  EXPECT_GE(clustering.num_groups, 1u);
  EXPECT_LE(clustering.num_groups, 4u);
  // Group ids are dense [0, num_groups).
  for (int g : clustering.group_of_vpe) {
    EXPECT_GE(g, 0);
    EXPECT_LT(static_cast<std::size_t>(g), clustering.num_groups);
  }
}

TEST(VpeClustering, GroupsSimilarVpesTogether) {
  // Full-size profile structure: vPEs of the same simulator cluster should
  // mostly co-occur in the learned groups. Use a bigger fleet briefly.
  auto config = simnet::small_fleet_config(7);
  config.profiles.num_vpes = 12;
  config.profiles.num_clusters = 3;
  config.profiles.num_outliers = 0;
  config.months = 2;
  const auto trace = simnet::simulate_fleet(config);
  const ParsedFleet parsed = parse_fleet(trace);
  VpeClusteringOptions options;
  options.fixed_k = 3;
  nfv::util::Rng rng(3);
  const VpeClustering clustering =
      cluster_vpes(parsed, SimTime::epoch(), nfv::util::month_start(1),
                   options, rng);
  // Count pairs of same-simulator-cluster vPEs placed in the same learned
  // group vs different groups.
  int same_together = 0;
  int same_total = 0;
  for (std::size_t a = 0; a < 12; ++a) {
    for (std::size_t b = a + 1; b < 12; ++b) {
      if (trace.profiles[a].cluster != trace.profiles[b].cluster) continue;
      ++same_total;
      if (clustering.group_of_vpe[a] == clustering.group_of_vpe[b]) {
        ++same_together;
      }
    }
  }
  ASSERT_GT(same_total, 0);
  EXPECT_GT(static_cast<double>(same_together) / same_total, 0.5);
}

}  // namespace
}  // namespace nfv::core
