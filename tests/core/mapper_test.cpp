#include "core/mapper.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace nfv::core {
namespace {

using nfv::util::Duration;
using nfv::util::SimTime;
using simnet::Ticket;
using simnet::TicketCategory;

Ticket make_ticket(std::int64_t id, std::int64_t report_s,
                   std::int64_t repair_s,
                   TicketCategory category = TicketCategory::kCircuit,
                   std::int32_t vpe = 0) {
  Ticket t;
  t.ticket_id = id;
  t.vpe = vpe;
  t.category = category;
  t.report = SimTime{report_s};
  t.repair_finish = SimTime{repair_s};
  return t;
}

std::vector<ScoredEvent> events_at(std::initializer_list<std::int64_t> times,
                                   double score = 10.0) {
  std::vector<ScoredEvent> out;
  for (std::int64_t t : times) out.push_back({SimTime{t}, score});
  return out;
}

TEST(ClusterAnomalies, RequiresMinClusterSize) {
  MappingConfig config;  // min 2 within 2 min
  const auto events = events_at({1000, 5000, 9000});  // isolated hits
  EXPECT_TRUE(cluster_anomalies(events, 5.0, config).empty());
  const auto paired = events_at({1000, 1060, 9000});
  const auto clusters = cluster_anomalies(paired, 5.0, config);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].seconds, 1000);
}

TEST(ClusterAnomalies, ThresholdFilters) {
  MappingConfig config;
  std::vector<ScoredEvent> events{{SimTime{100}, 1.0},
                                  {SimTime{130}, 1.0}};
  EXPECT_TRUE(cluster_anomalies(events, 5.0, config).empty());
  EXPECT_EQ(cluster_anomalies(events, 0.5, config).size(), 1u);
}

TEST(ClusterAnomalies, RunsSplitByGap) {
  MappingConfig config;
  // Two bursts separated by an hour.
  const auto events = events_at({100, 150, 200, 3800, 3830});
  const auto clusters = cluster_anomalies(events, 5.0, config);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].seconds, 100);
  EXPECT_EQ(clusters[1].seconds, 3800);
}

TEST(ClusterAnomalies, SingletonRuleConfigurable) {
  MappingConfig config;
  config.min_cluster_size = 1;
  const auto events = events_at({1000});
  EXPECT_EQ(cluster_anomalies(events, 5.0, config).size(), 1u);
}

TEST(MapAnomalies, PredictivePeriodGivesEarlyWarning) {
  MappingConfig config;
  config.predictive_period = Duration::of_hours(12);
  const std::vector<Ticket> tickets{make_ticket(1, 100000, 120000)};
  const std::vector<SimTime> anomalies{SimTime{100000 - 3600}};
  const MappingResult result = map_anomalies(anomalies, tickets, 0, config);
  EXPECT_EQ(result.early_warnings, 1u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.false_alarms, 0u);
  ASSERT_EQ(result.anomalies.size(), 1u);
  EXPECT_EQ(result.anomalies[0].outcome, AnomalyOutcome::kEarlyWarning);
  EXPECT_EQ(result.anomalies[0].ticket_id, 1);
  EXPECT_EQ(result.anomalies[0].lead.seconds, 3600);
  ASSERT_EQ(result.tickets.size(), 1u);
  EXPECT_TRUE(result.tickets[0].detected_before);
  EXPECT_EQ(result.tickets[0].best_lead.seconds, 3600);
}

TEST(MapAnomalies, InfectedPeriodGivesError) {
  MappingConfig config;
  const std::vector<Ticket> tickets{make_ticket(2, 100000, 120000)};
  const std::vector<SimTime> anomalies{SimTime{110000}};
  const MappingResult result = map_anomalies(anomalies, tickets, 0, config);
  EXPECT_EQ(result.errors, 1u);
  EXPECT_TRUE(result.tickets[0].detected_after);
  EXPECT_FALSE(result.tickets[0].detected_before);
  EXPECT_EQ(result.tickets[0].first_error_delay.seconds, 10000);
}

TEST(MapAnomalies, OutsideBothPeriodsIsFalseAlarm) {
  MappingConfig config;
  config.predictive_period = Duration::of_hours(1);
  const std::vector<Ticket> tickets{make_ticket(3, 100000, 120000)};
  const std::vector<SimTime> anomalies{SimTime{10}};
  const MappingResult result = map_anomalies(anomalies, tickets, 0, config);
  EXPECT_EQ(result.false_alarms, 1u);
  EXPECT_EQ(result.anomalies[0].ticket_id, -1);
  EXPECT_FALSE(result.tickets[0].detected);
}

TEST(MapAnomalies, BoundaryConditions) {
  MappingConfig config;
  config.predictive_period = Duration::of_hours(1);
  const std::vector<Ticket> tickets{make_ticket(4, 10000, 20000)};
  // Exactly at report: infected. Exactly at repair: infected (inclusive).
  // Exactly at report − P: predictive (inclusive). Just before: false alarm.
  const std::vector<SimTime> anomalies{SimTime{10000}, SimTime{20000},
                                       SimTime{10000 - 3600},
                                       SimTime{10000 - 3601}};
  const MappingResult result = map_anomalies(anomalies, tickets, 0, config);
  EXPECT_EQ(result.errors, 2u);
  EXPECT_EQ(result.early_warnings, 1u);
  EXPECT_EQ(result.false_alarms, 1u);
}

TEST(MapAnomalies, InfectedWinsOverPredictiveOfLaterTicket) {
  MappingConfig config;
  config.predictive_period = Duration::of_hours(12);
  // Anomaly inside ticket A's infected period and ticket B's predictive
  // period → counts as error on A.
  const std::vector<Ticket> tickets{make_ticket(1, 10000, 50000),
                                    make_ticket(2, 60000, 90000)};
  const std::vector<SimTime> anomalies{SimTime{40000}};
  const MappingResult result = map_anomalies(anomalies, tickets, 0, config);
  EXPECT_EQ(result.errors, 1u);
  EXPECT_EQ(result.early_warnings, 0u);
  EXPECT_EQ(result.anomalies[0].ticket_id, 1);
}

TEST(MapAnomalies, NearestUpcomingTicketWinsPredictive) {
  MappingConfig config;
  config.predictive_period = Duration::of_days(1);
  const std::vector<Ticket> tickets{make_ticket(1, 50000, 51000),
                                    make_ticket(2, 40000, 41000)};
  const std::vector<SimTime> anomalies{SimTime{39000}};
  const MappingResult result = map_anomalies(anomalies, tickets, 0, config);
  EXPECT_EQ(result.anomalies[0].ticket_id, 2);  // closer report time
}

TEST(MapAnomalies, MultipleAnomaliesOneTicket) {
  MappingConfig config;
  const std::vector<Ticket> tickets{make_ticket(5, 100000, 200000)};
  const std::vector<SimTime> anomalies{
      SimTime{99000}, SimTime{99500}, SimTime{150000}};
  const MappingResult result = map_anomalies(anomalies, tickets, 0, config);
  EXPECT_EQ(result.tickets[0].anomaly_count, 3u);
  EXPECT_TRUE(result.tickets[0].detected_before);
  EXPECT_TRUE(result.tickets[0].detected_after);
  // Best lead is the earliest warning.
  EXPECT_EQ(result.tickets[0].best_lead.seconds, 1000);
}

TEST(MapAnomalies, WrongVpeTicketRejected) {
  MappingConfig config;
  const std::vector<Ticket> tickets{make_ticket(1, 100, 200,
                                                TicketCategory::kCircuit,
                                                /*vpe=*/3)};
  EXPECT_THROW(map_anomalies({}, tickets, 0, config),
               nfv::util::CheckError);
}

TEST(MergeMappings, SumsCounters) {
  MappingConfig config;
  config.predictive_period = Duration::of_hours(1);
  const std::vector<Ticket> tickets_a{make_ticket(1, 1000, 2000)};
  const std::vector<SimTime> anomalies_a{SimTime{1500}};
  const std::vector<Ticket> tickets_b{
      make_ticket(2, 9000, 9500, TicketCategory::kSoftware, 1)};
  const std::vector<SimTime> anomalies_b{SimTime{10}};
  const MappingResult a = map_anomalies(anomalies_a, tickets_a, 0, config);
  const MappingResult b = map_anomalies(anomalies_b, tickets_b, 1, config);
  const std::vector<MappingResult> parts{a, b};
  const MappingResult merged = merge_mappings(parts);
  EXPECT_EQ(merged.errors, 1u);
  EXPECT_EQ(merged.false_alarms, 1u);
  EXPECT_EQ(merged.anomalies.size(), 2u);
  EXPECT_EQ(merged.tickets.size(), 2u);
}

}  // namespace
}  // namespace nfv::core
