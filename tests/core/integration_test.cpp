// Cross-module integration: the streaming monitor driven by the full
// simulated fleet, detector-granularity mapping adaptation, and detector
// checkpoint round-trips through the pipeline's own artifacts.
#include <gtest/gtest.h>

#include <sstream>

#include "core/feature_detectors.h"
#include "core/lstm_detector.h"
#include "core/parsed_fleet.h"
#include "core/pipeline.h"
#include "core/streaming.h"
#include "util/check.h"
#include "util/stats.h"

namespace nfv::core {
namespace {

using nfv::util::Duration;
using nfv::util::SimTime;

struct IntegrationFixture : ::testing::Test {
  static const simnet::FleetTrace& trace() {
    static const simnet::FleetTrace t = [] {
      simnet::FleetConfig config = simnet::small_fleet_config(99);
      config.syslog.gap_scale = 2.0;
      config.update_month = -1;
      return simnet::simulate_fleet(config);
    }();
    return t;
  }
};

TEST_F(IntegrationFixture, StreamMonitorOverSimulatedFleetRaisesWarnings) {
  // Train on month 0 of vPE 0 through a signature tree, stream month 1+.
  logproc::SignatureTree tree;
  std::vector<logproc::ParsedLog> train;
  for (const auto& rec : trace().logs_by_vpe[0]) {
    if (rec.time >= nfv::util::month_start(1)) break;
    train.push_back({rec.time, tree.learn(rec.text)});
  }
  train = logproc::exclude_intervals(
      train, ticket_exclusion_windows(trace(), 0));
  ASSERT_GT(train.size(), 200u);

  LstmDetectorConfig config;
  config.max_train_windows = 2000;
  config.initial_epochs = 3;
  LstmDetector detector(config);
  const LogView view{train};
  detector.fit({&view, 1}, tree.size());

  std::vector<double> scores;
  for (const auto& e : detector.score(train, tree.size())) {
    scores.push_back(e.score);
  }
  StreamMonitorConfig monitor_config;
  monitor_config.threshold = nfv::util::quantile(scores, 0.995);
  monitor_config.window = config.window;

  std::vector<StreamWarning> warnings;
  StreamMonitor monitor(0, &detector, &tree, monitor_config,
                        [&](const StreamWarning& w) { warnings.push_back(w); });
  double last_score = 0.0;
  for (const auto& rec : trace().logs_by_vpe[0]) {
    if (rec.time < nfv::util::month_start(1)) continue;
    last_score = monitor.ingest(rec.time, rec.text);
  }
  (void)last_score;
  // The simulator plants anomaly bursts; the monitor must find some, and
  // warnings must be time-ordered with sane fields.
  EXPECT_GT(warnings.size(), 0u);
  EXPECT_EQ(warnings.size(), monitor.warnings_raised());
  for (std::size_t i = 1; i < warnings.size(); ++i) {
    EXPECT_LE(warnings[i - 1].time.seconds, warnings[i].time.seconds);
  }
  for (const auto& warning : warnings) {
    EXPECT_EQ(warning.vpe, 0);
    EXPECT_GE(warning.anomaly_count, monitor_config.min_cluster_size);
    EXPECT_GE(warning.trigger_template, 0);
  }
}

TEST(AdaptMappingFor, DocumentGranularityDropsClusterRule) {
  MappingConfig config;
  config.min_cluster_size = 2;
  const MappingConfig per_log =
      adapt_mapping_for(EventGranularity::kPerLog, config);
  EXPECT_EQ(per_log.min_cluster_size, 2u);
  const MappingConfig per_doc =
      adapt_mapping_for(EventGranularity::kPerDocument, config);
  EXPECT_EQ(per_doc.min_cluster_size, 1u);
  EXPECT_EQ(per_doc.predictive_period.seconds,
            config.predictive_period.seconds);
}

TEST(DetectorGranularity, DeclaredPerImplementation) {
  EXPECT_EQ(LstmDetector().granularity(), EventGranularity::kPerLog);
  EXPECT_EQ(AutoencoderDetector().granularity(),
            EventGranularity::kPerDocument);
  EXPECT_EQ(OcSvmDetector().granularity(), EventGranularity::kPerDocument);
  EXPECT_EQ(PcaDetector().granularity(), EventGranularity::kPerDocument);
}

TEST(LstmDetectorCheckpoint, LoadRejectsGarbageAndWrongMagic) {
  std::stringstream garbage;
  garbage << "definitely not a checkpoint";
  EXPECT_THROW(LstmDetector::load(garbage), nfv::util::CheckError);

  LstmDetector untrained;
  std::stringstream sink;
  EXPECT_THROW(untrained.save(sink), nfv::util::CheckError);
}

TEST_F(IntegrationFixture, FeatureDetectorPipelineMapsWithDocGranularity) {
  const ParsedFleet parsed = parse_fleet(trace());
  PipelineOptions options;
  options.detector = DetectorKind::kAutoencoder;
  options.clustering.fixed_k = 2;
  const PipelineResult result = run_pipeline(trace(), parsed, options);
  // With the granularity-adapted cluster rule, the document detector must
  // actually map anomalies to tickets (not be silenced by the ≥2 rule).
  EXPECT_GT(result.mapping.errors + result.mapping.early_warnings, 0u);
  EXPECT_GT(result.aggregate.recall, 0.0);
}

}  // namespace
}  // namespace nfv::core
