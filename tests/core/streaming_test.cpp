#include "core/streaming.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/feature_detectors.h"
#include "core/lstm_detector.h"
#include "util/check.h"

namespace nfv::core {
namespace {

using logproc::ParsedLog;
using nfv::util::Duration;
using nfv::util::SimTime;

std::vector<ParsedLog> motif_stream(std::size_t cycles,
                                    std::int64_t start_s = 0) {
  std::vector<ParsedLog> logs;
  std::int64_t t = start_s;
  for (std::size_t c = 0; c < cycles; ++c) {
    for (std::int32_t id = 0; id < 4; ++id) {
      logs.push_back({SimTime{t}, id});
      t += 60;
    }
  }
  return logs;
}

struct StreamingFixture : ::testing::Test {
  LstmDetector detector;
  logproc::SignatureTree tree;

  StreamingFixture() : detector(make_config()) {
    const auto train = motif_stream(150);
    const LogView view{train};
    detector.fit({&view, 1}, 8);
  }

  static LstmDetectorConfig make_config() {
    LstmDetectorConfig config;
    config.window = 4;
    config.hidden = 16;
    config.embed_dim = 8;
    config.initial_epochs = 6;
    return config;
  }

  StreamMonitorConfig monitor_config(double threshold) const {
    StreamMonitorConfig config;
    config.threshold = threshold;
    config.window = 4;
    return config;
  }
};

TEST_F(StreamingFixture, NormalStreamRaisesNothing) {
  std::vector<StreamWarning> warnings;
  StreamMonitor monitor(0, &detector, &tree, monitor_config(15.0),
                        [&](const StreamWarning& w) { warnings.push_back(w); });
  for (const ParsedLog& log : motif_stream(30, 100000)) {
    monitor.ingest_parsed(log);
  }
  EXPECT_TRUE(warnings.empty());
  EXPECT_EQ(monitor.warnings_raised(), 0u);
}

TEST_F(StreamingFixture, AnomalyBurstRaisesOneWarning) {
  std::vector<StreamWarning> warnings;
  StreamMonitor monitor(3, &detector, &tree, monitor_config(15.0),
                        [&](const StreamWarning& w) { warnings.push_back(w); });
  auto stream = motif_stream(20, 100000);
  // Burst of a template unknown to the model (id 9 >= vocab 8), seconds
  // apart — deterministic unknown-score path.
  const SimTime burst_at = stream[40].time;
  stream.insert(stream.begin() + 41,
                {{burst_at + Duration::of_seconds(5), 9},
                 {burst_at + Duration::of_seconds(20), 9},
                 {burst_at + Duration::of_seconds(40), 9}});
  for (const ParsedLog& log : stream) monitor.ingest_parsed(log);
  ASSERT_EQ(warnings.size(), 1u);  // one cluster, not three alerts
  EXPECT_EQ(warnings[0].vpe, 3);
  EXPECT_EQ(warnings[0].time, burst_at + Duration::of_seconds(5));
  EXPECT_GE(warnings[0].anomaly_count, 2u);
  EXPECT_GT(warnings[0].peak_score, 15.0);
}

TEST_F(StreamingFixture, IsolatedAnomalyStaysSilent) {
  // A single over-threshold event with nothing following within the
  // cluster span stays below the ≥2 rule. (The anomaly is the stream's
  // last event: any *follow-up* log would carry the unknown template in
  // its history window and legitimately extend the anomaly run.)
  std::vector<StreamWarning> warnings;
  StreamMonitor monitor(0, &detector, &tree, monitor_config(15.0),
                        [&](const StreamWarning& w) { warnings.push_back(w); });
  auto stream = motif_stream(20, 100000);
  stream.push_back({stream.back().time + Duration::of_seconds(5), 9});
  for (const ParsedLog& log : stream) monitor.ingest_parsed(log);
  EXPECT_TRUE(warnings.empty());
}

TEST_F(StreamingFixture, RawLinesMineTemplatesOnline) {
  std::vector<StreamWarning> warnings;
  StreamMonitor monitor(0, &detector, &tree, monitor_config(1e9),
                        [&](const StreamWarning& w) { warnings.push_back(w); });
  std::int64_t t = 0;
  for (int i = 0; i < 10; ++i) {
    monitor.ingest(SimTime{t += 60},
                   "rpd[100]: keepalive exchange with 10.0.0." +
                       std::to_string(i) + " ok");
  }
  EXPECT_GE(tree.size(), 1u);
  EXPECT_TRUE(warnings.empty());
}

TEST_F(StreamingFixture, DetectorSwapKeepsHistory) {
  StreamMonitor monitor(0, &detector, &tree, monitor_config(15.0), nullptr);
  const auto stream = motif_stream(10, 100000);
  for (const ParsedLog& log : stream) monitor.ingest_parsed(log);
  // Swapping in the same detector must not throw and scoring continues.
  monitor.set_detector(&detector);
  monitor.set_threshold(20.0);
  EXPECT_NO_THROW(monitor.ingest_parsed(
      {stream.back().time + Duration::of_seconds(60), 0}));
}

TEST_F(StreamingFixture, NullArgumentsRejected) {
  EXPECT_THROW(
      StreamMonitor(0, nullptr, &tree, monitor_config(1.0), nullptr),
      nfv::util::CheckError);
  EXPECT_THROW(
      StreamMonitor(0, &detector, nullptr, monitor_config(1.0), nullptr),
      nfv::util::CheckError);
}

TEST(OperationalScenario, Classification) {
  MappedAnomaly anomaly;
  anomaly.outcome = AnomalyOutcome::kError;
  EXPECT_EQ(classify_scenario(anomaly),
            OperationalScenario::kPartOfTrigger);
  anomaly.outcome = AnomalyOutcome::kFalseAlarm;
  EXPECT_EQ(classify_scenario(anomaly), OperationalScenario::kCoincidental);
  anomaly.outcome = AnomalyOutcome::kEarlyWarning;
  anomaly.lead = Duration::of_minutes(30);
  EXPECT_EQ(classify_scenario(anomaly),
            OperationalScenario::kPredictiveSignal);
  anomaly.lead = Duration::of_minutes(5);
  EXPECT_EQ(classify_scenario(anomaly),
            OperationalScenario::kEarlyDetection);
}

TEST(OperationalScenario, HistogramCountsAll) {
  MappingResult mapping;
  MappedAnomaly a;
  a.outcome = AnomalyOutcome::kError;
  mapping.anomalies.push_back(a);
  a.outcome = AnomalyOutcome::kFalseAlarm;
  mapping.anomalies.push_back(a);
  a.outcome = AnomalyOutcome::kEarlyWarning;
  a.lead = Duration::of_hours(1);
  mapping.anomalies.push_back(a);
  const auto histogram = scenario_histogram(mapping);
  ASSERT_EQ(histogram.size(), 4u);
  std::size_t total = 0;
  for (std::size_t count : histogram) total += count;
  EXPECT_EQ(total, mapping.anomalies.size());
  EXPECT_EQ(histogram[static_cast<std::size_t>(
                OperationalScenario::kPredictiveSignal)],
            1u);
}

TEST(OperationalScenario, Names) {
  EXPECT_STREQ(to_string(OperationalScenario::kPredictiveSignal),
               "predictive-signal");
  EXPECT_STREQ(to_string(OperationalScenario::kCoincidental),
               "coincidental");
}

TEST_F(StreamingFixture, SaveLoadRoundTripScoresIdentically) {
  std::stringstream stream;
  detector.save(stream);
  const LstmDetector restored = LstmDetector::load(stream);
  ASSERT_TRUE(restored.trained());
  const auto test = motif_stream(10, 500000);
  const auto a = detector.score(test, 8);
  const auto b = restored.score(test, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].score, b[i].score, 1e-9);
  }
}

// Scoring stub whose score encodes the vocabulary it was handed:
// score = vocab * 1000 + template id of the scored line. Any group/batch
// plumbing that passes the wrong shard's vocabulary (e.g. the max across
// shards) produces a visibly different score.
class FakeVocabDetector final : public AnomalyDetector {
 public:
  void fit(std::span<const LogView>, std::size_t) override {}
  void update(std::span<const LogView>, std::size_t) override {}
  void adapt(std::span<const LogView>, std::size_t) override {}
  std::vector<ScoredEvent> score(LogView logs,
                                 std::size_t vocab) const override {
    std::vector<ScoredEvent> events;
    if (logs.empty()) return events;
    events.push_back({logs.back().time,
                      static_cast<double>(vocab) * 1000.0 +
                          static_cast<double>(logs.back().template_id)});
    return events;
  }
  bool trained() const override { return true; }
  DetectorKind kind() const override { return DetectorKind::kLstm; }
  EventGranularity granularity() const override {
    return EventGranularity::kPerLog;
  }
};

// Letters-only head token (digit-bearing tokens are masked to wildcards,
// which would merge all shapes into one template): shape 0 -> "a",
// 1 -> "b", ..., 26 -> "aa", ...
std::string shape_line(std::size_t shape, std::size_t salt) {
  return std::string(1 + shape / 26,
                     static_cast<char>('a' + shape % 26)) +
         " notice seq " + std::to_string(salt);
}

// Regression: StreamMonitorGroup::flush() must score each staged window
// with the owning shard's OWN vocabulary captured at stage time — not one
// tree size shared across shards (the old code used the max), and not the
// size the tree happens to have by flush time after later lines mined new
// templates.
TEST(StreamMonitorGroupVocab, FlushUsesPerShardVocabularyAtStageTime) {
  FakeVocabDetector detector;
  StreamMonitorConfig config;
  config.window = 2;
  config.threshold = 1e12;  // scoring only; warnings not under test here

  // Shard trees of deliberately different sizes (3 vs 7 templates).
  const auto prime = [](logproc::SignatureTree& tree, std::size_t shapes) {
    for (std::size_t s = 0; s < shapes; ++s) tree.learn(shape_line(s, 0));
  };
  const auto run = [&](bool immediate) {
    std::vector<logproc::SignatureTree> trees(2);
    prime(trees[0], 3);
    prime(trees[1], 7);
    std::vector<StreamMonitor> monitors;
    monitors.reserve(2);
    for (std::size_t s = 0; s < 2; ++s) {
      monitors.emplace_back(static_cast<std::int32_t>(s), &detector,
                            &trees[s], config, nullptr);
    }
    StreamMonitorGroup group(&detector);
    for (auto& monitor : monitors) group.add(&monitor);

    std::vector<double> scores;
    for (std::size_t i = 0; i < 12; ++i) {
      for (std::size_t s = 0; s < 2; ++s) {
        // Line 5 mines a NEW template on each shard, growing the tree
        // mid-batch — later flushed windows must still see the vocabulary
        // their line was staged under.
        const std::size_t shape = (i == 5) ? 20 + s : i % 3;
        const nfv::util::SimTime time{static_cast<std::int64_t>(i) * 60};
        if (immediate) {
          scores.push_back(monitors[s].ingest(time, shape_line(shape, i)));
        } else {
          group.ingest(s, time, shape_line(shape, i));
        }
      }
    }
    if (!immediate) return group.flush();
    return scores;
  };

  const std::vector<double> immediate = run(true);
  const std::vector<double> batched = run(false);
  ASSERT_EQ(immediate.size(), batched.size());
  for (std::size_t i = 0; i < immediate.size(); ++i) {
    ASSERT_EQ(immediate[i], batched[i]) << "line " << i;
  }
  // Non-vacuity: the two shards really scored under different
  // vocabularies (a max-across-shards flush would have equalized them).
  ASSERT_GE(batched.size(), 6u);
  EXPECT_NE(batched[4], batched[5]);  // line 2: shard 0 vs shard 1
}

// Batched-vs-immediate parity for a DOCUMENT-based detector: with
// doc_size == window + 1 every staged window is exactly one TF-IDF
// document, so the group flush must reproduce immediate ingestion's
// reconstruction-error scores bit-for-bit.
TEST(StreamMonitorGroupVocab, DocumentDetectorFlushMatchesImmediate) {
  AutoencoderDetectorConfig ae_config;
  ae_config.doc_size = 5;
  ae_config.encoder = {8, 4};
  ae_config.initial_epochs = 3;
  AutoencoderDetector detector(ae_config);
  std::vector<ParsedLog> train;
  for (std::size_t i = 0; i < 400; ++i) {
    train.push_back(
        {SimTime{static_cast<std::int64_t>(i) * 60},
         static_cast<std::int32_t>(i % 6)});
  }
  const LogView view{train};
  detector.fit({&view, 1}, 8);

  StreamMonitorConfig config;
  config.window = 4;  // window + 1 == doc_size
  config.threshold = 1e12;

  std::vector<ParsedLog> test;
  for (std::size_t i = 0; i < 120; ++i) {
    const std::int32_t id =
        (i % 37 == 11) ? 7 : static_cast<std::int32_t>(i % 6);
    test.push_back({SimTime{500000 + static_cast<std::int64_t>(i) * 60}, id});
  }

  logproc::SignatureTree direct_tree;
  StreamMonitor direct(0, &detector, &direct_tree, config, nullptr);
  std::vector<double> immediate;
  for (const ParsedLog& log : test) {
    immediate.push_back(direct.ingest_parsed(log));
  }

  logproc::SignatureTree group_tree;
  StreamMonitor shard(0, &detector, &group_tree, config, nullptr);
  StreamMonitorGroup group(&detector);
  group.add(&shard);
  std::vector<double> batched;
  for (std::size_t i = 0; i < test.size(); ++i) {
    group.ingest_parsed(0, test[i]);
    if (i % 13 == 12) {
      for (double score : group.flush()) batched.push_back(score);
    }
  }
  for (double score : group.flush()) batched.push_back(score);

  ASSERT_EQ(immediate.size(), batched.size());
  bool any_nonzero = false;
  for (std::size_t i = 0; i < immediate.size(); ++i) {
    ASSERT_EQ(immediate[i], batched[i]) << "line " << i;
    any_nonzero = any_nonzero || immediate[i] != 0.0;
  }
  EXPECT_TRUE(any_nonzero) << "vacuous parity: no window ever scored";
}

// Regression: a sustained anomaly storm must not grow monitor state. The
// cluster tracker keeps only {first, last, count, peak, trigger} — this
// pins the behavior that representation must still deliver: one warning
// at the cluster's FIRST anomaly, a live run length equal to the storm,
// and no re-warning while the run continues.
TEST(StreamMonitorCluster, AnomalyStormKeepsConstantStateAndOneWarning) {
  FakeVocabDetector detector;
  logproc::SignatureTree tree;
  StreamMonitorConfig config;
  config.threshold = 10.0;
  std::vector<StreamWarning> warnings;
  StreamMonitor monitor(7, &detector, &tree, config,
                        [&](const StreamWarning& w) { warnings.push_back(w); });

  constexpr std::size_t kStorm = 200000;  // hours of back-to-back anomalies
  for (std::size_t i = 0; i < kStorm; ++i) {
    monitor.apply_score(SimTime{static_cast<std::int64_t>(i)},
                        static_cast<std::int32_t>(3 + i % 2), 50.0 + i % 5);
  }
  EXPECT_EQ(monitor.run_length(), kStorm);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].vpe, 7);
  EXPECT_EQ(warnings[0].time.seconds, 0);       // first anomaly of the run
  EXPECT_EQ(warnings[0].trigger_template, 3);   // template of that anomaly
  EXPECT_EQ(warnings[0].anomaly_count, config.min_cluster_size);
}

// Regression: an out-of-order timestamp inside a live anomaly run is
// clamped to the run's latest time. Without the clamp the regressed time
// becomes the gap reference, the next in-order anomaly looks > span away,
// and one real cluster is reported as two.
TEST(StreamMonitorCluster, OutOfOrderTimestampDoesNotSplitCluster) {
  FakeVocabDetector detector;
  logproc::SignatureTree tree;
  StreamMonitorConfig config;
  config.threshold = 10.0;  // span: 2 minutes
  std::vector<StreamWarning> warnings;
  StreamMonitor monitor(0, &detector, &tree, config,
                        [&](const StreamWarning& w) { warnings.push_back(w); });

  monitor.apply_score(SimTime{1000}, 5, 40.0);
  monitor.apply_score(SimTime{400}, 6, 40.0);   // clock blip, 10 min "ago"
  monitor.apply_score(SimTime{1020}, 7, 40.0);  // in-order again
  monitor.apply_score(SimTime{1040}, 8, 40.0);

  EXPECT_EQ(monitor.run_length(), 4u);  // one run, never split
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].time.seconds, 1000);  // not rewound to 400
  EXPECT_EQ(warnings[0].trigger_template, 5);
}

TEST(StreamMonitorGroupEdgeCases, FlushWithEntriesButNoFullWindows) {
  FakeVocabDetector detector;
  logproc::SignatureTree tree;
  StreamMonitorConfig config;
  config.window = 4;
  StreamMonitor monitor(0, &detector, &tree, config, nullptr);
  StreamMonitorGroup group(&detector);
  group.add(&monitor);

  // Three lines < window+1: everything staged, nothing scoreable.
  for (std::int64_t i = 0; i < 3; ++i) {
    group.ingest_parsed(0, {SimTime{i * 60}, 1});
  }
  EXPECT_EQ(group.pending(), 3u);
  const std::vector<double> scores = group.flush();
  ASSERT_EQ(scores.size(), 3u);
  for (double score : scores) EXPECT_EQ(score, 0.0);
  EXPECT_EQ(group.pending(), 0u);
}

TEST(StreamMonitorGroupEdgeCases, NeverFillingShardScoresZeroAlongside) {
  FakeVocabDetector detector;
  std::vector<logproc::SignatureTree> trees(2);
  StreamMonitorConfig config;
  config.window = 2;
  config.threshold = 1e12;
  StreamMonitor busy(0, &detector, &trees[0], config, nullptr);
  StreamMonitor sparse(1, &detector, &trees[1], config, nullptr);
  StreamMonitorGroup group(&detector);
  group.add(&busy);
  group.add(&sparse);

  for (std::int64_t i = 0; i < 8; ++i) {
    group.ingest_parsed(0, {SimTime{i * 60}, static_cast<std::int32_t>(i)});
  }
  group.ingest_parsed(1, {SimTime{0}, 9});  // its window never fills
  const std::vector<double> scores = group.flush();
  ASSERT_EQ(scores.size(), 9u);
  EXPECT_EQ(scores.back(), 0.0);  // the sparse shard's only line
  // The busy shard still scored normally once its window filled.
  std::size_t scored = 0;
  for (std::size_t i = 0; i + 1 < scores.size(); ++i) {
    if (scores[i] != 0.0) ++scored;
  }
  EXPECT_EQ(scored, 8u - config.window);
}

TEST(StreamMonitorGroupEdgeCases, RepeatedFlushIsIdempotent) {
  FakeVocabDetector detector;
  logproc::SignatureTree tree;
  StreamMonitorConfig config;
  config.window = 2;
  config.threshold = 1.0;  // every scored line is an "anomaly"
  std::vector<StreamWarning> warnings;
  StreamMonitor monitor(0, &detector, &tree, config,
                        [&](const StreamWarning& w) { warnings.push_back(w); });
  StreamMonitorGroup group(&detector);
  group.add(&monitor);

  for (std::int64_t i = 0; i < 6; ++i) {
    group.ingest_parsed(0, {SimTime{i * 30}, 2});
  }
  const std::vector<double> first = group.flush();
  EXPECT_EQ(first.size(), 6u);
  const std::size_t warned = warnings.size();
  EXPECT_EQ(warned, 1u);

  // Nothing staged: further flushes are no-ops — no scores re-emitted, no
  // warnings re-raised, cluster state untouched.
  const std::size_t run = monitor.run_length();
  EXPECT_TRUE(group.flush().empty());
  EXPECT_TRUE(group.flush().empty());
  EXPECT_EQ(warnings.size(), warned);
  EXPECT_EQ(monitor.run_length(), run);
}

TEST_F(StreamingFixture, TargetRankModeOrdersLikeDeepLog) {
  LstmDetectorConfig config = make_config();
  config.score_mode = LstmScoreMode::kTargetRank;
  LstmDetector rank_detector(config);
  const auto train = motif_stream(150);
  const LogView view{train};
  rank_detector.fit({&view, 1}, 8);

  // Correct continuations rank near 0; a wrong one ranks worse.
  auto test = motif_stream(10, 700000);
  const auto good = rank_detector.score(test, 8);
  test[23].template_id = 1;  // corrupt one "3" position
  const auto bad = rank_detector.score(test, 8);
  EXPECT_GT(bad[19].score, good[19].score);
  // Unknown templates (id >= vocab) get the maximal rank (vocab size).
  test[30].template_id = 9;
  const auto unknown = rank_detector.score(test, 8);
  EXPECT_DOUBLE_EQ(unknown[26].score, 8.0);
}

}  // namespace
}  // namespace nfv::core
