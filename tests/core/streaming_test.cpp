#include "core/streaming.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/lstm_detector.h"
#include "util/check.h"

namespace nfv::core {
namespace {

using logproc::ParsedLog;
using nfv::util::Duration;
using nfv::util::SimTime;

std::vector<ParsedLog> motif_stream(std::size_t cycles,
                                    std::int64_t start_s = 0) {
  std::vector<ParsedLog> logs;
  std::int64_t t = start_s;
  for (std::size_t c = 0; c < cycles; ++c) {
    for (std::int32_t id = 0; id < 4; ++id) {
      logs.push_back({SimTime{t}, id});
      t += 60;
    }
  }
  return logs;
}

struct StreamingFixture : ::testing::Test {
  LstmDetector detector;
  logproc::SignatureTree tree;

  StreamingFixture() : detector(make_config()) {
    const auto train = motif_stream(150);
    const LogView view{train};
    detector.fit({&view, 1}, 8);
  }

  static LstmDetectorConfig make_config() {
    LstmDetectorConfig config;
    config.window = 4;
    config.hidden = 16;
    config.embed_dim = 8;
    config.initial_epochs = 6;
    return config;
  }

  StreamMonitorConfig monitor_config(double threshold) const {
    StreamMonitorConfig config;
    config.threshold = threshold;
    config.window = 4;
    return config;
  }
};

TEST_F(StreamingFixture, NormalStreamRaisesNothing) {
  std::vector<StreamWarning> warnings;
  StreamMonitor monitor(0, &detector, &tree, monitor_config(15.0),
                        [&](const StreamWarning& w) { warnings.push_back(w); });
  for (const ParsedLog& log : motif_stream(30, 100000)) {
    monitor.ingest_parsed(log);
  }
  EXPECT_TRUE(warnings.empty());
  EXPECT_EQ(monitor.warnings_raised(), 0u);
}

TEST_F(StreamingFixture, AnomalyBurstRaisesOneWarning) {
  std::vector<StreamWarning> warnings;
  StreamMonitor monitor(3, &detector, &tree, monitor_config(15.0),
                        [&](const StreamWarning& w) { warnings.push_back(w); });
  auto stream = motif_stream(20, 100000);
  // Burst of a template unknown to the model (id 9 >= vocab 8), seconds
  // apart — deterministic unknown-score path.
  const SimTime burst_at = stream[40].time;
  stream.insert(stream.begin() + 41,
                {{burst_at + Duration::of_seconds(5), 9},
                 {burst_at + Duration::of_seconds(20), 9},
                 {burst_at + Duration::of_seconds(40), 9}});
  for (const ParsedLog& log : stream) monitor.ingest_parsed(log);
  ASSERT_EQ(warnings.size(), 1u);  // one cluster, not three alerts
  EXPECT_EQ(warnings[0].vpe, 3);
  EXPECT_EQ(warnings[0].time, burst_at + Duration::of_seconds(5));
  EXPECT_GE(warnings[0].anomaly_count, 2u);
  EXPECT_GT(warnings[0].peak_score, 15.0);
}

TEST_F(StreamingFixture, IsolatedAnomalyStaysSilent) {
  // A single over-threshold event with nothing following within the
  // cluster span stays below the ≥2 rule. (The anomaly is the stream's
  // last event: any *follow-up* log would carry the unknown template in
  // its history window and legitimately extend the anomaly run.)
  std::vector<StreamWarning> warnings;
  StreamMonitor monitor(0, &detector, &tree, monitor_config(15.0),
                        [&](const StreamWarning& w) { warnings.push_back(w); });
  auto stream = motif_stream(20, 100000);
  stream.push_back({stream.back().time + Duration::of_seconds(5), 9});
  for (const ParsedLog& log : stream) monitor.ingest_parsed(log);
  EXPECT_TRUE(warnings.empty());
}

TEST_F(StreamingFixture, RawLinesMineTemplatesOnline) {
  std::vector<StreamWarning> warnings;
  StreamMonitor monitor(0, &detector, &tree, monitor_config(1e9),
                        [&](const StreamWarning& w) { warnings.push_back(w); });
  std::int64_t t = 0;
  for (int i = 0; i < 10; ++i) {
    monitor.ingest(SimTime{t += 60},
                   "rpd[100]: keepalive exchange with 10.0.0." +
                       std::to_string(i) + " ok");
  }
  EXPECT_GE(tree.size(), 1u);
  EXPECT_TRUE(warnings.empty());
}

TEST_F(StreamingFixture, DetectorSwapKeepsHistory) {
  StreamMonitor monitor(0, &detector, &tree, monitor_config(15.0), nullptr);
  const auto stream = motif_stream(10, 100000);
  for (const ParsedLog& log : stream) monitor.ingest_parsed(log);
  // Swapping in the same detector must not throw and scoring continues.
  monitor.set_detector(&detector);
  monitor.set_threshold(20.0);
  EXPECT_NO_THROW(monitor.ingest_parsed(
      {stream.back().time + Duration::of_seconds(60), 0}));
}

TEST_F(StreamingFixture, NullArgumentsRejected) {
  EXPECT_THROW(
      StreamMonitor(0, nullptr, &tree, monitor_config(1.0), nullptr),
      nfv::util::CheckError);
  EXPECT_THROW(
      StreamMonitor(0, &detector, nullptr, monitor_config(1.0), nullptr),
      nfv::util::CheckError);
}

TEST(OperationalScenario, Classification) {
  MappedAnomaly anomaly;
  anomaly.outcome = AnomalyOutcome::kError;
  EXPECT_EQ(classify_scenario(anomaly),
            OperationalScenario::kPartOfTrigger);
  anomaly.outcome = AnomalyOutcome::kFalseAlarm;
  EXPECT_EQ(classify_scenario(anomaly), OperationalScenario::kCoincidental);
  anomaly.outcome = AnomalyOutcome::kEarlyWarning;
  anomaly.lead = Duration::of_minutes(30);
  EXPECT_EQ(classify_scenario(anomaly),
            OperationalScenario::kPredictiveSignal);
  anomaly.lead = Duration::of_minutes(5);
  EXPECT_EQ(classify_scenario(anomaly),
            OperationalScenario::kEarlyDetection);
}

TEST(OperationalScenario, HistogramCountsAll) {
  MappingResult mapping;
  MappedAnomaly a;
  a.outcome = AnomalyOutcome::kError;
  mapping.anomalies.push_back(a);
  a.outcome = AnomalyOutcome::kFalseAlarm;
  mapping.anomalies.push_back(a);
  a.outcome = AnomalyOutcome::kEarlyWarning;
  a.lead = Duration::of_hours(1);
  mapping.anomalies.push_back(a);
  const auto histogram = scenario_histogram(mapping);
  ASSERT_EQ(histogram.size(), 4u);
  std::size_t total = 0;
  for (std::size_t count : histogram) total += count;
  EXPECT_EQ(total, mapping.anomalies.size());
  EXPECT_EQ(histogram[static_cast<std::size_t>(
                OperationalScenario::kPredictiveSignal)],
            1u);
}

TEST(OperationalScenario, Names) {
  EXPECT_STREQ(to_string(OperationalScenario::kPredictiveSignal),
               "predictive-signal");
  EXPECT_STREQ(to_string(OperationalScenario::kCoincidental),
               "coincidental");
}

TEST_F(StreamingFixture, SaveLoadRoundTripScoresIdentically) {
  std::stringstream stream;
  detector.save(stream);
  const LstmDetector restored = LstmDetector::load(stream);
  ASSERT_TRUE(restored.trained());
  const auto test = motif_stream(10, 500000);
  const auto a = detector.score(test, 8);
  const auto b = restored.score(test, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].score, b[i].score, 1e-9);
  }
}

TEST_F(StreamingFixture, TargetRankModeOrdersLikeDeepLog) {
  LstmDetectorConfig config = make_config();
  config.score_mode = LstmScoreMode::kTargetRank;
  LstmDetector rank_detector(config);
  const auto train = motif_stream(150);
  const LogView view{train};
  rank_detector.fit({&view, 1}, 8);

  // Correct continuations rank near 0; a wrong one ranks worse.
  auto test = motif_stream(10, 700000);
  const auto good = rank_detector.score(test, 8);
  test[23].template_id = 1;  // corrupt one "3" position
  const auto bad = rank_detector.score(test, 8);
  EXPECT_GT(bad[19].score, good[19].score);
  // Unknown templates (id >= vocab) get the maximal rank (vocab size).
  test[30].template_id = 9;
  const auto unknown = rank_detector.score(test, 8);
  EXPECT_DOUBLE_EQ(unknown[26].score, 8.0);
}

}  // namespace
}  // namespace nfv::core
